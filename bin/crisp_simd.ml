(* crisp_simd: the persistent simulation-farm daemon.

   Listens on a Unix-domain socket for crisp_sim clients, decomposes
   their grid requests into canonical cells, dedups identical cells
   across all connected clients, shards them over a work-stealing domain
   pool under supervision, and (with --journal-dir) checkpoints every
   completed cell so a killed daemon restarts warm.

   Exit codes: 0 clean shutdown (signal or client `shutdown' request);
   2 startup failure (socket in use, bad arguments). *)

open Cmdliner

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "crisp_simd.sock"

let socket_arg =
  let doc =
    "Unix-domain socket to listen on.  A stale file at this path is \
     unlinked; do not point two live daemons at the same path."
  in
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the shared simulation pool (0 = one per \
     recommended core; 1 = run cells inline on the client threads)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let journal_dir_arg =
  let doc =
    "Persist the farm's state under $(docv): a `cells' journal of every \
     completed cell value and a `server' journal of daemon counters.  A \
     restarted daemon serves journalled cells without recomputing them.  \
     Omitted = fully in-memory."
  in
  Arg.(value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR" ~doc)

let deadline_arg =
  let doc = "Per-cell wall-clock deadline in seconds; over-deadline cells degrade." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc = "Retries per crashed cell (deterministic seeded backoff)." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for backoff jitter." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log every connection, spawn, journal hit and degradation to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let daemon socket jobs journal_dir deadline retries seed verbose =
  let workers = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    if workers <= 1 then Exec.Pool.sequential else Exec.Pool.create ~workers ()
  in
  let policy =
    { Resil.Supervise.default_policy with Resil.Supervise.deadline; retries; seed }
  in
  let server =
    Farm_server.create
      { Farm_server.socket; pool; policy; journal_dir; verbose }
  in
  (* SIGTERM/SIGINT stop the accept loop; in-flight grids finish
     streaming, client threads are joined, the socket file is removed. *)
  let request_stop _ = Farm_server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (match Farm_server.run server with
  | () -> ()
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "crisp_simd: cannot serve on %s: %s (%s %s)\n" socket
      (Unix.error_message e) fn arg;
    exit 2);
  Exec.Pool.shutdown pool

let () =
  let info =
    Cmd.info "crisp_simd" ~version:"1.0.0"
      ~doc:
        "Simulation-farm daemon: batches, shards, dedups and journals \
         CRISP grid work for concurrent crisp_sim clients."
  in
  let cmd =
    Cmd.v info
      Term.(
        const daemon $ socket_arg $ jobs_arg $ journal_dir_arg $ deadline_arg
        $ retries_arg $ seed_arg $ verbose_arg)
  in
  match Cmd.eval ~catch:false ~term_err:2 cmd with
  | code -> exit code
  | exception exn ->
    Printf.eprintf "crisp_simd: internal error: %s\n" (Printexc.to_string exn);
    exit 2
