(* crisp_simd: the persistent simulation-farm daemon.

   The default command listens on a Unix-domain socket for crisp_sim
   clients, decomposes their grid requests into canonical cells, dedups
   identical cells across all connected clients, shards them over a
   work-stealing domain pool under supervision, and (with --journal-dir)
   checkpoints every completed cell so a killed daemon restarts warm.
   Connections live under a hostile-traffic lifecycle: per-frame I/O
   deadlines, idle reaping, connection/request/queue budgets with
   structured Overloaded sheds, and graceful SIGTERM drain.

   The `chaos' subcommand is the wire-level self-check: it runs a
   retrying client through a seeded fault-injecting proxy and asserts
   the rendered figures are byte-identical to a clean run with zero
   cells recomputed.

   Exit codes (daemon): 0 clean shutdown (signal or client `shutdown'
   request); 2 startup failure (socket in use, bad arguments).
   Exit codes (chaos): 0 converged byte-identically; 1 disruption fully
   reported; 2 silent divergence, vacuous plan, or internal error. *)

open Cmdliner

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "crisp_simd.sock"

let socket_arg =
  let doc =
    "Unix-domain socket to listen on.  A stale file at this path is \
     unlinked; do not point two live daemons at the same path."
  in
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the shared simulation pool (0 = one per \
     recommended core; 1 = run cells inline on the client threads)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let journal_dir_arg =
  let doc =
    "Persist the farm's state under $(docv): a `cells' journal of every \
     completed cell value and a `server' journal of daemon counters.  A \
     restarted daemon serves journalled cells without recomputing them.  \
     Omitted = fully in-memory."
  in
  Arg.(value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR" ~doc)

let deadline_arg =
  let doc = "Per-cell wall-clock deadline in seconds; over-deadline cells degrade." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc = "Retries per crashed cell (deterministic seeded backoff)." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for backoff jitter." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log every connection, spawn, journal hit and degradation to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* ----- connection-lifecycle knobs ----- *)

let io_timeout_arg =
  let doc =
    "Per-frame read/write deadline in seconds: a frame that does not \
     transfer completely within $(docv) evicts its connection (the \
     slowloris and dead-reader defence).  0 waits forever."
  in
  Arg.(value & opt float 30. & info [ "io-timeout" ] ~docv:"SECS" ~doc)

let idle_timeout_arg =
  let doc =
    "Reap a connection with no request in flight for $(docv) seconds.  \
     0 keeps idle connections forever."
  in
  Arg.(value & opt float 600. & info [ "idle-timeout" ] ~docv:"SECS" ~doc)

let max_conns_arg =
  let doc =
    "Concurrent connection cap; excess connections are shed with a \
     structured Overloaded frame at accept time."
  in
  Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)

let max_requests_arg =
  let doc =
    "Requests served per connection before it is recycled with an \
     Overloaded (retry immediately) frame."
  in
  Arg.(value & opt int 10_000 & info [ "max-requests" ] ~docv:"N" ~doc)

let max_queued_arg =
  let doc =
    "Shed new grid requests while the simulation pool's queue is deeper \
     than $(docv).  0 admits regardless of queue depth."
  in
  Arg.(value & opt int 0 & info [ "max-queued" ] ~docv:"N" ~doc)

let retry_after_ms_arg =
  let doc = "Backoff hint (milliseconds) carried by Overloaded shed frames." in
  Arg.(value & opt int 250 & info [ "retry-after-ms" ] ~docv:"MS" ~doc)

let sndbuf_arg =
  let doc =
    "SO_SNDBUF for accepted sockets, bytes — bounds per-connection kernel \
     memory and makes dead-reader eviction prompt.  0 keeps the kernel \
     default."
  in
  Arg.(value & opt int 0 & info [ "sndbuf" ] ~docv:"BYTES" ~doc)

let positive v = if v <= 0. then None else Some v
let positive_int v = if v <= 0 then None else Some v

let limits_of io_timeout idle_timeout max_conns max_requests max_queued
    retry_after_ms sndbuf =
  { Farm_server.max_connections = max_conns;
    max_requests_per_conn = max_requests;
    max_queued = positive_int max_queued;
    io_timeout = positive io_timeout;
    idle_timeout = positive idle_timeout;
    sndbuf = positive_int sndbuf;
    retry_after_ms }

let make_pool jobs =
  let workers = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  if workers <= 1 then Exec.Pool.sequential else Exec.Pool.create ~workers ()

let daemon socket jobs journal_dir deadline retries seed verbose io_timeout
    idle_timeout max_conns max_requests max_queued retry_after_ms sndbuf =
  let pool = make_pool jobs in
  let policy =
    { Resil.Supervise.default_policy with Resil.Supervise.deadline; retries; seed }
  in
  let limits =
    limits_of io_timeout idle_timeout max_conns max_requests max_queued
      retry_after_ms sndbuf
  in
  let server =
    Farm_server.create
      { Farm_server.socket; pool; policy; journal_dir; verbose; limits }
  in
  (* SIGTERM/SIGINT start a graceful drain: the accept loop closes,
     in-flight grids finish streaming, idle connections get a Draining
     frame, client threads are joined, the socket file is removed and
     the clean shutdown is journalled. *)
  let request_stop _ = Farm_server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  (match Farm_server.run server with
  | () -> ()
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "crisp_simd: cannot serve on %s: %s (%s %s)\n" socket
      (Unix.error_message e) fn arg;
    exit 2);
  Exec.Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* chaos: the wire-level self-check.  One in-process daemon, a clean
   reference pass connected directly, then a retrying client run through
   a Chaos_proxy armed with a seeded (or explicit) wire-fault plan.  The
   verdict mirrors crisp_sim's grid-chaos contract:

     exit 0  figures byte-identical to the clean pass, zero cells
             recomputed (exactly-once across every retry), and at least
             one wire fault actually fired
     exit 1  the faults disrupted the run and every disruption was
             explicitly reported (retries exhausted, degraded cells)
     exit 2  SILENT DIVERGENCE (output changed, nothing reported), a
             vacuous plan (nothing fired), or an internal error *)

let capture_stdout f =
  let file = Filename.temp_file "crisp_farm_chaos" ".out" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved);
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in_noerr ic;
  Sys.remove file;
  contents

let chaos_tmpdir () =
  (* Short paths: two sockets live here and sun_path is ~107 bytes. *)
  let rec go i =
    let p =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "cschaos%d.%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir p 0o700 with
    | () -> p
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let chaos_fault_arg =
  let doc =
    "Wire-fault spec [up:|down:]ACTION[#N|+N] where ACTION is \
     delay[=SECS], stall[=SECS], truncate, corrupt-len or drop; #N fires \
     on exactly the Nth frame of that direction (counted globally across \
     reconnects), +N from the Nth onward.  Repeatable.  Omitted = a \
     seeded random plan."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC" ~doc)

let chaos_grids_arg =
  let doc = "Figure grids to converge on (default: fig8)." in
  Arg.(value & pos_all string [] & info [] ~docv:"GRID" ~doc)

let chaos_instrs_arg =
  let doc = "Dynamic micro-ops per evaluation run (kept small: chaos runs every grid twice)." in
  Arg.(value & opt int 4000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let chaos_train_arg =
  let doc = "Dynamic micro-ops for the profiling (training) run." in
  Arg.(value & opt int 3000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let chaos_attempts_arg =
  let doc = "Client attempts per grid before giving up." in
  Arg.(value & opt int 8 & info [ "attempts" ] ~docv:"N" ~doc)

let chaos seed fault_specs grids instrs train_instrs jobs attempts verbose =
  let specs =
    let tags = if grids = [] then [ "fig8" ] else grids in
    List.map
      (fun tag ->
        match Grid.find tag with
        | Some spec -> spec
        | None ->
          Printf.eprintf "crisp_simd: unknown grid %S (known: %s)\n" tag
            (String.concat ", "
               (List.map (fun (s : Grid.spec) -> s.Grid.tag) Grid.catalog));
          exit 2)
      tags
  in
  let plan =
    match fault_specs with
    | [] -> Chaos_proxy.random ~seed
    | specs ->
      List.map
        (fun s ->
          match Chaos_proxy.parse_spec s with
          | Ok tr -> tr
          | Error msg ->
            Printf.eprintf "crisp_simd: %s\n" msg;
            exit 2)
        specs
  in
  Printf.printf "farm-chaos: seed %d, %d grid(s), plan:\n" seed (List.length specs);
  List.iter
    (fun tr -> Printf.printf "  %s\n" (Chaos_proxy.trigger_to_string tr))
    plan;
  let dir = chaos_tmpdir () in
  let daemon_socket = Filename.concat dir "d.sock" in
  let proxy_socket = Filename.concat dir "p.sock" in
  let pool = make_pool jobs in
  let srv =
    Farm_server.create
      { Farm_server.socket = daemon_socket;
        pool;
        policy = Resil.Supervise.default_policy;
        journal_dir = Some (Filename.concat dir "journal");
        verbose;
        limits = Farm_server.default_limits }
  in
  let srv_thread = Thread.create Farm_server.run srv in
  let proxy = ref None in
  let cleanup () =
    (match !proxy with Some p -> Chaos_proxy.stop p | None -> ());
    Farm_server.stop srv;
    Thread.join srv_thread;
    Exec.Pool.shutdown pool;
    rm_rf dir
  in
  let finish code =
    cleanup ();
    exit code
  in
  let connect_ready socket =
    (* The in-process daemon binds asynchronously; wait for it. *)
    let rec go n =
      match Farm_client.connect ~connect_timeout:1. ~socket () with
      | c -> Farm_client.close c
      | exception Farm_client.Disconnected _ when n > 0 ->
        Thread.delay 0.02;
        go (n - 1)
    in
    go 250
  in
  try
    connect_ready daemon_socket;
    (* Pass 1: clean reference, connected directly to the daemon. *)
    let clean =
      capture_stdout (fun () ->
          List.iter
            (fun (spec : Grid.spec) ->
              let c = Farm_client.connect ~socket:daemon_socket () in
              Fun.protect
                ~finally:(fun () -> Farm_client.close c)
                (fun () ->
                  let r =
                    Farm_client.run_grid c ~spec ~eval_instrs:instrs
                      ~train_instrs ()
                  in
                  Grid.render spec r.Farm_client.rows))
            specs)
    in
    let misses_before =
      (Farm_server.stats srv).Farm_protocol.memo.Exec.Memo.misses
    in
    (* Pass 2: the same grids through the fault-injecting proxy, with a
       retrying client.  Every cell is already memoized (and journalled)
       server-side, so convergence must recompute nothing. *)
    let p = Chaos_proxy.start ~listen:proxy_socket ~upstream:daemon_socket ~plan in
    proxy := Some p;
    let retry =
      { Farm_client.default_retry with
        Farm_client.attempts;
        seed;
        connect_timeout = 5. }
    in
    let total_attempts = ref 0 in
    let outcome =
      match
        capture_stdout (fun () ->
            List.iter
              (fun (spec : Grid.spec) ->
                let r, used =
                  Farm_client.run_grid_retrying ~socket:proxy_socket ~retry
                    ~spec ~eval_instrs:instrs ~train_instrs ()
                in
                total_attempts := !total_attempts + used;
                Grid.render spec r.Farm_client.rows)
              specs)
      with
      | chaotic -> Ok chaotic
      | exception Farm_client.Farm_error msg -> Error msg
    in
    let fired = Chaos_proxy.fired p in
    Printf.printf "farm-chaos: %d wire fault(s) fired:\n" (List.length fired);
    List.iter
      (fun (dir, n, action) ->
        Printf.printf "  %s frame %d: %s\n"
          (Chaos_proxy.direction_to_string dir)
          n
          (Chaos_proxy.action_to_string action))
      fired;
    let misses_after =
      (Farm_server.stats srv).Farm_protocol.memo.Exec.Memo.misses
    in
    let recomputed = misses_after - misses_before in
    match outcome with
    | Error msg ->
      (* The client gave up, loudly: a reported disruption, not a lie. *)
      Printf.printf
        "farm-chaos: client gave up and said so: %s\n\
         farm-chaos: faults disrupted the run and the disruption was \
         reported (exit 1)\n"
        msg;
      finish 1
    | Ok chaotic ->
      Printf.printf
        "farm-chaos: converged in %d attempt(s) across %d grid(s), %d \
         cell(s) recomputed\n"
        !total_attempts (List.length specs) recomputed;
      if chaotic <> clean then begin
        Printf.printf
          "farm-chaos: SILENT DIVERGENCE — figures differ from the clean \
           pass with no reported failure (exit 2)\n";
        print_string "--- clean ---\n";
        print_string clean;
        print_string "--- chaotic ---\n";
        print_string chaotic;
        finish 2
      end
      else if recomputed <> 0 then begin
        Printf.printf
          "farm-chaos: EXACTLY-ONCE VIOLATION — %d cell(s) recomputed \
           during retries (exit 2)\n"
          recomputed;
        finish 2
      end
      else if fired = [] then begin
        Printf.printf
          "farm-chaos: VACUOUS RUN — no wire fault fired, nothing was \
           verified (exit 2)\n";
        finish 2
      end
      else begin
        Printf.printf
          "farm-chaos: clean — figures byte-identical through every wire \
           fault, zero recomputation (exit 0)\n";
        finish 0
      end
  with exn ->
    Printf.eprintf "crisp_simd: chaos internal error: %s\n"
      (Printexc.to_string exn);
    finish 2

(* ------------------------------------------------------------------ *)

let daemon_term =
  Term.(
    const daemon $ socket_arg $ jobs_arg $ journal_dir_arg $ deadline_arg
    $ retries_arg $ seed_arg $ verbose_arg $ io_timeout_arg $ idle_timeout_arg
    $ max_conns_arg $ max_requests_arg $ max_queued_arg $ retry_after_ms_arg
    $ sndbuf_arg)

let chaos_cmd =
  let info =
    Cmd.info "chaos"
      ~doc:
        "Wire-level chaos self-check: run a retrying client through a \
         seeded fault-injecting proxy (delays, stalls, torn frames, \
         corrupt length prefixes, dropped connections) and assert the \
         rendered figures are byte-identical to a clean run with zero \
         cells recomputed."
  in
  Cmd.v info
    Term.(
      const chaos $ seed_arg $ chaos_fault_arg $ chaos_grids_arg
      $ chaos_instrs_arg $ chaos_train_arg $ jobs_arg $ chaos_attempts_arg
      $ verbose_arg)

let () =
  let info =
    Cmd.info "crisp_simd" ~version:"1.0.0"
      ~doc:
        "Simulation-farm daemon: batches, shards, dedups and journals \
         CRISP grid work for concurrent crisp_sim clients."
  in
  (* The daemon stays the default command, so `crisp_simd --socket ...`
     keeps meaning what it always did. *)
  let group = Cmd.group ~default:daemon_term info [ chaos_cmd ] in
  match Cmd.eval ~catch:false ~term_err:2 group with
  | code -> exit code
  | exception exn ->
    Printf.eprintf "crisp_simd: internal error: %s\n" (Printexc.to_string exn);
    exit 2
