(* crisp_sim: command-line front end for the CRISP reproduction.

   Subcommands:
     simulate    run one workload on the cycle-level core
     trace       run one workload with the observability layer and export events
     profile     print the software profiling report for a workload
     slices      print the criticality tagging for a workload
     experiments regenerate paper tables/figures
     list        list the workload catalog *)

open Cmdliner

let workload_arg =
  let doc = "Workload name (see the `list' subcommand)." in
  Arg.(value & opt string "pointer_chase" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let instrs_arg =
  let doc = "Dynamic micro-ops to simulate." in
  Arg.(value & opt int 100_000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let train_arg =
  let doc = "Dynamic micro-ops profiled on the train input." in
  Arg.(value & opt int 80_000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let sched_arg =
  let doc = "Scheduler variant: ooo, crisp, ibda-1k, ibda-8k, ibda-64k, ibda-inf, random." in
  Arg.(value & opt string "crisp" & info [ "s"; "scheduler" ] ~docv:"SCHED" ~doc)

let rs_arg =
  let doc = "Reservation-station entries." in
  Arg.(value & opt int 96 & info [ "rs" ] ~docv:"N" ~doc)

let rob_arg =
  let doc = "Reorder-buffer entries." in
  Arg.(value & opt int 224 & info [ "rob" ] ~docv:"N" ~doc)

let threshold_arg =
  let doc = "Miss-contribution threshold T for delinquent-load selection." in
  Arg.(value & opt float 0.01 & info [ "t"; "threshold" ] ~docv:"T" ~doc)

let base_config ~rs ~rob =
  if rs = 96 && rob = 224 then Cpu_config.skylake
  else Cpu_config.with_window ~rs ~rob Cpu_config.skylake

let variant_of_string threshold = function
  | "ooo" -> Ok Runner.Ooo
  | "crisp" ->
    Ok
      (Runner.Crisp
         ( Classifier.with_miss_contribution threshold Classifier.default,
           Tagger.default_options ))
  | "ibda-1k" -> Ok (Runner.Ibda Ibda.ist_1k)
  | "ibda-8k" -> Ok (Runner.Ibda Ibda.ist_8k)
  | "ibda-64k" -> Ok (Runner.Ibda Ibda.ist_64k)
  | "ibda-inf" -> Ok (Runner.Ibda Ibda.ist_infinite)
  | other -> Error other

let simulate workload instrs train_instrs sched rs rob threshold =
  let cfg = base_config ~rs ~rob in
  let cfg =
    if sched = "random" then Cpu_config.with_policy Scheduler.Random_ready cfg else cfg
  in
  let variant =
    if sched = "random" then Runner.Ooo
    else
      match variant_of_string threshold sched with
      | Ok v -> v
      | Error other ->
        Printf.eprintf "unknown scheduler %S\n" other;
        exit 2
  in
  let outcome =
    Runner.evaluate ~cfg ~eval_instrs:instrs ~train_instrs ~name:workload variant
  in
  Printf.printf "%s on %s (%d micro-ops):\n" sched workload instrs;
  Format.printf "%a" Cpu_stats.pp_summary outcome.Runner.stats;
  (match outcome.Runner.artifacts with
  | Some a ->
    Printf.printf "tagging: %d static pcs, %.1f%% of the dynamic stream\n"
      a.Fdo.tagging.Tagger.static_count
      (100. *. a.Fdo.tagging.Tagger.dynamic_ratio)
  | None -> ());
  if sched <> "ooo" then begin
    let base =
      Runner.evaluate ~cfg ~eval_instrs:instrs ~train_instrs ~name:workload Runner.Ooo
    in
    Printf.printf "speedup over OOO: %+.1f%%\n"
      (100.
      *. ((Cpu_stats.ipc outcome.Runner.stats /. Cpu_stats.ipc base.Runner.stats) -. 1.))
  end

let trace_output_arg =
  let doc = "Output file ($(docv) = - writes to stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Export format: $(b,chrome) (chrome://tracing / Perfetto JSON), $(b,jsonl) \
     (one JSON object per retained ring event) or $(b,binary) (the raw ring)."
  in
  Arg.(value & opt string "chrome" & info [ "f"; "format" ] ~docv:"FMT" ~doc)

let trace_ring_arg =
  let doc = "Event-ring capacity: how many recent events the exporters see." in
  Arg.(value & opt int 65_536 & info [ "ring" ] ~docv:"N" ~doc)

let trace workload instrs train_instrs sched rs rob threshold output format ring =
  let cfg = base_config ~rs ~rob in
  let variant =
    match variant_of_string threshold sched with
    | Ok v -> v
    | Error other ->
      Printf.eprintf "unknown scheduler %S\n" other;
      exit 2
  in
  let tracer = Obs_tracer.create ~ring_capacity:ring () in
  let outcome, tracer =
    Runner.traced ~cfg ~eval_instrs:instrs ~train_instrs ~tracer ~name:workload
      variant
  in
  let write_to f =
    if output = "-" then f stdout
    else begin
      let oc = open_out_bin output in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
    end
  in
  (match format with
  | "chrome" | "jsonl" ->
    let buf = Buffer.create 65_536 in
    if format = "chrome" then Obs_export.chrome_trace buf tracer
    else Obs_export.jsonl buf tracer;
    write_to (fun oc -> Buffer.output_buffer oc buf)
  | "binary" -> write_to (fun oc -> Obs_ring.write_binary oc (Obs_tracer.ring tracer))
  | other ->
    Printf.eprintf "unknown format %S (expected chrome, jsonl or binary)\n" other;
    exit 2);
  Printf.eprintf "%s on %s (%d micro-ops):\n" sched workload instrs;
  Format.eprintf "%a" Cpu_stats.pp_summary outcome.Runner.stats;
  let c = Obs_tracer.counter tracer in
  Printf.eprintf
    "events: %d recorded, %d in window, %d dropped\n\
     stages: fetch %d  dispatch %d  select %d (%d PRIO overrides)  issue %d  \
     retire %d (%d critical)\n\
     memory: %d L1D->LLC  %d L1D->DRAM  %d L1I misses  %d prefetches  %d MSHR \
     retries\n"
    (c "events_recorded")
    (Obs_ring.length (Obs_tracer.ring tracer))
    (c "events_dropped") (c "fetch") (c "dispatch") (c "select")
    (c "prio_override") (c "issue") (c "retire") (c "retire_critical")
    (c "l1d_miss_llc") (c "l1d_miss_mem") (c "l1i_miss") (c "prefetch")
    (c "mshr_retry")

let profile workload instrs =
  let w = Catalog.make ~input:Workload.Train ~instrs workload in
  let trace = Workload.trace w in
  let r = Profiler.profile trace in
  Printf.printf "%s (train input, %d micro-ops):\n" workload r.Profiler.total_instrs;
  Printf.printf "  loads %d  LLC misses %d  branches %d  mispredicts %d\n"
    r.Profiler.total_loads r.Profiler.total_llc_misses r.Profiler.total_branches
    r.Profiler.total_mispredicts;
  let loads =
    Hashtbl.fold (fun pc e acc -> (pc, e) :: acc) r.Profiler.loads []
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Profiler.llc_misses a.Profiler.llc_misses)
  in
  Printf.printf "  top loads by LLC misses:\n";
  List.iteri
    (fun i (pc, (e : Profiler.load_stats)) ->
      if i < 10 && e.Profiler.llc_misses > 0 then
        Printf.printf "    pc %4d: execs %6d  miss%% %5.1f  stride %4.2f  mlp %4.1f\n" pc
          e.Profiler.execs
          (100. *. Profiler.miss_ratio e)
          (Profiler.stride_ratio e) (Profiler.avg_mlp e))
    loads;
  let branches =
    Hashtbl.fold (fun pc e acc -> (pc, e) :: acc) r.Profiler.branch_table []
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Profiler.b_mispredicts a.Profiler.b_mispredicts)
  in
  Printf.printf "  top branches by mispredictions:\n";
  List.iteri
    (fun i (pc, (e : Profiler.branch_stats)) ->
      if i < 5 && e.Profiler.b_mispredicts > 0 then
        Printf.printf "    pc %4d: execs %6d  mispredict%% %5.1f\n" pc e.Profiler.b_execs
          (100. *. Profiler.mispredict_ratio e))
    branches

let slices workload instrs threshold =
  let w = Catalog.make ~input:Workload.Train ~instrs workload in
  let artifacts =
    Fdo.analyze
      ~thresholds:(Classifier.with_miss_contribution threshold Classifier.default)
      w
  in
  let t = artifacts.Fdo.tagging in
  Printf.printf "%s: %d slices, %d static critical pcs, %.1f%% dynamic ratio\n" workload
    (List.length t.Tagger.slices) t.Tagger.static_count
    (100. *. t.Tagger.dynamic_ratio);
  List.iter
    (fun (s : Tagger.slice_info) ->
      Printf.printf "  %s slice @ pc %d: %d static, %.1f dynamic avg, contribution %d%s\n"
        (match s.Tagger.kind with
         | `Load -> "load  "
         | `Branch -> "branch"
         | `Long_op -> "longop")
        s.Tagger.root_pc s.Tagger.static_size s.Tagger.avg_dynamic_length
        s.Tagger.contribution
        (if s.Tagger.dropped then "  [dropped]" else ""))
    t.Tagger.slices

let all_arg =
  let doc = "Check every workload in the catalog." in
  Arg.(value & flag & info [ "a"; "all" ] ~doc)

let scoreboard_arg =
  let doc =
    "Also run the timing simulation twice per scheduler policy (pipeline \
     scoreboard off, then on) and require no invariant violation and \
     bit-identical statistics."
  in
  Arg.(value & flag & info [ "scoreboard" ] ~doc)

let check all workload instrs train_instrs with_scoreboard =
  let reports =
    if all then
      Check_runner.check_all ~instrs ~train_instrs ~scoreboard:with_scoreboard ()
    else
      [ Check_runner.check_workload ~instrs ~train_instrs
          ~scoreboard:with_scoreboard workload ]
  in
  List.iter (fun r -> Format.printf "@[<v>%a@]@." Check_runner.pp_report r) reports;
  let failed = List.filter (fun r -> not (Check_runner.ok r)) reports in
  if failed = [] then
    Printf.printf "check: %d workload(s) clean\n" (List.length reports)
  else begin
    Printf.printf "check: %d of %d workload(s) FAILED\n" (List.length failed)
      (List.length reports);
    exit 1
  end

let list_workloads () =
  List.iter
    (fun name ->
      let w = Catalog.make ~instrs:1 name in
      Printf.printf "%-14s %s\n" name w.Workload.description)
    Catalog.names

let figures_arg =
  let doc = "Figures to regenerate (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the experiment grids (0 = one per recommended core). \
     With $(docv) = 1 the pool is bypassed and every cell runs sequentially \
     on the calling domain; any other value fans the (workload x variant) \
     cells out to a work-stealing domain pool.  Figures are byte-identical \
     for every value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Install a pool for the duration of [f]; tear it down afterwards so a
   later invocation (or an exception) never leaks worker domains. *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  if jobs <= 1 then f ()
  else begin
    let pool = Exec.Pool.create ~workers:jobs () in
    Experiments.set_pool pool;
    Fun.protect f ~finally:(fun () ->
        Experiments.set_pool Exec.Pool.sequential;
        Exec.Pool.shutdown pool)
  end

let experiments figures instrs train_instrs jobs =
  with_jobs jobs @@ fun () ->
  let sizes = { Experiments.eval_instrs = instrs; train_instrs } in
  let run_one = function
    | "table1" -> Experiments.table1 ()
    | "motivating" -> ignore (Experiments.motivating ~sizes ())
    | "fig1" -> ignore (Experiments.fig1 ~sizes ())
    | "fig3" -> ignore (Experiments.fig3 ())
    | "fig4" -> ignore (Experiments.fig4 ~sizes ())
    | "fig7" -> ignore (Experiments.fig7 ~sizes ())
    | "fig8" -> ignore (Experiments.fig8 ~sizes ())
    | "fig9" -> ignore (Experiments.fig9 ~sizes ())
    | "fig10" -> ignore (Experiments.fig10 ~sizes ())
    | "fig11" -> ignore (Experiments.fig11 ~sizes ())
    | "fig12" -> ignore (Experiments.fig12 ~sizes ())
    | "ablations" -> ignore (Experiments.ablations ~sizes ())
    | "division" -> ignore (Experiments.division ~sizes ())
    | other -> Printf.eprintf "unknown figure %S\n" other
  in
  match figures with
  | [] -> Experiments.run_all ~sizes ()
  | figures -> List.iter run_one figures

let simulate_cmd =
  let info = Cmd.info "simulate" ~doc:"Run one workload on the cycle-level core." in
  Cmd.v info
    Term.(
      const simulate $ workload_arg $ instrs_arg $ train_arg $ sched_arg $ rs_arg
      $ rob_arg $ threshold_arg)

let trace_cmd =
  let info =
    Cmd.info "trace"
      ~doc:
        "Run one workload with the observability layer enabled and export the \
         pipeline event stream (statistics go to stderr)."
  in
  Cmd.v info
    Term.(
      const trace $ workload_arg $ instrs_arg $ train_arg $ sched_arg $ rs_arg
      $ rob_arg $ threshold_arg $ trace_output_arg $ trace_format_arg
      $ trace_ring_arg)

let profile_cmd =
  let info = Cmd.info "profile" ~doc:"Print the software profiling report." in
  Cmd.v info Term.(const profile $ workload_arg $ instrs_arg)

let slices_cmd =
  let info = Cmd.info "slices" ~doc:"Print the criticality tagging and its slices." in
  Cmd.v info Term.(const slices $ workload_arg $ instrs_arg $ threshold_arg)

let experiments_cmd =
  let info = Cmd.info "experiments" ~doc:"Regenerate paper tables and figures." in
  Cmd.v info Term.(const experiments $ figures_arg $ instrs_arg $ train_arg $ jobs_arg)

let check_instrs_arg =
  let doc = "Dynamic micro-ops for the ref-input lint/scoreboard context." in
  Arg.(value & opt int 60_000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let check_train_arg =
  let doc = "Dynamic micro-ops traced on the train input for slice checks." in
  Arg.(value & opt int 40_000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let check_cmd =
  let info =
    Cmd.info "check"
      ~doc:
        "Run the static validation battery: program lint, independent slice \
         and tag-budget verification, and (with $(b,--scoreboard)) the \
         pipeline-invariant oracle."
  in
  Cmd.v info
    Term.(
      const check $ all_arg $ workload_arg $ check_instrs_arg $ check_train_arg
      $ scoreboard_arg)

let list_cmd =
  let info = Cmd.info "list" ~doc:"List the workload catalog." in
  Cmd.v info Term.(const list_workloads $ const ())

let () =
  let info =
    Cmd.info "crisp_sim" ~version:"1.0.0"
      ~doc:"CRISP critical-slice prefetching: simulator and analysis tools"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ simulate_cmd; trace_cmd; profile_cmd; slices_cmd; experiments_cmd;
            check_cmd; list_cmd ]))
