(* crisp_sim: command-line front end for the CRISP reproduction.

   Subcommands:
     simulate    run one workload on the cycle-level core
     trace       run one workload with the observability layer and export events
     profile     print the software profiling report for a workload
     slices      print the criticality tagging for a workload
     experiments regenerate paper tables/figures
     chaos       deterministic fault-injection harness over one figure
     list        list the workload catalog
     client      run figure grids against a crisp_simd farm daemon

   Exit codes: 0 success; 1 a check failed or the run degraded (some
   cells timed out / crashed / were quarantined — see the stderr
   summary); 2 usage error or internal failure. *)

open Cmdliner

let workload_arg =
  let doc = "Workload name (see the `list' subcommand)." in
  Arg.(value & opt string "pointer_chase" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

(* Validate names up front: `Catalog.make` raises [Not_found] deep inside
   a run, which would surface as an opaque internal error. *)
let require_workload name =
  if not (List.mem name Catalog.names) then begin
    Printf.eprintf
      "crisp_sim: unknown workload %S (run `crisp_sim list' for the catalog)\n"
      name;
    exit 2
  end

let instrs_arg =
  let doc = "Dynamic micro-ops to simulate." in
  Arg.(value & opt int 100_000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let train_arg =
  let doc = "Dynamic micro-ops profiled on the train input." in
  Arg.(value & opt int 80_000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let sched_arg =
  let doc = "Scheduler variant: ooo, crisp, ibda-1k, ibda-8k, ibda-64k, ibda-inf, random." in
  Arg.(value & opt string "crisp" & info [ "s"; "scheduler" ] ~docv:"SCHED" ~doc)

let rs_arg =
  let doc = "Reservation-station entries." in
  Arg.(value & opt int 96 & info [ "rs" ] ~docv:"N" ~doc)

let rob_arg =
  let doc = "Reorder-buffer entries." in
  Arg.(value & opt int 224 & info [ "rob" ] ~docv:"N" ~doc)

let issue_width_arg =
  let doc =
    "Select/issue slots per cycle (defaults to the front-end fetch width)."
  in
  Arg.(value & opt (some int) None & info [ "issue-width" ] ~docv:"N" ~doc)

let threshold_arg =
  let doc = "Miss-contribution threshold T for delinquent-load selection." in
  Arg.(value & opt float 0.01 & info [ "t"; "threshold" ] ~docv:"T" ~doc)

let base_config ~rs ~rob ~issue_width =
  let cfg =
    if rs = 96 && rob = 224 then Cpu_config.skylake
    else Cpu_config.with_window ~rs ~rob Cpu_config.skylake
  in
  match issue_width with
  | None -> cfg
  | Some w ->
    if w < 1 then begin
      Printf.eprintf "crisp_sim: --issue-width must be at least 1\n";
      exit 2
    end;
    Cpu_config.with_issue_width w cfg

let variant_of_string threshold = function
  | "ooo" -> Ok Runner.Ooo
  | "crisp" ->
    Ok
      (Runner.Crisp
         ( Classifier.with_miss_contribution threshold Classifier.default,
           Tagger.default_options ))
  | "ibda-1k" -> Ok (Runner.Ibda Ibda.ist_1k)
  | "ibda-8k" -> Ok (Runner.Ibda Ibda.ist_8k)
  | "ibda-64k" -> Ok (Runner.Ibda Ibda.ist_64k)
  | "ibda-inf" -> Ok (Runner.Ibda Ibda.ist_infinite)
  | other -> Error other

let simulate workload instrs train_instrs sched rs rob issue_width threshold =
  require_workload workload;
  let cfg = base_config ~rs ~rob ~issue_width in
  let cfg =
    if sched = "random" then Cpu_config.with_policy Scheduler.Random_ready cfg else cfg
  in
  let variant =
    if sched = "random" then Runner.Ooo
    else
      match variant_of_string threshold sched with
      | Ok v -> v
      | Error other ->
        Printf.eprintf "unknown scheduler %S\n" other;
        exit 2
  in
  let outcome =
    Runner.evaluate ~cfg ~eval_instrs:instrs ~train_instrs ~name:workload variant
  in
  Printf.printf "%s on %s (%d micro-ops):\n" sched workload instrs;
  Format.printf "%a" Cpu_stats.pp_summary outcome.Runner.stats;
  (match outcome.Runner.artifacts with
  | Some a ->
    Printf.printf "tagging: %d static pcs, %.1f%% of the dynamic stream\n"
      a.Fdo.tagging.Tagger.static_count
      (100. *. a.Fdo.tagging.Tagger.dynamic_ratio)
  | None -> ());
  if sched <> "ooo" then begin
    let base =
      Runner.evaluate ~cfg ~eval_instrs:instrs ~train_instrs ~name:workload Runner.Ooo
    in
    Printf.printf "speedup over OOO: %+.1f%%\n"
      (100.
      *. ((Cpu_stats.ipc outcome.Runner.stats /. Cpu_stats.ipc base.Runner.stats) -. 1.))
  end

let trace_output_arg =
  let doc = "Output file ($(docv) = - writes to stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Export format: $(b,chrome) (chrome://tracing / Perfetto JSON), $(b,jsonl) \
     (one JSON object per retained ring event) or $(b,binary) (the raw ring)."
  in
  Arg.(value & opt string "chrome" & info [ "f"; "format" ] ~docv:"FMT" ~doc)

let trace_ring_arg =
  let doc = "Event-ring capacity: how many recent events the exporters see." in
  Arg.(value & opt int 65_536 & info [ "ring" ] ~docv:"N" ~doc)

let trace workload instrs train_instrs sched rs rob issue_width threshold output
    format ring =
  require_workload workload;
  let cfg = base_config ~rs ~rob ~issue_width in
  let variant =
    match variant_of_string threshold sched with
    | Ok v -> v
    | Error other ->
      Printf.eprintf "unknown scheduler %S\n" other;
      exit 2
  in
  let tracer = Obs_tracer.create ~ring_capacity:ring () in
  let outcome, tracer =
    Runner.traced ~cfg ~eval_instrs:instrs ~train_instrs ~tracer ~name:workload
      variant
  in
  let write_to f =
    if output = "-" then f stdout
    else begin
      let oc = open_out_bin output in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)
    end
  in
  (match format with
  | "chrome" | "jsonl" ->
    let buf = Buffer.create 65_536 in
    if format = "chrome" then Obs_export.chrome_trace buf tracer
    else Obs_export.jsonl buf tracer;
    write_to (fun oc -> Buffer.output_buffer oc buf)
  | "binary" -> write_to (fun oc -> Obs_ring.write_binary oc (Obs_tracer.ring tracer))
  | other ->
    Printf.eprintf "unknown format %S (expected chrome, jsonl or binary)\n" other;
    exit 2);
  Printf.eprintf "%s on %s (%d micro-ops):\n" sched workload instrs;
  Format.eprintf "%a" Cpu_stats.pp_summary outcome.Runner.stats;
  let c = Obs_tracer.counter tracer in
  Printf.eprintf
    "events: %d recorded, %d in window, %d dropped\n\
     stages: fetch %d  dispatch %d  select %d (%d PRIO overrides)  issue %d  \
     retire %d (%d critical)\n\
     memory: %d L1D->LLC  %d L1D->DRAM  %d L1I misses  %d prefetches  %d MSHR \
     retries\n"
    (c "events_recorded")
    (Obs_ring.length (Obs_tracer.ring tracer))
    (c "events_dropped") (c "fetch") (c "dispatch") (c "select")
    (c "prio_override") (c "issue") (c "retire") (c "retire_critical")
    (c "l1d_miss_llc") (c "l1d_miss_mem") (c "l1i_miss") (c "prefetch")
    (c "mshr_retry")

let profile workload instrs =
  require_workload workload;
  let w = Catalog.make ~input:Workload.Train ~instrs workload in
  let trace = Workload.trace w in
  let r = Profiler.profile trace in
  Printf.printf "%s (train input, %d micro-ops):\n" workload r.Profiler.total_instrs;
  Printf.printf "  loads %d  LLC misses %d  branches %d  mispredicts %d\n"
    r.Profiler.total_loads r.Profiler.total_llc_misses r.Profiler.total_branches
    r.Profiler.total_mispredicts;
  let loads =
    Hashtbl.fold (fun pc e acc -> (pc, e) :: acc) r.Profiler.loads []
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Profiler.llc_misses a.Profiler.llc_misses)
  in
  Printf.printf "  top loads by LLC misses:\n";
  List.iteri
    (fun i (pc, (e : Profiler.load_stats)) ->
      if i < 10 && e.Profiler.llc_misses > 0 then
        Printf.printf "    pc %4d: execs %6d  miss%% %5.1f  stride %4.2f  mlp %4.1f\n" pc
          e.Profiler.execs
          (100. *. Profiler.miss_ratio e)
          (Profiler.stride_ratio e) (Profiler.avg_mlp e))
    loads;
  let branches =
    Hashtbl.fold (fun pc e acc -> (pc, e) :: acc) r.Profiler.branch_table []
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Profiler.b_mispredicts a.Profiler.b_mispredicts)
  in
  Printf.printf "  top branches by mispredictions:\n";
  List.iteri
    (fun i (pc, (e : Profiler.branch_stats)) ->
      if i < 5 && e.Profiler.b_mispredicts > 0 then
        Printf.printf "    pc %4d: execs %6d  mispredict%% %5.1f\n" pc e.Profiler.b_execs
          (100. *. Profiler.mispredict_ratio e))
    branches

let slices workload instrs threshold =
  require_workload workload;
  let w = Catalog.make ~input:Workload.Train ~instrs workload in
  let artifacts =
    Fdo.analyze
      ~thresholds:(Classifier.with_miss_contribution threshold Classifier.default)
      w
  in
  let t = artifacts.Fdo.tagging in
  Printf.printf "%s: %d slices, %d static critical pcs, %.1f%% dynamic ratio\n" workload
    (List.length t.Tagger.slices) t.Tagger.static_count
    (100. *. t.Tagger.dynamic_ratio);
  List.iter
    (fun (s : Tagger.slice_info) ->
      Printf.printf "  %s slice @ pc %d: %d static, %.1f dynamic avg, contribution %d%s\n"
        (match s.Tagger.kind with
         | `Load -> "load  "
         | `Branch -> "branch"
         | `Long_op -> "longop")
        s.Tagger.root_pc s.Tagger.static_size s.Tagger.avg_dynamic_length
        s.Tagger.contribution
        (if s.Tagger.dropped then "  [dropped]" else ""))
    t.Tagger.slices

let all_arg =
  let doc = "Check every workload in the catalog." in
  Arg.(value & flag & info [ "a"; "all" ] ~doc)

let scoreboard_arg =
  let doc =
    "Also run the timing simulation twice per scheduler policy (pipeline \
     scoreboard off, then on) and require no invariant violation and \
     bit-identical statistics."
  in
  Arg.(value & flag & info [ "scoreboard" ] ~doc)

let static_arg =
  let doc =
    "Also run the profile-free static criticality predictor twice (requiring \
     bit-identical output) and score it against the profiled CRISP tagger."
  in
  Arg.(value & flag & info [ "static" ] ~doc)

let check all workload instrs train_instrs with_scoreboard with_static =
  if not all then require_workload workload;
  let reports =
    if all then
      Check_runner.check_all ~instrs ~train_instrs ~scoreboard:with_scoreboard
        ~static:with_static ()
    else
      [ Check_runner.check_workload ~instrs ~train_instrs
          ~scoreboard:with_scoreboard ~static:with_static workload ]
  in
  List.iter (fun r -> Format.printf "@[<v>%a@]@." Check_runner.pp_report r) reports;
  (* Under --all the shared figure-grid specs ride along: a daemon-served
     grid and a locally-run figure must agree on what is well-formed. *)
  let bad_grids =
    if all then
      List.filter_map
        (fun (spec : Grid.spec) ->
          match Grid.validate spec with
          | Ok () -> None
          | Error msg -> Some (spec.Grid.tag, msg))
        Grid.catalog
    else []
  in
  List.iter
    (fun (tag, msg) -> Printf.printf "grid %s: INVALID — %s\n" tag msg)
    bad_grids;
  if all then
    Printf.printf "grids: %d spec(s) validated, %d invalid\n"
      (List.length Grid.catalog) (List.length bad_grids);
  let failed = List.filter (fun r -> not (Check_runner.ok r)) reports in
  if failed = [] && bad_grids = [] then
    Printf.printf "check: %d workload(s) clean\n" (List.length reports)
  else begin
    Printf.printf "check: %d of %d workload(s) FAILED\n" (List.length failed)
      (List.length reports);
    exit 1
  end

let list_workloads () =
  List.iter
    (fun name ->
      let w = Catalog.make ~instrs:1 name in
      Printf.printf "%-14s %s\n" name w.Workload.description)
    Catalog.names

let figures_arg =
  let doc = "Figures to regenerate (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the experiment grids (0 = one per recommended core). \
     With $(docv) = 1 the pool is bypassed and every cell runs sequentially \
     on the calling domain; any other value fans the (workload x variant) \
     cells out to a work-stealing domain pool.  Figures are byte-identical \
     for every value."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Install a pool for the duration of [f]; tear it down afterwards so a
   later invocation (or an exception) never leaks worker domains. *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  if jobs <= 1 then f ()
  else begin
    let pool = Exec.Pool.create ~workers:jobs () in
    Experiments.set_pool pool;
    Fun.protect f ~finally:(fun () ->
        Experiments.set_pool Exec.Pool.sequential;
        Exec.Pool.shutdown pool)
  end

let known_figures =
  [ "table1"; "motivating"; "fig1"; "fig3"; "fig4"; "fig7"; "fig8"; "fig9";
    "fig10"; "fig11"; "fig12"; "static_crit"; "ablations"; "division" ]

let validate_figures figures =
  List.iter
    (fun fig ->
      if not (List.mem fig known_figures) then begin
        Printf.eprintf "crisp_sim: unknown figure %S (expected one of: %s)\n" fig
          (String.concat ", " known_figures);
        exit 2
      end)
    figures

let run_figure ~sizes = function
  | "table1" -> Experiments.table1 ()
  | "motivating" -> ignore (Experiments.motivating ~sizes ())
  | "fig1" -> ignore (Experiments.fig1 ~sizes ())
  | "fig3" -> ignore (Experiments.fig3 ())
  | "fig4" -> ignore (Experiments.fig4 ~sizes ())
  | "fig7" -> ignore (Experiments.fig7 ~sizes ())
  | "fig8" -> ignore (Experiments.fig8 ~sizes ())
  | "fig9" -> ignore (Experiments.fig9 ~sizes ())
  | "fig10" -> ignore (Experiments.fig10 ~sizes ())
  | "fig11" -> ignore (Experiments.fig11 ~sizes ())
  | "fig12" -> ignore (Experiments.fig12 ~sizes ())
  | "static_crit" -> ignore (Experiments.static_crit ~sizes ())
  | "ablations" -> ignore (Experiments.ablations ~sizes ())
  | "division" -> ignore (Experiments.division ~sizes ())
  | other ->
    (* callers run [validate_figures] first *)
    invalid_arg ("run_figure: " ^ other)

let policy_of ~deadline ~retries ~seed =
  { Resil.Supervise.default_policy with
    Resil.Supervise.deadline;
    retries;
    seed }

let sample_arg =
  let doc =
    "Run Gain cells as sampled (interval-CPI) simulations instead of \
     full-fidelity runs: functional fast-forward between short detailed \
     windows, reported as a confidence-bounded estimate.  $(docv) is a \
     comma-separated k=v list over $(b,units) (measured intervals), \
     $(b,unit) (instructions per interval), $(b,warmup) (warm-up \
     instructions before each interval) and optional $(b,ci) (target \
     relative half-width; units double until it is met).  $(docv) = \
     $(b,default) uses units=30,unit=1000,warmup=2000.  Sampled cells \
     are memoised and journalled under their own keys, never mixed \
     with full-fidelity results."
  in
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"CONFIG" ~doc)

let parse_sample = function
  | None -> None
  | Some "default" -> Some Sample_config.default
  | Some spec -> (
    match Sample_config.of_string spec with
    | Ok s -> Some s
    | Error msg ->
      Printf.eprintf "crisp_sim: bad --sample config: %s\n" msg;
      exit 2)

(* The journal signature ties checkpoints to the run shape: resuming
   with different instruction budgets — or flipping between sampled and
   full fidelity — must recompute, not reuse. *)
let experiments_signature ~instrs ~train_instrs ~sample =
  Printf.sprintf "crisp experiments eval=%d train=%d%s" instrs train_instrs
    (match sample with
    | None -> ""
    | Some s -> " sample=" ^ Sample_config.to_string s)

(* Print the resilience summary (stderr, so figure text on stdout stays
   diffable) and turn degradation into exit 1. *)
let finish_resilient_run () =
  let _, _, degraded, quarantined, _ = Resil.Log.counts () in
  if Resil.Log.events () <> [] then Format.eprintf "%a@?" Resil.Log.pp_summary ();
  Experiments.set_resilience Resil.Supervise.default_policy;
  if degraded > 0 || quarantined > 0 then exit 1

let experiments figures instrs train_instrs jobs journal_path resume deadline
    retries seed sample_spec =
  validate_figures figures;
  if resume && journal_path = None then begin
    Printf.eprintf "crisp_sim: --resume requires --journal FILE\n";
    exit 2
  end;
  let sample = parse_sample sample_spec in
  with_jobs jobs @@ fun () ->
  let sizes = { Experiments.eval_instrs = instrs; train_instrs } in
  Resil.Log.clear ();
  let journal =
    Option.map
      (fun path ->
        (* Without --resume an existing journal is a fresh start, not a
           source of stale cells. *)
        if (not resume) && Sys.file_exists path then Sys.remove path;
        Resil.Journal.load ~path
          ~signature:(experiments_signature ~instrs ~train_instrs ~sample))
      journal_path
  in
  Experiments.set_resilience ?journal (policy_of ~deadline ~retries ~seed);
  Experiments.set_sample sample;
  (match sample with
  | None -> ()
  | Some s ->
    Printf.eprintf "experiments: Gain cells sampled (%s)\n%!"
      (Sample_config.to_string s));
  Fun.protect
    ~finally:(fun () -> Experiments.set_sample None)
    (fun () ->
      match figures with
      | [] -> Experiments.run_all ~sizes ()
      | figures ->
        List.iter
          (fun fig ->
            ignore
              (Experiments.protected ~ident:fig (fun () -> run_figure ~sizes fig)))
          figures);
  finish_resilient_run ()

(* ------------------------------------------------------------------ *)
(* chaos: the self-checking fault-injection harness.  Three passes over
   one figure — clean reference, faulted + checkpointing, resume against
   the surviving journal (fault counters persist, so Nth-hit faults are
   already consumed and From-hit faults keep firing) — then a verdict:

     exit 0  output identical to the reference and nothing degraded
     exit 1  degradation happened and was fully reported (the contract)
     exit 2  SILENT DIVERGENCE: output changed with nothing reported —
             a resilience-property violation, or an internal error. *)

let capture_stdout f =
  let file = Filename.temp_file "crisp_chaos" ".out" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved);
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in_noerr ic;
  Sys.remove file;
  contents

let trigger_to_string (tr : Resil.Fault_plan.trigger) =
  let selector =
    match tr.Resil.Fault_plan.selector with
    | Resil.Fault_plan.Any -> ""
    | Resil.Fault_plan.Substring s -> "@" ^ s
    | Resil.Fault_plan.Bucket { modulus; residue } ->
      Printf.sprintf "@bucket(%d mod %d)" residue modulus
  in
  let count =
    match tr.Resil.Fault_plan.count with
    | Resil.Fault_plan.Nth n -> Printf.sprintf "#%d" n
    | Resil.Fault_plan.From n -> Printf.sprintf "+%d" n
  in
  Printf.sprintf "%s:%s%s%s" tr.Resil.Fault_plan.site
    (Resil.Fault_plan.action_to_string tr.Resil.Fault_plan.action)
    selector count

let chaos figure seed fault_specs instrs train_instrs jobs deadline retries
    journal_path keep_journal =
  validate_figures [ figure ];
  let plan =
    match fault_specs with
    | [] -> Resil.Fault_plan.random ~seed ()
    | specs ->
      Resil.Fault_plan.make
        (List.map
           (fun spec ->
             match Resil.Fault_plan.parse_spec spec with
             | Ok trigger -> trigger
             | Error msg ->
               Printf.eprintf "crisp_sim: %s\n" msg;
               exit 2)
           specs)
  in
  with_jobs jobs @@ fun () ->
  let sizes = { Experiments.eval_instrs = instrs; train_instrs } in
  let policy = policy_of ~deadline ~retries ~seed in
  let jpath =
    match journal_path with
    | Some p -> p
    | None -> Filename.temp_file "crisp_chaos" ".journal"
  in
  let signature =
    Printf.sprintf "crisp chaos %s eval=%d train=%d" figure instrs train_instrs
  in
  let pass ~journaled () =
    (* Each pass simulates a fresh process: cold memo, empty log.  Fault
       counters are NOT reset between the faulted and resumed passes.
       The journal is loaded after the log clear so load-time quarantine
       events (corrupt checkpoints) are counted against this pass. *)
    Runner.clear_cache ();
    Resil.Log.clear ();
    let journal =
      if journaled then Some (Resil.Journal.load ~path:jpath ~signature) else None
    in
    Experiments.set_resilience ?journal policy;
    capture_stdout (fun () ->
        ignore
          (Experiments.protected ~ident:figure (fun () -> run_figure ~sizes figure)))
  in
  Printf.printf "chaos: figure %s, seed %d, %d worker(s), plan:\n" figure seed
    (Exec.Pool.parallelism (Experiments.current_pool ()));
  List.iter
    (fun tr -> Printf.printf "  %s\n" (trigger_to_string tr))
    (Resil.Fault_plan.triggers plan);
  let reference = pass ~journaled:false () in
  if Sys.file_exists jpath then Sys.remove jpath;
  Resil.Fault_plan.arm plan;
  let faulted = pass ~journaled:true () in
  let faults_b, retries_b, degraded_b, quarantined_b, _ = Resil.Log.counts () in
  let summary_b = Format.asprintf "%a" Resil.Log.pp_summary () in
  let resumed = pass ~journaled:true () in
  let faults_c, retries_c, degraded_c, quarantined_c, restored_c =
    Resil.Log.counts ()
  in
  let summary_c = Format.asprintf "%a" Resil.Log.pp_summary () in
  Resil.Fault_plan.disarm ();
  Experiments.set_resilience Resil.Supervise.default_policy;
  Runner.clear_cache ();
  if not keep_journal then
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ jpath; jpath ^ ".bad"; jpath ^ ".tmp" ];
  let describe tag out faults retries degraded quarantined restored summary =
    Printf.printf
      "%s: output %s (%d bytes); %d fault(s) fired, %d retry(ies), %d \
       degraded, %d quarantined, %d restored\n"
      tag
      (if out = reference then "identical to reference" else "DIVERGED")
      (String.length out) faults retries degraded quarantined restored;
    if summary <> "" then print_string summary
  in
  Printf.printf "pass 1 (clean reference): %d bytes of figure text\n"
    (String.length reference);
  describe "pass 2 (faulted, checkpointing)" faulted faults_b retries_b
    degraded_b quarantined_b 0 summary_b;
  describe "pass 3 (resumed)" resumed faults_c retries_c degraded_c
    quarantined_c restored_c summary_c;
  let disrupted = degraded_b + quarantined_b + degraded_c + quarantined_c in
  let silent out degraded quarantined =
    out <> reference && degraded + quarantined = 0
  in
  if silent faulted degraded_b quarantined_b
     || silent resumed degraded_c quarantined_c
  then begin
    Printf.eprintf
      "chaos: SILENT DIVERGENCE — figure output changed but no degradation \
       was reported; resilience property violated\n";
    exit 2
  end
  else if disrupted > 0 then begin
    Printf.eprintf
      "chaos: faults disrupted the run and every disruption was reported \
       (%d degraded, %d quarantined)\n"
      (degraded_b + degraded_c)
      (quarantined_b + quarantined_c);
    exit 1
  end
  else
    Printf.printf
      "chaos: clean — figure text byte-identical to the fault-free reference\n"

let simulate_cmd =
  let info = Cmd.info "simulate" ~doc:"Run one workload on the cycle-level core." in
  Cmd.v info
    Term.(
      const simulate $ workload_arg $ instrs_arg $ train_arg $ sched_arg $ rs_arg
      $ rob_arg $ issue_width_arg $ threshold_arg)

let trace_cmd =
  let info =
    Cmd.info "trace"
      ~doc:
        "Run one workload with the observability layer enabled and export the \
         pipeline event stream (statistics go to stderr)."
  in
  Cmd.v info
    Term.(
      const trace $ workload_arg $ instrs_arg $ train_arg $ sched_arg $ rs_arg
      $ rob_arg $ issue_width_arg $ threshold_arg $ trace_output_arg
      $ trace_format_arg $ trace_ring_arg)

let profile_cmd =
  let info = Cmd.info "profile" ~doc:"Print the software profiling report." in
  Cmd.v info Term.(const profile $ workload_arg $ instrs_arg)

let slices_cmd =
  let info = Cmd.info "slices" ~doc:"Print the criticality tagging and its slices." in
  Cmd.v info Term.(const slices $ workload_arg $ instrs_arg $ threshold_arg)

let journal_arg =
  let doc =
    "Checkpoint completed grid cells to $(docv) (atomic write-rename, \
     checksummed).  Without $(b,--resume) an existing file is discarded."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Reuse valid checkpoints from $(b,--journal) and recompute only the \
     missing cells.  Stale or corrupt entries are quarantined to FILE.bad \
     and recomputed, never trusted."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let deadline_arg =
  let doc =
    "Per-cell wall-clock deadline in seconds (measured from the moment the \
     cell starts on a worker).  A cell over deadline degrades to an error \
     marker; the run continues and exits 1."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc =
    "Retries per crashed cell (deterministic exponential backoff with \
     seeded jitter).  Timeouts are never retried."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for backoff jitter and (in chaos) the random fault plan." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let experiments_cmd =
  let info =
    Cmd.info "experiments"
      ~doc:
        "Regenerate paper tables and figures.  Every grid cell runs as a \
         supervised job; failing cells degrade to `--' markers and the run \
         exits 1 with a summary instead of crashing."
  in
  Cmd.v info
    Term.(
      const experiments $ figures_arg $ instrs_arg $ train_arg $ jobs_arg
      $ journal_arg $ resume_arg $ deadline_arg $ retries_arg $ seed_arg
      $ sample_arg)

let chaos_figure_arg =
  let doc = "Figure to run under fault injection." in
  Arg.(value & opt string "fig4" & info [ "figure" ] ~docv:"FIGURE" ~doc)

let fault_arg =
  let doc =
    "Inject a fault (repeatable): SITE:ACTION[@SUBSTR][#N|+N] with ACTION \
     one of crash, corrupt, stall=SECS; @SUBSTR restricts to matching cell \
     idents; #N fires on exactly the Nth hit, +N from the Nth on (default \
     +1).  Sites: pool.job, runner.run, memo.lookup, memo.store, \
     journal.read, journal.write.  Without $(b,--fault) a seeded random \
     plan is generated."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC" ~doc)

let chaos_instrs_arg =
  let doc = "Dynamic micro-ops per evaluation run (kept small: chaos runs the figure three times)." in
  Arg.(value & opt int 20_000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let chaos_train_arg =
  let doc = "Dynamic micro-ops profiled on the train input." in
  Arg.(value & opt int 15_000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let keep_journal_arg =
  let doc = "Keep the chaos journal (and any .bad quarantine file) on disk." in
  Arg.(value & flag & info [ "keep-journal" ] ~doc)

let chaos_cmd =
  let info =
    Cmd.info "chaos"
      ~doc:
        "Self-checking fault injection: run a figure clean, faulted with \
         checkpointing, and resumed, then verify that the output is either \
         byte-identical to the clean reference or every divergence was \
         reported as degraded/quarantined.  Exit 0 clean, 1 reported \
         degradation, 2 silent divergence (property violation)."
  in
  Cmd.v info
    Term.(
      const chaos $ chaos_figure_arg $ seed_arg $ fault_arg $ chaos_instrs_arg
      $ chaos_train_arg $ jobs_arg $ deadline_arg $ retries_arg $ journal_arg
      $ keep_journal_arg)

let check_instrs_arg =
  let doc = "Dynamic micro-ops for the ref-input lint/scoreboard context." in
  Arg.(value & opt int 60_000 & info [ "n"; "instrs" ] ~docv:"N" ~doc)

let check_train_arg =
  let doc = "Dynamic micro-ops traced on the train input for slice checks." in
  Arg.(value & opt int 40_000 & info [ "train-instrs" ] ~docv:"N" ~doc)

let check_cmd =
  let info =
    Cmd.info "check"
      ~doc:
        "Run the static validation battery: program lint, independent slice \
         and tag-budget verification, (with $(b,--static)) the profile-free \
         criticality predictor scored against the profiled tagger, and (with \
         $(b,--scoreboard)) the pipeline-invariant oracle.  With $(b,--all) \
         the shared figure-grid specs are validated too."
  in
  Cmd.v info
    Term.(
      const check $ all_arg $ workload_arg $ check_instrs_arg $ check_train_arg
      $ scoreboard_arg $ static_arg)

let list_cmd =
  let info = Cmd.info "list" ~doc:"List the workload catalog." in
  Cmd.v info Term.(const list_workloads $ const ())

(* ------------------------------------------------------------------ *)
(* client: run figure grids against a crisp_simd daemon.  Figure text on
   stdout is byte-identical to `experiments' on the same grids — shared
   Grid specs, round-trip-precise floats on the wire, degraded cells as
   `--' — while farm accounting goes to stderr. *)

let farm_socket_arg =
  let doc = "Unix-domain socket of the crisp_simd daemon." in
  let default = Filename.concat (Filename.get_temp_dir_name ()) "crisp_simd.sock" in
  Arg.(value & opt string default & info [ "socket" ] ~docv:"PATH" ~doc)

let client_grids_arg =
  let doc =
    "Grids to request (default: every farm-servable grid, in figure order)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"GRID" ~doc)

let client_ping_arg =
  let doc = "Just check that the daemon answers, then exit." in
  Arg.(value & flag & info [ "ping" ] ~doc)

let client_stats_arg =
  let doc = "Print the daemon's memo/pool/journal statistics, then exit." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let client_shutdown_arg =
  let doc = "Ask the daemon to shut down cleanly, then exit." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let client_retries_arg =
  let doc =
    "Reconnect-and-resume attempts after a transport failure (mid-stream \
     disconnect, torn frame, daemon shed or drain).  The daemon dedups \
     cells by canonical key, so a retried grid only computes what the \
     lost connection interrupted.  0 fails on the first transport error."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let client_connect_timeout_arg =
  let doc = "Seconds to wait for each connection attempt." in
  Arg.(value & opt float 10. & info [ "connect-timeout" ] ~docv:"SECS" ~doc)

let client_io_timeout_arg =
  let doc =
    "Per-frame transfer deadline in seconds (bounds how long one frame \
     may take on the wire, never how long the daemon computes).  0 waits \
     forever."
  in
  Arg.(value & opt float 0. & info [ "io-timeout" ] ~docv:"SECS" ~doc)

let print_farm_stats (s : Farm_protocol.farm_stats) =
  Printf.printf
    "memo: %d hits  %d misses  %d dedups  %d evictions  %d entries\n\
     pool: %d workers  %d queued  %d running  %d stolen\n\
     journal: %d cells   requests served: %d   sampled cells: %d\n"
    s.Farm_protocol.memo.Exec.Memo.hits s.Farm_protocol.memo.Exec.Memo.misses
    s.Farm_protocol.memo.Exec.Memo.dedups
    s.Farm_protocol.memo.Exec.Memo.evictions
    s.Farm_protocol.memo.Exec.Memo.entries s.Farm_protocol.pool.Exec.Pool.workers
    s.Farm_protocol.pool.Exec.Pool.queued s.Farm_protocol.pool.Exec.Pool.running
    s.Farm_protocol.pool.Exec.Pool.stolen s.Farm_protocol.journal_cells
    s.Farm_protocol.requests_served s.Farm_protocol.sampled_cells

let client grids instrs train_instrs socket do_ping do_stats do_shutdown
    retries connect_timeout io_timeout sample_spec =
  let io_timeout = if io_timeout <= 0. then None else Some io_timeout in
  let sample = parse_sample sample_spec in
  let specs =
    match grids with
    | [] -> Grid.catalog
    | tags ->
      List.map
        (fun tag ->
          match Grid.find tag with
          | Some spec -> spec
          | None ->
            Printf.eprintf
              "crisp_sim: unknown grid %S (farm-servable grids: %s)\n" tag
              (String.concat ", "
                 (List.map (fun (s : Grid.spec) -> s.Grid.tag) Grid.catalog));
            exit 2)
        tags
  in
  let with_conn f =
    let conn =
      try Farm_client.connect ~connect_timeout ?io_timeout ~socket ()
      with Farm_client.Disconnected msg ->
        Printf.eprintf "crisp_sim: %s\n" msg;
        exit 2
    in
    Fun.protect ~finally:(fun () -> Farm_client.close conn) (fun () -> f conn)
  in
  try
    if do_ping then
      with_conn (fun conn ->
          Farm_client.ping conn;
          Printf.printf "crisp_simd at %s: alive\n" socket)
    else if do_stats then
      with_conn (fun conn -> print_farm_stats (Farm_client.stats conn))
    else if do_shutdown then
      with_conn (fun conn ->
          Farm_client.shutdown_daemon conn;
          Printf.printf "crisp_simd at %s: shutting down\n" socket)
    else begin
      (* Each grid opens its own connection(s) through the retry loop;
         the daemon's cross-request dedup keeps repeated attempts free. *)
      let retry =
        { Farm_client.default_retry with
          Farm_client.attempts = retries + 1;
          connect_timeout;
          io_timeout }
      in
      let any_degraded = ref false in
      List.iter
        (fun (spec : Grid.spec) ->
          let r, attempts =
            Farm_client.run_grid_retrying ~socket ~retry ?sample ~spec
              ~eval_instrs:instrs ~train_instrs ()
          in
          Grid.render spec r.Farm_client.rows;
          let s = r.Farm_client.summary in
          Printf.eprintf
            "%s: %d cells — %d computed, %d deduplicated, %d from journal, \
             %d degraded%s\n"
            spec.Grid.tag s.Farm_protocol.cells s.Farm_protocol.computed
            s.Farm_protocol.memo_hits s.Farm_protocol.journal_hits
            s.Farm_protocol.degraded
            (if s.Farm_protocol.sample = "" then ""
             else " — sampled (" ^ s.Farm_protocol.sample ^ ")");
          if attempts > 1 then
            Printf.eprintf "%s: converged after %d attempts\n" spec.Grid.tag
              attempts;
          List.iter
            (fun (cell, reason) ->
              any_degraded := true;
              Printf.eprintf "  degraded %s: %s\n" cell reason)
            r.Farm_client.degraded)
        specs;
      if !any_degraded then exit 1
    end
  with
  | Farm_client.Farm_error msg ->
    Printf.eprintf "crisp_sim: farm error: %s\n" msg;
    exit 2
  | Farm_client.Disconnected msg ->
    Printf.eprintf "crisp_sim: connection failed: %s\n" msg;
    exit 2
  | Farm_client.Overloaded ms ->
    Printf.eprintf
      "crisp_sim: daemon overloaded (retry after %dms); use --retries to \
       reconnect automatically\n"
      ms;
    exit 2

let client_cmd =
  let info =
    Cmd.info "client"
      ~doc:
        "Run figure grids against a crisp_simd simulation-farm daemon.  \
         Figure text (stdout) is byte-identical to the `experiments' \
         subcommand on the same grids; cells shared with other clients or \
         earlier requests are simulated only once, and the per-grid dedup \
         accounting is reported on stderr."
  in
  Cmd.v info
    Term.(
      const client $ client_grids_arg $ instrs_arg $ train_arg $ farm_socket_arg
      $ client_ping_arg $ client_stats_arg $ client_shutdown_arg
      $ client_retries_arg $ client_connect_timeout_arg $ client_io_timeout_arg
      $ sample_arg)

let () =
  let info =
    Cmd.info "crisp_sim" ~version:"1.0.0"
      ~doc:"CRISP critical-slice prefetching: simulator and analysis tools"
  in
  let group =
    Cmd.group info
      [ simulate_cmd; trace_cmd; profile_cmd; slices_cmd; experiments_cmd;
        chaos_cmd; check_cmd; list_cmd; client_cmd ]
  in
  (* ~catch:false so an uncaught exception reaches our handler: one line
     on stderr and exit 2 (internal error), never a bare backtrace.
     ~term_err:2 folds cmdliner's own CLI errors (unknown flags, bad
     values) onto the same exit code, keeping 1 reserved for "the run
     degraded / a check failed". *)
  match Cmd.eval ~catch:false ~term_err:2 group with
  | code -> exit code
  | exception exn ->
    Printf.eprintf "crisp_sim: internal error: %s\n" (Printexc.to_string exn);
    exit 2
