(* Define a brand-new workload in the assembler DSL and push it through the
   whole CRISP pipeline — the path a user takes to study their own kernel.

     dune exec examples/custom_workload.exe

   The kernel walks a skip-list-like index: a hot fingertable (cached)
   selects a bucket, the bucket walk is a two-hop pointer chase over a
   multi-MiB arena (delinquent), and a checksum burst consumes the result. *)

let build_workload ~input ~instrs =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  (* hot finger table: 256 entries, cache-resident *)
  let arena_count = int_of_float (100_000. *. scale) in
  let arena = Mem_builder.alloc mb ~bytes:(arena_count * 64) in
  let fingers =
    Mem_builder.int_array mb
      (Array.init 256 (fun _ -> arena + (Prng.int rng arena_count * 64)))
  in
  for i = 0 to arena_count - 1 do
    Mem_builder.write mb ~addr:(arena + (i * 64)) (arena + (Prng.int rng arena_count * 64));
    Mem_builder.write mb ~addr:(arena + (i * 64) + 8) (Prng.int rng 1000)
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let key = 1 and t = 2 and node = 3 and v = 4 and acc = 5 and fb = 6 in
  let open Program in
  let code =
    [ Label "lookup";
      (* evolve the key and pick a finger (cached load) *)
      Mul (key, key, t);
      Alu (Isa.Xor, key, key, Imm 0x9e37);
      Alu (Isa.And, t, key, Imm 255);
      Alu (Isa.Shl, t, t, Imm 3);
      Alu (Isa.Add, t, t, Reg fb);
      Ld (node, t, 0);  (* finger: hits *)
      Ld (node, node, 0);  (* hop 1: delinquent *)
      Ld (v, node, 8) ]  (* hop 2 value: delinquent *)
    @ Kernel_util.payload ~tag:"checksum" ~dep:v ~buf ~loads:8 ~fp_ops:24 ~stores:10 ()
    @ [ Alu (Isa.Add, acc, acc, Reg v);
        Li (t, 31);
        Jmp "lookup" ]
  in
  { Workload.name = "skiplist";
    description = "custom example: finger table + two-hop arena walk";
    program = assemble ~name:"skiplist" code;
    reg_init = [ (key, 12345); (t, 31); (fb, fingers); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }

let () =
  print_endline "Custom workload: skip-list lookup";
  let train = build_workload ~input:Workload.Train ~instrs:60_000 in
  let artifacts = Fdo.analyze train in
  Printf.printf "delinquent loads found: %s\n"
    (String.concat ", "
       (List.map
          (fun (pc, _) -> string_of_int pc)
          artifacts.Fdo.classification.Classifier.delinquent_loads));
  List.iter
    (fun (s : Tagger.slice_info) ->
      Printf.printf "slice root pc %d (%s): %d static instructions%s\n"
        s.Tagger.root_pc
        (match s.Tagger.kind with
         | `Load -> "load"
         | `Branch -> "branch"
         | `Long_op -> "long-op")
        s.Tagger.static_size
        (if s.Tagger.dropped then " [dropped by guardrail]" else ""))
    artifacts.Fdo.tagging.Tagger.slices;
  let eval_trace = Workload.trace (build_workload ~input:Workload.Ref ~instrs:80_000) in
  let ooo =
    Cpu_core.run
      (Cpu_config.with_policy Scheduler.Oldest_ready Cpu_config.skylake)
      eval_trace
  in
  let crisp =
    Cpu_core.run
      ~criticality:(Fdo.criticality artifacts)
      (Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake)
      eval_trace
  in
  Printf.printf "OOO IPC %.3f, CRISP IPC %.3f (%+.1f%%)\n" (Cpu_stats.ipc ooo)
    (Cpu_stats.ipc crisp)
    (100. *. ((Cpu_stats.ipc crisp /. Cpu_stats.ipc ooo) -. 1.))
