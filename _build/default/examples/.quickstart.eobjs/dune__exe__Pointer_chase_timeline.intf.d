examples/pointer_chase_timeline.mli:
