examples/pointer_chase_timeline.ml: Catalog Cpu_config Cpu_core Cpu_stats Fdo Printf Report Scheduler Workload
