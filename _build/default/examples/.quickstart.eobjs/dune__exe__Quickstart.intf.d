examples/quickstart.mli:
