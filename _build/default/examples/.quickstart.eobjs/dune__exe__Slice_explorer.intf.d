examples/slice_explorer.mli:
