examples/custom_workload.ml: Array Classifier Cpu_config Cpu_core Cpu_stats Fdo Isa Kernel_util List Mem_builder Printf Prng Program Scheduler String Tagger Workload
