examples/slice_explorer.ml: Array Catalog Classifier Deps Executor Format Ibda List Printf Profiler Program Slicer String Sys Workload
