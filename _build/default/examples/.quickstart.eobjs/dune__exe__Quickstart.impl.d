examples/quickstart.ml: Array Catalog Classifier Cpu_config Cpu_core Cpu_stats Executor Fdo List Printf Scheduler Sys Tagger Workload
