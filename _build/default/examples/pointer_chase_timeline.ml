(* Reproduce the shape of Figure 1: the per-cycle retirement (UPC) of the
   pointer-chasing microbenchmark under the OOO baseline and under CRISP.

     dune exec examples/pointer_chase_timeline.exe

   The baseline alternates full-speed bursts with long stalls at each
   linked-list miss; CRISP promotes the pointer chain past the vector
   work, shortening the stalls. *)

let () =
  let train = Catalog.pointer_chase ~input:Workload.Train ~instrs:60_000 () in
  let artifacts = Fdo.analyze train in
  let trace = Workload.trace (Catalog.pointer_chase ~input:Workload.Ref ~instrs:30_000 ()) in
  let run policy criticality =
    let cfg =
      { (Cpu_config.with_policy policy Cpu_config.skylake) with
        Cpu_config.record_upc = true }
    in
    Cpu_core.run ~criticality cfg trace
  in
  let ooo = run Scheduler.Oldest_ready Cpu_core.No_tags in
  let crisp = run Scheduler.Crisp (Fdo.criticality artifacts) in
  Report.print_series ~title:"OOO baseline: UPC over time"
    (Cpu_stats.smoothed_upc ooo ~window:25);
  Report.print_series ~title:"CRISP: UPC over time"
    (Cpu_stats.smoothed_upc crisp ~window:25);
  Printf.printf "\naverage UPC: OOO %.3f, CRISP %.3f (%+.1f%%)\n" (Cpu_stats.upc ooo)
    (Cpu_stats.upc crisp)
    (100. *. ((Cpu_stats.upc crisp /. Cpu_stats.upc ooo) -. 1.));
  Printf.printf "ROB-head stall cycles on DRAM loads: OOO %d, CRISP %d\n"
    ooo.Cpu_stats.head_stalls.Cpu_stats.dram_load
    crisp.Cpu_stats.head_stalls.Cpu_stats.dram_load
