(* Inspect load- and branch-slice extraction on any workload, and contrast
   the software slicer (which follows dependencies through memory) with
   the IBDA hardware baseline (which cannot).

     dune exec examples/slice_explorer.exe [workload]   # default: namd *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "namd" in
  let w = Catalog.make ~input:Workload.Train ~instrs:60_000 name in
  let trace = Workload.trace w in
  let report = Profiler.profile trace in
  let classification = Classifier.classify report Classifier.default in
  let deps = Deps.compute trace in
  Printf.printf "workload %s: %d delinquent loads, %d hard branches\n\n" name
    (List.length classification.Classifier.delinquent_loads)
    (List.length classification.Classifier.hard_branches);
  let show_slice kind root_pc =
    let full = Slicer.extract trace deps ~root_pc in
    let registers_only = Slicer.extract ~follow_memory:false trace deps ~root_pc in
    Printf.printf "%s slice rooted at pc %d:\n" kind root_pc;
    Printf.printf "  with memory deps    %3d static / %.1f dynamic avg\n"
      (Slicer.size full) full.Slicer.avg_dynamic_length;
    Printf.printf "  registers only      %3d static (what IBDA hardware can see)\n"
      (Slicer.size registers_only);
    let missed =
      List.filter (fun pc -> not registers_only.Slicer.pcs.(pc)) full.Slicer.pc_list
    in
    if missed <> [] then
      Printf.printf "  invisible to IBDA   pcs %s\n"
        (String.concat ", " (List.map string_of_int missed));
    Printf.printf "  members:\n";
    List.iter
      (fun pc ->
        Format.printf "    %4d: %a@." pc Program.pp_decoded
          trace.Executor.prog.Program.code.(pc))
      full.Slicer.pc_list;
    print_newline ()
  in
  List.iteri
    (fun i (pc, _) -> if i < 2 then show_slice "load" pc)
    classification.Classifier.delinquent_loads;
  List.iteri
    (fun i (pc, _) -> if i < 1 then show_slice "branch" pc)
    classification.Classifier.hard_branches;
  (* contrast with online IBDA coverage *)
  let ibda = Ibda.analyze Ibda.ist_1k trace in
  Printf.printf "IBDA (1K-entry IST): %d static pcs tagged, %d dynamic, %d evictions\n"
    ibda.Ibda.tagged_static ibda.Ibda.tagged_dynamic ibda.Ibda.ist_evictions
