(* Quickstart: run the full CRISP flow on one workload.

     dune exec examples/quickstart.exe [workload]

   Steps (paper Figure 5): execute the train input, profile it, classify
   delinquent loads and hard branches, extract and filter slices, tag the
   binary, then evaluate the ref input on the cycle-level core with the
   baseline and CRISP schedulers. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mcf" in
  Printf.printf "CRISP quickstart on %S\n%!" name;

  (* 1. profile the train input and build the criticality tags *)
  let train = Catalog.make ~input:Workload.Train ~instrs:80_000 name in
  let artifacts = Fdo.analyze train in
  let tagging = artifacts.Fdo.tagging in
  Printf.printf "\nSoftware pass (train input):\n";
  Printf.printf "  delinquent loads   %d\n"
    (List.length artifacts.Fdo.classification.Classifier.delinquent_loads);
  Printf.printf "  hard branches      %d\n"
    (List.length artifacts.Fdo.classification.Classifier.hard_branches);
  Printf.printf "  tagged static pcs  %d\n" tagging.Tagger.static_count;
  Printf.printf "  dynamic tag ratio  %.1f%%  (guardrail: 5-40%%)\n"
    (100. *. tagging.Tagger.dynamic_ratio);

  (* 2. evaluate on the ref input *)
  let eval_trace = Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:100_000 name) in
  let ooo =
    Cpu_core.run
      (Cpu_config.with_policy Scheduler.Oldest_ready Cpu_config.skylake)
      eval_trace
  in
  let crisp =
    Cpu_core.run
      ~criticality:(Fdo.criticality artifacts)
      (Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake)
      eval_trace
  in
  Printf.printf "\nEvaluation (ref input, %d micro-ops):\n"
    (Array.length eval_trace.Executor.dyns);
  Printf.printf "  OOO baseline  IPC %.3f  (LLC MPKI %.1f, br-mpki %.1f)\n"
    (Cpu_stats.ipc ooo) (Cpu_stats.mpki_llc ooo) (Cpu_stats.mispredicts_per_ki ooo);
  Printf.printf "  CRISP         IPC %.3f\n" (Cpu_stats.ipc crisp);
  Printf.printf "  speedup       %+.1f%%\n"
    (100. *. ((Cpu_stats.ipc crisp /. Cpu_stats.ipc ooo) -. 1.))
