(* Pipeline-level tests of the cycle model: throughput limits, latency
   exposure, branch penalties, forwarding and criticality scheduling. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let cfg = Cpu_config.skylake

let no_prefetch_cfg =
  { cfg with
    Cpu_config.mem =
      { cfg.Cpu_config.mem with Memory_system.enable_bop = false; enable_stream = false } }

let run_insts ?config ?criticality ?(regs = []) ?mem insts =
  let prog = Program.assemble ~name:"t" insts in
  let trace = Executor.run ~reg_init:regs ?mem_init:mem ~max_instrs:200_000 prog in
  let config = Option.value ~default:cfg config in
  (Cpu_core.run ?criticality config trace, trace)

let ipc stats = Cpu_stats.ipc stats

let counted_loop ~iters body =
  let open Program in
  [ Li (31, 0); Label "loop" ] @ body
  @ [ Alu (Isa.Add, 31, 31, Imm 1); Br (Isa.Lt, 31, Imm iters, "loop"); Halt ]

let test_all_retire () =
  let open Program in
  let stats, trace = run_insts (counted_loop ~iters:500 [ Nop; Nop; Nop ]) in
  check int "every micro-op retires" (Array.length trace.Executor.dyns)
    stats.Cpu_stats.retired

let test_independent_alu_throughput () =
  let open Program in
  (* 12 independent single-cycle ops per iteration: bound by 4 ALU ports
     (the loop's add+branch also take ALU slots) *)
  let body = List.init 12 (fun i -> Alu (Isa.Add, 1 + (i mod 8), 9, Imm i)) in
  let stats, _ = run_insts ~regs:[ (9, 1) ] (counted_loop ~iters:800 body) in
  check bool "ALU-bound IPC between 3 and 4" true (ipc stats > 3.0 && ipc stats <= 4.01)

let test_dependent_chain_serializes () =
  let open Program in
  let body = List.init 8 (fun _ -> Alu (Isa.Add, 1, 1, Imm 1)) in
  let stats, _ = run_insts (counted_loop ~iters:500 body) in
  (* 8 chained adds at 1 cycle each + loop overhead: IPC close to 1 *)
  check bool "serial chain IPC near 1" true (ipc stats > 0.8 && ipc stats < 1.6)

let test_divide_latency_exposed () =
  let open Program in
  let body = [ Div (1, 1, 9) ] in
  let stats, _ = run_insts ~regs:[ (1, 1000000); (9, 1) ] (counted_loop ~iters:200 body) in
  (* each iteration carries a 24-cycle divide on the critical path *)
  check bool "divide-bound IPC below 0.25" true (ipc stats < 0.25);
  check bool "long-op stalls attributed" true
    (stats.Cpu_stats.head_stalls.Cpu_stats.long_op > 1000)

let test_cache_hit_loads_fast () =
  let open Program in
  (* repeated loads from one hot line: L1-resident after warmup *)
  let body = [ Ld (1, 9, 0); Ld (2, 9, 8); Fadd (3, 1, 2) ] in
  let stats, _ = run_insts ~regs:[ (9, 4096) ] (counted_loop ~iters:1000 body) in
  check bool "cache-resident loop runs fast" true (ipc stats > 2.0)

let test_dram_miss_stalls () =
  let open Program in
  (* pointer chase over a large random list: every iteration misses DRAM *)
  let rng = Prng.create 5 in
  let mem = Hashtbl.create 1024 in
  let nodes = 4000 in
  let order = Array.init nodes (fun i -> i) in
  Prng.shuffle rng order;
  for i = 0 to nodes - 1 do
    Hashtbl.replace mem (0x100000 + (order.(i) * 64))
      (0x100000 + (order.((i + 1) mod nodes) * 64))
  done;
  let body = [ Ld (9, 9, 0) ] in
  let stats, _ =
    run_insts ~config:no_prefetch_cfg ~regs:[ (9, 0x100000) ]
      ~mem (counted_loop ~iters:2000 body)
  in
  check bool "serial DRAM chase IPC below 0.1" true (ipc stats < 0.1);
  check bool "stalls attributed to DRAM loads" true
    (stats.Cpu_stats.head_stalls.Cpu_stats.dram_load
    > stats.Cpu_stats.cycles / 2)

let test_branch_mispredicts_cost () =
  let open Program in
  (* data-dependent branch on pseudo-random values vs an always-taken one *)
  let mem = Hashtbl.create 64 in
  let rng = Prng.create 11 in
  for i = 0 to 4095 do
    Hashtbl.replace mem (8192 + (i * 8)) (Prng.int rng 2)
  done;
  let body which =
    [ Alu (Isa.And, 1, 31, Imm 4095);
      Alu (Isa.Shl, 1, 1, Imm 3);
      Alu (Isa.Add, 1, 1, Imm 8192);
      Ld (2, 1, 0) ]
    @ (match which with
      | `Random -> [ Br (Isa.Eq, 2, Imm 0, "skip") ]
      | `Biased -> [ Br (Isa.Ge, 2, Imm 0, "skip") ])
    @ [ Alu (Isa.Add, 3, 3, Imm 1); Label "skip" ]
  in
  let random_stats, _ = run_insts ~mem (counted_loop ~iters:3000 (body `Random)) in
  let biased_stats, _ = run_insts ~mem (counted_loop ~iters:3000 (body `Biased)) in
  check bool "random branch mispredicts a lot" true
    (Cpu_stats.mispredicts_per_ki random_stats > 20.);
  check bool "biased branch predicts well" true
    (Cpu_stats.mispredicts_per_ki biased_stats < 5.);
  check bool "mispredictions cost throughput" true
    (ipc biased_stats > ipc random_stats *. 1.2)

let test_store_load_forwarding () =
  let open Program in
  (* store then immediately load the same address: forwarding keeps the
     chain at L1-like latency instead of waiting for retirement *)
  let body = [ Alu (Isa.Add, 1, 1, Imm 1); St (1, 9, 0); Ld (1, 9, 0) ] in
  let stats, _ = run_insts ~regs:[ (9, 65536) ] (counted_loop ~iters:1000 body) in
  check bool "forwarded chain sustains reasonable IPC" true (ipc stats > 0.5)

let test_upc_timeline () =
  let open Program in
  let config = { cfg with Cpu_config.record_upc = true } in
  let stats, trace = run_insts ~config (counted_loop ~iters:200 [ Nop; Nop ]) in
  match stats.Cpu_stats.upc_timeline with
  | None -> Alcotest.fail "timeline not recorded"
  | Some timeline ->
    check int "timeline spans all cycles" stats.Cpu_stats.cycles (Array.length timeline);
    check int "timeline sums to retired count"
      (Array.length trace.Executor.dyns)
      (Array.fold_left ( + ) 0 timeline);
    let series = Cpu_stats.smoothed_upc stats ~window:10 in
    check bool "smoothed series non-empty" true (Array.length series > 0)

let test_criticality_changes_schedule () =
  let open Program in
  (* a serial chase whose resolution wakes a store burst along with the
     next chain load: tagging the chain load must help *)
  let rng = Prng.create 7 in
  let mem = Hashtbl.create 1024 in
  let nodes = 2000 in
  let order = Array.init nodes (fun i -> i) in
  Prng.shuffle rng order;
  for i = 0 to nodes - 1 do
    Hashtbl.replace mem (0x200000 + (order.(i) * 64))
      (0x200000 + (order.((i + 1) mod nodes) * 64))
  done;
  let burst =
    List.init 12 (fun k -> Fmul (10 + (k mod 8), 9, 9))
    @ List.init 12 (fun k -> St (10 + (k mod 8), 8, k * 8))
  in
  let insts =
    [ Label "loop"; Ld (9, 9, 0) ] @ burst @ [ Jmp "loop" ]
  in
  let prog = Program.assemble ~name:"chase" insts in
  let trace =
    Executor.run ~reg_init:[ (9, 0x200000); (8, 4096) ] ~mem_init:mem
      ~max_instrs:60_000 prog
  in
  let ooo =
    Cpu_core.run (Cpu_config.with_policy Scheduler.Oldest_ready no_prefetch_cfg) trace
  in
  let crisp =
    Cpu_core.run
      ~criticality:(Cpu_core.Static_tags (fun pc -> pc = 0))
      (Cpu_config.with_policy Scheduler.Crisp no_prefetch_cfg)
      trace
  in
  check bool "critical-first beats oldest-first on the chase" true
    (Cpu_stats.ipc crisp > Cpu_stats.ipc ooo *. 1.02)

let test_dynamic_tags () =
  let open Program in
  let stats, trace =
    run_insts
      ~criticality:(Cpu_core.Dynamic_tags (fun i -> i mod 2 = 0))
      (counted_loop ~iters:300 [ Nop ])
  in
  check int "every op retires with dynamic tags" (Array.length trace.Executor.dyns)
    stats.Cpu_stats.retired;
  check bool "half the stream counted critical" true
    (abs (stats.Cpu_stats.critical_retired - (stats.Cpu_stats.retired / 2)) < 5)

let test_window_scaling_helps () =
  let open Program in
  (* independent misses: a bigger window exposes more MLP *)
  let rng = Prng.create 13 in
  let mem = Hashtbl.create 64 in
  for i = 0 to (1 lsl 15) - 1 do
    Hashtbl.replace mem (0x300000 + (i * 8)) (Prng.int rng 1000)
  done;
  let body =
    [ Mul (1, 1, 9);
      Alu (Isa.Add, 1, 1, Imm 12345);
      Alu (Isa.And, 2, 1, Imm 0x7FFF);
      Alu (Isa.Shl, 2, 2, Imm 3);
      Alu (Isa.Add, 2, 2, Imm 0x300000);
      Ld (3, 2, 0);
      Fadd (4, 4, 3) ]
  in
  let insts = counted_loop ~iters:3000 body in
  let prog = Program.assemble ~name:"mlp" insts in
  let trace = Executor.run ~reg_init:[ (1, 7); (9, 29) ] ~mem_init:mem ~max_instrs:100_000 prog in
  let small =
    Cpu_core.run (Cpu_config.with_window ~rs:32 ~rob:64 no_prefetch_cfg) trace
  in
  let large =
    Cpu_core.run (Cpu_config.with_window ~rs:192 ~rob:448 no_prefetch_cfg) trace
  in
  check bool "larger window exposes more MLP" true
    (Cpu_stats.ipc large > Cpu_stats.ipc small *. 1.3)

let () =
  Alcotest.run "cpu"
    [ ( "pipeline",
        [ Alcotest.test_case "all instructions retire" `Quick test_all_retire;
          Alcotest.test_case "ALU throughput bound" `Quick test_independent_alu_throughput;
          Alcotest.test_case "dependent chain serialises" `Quick
            test_dependent_chain_serializes;
          Alcotest.test_case "divide latency exposed" `Quick test_divide_latency_exposed;
          Alcotest.test_case "cache-resident loads" `Quick test_cache_hit_loads_fast;
          Alcotest.test_case "DRAM chase stalls" `Slow test_dram_miss_stalls;
          Alcotest.test_case "mispredict cost" `Slow test_branch_mispredicts_cost;
          Alcotest.test_case "store-to-load forwarding" `Quick test_store_load_forwarding;
          Alcotest.test_case "UPC timeline" `Quick test_upc_timeline;
          Alcotest.test_case "criticality changes the schedule" `Slow
            test_criticality_changes_schedule;
          Alcotest.test_case "dynamic tags" `Quick test_dynamic_tags;
          Alcotest.test_case "window scaling exposes MLP" `Slow test_window_scaling_helps ] ) ]
