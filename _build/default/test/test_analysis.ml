(* Tests for the CRISP software stack: profiler, classifier, slicer,
   critical-path filter, tagger and the IBDA hardware baseline. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* A pointer chase with a register spill in the address chain and a hard
   branch, exercising every analysis feature:
     loop:  ld r1, 0(r1)       ; pc 0: delinquent chain load
            st r1, 0(r2)       ; pc 1: spill the pointer to the stack
            fmul r4, r5, r5    ; pc 2: clobber (payload)
            ld r3, 0(r2)       ; pc 3: reload through memory
            ld r6, 64(r3)      ; pc 4: value load (delinquent)
            beq r6-parity ...  ; pc 6: hard branch on loaded data
*)
let spill_chase_workload ?(nodes = 30_000) () =
  let rng = Prng.create 21 in
  let mem = Hashtbl.create 1024 in
  let order = Array.init nodes (fun i -> i) in
  Prng.shuffle rng order;
  (* nodes are two lines apart, with the value on the second line, so the
     chain load and the value load miss independently *)
  for i = 0 to nodes - 1 do
    let addr = 0x400000 + (order.(i) * 128) in
    Hashtbl.replace mem addr (0x400000 + (order.((i + 1) mod nodes) * 128));
    Hashtbl.replace mem (addr + 64) (Prng.int rng 100)
  done;
  let open Program in
  let insts =
    [ Label "loop";
      Ld (1, 1, 0);
      St (1, 2, 0);
      Fmul (4, 5, 5);
      Ld (3, 2, 0);
      Ld (6, 3, 64);
      Alu (Isa.And, 7, 6, Imm 1);
      Br (Isa.Eq, 7, Imm 0, "skip");
      Fadd (5, 5, 6);
      Label "skip";
      Jmp "loop" ]
  in
  let prog = assemble ~name:"spill_chase" insts in
  Executor.run ~reg_init:[ (1, 0x400000); (2, 1024); (5, 3) ] ~mem_init:mem
    ~max_instrs:40_000 prog

(* ---------------- Profiler ---------------- *)

let test_profiler_counts () =
  let trace = spill_chase_workload () in
  let r = Profiler.profile trace in
  check int "instruction count" (Array.length trace.Executor.dyns) r.Profiler.total_instrs;
  check bool "loads counted" true (r.Profiler.total_loads > 0);
  check bool "branches counted" true (r.Profiler.total_branches > 0);
  (* pc 4 touches each node's line first, so it takes the misses; the
     chain load (pc 0) then hits the warmed line *)
  let value_load = Hashtbl.find r.Profiler.loads 4 in
  check bool "value load misses nearly always" true (Profiler.miss_ratio value_load > 0.8);
  check bool "value load is irregular" true (Profiler.stride_ratio value_load < 0.2);
  let reload = Hashtbl.find r.Profiler.loads 3 in
  check bool "stack reload always hits" true (Profiler.miss_ratio reload < 0.05)

let test_profiler_mlp_serial_vs_parallel () =
  (* serial chase: same-depth misses never coexist -> MLP ~ 1 *)
  let serial = Profiler.profile (spill_chase_workload ()) in
  let value_load = Hashtbl.find serial.Profiler.loads 4 in
  check bool "serial chain has MLP ~ 1" true (Profiler.avg_mlp value_load < 1.5);
  (* independent gathers: high MLP *)
  let rng = Prng.create 31 in
  let mem = Hashtbl.create 64 in
  for i = 0 to (1 lsl 15) - 1 do
    Hashtbl.replace mem (0x500000 + (i * 8)) (Prng.int rng 100)
  done;
  let open Program in
  let gather k =
    [ Mul (1 + k, 1 + k, 9);
      Alu (Isa.Add, 1 + k, 1 + k, Imm (k + 77));
      Alu (Isa.And, 10, 1 + k, Imm 0x7FFF);
      Alu (Isa.Shl, 10, 10, Imm 3);
      Alu (Isa.Add, 10, 10, Imm 0x500000);
      Ld (11, 10, 0);
      Fadd (12, 12, 11) ]
  in
  let prog =
    assemble ~name:"mlp"
      ([ Label "loop" ] @ List.concat_map gather [ 0; 1; 2; 3 ] @ [ Jmp "loop" ])
  in
  let trace =
    Executor.run
      ~reg_init:((9, 29) :: List.init 4 (fun k -> (1 + k, 7 * (k + 1))))
      ~mem_init:mem ~max_instrs:40_000 prog
  in
  let parallel = Profiler.profile trace in
  let some_gather = Hashtbl.find parallel.Profiler.loads 5 in
  check bool "independent gathers show MLP > 2" true (Profiler.avg_mlp some_gather > 2.)

let test_branch_profiling () =
  let trace = spill_chase_workload () in
  let r = Profiler.profile trace in
  let b = Hashtbl.find r.Profiler.branch_table 6 in
  check bool "data-dependent branch mispredicts > 30%" true
    (Profiler.mispredict_ratio b > 0.3)

(* ---------------- Classifier ---------------- *)

let test_classifier_finds_delinquents () =
  let trace = spill_chase_workload () in
  let r = Profiler.profile trace in
  let c = Classifier.classify r Classifier.default in
  let pcs = List.map fst c.Classifier.delinquent_loads in
  check bool "missing value load flagged" true (List.mem 4 pcs);
  check bool "stack reload not flagged" false (List.mem 3 pcs);
  let branch_pcs = List.map fst c.Classifier.hard_branches in
  check bool "hard branch flagged" true (List.mem 6 branch_pcs)

let test_classifier_thresholds () =
  let trace = spill_chase_workload () in
  let r = Profiler.profile trace in
  let strict =
    Classifier.classify r (Classifier.with_miss_contribution 0.99 Classifier.default)
  in
  check int "an impossible threshold flags nothing" 0
    (List.length strict.Classifier.delinquent_loads);
  let no_branches =
    Classifier.classify r { Classifier.default with Classifier.branch_mispredict_min = 1.1 }
  in
  check int "branch threshold respected" 0
    (List.length no_branches.Classifier.hard_branches)

let test_classifier_mlp_filter () =
  (* bwaves-like high-MLP gathers must be rejected by the MLP criterion *)
  let w = Catalog.make ~input:Workload.Train ~instrs:60_000 "bwaves" in
  let trace = Workload.trace w in
  let r = Profiler.profile trace in
  let c = Classifier.classify r Classifier.default in
  check int "high-MLP loads not delinquent" 0 (List.length c.Classifier.delinquent_loads)

let test_classifier_stride_filter () =
  let w = Catalog.make ~input:Workload.Train ~instrs:60_000 "fotonik" in
  let trace = Workload.trace w in
  let r = Profiler.profile trace in
  let c = Classifier.classify r Classifier.default in
  check int "prefetchable streams not delinquent" 0
    (List.length c.Classifier.delinquent_loads)

(* ---------------- Slicer ---------------- *)

let test_slicer_follows_memory () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  (* slice of the value load (pc 4): its base register comes from the
     reload (pc 3), which depends through MEMORY on the spill (pc 1),
     which depends on the chain load (pc 0) *)
  let with_mem = Slicer.extract trace deps ~root_pc:4 in
  check bool "reload in slice" true with_mem.Slicer.pcs.(3);
  check bool "spill store reached through memory" true with_mem.Slicer.pcs.(1);
  check bool "chain load reached" true with_mem.Slicer.pcs.(0);
  check bool "payload excluded" false with_mem.Slicer.pcs.(2);
  let without_mem = Slicer.extract ~follow_memory:false trace deps ~root_pc:4 in
  check bool "without memory deps the spill is invisible" false
    without_mem.Slicer.pcs.(1);
  check bool "and the chain load is lost" false without_mem.Slicer.pcs.(0)

let test_slicer_recursion_terminates () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  let slice = Slicer.extract trace deps ~root_pc:0 in
  (* the chain load depends only on itself across iterations *)
  check bool "self-recursive slice is just the root" true
    (slice.Slicer.pc_list = [ 0 ]);
  check bool "dynamic length matches" true (slice.Slicer.avg_dynamic_length <= 2.)

let test_slicer_branch_slice () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  let slice = Slicer.extract trace deps ~root_pc:6 in
  check bool "branch slice contains its condition chain" true
    (slice.Slicer.pcs.(5) && slice.Slicer.pcs.(4))

(* ---------------- Critical path ---------------- *)

let test_critical_path_filters_cheap_side_chains () =
  (* root load fed by an expensive load chain and a cheap constant chain:
     only the expensive side survives a high theta *)
  let mem = Hashtbl.create 16 in
  Hashtbl.replace mem 0x600000 0x610000;
  let open Program in
  let insts =
    [ Ld (1, 9, 0);  (* pc 0: slow producer (DRAM) *)
      Li (2, 4);  (* pc 1: cheap producer *)
      Alu (Isa.Add, 2, 2, Imm 1);  (* pc 2: cheap chain *)
      Alu (Isa.Add, 3, 1, Reg 2);  (* pc 3: join *)
      Ld (4, 3, 0);  (* pc 4: root *)
      Halt ]
  in
  let prog = assemble ~name:"cp" insts in
  let trace = Executor.run ~reg_init:[ (9, 0x600000) ] ~mem_init:mem ~max_instrs:100 prog in
  let deps = Deps.compute trace in
  let latency_of i =
    match trace.Executor.dyns.(i).Executor.op with
    | Isa.Load -> 150
    | op -> Isa.exec_latency op
  in
  let keep = Critical_path.filter ~theta:0.8 trace deps ~root_pc:4 ~latency_of in
  check bool "expensive producer kept" true keep.(0);
  check bool "join kept" true keep.(3);
  check bool "cheap chain dropped" false keep.(1);
  check bool "root always kept" true keep.(4);
  let lp = Critical_path.longest_path trace deps ~root_idx:4 ~latency_of in
  check int "longest path = load + join + root" (150 + 1 + 150) lp

(* ---------------- Tagger ---------------- *)

let test_tagger_end_to_end () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  let report = Profiler.profile trace in
  let classification = Classifier.classify report Classifier.default in
  let tagging = Tagger.build trace deps report classification in
  check bool "something tagged" true (tagging.Tagger.static_count > 0);
  check bool "ratio within the guardrail" true (tagging.Tagger.dynamic_ratio <= 0.40001);
  check bool "payload not tagged" false (Tagger.is_critical tagging 2)

let test_tagger_ratio_guardrail () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  let report = Profiler.profile trace in
  let classification = Classifier.classify report Classifier.default in
  let tight =
    Tagger.build ~options:{ Tagger.default_options with Tagger.ratio_max = 0.02 } trace
      deps report classification
  in
  check bool "tiny cap forces slice drops" true
    (List.exists (fun s -> s.Tagger.dropped) tight.Tagger.slices);
  check bool "ratio respected or only roots left" true
    (tight.Tagger.dynamic_ratio < 0.4)

let test_tagger_kind_selection () =
  let trace = spill_chase_workload () in
  let deps = Deps.compute trace in
  let report = Profiler.profile trace in
  let classification = Classifier.classify report Classifier.default in
  let loads_only =
    Tagger.build ~options:Tagger.load_slices_only trace deps report classification
  in
  check bool "no branch slices when disabled" true
    (List.for_all (fun s -> s.Tagger.kind = `Load) loads_only.Tagger.slices);
  let branches_only =
    Tagger.build ~options:Tagger.branch_slices_only trace deps report classification
  in
  check bool "no load slices when disabled" true
    (List.for_all (fun s -> s.Tagger.kind = `Branch) branches_only.Tagger.slices)

let prop_tagged_pcs_exist =
  QCheck.Test.make ~name:"tag map only covers program pcs" ~count:5 QCheck.unit
    (fun () ->
      let trace = spill_chase_workload ~nodes:500 () in
      let deps = Deps.compute trace in
      let report = Profiler.profile trace in
      let c = Classifier.classify report Classifier.default in
      let tagging = Tagger.build trace deps report c in
      Array.length tagging.Tagger.critical
      = Array.length trace.Executor.prog.Program.code)

(* ---------------- IBDA ---------------- *)

let test_ibda_marks_chain () =
  let trace = spill_chase_workload () in
  let result = Ibda.analyze Ibda.ist_infinite trace in
  check bool "IBDA tags something" true (result.Ibda.tagged_dynamic > 0);
  check bool "static coverage recorded" true (result.Ibda.tagged_static > 0)

let test_ibda_misses_memory_deps () =
  (* the spill/reload pattern: IBDA can tag the reload (a register
     producer of the value load) but can never reach the spill store's
     data producer through memory.  Verify the chain load (pc 0) is only
     reachable as the DLT's own delinquent entry, not via slice insertion
     from the value load: with a DLT too small to hold it, pc 1 (the
     store) never gets tagged. *)
  let trace = spill_chase_workload () in
  let result = Ibda.analyze Ibda.ist_infinite trace in
  let dyns = trace.Executor.dyns in
  let store_tagged = ref false in
  Array.iteri
    (fun i (d : Executor.dyn) ->
      if d.Executor.pc = 1 && Ibda.is_critical result i then store_tagged := true)
    dyns;
  check bool "spill store invisible to register-only IBDA" false !store_tagged

let test_ibda_capacity_matters () =
  let w = Catalog.make ~input:Workload.Train ~instrs:60_000 "moses" in
  let trace = Workload.trace w in
  let tiny = { Ibda.ist_entries = 128; ist_assoc = 4; dlt_entries = 32 } in
  let small = Ibda.analyze tiny trace in
  let big = Ibda.analyze Ibda.ist_infinite trace in
  check bool "small IST evicts" true (small.Ibda.ist_evictions > 0);
  check bool "unbounded IST never evicts" true (big.Ibda.ist_evictions = 0);
  check bool "unbounded IST covers at least as many static pcs" true
    (big.Ibda.tagged_static >= small.Ibda.tagged_static)

(* ---------------- Section 6.1 extension ---------------- *)

let test_long_op_classification () =
  let open Program in
  let insts =
    [ Label "loop"; Div (1, 1, 2); Fadd (3, 3, 1); Alu (Isa.Add, 4, 4, Imm 1);
      Br (Isa.Lt, 4, Imm 10_000, "loop"); Halt ]
  in
  let prog = assemble ~name:"div" insts in
  let trace = Executor.run ~reg_init:[ (1, 1_000_000); (2, 1) ] ~max_instrs:20_000 prog in
  let r = Profiler.profile trace in
  check bool "divisions counted" true (Hashtbl.mem r.Profiler.long_ops 0);
  let off = Classifier.classify r Classifier.default in
  check int "extension off by default" 0 (List.length off.Classifier.long_ops);
  let on =
    Classifier.classify r
      { Classifier.default with Classifier.long_op_exec_share_min = 0.05 }
  in
  check bool "division pc flagged when enabled" true
    (List.mem_assoc 0 on.Classifier.long_ops);
  let deps = Deps.compute trace in
  let tagging =
    Tagger.build
      ~options:{ Tagger.default_options with Tagger.use_long_op_slices = true } trace
      deps r on
  in
  check bool "division tagged" true (Tagger.is_critical tagging 0)

let test_division_experiment_gains () =
  let sizes = { Experiments.eval_instrs = 40_000; train_instrs = 30_000 } in
  let ooo, crisp = Experiments.division ~sizes () in
  check bool "long-op prioritisation helps the division chain" true (crisp > ooo *. 1.05)

let () =
  Alcotest.run "analysis"
    [ ( "profiler",
        [ Alcotest.test_case "per-pc counters" `Quick test_profiler_counts;
          Alcotest.test_case "dependence-aware MLP" `Quick
            test_profiler_mlp_serial_vs_parallel;
          Alcotest.test_case "branch profiling" `Quick test_branch_profiling ] );
      ( "classifier",
        [ Alcotest.test_case "finds delinquent loads" `Quick
            test_classifier_finds_delinquents;
          Alcotest.test_case "threshold knobs" `Quick test_classifier_thresholds;
          Alcotest.test_case "MLP filter (bwaves)" `Quick test_classifier_mlp_filter;
          Alcotest.test_case "stride filter (fotonik)" `Quick
            test_classifier_stride_filter ] );
      ( "slicer",
        [ Alcotest.test_case "dependencies through memory" `Quick
            test_slicer_follows_memory;
          Alcotest.test_case "recursive termination" `Quick
            test_slicer_recursion_terminates;
          Alcotest.test_case "branch slices" `Quick test_slicer_branch_slice ] );
      ( "critical path",
        [ Alcotest.test_case "filters cheap side chains" `Quick
            test_critical_path_filters_cheap_side_chains ] );
      ( "tagger",
        [ Alcotest.test_case "end to end" `Quick test_tagger_end_to_end;
          Alcotest.test_case "ratio guardrail" `Quick test_tagger_ratio_guardrail;
          Alcotest.test_case "slice-kind selection" `Quick test_tagger_kind_selection;
          QCheck_alcotest.to_alcotest prop_tagged_pcs_exist ] );
      ( "ibda",
        [ Alcotest.test_case "marks slices online" `Quick test_ibda_marks_chain;
          Alcotest.test_case "blind to memory deps" `Quick test_ibda_misses_memory_deps;
          Alcotest.test_case "IST capacity" `Quick test_ibda_capacity_matters ] );
      ( "section 6.1",
        [ Alcotest.test_case "long-op classification" `Quick test_long_op_classification;
          Alcotest.test_case "division experiment" `Slow test_division_experiment_gains ] ) ]
