(* Tests for the DRAM timing model. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let params = Dram.ddr4_2400

let test_row_hit_faster_than_conflict () =
  let d = Dram.create params in
  (* Distant request times so queueing does not interfere. *)
  let t0 = Dram.request d ~cycle:0 ~addr:0 in
  let hit = Dram.request d ~cycle:10_000 ~addr:64 in
  let conflict = Dram.request d ~cycle:20_000 ~addr:(params.Dram.row_bytes * 16 * 4) in
  let hit_latency = hit - 10_000 in
  let first_latency = t0 in
  check bool "row hit is cheaper than a first activation" true
    (hit_latency < first_latency);
  check int "row hit costs CAS + burst"
    (params.Dram.t_cas + params.Dram.t_burst) hit_latency;
  (* same bank, different row: precharge + activate + cas *)
  ignore conflict;
  check int "row hits counted" 1 (Dram.row_hits d)

let test_row_conflict_costs_precharge () =
  let d = Dram.create params in
  ignore (Dram.request d ~cycle:0 ~addr:0);
  (* find an address mapping to the same bank but a different row by probing:
     row_bytes * banks strides revisit the same bank *)
  let same_bank_other_row = params.Dram.row_bytes * params.Dram.banks in
  let t = Dram.request d ~cycle:10_000 ~addr:same_bank_other_row in
  check int "conflict costs RP + RCD + CAS + burst"
    (params.Dram.t_rp + params.Dram.t_rcd + params.Dram.t_cas + params.Dram.t_burst)
    (t - 10_000);
  check int "conflict counted" 1 (Dram.row_conflicts d)

let test_bank_parallelism_beats_serialization () =
  (* N requests to N different banks complete sooner than N requests to one
     row-conflicting bank. *)
  let run addrs =
    let d = Dram.create params in
    List.fold_left (fun latest addr -> max latest (Dram.request d ~cycle:0 ~addr)) 0 addrs
  in
  let different_banks = List.init 8 (fun i -> i * params.Dram.row_bytes) in
  let same_bank =
    List.init 8 (fun i -> i * params.Dram.row_bytes * params.Dram.banks)
  in
  check bool "bank-level parallelism" true (run different_banks < run same_bank)

let test_bus_serializes_transfers () =
  let d = Dram.create params in
  let a = Dram.request d ~cycle:0 ~addr:0 in
  let b = Dram.request d ~cycle:0 ~addr:params.Dram.row_bytes in
  (* different banks, same time: data transfers serialise on the channel *)
  check bool "second transfer at least one burst later" true
    (b >= a + params.Dram.t_burst || a >= b + params.Dram.t_burst)

let prop_completion_after_request =
  QCheck.Test.make ~name:"completion is always after the request" ~count:50
    QCheck.(pair small_int small_int)
    (fun (seed, n) ->
      let d = Dram.create params in
      let rng = Prng.create (seed + 3) in
      let n = (n mod 50) + 1 in
      let ok = ref true in
      let cycle = ref 0 in
      for _ = 1 to n do
        cycle := !cycle + Prng.int rng 100;
        let t = Dram.request d ~cycle:!cycle ~addr:(Prng.int rng (1 lsl 24)) in
        if t <= !cycle then ok := false
      done;
      !ok && Dram.requests d = n)

let () =
  Alcotest.run "dram"
    [ ( "dram",
        [ Alcotest.test_case "row hit vs activation" `Quick
            test_row_hit_faster_than_conflict;
          Alcotest.test_case "row conflict cost" `Quick test_row_conflict_costs_precharge;
          Alcotest.test_case "bank parallelism" `Quick
            test_bank_parallelism_beats_serialization;
          Alcotest.test_case "bus serialisation" `Quick test_bus_serializes_transfers;
          QCheck_alcotest.to_alcotest prop_completion_after_request ] ) ]
