test/test_cpu.ml: Alcotest Array Cpu_config Cpu_core Cpu_stats Executor Hashtbl Isa List Memory_system Option Prng Program Scheduler
