test/test_cache.ml: Alcotest Cache Hashtbl Prng QCheck QCheck_alcotest
