test/test_workloads.ml: Alcotest Array Catalog Deps Executor Isa List Profiler Program Workload
