test/test_scheduler.ml: Age_matrix Alcotest Array Bitset Fun Hashtbl List Prng QCheck QCheck_alcotest Scheduler
