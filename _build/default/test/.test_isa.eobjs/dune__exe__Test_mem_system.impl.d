test/test_mem_system.ml: Alcotest List Memory_system
