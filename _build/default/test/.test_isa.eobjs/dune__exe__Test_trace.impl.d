test/test_trace.ml: Alcotest Array Deps Executor Isa Layout List Prng Program QCheck QCheck_alcotest Vec
