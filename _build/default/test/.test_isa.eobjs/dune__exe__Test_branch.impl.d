test/test_branch.ml: Alcotest Bimodal Btb Gshare List Prng QCheck QCheck_alcotest Ras Tage
