test/test_analysis.ml: Alcotest Array Catalog Classifier Critical_path Deps Executor Experiments Hashtbl Ibda Isa List Prng Profiler Program QCheck QCheck_alcotest Slicer Tagger Workload
