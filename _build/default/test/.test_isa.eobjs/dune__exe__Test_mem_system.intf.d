test/test_mem_system.mli:
