test/test_integration.ml: Alcotest Catalog Classifier Experiments Fdo Ibda List Runner Tagger Unix Workload
