test/test_dram.ml: Alcotest Dram List Prng QCheck QCheck_alcotest
