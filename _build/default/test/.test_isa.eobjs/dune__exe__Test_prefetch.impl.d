test/test_prefetch.ml: Alcotest Bop Ghb List Prng Stream_prefetcher Stride_prefetcher
