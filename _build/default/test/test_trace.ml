(* Tests for the trace substrate: PRNG, growable vectors, the assembler,
   the functional executor, dependency pre-computation and code layout. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Prng ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check int "same seed, same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    check bool "bounded draw" true (v >= 0 && v < 13)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 3 in
  let a = Array.init 64 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "shuffle preserves elements" true (sorted = Array.init 64 (fun i -> i));
  check bool "shuffle moved something" true (a <> Array.init 64 (fun i -> i))

(* ---------------- Vec ---------------- *)

let test_vec_grows () =
  let v = Vec.create ~capacity:2 ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check int "length" 100 (Vec.length v);
  check int "first" 0 (Vec.get v 0);
  check int "last" 99 (Vec.get v 99);
  Vec.set v 50 (-1);
  check int "set/get" (-1) (Vec.get v 50);
  check int "to_array length" 100 (Array.length (Vec.to_array v));
  Vec.clear v;
  check int "cleared" 0 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1))

(* ---------------- Assembler ---------------- *)

let test_assemble_labels () =
  let open Program in
  let prog =
    assemble ~name:"t"
      [ Label "start"; Li (1, 5); Jmp "end"; Label "mid"; Nop; Label "end"; Halt ]
  in
  check int "labels occupy no slot" 4 (Array.length prog.code);
  check int "jmp resolves forward label" 3 prog.code.(1).target;
  check bool "start label at 0" true (List.mem_assoc "start" prog.labels)

let test_assemble_errors () =
  let open Program in
  (try
     ignore (assemble ~name:"dup" [ Label "a"; Label "a"; Halt ]);
     Alcotest.fail "duplicate label accepted"
   with Assembly_error _ -> ());
  (try
     ignore (assemble ~name:"undef" [ Jmp "nowhere" ]);
     Alcotest.fail "undefined label accepted"
   with Assembly_error _ -> ());
  try
    ignore (assemble ~name:"badreg" [ Li (Isa.num_regs, 0) ]);
    Alcotest.fail "bad register accepted"
  with Assembly_error _ -> ()

let test_decode_fields () =
  let open Program in
  let prog =
    assemble ~name:"fields"
      [ Ld (3, 4, 16); St (5, 6, 24); Br (Isa.Lt, 7, Imm 9, "l"); Label "l"; Halt ]
  in
  let ld = prog.code.(0) in
  check int "load dst" 3 ld.dst;
  check int "load base" 4 ld.src1;
  check int "load offset" 16 ld.imm;
  let st = prog.code.(1) in
  check int "store has no dst" (-1) st.dst;
  check int "store data reg" 5 st.src1;
  check int "store base reg" 6 st.src2;
  let br = prog.code.(2) in
  check int "branch immediate operand" 9 br.imm;
  check int "branch src2 absent" (-1) br.src2;
  check int "branch target" 3 br.target

(* ---------------- Executor ---------------- *)

let run_program ?(regs = []) ?mem insts =
  let prog = Program.assemble ~name:"t" insts in
  Executor.run ~reg_init:regs ?mem_init:mem ~max_instrs:10_000 prog

let test_executor_arithmetic () =
  let open Program in
  (* compute 6! iteratively: r1 = n, r2 = acc *)
  let trace =
    run_program ~regs:[ (1, 6); (2, 1) ]
      [ Label "loop";
        Br (Isa.Le, 1, Imm 0, "done");
        Mul (2, 2, 1);
        Alu (Isa.Sub, 1, 1, Imm 1);
        Jmp "loop";
        Label "done";
        St (2, 3, 0);
        Halt ]
  in
  check bool "halted" true trace.Executor.halted;
  (* the store captured the final accumulator *)
  let store =
    Array.to_list trace.Executor.dyns
    |> List.find (fun (d : Executor.dyn) -> d.Executor.op = Isa.Store)
  in
  check int "store address" 0 store.Executor.addr

let test_executor_memory () =
  let open Program in
  let trace =
    run_program ~regs:[ (1, 1000) ]
      [ Li (2, 77); St (2, 1, 8); Ld (3, 1, 8); St (3, 1, 16); Halt ]
  in
  let dyns = trace.Executor.dyns in
  check int "load sees stored value via addr" 1008 dyns.(2).Executor.addr;
  check int "second store writes loaded value" 1016 dyns.(3).Executor.addr

let test_executor_branch_outcomes () =
  let open Program in
  let trace =
    run_program ~regs:[ (1, 5) ]
      [ Br (Isa.Gt, 1, Imm 3, "taken"); Nop; Label "taken"; Halt ]
  in
  let d = trace.Executor.dyns.(0) in
  check bool "branch taken" true d.Executor.taken;
  check int "branch target" 2 d.Executor.next_pc;
  check int "nop skipped" 2 (Array.length trace.Executor.dyns)

let test_executor_call_ret () =
  let open Program in
  let trace =
    run_program
      [ Call "f"; Li (1, 1); Halt; Label "f"; Li (2, 2); Ret ]
  in
  let pcs = Array.map (fun (d : Executor.dyn) -> d.Executor.pc) trace.Executor.dyns in
  check bool "call/ret sequence" true (pcs = [| 0; 3; 4; 1; 2 |])

let test_executor_ret_underflow_halts () =
  let open Program in
  let trace = run_program [ Ret; Nop ] in
  check bool "ret on empty stack halts" true trace.Executor.halted;
  check int "only the ret executed" 1 (Array.length trace.Executor.dyns)

let test_executor_max_instrs () =
  let open Program in
  let prog = Program.assemble ~name:"inf" [ Label "l"; Nop; Jmp "l" ] in
  let trace = Executor.run ~max_instrs:100 prog in
  check bool "not halted" false trace.Executor.halted;
  check int "cut at limit" 100 (Array.length trace.Executor.dyns)

let test_executor_counters () =
  let open Program in
  let trace =
    run_program ~regs:[ (1, 1000); (2, 3) ]
      [ Ld (3, 1, 0); St (3, 1, 8); Br (Isa.Eq, 2, Imm 3, "l"); Label "l";
        Prefetch (1, 0); Halt ]
  in
  check int "one load" 1 (Executor.load_count trace);
  check int "one conditional branch" 1 (Executor.branch_count trace)

let prop_executor_deterministic =
  QCheck.Test.make ~name:"executor is deterministic" ~count:50
    QCheck.(pair small_int small_int)
    (fun (seed, len) ->
      let rng = Prng.create (seed + 1) in
      let len = (len mod 20) + 5 in
      let open Program in
      let insts =
        List.init len (fun i ->
            match Prng.int rng 5 with
            | 0 -> Li (Prng.int rng 8, Prng.int rng 100)
            | 1 -> Alu (Isa.Add, Prng.int rng 8, Prng.int rng 8, Imm (Prng.int rng 10))
            | 2 -> Mul (Prng.int rng 8, Prng.int rng 8, Prng.int rng 8)
            | 3 -> St (Prng.int rng 8, 9, 8 * i)
            | _ -> Ld (Prng.int rng 8, 9, 8 * i))
      in
      let prog = assemble ~name:"rand" (insts @ [ Halt ]) in
      let t1 = Executor.run ~reg_init:[ (9, 4096) ] ~max_instrs:1000 prog in
      let t2 = Executor.run ~reg_init:[ (9, 4096) ] ~max_instrs:1000 prog in
      t1.Executor.dyns = t2.Executor.dyns)

(* ---------------- Deps ---------------- *)

let test_deps_registers () =
  let open Program in
  let trace =
    run_program [ Li (1, 3); Li (2, 4); Alu (Isa.Add, 3, 1, Reg 2); Halt ]
  in
  let deps = Deps.compute trace in
  check int "src1 producer" 0 deps.Deps.prod1.(2);
  check int "src2 producer" 1 deps.Deps.prod2.(2)

let test_deps_through_memory () =
  let open Program in
  let trace =
    run_program ~regs:[ (1, 512) ]
      [ Li (2, 9); St (2, 1, 0); Ld (3, 1, 0); Halt ]
  in
  let deps = Deps.compute trace in
  check int "load depends on the store through memory" 1 deps.Deps.prod_mem.(2);
  check bool "store listed among producers" true (List.mem 1 (Deps.producers deps 2))

let test_deps_no_false_memory_edge () =
  let open Program in
  let trace =
    run_program ~regs:[ (1, 512) ]
      [ Li (2, 9); St (2, 1, 0); Ld (3, 1, 64); Halt ]
  in
  let deps = Deps.compute trace in
  check int "different address, no memory edge" (-1) deps.Deps.prod_mem.(2)

(* ---------------- Layout ---------------- *)

let test_layout_prefix_grows_code () =
  let open Program in
  let prog = assemble ~name:"l" [ Li (1, 1); Ld (2, 1, 0); Halt ] in
  let base = Layout.static_bytes prog ~critical:(fun _ -> false) in
  let tagged = Layout.static_bytes prog ~critical:(fun pc -> pc = 1) in
  check int "one prefix byte added" (base + Isa.prefix_bytes) tagged;
  let layout = Layout.compute ~critical:(fun pc -> pc = 0) prog in
  check int "second instruction shifted by the prefix"
    (layout.Layout.base + Isa.byte_size Isa.Li + Isa.prefix_bytes)
    (Layout.addr_of layout 1)

let test_layout_dynamic_weighting () =
  let open Program in
  let prog =
    assemble ~name:"dyn" [ Li (1, 0); Label "l"; Alu (Isa.Add, 1, 1, Imm 1);
                           Br (Isa.Lt, 1, Imm 10, "l"); Halt ]
  in
  let trace = Executor.run ~max_instrs:1000 prog in
  let base = Layout.dynamic_bytes trace ~critical:(fun _ -> false) in
  let tagged = Layout.dynamic_bytes trace ~critical:(fun pc -> pc = 1) in
  (* pc 1 executes 10 times, so the dynamic footprint grows by 10 bytes *)
  check int "dynamic overhead = executions of the tagged pc" (base + 10) tagged

let () =
  Alcotest.run "trace"
    [ ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes ] );
      ( "vec",
        [ Alcotest.test_case "push/grow/get" `Quick test_vec_grows;
          Alcotest.test_case "bounds check" `Quick test_vec_bounds ] );
      ( "assembler",
        [ Alcotest.test_case "label resolution" `Quick test_assemble_labels;
          Alcotest.test_case "assembly errors" `Quick test_assemble_errors;
          Alcotest.test_case "decoded fields" `Quick test_decode_fields ] );
      ( "executor",
        [ Alcotest.test_case "arithmetic loop" `Quick test_executor_arithmetic;
          Alcotest.test_case "memory round-trip" `Quick test_executor_memory;
          Alcotest.test_case "branch outcomes" `Quick test_executor_branch_outcomes;
          Alcotest.test_case "call and return" `Quick test_executor_call_ret;
          Alcotest.test_case "ret underflow halts" `Quick test_executor_ret_underflow_halts;
          Alcotest.test_case "instruction budget" `Quick test_executor_max_instrs;
          Alcotest.test_case "load/branch counters" `Quick test_executor_counters;
          QCheck_alcotest.to_alcotest prop_executor_deterministic ] );
      ( "deps",
        [ Alcotest.test_case "register producers" `Quick test_deps_registers;
          Alcotest.test_case "dependency through memory" `Quick test_deps_through_memory;
          Alcotest.test_case "no false memory edges" `Quick test_deps_no_false_memory_edge ] );
      ( "layout",
        [ Alcotest.test_case "prefix grows code" `Quick test_layout_prefix_grows_code;
          Alcotest.test_case "dynamic weighting" `Quick test_layout_dynamic_weighting ] ) ]
