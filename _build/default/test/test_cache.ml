(* Tests for the set-associative cache model. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let small_params = { Cache.size_bytes = 1024; assoc = 2; line_bytes = 64 }
(* 1024 / (2 * 64) = 8 sets *)

let test_hit_after_miss () =
  let c = Cache.create ~name:"t" small_params in
  check bool "cold miss" false (Cache.access c ~addr:0);
  check bool "then hit" true (Cache.access c ~addr:0);
  check bool "same line hits" true (Cache.access c ~addr:63);
  check bool "next line misses" false (Cache.access c ~addr:64);
  check int "two misses" 2 (Cache.misses c);
  check int "two hits" 2 (Cache.hits c)

let test_lru_eviction_order () =
  let c = Cache.create ~name:"t" small_params in
  (* three lines mapping to set 0 in a 2-way cache: 8 sets * 64B stride *)
  let a = 0 and b = 8 * 64 and d = 16 * 64 in
  ignore (Cache.access c ~addr:a);
  ignore (Cache.access c ~addr:b);
  ignore (Cache.access c ~addr:a);
  (* b is LRU *)
  ignore (Cache.access c ~addr:d);
  check bool "most recent survives" true (Cache.probe c ~addr:a);
  check bool "LRU way evicted" false (Cache.probe c ~addr:b);
  check bool "new line resident" true (Cache.probe c ~addr:d)

let test_probe_is_pure () =
  let c = Cache.create ~name:"t" small_params in
  check bool "probe misses" false (Cache.probe c ~addr:0);
  check int "probe does not count" 0 (Cache.misses c);
  check bool "still absent" false (Cache.probe c ~addr:0)

let test_prefetch_bit () =
  let c = Cache.create ~name:"t" small_params in
  Cache.fill_prefetch c ~addr:128;
  check int "prefetch fill counted" 1 (Cache.prefetch_fills c);
  check bool "first demand access reports prefetched" true
    (Cache.access_info c ~addr:128 = `Hit_prefetched);
  check bool "second demand access is a plain hit" true
    (Cache.access_info c ~addr:128 = `Hit);
  check int "one useful prefetch" 1 (Cache.prefetch_hits c)

let test_prefetch_existing_is_noop () =
  let c = Cache.create ~name:"t" small_params in
  ignore (Cache.access c ~addr:256);
  Cache.fill_prefetch c ~addr:256;
  check int "no duplicate fill" 0 (Cache.prefetch_fills c);
  check bool "demand hit, not prefetched" true (Cache.access_info c ~addr:256 = `Hit)

let test_invalidate () =
  let c = Cache.create ~name:"t" small_params in
  ignore (Cache.access c ~addr:0);
  Cache.invalidate c ~addr:0;
  check bool "line gone" false (Cache.probe c ~addr:0)

let test_non_power_of_two_sets () =
  (* 20-way 1 MiB LLC: 819 sets, exercising modulo indexing *)
  let c =
    Cache.create ~name:"llc" { Cache.size_bytes = 1024 * 1024; assoc = 20; line_bytes = 64 }
  in
  for i = 0 to 999 do
    ignore (Cache.access c ~addr:(i * 64))
  done;
  for i = 0 to 999 do
    check bool "working set below capacity stays resident" true
      (Cache.probe c ~addr:(i * 64))
  done

let prop_residency_subset_of_accesses =
  QCheck.Test.make ~name:"resident lines were accessed or prefetched" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let c = Cache.create ~name:"q" small_params in
      let rng = Prng.create (seed + 5) in
      let touched = Hashtbl.create 64 in
      for _ = 1 to 500 do
        let addr = Prng.int rng 16384 in
        Hashtbl.replace touched (Cache.line_of c addr) ();
        if Prng.int rng 4 = 0 then Cache.fill_prefetch c ~addr
        else ignore (Cache.access c ~addr)
      done;
      (* every line still probing as resident must have been touched *)
      let ok = ref true in
      for line = 0 to 16384 / 64 do
        if Cache.probe c ~addr:(line * 64) && not (Hashtbl.mem touched line) then
          ok := false
      done;
      !ok)

let prop_capacity_bound =
  QCheck.Test.make ~name:"residency never exceeds capacity" ~count:20
    QCheck.small_int (fun seed ->
      let c = Cache.create ~name:"q" small_params in
      let rng = Prng.create (seed + 11) in
      for _ = 1 to 2000 do
        ignore (Cache.access c ~addr:(Prng.int rng (1 lsl 20)))
      done;
      let resident = ref 0 in
      for line = 0 to (1 lsl 20) / 64 do
        if Cache.probe c ~addr:(line * 64) then incr resident
      done;
      !resident <= small_params.Cache.size_bytes / small_params.Cache.line_bytes)

let () =
  Alcotest.run "cache"
    [ ( "cache",
        [ Alcotest.test_case "hit after miss" `Quick test_hit_after_miss;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "probe is pure" `Quick test_probe_is_pure;
          Alcotest.test_case "prefetched-bit tracking" `Quick test_prefetch_bit;
          Alcotest.test_case "prefetch of resident line" `Quick
            test_prefetch_existing_is_noop;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "non-power-of-two sets" `Quick test_non_power_of_two_sets;
          QCheck_alcotest.to_alcotest prop_residency_subset_of_accesses;
          QCheck_alcotest.to_alcotest prop_capacity_bound ] ) ]
