(* Tests for the composed memory hierarchy: levels, MSHR behaviour, miss
   merging, instruction path and the functional interface. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let no_prefetch =
  { Memory_system.skylake with Memory_system.enable_bop = false; enable_stream = false }

let test_levels () =
  let m = Memory_system.create no_prefetch in
  (match Memory_system.load m ~cycle:0 ~addr:4096 with
  | `Done (t, Memory_system.Mem) -> check bool "first touch goes to DRAM" true (t > 40)
  | `Done _ -> Alcotest.fail "expected DRAM service"
  | `Mshr_full -> Alcotest.fail "mshr full on idle system");
  match Memory_system.load m ~cycle:10_000 ~addr:4096 with
  | `Done (t, Memory_system.L1) ->
    check int "L1 hit at L1 latency" (10_000 + no_prefetch.Memory_system.l1d_latency) t
  | `Done _ | `Mshr_full -> Alcotest.fail "expected an L1 hit after the fill"

let test_llc_hit_level () =
  let m = Memory_system.create no_prefetch in
  ignore (Memory_system.load m ~cycle:0 ~addr:0);
  (* evict from L1 (32 KiB, 8-way) by touching 9 conflicting lines; L1 has
     64 sets, so stride 64*64 revisits set 0 *)
  for i = 1 to 9 do
    ignore (Memory_system.load m ~cycle:(1000 * i) ~addr:(i * 64 * 64))
  done;
  match Memory_system.load m ~cycle:100_000 ~addr:0 with
  | `Done (t, Memory_system.Llc) ->
    check int "LLC hit at LLC latency" (100_000 + no_prefetch.Memory_system.llc_latency) t
  | `Done (_, Memory_system.L1) -> Alcotest.fail "line should have left L1"
  | `Done (_, Memory_system.Mem) -> Alcotest.fail "line should still be in LLC"
  | `Mshr_full -> Alcotest.fail "unexpected mshr pressure"

let test_miss_merging () =
  let m = Memory_system.create no_prefetch in
  let t1 =
    match Memory_system.load m ~cycle:0 ~addr:8192 with
    | `Done (t, _) -> t
    | `Mshr_full -> Alcotest.fail "mshr"
  in
  (* a second access to the same line while in flight merges *)
  match Memory_system.load m ~cycle:1 ~addr:8200 with
  | `Done (t2, _) -> check int "merged onto outstanding fill" t1 t2
  | `Mshr_full -> Alcotest.fail "merge should not need an MSHR"

let test_mshr_capacity () =
  let m = Memory_system.create { no_prefetch with Memory_system.mshrs = 4 } in
  let results =
    List.init 6 (fun i -> Memory_system.load m ~cycle:0 ~addr:((i + 1) * 1_000_000))
  in
  let full = List.filter (fun r -> r = `Mshr_full) results in
  check int "two loads rejected at 4 MSHRs" 2 (List.length full);
  check int "outstanding misses capped" 4 (Memory_system.outstanding_misses m ~cycle:0)

let test_outstanding_drains () =
  let m = Memory_system.create no_prefetch in
  ignore (Memory_system.load m ~cycle:0 ~addr:65536);
  check int "one outstanding" 1 (Memory_system.outstanding_misses m ~cycle:1);
  check int "drained after completion" 0
    (Memory_system.outstanding_misses m ~cycle:100_000)

let test_store_commit_allocates () =
  let m = Memory_system.create no_prefetch in
  Memory_system.store_commit m ~cycle:0 ~addr:12345;
  match Memory_system.load m ~cycle:100 ~addr:12345 with
  | `Done (_, Memory_system.L1) -> ()
  | `Done _ | `Mshr_full -> Alcotest.fail "store should write-allocate into L1"

let test_inst_path () =
  let m = Memory_system.create no_prefetch in
  let t1, level1 = Memory_system.fetch m ~cycle:0 ~addr:0x400000 in
  check bool "cold instruction fetch misses" true (level1 <> Memory_system.L1);
  check bool "takes time" true (t1 > no_prefetch.Memory_system.l1i_latency);
  let t2, level2 = Memory_system.fetch m ~cycle:100_000 ~addr:0x400004 in
  check bool "same line hits L1I" true (level2 = Memory_system.L1);
  check int "L1I latency" (100_000 + no_prefetch.Memory_system.l1i_latency) t2

let test_fdip_prefetch () =
  let m = Memory_system.create no_prefetch in
  check bool "line absent" false (Memory_system.probe_inst m ~addr:0x500000);
  Memory_system.prefetch_inst m ~cycle:0 ~addr:0x500000;
  check bool "line present after FDIP fill" true
    (Memory_system.probe_inst m ~addr:0x500000);
  let t, level = Memory_system.fetch m ~cycle:1000 ~addr:0x500000 in
  check bool "demand fetch hits" true (level = Memory_system.L1);
  check int "at L1I latency" (1000 + no_prefetch.Memory_system.l1i_latency) t

let test_functional_matches_levels () =
  let m = Memory_system.create no_prefetch in
  check bool "first touch -> Mem" true
    (Memory_system.load_functional m ~addr:777_000 = Memory_system.Mem);
  check bool "second touch -> L1" true
    (Memory_system.load_functional m ~addr:777_000 = Memory_system.L1)

let test_prefetchers_cover_stream () =
  let m = Memory_system.create Memory_system.skylake in
  (* a long unit-stride walk: after warmup, most accesses hit thanks to
     BOP/stream *)
  let misses = ref 0 in
  for i = 0 to 2999 do
    match Memory_system.load_functional m ~addr:(i * 64) with
    | Memory_system.Mem -> incr misses
    | Memory_system.L1 | Memory_system.Llc -> ()
  done;
  check bool "prefetchers cover a sequential stream (<20% DRAM)" true
    (!misses < 600);
  let stats = Memory_system.stats m in
  check bool "prefetches were issued" true (stats.Memory_system.prefetches_issued > 100)

let () =
  Alcotest.run "mem_system"
    [ ( "memory system",
        [ Alcotest.test_case "service levels" `Quick test_levels;
          Alcotest.test_case "LLC hit level" `Quick test_llc_hit_level;
          Alcotest.test_case "miss merging" `Quick test_miss_merging;
          Alcotest.test_case "MSHR capacity" `Quick test_mshr_capacity;
          Alcotest.test_case "outstanding drains" `Quick test_outstanding_drains;
          Alcotest.test_case "store write-allocate" `Quick test_store_commit_allocates;
          Alcotest.test_case "instruction path" `Quick test_inst_path;
          Alcotest.test_case "FDIP prefetch" `Quick test_fdip_prefetch;
          Alcotest.test_case "functional interface" `Quick test_functional_matches_levels;
          Alcotest.test_case "stream coverage" `Quick test_prefetchers_cover_stream ] ) ]
