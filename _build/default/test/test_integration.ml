(* End-to-end integration tests: the full FDO flow, the experiment runner,
   and the headline behaviours the paper reports. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let sizes = { Experiments.eval_instrs = 60_000; train_instrs = 50_000 }

let speedup name variant =
  Runner.speedup_over_ooo ~eval_instrs:sizes.Experiments.eval_instrs
    ~train_instrs:sizes.Experiments.train_instrs ~name variant

let test_fdo_flow () =
  let w = Catalog.pointer_chase ~input:Workload.Train ~instrs:40_000 () in
  let artifacts = Fdo.analyze w in
  check bool "delinquent loads found" true
    (List.length artifacts.Fdo.classification.Classifier.delinquent_loads > 0);
  check bool "tags produced" true (artifacts.Fdo.tagging.Tagger.static_count > 0);
  check bool "tag ratio sane" true
    (artifacts.Fdo.tagging.Tagger.dynamic_ratio < 0.40001)

let test_crisp_beats_ooo_on_pointer_chase () =
  let s = speedup "pointer_chase" Runner.crisp_default in
  check bool "CRISP gains >5% on the microbenchmark" true (s > 1.05)

let test_crisp_neutral_on_streaming () =
  let s = speedup "fotonik" Runner.crisp_default in
  check bool "no effect on prefetcher-covered code" true (abs_float (s -. 1.) < 0.01)

let test_crisp_declines_high_mlp () =
  let s = speedup "bwaves" Runner.crisp_default in
  check bool "no tags, no change on high-MLP phases" true (abs_float (s -. 1.) < 0.01)

let test_crisp_beats_ibda_where_memory_deps_matter () =
  (* namd's slice passes through a stack spill that IBDA cannot see *)
  let crisp = speedup "namd" Runner.crisp_default in
  let ibda = speedup "namd" (Runner.Ibda Ibda.ist_infinite) in
  check bool "CRISP >= IBDA on namd" true (crisp >= ibda -. 0.002)

let test_runner_caching () =
  Runner.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let a =
    Runner.evaluate ~eval_instrs:30_000 ~train_instrs:20_000 ~name:"mcf" Runner.Ooo
  in
  let t1 = Unix.gettimeofday () in
  let b =
    Runner.evaluate ~eval_instrs:30_000 ~train_instrs:20_000 ~name:"mcf" Runner.Ooo
  in
  let t2 = Unix.gettimeofday () in
  check bool "cached result identical" true (a.Runner.stats = b.Runner.stats);
  check bool "cached result fast" true (t2 -. t1 < (t1 -. t0) /. 5.)

let test_branch_slices_help_branch_bound_code () =
  let combined = speedup "deepsjeng" Runner.crisp_default in
  let branch_only =
    speedup "deepsjeng" (Runner.Crisp (Classifier.default, Tagger.branch_slices_only))
  in
  check bool "branch slices alone carry deepsjeng" true (branch_only > 1.02);
  check bool "combined at least comparable" true (combined >= branch_only -. 0.05)

let test_prefix_grows_footprint () =
  let rows = Experiments.fig12 ~sizes () in
  List.iter
    (fun (name, values) ->
      match values with
      | [ static_overhead; dynamic_overhead; _ ] ->
        check bool (name ^ " static overhead within 10%") true
          (static_overhead >= 0. && static_overhead < 0.10);
        check bool (name ^ " dynamic overhead within 15%") true
          (dynamic_overhead >= 0. && dynamic_overhead < 0.15)
      | _ -> Alcotest.fail "fig12 row shape")
    rows

let test_fig3_slice () =
  let pcs = Experiments.fig3 () in
  check bool "microbenchmark slice is compact" true (List.length pcs <= 4)

let test_experiment_shapes () =
  let fig4 = Experiments.fig4 ~sizes () in
  check int "fig4 covers all apps" (List.length Experiments.apps) (List.length fig4);
  let moses_slice = List.assoc "moses" fig4 in
  let fotonik_slice = List.assoc "fotonik" fig4 in
  check bool "moses slices dwarf fotonik's" true (moses_slice > fotonik_slice);
  let fig11 = Experiments.fig11 ~sizes () in
  let moses_tags = List.assoc "moses" fig11 in
  let imgdnn_tags = List.assoc "imgdnn" fig11 in
  check bool "moses tags many more instructions than imgdnn" true
    (moses_tags > imgdnn_tags)

let () =
  Alcotest.run "integration"
    [ ( "integration",
        [ Alcotest.test_case "FDO flow end-to-end" `Quick test_fdo_flow;
          Alcotest.test_case "CRISP > OOO on pointer chase" `Slow
            test_crisp_beats_ooo_on_pointer_chase;
          Alcotest.test_case "neutral on streaming" `Slow test_crisp_neutral_on_streaming;
          Alcotest.test_case "declines high-MLP loads" `Slow test_crisp_declines_high_mlp;
          Alcotest.test_case "CRISP vs IBDA on memory deps" `Slow
            test_crisp_beats_ibda_where_memory_deps_matter;
          Alcotest.test_case "runner caching" `Slow test_runner_caching;
          Alcotest.test_case "branch slices on branch-bound code" `Slow
            test_branch_slices_help_branch_bound_code;
          Alcotest.test_case "prefix footprint bounds" `Slow test_prefix_grows_footprint;
          Alcotest.test_case "figure 3 slice" `Quick test_fig3_slice;
          Alcotest.test_case "figure shapes" `Slow test_experiment_shapes ] ) ]
