(* Tests for the stream, stride and best-offset prefetchers. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------------- Stream ---------------- *)

let test_stream_detects_ascending () =
  let s = Stream_prefetcher.create ~degree:4 () in
  ignore (Stream_prefetcher.access s ~line:100);
  ignore (Stream_prefetcher.access s ~line:101);
  let p = Stream_prefetcher.access s ~line:102 in
  check bool "prefetches ahead" true (List.mem 103 p);
  check int "degree lines" 4 (List.length p)

let test_stream_detects_descending () =
  let s = Stream_prefetcher.create ~degree:2 () in
  ignore (Stream_prefetcher.access s ~line:500);
  ignore (Stream_prefetcher.access s ~line:499);
  let p = Stream_prefetcher.access s ~line:498 in
  check bool "prefetches downward" true (List.mem 497 p)

let test_stream_ignores_random () =
  let s = Stream_prefetcher.create () in
  let rng = Prng.create 17 in
  let issued = ref 0 in
  for _ = 1 to 200 do
    issued := !issued + List.length (Stream_prefetcher.access s ~line:(Prng.int rng 1_000_000))
  done;
  check bool "almost no prefetches on random lines" true (!issued < 20)

(* ---------------- Stride ---------------- *)

let test_stride_detects_constant_stride () =
  let s = Stride_prefetcher.create ~degree:2 () in
  ignore (Stride_prefetcher.access s ~pc:7 ~addr:1000);
  ignore (Stride_prefetcher.access s ~pc:7 ~addr:1024);
  ignore (Stride_prefetcher.access s ~pc:7 ~addr:1048);
  let p = Stride_prefetcher.access s ~pc:7 ~addr:1072 in
  check bool "prefetches addr+stride" true (List.mem 1096 p);
  check bool "prefetches addr+2*stride" true (List.mem 1120 p)

let test_stride_is_per_pc () =
  let s = Stride_prefetcher.create () in
  (* interleaved pcs with different strides still learn independently *)
  for i = 0 to 5 do
    ignore (Stride_prefetcher.access s ~pc:1 ~addr:(i * 8));
    ignore (Stride_prefetcher.access s ~pc:2 ~addr:(i * 4096))
  done;
  let p1 = Stride_prefetcher.access s ~pc:1 ~addr:48 in
  check bool "pc 1 stride 8" true (List.mem 56 p1)

let test_stride_resets_on_irregularity () =
  let s = Stride_prefetcher.create ~min_confidence:2 () in
  ignore (Stride_prefetcher.access s ~pc:3 ~addr:0);
  ignore (Stride_prefetcher.access s ~pc:3 ~addr:100);
  ignore (Stride_prefetcher.access s ~pc:3 ~addr:7777);
  let p = Stride_prefetcher.access s ~pc:3 ~addr:9999 in
  check int "no prefetch after stride break" 0 (List.length p)

(* ---------------- BOP ---------------- *)

let test_bop_offset_list () =
  check bool "1 is a candidate" true (List.mem 1 Bop.candidate_offsets);
  check bool "30 = 2*3*5 is a candidate" true (List.mem 30 Bop.candidate_offsets);
  check bool "7 is not a candidate" false (List.mem 7 Bop.candidate_offsets);
  check bool "all within 256" true (List.for_all (fun d -> d <= 256) Bop.candidate_offsets)

let test_bop_learns_constant_offset () =
  let b = Bop.create ~round_max:10 () in
  (* an access stream with constant line offset 4: X, X+4, X+8, ... *)
  for i = 0 to 4000 do
    let line = 1000 + (i * 4) in
    Bop.record_fill b ~line;
    Bop.train b ~line
  done;
  (match Bop.best_offset b with
  | Some d -> check int "learned offset 4" 4 d
  | None -> Alcotest.fail "BOP disabled itself on a regular stream");
  match Bop.query b ~line:5000 with
  | Some target -> check int "prefetch at line+4" 5004 target
  | None -> Alcotest.fail "no prefetch"

let test_bop_disables_on_random () =
  let b = Bop.create ~round_max:5 ~bad_score:2 () in
  let rng = Prng.create 23 in
  for _ = 0 to 20_000 do
    let line = Prng.int rng 1_000_000 in
    Bop.record_fill b ~line;
    Bop.train b ~line
  done;
  check bool "prefetching off on random misses" true (Bop.best_offset b = None)


(* ---------------- GHB ---------------- *)

let test_ghb_learns_periodic_deltas () =
  let g = Ghb.create ~degree:2 () in
  (* period-2 delta pattern +8, +24: stride prefetchers cannot learn it *)
  let addr = ref 0 in
  let last = ref [] in
  for i = 0 to 40 do
    last := Ghb.access g ~pc:11 ~addr:!addr;
    addr := !addr + (if i land 1 = 0 then 8 else 24)
  done;
  (* the last training access was at !addr's predecessor; the next two
     addresses continue the pattern *)
  check bool "GHB issues prefetches" true (Ghb.issued g > 0);
  check bool "prediction continues the periodic pattern" true
    (match !last with
     | a :: _ -> a > 0
     | [] -> false)

let test_ghb_exact_prediction () =
  let g = Ghb.create ~degree:2 () in
  (* addresses 0, 8, 32, 40, 64, 72, 96 ... (+8, +24 alternating) *)
  let seq = [ 0; 8; 32; 40; 64; 72 ] in
  let preds = List.map (fun a -> Ghb.access g ~pc:3 ~addr:a) seq in
  let final = List.nth preds (List.length preds - 1) in
  (* after ...64, 72 the deltas (newest first) are (8, 24); the earlier
     occurrence was followed by +24 then +8 *)
  check bool "predicts 96 next" true (List.mem 96 final);
  check bool "then 104" true (List.mem 104 final)

let test_ghb_silent_on_random () =
  let g = Ghb.create () in
  let rng = Prng.create 41 in
  for _ = 0 to 500 do
    ignore (Ghb.access g ~pc:9 ~addr:(Prng.int rng 1_000_000))
  done;
  check bool "random addresses yield almost nothing" true (Ghb.issued g < 10)

let () =
  Alcotest.run "prefetch"
    [ ( "stream",
        [ Alcotest.test_case "ascending stream" `Quick test_stream_detects_ascending;
          Alcotest.test_case "descending stream" `Quick test_stream_detects_descending;
          Alcotest.test_case "random traffic" `Quick test_stream_ignores_random ] );
      ( "stride",
        [ Alcotest.test_case "constant stride" `Quick test_stride_detects_constant_stride;
          Alcotest.test_case "per-pc tracking" `Quick test_stride_is_per_pc;
          Alcotest.test_case "irregularity resets" `Quick test_stride_resets_on_irregularity ] );
      ( "bop",
        [ Alcotest.test_case "offset candidates" `Quick test_bop_offset_list;
          Alcotest.test_case "learns constant offset" `Quick test_bop_learns_constant_offset;
          Alcotest.test_case "disables on random" `Quick test_bop_disables_on_random ] );
      ( "ghb",
        [ Alcotest.test_case "periodic deltas" `Quick test_ghb_learns_periodic_deltas;
          Alcotest.test_case "exact prediction" `Quick test_ghb_exact_prediction;
          Alcotest.test_case "random traffic" `Quick test_ghb_silent_on_random ] ) ]
