(* Unit tests for the micro-op ISA: functional-unit classes, latencies,
   encoded sizes and predicate helpers. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let all_ops =
  [ Isa.Alu Isa.Add; Isa.Alu Isa.Sub; Isa.Alu Isa.And; Isa.Alu Isa.Or;
    Isa.Alu Isa.Xor; Isa.Alu Isa.Shl; Isa.Alu Isa.Shr; Isa.Alu Isa.Cmp;
    Isa.Alu Isa.Mov; Isa.Li; Isa.Mul; Isa.Div; Isa.Fp_add; Isa.Fp_mul;
    Isa.Fp_div; Isa.Load; Isa.Store; Isa.Prefetch; Isa.Branch Isa.Eq;
    Isa.Branch Isa.Ne; Isa.Branch Isa.Lt; Isa.Branch Isa.Ge; Isa.Branch Isa.Le;
    Isa.Branch Isa.Gt; Isa.Jump; Isa.Call; Isa.Ret; Isa.Nop; Isa.Halt ]

let test_fu_classes () =
  check bool "load uses load port" true (Isa.fu_of_op Isa.Load = Isa.Fu_load);
  check bool "prefetch uses load port" true (Isa.fu_of_op Isa.Prefetch = Isa.Fu_load);
  check bool "store uses store port" true (Isa.fu_of_op Isa.Store = Isa.Fu_store);
  check bool "alu op uses alu port" true (Isa.fu_of_op (Isa.Alu Isa.Add) = Isa.Fu_alu);
  check bool "branch uses alu port" true (Isa.fu_of_op (Isa.Branch Isa.Eq) = Isa.Fu_alu)

let test_latencies () =
  check int "simple alu is single cycle" 1 (Isa.exec_latency (Isa.Alu Isa.Add));
  check int "branch is single cycle" 1 (Isa.exec_latency (Isa.Branch Isa.Lt));
  check bool "divide is the longest integer op" true
    (Isa.exec_latency Isa.Div > Isa.exec_latency Isa.Mul);
  check bool "fp divide longer than fp multiply" true
    (Isa.exec_latency Isa.Fp_div > Isa.exec_latency Isa.Fp_mul);
  List.iter
    (fun op -> check bool "latency positive" true (Isa.exec_latency op >= 1))
    all_ops

let test_sizes () =
  List.iter
    (fun op ->
      let size = Isa.byte_size op in
      check bool "encoded size in 1..8 bytes" true (size >= 1 && size <= 8))
    all_ops;
  check int "criticality prefix is one byte" 1 Isa.prefix_bytes

let test_predicates () =
  check bool "branch detected" true (Isa.is_branch Isa.Jump);
  check bool "call is a branch" true (Isa.is_branch Isa.Call);
  check bool "load is not a branch" false (Isa.is_branch Isa.Load);
  check bool "conditional only for Branch" true (Isa.is_conditional (Isa.Branch Isa.Gt));
  check bool "jump is not conditional" false (Isa.is_conditional Isa.Jump);
  check bool "store touches memory" true (Isa.is_mem Isa.Store);
  check bool "prefetch touches memory" true (Isa.is_mem Isa.Prefetch);
  check bool "load writes a register" true (Isa.writes_reg Isa.Load);
  check bool "store writes no register" false (Isa.writes_reg Isa.Store);
  check bool "branch writes no register" false (Isa.writes_reg (Isa.Branch Isa.Eq))

let test_names () =
  check Alcotest.string "load mnemonic" "ld" (Isa.op_name Isa.Load);
  check Alcotest.string "branch mnemonic" "beq" (Isa.op_name (Isa.Branch Isa.Eq));
  let names = List.map Isa.op_name all_ops in
  check int "mnemonics are distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "isa"
    [ ( "isa",
        [ Alcotest.test_case "functional-unit classes" `Quick test_fu_classes;
          Alcotest.test_case "latencies" `Quick test_latencies;
          Alcotest.test_case "encoded sizes" `Quick test_sizes;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "mnemonics" `Quick test_names ] ) ]
