(* Tests for the bitsets, the age matrix and the select-then-arbitrate
   scheduler, including the property that the age matrix agrees with a
   plain insertion-order reference. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Bitset ---------------- *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  check bool "fresh is empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  check bool "mem 63 (word boundary)" true (Bitset.mem b 63);
  check int "count" 3 (Bitset.count b);
  Bitset.clear b 63;
  check bool "cleared" false (Bitset.mem b 63);
  let seen = ref [] in
  Bitset.iter_set (fun i -> seen := i :: !seen) b;
  check bool "iteration ascending" true (List.rev !seen = [ 0; 99 ])

let test_bitset_ops () =
  let a = Bitset.create 70 and b = Bitset.create 70 and dst = Bitset.create 70 in
  List.iter (Bitset.set a) [ 1; 5; 64 ];
  List.iter (Bitset.set b) [ 5; 64; 69 ];
  Bitset.inter_into ~a ~b ~dst;
  check int "intersection" 2 (Bitset.count dst);
  Bitset.diff_into ~a ~b ~dst;
  check bool "difference keeps 1 only" true (Bitset.mem dst 1 && Bitset.count dst = 1);
  check bool "inter_empty false" false (Bitset.inter_empty a b);
  let c = Bitset.create 70 in
  Bitset.set c 2;
  check bool "inter_empty true" true (Bitset.inter_empty a c)

let test_bitset_clear_everywhere () =
  let sets = Array.init 4 (fun _ -> Bitset.create 70) in
  Array.iter (fun s -> Bitset.set s 65) sets;
  Bitset.clear_bit_everywhere sets 65;
  Array.iter (fun s -> check bool "bit cleared in all" false (Bitset.mem s 65)) sets

(* ---------------- Age matrix ---------------- *)

let test_age_matrix_basic_order () =
  let m = Age_matrix.create 8 in
  Age_matrix.insert m 3;
  Age_matrix.insert m 1;
  Age_matrix.insert m 6;
  let cand = Bitset.create 8 in
  List.iter (Bitset.set cand) [ 1; 3; 6 ];
  check int "oldest is the first inserted" 3 (Age_matrix.pick_oldest m cand);
  Age_matrix.remove m 3;
  Bitset.clear cand 3;
  check int "then the second" 1 (Age_matrix.pick_oldest m cand)

let test_age_matrix_slot_reuse () =
  let m = Age_matrix.create 4 in
  Age_matrix.insert m 0;
  Age_matrix.insert m 1;
  Age_matrix.remove m 0;
  Age_matrix.insert m 0;
  (* slot 0 now holds a YOUNGER instruction than slot 1 *)
  let cand = Bitset.create 4 in
  Bitset.set cand 0;
  Bitset.set cand 1;
  check int "reused slot is younger" 1 (Age_matrix.pick_oldest m cand)

let prop_age_matrix_matches_reference =
  QCheck.Test.make ~name:"age matrix = insertion-order reference" ~count:60
    QCheck.small_int (fun seed ->
      let n = 16 in
      let m = Age_matrix.create n in
      let rng = Prng.create (seed + 1) in
      (* reference: list of occupied slots in insertion order *)
      let order = ref [] in
      let ok = ref true in
      for _ = 1 to 300 do
        let occupied = !order in
        if List.length occupied < n && (occupied = [] || Prng.bool rng) then begin
          (* insert into a random free slot *)
          let free =
            List.filter (fun s -> not (List.mem s occupied)) (List.init n Fun.id)
          in
          let slot = List.nth free (Prng.int rng (List.length free)) in
          Age_matrix.insert m slot;
          order := !order @ [ slot ]
        end
        else begin
          (* query a random non-empty candidate subset, compare, then
             remove the winner *)
          let cand_list =
            List.filter (fun _ -> Prng.bool rng) occupied
          in
          let cand_list = if cand_list = [] then [ List.hd occupied ] else cand_list in
          let cand = Bitset.create n in
          List.iter (Bitset.set cand) cand_list;
          let expected =
            (* first element of insertion order present in the candidates *)
            List.find (fun s -> List.mem s cand_list) occupied
          in
          let got = Age_matrix.pick_oldest m cand in
          if got <> expected then ok := false;
          Age_matrix.remove m got;
          order := List.filter (fun s -> s <> got) !order
        end
      done;
      !ok)

(* ---------------- Scheduler ---------------- *)

let fill_scheduler sched specs =
  (* specs: (critical, ready) list in dispatch order; returns slots *)
  List.map
    (fun (critical, ready) ->
      match Scheduler.allocate sched ~critical with
      | Some slot ->
        if ready then Scheduler.mark_ready sched slot;
        slot
      | None -> Alcotest.fail "scheduler full")
    specs

let test_scheduler_oldest_first () =
  let s = Scheduler.create ~slots:16 Scheduler.Oldest_ready in
  let slots = fill_scheduler s [ (false, true); (false, true); (false, true) ] in
  Scheduler.begin_cycle s;
  check int "oldest selected first" (List.nth slots 0) (Scheduler.select s);
  check int "then second oldest" (List.nth slots 1) (Scheduler.select s);
  check int "then third" (List.nth slots 2) (Scheduler.select s);
  check int "no more candidates" (-1) (Scheduler.select s)

let test_scheduler_crisp_prefers_critical () =
  let s = Scheduler.create ~slots:16 Scheduler.Crisp in
  let slots =
    fill_scheduler s [ (false, true); (false, true); (true, true); (false, true) ]
  in
  Scheduler.begin_cycle s;
  check int "youngest-but-critical wins" (List.nth slots 2) (Scheduler.select s);
  check int "then the oldest non-critical" (List.nth slots 0) (Scheduler.select s)

let test_scheduler_crisp_falls_back () =
  let s = Scheduler.create ~slots:16 Scheduler.Crisp in
  let slots = fill_scheduler s [ (false, true); (true, false) ] in
  Scheduler.begin_cycle s;
  check int "critical-but-not-ready is skipped" (List.nth slots 0) (Scheduler.select s)

let test_scheduler_selected_not_repicked () =
  let s = Scheduler.create ~slots:8 Scheduler.Oldest_ready in
  let slots = fill_scheduler s [ (false, true) ] in
  Scheduler.begin_cycle s;
  check int "selected once" (List.hd slots) (Scheduler.select s);
  check int "not re-selected within the cycle" (-1) (Scheduler.select s);
  Scheduler.begin_cycle s;
  check int "wasted slot becomes selectable next cycle" (List.hd slots)
    (Scheduler.select s)

let test_scheduler_issue_frees_slot () =
  let s = Scheduler.create ~slots:2 Scheduler.Oldest_ready in
  let slots = fill_scheduler s [ (false, true); (false, true) ] in
  check int "full" 0 (Scheduler.free_slots s);
  check bool "allocate fails when full" true (Scheduler.allocate s ~critical:false = None);
  Scheduler.issue s (List.hd slots);
  check int "issue frees" 1 (Scheduler.free_slots s);
  check int "occupancy tracks" 1 (Scheduler.occupancy s)

let test_scheduler_unready () =
  let s = Scheduler.create ~slots:8 Scheduler.Oldest_ready in
  let slots = fill_scheduler s [ (false, true) ] in
  Scheduler.unready s (List.hd slots);
  Scheduler.begin_cycle s;
  check int "unready slot is not selectable" (-1) (Scheduler.select s);
  Scheduler.mark_ready s (List.hd slots);
  Scheduler.begin_cycle s;
  check int "re-readied slot selectable, age kept" (List.hd slots) (Scheduler.select s)

let prop_random_ready_selects_ready =
  QCheck.Test.make ~name:"random policy only selects ready slots" ~count:40
    QCheck.small_int (fun seed ->
      let s = Scheduler.create ~seed ~slots:32 Scheduler.Random_ready in
      let rng = Prng.create (seed + 2) in
      let ready_slots = Hashtbl.create 16 in
      for _ = 1 to 20 do
        match Scheduler.allocate s ~critical:false with
        | Some slot ->
          if Prng.bool rng then begin
            Scheduler.mark_ready s slot;
            Hashtbl.replace ready_slots slot ()
          end
        | None -> ()
      done;
      Scheduler.begin_cycle s;
      let ok = ref true in
      let rec drain () =
        let slot = Scheduler.select s in
        if slot >= 0 then begin
          if not (Hashtbl.mem ready_slots slot) then ok := false;
          drain ()
        end
      in
      drain ();
      !ok)

let () =
  Alcotest.run "scheduler"
    [ ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "column clear" `Quick test_bitset_clear_everywhere ] );
      ( "age matrix",
        [ Alcotest.test_case "insertion order" `Quick test_age_matrix_basic_order;
          Alcotest.test_case "slot reuse" `Quick test_age_matrix_slot_reuse;
          QCheck_alcotest.to_alcotest prop_age_matrix_matches_reference ] );
      ( "scheduler",
        [ Alcotest.test_case "oldest-ready order" `Quick test_scheduler_oldest_first;
          Alcotest.test_case "CRISP prefers critical" `Quick
            test_scheduler_crisp_prefers_critical;
          Alcotest.test_case "CRISP fallback" `Quick test_scheduler_crisp_falls_back;
          Alcotest.test_case "per-cycle selection mask" `Quick
            test_scheduler_selected_not_repicked;
          Alcotest.test_case "issue frees slots" `Quick test_scheduler_issue_frees_slot;
          Alcotest.test_case "unready keeps age" `Quick test_scheduler_unready;
          QCheck_alcotest.to_alcotest prop_random_ready_selects_ready ] ) ]
