(* Tests for the branch prediction substrate: bimodal, gshare, TAGE, the
   branch target buffer and the return address stack. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Bimodal ---------------- *)

let test_bimodal_saturation () =
  let p = Bimodal.create () in
  for _ = 1 to 10 do
    Bimodal.update p ~pc:100 ~taken:true
  done;
  check int "counter saturates at 3" 3 (Bimodal.counter p ~pc:100);
  check bool "predicts taken" true (Bimodal.predict p ~pc:100);
  Bimodal.update p ~pc:100 ~taken:false;
  check bool "hysteresis: one not-taken keeps prediction" true
    (Bimodal.predict p ~pc:100)

let test_bimodal_learns_not_taken () =
  let p = Bimodal.create () in
  for _ = 1 to 4 do
    Bimodal.update p ~pc:8 ~taken:false
  done;
  check bool "predicts not taken" false (Bimodal.predict p ~pc:8)

(* ---------------- Gshare ---------------- *)

let test_gshare_learns_alternation () =
  let p = Gshare.create () in
  (* strict alternation is history-predictable *)
  let correct = ref 0 in
  for i = 1 to 2000 do
    let taken = i land 1 = 0 in
    if Gshare.predict p ~pc:400 = taken then incr correct;
    Gshare.update p ~pc:400 ~taken
  done;
  check bool "gshare learns alternating pattern (>90% on last half)" true
    (!correct > 1700)

(* ---------------- TAGE ---------------- *)

let accuracy_of_pattern predictor_updates n =
  let t = Tage.create () in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let pc, taken = predictor_updates i in
    if Tage.predict_and_update t ~pc ~taken = taken then incr correct
  done;
  float_of_int !correct /. float_of_int n

let test_tage_biased_branch () =
  let acc = accuracy_of_pattern (fun _ -> (12, true)) 2000 in
  check bool "always-taken learned" true (acc > 0.98)

let test_tage_short_loop () =
  (* a loop taken 7 times then not taken once: needs history *)
  let acc = accuracy_of_pattern (fun i -> (64, i mod 8 <> 7)) 8000 in
  check bool "loop-exit pattern learned (>95%)" true (acc > 0.95)

let test_tage_long_pattern_beats_bimodal () =
  (* period-12 pattern: far beyond bimodal, within TAGE history reach *)
  let pattern i = i mod 12 < 6 in
  let tage_acc = accuracy_of_pattern (fun i -> (9, pattern i)) 12_000 in
  let bim = Bimodal.create () in
  let correct = ref 0 in
  for i = 0 to 11_999 do
    if Bimodal.predict bim ~pc:9 = pattern i then incr correct;
    Bimodal.update bim ~pc:9 ~taken:(pattern i)
  done;
  let bim_acc = float_of_int !correct /. 12_000. in
  check bool "tage beats bimodal on long patterns" true (tage_acc > bim_acc +. 0.1)

let test_tage_random_is_hard () =
  let rng = Prng.create 99 in
  let acc = accuracy_of_pattern (fun _ -> (77, Prng.bool rng)) 4000 in
  check bool "random outcomes stay near 50%" true (acc < 0.65)

let test_tage_counters () =
  let t = Tage.create () in
  for i = 0 to 99 do
    ignore (Tage.predict_and_update t ~pc:5 ~taken:(i land 1 = 0))
  done;
  check int "prediction count" 100 (Tage.predictions t);
  check bool "mispredictions bounded by predictions" true
    (Tage.mispredictions t <= Tage.predictions t)

let prop_tage_never_crashes =
  QCheck.Test.make ~name:"tage handles arbitrary streams" ~count:20
    QCheck.small_int (fun seed ->
      let t = Tage.create () in
      let rng = Prng.create (seed + 1) in
      for _ = 1 to 2000 do
        ignore
          (Tage.predict_and_update t ~pc:(Prng.int rng 4096) ~taken:(Prng.bool rng))
      done;
      Tage.predictions t = 2000)

(* ---------------- BTB ---------------- *)

let test_btb_hit_after_update () =
  let btb = Btb.create ~entries:64 ~assoc:4 () in
  check bool "cold miss" true (Btb.lookup btb ~pc:10 = None);
  Btb.update btb ~pc:10 ~target:99;
  check bool "hit with target" true (Btb.lookup btb ~pc:10 = Some 99);
  Btb.update btb ~pc:10 ~target:123;
  check bool "target refreshed" true (Btb.lookup btb ~pc:10 = Some 123)

let test_btb_lru_eviction () =
  let btb = Btb.create ~entries:4 ~assoc:4 () in
  (* one set of four ways: fill it, then insert a fifth mapping *)
  List.iter (fun pc -> Btb.update btb ~pc ~target:pc) [ 0; 4; 8; 12 ];
  ignore (Btb.lookup btb ~pc:0);
  (* pc 4 is now LRU *)
  Btb.update btb ~pc:16 ~target:16;
  check bool "recently used survives" true (Btb.lookup btb ~pc:0 = Some 0);
  check bool "LRU way evicted" true (Btb.lookup btb ~pc:4 = None)

(* ---------------- RAS ---------------- *)

let test_ras_lifo () =
  let ras = Ras.create ~depth:4 () in
  Ras.push ras 1;
  Ras.push ras 2;
  check bool "pop returns last push" true (Ras.pop ras = Some 2);
  check bool "then the previous" true (Ras.pop ras = Some 1);
  check bool "underflow" true (Ras.pop ras = None)

let test_ras_overflow_wraps () =
  let ras = Ras.create ~depth:2 () in
  List.iter (Ras.push ras) [ 1; 2; 3 ];
  check int "depth saturates" 2 (Ras.depth ras);
  check bool "newest survives overflow" true (Ras.pop ras = Some 3);
  check bool "oldest was overwritten" true (Ras.pop ras = Some 2);
  check bool "stack exhausted" true (Ras.pop ras = None)

let () =
  Alcotest.run "branch"
    [ ( "bimodal",
        [ Alcotest.test_case "saturation and hysteresis" `Quick test_bimodal_saturation;
          Alcotest.test_case "learns not-taken" `Quick test_bimodal_learns_not_taken ] );
      ("gshare", [ Alcotest.test_case "alternation" `Quick test_gshare_learns_alternation ]);
      ( "tage",
        [ Alcotest.test_case "biased branch" `Quick test_tage_biased_branch;
          Alcotest.test_case "loop exit" `Quick test_tage_short_loop;
          Alcotest.test_case "long pattern vs bimodal" `Quick
            test_tage_long_pattern_beats_bimodal;
          Alcotest.test_case "random stays hard" `Quick test_tage_random_is_hard;
          Alcotest.test_case "counters" `Quick test_tage_counters;
          QCheck_alcotest.to_alcotest prop_tage_never_crashes ] );
      ( "btb",
        [ Alcotest.test_case "hit after update" `Quick test_btb_hit_after_update;
          Alcotest.test_case "LRU eviction" `Quick test_btb_lru_eviction ] );
      ( "ras",
        [ Alcotest.test_case "LIFO order" `Quick test_ras_lifo;
          Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps ] ) ]
