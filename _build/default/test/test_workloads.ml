(* Tests for the workload suite: every kernel assembles, runs to its
   instruction budget, and exhibits the memory/branch character it was
   designed for. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let profile name =
  let w = Catalog.make ~input:Workload.Train ~instrs:50_000 name in
  let trace = Workload.trace w in
  (trace, Profiler.profile trace)

let test_catalog_complete () =
  check int "17 workloads" 17 (List.length Catalog.names);
  List.iter
    (fun name ->
      let w = Catalog.make ~input:Workload.Ref ~instrs:5_000 name in
      let trace = Workload.trace w in
      check bool (name ^ " produces a full trace") true
        (Array.length trace.Executor.dyns >= 4_999))
    Catalog.names

let test_catalog_unknown () =
  Alcotest.check_raises "unknown workload" Not_found (fun () ->
      ignore (Catalog.make "nonesuch"))

let test_inputs_differ () =
  let t1 = Workload.trace (Catalog.make ~input:Workload.Train ~instrs:5_000 "mcf") in
  let t2 = Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:5_000 "mcf") in
  check bool "train and ref traces differ" true (t1.Executor.dyns <> t2.Executor.dyns);
  check int "same static program" (Array.length t1.Executor.prog.Program.code)
    (Array.length t2.Executor.prog.Program.code)

let test_deterministic_generation () =
  let t1 = Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:5_000 "xz") in
  let t2 = Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:5_000 "xz") in
  check bool "same input, same trace" true (t1.Executor.dyns = t2.Executor.dyns)

let miss_heavy_apps = [ "mcf"; "omnetpp"; "xhpcg"; "moses"; "memcached"; "xz" ]

let test_memory_character () =
  List.iter
    (fun name ->
      let _, r = profile name in
      check bool (name ^ " has LLC misses") true (r.Profiler.total_llc_misses > 50))
    miss_heavy_apps;
  let _, fotonik = profile "fotonik" in
  check bool "fotonik covered by prefetchers" true
    (fotonik.Profiler.total_llc_misses * 50 < fotonik.Profiler.total_loads)

let test_branch_character () =
  let hard = [ "deepsjeng"; "omnetpp"; "lbm" ] in
  List.iter
    (fun name ->
      let _, r = profile name in
      let rate =
        float_of_int r.Profiler.total_mispredicts
        /. float_of_int (max 1 r.Profiler.total_branches)
      in
      check bool (name ^ " has hard branches") true (rate > 0.10))
    hard;
  let _, fotonik = profile "fotonik" in
  let rate =
    float_of_int fotonik.Profiler.total_mispredicts
    /. float_of_int (max 1 fotonik.Profiler.total_branches)
  in
  check bool "fotonik branches are predictable" true (rate < 0.02)

let test_pointer_chase_variants () =
  let plain = Catalog.pointer_chase ~instrs:5_000 () in
  let prefetched = Catalog.pointer_chase ~instrs:5_000 ~with_prefetch:true () in
  let count_prefetches w =
    let trace = Workload.trace w in
    Array.fold_left
      (fun acc (d : Executor.dyn) ->
        if d.Executor.op = Isa.Prefetch then acc + 1 else acc)
      0 trace.Executor.dyns
  in
  check int "no prefetches in the plain kernel" 0 (count_prefetches plain);
  check bool "prefetch variant issues prefetches" true (count_prefetches prefetched > 10)

let test_moses_has_deep_chains () =
  let trace, r = profile "moses" in
  ignore r;
  let deps = Deps.compute trace in
  (* find a level-3 load (depends on a load that depends on a load) *)
  let dyns = trace.Executor.dyns in
  let has_deep_chain = ref false in
  Array.iteri
    (fun i (d : Executor.dyn) ->
      if d.Executor.op = Isa.Load then begin
        let p1 = deps.Deps.prod1.(i) in
        if p1 >= 0 && dyns.(p1).Executor.op = Isa.Load then begin
          let p2 = deps.Deps.prod1.(p1) in
          if p2 >= 0 && dyns.(p2).Executor.op = Isa.Load then has_deep_chain := true
        end
      end)
    dyns;
  check bool "three dependent load levels" true !has_deep_chain

let test_namd_spills_through_memory () =
  let trace, _ = profile "namd" in
  let deps = Deps.compute trace in
  let dyns = trace.Executor.dyns in
  let found = ref false in
  Array.iteri
    (fun i (d : Executor.dyn) ->
      if d.Executor.op = Isa.Load && deps.Deps.prod_mem.(i) >= 0 then begin
        (* a load whose value comes from an in-flight store: the spill *)
        let producer = dyns.(deps.Deps.prod_mem.(i)) in
        if producer.Executor.op = Isa.Store then found := true
      end)
    dyns;
  check bool "address chain passes through the stack" true !found

let test_gcc_code_footprint () =
  let w = Catalog.make ~input:Workload.Ref ~instrs:5_000 "gcc" in
  check bool "gcc has a large static program" true
    (Array.length w.Workload.program.Program.code > 800);
  let trace = Workload.trace w in
  let has_calls =
    Array.exists (fun (d : Executor.dyn) -> d.Executor.op = Isa.Call) trace.Executor.dyns
  in
  check bool "gcc exercises call/return" true has_calls

let () =
  Alcotest.run "workloads"
    [ ( "workloads",
        [ Alcotest.test_case "catalog complete" `Slow test_catalog_complete;
          Alcotest.test_case "unknown name" `Quick test_catalog_unknown;
          Alcotest.test_case "train/ref inputs differ" `Quick test_inputs_differ;
          Alcotest.test_case "deterministic generation" `Quick
            test_deterministic_generation;
          Alcotest.test_case "memory character" `Slow test_memory_character;
          Alcotest.test_case "branch character" `Slow test_branch_character;
          Alcotest.test_case "pointer-chase variants" `Quick test_pointer_chase_variants;
          Alcotest.test_case "moses chain depth" `Quick test_moses_has_deep_chains;
          Alcotest.test_case "namd memory spills" `Quick test_namd_spills_through_memory;
          Alcotest.test_case "gcc code footprint" `Quick test_gcc_code_footprint ] ) ]
