type params = {
  banks : int;
  row_bytes : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  t_burst : int;
  seed : int;
}

let ddr4_2400 =
  { banks = 16; row_bytes = 8192; t_cas = 42; t_rcd = 42; t_rp = 42; t_burst = 10;
    seed = 0x9d2c }

type bank = {
  mutable open_row : int;  (* -1 = precharged *)
  mutable busy_until : int;
}

type t = {
  params : params;
  bank_state : bank array;
  mutable bus_busy_until : int;
  mutable requests : int;
  mutable row_hits : int;
  mutable row_conflicts : int;
}

let create params =
  { params;
    bank_state = Array.init params.banks (fun _ -> { open_row = -1; busy_until = 0 });
    bus_busy_until = 0;
    requests = 0;
    row_hits = 0;
    row_conflicts = 0 }

(* Spread consecutive rows over banks so streaming uses bank parallelism,
   with a seed-dependent hash to avoid pathological aliasing. *)
let map_addr t addr =
  let row_index = addr / t.params.row_bytes in
  let hashed = row_index lxor (row_index lsr 7) lxor t.params.seed in
  let bank = hashed land (t.params.banks - 1) in
  (bank, row_index)

let request t ~cycle ~addr =
  let bank_id, row = map_addr t addr in
  let bank = t.bank_state.(bank_id) in
  t.requests <- t.requests + 1;
  let start = max cycle bank.busy_until in
  let access_latency =
    if bank.open_row = row then begin
      t.row_hits <- t.row_hits + 1;
      t.params.t_cas
    end
    else if bank.open_row = -1 then t.params.t_rcd + t.params.t_cas
    else begin
      t.row_conflicts <- t.row_conflicts + 1;
      t.params.t_rp + t.params.t_rcd + t.params.t_cas
    end
  in
  bank.open_row <- row;
  let data_ready = start + access_latency in
  let data_start = max data_ready t.bus_busy_until in
  let completion = data_start + t.params.t_burst in
  t.bus_busy_until <- data_start + t.params.t_burst;
  bank.busy_until <- data_ready;
  completion

let requests t = t.requests
let row_hits t = t.row_hits
let row_conflicts t = t.row_conflicts

let typical_miss_latency params = params.t_rcd + params.t_cas + params.t_burst
