(* xz proxy: LZMA-style match finder.  A rolling hash of the input window
   selects a hash-chain head in a multi-MiB table (delinquent), and the
   chain is walked through the window (dependent delinquent loads).  The
   literal/match decision branch is data-dependent. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let window_count = int_of_float (180_000. *. scale) in
  let window = Mem_builder.alloc mb ~bytes:(window_count * 8) in
  for i = 0 to window_count - 1 do
    Mem_builder.write mb ~addr:(window + (i * 8)) (Prng.int rng 256)
  done;
  let hash_bits = 16 in
  let head_base = Mem_builder.alloc mb ~bytes:((1 lsl hash_bits) * 64) in
  for i = 0 to (1 lsl hash_bits) - 1 do
    Mem_builder.write mb ~addr:(head_base + (i * 64)) (Prng.int rng window_count)
  done;
  let chain_base = Mem_builder.alloc mb ~bytes:(window_count * 64) in
  for i = 0 to window_count - 1 do
    Mem_builder.write mb ~addr:(chain_base + (i * 64)) (Prng.int rng window_count);
    Mem_builder.write mb ~addr:(chain_base + (i * 64) + 8) (Prng.int rng 256)
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let pos = 1 and byte = 2 and hsh = 3 and t = 4 and cand = 5 in
  let caddr = 6 and cbyte = 7 and acc = 8 and wb = 9 and hb = 10 and cb = 11 in
  let depth = 12 in
  let open Program in
  let code =
    [ Label "loop";
      Alu (Isa.Shl, t, pos, Imm 3);
      Alu (Isa.Add, t, t, Reg wb);
      Ld (byte, t, 0);  (* input byte: streams *)
      (* rolling hash *)
      Mul (hsh, byte, pos);
      Alu (Isa.Xor, hsh, hsh, Imm 0x2545);
      Alu (Isa.Shr, t, hsh, Imm 5);
      Alu (Isa.Xor, hsh, hsh, Reg t);
      Alu (Isa.And, hsh, hsh, Imm ((1 lsl hash_bits) - 1));
      Alu (Isa.Shl, t, hsh, Imm 6);
      Alu (Isa.Add, t, t, Reg hb);
      Ld (cand, t, 0);  (* delinquent hash-head load *)
      Li (depth, 0);
      Label "chain";
      Alu (Isa.Shl, t, cand, Imm 6);
      Alu (Isa.Add, caddr, cb, Reg t);
      Ld (cbyte, caddr, 8) ]  (* candidate byte *)
    (* match-length scoring consuming the candidate byte *)
    @ Kernel_util.payload ~tag:"xz-score" ~dep:cbyte ~buf ~loads:6 ~fp_ops:20
        ~stores:10 ()
    @ [ Br (Isa.Eq, cbyte, Reg byte, "match");  (* rare, mostly not taken *)
      Ld (cand, caddr, 0);  (* dependent chain walk: delinquent *)
      Alu (Isa.Add, depth, depth, Imm 1);
      Br (Isa.Lt, depth, Imm 2, "chain");
      Jmp "emit_literal";
      Label "match";
      Alu (Isa.Add, acc, acc, Reg cand);
      Label "emit_literal";
      Alu (Isa.Add, acc, acc, Reg byte);
      Alu (Isa.Add, pos, pos, Imm 1);
      Br (Isa.Lt, pos, Imm window_count, "loop");
      Li (pos, 0);
      Jmp "loop" ]
  in
  { Workload.name = "xz";
    description = "LZ match finder: hash-chain walks through a large window";
    program = assemble ~name:"xz" code;
    reg_init =
      [ (pos, 0); (wb, window); (hb, head_base); (cb, chain_base); (acc, 0); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
