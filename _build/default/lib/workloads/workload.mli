(** A runnable workload: a program plus its initial architectural state.

    Mirroring the paper's methodology (Section 5.1), every workload offers
    two inputs: [Train], used for profiling and slice extraction, and
    [Ref], used for evaluation — different seeds and data-structure sizes,
    same code. *)

type input =
  | Train
  | Ref

type t = {
  name : string;
  description : string;
  program : Program.t;
  reg_init : (Isa.reg * int) list;
  mem_init : (int, int) Hashtbl.t;
  max_instrs : int;
}

val trace : t -> Executor.t
(** Execute the workload to produce its dynamic trace. *)

val seed_of : input -> int
(** Base PRNG seed: the two inputs use disjoint seeds so profiled and
    evaluated data layouts differ. *)

val scale_of : input -> float
(** Data-structure scale factor: [Train] works on ~60% of the [Ref]
    sizes. *)
