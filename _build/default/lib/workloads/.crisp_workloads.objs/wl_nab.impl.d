lib/workloads/wl_nab.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
