lib/workloads/wl_perlbench.ml: Array Isa Kernel_util List Mem_builder Printf Prng Program Workload
