lib/workloads/wl_namd.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
