lib/workloads/wl_omnetpp.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
