lib/workloads/wl_deepsjeng.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
