lib/workloads/wl_xz.ml: Isa Kernel_util Mem_builder Prng Program Workload
