lib/workloads/wl_pointer_chase.ml: Array Isa Mem_builder Prng Program Workload
