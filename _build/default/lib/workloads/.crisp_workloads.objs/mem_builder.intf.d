lib/workloads/mem_builder.mli: Hashtbl Prng
