lib/workloads/wl_imgdnn.ml: Array Isa Mem_builder Prng Program Workload
