lib/workloads/workload.mli: Executor Hashtbl Isa Program
