lib/workloads/wl_moses.ml: Array Isa Kernel_util List Mem_builder Printf Prng Program Workload
