lib/workloads/kernel_util.ml: Isa List Mem_builder Program
