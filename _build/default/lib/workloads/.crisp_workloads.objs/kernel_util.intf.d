lib/workloads/kernel_util.mli: Isa Mem_builder Program
