lib/workloads/wl_memcached.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
