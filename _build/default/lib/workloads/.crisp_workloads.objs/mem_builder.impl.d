lib/workloads/mem_builder.ml: Array Hashtbl Prng
