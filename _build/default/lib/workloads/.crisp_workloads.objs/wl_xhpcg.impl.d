lib/workloads/wl_xhpcg.ml: Array Isa Kernel_util Mem_builder Prng Program Workload
