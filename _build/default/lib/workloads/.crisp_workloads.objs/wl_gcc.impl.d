lib/workloads/wl_gcc.ml: Array Fun Isa Kernel_util List Mem_builder Printf Prng Program Workload
