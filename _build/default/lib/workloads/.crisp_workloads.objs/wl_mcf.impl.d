lib/workloads/wl_mcf.ml: Isa Kernel_util Mem_builder Prng Program Workload
