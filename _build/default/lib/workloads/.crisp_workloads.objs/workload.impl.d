lib/workloads/workload.ml: Executor Hashtbl Isa Program
