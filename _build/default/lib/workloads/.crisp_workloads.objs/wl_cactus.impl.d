lib/workloads/wl_cactus.ml: Isa Kernel_util Mem_builder Prng Program Workload
