lib/workloads/wl_bwaves.ml: Array Isa List Mem_builder Prng Program Workload
