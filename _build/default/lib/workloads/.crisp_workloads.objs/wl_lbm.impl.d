lib/workloads/wl_lbm.ml: Isa Kernel_util Mem_builder Prng Program Workload
