lib/workloads/wl_fotonik.ml: Isa Mem_builder Program Workload
