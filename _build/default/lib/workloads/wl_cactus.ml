(* cactusBSSN proxy: stencil sweep over a grid larger than the LLC.  The
   five-point neighborhood streams (prefetcher-covered) but each cell also
   performs an indirect lookup into a material table addressed by loaded
   data, and a material-type branch is weakly biased.  Load and branch
   slices are individually modest and synergistic when combined (paper
   Figure 8). *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let mat_count = int_of_float (100_000. *. scale) in
  let mat_base = Mem_builder.alloc mb ~bytes:(mat_count * 64) in
  for i = 0 to mat_count - 1 do
    Mem_builder.write mb ~addr:(mat_base + (i * 64)) (Prng.int rng 100)
  done;
  let cells = max 4096 (instrs / 64 * 11 / 10) in
  let grid = Mem_builder.alloc mb ~bytes:((cells + 16) * 16) in
  for i = 0 to cells + 15 do
    Mem_builder.write mb ~addr:(grid + (i * 16)) (Prng.int rng 4096);
    Mem_builder.write mb ~addr:(grid + (i * 16) + 8) (Prng.int rng mat_count)
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let cell = 1 and cend = 2 and c0 = 3 and c1 = 4 and c2 = 5 and t = 6 in
  let midx = 7 and maddr = 8 and stiff = 9 and acc = 10 and mbase = 11 in
  let open Program in
  let code =
    [ Label "loop";
      Ld (c0, cell, 0);  (* stencil reads: stream *)
      Ld (c1, cell, 16);
      Ld (c2, cell, 32);
      Fadd (c0, c0, c1);
      Fadd (c0, c0, c2);
      Ld (midx, cell, 8);  (* material index, loaded *)
      Alu (Isa.Shl, t, midx, Imm 6);
      Alu (Isa.Add, maddr, mbase, Reg t);
      Ld (stiff, maddr, 0) ]  (* delinquent indirect material lookup *)
    (* constitutive update consuming the stiffness *)
    @ Kernel_util.payload ~tag:"cactus-update" ~dep:stiff ~buf ~loads:6 ~fp_ops:22
        ~stores:10 ()
    @ [ Br (Isa.Lt, stiff, Imm 20, "soft");  (* ~20% taken, data-dependent *)
      Fmul (acc, acc, stiff);
      Fadd (acc, acc, c0);
      Fmul (c0, c0, stiff);
      Fadd (acc, acc, c0);
      Jmp "next";
      Label "soft";
      Fadd (acc, acc, c0);
      Label "next";
      St (acc, cell, 0);
      Alu (Isa.Add, cell, cell, Imm 16);
      Br (Isa.Lt, cell, Reg cend, "loop");
      Li (cell, grid);
      Jmp "loop" ]
  in
  { Workload.name = "cactus";
    description = "stencil sweep with indirect material lookups";
    program = assemble ~name:"cactus" code;
    reg_init =
      [ (cell, grid); (cend, grid + (cells * 16)); (mbase, mat_base); (acc, 1);
        buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
