(** Memory-image construction for workloads: a bump allocator over the
    simulated address space plus helpers for the data-structure shapes the
    kernels need (randomised linked lists, index arrays, word arrays). *)

type t

val create : unit -> t

val table : t -> (int, int) Hashtbl.t
(** The underlying address -> word map, passed to {!Executor.run}. *)

val alloc : t -> bytes:int -> int
(** Reserve a cache-line-aligned region; returns its base address. *)

val write : t -> addr:int -> int -> unit

val int_array : t -> int array -> int
(** Allocate and initialise an array of 8-byte words; returns the base. *)

val linked_list :
  t -> Prng.t -> nodes:int -> region_bytes:int -> value_of:(int -> int) -> int
(** Build a circular singly linked list of [nodes] 64-byte nodes placed at
    shuffled line-aligned slots across a dedicated region — the layout that
    defeats stride and offset prefetchers.  Node layout: next pointer at
    offset 0, value at offset 8.  Returns the head address. *)

val shuffled_indices : Prng.t -> n:int -> int array
(** A random permutation of [0, n). *)
