(* namd proxy: molecular dynamics with register spills.  Like nab, but the
   gather's address is passed through a stack slot (store then reload),
   exactly the x86 register-spilling pattern of Figure 3 line 31.  CRISP's
   trace slicer follows the dependency through memory; IBDA cannot, so it
   misses the heart of the load slice (paper Section 5.2: "in namd and
   Xhpcg, IBDA misses important load slices due to its inability of
   following dependencies through memory"). *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let atom_count = int_of_float (110_000. *. scale) in
  let pos_base = Mem_builder.alloc mb ~bytes:(atom_count * 64) in
  for i = 0 to atom_count - 1 do
    Mem_builder.write mb ~addr:(pos_base + (i * 64)) (Prng.int rng 1000)
  done;
  let pair_count = max 4096 (instrs / 66 * 11 / 10) in
  let pairs_base =
    Mem_builder.int_array mb (Array.init pair_count (fun _ -> Prng.int rng atom_count))
  in
  let stack = Mem_builder.alloc mb ~bytes:64 in
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let ptr = 1 and pend = 2 and nidx = 3 and t = 4 and paddr = 5 in
  let d = 6 and f = 7 and acc = 8 and pb = 9 and sp = 10 and cutoff = 11 in
  let open Program in
  let code =
    [ Label "loop";
      Ld (nidx, ptr, 0);
      Alu (Isa.Shl, t, nidx, Imm 6);
      Alu (Isa.Add, paddr, pb, Reg t);
      (* spill the gather address to the stack and reload it: the address
         dependency now flows through memory *)
      St (paddr, sp, 0);
      Fmul (f, f, acc);  (* unrelated work clobbers the register file *)
      Fadd (f, f, d);
      Ld (paddr, sp, 0);  (* reload: dependency through memory *)
      Ld (d, paddr, 0) ]  (* delinquent gather *)
    @ Kernel_util.payload ~tag:"namd-energy" ~dep:d ~buf ~loads:6 ~fp_ops:24
        ~stores:10 ()
    @ [ Br (Isa.Ge, d, Reg cutoff, "skip");
      Fmul (f, d, d);
      Fadd (f, f, d);
      Fmul (f, f, f);
      Fadd (acc, acc, f);
      Label "skip";
      Fadd (acc, acc, d);
      Alu (Isa.Add, ptr, ptr, Imm 8);
      Br (Isa.Lt, ptr, Reg pend, "loop");
      Li (ptr, pairs_base);
      Jmp "loop" ]
  in
  { Workload.name = "namd";
    description = "pair loop whose gather address is spilled through the stack";
    program = assemble ~name:"namd" code;
    reg_init =
      [ (ptr, pairs_base); (pend, pairs_base + (pair_count * 8)); (pb, pos_base);
        (sp, stack); (cutoff, 780); (acc, 1); (d, 1); (f, 1); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
