let spec_names =
  [ "bwaves"; "cactus"; "deepsjeng"; "fotonik"; "gcc"; "lbm"; "mcf"; "nab"; "namd";
    "omnetpp"; "perlbench"; "xz" ]

let datacenter_names = [ "xhpcg"; "moses"; "memcached"; "imgdnn" ]

let names = spec_names @ datacenter_names @ [ "pointer_chase" ]

let make ?(input = Workload.Ref) ?(instrs = 240_000) name =
  match name with
  | "bwaves" -> Wl_bwaves.make ~input ~instrs ()
  | "cactus" -> Wl_cactus.make ~input ~instrs ()
  | "deepsjeng" -> Wl_deepsjeng.make ~input ~instrs ()
  | "fotonik" -> Wl_fotonik.make ~input ~instrs ()
  | "gcc" -> Wl_gcc.make ~input ~instrs ()
  | "lbm" -> Wl_lbm.make ~input ~instrs ()
  | "mcf" -> Wl_mcf.make ~input ~instrs ()
  | "nab" -> Wl_nab.make ~input ~instrs ()
  | "namd" -> Wl_namd.make ~input ~instrs ()
  | "omnetpp" -> Wl_omnetpp.make ~input ~instrs ()
  | "perlbench" -> Wl_perlbench.make ~input ~instrs ()
  | "xz" -> Wl_xz.make ~input ~instrs ()
  | "xhpcg" -> Wl_xhpcg.make ~input ~instrs ()
  | "moses" -> Wl_moses.make ~input ~instrs ()
  | "memcached" -> Wl_memcached.make ~input ~instrs ()
  | "imgdnn" -> Wl_imgdnn.make ~input ~instrs ()
  | "pointer_chase" -> Wl_pointer_chase.make ~input ~instrs ()
  | _ -> raise Not_found

let pointer_chase ?(input = Workload.Ref) ?(instrs = 240_000) ?(vec_size = 24)
    ?(with_prefetch = false) () =
  Wl_pointer_chase.make ~input ~instrs ~vec_size ~with_prefetch ()
