(* fotonik3d proxy: FDTD field update — pure unit-stride streaming over
   several multi-MiB arrays.  BOP and the stream prefetcher cover nearly
   every access, so CRISP's classifier finds no delinquent loads (the
   stride filter rejects them) and performance matches the baseline. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let count = int_of_float (200_000. *. scale) in
  let ex = Mem_builder.alloc mb ~bytes:(count * 8) in
  let hy = Mem_builder.alloc mb ~bytes:(count * 8) in
  let hz = Mem_builder.alloc mb ~bytes:(count * 8) in
  for i = 0 to count - 1 do
    Mem_builder.write mb ~addr:(ex + (i * 8)) (i + 1);
    Mem_builder.write mb ~addr:(hy + (i * 8)) ((i * 2) + 1);
    Mem_builder.write mb ~addr:(hz + (i * 8)) ((i * 3) + 1)
  done;
  let i = 1 and off = 2 and a = 3 and b = 4 and c = 5 and t = 6 in
  let exb = 7 and hyb = 8 and hzb = 9 and limit = 10 in
  let open Program in
  let code =
    [ Label "loop";
      Alu (Isa.Shl, off, i, Imm 3);
      Alu (Isa.Add, t, exb, Reg off);
      Ld (a, t, 0);
      Alu (Isa.Add, t, hyb, Reg off);
      Ld (b, t, 0);
      Alu (Isa.Add, t, hzb, Reg off);
      Ld (c, t, 0);
      Fmul (b, b, c);
      Fadd (a, a, b);
      Alu (Isa.Add, t, exb, Reg off);
      St (a, t, 0);
      Alu (Isa.Add, i, i, Imm 1);
      Br (Isa.Lt, i, Reg limit, "loop");
      Li (i, 0);
      Jmp "loop" ]
  in
  { Workload.name = "fotonik";
    description = "FDTD field update: unit-stride streaming, prefetcher-covered";
    program = assemble ~name:"fotonik" code;
    reg_init = [ (i, 0); (exb, ex); (hyb, hy); (hzb, hz); (limit, count) ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
