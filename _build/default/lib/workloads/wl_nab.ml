(* nab proxy: molecular-dynamics force loop.  Neighbor indices stream; the
   position gather is irregular and the cutoff test compares noisy
   distances, giving a data-dependent branch with a ~25% taken rate that
   TAGE cannot learn.  Branch slices alone give a solid gain (paper Figure
   8) because resolving the cutoff early un-blocks the frontend. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let atom_count = int_of_float (110_000. *. scale) in
  let pos_base = Mem_builder.alloc mb ~bytes:(atom_count * 64) in
  for i = 0 to atom_count - 1 do
    Mem_builder.write mb ~addr:(pos_base + (i * 64)) (Prng.int rng 1000)
  done;
  let pair_count = max 4096 (instrs / 62 * 11 / 10) in
  let pairs_base =
    Mem_builder.int_array mb (Array.init pair_count (fun _ -> Prng.int rng atom_count))
  in
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let ptr = 1 and pend = 2 and nidx = 3 and t = 4 and paddr = 5 in
  let d = 6 and f = 7 and acc = 8 and pb = 9 and cutoff = 10 in
  let open Program in
  let code =
    [ Label "loop";
      Ld (nidx, ptr, 0);  (* neighbor index: streams *)
      Alu (Isa.Shl, t, nidx, Imm 6);
      Alu (Isa.Add, paddr, pb, Reg t);
      Ld (d, paddr, 0) ]  (* irregular position gather *)
    (* pairwise energy terms consuming the distance *)
    @ Kernel_util.payload ~tag:"nab-energy" ~dep:d ~buf ~loads:6 ~fp_ops:24
        ~stores:10 ()
    @ [ Br (Isa.Ge, d, Reg cutoff, "skip");  (* cutoff: ~25% taken, data-dependent *)
      (* inside cutoff: force computation *)
      Fmul (f, d, d);
      Fadd (f, f, d);
      Fmul (f, f, f);
      Fadd (acc, acc, f);
      Fmul (acc, acc, d);
      Fadd (acc, acc, f);
      Label "skip";
      Alu (Isa.Add, ptr, ptr, Imm 8);
      Br (Isa.Lt, ptr, Reg pend, "loop");
      Li (ptr, pairs_base);
      Jmp "loop" ]
  in
  { Workload.name = "nab";
    description = "molecular-dynamics pair loop with a data-dependent cutoff branch";
    program = assemble ~name:"nab" code;
    reg_init =
      [ (ptr, pairs_base); (pend, pairs_base + (pair_count * 8)); (pb, pos_base);
        (cutoff, 750); (acc, 1); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
