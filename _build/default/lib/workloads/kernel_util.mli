(** Shared code-generation helpers for the workload kernels.

    The central shape of every CRISP-sensitive loop (paper Figure 2) is a
    compact critical slice feeding a delinquent load, surrounded by a block
    of {e payload} work that consumes the loaded value.  When the miss
    resolves, payload and the next iteration's critical slice wake together
    as one ready burst: a baseline oldest-first scheduler drains the
    payload before restarting the miss chain, while CRISP issues the
    critical slice first and overlaps the payload with the next miss. *)

val payload_temps : Isa.reg list
(** Registers the generated payload clobbers (r48-r57); kernels must not
    use them elsewhere. *)

val payload :
  ?stores:int ->
  tag:string ->
  dep:Isa.reg ->
  buf:Isa.reg ->
  loads:int ->
  fp_ops:int ->
  unit ->
  Program.inst list
(** [payload ~tag ~dep ~buf ~loads ~fp_ops ()] emits a burst of work
    dependent on [dep] (a freshly loaded value): an address base derived
    from [dep], [loads] mutually independent cache-resident loads from the
    scratch buffer at [buf], [fp_ops] floating-point operations consuming
    the loaded values (mutually independent, no long chains), and [stores]
    writes back into the buffer.  Loads (two ports) and stores (one port)
    are what make the burst drain slowly past the baseline picker.  Total
    length is [2 + loads + fp_ops + stores] instructions. *)

val payload_length : ?stores:int -> loads:int -> fp_ops:int -> unit -> int

val scratch_buffer : Mem_builder.t -> Isa.reg * (Isa.reg * int)
(** Allocate the 4 KiB cache-resident scratch buffer the payload reads;
    returns the register to pass as [buf] and its initial binding. *)
