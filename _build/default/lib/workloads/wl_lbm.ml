(* lbm proxy: lattice-Boltzmann-style grid sweep.  The cell stream is
   prefetcher-covered, but every cell carries a pseudo-random obstacle flag
   that steers a hard-to-predict branch in front of the floating-point
   collision kernel, and obstacle cells gather from an irregular neighbor
   region.  As in the paper (Sections 3.4, 5.3), load slices alone are
   throttled by the branch-bound frontend; branch slices unlock them. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let cells = max 4096 (instrs / 66 * 11 / 10) in
  let grid_base = Mem_builder.alloc mb ~bytes:(cells * 16) in
  let neighbor_count = int_of_float (90_000. *. scale) in
  let neighbors_base = Mem_builder.alloc mb ~bytes:(neighbor_count * 64) in
  for i = 0 to neighbor_count - 1 do
    Mem_builder.write mb ~addr:(neighbors_base + (i * 64)) (Prng.int rng 512)
  done;
  for i = 0 to cells - 1 do
    (* flag low bit is pseudo-random: the branch is data-dependent *)
    Mem_builder.write mb ~addr:(grid_base + (i * 16)) (Prng.int rng 2);
    Mem_builder.write mb ~addr:(grid_base + (i * 16) + 8) (Prng.int rng neighbor_count)
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let cell = 1 and cell_end = 2 and flag = 3 and nidx = 4 and t = 5 in
  let naddr = 6 and rho = 7 and u = 8 and f0 = 9 and nbase = 10 in
  let open Program in
  let code =
    [ Label "loop";
      (* neighbor density gather: irregular, delinquent *)
      Ld (nidx, cell, 8);
      Alu (Isa.Shl, t, nidx, Imm 6);
      Alu (Isa.Add, naddr, nbase, Reg t);
      Ld (rho, naddr, 0) ]
    (* collision update consuming the density: the deprioritisable burst *)
    @ Kernel_util.payload ~tag:"lbm-collide" ~dep:rho ~buf ~loads:6 ~fp_ops:26
        ~stores:12 ()
    (* the obstacle test depends on the gathered density, so the branch
       resolves only after the miss — the paper's lbm pathology where
       mispredictions gate the decoupled frontend (Section 5.3) *)
    @ [ Alu (Isa.And, flag, rho, Imm 1);
      Br (Isa.Eq, flag, Imm 0, "fluid");  (* hard: density parity is random *)
      Fadd (u, u, rho);
      Jmp "next";
      Label "fluid";
      (* collision kernel: abundant independent FP work *)
      Fmul (f0, f0, u);
      Fadd (f0, f0, rho);
      Fmul (u, u, f0);
      Fadd (u, u, rho);
      Fmul (f0, f0, u);
      Fadd (f0, f0, u);
      Fmul (u, u, f0);
      Fadd (u, u, f0);
      Label "next";
      Alu (Isa.Add, cell, cell, Imm 16);
      Br (Isa.Lt, cell, Reg cell_end, "loop");
      Li (cell, grid_base);
      Jmp "loop" ]
  in
  { Workload.name = "lbm";
    description = "grid sweep with data-dependent obstacle branches and gathers";
    program = assemble ~name:"lbm" code;
    reg_init =
      [ (cell, grid_base); (cell_end, grid_base + (cells * 16)); (nbase, neighbors_base);
        (rho, 3); (u, 5); (f0, 7); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
