(** The workload suite of the paper's evaluation (Section 5.1):
    memory-intensive SPEC2017 proxies, Xhpcg, the TailBench datacenter
    applications (moses, memcached, img-dnn), and the pointer-chasing
    microbenchmark of Figures 1-3. *)

val names : string list
(** All workload names, in the order figures are reported. *)

val make : ?input:Workload.input -> ?instrs:int -> string -> Workload.t
(** Build a workload by name.
    @raise Not_found for an unknown name. *)

val spec_names : string list
(** The SPEC-proxy subset. *)

val datacenter_names : string list
(** The TailBench-proxy subset. *)

val pointer_chase :
  ?input:Workload.input ->
  ?instrs:int ->
  ?vec_size:int ->
  ?with_prefetch:bool ->
  unit ->
  Workload.t
(** The microbenchmark, exposed directly for the Figure 1 / Section 3.1
    experiments that need its prefetch variant. *)
