type t = {
  mem : (int, int) Hashtbl.t;
  mutable cursor : int;
}

let line = 64

let create () = { mem = Hashtbl.create 4096; cursor = 0x1000_0000 }

let table t = t.mem

let alloc t ~bytes =
  let base = t.cursor in
  let rounded = (bytes + line - 1) / line * line in
  t.cursor <- t.cursor + rounded + line;
  base

let write t ~addr value = Hashtbl.replace t.mem addr value

let int_array t values =
  let base = alloc t ~bytes:(8 * Array.length values) in
  Array.iteri (fun i v -> write t ~addr:(base + (8 * i)) v) values;
  base

let shuffled_indices rng ~n =
  let a = Array.init n (fun i -> i) in
  Prng.shuffle rng a;
  a

let linked_list t rng ~nodes ~region_bytes ~value_of =
  if nodes * line > region_bytes then
    invalid_arg "Mem_builder.linked_list: region too small";
  let base = alloc t ~bytes:region_bytes in
  let slots = region_bytes / line in
  (* Choose [nodes] distinct line-aligned slots in random order. *)
  let order = shuffled_indices rng ~n:slots in
  let addr_of i = base + (order.(i) * line) in
  for i = 0 to nodes - 1 do
    let addr = addr_of i in
    let next = addr_of ((i + 1) mod nodes) in
    write t ~addr next;
    write t ~addr:(addr + 8) (value_of i)
  done;
  addr_of 0
