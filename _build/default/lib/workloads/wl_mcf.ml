(* mcf proxy: network-simplex-like arc scan.  The arc array streams
   sequentially (prefetcher-covered); each arc names a node by index, and
   the gather into the multi-MiB node region is irregular and delinquent.
   The address of the gather flows through memory (the index is loaded),
   which register-only IBDA cannot follow.  A data-dependent reduced-cost
   branch adds moderate misprediction pressure. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let node_count = int_of_float (120_000. *. scale) in
  let nodes_base = Mem_builder.alloc mb ~bytes:(node_count * 64) in
  for i = 0 to node_count - 1 do
    Mem_builder.write mb ~addr:(nodes_base + (i * 64)) (Prng.int rng 1000);
    Mem_builder.write mb ~addr:(nodes_base + (i * 64) + 8) 0
  done;
  let arc_count = max 4096 (instrs / 56 * 11 / 10) in
  let arcs_base = Mem_builder.alloc mb ~bytes:(arc_count * 16) in
  for i = 0 to arc_count - 1 do
    (* cost chosen so that cost < potential on roughly a quarter of arcs *)
    Mem_builder.write mb ~addr:(arcs_base + (i * 16)) (Prng.int rng 1333);
    Mem_builder.write mb ~addr:(arcs_base + (i * 16) + 8) (Prng.int rng node_count)
  done;
  let arc = 1 and arc_end = 2 and cost = 3 and nidx = 4 and t = 5 in
  let naddr = 6 and pot = 7 and red = 8 and base = 10 in
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let open Program in
  let code =
    [ Label "loop";
      Ld (cost, arc, 0);
      Ld (nidx, arc, 8);
      Alu (Isa.Shl, t, nidx, Imm 6);
      Alu (Isa.Add, naddr, base, Reg t);
      Ld (pot, naddr, 0) ]  (* delinquent gather into the node region *)
    (* cost updates consuming the gathered potential: the ready burst the
       baseline drains before restarting the pointer chain *)
    @ Kernel_util.payload ~tag:"mcf-pricing" ~dep:pot ~buf ~loads:10 ~fp_ops:28 ~stores:14 ()
    @ [ Alu (Isa.Sub, red, cost, Reg pot);
        Br (Isa.Ge, red, Imm 0, "skip");
        (* pivot path: update the node potential *)
        Alu (Isa.Add, pot, pot, Imm 1);
        St (pot, naddr, 0);
        Label "skip";
        Alu (Isa.Add, arc, arc, Imm 16);
        Br (Isa.Lt, arc, Reg arc_end, "loop");
        Li (arc, arcs_base);  (* wrap around and rescan the arc array *)
        Jmp "loop" ]
  in
  { Workload.name = "mcf";
    description = "network-simplex arc scan with irregular node-potential gathers";
    program = assemble ~name:"mcf" code;
    reg_init =
      [ (arc, arcs_base); (arc_end, arcs_base + (arc_count * 16)); (base, nodes_base);
        buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
