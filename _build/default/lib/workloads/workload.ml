type input =
  | Train
  | Ref

type t = {
  name : string;
  description : string;
  program : Program.t;
  reg_init : (Isa.reg * int) list;
  mem_init : (int, int) Hashtbl.t;
  max_instrs : int;
}

let trace t =
  Executor.run ~reg_init:t.reg_init ~mem_init:t.mem_init ~max_instrs:t.max_instrs
    t.program

let seed_of = function
  | Train -> 0x7261
  | Ref -> 0x52ef

let scale_of = function
  | Train -> 0.6
  | Ref -> 1.0
