(* Xhpcg proxy: CSR sparse matrix-vector multiplication.  Row pointers,
   column indices and matrix values all stream (prefetcher-covered); the
   gather x[col[j]] is irregular over a multi-MiB vector and its address
   flows through memory (the column index is itself loaded).  Short rows
   keep the natural MLP moderate, so the gather latency is exposed —
   exactly the pattern where a larger OOO window lets CRISP prioritise
   across more rows (paper Section 5.4). *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let x_count = int_of_float (260_000. *. scale) in
  let x_base = Mem_builder.alloc mb ~bytes:(x_count * 8) in
  for i = 0 to x_count - 1 do
    Mem_builder.write mb ~addr:(x_base + (i * 8)) ((i * 3) + 1)
  done;
  let nnz_per_row = 4 in
  let rows = max 512 (instrs / 88 * 11 / 10) in
  let nnz = rows * nnz_per_row in
  let cols_base = Mem_builder.alloc mb ~bytes:(nnz * 8) in
  let vals_base = Mem_builder.alloc mb ~bytes:(nnz * 8) in
  for j = 0 to nnz - 1 do
    Mem_builder.write mb ~addr:(cols_base + (j * 8)) (Prng.int rng x_count);
    Mem_builder.write mb ~addr:(vals_base + (j * 8)) (Prng.int rng 97)
  done;
  let y_base = Mem_builder.alloc mb ~bytes:(rows * 8) in
  (* next-row indirection: a random permutation chased through memory, the
     symGS-like ordering dependence that serialises row processing *)
  let rng_perm = Prng.create (Workload.seed_of input + 17) in
  let perm = Mem_builder.shuffled_indices rng_perm ~n:rows in
  let next_base = Mem_builder.alloc mb ~bytes:(rows * 64) in
  for r = 0 to rows - 1 do
    Mem_builder.write mb ~addr:(next_base + (perm.(r) * 64)) perm.((r + 1) mod rows)
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let row = 1 and j = 2 and j_end = 3 and col = 4 and t = 5 in
  let xaddr = 6 and xv = 7 and mv = 8 and acc = 9 in
  let xb = 10 and cb = 11 and vb = 12 and yb = 13 and yaddr = 14 and nb = 16 in
  let open Program in
  let code =
    [ Label "row_loop";
      Li (acc, 0);
      (* CSR row start: j = row * nnz_per_row * 8 *)
      Alu (Isa.Shl, j, row, Imm 5);
      Alu (Isa.Add, j_end, j, Imm (nnz_per_row * 8));
      Label "nnz_loop";
      Alu (Isa.Add, t, cb, Reg j);
      Ld (col, t, 0);  (* column index: streams *)
      Alu (Isa.Shl, xaddr, col, Imm 3);
      Alu (Isa.Add, xaddr, xaddr, Reg xb);
      Ld (xv, xaddr, 0);  (* delinquent gather x[col[j]] *)
      Alu (Isa.Add, t, vb, Reg j);
      Ld (mv, t, 0);  (* matrix value: streams *)
      Fmul (xv, xv, mv);
      Fadd (acc, acc, xv);
      Alu (Isa.Add, j, j, Imm 8);
      Br (Isa.Lt, j, Reg j_end, "nnz_loop");
      Alu (Isa.Shl, yaddr, row, Imm 3);
      Alu (Isa.Add, yaddr, yaddr, Reg yb);
      St (acc, yaddr, 0) ]
    (* smoother work consuming the row result *)
    @ Kernel_util.payload ~tag:"xhpcg-smoother" ~dep:acc ~buf ~loads:8 ~fp_ops:28
        ~stores:14 ()
    @ [ (* next row through the ordering permutation: a dependent load *)
      Alu (Isa.Shl, t, row, Imm 6);
      Alu (Isa.Add, t, t, Reg nb);
      Ld (row, t, 0);  (* delinquent: serialises the row order *)
      Alu (Isa.Mov, t, row, Imm 0);
      Br (Isa.Ne, row, Imm (-1), "row_loop");
      Halt ]
  in
  { Workload.name = "xhpcg";
    description = "CSR sparse matrix-vector multiply with irregular x gathers";
    program = assemble ~name:"xhpcg" code;
    reg_init =
      [ (row, perm.(0)); (j, 0); (xb, x_base); (cb, cols_base); (vb, vals_base);
        (yb, y_base); (nb, next_base); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
