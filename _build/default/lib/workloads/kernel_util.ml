let base_reg = 48
let temp0 = 49
let num_temps = 9

let payload_temps = List.init (num_temps + 1) (fun i -> base_reg + i)

let buf_reg = 58

let payload ?(stores = 0) ~tag ~dep ~buf ~loads ~fp_ops () =
  ignore tag;
  let open Program in
  (* The floating-point block depends directly on [dep], so the whole
     burst becomes ready in the cycle the value arrives — the wakeup burst
     an oldest-first picker drains before younger critical work. *)
  let fp k =
    let r = temp0 + (k mod num_temps) in
    if k land 1 = 0 then Fmul (r, dep, dep) else Fadd (r, dep, dep)
  in
  (* Address base inside the scratch buffer, also derived from [dep];
     the loads and stores keep the load/store ports busy just behind. *)
  let header =
    [ Alu (Isa.And, base_reg, dep, Imm 0xF8);
      Alu (Isa.Add, base_reg, base_reg, Reg buf) ]
  in
  let load k =
    Ld (temp0 + (k mod num_temps), base_reg, k * 8 mod 4096)
  in
  let store k =
    St (temp0 + (k mod num_temps), base_reg, (k * 8 mod 2048) + 2048)
  in
  List.init fp_ops fp @ header @ List.init loads load @ List.init stores store

let payload_length ?(stores = 0) ~loads ~fp_ops () = 2 + loads + fp_ops + stores

let scratch_buffer mb =
  let base = Mem_builder.alloc mb ~bytes:4096 in
  for i = 0 to 511 do
    Mem_builder.write mb ~addr:(base + (i * 8)) (i + 1)
  done;
  (buf_reg, (buf_reg, base))
