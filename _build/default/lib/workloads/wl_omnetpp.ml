(* omnetpp proxy: discrete-event simulation.  The future-event set is a
   pointer-linked search structure spread over a multi-MiB heap; each
   lookup descends several levels, choosing the child by comparing loaded
   timestamps.  The descent direction is data-dependent (hard branches)
   and every level is a dependent pointer load (delinquent), so load and
   branch slices compound. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let node_count = int_of_float (140_000. *. scale) in
  let heap = Mem_builder.alloc mb ~bytes:(node_count * 64) in
  let order = Mem_builder.shuffled_indices rng ~n:node_count in
  let addr_of i = heap + (order.(i) * 64) in
  for i = 0 to node_count - 1 do
    let addr = addr_of i in
    (* node: [key, left, right] with random children *)
    Mem_builder.write mb ~addr (Prng.int rng 1_000_000);
    Mem_builder.write mb ~addr:(addr + 8) (addr_of (Prng.int rng node_count));
    Mem_builder.write mb ~addr:(addr + 16) (addr_of (Prng.int rng node_count))
  done;
  let buf, buf_init = Kernel_util.scratch_buffer mb in
  let cur = 1 and key = 2 and target = 3 and lvl = 4 and acc = 5 and i = 6 in
  let root = 7 in
  let open Program in
  let code =
    [ Label "event";
      (* evolve the search key pseudo-randomly *)
      Mul (target, target, i);
      Alu (Isa.Xor, target, target, Imm 0x5bd1);
      Alu (Isa.Shr, target, target, Imm 2);
      Alu (Isa.And, target, target, Imm 0xFFFFF);
      (* the walk continues from the current node, roaming the whole heap *)
      Li (lvl, 0);
      Label "descend";
      Ld (key, cur, 0) ]  (* delinquent: node spread over the heap *)
    (* event bookkeeping consuming the timestamp: competes with the branch
       and the child-pointer loads *)
    @ Kernel_util.payload ~tag:"omnetpp-event" ~dep:key ~buf ~loads:6 ~fp_ops:22
        ~stores:12 ()
    @ [ Br (Isa.Lt, key, Reg target, "right");  (* hard: key is random *)
      Ld (cur, cur, 8);  (* left child pointer *)
      Jmp "cont";
      Label "right";
      Ld (cur, cur, 16);  (* right child pointer *)
      Label "cont";
      Alu (Isa.Add, acc, acc, Reg key);
      Alu (Isa.Add, lvl, lvl, Imm 1);
      Br (Isa.Lt, lvl, Imm 4, "descend");
      Alu (Isa.Add, i, i, Imm 2);
      Br (Isa.Lt, i, Imm 100_000_000, "event");
      Halt ]
  in
  ignore root;
  { Workload.name = "omnetpp";
    description = "event-set descent: dependent pointer loads steered by hard branches";
    program = assemble ~name:"omnetpp" code;
    reg_init =
      [ (cur, heap + (order.(0) * 64)); (target, 77); (i, 3); (acc, 0); buf_init ];
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
