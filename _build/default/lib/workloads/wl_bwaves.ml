(* bwaves proxy: blocked solver phase with many independent gathers in
   flight.  The loads have a high LLC MPKI but execute in phases of high
   memory-level parallelism, so their latency is already overlapped.  As
   the paper observes (Section 5.2), CRISP's software profile recognises
   the high MLP and declines to tag them, while IBDA's delinquent load
   table captures them and prioritises uselessly. *)

let make ?(input = Workload.Ref) ?(instrs = 240_000) () =
  let rng = Prng.create (Workload.seed_of input) in
  let scale = Workload.scale_of input in
  let mb = Mem_builder.create () in
  let field_count = int_of_float (200_000. *. scale) in
  let field = Mem_builder.alloc mb ~bytes:(field_count * 8) in
  for i = 0 to field_count - 1 do
    Mem_builder.write mb ~addr:(field + (i * 8)) ((i * 5) + 3)
  done;
  (* Eight independent linear-congruential index streams -> eight
     independent gathers per iteration. *)
  let seeds = Array.init 8 (fun _ -> Prng.int rng field_count) in
  let idx0 = 1 and t = 9 and addr = 10 and acc = 11 and n = 12 and i = 13 in
  let v = 14 in
  let open Program in
  let gather k =
    let idx = idx0 + k in
    [ Mul (t, idx, n);  (* idx = (idx * 29 + k') mod field_count, in registers *)
      Alu (Isa.Add, t, t, Imm ((k * 7919) + 13));
      Alu (Isa.Shr, idx, t, Imm 5);
      Alu (Isa.And, idx, idx, Imm 0x1FFFF);
      Alu (Isa.Shl, addr, idx, Imm 3);
      Alu (Isa.Add, addr, addr, Imm field);
      Ld (v, addr, 0);  (* independent gather: high MLP *)
      Fadd (acc, acc, v) ]
  in
  let code =
    [ Label "loop" ]
    @ List.concat_map gather [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    @ [ Alu (Isa.Add, i, i, Imm 1);
        Br (Isa.Lt, i, Imm 1_000_000, "loop");
        Halt ]
  in
  { Workload.name = "bwaves";
    description = "blocked solver with eight independent gather streams (high MLP)";
    program = assemble ~name:"bwaves" code;
    reg_init =
      ((n, 29) :: (acc, 1) :: (i, 0)
      :: List.init 8 (fun k -> (idx0 + k, seeds.(k))));
    mem_init = Mem_builder.table mb;
    max_instrs = instrs }
