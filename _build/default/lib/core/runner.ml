type variant =
  | Ooo
  | Crisp of Classifier.thresholds * Tagger.options
  | Ibda of Ibda.config

let crisp_default = Crisp (Classifier.default, Tagger.default_options)

type outcome = {
  stats : Cpu_stats.t;
  artifacts : Fdo.artifacts option;
}

let cache : (string, outcome) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let cache_key ~cfg ~eval_instrs ~train_instrs ~name variant =
  (* Every component is plain data, so a structural digest is a sound key. *)
  Digest.string (Marshal.to_string (cfg, eval_instrs, train_instrs, name, variant) [])

let run_variant ~cfg ~eval_instrs ~train_instrs ~name variant =
  let eval_workload = Catalog.make ~input:Workload.Ref ~instrs:eval_instrs name in
  let eval_trace = Workload.trace eval_workload in
  match variant with
  | Ooo ->
    let cfg = Cpu_config.with_policy Scheduler.Oldest_ready cfg in
    { stats = Cpu_core.run cfg eval_trace; artifacts = None }
  | Crisp (thresholds, options) ->
    let train_workload = Catalog.make ~input:Workload.Train ~instrs:train_instrs name in
    let artifacts =
      Fdo.analyze ~thresholds ~options ~mem_params:cfg.Cpu_config.mem train_workload
    in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let stats =
      Cpu_core.run ~criticality:(Fdo.criticality artifacts) cfg eval_trace
    in
    { stats; artifacts = Some artifacts }
  | Ibda ibda_cfg ->
    (* IBDA is hardware: it learns online while the evaluated input runs. *)
    let result = Ibda.analyze ~mem_params:cfg.Cpu_config.mem ibda_cfg eval_trace in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let stats =
      Cpu_core.run ~criticality:(Cpu_core.Dynamic_tags (Ibda.is_critical result)) cfg
        eval_trace
    in
    { stats; artifacts = None }

let evaluate ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ~name variant =
  let key = cache_key ~cfg ~eval_instrs ~train_instrs ~name variant in
  match Hashtbl.find_opt cache key with
  | Some outcome -> outcome
  | None ->
    let outcome = run_variant ~cfg ~eval_instrs ~train_instrs ~name variant in
    Hashtbl.add cache key outcome;
    outcome

let speedup_over_ooo ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ~name variant =
  let base = evaluate ~cfg ~eval_instrs ~train_instrs ~name Ooo in
  let v = evaluate ~cfg ~eval_instrs ~train_instrs ~name variant in
  Cpu_stats.ipc v.stats /. Cpu_stats.ipc base.stats
