(** Plain-text rendering of experiment results: aligned tables, percentage
    columns and ASCII bar charts, so `bench/main.exe` output reads like the
    paper's figures. *)

val print_table :
  title:string -> header:string list -> (string * float list) list -> unit
(** Aligned table with a label column and numeric columns (2 decimals). *)

val print_percent_table :
  title:string -> header:string list -> (string * float list) list -> unit
(** Like {!print_table} but values are printed as percentages with sign. *)

val print_bars : title:string -> (string * float) list -> unit
(** Horizontal ASCII bar chart (values >= 0 scaled to the maximum). *)

val print_series : title:string -> (int * float) array -> unit
(** A (x, y) series as a compact sparkline plus min/max annotations. *)

val geomean : float list -> float
(** Geometric mean; returns 1.0 for the empty list. *)

val mean : float list -> float
