(** The feedback-driven optimisation flow of Figure 5: execute the train
    input, profile it, classify delinquent loads and hard branches, extract
    and filter slices, and emit the criticality tag map that the
    binary-rewriting step would encode as instruction prefixes. *)

type artifacts = {
  train_trace : Executor.t;
  report : Profiler.report;
  classification : Classifier.result;
  tagging : Tagger.t;
}

val analyze :
  ?thresholds:Classifier.thresholds ->
  ?options:Tagger.options ->
  ?mem_params:Memory_system.params ->
  Workload.t ->
  artifacts
(** Run the full software pipeline on the given (train-input) workload. *)

val criticality : artifacts -> Cpu_core.criticality
(** The static tag map as scheduler input. *)
