lib/core/fdo.ml: Classifier Cpu_core Deps Executor Memory_system Profiler Tagger Workload
