lib/core/runner.mli: Classifier Cpu_config Cpu_stats Fdo Ibda Tagger
