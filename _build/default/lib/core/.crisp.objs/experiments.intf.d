lib/core/experiments.mli:
