lib/core/runner.ml: Catalog Classifier Cpu_config Cpu_core Cpu_stats Digest Fdo Hashtbl Ibda Marshal Scheduler Tagger Workload
