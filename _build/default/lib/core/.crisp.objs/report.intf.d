lib/core/report.mli:
