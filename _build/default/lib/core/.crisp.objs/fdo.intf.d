lib/core/fdo.mli: Classifier Cpu_core Executor Memory_system Profiler Tagger Workload
