type artifacts = {
  train_trace : Executor.t;
  report : Profiler.report;
  classification : Classifier.result;
  tagging : Tagger.t;
}

let analyze ?(thresholds = Classifier.default) ?(options = Tagger.default_options)
    ?(mem_params = Memory_system.skylake) workload =
  let train_trace = Workload.trace workload in
  let report = Profiler.profile ~mem_params train_trace in
  let classification = Classifier.classify report thresholds in
  let deps = Deps.compute train_trace in
  let tagging = Tagger.build ~options train_trace deps report classification in
  { train_trace; report; classification; tagging }

let criticality artifacts =
  Cpu_core.Static_tags (Tagger.is_critical artifacts.tagging)
