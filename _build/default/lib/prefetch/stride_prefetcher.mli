(** Per-PC stride prefetcher (reference baseline; the paper reports results
    with BOP and notes stride/GHB behaved similarly). *)

type t

val create : ?entries:int -> ?degree:int -> ?min_confidence:int -> unit -> t
(** [entries] must be a power of two (default 256). *)

val access : t -> pc:int -> addr:int -> int list
(** Observe a demand access; returns byte addresses to prefetch. *)

val issued : t -> int
