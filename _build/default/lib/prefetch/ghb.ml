type entry = {
  mutable pc : int;
  mutable addr : int;
  mutable prev : int;  (* GHB index of the previous entry for this pc, -1 *)
  mutable prev_stamp : int;  (* stamp the linked slot had, to detect reuse *)
}

type t = {
  ghb : entry array;
  stamps : int array;  (* stamp at which each slot was (re)written *)
  index : (int, int * int) Hashtbl.t;  (* pc hash -> (ghb slot, stamp) *)
  index_entries : int;
  degree : int;
  mutable head : int;
  mutable clock : int;
  mutable issued : int;
}

let create ?(ghb_entries = 256) ?(index_entries = 256) ?(degree = 2) () =
  { ghb =
      Array.init ghb_entries (fun _ -> { pc = -1; addr = 0; prev = -1; prev_stamp = -1 });
    stamps = Array.make ghb_entries (-1);
    index = Hashtbl.create index_entries;
    index_entries;
    degree;
    head = 0;
    clock = 0;
    issued = 0 }

(* Addresses of this pc's chain, most recent first, following links only
   while the linked slots have not been overwritten. *)
let chain_addresses t slot stamp limit =
  let rec go slot stamp acc n =
    if n = 0 || slot < 0 || t.stamps.(slot) <> stamp then List.rev acc
    else
      let e = t.ghb.(slot) in
      go e.prev e.prev_stamp (e.addr :: acc) (n - 1)
  in
  Array.of_list (go slot stamp [] limit)

let access t ~pc ~addr =
  let slot = t.head in
  t.head <- (t.head + 1) mod Array.length t.ghb;
  t.clock <- t.clock + 1;
  let prev_slot, prev_stamp =
    match Hashtbl.find_opt t.index (pc mod t.index_entries) with
    | Some (s, stamp) when t.stamps.(s) = stamp && t.ghb.(s).pc = pc -> (s, stamp)
    | Some _ | None -> (-1, -1)
  in
  let e = t.ghb.(slot) in
  e.pc <- pc;
  e.addr <- addr;
  e.prev <- prev_slot;
  e.prev_stamp <- prev_stamp;
  t.stamps.(slot) <- t.clock;
  Hashtbl.replace t.index (pc mod t.index_entries) (slot, t.clock);
  (* Delta correlation: deltas.(i) = a_i - a_{i+1}, newest first. *)
  let addrs = chain_addresses t slot t.clock 16 in
  let n = Array.length addrs in
  if n < 4 then []
  else begin
    let deltas = Array.init (n - 1) (fun i -> addrs.(i) - addrs.(i + 1)) in
    let d1 = deltas.(0) and d2 = deltas.(1) in
    if d1 = 0 then []
    else begin
      (* find an earlier occurrence of the (d2 then d1) sequence *)
      let match_pos = ref (-1) in
      (let i = ref 2 in
       while !match_pos < 0 && !i < Array.length deltas - 1 do
         if deltas.(!i) = d1 && deltas.(!i + 1) = d2 then match_pos := !i;
         incr i
       done);
      if !match_pos < 0 then []
      else begin
        (* what followed the earlier occurrence, chronologically:
           deltas at positions match_pos-1, match_pos-2, ... *)
        let base = ref addr in
        let prefetches = ref [] in
        let k = ref (!match_pos - 1) in
        let taken = ref 0 in
        while !taken < t.degree && !k >= 0 do
          base := !base + deltas.(!k);
          prefetches := !base :: !prefetches;
          decr k;
          incr taken
        done;
        let prefetches = List.rev !prefetches in
        t.issued <- t.issued + List.length prefetches;
        prefetches
      end
    end
  end

let issued t = t.issued
