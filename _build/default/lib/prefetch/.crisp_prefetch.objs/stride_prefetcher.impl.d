lib/prefetch/stride_prefetcher.ml: Array List
