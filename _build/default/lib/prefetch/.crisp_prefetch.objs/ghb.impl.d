lib/prefetch/ghb.ml: Array Hashtbl List
