lib/prefetch/bop.mli:
