lib/prefetch/stream_prefetcher.mli:
