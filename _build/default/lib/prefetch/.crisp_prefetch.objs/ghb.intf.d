lib/prefetch/ghb.mli:
