lib/prefetch/stride_prefetcher.mli:
