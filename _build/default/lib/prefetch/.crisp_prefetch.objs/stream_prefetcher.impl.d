lib/prefetch/stream_prefetcher.ml: Array List
