lib/prefetch/bop.ml: Array List
