type entry = {
  mutable tag : int;  (* -1 invalid *)
  mutable last_addr : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = {
  entries : entry array;
  mask : int;
  degree : int;
  min_confidence : int;
  mutable issued : int;
}

let create ?(entries = 256) ?(degree = 2) ?(min_confidence = 2) () =
  if entries land (entries - 1) <> 0 then
    invalid_arg "Stride_prefetcher.create: not a power of two";
  { entries =
      Array.init entries (fun _ ->
          { tag = -1; last_addr = 0; stride = 0; confidence = 0 });
    mask = entries - 1;
    degree;
    min_confidence;
    issued = 0 }

let access t ~pc ~addr =
  let e = t.entries.(pc land t.mask) in
  if e.tag <> pc then begin
    e.tag <- pc;
    e.last_addr <- addr;
    e.stride <- 0;
    e.confidence <- 0;
    []
  end
  else begin
    let stride = addr - e.last_addr in
    e.last_addr <- addr;
    if stride = 0 then []
    else begin
      if stride = e.stride then e.confidence <- min 3 (e.confidence + 1)
      else begin
        e.stride <- stride;
        e.confidence <- 1
      end;
      if e.confidence >= t.min_confidence then begin
        let addrs = List.init t.degree (fun k -> addr + (stride * (k + 1))) in
        t.issued <- t.issued + List.length addrs;
        addrs
      end
      else []
    end
  end

let issued t = t.issued
