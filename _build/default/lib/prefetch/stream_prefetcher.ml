type stream = {
  mutable last_line : int;
  mutable direction : int;  (* +1 / -1 / 0 unknown *)
  mutable confidence : int;
  mutable lru : int;
}

type t = {
  streams : stream array;
  degree : int;
  min_confidence : int;
  mutable clock : int;
  mutable issued : int;
}

let create ?(streams = 16) ?(degree = 4) ?(min_confidence = 2) () =
  { streams =
      Array.init streams (fun _ ->
          { last_line = min_int; direction = 0; confidence = 0; lru = 0 });
    degree;
    min_confidence;
    clock = 0;
    issued = 0 }

let access t ~line =
  t.clock <- t.clock + 1;
  let matching = ref None in
  Array.iter
    (fun s ->
      if !matching = None then begin
        let delta = line - s.last_line in
        if delta <> 0 && abs delta <= 2 then matching := Some (s, delta)
      end)
    t.streams;
  match !matching with
  | Some (s, delta) ->
    let dir = if delta > 0 then 1 else -1 in
    if s.direction = dir then s.confidence <- s.confidence + 1
    else begin
      s.direction <- dir;
      s.confidence <- 1
    end;
    s.last_line <- line;
    s.lru <- t.clock;
    if s.confidence >= t.min_confidence then begin
      let lines = List.init t.degree (fun k -> line + (dir * (k + 1))) in
      t.issued <- t.issued + List.length lines;
      lines
    end
    else []
  | None ->
    (* Allocate the LRU tracker for a potential new stream. *)
    let victim = ref t.streams.(0) in
    Array.iter (fun s -> if s.lru < !victim.lru then victim := s) t.streams;
    !victim.last_line <- line;
    !victim.direction <- 0;
    !victim.confidence <- 0;
    !victim.lru <- t.clock;
    []

let issued t = t.issued
