(** Global History Buffer prefetcher in PC/DC (delta correlation) mode
    (Nesbit & Smith, HPCA 2004) — the third data prefetcher the paper's
    evaluation experimented with alongside stride and BOP (Section 5.1).

    A circular global history buffer stores the most recent miss addresses;
    an index table links all entries of the same pc into a chain.  On each
    training access the last few deltas of the pc's chain are correlated
    against its earlier history: when the two most recent deltas reappear,
    the deltas that followed them historically are predicted to follow
    again. *)

type t

val create : ?ghb_entries:int -> ?index_entries:int -> ?degree:int -> unit -> t
(** Defaults: 256-entry GHB, 256-entry index table, degree 2. *)

val access : t -> pc:int -> addr:int -> int list
(** Train on a (miss) access and return the addresses to prefetch. *)

val issued : t -> int
