let bits_per_word = 63

type t = {
  bits : int;
  words : int array;
}

let create bits = { bits; words = Array.make ((bits + bits_per_word - 1) / bits_per_word) 0 }

let width t = t.bits

let check t i = if i < 0 || i >= t.bits then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_width a b = if a.bits <> b.bits then invalid_arg "Bitset: width mismatch"

let copy_into ~src ~dst =
  same_width src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let inter_into ~a ~b ~dst =
  same_width a b;
  same_width a dst;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land b.words.(i)
  done

let diff_into ~a ~b ~dst =
  same_width a b;
  same_width a dst;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land lnot b.words.(i)
  done

let inter_empty a b =
  same_width a b;
  let rec go i =
    i = Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* Number of trailing zeros of a single-bit word, by binary search. *)
let bit_index bit =
  let i = ref 0 in
  let b = ref bit in
  if !b land 0x7FFFFFFF = 0 then begin
    i := !i + 31;
    b := !b lsr 31
  end;
  if !b land 0xFFFF = 0 then begin
    i := !i + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then i := !i + 1;
  !i

let iter_set f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let bit = !w land - !w in
      f ((wi * bits_per_word) + bit_index bit);
      w := !w land lnot bit
    done
  done

let count t =
  let n = ref 0 in
  iter_set (fun _ -> incr n) t;
  !n

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let clear_bit_everywhere sets i =
  let wi = i / bits_per_word in
  let mask = lnot (1 lsl (i mod bits_per_word)) in
  Array.iter (fun s -> s.words.(wi) <- s.words.(wi) land mask) sets
