type stall_breakdown = {
  dram_load : int;
  llc_load : int;
  other_load : int;
  long_op : int;
  other : int;
}

type t = {
  cycles : int;
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  branch_mispredicts : int;
  btb_misses : int;
  ras_mispredicts : int;
  head_stalls : stall_breakdown;
  mlp_sum : float;
  mlp_cycles : int;
  critical_retired : int;
  mem : Memory_system.stats;
  upc_timeline : int array option;
}

let ipc t = if t.cycles = 0 then 0. else float_of_int t.retired /. float_of_int t.cycles

let upc = ipc

let per_ki value t =
  if t.retired = 0 then 0. else 1000. *. float_of_int value /. float_of_int t.retired

let mpki_llc t = per_ki t.mem.Memory_system.llc_misses t

let mpki_l1i t = per_ki t.mem.Memory_system.l1i_misses t

let mispredicts_per_ki t = per_ki t.branch_mispredicts t

let avg_mlp t = if t.mlp_cycles = 0 then 0. else t.mlp_sum /. float_of_int t.mlp_cycles

let smoothed_upc t ~window =
  match t.upc_timeline with
  | None -> invalid_arg "Cpu_stats.smoothed_upc: timeline not recorded"
  | Some timeline ->
    if window <= 0 then invalid_arg "Cpu_stats.smoothed_upc: window must be positive";
    let n = Array.length timeline in
    let points = (n + window - 1) / window in
    Array.init points (fun i ->
        let lo = i * window in
        let hi = min n (lo + window) in
        let sum = ref 0 in
        for c = lo to hi - 1 do
          sum := !sum + timeline.(c)
        done;
        (lo, float_of_int !sum /. float_of_int (hi - lo)))

let pp_summary fmt t =
  Format.fprintf fmt "cycles %d  retired %d  IPC %.3f@." t.cycles t.retired (ipc t);
  Format.fprintf fmt "LLC MPKI %.2f  L1I MPKI %.2f  br-mpki %.2f  avg MLP %.2f@."
    (mpki_llc t) (mpki_l1i t) (mispredicts_per_ki t) (avg_mlp t);
  Format.fprintf fmt
    "head stalls: dram %d  llc %d  load %d  long-op %d  other %d@."
    t.head_stalls.dram_load t.head_stalls.llc_load t.head_stalls.other_load
    t.head_stalls.long_op t.head_stalls.other
