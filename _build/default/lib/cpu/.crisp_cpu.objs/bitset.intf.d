lib/cpu/bitset.mli:
