lib/cpu/age_matrix.mli: Bitset
