lib/cpu/cpu_config.mli: Format Memory_system Scheduler
