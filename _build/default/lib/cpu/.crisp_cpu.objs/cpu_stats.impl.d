lib/cpu/cpu_stats.ml: Array Format Memory_system
