lib/cpu/scheduler.mli:
