lib/cpu/cpu_stats.mli: Format Memory_system
