lib/cpu/scheduler.ml: Age_matrix Array Bitset Prng
