lib/cpu/bitset.ml: Array
