lib/cpu/cpu_core.mli: Cpu_config Cpu_stats Executor Layout
