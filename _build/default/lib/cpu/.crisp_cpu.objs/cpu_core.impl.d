lib/cpu/cpu_core.ml: Array Btb Cpu_config Cpu_stats Executor Hashtbl Isa Layout List Memory_system Option Printf Queue Ras Scheduler Tage Vec
