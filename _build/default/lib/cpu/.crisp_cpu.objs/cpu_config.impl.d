lib/cpu/cpu_config.ml: Cache Format Memory_system Printf Scheduler
