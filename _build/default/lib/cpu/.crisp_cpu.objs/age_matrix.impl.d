lib/cpu/age_matrix.ml: Array Bitset
