(** Software profiling pass — the PMU / PEBS / LBR surrogate (paper Section
    3.2).

    The profiler replays a trace through a functional copy of the memory
    hierarchy (including the BOP and stream prefetchers, so loads the
    hardware prefetcher already covers do not look delinquent) and through
    the TAGE predictor.  It produces the per-load and per-branch statistics
    the criticality heuristics consume: execution counts, LLC miss ratios,
    address-delta regularity, memory-level parallelism around each load's
    misses, and branch misprediction rates. *)

type load_stats = {
  mutable execs : int;
  mutable l1_misses : int;
  mutable llc_misses : int;
  mutable regular_deltas : int;
      (** accesses whose address delta repeated the previous delta *)
  mutable mlp_sum : int;  (** summed outstanding-miss estimate at each LLC miss *)
  mutable last_addr : int;
  mutable prev_delta : int;
}

type branch_stats = {
  mutable b_execs : int;
  mutable b_mispredicts : int;
}

type report = {
  loads : (int, load_stats) Hashtbl.t;  (** per static pc *)
  branch_table : (int, branch_stats) Hashtbl.t;  (** per static pc *)
  long_ops : (int, int) Hashtbl.t;
      (** per-pc execution counts of long-latency arithmetic (integer and
          floating-point division) — the Section 6.1 extension targets *)
  pc_execs : int array;  (** execution count of every static pc *)
  total_instrs : int;
  total_loads : int;
  total_llc_misses : int;
  total_branches : int;
  total_mispredicts : int;
}

val profile : ?mem_params:Memory_system.params -> Executor.t -> report
(** Replay the trace; defaults to the Skylake hierarchy of Table 1. *)

val miss_ratio : load_stats -> float
(** LLC misses / executions. *)

val stride_ratio : load_stats -> float
(** Fraction of accesses with a repeated delta — high values mean the
    hardware prefetcher can cover the load. *)

val avg_mlp : load_stats -> float
(** Mean outstanding-miss estimate over this load's LLC misses; 0 when the
    load never missed. *)

val mispredict_ratio : branch_stats -> float

val amat_estimate : Memory_system.params -> load_stats -> int
(** Cycle-weight surrogate for this load in slice DAGs: DRAM-dominated
    loads weigh a full miss latency, LLC-dominated loads the LLC latency,
    cache-resident loads the L1 latency (paper Section 3.5: "for loads we
    utilize the AMAT in cycles"). *)
