(** Delinquent-load and hard-branch classification (paper Section 3.2).

    A load is flagged delinquent when it (a) contributes a meaningful share
    of the program's LLC misses, (b) misses often enough relative to its own
    executions, (c) is not covered by the hardware prefetcher (irregular
    address deltas), and (d) misses in low-MLP phases where its latency is
    exposed.  A branch is flagged hard when its misprediction rate exceeds a
    threshold (Section 3.4: > 15%).  Thresholds scale with the program's
    instruction mix, mirroring the paper's application-specific linear
    scaling. *)

type thresholds = {
  llc_miss_ratio_min : float;  (** per-load LLC miss ratio floor (0.20) *)
  exec_share_min : float;  (** share of all executed loads; 0 disables — the evaluation uses the
      miss-contribution knob T as the operative filter, as in Figure 10 *)
  mlp_max : float;  (** flag only loads missing in phases with MLP below this (5.0) *)
  stride_ratio_max : float;  (** drop loads the prefetcher covers (0.75) *)
  miss_contribution_min : float;
      (** share of the program's total LLC misses — the knob T of the
          Figure 10 sensitivity study (default 0.01) *)
  branch_mispredict_min : float;  (** 0.15 *)
  branch_exec_share_min : float;  (** share of all executed branches (0.01) *)
  mix_scaling : bool;  (** scale exec-share thresholds by instruction mix *)
  long_op_exec_share_min : float;
      (** flag division pcs above this share of all instructions — the
          Section 6.1 extension; 0 (the default) disables it *)
}

val default : thresholds

val with_miss_contribution : float -> thresholds -> thresholds

type result = {
  delinquent_loads : (int * Profiler.load_stats) list;
      (** sorted by descending LLC-miss contribution *)
  hard_branches : (int * Profiler.branch_stats) list;
      (** sorted by descending misprediction count *)
  long_ops : (int * int) list;
      (** division pcs flagged by the Section 6.1 extension, with
          execution counts *)
}

val classify : Profiler.report -> thresholds -> result
