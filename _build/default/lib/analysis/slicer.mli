(** Backward slice extraction from a dynamic trace (paper Section 3.3).

    Starting from each dynamic instance of a delinquent load (or hard
    branch), the slicer walks the trace in reverse program order along data
    dependencies — through registers {e and through memory} — maintaining a
    frontier of unexplored ancestors.  Expansion of an ancestor stops when
    its static pc is already in the slice (the recursive-dependency
    termination of Figure 3), when an operand has no producer in the trace,
    or when the start of the trace is reached.  Slices of multiple dynamic
    instances of the same root are merged, as the paper's tooling does. *)

type t = {
  root_pc : int;
  pcs : bool array;  (** static membership map, indexed by pc *)
  pc_list : int list;  (** members in increasing pc order, root included *)
  instances : int;  (** dynamic root instances analysed *)
  avg_dynamic_length : float;
      (** mean number of dynamic instructions per instance slice — the
          load slice size of Figure 4 *)
  edges : (int * int) list;  (** static dependency edges producer -> consumer *)
}

val extract :
  ?max_instances:int ->
  ?follow_memory:bool ->
  Executor.t ->
  Deps.t ->
  root_pc:int ->
  t
(** [max_instances] dynamic roots are sampled evenly over the trace
    (default 32).  [follow_memory] (default [true]) enables the
    dependency-through-memory edges that distinguish CRISP from IBDA;
    disable it for the ablation. *)

val size : t -> int
(** Number of static instructions in the merged slice. *)

val pp : Format.formatter -> t -> unit
