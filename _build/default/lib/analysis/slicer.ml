type t = {
  root_pc : int;
  pcs : bool array;
  pc_list : int list;
  instances : int;
  avg_dynamic_length : float;
  edges : (int * int) list;
}

(* Indices of dynamic instances of [pc], sampled evenly, at most [n]. *)
let sample_instances dyns pc n =
  let all = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i (d : Executor.dyn) ->
      if d.Executor.pc = pc then begin
        all := i :: !all;
        incr count
      end)
    dyns;
  let all = Array.of_list (List.rev !all) in
  let total = Array.length all in
  if total <= n then Array.to_list all
  else List.init n (fun k -> all.(k * total / n))

(* Walk one dynamic instance backward.  Per the paper an ancestor whose
   static pc is already in this instance's slice is not expanded further
   (recursive dependencies across loop iterations terminate).  Termination
   is per instance so every instance reports its full dynamic slice length;
   the static pcs of all instances are merged into [in_slice].  Returns the
   number of dynamic instructions visited. *)
let walk_instance dyns (deps : Deps.t) ~follow_memory ~in_slice ~edges root_idx =
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen dyns.(root_idx).Executor.pc ();
  let frontier = Stack.create () in
  Stack.push root_idx frontier;
  let visited = ref 0 in
  while not (Stack.is_empty frontier) do
    let i = Stack.pop frontier in
    incr visited;
    let consumer_pc = dyns.(i).Executor.pc in
    let explore p =
      if p >= 0 then begin
        let ppc = dyns.(p).Executor.pc in
        if not (Hashtbl.mem edges (ppc, consumer_pc)) then
          Hashtbl.add edges (ppc, consumer_pc) ();
        in_slice.(ppc) <- true;
        if not (Hashtbl.mem seen ppc) then begin
          Hashtbl.add seen ppc ();
          Stack.push p frontier
        end
      end
    in
    explore deps.Deps.prod1.(i);
    explore deps.Deps.prod2.(i);
    if follow_memory then explore deps.Deps.prod_mem.(i)
  done;
  !visited

let extract ?(max_instances = 32) ?(follow_memory = true) (trace : Executor.t)
    (deps : Deps.t) ~root_pc =
  let dyns = trace.Executor.dyns in
  let num_pcs = Array.length trace.Executor.prog.Program.code in
  if root_pc < 0 || root_pc >= num_pcs then invalid_arg "Slicer.extract: bad root pc";
  let in_slice = Array.make num_pcs false in
  in_slice.(root_pc) <- true;
  let edges = Hashtbl.create 64 in
  let roots = sample_instances dyns root_pc max_instances in
  let total_len = ref 0 in
  List.iter
    (fun root_idx ->
      total_len :=
        !total_len + walk_instance dyns deps ~follow_memory ~in_slice ~edges root_idx)
    roots;
  let instances = List.length roots in
  let pc_list = ref [] in
  for pc = num_pcs - 1 downto 0 do
    if in_slice.(pc) then pc_list := pc :: !pc_list
  done;
  { root_pc;
    pcs = in_slice;
    pc_list = !pc_list;
    instances;
    avg_dynamic_length =
      (if instances = 0 then 0. else float_of_int !total_len /. float_of_int instances);
    edges = Hashtbl.fold (fun e () acc -> e :: acc) edges [] }

let size t = List.length t.pc_list

let pp fmt t =
  Format.fprintf fmt "slice root pc %d: %d static instructions (%.1f dynamic avg over %d instances)@."
    t.root_pc (size t) t.avg_dynamic_length t.instances;
  Format.fprintf fmt "  pcs: %s@."
    (String.concat ", " (List.map string_of_int t.pc_list))
