(* Backward-collect one dynamic slice instance with per-instance static
   termination (as in the slicer) and record in-slice producer edges. *)
let collect dyns (deps : Deps.t) ~follow_memory root_idx =
  let seen_pc = Hashtbl.create 64 in
  Hashtbl.add seen_pc dyns.(root_idx).Executor.pc ();
  let producers = Hashtbl.create 64 in
  let nodes = ref [ root_idx ] in
  let frontier = Stack.create () in
  Stack.push root_idx frontier;
  while not (Stack.is_empty frontier) do
    let i = Stack.pop frontier in
    let prods = ref [] in
    let explore p =
      if p >= 0 then begin
        prods := p :: !prods;
        let ppc = dyns.(p).Executor.pc in
        if not (Hashtbl.mem seen_pc ppc) then begin
          Hashtbl.add seen_pc ppc ();
          nodes := p :: !nodes;
          Stack.push p frontier
        end
      end
    in
    explore deps.Deps.prod1.(i);
    explore deps.Deps.prod2.(i);
    if follow_memory then explore deps.Deps.prod_mem.(i);
    Hashtbl.replace producers i !prods
  done;
  (List.sort_uniq compare !nodes, producers)

(* Aggregated path latency through every node of one instance DAG:
   up = longest leaf-to-node path, down = longest node-to-root path;
   through = up + down - latency(node). *)
let through_scores dyns producers nodes ~latency_of ~root_idx =
  ignore dyns;
  let up = Hashtbl.create 64 in
  let down = Hashtbl.create 64 in
  let prods_of i = Option.value ~default:[] (Hashtbl.find_opt producers i) in
  (* Ascending dynamic order is a topological order (producers precede). *)
  List.iter
    (fun i ->
      let best =
        List.fold_left
          (fun acc p ->
            match Hashtbl.find_opt up p with
            | Some u -> max acc u
            | None -> acc)
          0 (prods_of i)
      in
      Hashtbl.replace up i (latency_of i + best))
    nodes;
  List.iter
    (fun i ->
      if not (Hashtbl.mem down i) then Hashtbl.replace down i (latency_of i))
    (List.rev nodes);
  List.iter
    (fun i ->
      let d = Hashtbl.find down i in
      List.iter
        (fun p ->
          let candidate = latency_of p + d in
          match Hashtbl.find_opt down p with
          | Some existing when existing >= candidate -> ()
          | Some _ | None -> Hashtbl.replace down p candidate)
        (prods_of i))
    (List.rev nodes);
  let through i = Hashtbl.find up i + Hashtbl.find down i - latency_of i in
  (through, Hashtbl.find up root_idx)

let sample_roots dyns pc n =
  let all = ref [] in
  Array.iteri
    (fun i (d : Executor.dyn) -> if d.Executor.pc = pc then all := i :: !all)
    dyns;
  let all = Array.of_list (List.rev !all) in
  let total = Array.length all in
  if total <= n then Array.to_list all
  else List.init n (fun k -> all.(k * total / n))

let filter ?(max_instances = 32) ?(follow_memory = true) ?(theta = 0.6)
    (trace : Executor.t) (deps : Deps.t) ~root_pc ~latency_of =
  let dyns = trace.Executor.dyns in
  let num_pcs = Array.length trace.Executor.prog.Program.code in
  let keep = Array.make num_pcs false in
  keep.(root_pc) <- true;
  List.iter
    (fun root_idx ->
      let nodes, producers = collect dyns deps ~follow_memory root_idx in
      let through, max_through =
        through_scores dyns producers nodes ~latency_of ~root_idx
      in
      let cutoff = theta *. float_of_int max_through in
      List.iter
        (fun i ->
          if float_of_int (through i) >= cutoff then keep.(dyns.(i).Executor.pc) <- true)
        nodes)
    (sample_roots dyns root_pc max_instances);
  keep

let longest_path ?(follow_memory = true) (trace : Executor.t) (deps : Deps.t)
    ~root_idx ~latency_of =
  let dyns = trace.Executor.dyns in
  let nodes, producers = collect dyns deps ~follow_memory root_idx in
  let _, max_through = through_scores dyns producers nodes ~latency_of ~root_idx in
  max_through
