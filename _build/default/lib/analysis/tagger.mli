(** Criticality tagging — the binary-rewriting step of the FDO flow
    (paper Sections 3.2–3.4 and Figure 5, steps 2–3).

    Builds load slices for every delinquent load and branch slices for
    every hard branch, applies critical-path filtering, merges them, and
    enforces the empirically determined guardrail that critical
    instructions should be 5%–40% of the dynamic stream: with too many
    critical instructions the scheduler has nothing to deprioritise, so the
    least-contributing slices are dropped until the ratio fits. *)

(** Tagging policy knobs. *)
type options = {
  use_load_slices : bool;
  use_branch_slices : bool;
  use_long_op_slices : bool;
      (** also prioritise frequent long-latency arithmetic (division) and
          its slices — the Section 6.1 extension; off by default *)
  critical_path_filter : bool;  (** promote only near-critical-path slice nodes *)
  theta : float;  (** critical-path cutoff fraction (0.6) *)
  follow_memory : bool;  (** observe dependencies through memory *)
  ratio_min : float;  (** 0.05 *)
  ratio_max : float;  (** 0.40 *)
  max_instances : int;  (** dynamic root instances sampled per slice *)
}

val default_options : options

val load_slices_only : options
val branch_slices_only : options

type slice_info = {
  root_pc : int;
  kind : [ `Load | `Branch | `Long_op ];
  contribution : int;  (** LLC misses (loads) or mispredictions (branches) *)
  static_size : int;  (** static instructions after filtering *)
  avg_dynamic_length : float;  (** unfiltered dynamic slice size (Figure 4) *)
  pcs : int list;
  dropped : bool;  (** removed by the ratio guardrail *)
}

type t = {
  critical : bool array;  (** final per-pc tag map (the instruction prefix) *)
  slices : slice_info list;
  static_count : int;  (** tagged static instructions (Figure 11) *)
  dynamic_ratio : float;  (** tagged share of the dynamic stream *)
}

val build :
  ?options:options ->
  Executor.t ->
  Deps.t ->
  Profiler.report ->
  Classifier.result ->
  t

val is_critical : t -> int -> bool
(** Whether static pc carries the prefix. *)

val avg_load_slice_size : t -> float
(** Mean unfiltered dynamic load-slice length over all delinquent loads
    (Figure 4); 0 when there are none. *)
