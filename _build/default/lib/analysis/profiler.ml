type load_stats = {
  mutable execs : int;
  mutable l1_misses : int;
  mutable llc_misses : int;
  mutable regular_deltas : int;
  mutable mlp_sum : int;
  mutable last_addr : int;
  mutable prev_delta : int;
}

type branch_stats = {
  mutable b_execs : int;
  mutable b_mispredicts : int;
}

type report = {
  loads : (int, load_stats) Hashtbl.t;
  branch_table : (int, branch_stats) Hashtbl.t;
  long_ops : (int, int) Hashtbl.t;
  pc_execs : int array;
  total_instrs : int;
  total_loads : int;
  total_llc_misses : int;
  total_branches : int;
  total_mispredicts : int;
}

(* Window (in dynamic instructions) for estimating how many other LLC
   misses are in flight around a given miss. *)
let mlp_window = 48

let load_entry loads pc =
  match Hashtbl.find_opt loads pc with
  | Some e -> e
  | None ->
    let e =
      { execs = 0; l1_misses = 0; llc_misses = 0; regular_deltas = 0; mlp_sum = 0;
        last_addr = min_int; prev_delta = min_int }
    in
    Hashtbl.add loads pc e;
    e

let branch_entry branches pc =
  match Hashtbl.find_opt branches pc with
  | Some e -> e
  | None ->
    let e = { b_execs = 0; b_mispredicts = 0 } in
    Hashtbl.add branches pc e;
    e

let profile ?(mem_params = Memory_system.skylake) (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let mem = Memory_system.create mem_params in
  let tage = Tage.create () in
  let loads = Hashtbl.create 64 in
  let branches = Hashtbl.create 64 in
  let long_ops = Hashtbl.create 16 in
  let pc_execs = Array.make (Array.length trace.Executor.prog.Program.code) 0 in
  let total_loads = ref 0 in
  let total_llc = ref 0 in
  let total_branches = ref 0 in
  let total_mispredicts = ref 0 in
  (* Dependence-aware MLP estimate.  Each value carries a "miss depth" —
     how many LLC misses its dataflow ancestry chains through — propagated
     across registers and memory.  Misses at the same depth within a short
     window are independent and overlap in an OOO core; misses at different
     depths are serialised and do not.  An out-of-order core can only
     overlap same-depth misses, so the MLP sample for a miss counts
     same-depth misses in the window (itself included). *)
  let reg_depth = Array.make Isa.num_regs 0 in
  let mem_depth = Hashtbl.create 1024 in
  (* Ring of recent LLC misses as (dyn index, depth). *)
  let recent_misses = Queue.create () in
  Array.iteri
    (fun i (d : Executor.dyn) ->
      pc_execs.(d.Executor.pc) <- pc_execs.(d.Executor.pc) + 1;
      let in_depth =
        let d1 = if d.Executor.src1 >= 0 then reg_depth.(d.Executor.src1) else 0 in
        let d2 = if d.Executor.src2 >= 0 then reg_depth.(d.Executor.src2) else 0 in
        max d1 d2
      in
      (match d.Executor.op with
      | Isa.Load ->
        incr total_loads;
        let e = load_entry loads d.Executor.pc in
        e.execs <- e.execs + 1;
        if e.last_addr <> min_int then begin
          let delta = d.Executor.addr - e.last_addr in
          if delta = e.prev_delta then e.regular_deltas <- e.regular_deltas + 1;
          e.prev_delta <- delta
        end;
        e.last_addr <- d.Executor.addr;
        let stored_depth =
          Option.value ~default:0 (Hashtbl.find_opt mem_depth d.Executor.addr)
        in
        let depth = max in_depth stored_depth in
        let out_depth =
          match Memory_system.load_functional mem ~addr:d.Executor.addr with
          | Memory_system.L1 -> depth
          | Memory_system.Llc ->
            e.l1_misses <- e.l1_misses + 1;
            depth
          | Memory_system.Mem ->
            e.l1_misses <- e.l1_misses + 1;
            e.llc_misses <- e.llc_misses + 1;
            incr total_llc;
            let depth = depth + 1 in
            while (not (Queue.is_empty recent_misses))
                  && fst (Queue.peek recent_misses) < i - mlp_window do
              ignore (Queue.pop recent_misses)
            done;
            Queue.push (i, depth) recent_misses;
            let same_depth =
              Queue.fold (fun n (_, dd) -> if dd = depth then n + 1 else n) 0
                recent_misses
            in
            e.mlp_sum <- e.mlp_sum + same_depth;
            depth
        in
        if d.Executor.dst >= 0 then reg_depth.(d.Executor.dst) <- out_depth
      | Isa.Store ->
        ignore (Memory_system.load_functional mem ~addr:d.Executor.addr);
        Hashtbl.replace mem_depth d.Executor.addr in_depth
      | Isa.Branch _ ->
        incr total_branches;
        let e = branch_entry branches d.Executor.pc in
        e.b_execs <- e.b_execs + 1;
        let predicted =
          Tage.predict_and_update tage ~pc:d.Executor.pc ~taken:d.Executor.taken
        in
        if predicted <> d.Executor.taken then begin
          e.b_mispredicts <- e.b_mispredicts + 1;
          incr total_mispredicts
        end
      | Isa.Div | Isa.Fp_div ->
        let count = Option.value ~default:0 (Hashtbl.find_opt long_ops d.Executor.pc) in
        Hashtbl.replace long_ops d.Executor.pc (count + 1);
        if d.Executor.dst >= 0 then reg_depth.(d.Executor.dst) <- in_depth
      | _ -> if d.Executor.dst >= 0 then reg_depth.(d.Executor.dst) <- in_depth))
    dyns;
  { loads;
    branch_table = branches;
    long_ops;
    pc_execs;
    total_instrs = Array.length dyns;
    total_loads = !total_loads;
    total_llc_misses = !total_llc;
    total_branches = !total_branches;
    total_mispredicts = !total_mispredicts }

let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let miss_ratio e = ratio e.llc_misses e.execs

let stride_ratio e = ratio e.regular_deltas (max 1 (e.execs - 1))

let avg_mlp e = if e.llc_misses = 0 then 0. else ratio e.mlp_sum e.llc_misses

let mispredict_ratio e = ratio e.b_mispredicts e.b_execs

let amat_estimate (p : Memory_system.params) e =
  let miss = miss_ratio e in
  let l1_miss = ratio e.l1_misses e.execs in
  if miss > 0.5 then
    p.Memory_system.llc_latency + Dram.typical_miss_latency p.Memory_system.dram
  else if l1_miss > 0.5 then p.Memory_system.llc_latency
  else p.Memory_system.l1d_latency
