(** Critical-path filtering of instruction slices (paper Section 3.5).

    A full load slice can exceed the reservation station, leaving the
    scheduler nothing to deprioritise, so CRISP promotes only the
    instructions on (or near) the critical path.  Each dynamic slice
    instance is a DAG rooted at the delinquent load; every node is weighted
    by its execution latency (loads by their AMAT estimate), the aggregated
    path latency through each node is computed, and only nodes whose best
    path reaches at least [theta] of the instance's longest path are kept.
    The kept static pcs of all instances are unioned. *)

val filter :
  ?max_instances:int ->
  ?follow_memory:bool ->
  ?theta:float ->
  Executor.t ->
  Deps.t ->
  root_pc:int ->
  latency_of:(int -> int) ->
  bool array
(** [filter trace deps ~root_pc ~latency_of] returns a static membership
    map (indexed by pc) of the critical-path-filtered slice.  [latency_of]
    maps a {e dynamic} instruction index to its latency weight.  [theta]
    defaults to 0.6; the root is always kept. *)

val longest_path :
  ?follow_memory:bool ->
  Executor.t ->
  Deps.t ->
  root_idx:int ->
  latency_of:(int -> int) ->
  int
(** Longest latency-weighted dependency path ending at the given dynamic
    root — exposed for tests and diagnostics. *)
