type thresholds = {
  llc_miss_ratio_min : float;
  exec_share_min : float;
  mlp_max : float;
  stride_ratio_max : float;
  miss_contribution_min : float;
  branch_mispredict_min : float;
  branch_exec_share_min : float;
  mix_scaling : bool;
  long_op_exec_share_min : float;
}

let default =
  { llc_miss_ratio_min = 0.20;
    exec_share_min = 0.0;
    mlp_max = 5.0;
    stride_ratio_max = 0.75;
    miss_contribution_min = 0.01;
    branch_mispredict_min = 0.15;
    branch_exec_share_min = 0.0;
    mix_scaling = true;
    long_op_exec_share_min = 0. }

let with_miss_contribution t thresholds = { thresholds with miss_contribution_min = t }

type result = {
  delinquent_loads : (int * Profiler.load_stats) list;
  hard_branches : (int * Profiler.branch_stats) list;
  long_ops : (int * int) list;
}

let clamp lo hi v = Float.max lo (Float.min hi v)

let classify (report : Profiler.report) thresholds =
  (* Scale the execution-share floor linearly with the instruction mix
     (paper Section 3.2): in a load-sparse program each hot load is a
     smaller fraction of all loads, so the floor drops proportionally. *)
  let load_fraction =
    if report.Profiler.total_instrs = 0 then 0.25
    else
      float_of_int report.Profiler.total_loads
      /. float_of_int report.Profiler.total_instrs
  in
  let exec_share_min =
    if thresholds.mix_scaling && thresholds.exec_share_min > 0. then
      clamp 0.005 0.2 (thresholds.exec_share_min *. (load_fraction /. 0.25))
    else thresholds.exec_share_min
  in
  let total_loads = max 1 report.Profiler.total_loads in
  let total_misses = max 1 report.Profiler.total_llc_misses in
  let total_branches = max 1 report.Profiler.total_branches in
  let loads =
    Hashtbl.fold
      (fun pc (e : Profiler.load_stats) acc ->
        let exec_share = float_of_int e.Profiler.execs /. float_of_int total_loads in
        let miss_contribution =
          float_of_int e.Profiler.llc_misses /. float_of_int total_misses
        in
        let delinquent =
          miss_contribution >= thresholds.miss_contribution_min
          && Profiler.miss_ratio e >= thresholds.llc_miss_ratio_min
          && exec_share >= exec_share_min
          && Profiler.stride_ratio e <= thresholds.stride_ratio_max
          && (e.Profiler.llc_misses = 0 || Profiler.avg_mlp e <= thresholds.mlp_max)
        in
        if delinquent then (pc, e) :: acc else acc)
      report.Profiler.loads []
  in
  let loads =
    List.sort
      (fun (_, a) (_, b) -> compare b.Profiler.llc_misses a.Profiler.llc_misses)
      loads
  in
  let branches =
    Hashtbl.fold
      (fun pc (e : Profiler.branch_stats) acc ->
        let exec_share =
          float_of_int e.Profiler.b_execs /. float_of_int total_branches
        in
        if
          Profiler.mispredict_ratio e >= thresholds.branch_mispredict_min
          && exec_share >= thresholds.branch_exec_share_min
        then (pc, e) :: acc
        else acc)
      report.Profiler.branch_table []
  in
  let branches =
    List.sort
      (fun (_, a) (_, b) -> compare b.Profiler.b_mispredicts a.Profiler.b_mispredicts)
      branches
  in
  let long_ops =
    if thresholds.long_op_exec_share_min <= 0. then []
    else begin
      let total = max 1 report.Profiler.total_instrs in
      Hashtbl.fold
        (fun pc execs acc ->
          if float_of_int execs /. float_of_int total
             >= thresholds.long_op_exec_share_min
          then (pc, execs) :: acc
          else acc)
        report.Profiler.long_ops []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    end
  in
  { delinquent_loads = loads; hard_branches = branches; long_ops }
