(** IBDA — iterative backward dependency analysis, the hardware-only
    baseline CRISP is compared against (paper Sections 2, 3.5 and 5.2,
    after the Load Slice Architecture of Carlson et al.).

    IBDA learns slices online: a 32-entry delinquent load table (DLT)
    captures the loads missing the LLC most often; an instruction slice
    table (IST) accumulates address-generating instructions one backward
    level per execution, by inserting the {e register} producers of any
    marked instruction.  Its published limitations are modelled directly:

    - dependencies through memory are invisible (register producers only),
    - the IST has finite, set-associative capacity (1K/8K/64K entries),
    - there is no critical-path analysis, so whole slices are promoted,
    - there is no per-load miss-rate profile beyond the DLT counters.

    The output is a per-{e dynamic}-instruction criticality bitmap: a
    micro-op is tagged when, at the moment it is fetched, its pc is in the
    IST or in the DLT. *)

type config = {
  ist_entries : int;  (** 0 = unbounded (the paper's "infinite IST") *)
  ist_assoc : int;
  dlt_entries : int;  (** 32 in the paper *)
}

val ist_1k : config
val ist_8k : config
val ist_64k : config
val ist_infinite : config

type result = {
  critical : Bytes.t;  (** one byte per dynamic instruction; 1 = tagged *)
  tagged_dynamic : int;
  tagged_static : int;  (** distinct pcs ever tagged *)
  ist_insertions : int;
  ist_evictions : int;
}

val analyze : ?mem_params:Memory_system.params -> config -> Executor.t -> result

val is_critical : result -> int -> bool
(** Criticality of dynamic instruction [i]. *)
