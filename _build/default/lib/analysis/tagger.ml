type options = {
  use_load_slices : bool;
  use_branch_slices : bool;
  use_long_op_slices : bool;
  critical_path_filter : bool;
  theta : float;
  follow_memory : bool;
  ratio_min : float;
  ratio_max : float;
  max_instances : int;
}

let default_options =
  { use_load_slices = true;
    use_branch_slices = true;
    use_long_op_slices = false;
    critical_path_filter = true;
    theta = 0.6;
    follow_memory = true;
    ratio_min = 0.05;
    ratio_max = 0.40;
    max_instances = 32 }

let load_slices_only = { default_options with use_branch_slices = false }
let branch_slices_only = { default_options with use_load_slices = false }

type slice_info = {
  root_pc : int;
  kind : [ `Load | `Branch | `Long_op ];
  contribution : int;
  static_size : int;
  avg_dynamic_length : float;
  pcs : int list;
  dropped : bool;
}

type t = {
  critical : bool array;
  slices : slice_info list;
  static_count : int;
  dynamic_ratio : float;
}

(* Latency weight of a dynamic instruction for critical-path analysis:
   fixed latencies from the instruction tables, AMAT for loads. *)
let latency_of_dyn (report : Profiler.report) mem_params dyns i =
  let d : Executor.dyn = dyns.(i) in
  match d.Executor.op with
  | Isa.Load -> begin
    match Hashtbl.find_opt report.Profiler.loads d.Executor.pc with
    | Some stats -> Profiler.amat_estimate mem_params stats
    | None -> Isa.exec_latency Isa.Load
  end
  | op -> Isa.exec_latency op

let build_slice options trace deps report mem_params ~root_pc ~kind ~contribution =
  let full =
    Slicer.extract ~max_instances:options.max_instances
      ~follow_memory:options.follow_memory trace deps ~root_pc
  in
  let kept_pcs =
    if options.critical_path_filter then begin
      let dyns = trace.Executor.dyns in
      let latency_of = latency_of_dyn report mem_params dyns in
      let keep =
        Critical_path.filter ~max_instances:options.max_instances
          ~follow_memory:options.follow_memory ~theta:options.theta trace deps
          ~root_pc ~latency_of
      in
      List.filter (fun pc -> keep.(pc)) full.Slicer.pc_list
    end
    else full.Slicer.pc_list
  in
  { root_pc;
    kind;
    contribution;
    static_size = List.length kept_pcs;
    avg_dynamic_length = full.Slicer.avg_dynamic_length;
    pcs = kept_pcs;
    dropped = false }

let dynamic_ratio_of (report : Profiler.report) critical =
  let tagged = ref 0 in
  Array.iteri (fun pc execs -> if critical.(pc) then tagged := !tagged + execs)
    report.Profiler.pc_execs;
  if report.Profiler.total_instrs = 0 then 0.
  else float_of_int !tagged /. float_of_int report.Profiler.total_instrs

let build ?(options = default_options) (trace : Executor.t) (deps : Deps.t)
    (report : Profiler.report) (classification : Classifier.result) =
  let mem_params = Memory_system.skylake in
  let num_pcs = Array.length trace.Executor.prog.Program.code in
  let slices = ref [] in
  if options.use_load_slices then
    List.iter
      (fun (pc, (stats : Profiler.load_stats)) ->
        slices :=
          build_slice options trace deps report mem_params ~root_pc:pc ~kind:`Load
            ~contribution:stats.Profiler.llc_misses
          :: !slices)
      classification.Classifier.delinquent_loads;
  if options.use_branch_slices then
    List.iter
      (fun (pc, (stats : Profiler.branch_stats)) ->
        slices :=
          build_slice options trace deps report mem_params ~root_pc:pc ~kind:`Branch
            ~contribution:stats.Profiler.b_mispredicts
          :: !slices)
      classification.Classifier.hard_branches;
  if options.use_long_op_slices then
    List.iter
      (fun (pc, execs) ->
        slices :=
          build_slice options trace deps report mem_params ~root_pc:pc ~kind:`Long_op
            ~contribution:execs
          :: !slices)
      classification.Classifier.long_ops;
  (* Keep the highest-contribution slices first when enforcing the dynamic
     ratio guardrail. *)
  let ordered =
    List.sort (fun a b -> compare b.contribution a.contribution) !slices
  in
  let critical = Array.make num_pcs false in
  let apply slice = List.iter (fun pc -> critical.(pc) <- true) slice.pcs in
  let rec admit acc = function
    | [] -> List.rev acc
    | slice :: rest ->
      apply slice;
      let ratio = dynamic_ratio_of report critical in
      if ratio > options.ratio_max then begin
        (* Revert this slice to keep critical instructions a minority the
           scheduler can actually prioritise (Section 3.2's 5-40% rule);
           pcs shared with admitted slices stay tagged, and the delinquent
           root itself keeps its prefix. *)
        List.iter
          (fun pc ->
            let shared =
              List.exists (fun s -> (not s.dropped) && List.mem pc s.pcs) acc
            in
            if (not shared) && pc <> slice.root_pc then critical.(pc) <- false)
          slice.pcs;
        admit ({ slice with dropped = true } :: acc) rest
      end
      else admit (slice :: acc) rest
  in
  let final_slices = admit [] ordered in
  let static_count = Array.fold_left (fun n c -> if c then n + 1 else n) 0 critical in
  { critical;
    slices = final_slices;
    static_count;
    dynamic_ratio = dynamic_ratio_of report critical }

let is_critical t pc = pc >= 0 && pc < Array.length t.critical && t.critical.(pc)

let avg_load_slice_size t =
  let sizes =
    List.filter_map
      (fun s -> if s.kind = `Load then Some s.avg_dynamic_length else None)
      t.slices
  in
  match sizes with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. sizes /. float_of_int (List.length sizes)
