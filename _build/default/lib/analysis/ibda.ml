type config = {
  ist_entries : int;
  ist_assoc : int;
  dlt_entries : int;
}

let ist_1k = { ist_entries = 1024; ist_assoc = 4; dlt_entries = 32 }
let ist_8k = { ist_entries = 8192; ist_assoc = 8; dlt_entries = 32 }
let ist_64k = { ist_entries = 65536; ist_assoc = 16; dlt_entries = 32 }
let ist_infinite = { ist_entries = 0; ist_assoc = 1; dlt_entries = 32 }

type result = {
  critical : Bytes.t;
  tagged_dynamic : int;
  tagged_static : int;
  ist_insertions : int;
  ist_evictions : int;
}

(* Set-associative IST of pcs with LRU replacement; entries = 0 means
   unbounded (backed by a plain hash table). *)
module Ist = struct
  type t = {
    bounded : bool;
    sets : int;
    assoc : int;
    tags : int array;
    lru : int array;
    unbounded : (int, unit) Hashtbl.t;
    mutable clock : int;
    mutable insertions : int;
    mutable evictions : int;
  }

  let create (cfg : config) =
    let bounded = cfg.ist_entries > 0 in
    let sets = if bounded then max 1 (cfg.ist_entries / cfg.ist_assoc) else 1 in
    { bounded;
      sets;
      assoc = cfg.ist_assoc;
      tags = Array.make (if bounded then sets * cfg.ist_assoc else 1) (-1);
      lru = Array.make (if bounded then sets * cfg.ist_assoc else 1) 0;
      unbounded = Hashtbl.create 1024;
      clock = 0;
      insertions = 0;
      evictions = 0 }

  let mem t pc =
    if not t.bounded then Hashtbl.mem t.unbounded pc
    else begin
      let base = pc mod t.sets * t.assoc in
      let rec go i =
        if i = t.assoc then false
        else if t.tags.(base + i) = pc then begin
          t.clock <- t.clock + 1;
          t.lru.(base + i) <- t.clock;
          true
        end
        else go (i + 1)
      in
      go 0
    end

  let insert t pc =
    if not t.bounded then begin
      if not (Hashtbl.mem t.unbounded pc) then begin
        Hashtbl.add t.unbounded pc ();
        t.insertions <- t.insertions + 1
      end
    end
    else begin
      let base = pc mod t.sets * t.assoc in
      let existing = ref (-1) in
      for i = 0 to t.assoc - 1 do
        if t.tags.(base + i) = pc then existing := base + i
      done;
      t.clock <- t.clock + 1;
      if !existing >= 0 then t.lru.(!existing) <- t.clock
      else begin
        let victim = ref base in
        for i = 1 to t.assoc - 1 do
          if t.lru.(base + i) < t.lru.(!victim) then victim := base + i
        done;
        if t.tags.(!victim) >= 0 then t.evictions <- t.evictions + 1;
        t.tags.(!victim) <- pc;
        t.lru.(!victim) <- t.clock;
        t.insertions <- t.insertions + 1
      end
    end
end

(* Delinquent load table: [entries] slots of (pc, miss count); a new
   LLC-missing pc replaces the slot with the lowest count. *)
module Dlt = struct
  type t = {
    pcs : int array;
    counts : int array;
  }

  let create entries = { pcs = Array.make entries (-1); counts = Array.make entries 0 }

  let mem t pc = Array.exists (fun p -> p = pc) t.pcs

  let record_miss t pc =
    let slot = ref (-1) in
    Array.iteri (fun i p -> if p = pc then slot := i) t.pcs;
    if !slot >= 0 then t.counts.(!slot) <- t.counts.(!slot) + 1
    else begin
      let victim = ref 0 in
      Array.iteri (fun i c -> if c < t.counts.(!victim) then victim := i) t.counts;
      (* Replace only a colder entry, so hot loads are sticky. *)
      if t.pcs.(!victim) = -1 || t.counts.(!victim) = 0 then begin
        t.pcs.(!victim) <- pc;
        t.counts.(!victim) <- 1
      end
      else t.counts.(!victim) <- t.counts.(!victim) - 1
    end
end

let analyze ?(mem_params = Memory_system.skylake) cfg (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let mem = Memory_system.create mem_params in
  let ist = Ist.create cfg in
  let dlt = Dlt.create cfg.dlt_entries in
  let critical = Bytes.make n '\000' in
  (* Register dependence table: architectural register -> pc of the most
     recent producer, exactly what the hardware RDT tracks. *)
  let rdt = Array.make Isa.num_regs (-1) in
  let tagged_dynamic = ref 0 in
  let tagged_static = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let d = dyns.(i) in
    let pc = d.Executor.pc in
    (* Online DLT training from the cache hierarchy. *)
    (match d.Executor.op with
    | Isa.Load ->
      (match Memory_system.load_functional mem ~addr:d.Executor.addr with
      | Memory_system.Mem -> Dlt.record_miss dlt pc
      | Memory_system.L1 | Memory_system.Llc -> ())
    | Isa.Store -> ignore (Memory_system.load_functional mem ~addr:d.Executor.addr)
    | _ -> ());
    let marked = Ist.mem ist pc || (d.Executor.op = Isa.Load && Dlt.mem dlt pc) in
    if marked then begin
      Bytes.set critical i '\001';
      incr tagged_dynamic;
      if not (Hashtbl.mem tagged_static pc) then Hashtbl.add tagged_static pc ();
      (* One backward level per execution: insert the register producers.
         Dependencies through memory are invisible to the hardware. *)
      if d.Executor.src1 >= 0 && rdt.(d.Executor.src1) >= 0 then
        Ist.insert ist rdt.(d.Executor.src1);
      if d.Executor.src2 >= 0 && rdt.(d.Executor.src2) >= 0 then
        Ist.insert ist rdt.(d.Executor.src2)
    end;
    if d.Executor.dst >= 0 then rdt.(d.Executor.dst) <- pc
  done;
  { critical;
    tagged_dynamic = !tagged_dynamic;
    tagged_static = Hashtbl.length tagged_static;
    ist_insertions = ist.Ist.insertions;
    ist_evictions = ist.Ist.evictions }

let is_critical result i = Bytes.get result.critical i <> '\000'
