lib/analysis/classifier.ml: Float Hashtbl List Profiler
