lib/analysis/ibda.ml: Array Bytes Executor Hashtbl Isa Memory_system
