lib/analysis/profiler.ml: Array Dram Executor Hashtbl Isa Memory_system Option Program Queue Tage
