lib/analysis/critical_path.mli: Deps Executor
