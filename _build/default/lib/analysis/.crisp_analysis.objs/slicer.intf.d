lib/analysis/slicer.mli: Deps Executor Format
