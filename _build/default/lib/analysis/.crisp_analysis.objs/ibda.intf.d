lib/analysis/ibda.mli: Bytes Executor Memory_system
