lib/analysis/tagger.mli: Classifier Deps Executor Profiler
