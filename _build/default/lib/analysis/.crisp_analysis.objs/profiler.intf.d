lib/analysis/profiler.mli: Executor Hashtbl Memory_system
