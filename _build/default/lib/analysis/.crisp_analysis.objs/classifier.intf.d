lib/analysis/classifier.mli: Profiler
