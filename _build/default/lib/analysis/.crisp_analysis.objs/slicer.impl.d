lib/analysis/slicer.ml: Array Deps Executor Format Hashtbl List Program Stack String
