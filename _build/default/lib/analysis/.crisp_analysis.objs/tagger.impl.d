lib/analysis/tagger.ml: Array Classifier Critical_path Deps Executor Hashtbl Isa List Memory_system Profiler Program Slicer
