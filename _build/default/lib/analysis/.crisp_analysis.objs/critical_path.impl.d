lib/analysis/critical_path.ml: Array Deps Executor Hashtbl List Option Program Stack
