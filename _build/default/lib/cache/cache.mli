(** Set-associative cache with true-LRU replacement.

    The cache tracks line residency only (no data); timing and miss
    handling live in the composing memory system.  Each line carries a
    [prefetched] bit so prefetcher coverage and accuracy can be measured. *)

type t

type params = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;  (** power of two *)
}

val create : name:string -> params -> t

val name : t -> string
val params : t -> params

val line_of : t -> int -> int
(** Line index (address with the offset bits dropped). *)

val probe : t -> addr:int -> bool
(** Residency check without any state change. *)

val access : t -> addr:int -> bool
(** Demand access: returns [true] on hit (refreshing LRU).  On miss the
    line is allocated immediately, evicting the LRU way.  Returns [false].
    The caller accounts the fill latency. *)

val access_info : t -> addr:int -> [ `Hit | `Hit_prefetched | `Miss ]
(** Like {!access} but reports whether the hit line was brought in by a
    prefetch (the prefetched bit is cleared by the first demand hit). *)

val fill_prefetch : t -> addr:int -> unit
(** Install a line on behalf of a prefetcher; no-op if already resident. *)

val invalidate : t -> addr:int -> unit

val hits : t -> int
val misses : t -> int
val prefetch_fills : t -> int
val prefetch_hits : t -> int
(** Demand hits on prefetched lines (prefetcher coverage numerator). *)

val reset_stats : t -> unit
