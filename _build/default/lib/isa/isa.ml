type reg = int

let num_regs = 64

type alu_kind =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Mov

type cond =
  | Eq
  | Ne
  | Lt
  | Ge
  | Le
  | Gt

type op =
  | Alu of alu_kind
  | Li
  | Mul
  | Div
  | Fp_add
  | Fp_mul
  | Fp_div
  | Load
  | Store
  | Prefetch
  | Branch of cond
  | Jump
  | Call
  | Ret
  | Nop
  | Halt

type fu_class =
  | Fu_alu
  | Fu_load
  | Fu_store

let fu_of_op = function
  | Load | Prefetch -> Fu_load
  | Store -> Fu_store
  | Alu _ | Li | Mul | Div | Fp_add | Fp_mul | Fp_div | Branch _ | Jump | Call
  | Ret | Nop | Halt ->
    Fu_alu

(* Latencies follow common Skylake instruction tables (Fog; uops.info):
   simple integer ops are single-cycle, multiplies take 4 cycles, integer
   division ~24, FP add/mul 4, FP division 16. *)
let exec_latency = function
  | Alu _ | Li | Nop | Halt -> 1
  | Mul -> 4
  | Div -> 24
  | Fp_add -> 4
  | Fp_mul -> 4
  | Fp_div -> 16
  | Load | Prefetch -> 1
  | Store -> 1
  | Branch _ | Jump | Call | Ret -> 1

(* x86-like encoded sizes: short branches are two bytes, reg-reg ALU three,
   memory operations four (ModRM + displacement), FP/SSE five. *)
let byte_size = function
  | Nop | Halt -> 1
  | Branch _ | Jump -> 2
  | Alu _ -> 3
  | Li | Mul -> 4
  | Div -> 4
  | Fp_add | Fp_mul | Fp_div -> 5
  | Load | Store | Prefetch -> 4
  | Call -> 5
  | Ret -> 1

let prefix_bytes = 1

let is_branch = function
  | Branch _ | Jump | Call | Ret -> true
  | Alu _ | Li | Mul | Div | Fp_add | Fp_mul | Fp_div | Load | Store
  | Prefetch | Nop | Halt ->
    false

let is_conditional = function
  | Branch _ -> true
  | Alu _ | Li | Mul | Div | Fp_add | Fp_mul | Fp_div | Load | Store
  | Prefetch | Jump | Call | Ret | Nop | Halt ->
    false

let is_mem = function
  | Load | Store | Prefetch -> true
  | Alu _ | Li | Mul | Div | Fp_add | Fp_mul | Fp_div | Branch _ | Jump | Call
  | Ret | Nop | Halt ->
    false

let writes_reg = function
  | Alu _ | Li | Mul | Div | Fp_add | Fp_mul | Fp_div | Load -> true
  | Store | Prefetch | Branch _ | Jump | Call | Ret | Nop | Halt -> false

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Mov -> "mov"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Le -> "le"
  | Gt -> "gt"

let op_name = function
  | Alu k -> alu_name k
  | Li -> "li"
  | Mul -> "mul"
  | Div -> "div"
  | Fp_add -> "fadd"
  | Fp_mul -> "fmul"
  | Fp_div -> "fdiv"
  | Load -> "ld"
  | Store -> "st"
  | Prefetch -> "prefetch"
  | Branch c -> "b" ^ cond_name c
  | Jump -> "jmp"
  | Call -> "call"
  | Ret -> "ret"
  | Nop -> "nop"
  | Halt -> "halt"

let pp_op fmt op = Format.pp_print_string fmt (op_name op)
