(** Micro-op instruction set of the simulated machine.

    The simulator executes a small RISC-like micro-op ISA.  Each micro-op
    carries at most one destination register, up to two source registers and,
    for memory operations, one effective address.  Opcode classes map onto
    the functional units of the modeled core (Table 1 of the paper: 4 ALU,
    2 load, 1 store port) and onto x86-like instruction byte sizes so that
    the CRISP one-byte criticality prefix has a measurable code-footprint
    cost (paper, Section 5.7). *)

type reg = int
(** Architectural register index, [0 .. num_regs - 1]. *)

val num_regs : int
(** Number of architectural integer registers (64). *)

(** Integer ALU operation kinds.  All execute in one cycle. *)
type alu_kind =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Mov

(** Branch conditions, comparing two source registers. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Ge
  | Le
  | Gt

(** Micro-op opcodes. *)
type op =
  | Alu of alu_kind  (** one-cycle integer operation *)
  | Li  (** load-immediate; one-cycle, no register sources *)
  | Mul  (** integer multiply *)
  | Div  (** integer divide; long latency, a CRISP target (Section 6.1) *)
  | Fp_add  (** floating-point add/sub *)
  | Fp_mul  (** floating-point multiply *)
  | Fp_div  (** floating-point divide; long latency *)
  | Load  (** memory load; latency set by the cache hierarchy *)
  | Store  (** memory store; address/data generation costs one cycle *)
  | Prefetch  (** software prefetch: a load with no destination register *)
  | Branch of cond  (** conditional direct branch *)
  | Jump  (** unconditional direct branch *)
  | Call  (** direct call; pushes the return address on the RAS *)
  | Ret  (** return; pops the RAS *)
  | Nop
  | Halt  (** terminates the program *)

(** Functional-unit classes; port counts come from the core configuration. *)
type fu_class =
  | Fu_alu
  | Fu_load
  | Fu_store

val fu_of_op : op -> fu_class
(** Functional unit executing the given opcode.  Branches, jumps and all
    arithmetic use the ALU ports; loads and software prefetches use load
    ports; stores use the store port. *)

val exec_latency : op -> int
(** Fixed execution latency in cycles, per the processor implementation
    (paper Section 3.5 assigns fixed latencies from instruction tables).
    For [Load]/[Prefetch] this is the address-generation cost only; the
    memory-access time is added by the memory system. *)

val byte_size : op -> int
(** Static code size of the encoded instruction in bytes, x86-like.  The
    CRISP criticality prefix adds {!prefix_bytes} on top of this. *)

val prefix_bytes : int
(** Size of the CRISP 'critical' instruction prefix: one byte. *)

val is_branch : op -> bool
(** Whether the opcode redirects control flow (conditional branch, jump,
    call or return). *)

val is_conditional : op -> bool
(** Whether the opcode is a conditional branch. *)

val is_mem : op -> bool
(** Whether the opcode accesses memory ([Load], [Store] or [Prefetch]). *)

val writes_reg : op -> bool
(** Whether the opcode produces a register result. *)

val pp_op : Format.formatter -> op -> unit
(** Pretty-print an opcode mnemonic. *)

val op_name : op -> string
(** Mnemonic of an opcode, e.g. ["add"], ["ld"], ["beq"]. *)
