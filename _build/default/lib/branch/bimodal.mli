(** Bimodal branch predictor: a table of 2-bit saturating counters indexed
    by pc.  Serves as the base component of {!Tage} and as a standalone
    baseline predictor. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 4096). *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit

val counter : t -> pc:int -> int
(** Raw 2-bit counter value for the pc's entry, for tests. *)
