type t = {
  slots : int array;
  mutable top : int;  (* index of next free slot *)
  mutable valid : int;
}

let create ?(depth = 32) () = { slots = Array.make depth 0; top = 0; valid = 0 }

let capacity t = Array.length t.slots

let push t addr =
  t.slots.(t.top) <- addr;
  t.top <- (t.top + 1) mod capacity t;
  t.valid <- min (capacity t) (t.valid + 1)

let pop t =
  if t.valid = 0 then None
  else begin
    t.top <- (t.top - 1 + capacity t) mod capacity t;
    t.valid <- t.valid - 1;
    Some t.slots.(t.top)
  end

let depth t = t.valid
