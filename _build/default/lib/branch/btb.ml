type way = {
  mutable pc : int;  (* -1 = invalid *)
  mutable target : int;
  mutable lru : int;  (* higher = more recently used *)
}

type t = {
  sets : way array array;
  set_mask : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 8192) ?(assoc = 4) () =
  if entries mod assoc <> 0 then invalid_arg "Btb.create: entries not a multiple of assoc";
  let num_sets = entries / assoc in
  if num_sets land (num_sets - 1) <> 0 then
    invalid_arg "Btb.create: number of sets not a power of two";
  let set _ = Array.init assoc (fun _ -> { pc = -1; target = -1; lru = 0 }) in
  { sets = Array.init num_sets set; set_mask = num_sets - 1; clock = 0; hits = 0;
    misses = 0 }

let set_of t pc = t.sets.(pc land t.set_mask)

let lookup t ~pc =
  let set = set_of t pc in
  t.clock <- t.clock + 1;
  let found = Array.find_opt (fun w -> w.pc = pc) set in
  match found with
  | Some w ->
    w.lru <- t.clock;
    t.hits <- t.hits + 1;
    Some w.target
  | None ->
    t.misses <- t.misses + 1;
    None

let update t ~pc ~target =
  let set = set_of t pc in
  t.clock <- t.clock + 1;
  match Array.find_opt (fun w -> w.pc = pc) set with
  | Some w ->
    w.target <- target;
    w.lru <- t.clock
  | None ->
    let victim = ref set.(0) in
    Array.iter (fun w -> if w.lru < !victim.lru then victim := w) set;
    !victim.pc <- pc;
    !victim.target <- target;
    !victim.lru <- t.clock

let hits t = t.hits
let misses t = t.misses
