type t = {
  mask : int;
  history_mask : int;
  counters : Bytes.t;
  mutable history : int;
}

let create ?(entries = 16384) ?(history_bits = 12) () =
  if entries land (entries - 1) <> 0 then invalid_arg "Gshare.create: not a power of two";
  { mask = entries - 1;
    history_mask = (1 lsl history_bits) - 1;
    counters = Bytes.make entries '\001';
    history = 0 }

let index t pc = (pc lxor (t.history land t.history_mask)) land t.mask

let predict t ~pc = Char.code (Bytes.get t.counters (index t pc)) >= 2

let update t ~pc ~taken =
  let i = index t pc in
  let c = Char.code (Bytes.get t.counters i) in
  let c = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.counters i (Char.chr c);
  t.history <- ((t.history lsl 1) lor if taken then 1 else 0) land t.history_mask
