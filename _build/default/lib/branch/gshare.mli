(** Gshare branch predictor: 2-bit counters indexed by pc XOR global
    history.  Provided as a mid-tier baseline between {!Bimodal} and
    {!Tage}. *)

type t

val create : ?entries:int -> ?history_bits:int -> unit -> t
(** [entries] must be a power of two (default 16384); [history_bits]
    defaults to 12. *)

val predict : t -> pc:int -> bool

val update : t -> pc:int -> taken:bool -> unit
(** Updates the counter selected by the current history, then shifts the
    outcome into the history register. *)
