lib/branch/tage.mli:
