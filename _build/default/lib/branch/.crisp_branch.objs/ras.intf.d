lib/branch/ras.mli:
