lib/branch/gshare.mli:
