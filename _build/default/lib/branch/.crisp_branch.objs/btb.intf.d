lib/branch/btb.mli:
