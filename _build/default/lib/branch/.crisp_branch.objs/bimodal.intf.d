lib/branch/bimodal.mli:
