lib/branch/btb.ml: Array
