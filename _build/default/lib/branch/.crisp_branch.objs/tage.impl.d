lib/branch/tage.ml: Array Bimodal Bytes Char List Prng
