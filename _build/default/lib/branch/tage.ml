type config = {
  table_entries : int;
  tag_bits : int;
  counter_bits : int;
  history_lengths : int array;
  base_entries : int;
}

let default_config =
  { table_entries = 1024;
    tag_bits = 9;
    counter_bits = 3;
    history_lengths = [| 5; 11; 21; 39; 70; 130 |];
    base_entries = 4096 }

type table = {
  hist_len : int;
  tags : int array;
  ctrs : int array;
  useful : int array;
}

type t = {
  config : config;
  base : Bimodal.t;
  tables : table array;
  history : Bytes.t;  (* circular buffer of outcome bits, newest at [head] *)
  mutable head : int;
  rng : Prng.t;
  mutable predictions : int;
  mutable mispredictions : int;
  mutable updates_since_reset : int;
}

let history_capacity = 256

let create ?(config = default_config) ?(seed = 0x7a9e) () =
  if config.table_entries land (config.table_entries - 1) <> 0 then
    invalid_arg "Tage.create: table_entries not a power of two";
  let table hist_len =
    { hist_len;
      tags = Array.make config.table_entries (-1);
      ctrs = Array.make config.table_entries (1 lsl (config.counter_bits - 1));
      useful = Array.make config.table_entries 0 }
  in
  { config;
    base = Bimodal.create ~entries:config.base_entries ();
    tables = Array.map table config.history_lengths;
    history = Bytes.make history_capacity '\000';
    head = 0;
    rng = Prng.create seed;
    predictions = 0;
    mispredictions = 0;
    updates_since_reset = 0 }

let history_bit t i =
  (* i = 0 is the most recent outcome *)
  Char.code (Bytes.get t.history ((t.head - 1 - i + (2 * history_capacity)) mod history_capacity))

(* Fold the last [len] history bits into [bits] bits by chunked XOR. *)
let folded_history t ~len ~bits =
  let acc = ref 0 in
  let chunk = ref 0 in
  let pos = ref 0 in
  for i = 0 to len - 1 do
    chunk := !chunk lor (history_bit t i lsl !pos);
    incr pos;
    if !pos = bits then begin
      acc := !acc lxor !chunk;
      chunk := 0;
      pos := 0
    end
  done;
  !acc lxor !chunk

let idx_bits t =
  (* log2 of table_entries *)
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 t.config.table_entries 0

let table_index t bank pc =
  let bits = idx_bits t in
  let tb = t.tables.(bank) in
  let fold = folded_history t ~len:tb.hist_len ~bits in
  (pc lxor (pc lsr bits) lxor fold lxor (bank * 0x1f1)) land (t.config.table_entries - 1)

let table_tag t bank pc =
  let bits = t.config.tag_bits in
  let tb = t.tables.(bank) in
  let fold = folded_history t ~len:tb.hist_len ~bits in
  (pc lxor (pc lsr (bits + 1)) lxor fold) land ((1 lsl bits) - 1)

let ctr_max t = (1 lsl t.config.counter_bits) - 1
let ctr_mid t = 1 lsl (t.config.counter_bits - 1)

(* Find provider and alternate components for this pc. *)
let lookup t pc =
  let n = Array.length t.tables in
  let provider = ref (-1) in
  let alt = ref (-1) in
  let provider_idx = ref 0 in
  let alt_idx = ref 0 in
  for bank = 0 to n - 1 do
    let idx = table_index t bank pc in
    if t.tables.(bank).tags.(idx) = table_tag t bank pc then begin
      alt := !provider;
      alt_idx := !provider_idx;
      provider := bank;
      provider_idx := idx
    end
  done;
  (!provider, !provider_idx, !alt, !alt_idx)

let table_pred t bank idx = t.tables.(bank).ctrs.(idx) >= ctr_mid t

let predict t ~pc =
  let provider, pidx, _, _ = lookup t pc in
  if provider >= 0 then table_pred t provider pidx else Bimodal.predict t.base ~pc

let push_history t taken =
  Bytes.set t.history t.head (if taken then '\001' else '\000');
  t.head <- (t.head + 1) mod history_capacity

let bump ctrs idx ~taken ~ceiling =
  if taken then ctrs.(idx) <- min ceiling (ctrs.(idx) + 1)
  else ctrs.(idx) <- max 0 (ctrs.(idx) - 1)

let allocate t pc ~taken ~above =
  (* Try to allocate an entry in a table with longer history than the
     provider; prefer entries whose useful counter is zero. *)
  let n = Array.length t.tables in
  let candidates = ref [] in
  for bank = above to n - 1 do
    let idx = table_index t bank pc in
    if t.tables.(bank).useful.(idx) = 0 then candidates := (bank, idx) :: !candidates
  done;
  match !candidates with
  | [] ->
    (* No free entry: age the competing entries instead. *)
    for bank = above to n - 1 do
      let idx = table_index t bank pc in
      let u = t.tables.(bank).useful in
      u.(idx) <- max 0 (u.(idx) - 1)
    done
  | cands ->
    let cands = Array.of_list (List.rev cands) in
    (* Bias allocation toward shorter histories, as in the original TAGE. *)
    let pick =
      if Array.length cands > 1 && Prng.int t.rng 4 < 3 then cands.(0)
      else cands.(Prng.int t.rng (Array.length cands))
    in
    let bank, idx = pick in
    let tb = t.tables.(bank) in
    tb.tags.(idx) <- table_tag t bank pc;
    tb.ctrs.(idx) <- (if taken then ctr_mid t else ctr_mid t - 1);
    tb.useful.(idx) <- 0

let reset_useful t =
  Array.iter
    (fun tb -> Array.iteri (fun i u -> tb.useful.(i) <- u lsr 1) tb.useful)
    t.tables

let predict_and_update t ~pc ~taken =
  let provider, pidx, alt, aidx = lookup t pc in
  let alt_pred = if alt >= 0 then table_pred t alt aidx else Bimodal.predict t.base ~pc in
  let pred = if provider >= 0 then table_pred t provider pidx else alt_pred in
  t.predictions <- t.predictions + 1;
  if pred <> taken then t.mispredictions <- t.mispredictions + 1;
  (* Train the provider (or the base when no table matched). *)
  if provider >= 0 then begin
    let tb = t.tables.(provider) in
    bump tb.ctrs pidx ~taken ~ceiling:(ctr_max t);
    if pred <> alt_pred then begin
      if pred = taken then tb.useful.(pidx) <- min 3 (tb.useful.(pidx) + 1)
      else tb.useful.(pidx) <- max 0 (tb.useful.(pidx) - 1);
      (* When the provider was wrong but the alternate was right, also train
         the alternate so it keeps its accuracy. *)
      if pred <> taken then begin
        if alt >= 0 then bump t.tables.(alt).ctrs aidx ~taken ~ceiling:(ctr_max t)
        else Bimodal.update t.base ~pc ~taken
      end
    end
  end
  else Bimodal.update t.base ~pc ~taken;
  (* Allocate a longer-history entry on a misprediction. *)
  if pred <> taken && provider < Array.length t.tables - 1 then
    allocate t pc ~taken ~above:(provider + 1);
  push_history t taken;
  t.updates_since_reset <- t.updates_since_reset + 1;
  if t.updates_since_reset >= 1 lsl 18 then begin
    t.updates_since_reset <- 0;
    reset_useful t
  end;
  pred

let mispredictions t = t.mispredictions
let predictions t = t.predictions
