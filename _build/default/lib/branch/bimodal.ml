type t = {
  mask : int;
  counters : Bytes.t;  (* 2-bit saturating counters, one byte each *)
}

let create ?(entries = 4096) () =
  if entries land (entries - 1) <> 0 then invalid_arg "Bimodal.create: not a power of two";
  { mask = entries - 1; counters = Bytes.make entries '\001' }

let index t pc = pc land t.mask

let counter t ~pc = Char.code (Bytes.get t.counters (index t pc))

let predict t ~pc = counter t ~pc >= 2

let update t ~pc ~taken =
  let i = index t pc in
  let c = Char.code (Bytes.get t.counters i) in
  let c = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.counters i (Char.chr c)
