(** Data-dependency pre-computation over a dynamic trace.

    For every dynamic micro-op we record the dynamic index of the producer
    of each register source and, for loads, of the last store to the same
    address (the dependency-through-memory edge that register-only IBDA
    hardware cannot observe — paper Sections 1 and 3.5). *)

type t = {
  prod1 : int array;  (** producer of src1, or [-1] *)
  prod2 : int array;  (** producer of src2, or [-1] *)
  prod_mem : int array;  (** for loads: last older store to the same address, or [-1] *)
}

val compute : Executor.t -> t
(** Single forward pass over the trace; O(length). *)

val producers : t -> int -> int list
(** All producer indices of dynamic instruction [i] (deduplicated,
    [-1] entries dropped). *)
