(** Assembly-level program representation.

    Workloads are written in a small assembler DSL ({!inst} lists with
    symbolic labels) and assembled into an array of decoded micro-ops
    indexed by program counter.  The decoded form is what the functional
    executor, the trace slicer and the timing simulator consume. *)

(** Second ALU / branch operand: a register or an immediate. *)
type operand =
  | Reg of Isa.reg
  | Imm of int

(** Assembler statements.  Register fields are listed destination first.

    Memory operands are [base register + byte offset].  Branch targets are
    symbolic labels resolved by {!assemble}. *)
type inst =
  | Label of string
  | Li of Isa.reg * int  (** rd <- imm *)
  | Alu of Isa.alu_kind * Isa.reg * Isa.reg * operand  (** rd <- rs1 op rs2/imm *)
  | Mul of Isa.reg * Isa.reg * Isa.reg
  | Div of Isa.reg * Isa.reg * Isa.reg
  | Fadd of Isa.reg * Isa.reg * Isa.reg
  | Fmul of Isa.reg * Isa.reg * Isa.reg
  | Fdiv of Isa.reg * Isa.reg * Isa.reg
  | Ld of Isa.reg * Isa.reg * int  (** rd <- mem[rs + off] *)
  | St of Isa.reg * Isa.reg * int  (** mem[base + off] <- rs; arguments: value, base, off *)
  | Prefetch of Isa.reg * int  (** prefetch mem[rs + off] *)
  | Br of Isa.cond * Isa.reg * operand * string  (** if rs1 cond rs2/imm then goto label *)
  | Jmp of string
  | Call of string
  | Ret
  | Nop
  | Halt

(** A decoded micro-op.  [-1] marks an absent register field or target. *)
type decoded = {
  op : Isa.op;
  dst : int;
  src1 : int;
  src2 : int;
  imm : int;  (** immediate value or memory byte offset *)
  target : int;  (** branch/jump/call target pc *)
}

type t = {
  name : string;
  code : decoded array;
  labels : (string * int) list;  (** label name -> pc, for diagnostics *)
}

exception Assembly_error of string

val assemble : name:string -> inst list -> t
(** Resolve labels and decode.  Labels occupy no program-counter slot.
    @raise Assembly_error on duplicate or undefined labels or register
    indices outside [0, Isa.num_regs). *)

val pp_decoded : Format.formatter -> decoded -> unit
(** Disassemble one micro-op, e.g. [ld r3, 8(r5)]. *)

val pp : Format.formatter -> t -> unit
(** Disassemble a whole program with pc annotations. *)
