lib/trace/layout.mli: Executor Program
