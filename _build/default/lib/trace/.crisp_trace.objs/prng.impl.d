lib/trace/prng.ml: Array Int64
