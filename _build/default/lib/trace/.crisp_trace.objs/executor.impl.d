lib/trace/executor.ml: Array Hashtbl Isa List Program Vec
