lib/trace/vec.ml: Array
