lib/trace/executor.mli: Hashtbl Isa Program
