lib/trace/prng.mli:
