lib/trace/layout.ml: Array Executor Isa Program
