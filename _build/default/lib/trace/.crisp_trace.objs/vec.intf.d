lib/trace/vec.mli:
