lib/trace/program.ml: Array Format Hashtbl Isa List
