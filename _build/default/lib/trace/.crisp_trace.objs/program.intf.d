lib/trace/program.mli: Format Isa
