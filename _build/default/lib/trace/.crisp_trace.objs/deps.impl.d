lib/trace/deps.ml: Array Executor Hashtbl Isa List
