lib/trace/deps.mli: Executor
