type operand =
  | Reg of Isa.reg
  | Imm of int

type inst =
  | Label of string
  | Li of Isa.reg * int
  | Alu of Isa.alu_kind * Isa.reg * Isa.reg * operand
  | Mul of Isa.reg * Isa.reg * Isa.reg
  | Div of Isa.reg * Isa.reg * Isa.reg
  | Fadd of Isa.reg * Isa.reg * Isa.reg
  | Fmul of Isa.reg * Isa.reg * Isa.reg
  | Fdiv of Isa.reg * Isa.reg * Isa.reg
  | Ld of Isa.reg * Isa.reg * int
  | St of Isa.reg * Isa.reg * int
  | Prefetch of Isa.reg * int
  | Br of Isa.cond * Isa.reg * operand * string
  | Jmp of string
  | Call of string
  | Ret
  | Nop
  | Halt

type decoded = {
  op : Isa.op;
  dst : int;
  src1 : int;
  src2 : int;
  imm : int;
  target : int;
}

type t = {
  name : string;
  code : decoded array;
  labels : (string * int) list;
}

exception Assembly_error of string

let error fmt = Format.kasprintf (fun s -> raise (Assembly_error s)) fmt

let check_reg r =
  if r < 0 || r >= Isa.num_regs then error "register r%d out of range" r

let check_regs rs = List.iter check_reg rs

let split_operand = function
  | Reg r ->
    check_reg r;
    (r, 0)
  | Imm v -> (-1, v)

(* First pass: assign a pc to every non-label statement and record labels. *)
let collect_labels insts =
  let table = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun inst ->
      match inst with
      | Label name ->
        if Hashtbl.mem table name then error "duplicate label %S" name;
        Hashtbl.add table name !pc
      | _ -> incr pc)
    insts;
  table

let decode labels inst =
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some pc -> pc
    | None -> error "undefined label %S" name
  in
  let three op dst src1 src2 =
    check_regs [ dst; src1; src2 ];
    { op; dst; src1; src2; imm = 0; target = -1 }
  in
  match inst with
  | Label _ -> None
  | Li (rd, v) ->
    check_reg rd;
    Some { op = Isa.Li; dst = rd; src1 = -1; src2 = -1; imm = v; target = -1 }
  | Alu (kind, rd, rs1, operand) ->
    check_regs [ rd; rs1 ];
    let src2, imm = split_operand operand in
    Some { op = Isa.Alu kind; dst = rd; src1 = rs1; src2; imm; target = -1 }
  | Mul (rd, rs1, rs2) -> Some (three Isa.Mul rd rs1 rs2)
  | Div (rd, rs1, rs2) -> Some (three Isa.Div rd rs1 rs2)
  | Fadd (rd, rs1, rs2) -> Some (three Isa.Fp_add rd rs1 rs2)
  | Fmul (rd, rs1, rs2) -> Some (three Isa.Fp_mul rd rs1 rs2)
  | Fdiv (rd, rs1, rs2) -> Some (three Isa.Fp_div rd rs1 rs2)
  | Ld (rd, base, off) ->
    check_regs [ rd; base ];
    Some { op = Isa.Load; dst = rd; src1 = base; src2 = -1; imm = off; target = -1 }
  | St (value, base, off) ->
    check_regs [ value; base ];
    Some
      { op = Isa.Store; dst = -1; src1 = value; src2 = base; imm = off; target = -1 }
  | Prefetch (base, off) ->
    check_reg base;
    Some
      { op = Isa.Prefetch; dst = -1; src1 = base; src2 = -1; imm = off; target = -1 }
  | Br (cond, rs1, operand, label) ->
    check_reg rs1;
    let src2, imm = split_operand operand in
    Some
      { op = Isa.Branch cond; dst = -1; src1 = rs1; src2; imm; target = resolve label }
  | Jmp label ->
    Some { op = Isa.Jump; dst = -1; src1 = -1; src2 = -1; imm = 0; target = resolve label }
  | Call label ->
    Some { op = Isa.Call; dst = -1; src1 = -1; src2 = -1; imm = 0; target = resolve label }
  | Ret -> Some { op = Isa.Ret; dst = -1; src1 = -1; src2 = -1; imm = 0; target = -1 }
  | Nop -> Some { op = Isa.Nop; dst = -1; src1 = -1; src2 = -1; imm = 0; target = -1 }
  | Halt -> Some { op = Isa.Halt; dst = -1; src1 = -1; src2 = -1; imm = 0; target = -1 }

let assemble ~name insts =
  let labels = collect_labels insts in
  let code = List.filter_map (decode labels) insts in
  let labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [] in
  let labels = List.sort (fun (_, a) (_, b) -> compare a b) labels in
  { name; code = Array.of_list code; labels }

let pp_reg fmt r = if r < 0 then Format.pp_print_string fmt "_" else Format.fprintf fmt "r%d" r

let pp_decoded fmt d =
  let name = Isa.op_name d.op in
  match d.op with
  | Isa.Li -> Format.fprintf fmt "li %a, %d" pp_reg d.dst d.imm
  | Isa.Alu _ ->
    if d.src2 >= 0 then
      Format.fprintf fmt "%s %a, %a, %a" name pp_reg d.dst pp_reg d.src1 pp_reg d.src2
    else Format.fprintf fmt "%s %a, %a, %d" name pp_reg d.dst pp_reg d.src1 d.imm
  | Isa.Mul | Isa.Div | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div ->
    Format.fprintf fmt "%s %a, %a, %a" name pp_reg d.dst pp_reg d.src1 pp_reg d.src2
  | Isa.Load -> Format.fprintf fmt "ld %a, %d(%a)" pp_reg d.dst d.imm pp_reg d.src1
  | Isa.Store -> Format.fprintf fmt "st %a, %d(%a)" pp_reg d.src1 d.imm pp_reg d.src2
  | Isa.Prefetch -> Format.fprintf fmt "prefetch %d(%a)" d.imm pp_reg d.src1
  | Isa.Branch _ ->
    if d.src2 >= 0 then
      Format.fprintf fmt "%s %a, %a, @%d" name pp_reg d.src1 pp_reg d.src2 d.target
    else Format.fprintf fmt "%s %a, %d, @%d" name pp_reg d.src1 d.imm d.target
  | Isa.Jump | Isa.Call -> Format.fprintf fmt "%s @%d" name d.target
  | Isa.Ret | Isa.Nop | Isa.Halt -> Format.pp_print_string fmt name

let pp fmt t =
  Format.fprintf fmt "program %s (%d micro-ops)@." t.name (Array.length t.code);
  Array.iteri
    (fun pc d ->
      let label =
        List.find_map (fun (n, p) -> if p = pc then Some n else None) t.labels
      in
      (match label with
      | Some n -> Format.fprintf fmt "%s:@." n
      | None -> ());
      Format.fprintf fmt "  %4d: %a@." pc pp_decoded d)
    t.code
