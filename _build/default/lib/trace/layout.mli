(** Byte-level code layout of an assembled program.

    CRISP's binary-rewriting step prepends a one-byte prefix to every
    critical instruction, which shifts all following instructions and grows
    both the static image and the dynamic fetch footprint (paper Section
    5.7, Figure 12).  This module computes instruction start addresses given
    a criticality predicate, so the instruction cache model sees the real
    line occupancy of the rewritten binary. *)

type t = {
  base : int;  (** address of the first instruction *)
  starts : int array;  (** byte address of each pc *)
  sizes : int array;  (** encoded size of each pc, including any prefix *)
  total_bytes : int;
}

val compute : ?base:int -> critical:(int -> bool) -> Program.t -> t
(** [compute ~critical prog] lays the program out contiguously from [base]
    (default [0x400000]); instruction [pc] occupies
    [Isa.byte_size op + (if critical pc then Isa.prefix_bytes else 0)]
    bytes. *)

val addr_of : t -> int -> int
(** Start address of a pc. *)

val static_bytes : Program.t -> critical:(int -> bool) -> int
(** Total static code size under the given tagging. *)

val dynamic_bytes : Executor.t -> critical:(int -> bool) -> int
(** Dynamic code footprint: encoded bytes fetched over the whole trace,
    weighting each instruction by its execution frequency. *)
