type t = {
  prod1 : int array;
  prod2 : int array;
  prod_mem : int array;
}

let compute (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let prod1 = Array.make n (-1) in
  let prod2 = Array.make n (-1) in
  let prod_mem = Array.make n (-1) in
  (* last_writer.(r) = dynamic index of the most recent writer of register r *)
  let last_writer = Array.make Isa.num_regs (-1) in
  let last_store = Hashtbl.create 4096 in
  for i = 0 to n - 1 do
    let d = dyns.(i) in
    if d.Executor.src1 >= 0 then prod1.(i) <- last_writer.(d.Executor.src1);
    if d.Executor.src2 >= 0 then prod2.(i) <- last_writer.(d.Executor.src2);
    (match d.Executor.op with
    | Isa.Load -> begin
      match Hashtbl.find_opt last_store d.Executor.addr with
      | Some j -> prod_mem.(i) <- j
      | None -> ()
    end
    | Isa.Store -> Hashtbl.replace last_store d.Executor.addr i
    | _ -> ());
    if d.Executor.dst >= 0 then last_writer.(d.Executor.dst) <- i
  done;
  { prod1; prod2; prod_mem }

let producers t i =
  let add acc p = if p >= 0 && not (List.mem p acc) then p :: acc else acc in
  add (add (add [] t.prod1.(i)) t.prod2.(i)) t.prod_mem.(i)
