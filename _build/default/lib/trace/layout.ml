type t = {
  base : int;
  starts : int array;
  sizes : int array;
  total_bytes : int;
}

let size_of code critical pc =
  let d : Program.decoded = code.(pc) in
  Isa.byte_size d.Program.op + if critical pc then Isa.prefix_bytes else 0

let compute ?(base = 0x400000) ~critical (prog : Program.t) =
  let code = prog.Program.code in
  let n = Array.length code in
  let starts = Array.make n base in
  let sizes = Array.make n 0 in
  let cursor = ref base in
  for pc = 0 to n - 1 do
    starts.(pc) <- !cursor;
    sizes.(pc) <- size_of code critical pc;
    cursor := !cursor + sizes.(pc)
  done;
  { base; starts; sizes; total_bytes = !cursor - base }

let addr_of t pc = t.starts.(pc)

let static_bytes (prog : Program.t) ~critical =
  let code = prog.Program.code in
  let total = ref 0 in
  for pc = 0 to Array.length code - 1 do
    total := !total + size_of code critical pc
  done;
  !total

let dynamic_bytes (trace : Executor.t) ~critical =
  let code = trace.Executor.prog.Program.code in
  Array.fold_left
    (fun acc (d : Executor.dyn) -> acc + size_of code critical d.Executor.pc)
    0 trace.Executor.dyns
