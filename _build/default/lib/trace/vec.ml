type 'a t = {
  dummy : 'a;
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 16) ~dummy () =
  { dummy; data = Array.make (max capacity 1) dummy; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let clear t = t.len <- 0
