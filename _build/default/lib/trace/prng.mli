(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic element of the repository — data layouts of the
    synthetic workloads, the RAND scheduler's slot allocation, DRAM address
    hashing — draws from this generator so that traces and simulations are
    bit-reproducible for a given seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t

val next : t -> int
(** Next 62-bit non-negative pseudo-random integer. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
