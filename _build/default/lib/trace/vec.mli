(** Growable array, used to accumulate dynamic traces.

    A [dummy] element fills unused capacity so no unsafe casts are needed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iter : ('a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
