(* Golden-stats regression driver.

   [regress check] simulates every catalog workload at the golden trace
   sizes and diffs the statistics/counter vector against the committed
   goldens in test/goldens/, exiting non-zero on any untoleranced drift.
   [regress snapshot] regenerates the goldens after an intentional model
   change (see EXPERIMENTS.md). *)

let usage = "regress [-dir DIR] [-eval N] [-train N] (snapshot|check) [workload...]"

let () =
  let dir = ref "test/goldens" in
  let eval_instrs = ref Golden_stats.default_sizes.Golden_stats.eval_instrs in
  let train_instrs = ref Golden_stats.default_sizes.Golden_stats.train_instrs in
  let anon = ref [] in
  Arg.parse
    [ ("-dir", Arg.Set_string dir, "DIR golden directory (default test/goldens)");
      ("-eval", Arg.Set_int eval_instrs, "N evaluation trace length");
      ("-train", Arg.Set_int train_instrs, "N training trace length") ]
    (fun a -> anon := a :: !anon)
    usage;
  let sizes =
    { Golden_stats.eval_instrs = !eval_instrs; train_instrs = !train_instrs }
  in
  let command, names =
    match List.rev !anon with
    | cmd :: rest -> (cmd, if rest = [] then Catalog.names else rest)
    | [] ->
      prerr_endline usage;
      exit 2
  in
  match command with
  | "snapshot" ->
    if not (Sys.file_exists !dir) then Sys.mkdir !dir 0o755;
    List.iter
      (fun name ->
        Golden_stats.write ~dir:!dir ~sizes name;
        Printf.printf "wrote %s\n%!" (Golden_stats.path ~dir:!dir name))
      names
  | "check" ->
    let failures = ref 0 in
    List.iter
      (fun name ->
        match Golden_stats.check ~dir:!dir ~sizes name with
        | Ok () -> Printf.printf "ok   %s\n%!" name
        | Error report ->
          incr failures;
          Printf.printf "FAIL %s\n%s\n%!" name report)
      names;
    if !failures > 0 then begin
      Printf.printf "%d of %d workloads drifted from their goldens\n" !failures
        (List.length names);
      exit 1
    end
    else Printf.printf "all %d workloads match their goldens\n" (List.length names)
  | other ->
    Printf.eprintf "unknown command %S\n%s\n" other usage;
    exit 2
