(* Golden-stats regression driver.

   [regress check] simulates every catalog workload at the golden trace
   sizes and diffs the statistics/counter vector against the committed
   goldens in test/goldens/, exiting non-zero on any untoleranced drift.
   [regress snapshot] regenerates the goldens after an intentional model
   change (see EXPERIMENTS.md). *)

let usage = "regress [-dir DIR] [-eval N] [-train N] (snapshot|check) [workload...]"

let () =
  let dir = ref "test/goldens" in
  let eval_instrs = ref Golden_stats.default_sizes.Golden_stats.eval_instrs in
  let train_instrs = ref Golden_stats.default_sizes.Golden_stats.train_instrs in
  let anon = ref [] in
  Arg.parse
    [ ("-dir", Arg.Set_string dir, "DIR golden directory (default test/goldens)");
      ("-eval", Arg.Set_int eval_instrs, "N evaluation trace length");
      ("-train", Arg.Set_int train_instrs, "N training trace length") ]
    (fun a -> anon := a :: !anon)
    usage;
  let sizes =
    { Golden_stats.eval_instrs = !eval_instrs; train_instrs = !train_instrs }
  in
  (* The cross-workload static-predictor golden only participates in a
     full-catalog run: with an explicit workload list it would re-score
     every workload anyway, defeating the point of the selection. *)
  let command, names, with_static =
    match List.rev !anon with
    | cmd :: [] -> (cmd, Catalog.names, true)
    | cmd :: rest -> (cmd, rest, false)
    | [] ->
      prerr_endline usage;
      exit 2
  in
  match command with
  | "snapshot" ->
    if not (Sys.file_exists !dir) then Sys.mkdir !dir 0o755;
    List.iter
      (fun name ->
        Golden_stats.write ~dir:!dir ~sizes name;
        Printf.printf "wrote %s\n%!" (Golden_stats.path ~dir:!dir name))
      names;
    if with_static then begin
      Golden_stats.static_write ~dir:!dir ~sizes ();
      Printf.printf "wrote %s\n%!"
        (Golden_stats.path ~dir:!dir Golden_stats.static_name)
    end
  | "check" ->
    let failures = ref 0 in
    let run name check =
      match check () with
      | Ok () -> Printf.printf "ok   %s\n%!" name
      | Error report ->
        incr failures;
        Printf.printf "FAIL %s\n%s\n%!" name report
    in
    List.iter
      (fun name -> run name (fun () -> Golden_stats.check ~dir:!dir ~sizes name))
      names;
    if with_static then
      run Golden_stats.static_name (fun () ->
          Golden_stats.static_check ~dir:!dir ~sizes ());
    let total = List.length names + if with_static then 1 else 0 in
    if !failures > 0 then begin
      Printf.printf "%d of %d goldens drifted\n" !failures total;
      exit 1
    end
    else Printf.printf "all %d goldens match\n" total
  | other ->
    Printf.eprintf "unknown command %S\n%s\n" other usage;
    exit 2
