(* Tracked performance benchmark for the cycle engine.

   Runs the cycle-level core end-to-end on the full workload catalog and
   reports simulated-instructions-per-second and GC minor words per
   simulated cycle, then writes the numbers to BENCH_perf.json at the
   repo root.  The committed file is the perf trajectory: every PR
   re-runs the benchmark and compares against the previous numbers.

   The file also carries a `sampled' section: one long trace
   (pointer_chase at 10M micro-ops by default) detail-simulated in full
   and then again through the interval sampler, recording the wall-clock
   speedup and the CPI error the sampler trades it for.

   Usage:
     dune exec --profile release bench/perf.exe                # measure + write
     dune exec --profile release bench/perf.exe -- -o FILE     # write elsewhere
     dune exec --profile release bench/perf.exe -- --compare BENCH_perf.json
                                                               # warn on regression
     dune exec --profile release bench/perf.exe -- --gate --compare FILE
                                                               # exit 1 on >15%
                                                               # aggregate regression

   Per-workload comparisons stay advisory (wall-clock numbers depend on
   the runner, so individual swings are noisy); the gate fires only when
   the geometric-mean throughput over the whole catalog drops more than
   15%, which a hostile-runner blip cannot plausibly cause across 17
   workloads at once.  Determinism of the *simulation* is separately
   enforced by bench/regress.exe; this benchmark only tracks how fast
   the engine gets through it. *)

let schema = "crisp-perf-2"
let workloads = Catalog.names
let default_instrs = 200_000
let default_sampled_instrs = 10_000_000
let sampled_workload = "pointer_chase"

type row = {
  name : string;
  instrs : int;
  cycles : int;
  seconds : float;
  instrs_per_sec : float;
  minor_words_per_cycle : float;
}

(* Best-of-[repeat] timing: a shared runner means any individual timed
   run can be slowed by unrelated host load, so the minimum over a few
   repeats is the stable estimate of what the engine costs.  The GC
   counter is deterministic per run and is read around the fastest
   repeat like any other. *)
let rec timed_runs ~layout ~cfg ~trace n best_seconds best_minor =
  if n = 0 then (best_seconds, best_minor)
  else begin
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    ignore (Cpu_core.run ~layout cfg trace);
    let t1 = Unix.gettimeofday () in
    let m1 = Gc.minor_words () in
    let seconds = t1 -. t0 in
    if seconds < best_seconds then timed_runs ~layout ~cfg ~trace (n - 1) seconds (m1 -. m0)
    else timed_runs ~layout ~cfg ~trace (n - 1) best_seconds best_minor
  end

let measure ~instrs ~repeat name =
  let w = Catalog.make ~input:Workload.Ref ~instrs name in
  let trace = Workload.trace w in
  let cfg = Cpu_config.skylake in
  let layout = Layout.compute ~critical:(fun _ -> false) trace.Executor.prog in
  (* Warm run: caches the trace pages, JIT-free but branch predictors of
     the *host* settle; also triggers any one-time lazy setup. *)
  let stats = Cpu_core.run ~layout cfg trace in
  let seconds, minor = timed_runs ~layout ~cfg ~trace repeat infinity 0. in
  let cycles = stats.Cpu_stats.cycles in
  { name;
    instrs = stats.Cpu_stats.retired;
    cycles;
    seconds;
    instrs_per_sec = float_of_int stats.Cpu_stats.retired /. seconds;
    minor_words_per_cycle = minor /. float_of_int cycles }

let json_of_row r =
  Obs_json.Obj
    [ ("instrs", Obs_json.num_int r.instrs);
      ("cycles", Obs_json.num_int r.cycles);
      ("seconds", Obs_json.Num r.seconds);
      ("instrs_per_sec", Obs_json.Num r.instrs_per_sec);
      ("minor_words_per_cycle", Obs_json.Num r.minor_words_per_cycle) ]

(* Geometric mean of per-workload throughput: the catalog mixes 5x
   faster and slower engines, and an arithmetic mean would let the
   fastest workloads mask a regression everywhere else. *)
let aggregate rows =
  let n = List.length rows in
  let log_sum =
    List.fold_left (fun a r -> a +. log r.instrs_per_sec) 0. rows
  in
  let total_cycles = List.fold_left (fun a r -> a + r.cycles) 0 rows in
  let total_minor =
    List.fold_left
      (fun a r -> a +. (r.minor_words_per_cycle *. float_of_int r.cycles))
      0. rows
  in
  ( exp (log_sum /. float_of_int n),
    total_minor /. float_of_int total_cycles )

(* ----- the sampled-vs-full headline ----- *)

type sampled_bench = {
  s_workload : string;
  s_instrs : int;
  s_config : string;
  full_seconds : float;
  full_cpi : float;
  sampled_seconds : float;
  sampled_cpi : float;
  sampled_ci95 : float;
  speedup : float;
  cpi_rel_error : float;
}

let measure_sampled ~instrs =
  let w = Catalog.make ~input:Workload.Ref ~instrs sampled_workload in
  let trace = Workload.trace w in
  let cfg = Cpu_config.skylake in
  let layout = Layout.compute ~critical:(fun _ -> false) trace.Executor.prog in
  let t0 = Unix.gettimeofday () in
  let full = Cpu_core.run ~layout cfg trace in
  let t1 = Unix.gettimeofday () in
  let sample = Sample_config.default in
  let t2 = Unix.gettimeofday () in
  let s = Sampler.run ~layout ~sample cfg trace in
  let t3 = Unix.gettimeofday () in
  let full_cpi =
    float_of_int full.Cpu_stats.cycles /. float_of_int full.Cpu_stats.retired
  in
  let full_seconds = t1 -. t0 and sampled_seconds = t3 -. t2 in
  { s_workload = sampled_workload;
    s_instrs = instrs;
    s_config = Sample_config.to_string sample;
    full_seconds;
    full_cpi;
    sampled_seconds;
    sampled_cpi = s.Sampler.cpi_mean;
    sampled_ci95 = s.Sampler.cpi_ci95;
    speedup = full_seconds /. sampled_seconds;
    cpi_rel_error = abs_float (s.Sampler.cpi_mean -. full_cpi) /. full_cpi }

let json_of_sampled s =
  Obs_json.Obj
    [ ("workload", Obs_json.Str s.s_workload);
      ("instrs", Obs_json.num_int s.s_instrs);
      ("sample", Obs_json.Str s.s_config);
      ("full_seconds", Obs_json.Num s.full_seconds);
      ("full_cpi", Obs_json.Num s.full_cpi);
      ("sampled_seconds", Obs_json.Num s.sampled_seconds);
      ("sampled_cpi", Obs_json.Num s.sampled_cpi);
      ("sampled_cpi_ci95", Obs_json.Num s.sampled_ci95);
      ("speedup", Obs_json.Num s.speedup);
      ("cpi_rel_error", Obs_json.Num s.cpi_rel_error) ]

let to_json ~instrs rows sampled =
  let agg_ips, agg_words = aggregate rows in
  Obs_json.Obj
    ([ ("schema", Obs_json.Str schema);
       ("instrs", Obs_json.num_int instrs);
       ( "workloads",
         Obs_json.Obj (List.map (fun r -> (r.name, json_of_row r)) rows) );
       ( "aggregate",
         Obs_json.Obj
           [ ("instrs_per_sec", Obs_json.Num agg_ips);
             ("minor_words_per_cycle", Obs_json.Num agg_words) ] ) ]
    @ match sampled with
      | None -> []
      | Some s -> [ ("sampled", json_of_sampled s) ])

(* ----- comparison against a committed baseline ----- *)

let member_float path json =
  let rec go json = function
    | [] -> Some (Obs_json.to_float json)
    | k :: rest -> (
      match Obs_json.member k json with
      | None -> None
      | Some j -> go j rest)
  in
  go json path

let baseline_ips json name =
  member_float [ "workloads"; name; "instrs_per_sec" ] json

(* Per-workload deltas are advisory; only the aggregate geomean gates.
   A baseline written by an older schema compares apples to oranges
   (different workload set, arithmetic-mean aggregate), so it is
   reported and skipped rather than gated on. *)
let compare_against ~file rows =
  let contents =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json = Obs_json.parse contents in
  match Obs_json.member "schema" json with
  | Some (Obs_json.Str s) when s = schema ->
    List.iter
      (fun r ->
        match baseline_ips json r.name with
        | None -> Printf.printf "compare: %-14s no baseline entry\n" r.name
        | Some base ->
          let ratio = r.instrs_per_sec /. base in
          Printf.printf "compare: %-14s %9.0f -> %9.0f instrs/s (%+.1f%%)\n"
            r.name base r.instrs_per_sec
            (100. *. (ratio -. 1.));
          if ratio < 0.8 then
            Printf.printf "WARNING: %s regressed more than 20%% versus %s (%.2fx)\n"
              r.name file ratio)
      rows;
    (match member_float [ "aggregate"; "instrs_per_sec" ] json with
    | None ->
      Printf.printf "compare: baseline has no aggregate entry\n";
      0
    | Some base ->
      let agg_ips, _ = aggregate rows in
      let ratio = agg_ips /. base in
      Printf.printf "compare: %-14s %9.0f -> %9.0f instrs/s (%+.1f%%)\n"
        "aggregate" base agg_ips
        (100. *. (ratio -. 1.));
      if ratio < 0.85 then begin
        Printf.printf
          "REGRESSION: aggregate throughput dropped more than 15%% versus %s \
           (%.2fx)\n"
          file ratio;
        1
      end
      else 0)
  | Some (Obs_json.Str s) ->
    Printf.printf "compare: baseline schema %s != %s, skipping comparison\n" s
      schema;
    0
  | _ ->
    Printf.printf "compare: baseline has no schema field, skipping comparison\n";
    0

let () =
  let output = ref "BENCH_perf.json" in
  let compare_file = ref None in
  let gate = ref false in
  let instrs = ref default_instrs in
  let repeat = ref 3 in
  let sampled_instrs = ref default_sampled_instrs in
  Arg.parse
    [ ("-o", Arg.Set_string output, "FILE output path (default BENCH_perf.json)");
      ( "--compare",
        Arg.String (fun f -> compare_file := Some f),
        "FILE previous BENCH_perf.json to compare against" );
      ( "--gate",
        Arg.Set gate,
        " exit 1 when the aggregate regresses more than 15%" );
      ("-n", Arg.Set_int instrs, "N dynamic micro-ops per workload");
      ( "--repeat",
        Arg.Set_int repeat,
        "R timed runs per workload, keep fastest (default 3)" );
      ( "--sampled-instrs",
        Arg.Set_int sampled_instrs,
        "N micro-ops for the sampled-vs-full headline (default 10M; 0 skips it)"
      ) ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "perf [-o FILE] [--compare FILE] [--gate] [-n N] [--repeat R] \
     [--sampled-instrs N]";
  let rows = List.map (measure ~instrs:!instrs ~repeat:(max 1 !repeat)) workloads in
  List.iter
    (fun r ->
      Printf.printf
        "%-14s %8d instrs %9d cycles  %9.0f instrs/s  %6.2f minor words/cycle\n"
        r.name r.instrs r.cycles r.instrs_per_sec r.minor_words_per_cycle)
    rows;
  let agg_ips, agg_words = aggregate rows in
  Printf.printf "%-14s %37s%9.0f instrs/s  %6.2f minor words/cycle  (geomean)\n"
    "aggregate" "" agg_ips agg_words;
  let sampled =
    if !sampled_instrs <= 0 then None
    else begin
      let s = measure_sampled ~instrs:!sampled_instrs in
      Printf.printf
        "sampled (%s, %d instrs, %s):\n\
        \  full %.2fs CPI %.4f | sampled %.2fs CPI %.4f ± %.4f | %.1fx \
         speedup, %.2f%% CPI error\n"
        s.s_workload s.s_instrs s.s_config s.full_seconds s.full_cpi
        s.sampled_seconds s.sampled_cpi s.sampled_ci95 s.speedup
        (100. *. s.cpi_rel_error);
      Some s
    end
  in
  let regressions =
    match !compare_file with
    | Some file when Sys.file_exists file -> compare_against ~file rows
    | Some file ->
      Printf.printf "compare: %s missing, skipping comparison\n" file;
      0
    | None -> 0
  in
  let oc = open_out_bin !output in
  output_string oc (Obs_json.to_string (to_json ~instrs:!instrs rows sampled));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !output;
  if !gate && regressions > 0 then exit 1
