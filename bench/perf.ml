(* Tracked performance benchmark for the cycle engine.

   Runs the cycle-level core end-to-end on a fixed workload set and
   reports simulated-instructions-per-second and GC minor words per
   simulated cycle, then writes the numbers to BENCH_perf.json at the
   repo root.  The committed file is the perf trajectory: every PR
   re-runs the benchmark and compares against the previous numbers.

   Usage:
     dune exec --profile release bench/perf.exe                # measure + write
     dune exec --profile release bench/perf.exe -- -o FILE     # write elsewhere
     dune exec --profile release bench/perf.exe -- --compare BENCH_perf.json
                                                               # warn on >20% regression
     dune exec --profile release bench/perf.exe -- --gate --compare FILE
                                                               # exit 1 on regression

   The comparison is non-gating by default (CI prints a warning and
   stays green): wall-clock numbers depend on the runner, so a hard
   gate would be flaky.  --gate exists for local use.  Determinism of
   the *simulation* is separately enforced by bench/regress.exe; this
   benchmark only tracks how fast the engine gets through it. *)

let schema = "crisp-perf-1"

(* mcf + pointer_chase are the memory-bound pair the acceptance bar is
   set on; gcc adds a branchy frontend-bound profile and xhpcg a
   streaming datacenter one. *)
let workloads = [ "mcf"; "pointer_chase"; "gcc"; "xhpcg" ]

let default_instrs = 200_000

type row = {
  name : string;
  instrs : int;
  cycles : int;
  seconds : float;
  instrs_per_sec : float;
  minor_words_per_cycle : float;
}

(* Best-of-[repeat] timing: a shared runner means any individual timed
   run can be slowed by unrelated host load, so the minimum over a few
   repeats is the stable estimate of what the engine costs.  The GC
   counter is deterministic per run and is read around the fastest
   repeat like any other. *)
let rec timed_runs ~layout ~cfg ~trace n best_seconds best_minor =
  if n = 0 then (best_seconds, best_minor)
  else begin
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    ignore (Cpu_core.run ~layout cfg trace);
    let t1 = Unix.gettimeofday () in
    let m1 = Gc.minor_words () in
    let seconds = t1 -. t0 in
    if seconds < best_seconds then timed_runs ~layout ~cfg ~trace (n - 1) seconds (m1 -. m0)
    else timed_runs ~layout ~cfg ~trace (n - 1) best_seconds best_minor
  end

let measure ~instrs ~repeat name =
  let w = Catalog.make ~input:Workload.Ref ~instrs name in
  let trace = Workload.trace w in
  let cfg = Cpu_config.skylake in
  let layout = Layout.compute ~critical:(fun _ -> false) trace.Executor.prog in
  (* Warm run: caches the trace pages, JIT-free but branch predictors of
     the *host* settle; also triggers any one-time lazy setup. *)
  let stats = Cpu_core.run ~layout cfg trace in
  let seconds, minor = timed_runs ~layout ~cfg ~trace repeat infinity 0. in
  let cycles = stats.Cpu_stats.cycles in
  { name;
    instrs = stats.Cpu_stats.retired;
    cycles;
    seconds;
    instrs_per_sec = float_of_int stats.Cpu_stats.retired /. seconds;
    minor_words_per_cycle = minor /. float_of_int cycles }

let json_of_row r =
  Obs_json.Obj
    [ ("instrs", Obs_json.num_int r.instrs);
      ("cycles", Obs_json.num_int r.cycles);
      ("seconds", Obs_json.Num r.seconds);
      ("instrs_per_sec", Obs_json.Num r.instrs_per_sec);
      ("minor_words_per_cycle", Obs_json.Num r.minor_words_per_cycle) ]

let aggregate rows =
  let total_instrs = List.fold_left (fun a r -> a + r.instrs) 0 rows in
  let total_seconds = List.fold_left (fun a r -> a +. r.seconds) 0. rows in
  let total_cycles = List.fold_left (fun a r -> a + r.cycles) 0 rows in
  let total_minor =
    List.fold_left
      (fun a r -> a +. (r.minor_words_per_cycle *. float_of_int r.cycles))
      0. rows
  in
  ( float_of_int total_instrs /. total_seconds,
    total_minor /. float_of_int total_cycles )

let to_json ~instrs rows =
  let agg_ips, agg_words = aggregate rows in
  Obs_json.Obj
    [ ("schema", Obs_json.Str schema);
      ("instrs", Obs_json.num_int instrs);
      ( "workloads",
        Obs_json.Obj (List.map (fun r -> (r.name, json_of_row r)) rows) );
      ( "aggregate",
        Obs_json.Obj
          [ ("instrs_per_sec", Obs_json.Num agg_ips);
            ("minor_words_per_cycle", Obs_json.Num agg_words) ] ) ]

(* Baseline lookup: workload -> instrs_per_sec, from a previous
   BENCH_perf.json. *)
let baseline_ips json name =
  match Obs_json.member "workloads" json with
  | None -> None
  | Some wl -> (
    match Obs_json.member name wl with
    | None -> None
    | Some row ->
      Option.map Obs_json.to_float (Obs_json.member "instrs_per_sec" row))

let compare_against ~file rows =
  let contents =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json = Obs_json.parse contents in
  let regressions = ref 0 in
  List.iter
    (fun r ->
      match baseline_ips json r.name with
      | None -> Printf.printf "compare: %-14s no baseline entry\n" r.name
      | Some base ->
        let ratio = r.instrs_per_sec /. base in
        Printf.printf "compare: %-14s %9.0f -> %9.0f instrs/s (%+.1f%%)\n" r.name
          base r.instrs_per_sec
          (100. *. (ratio -. 1.));
        if ratio < 0.8 then begin
          incr regressions;
          Printf.printf
            "WARNING: %s regressed more than 20%% versus %s (%.2fx)\n" r.name
            file ratio
        end)
    rows;
  !regressions

let () =
  let output = ref "BENCH_perf.json" in
  let compare_file = ref None in
  let gate = ref false in
  let instrs = ref default_instrs in
  let repeat = ref 3 in
  Arg.parse
    [ ("-o", Arg.Set_string output, "FILE output path (default BENCH_perf.json)");
      ( "--compare",
        Arg.String (fun f -> compare_file := Some f),
        "FILE previous BENCH_perf.json to compare against" );
      ("--gate", Arg.Set gate, " exit 1 when the comparison finds a regression");
      ("-n", Arg.Set_int instrs, "N dynamic micro-ops per workload");
      ("--repeat", Arg.Set_int repeat, "R timed runs per workload, keep fastest (default 3)") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "perf [-o FILE] [--compare FILE] [--gate] [-n N] [--repeat R]";
  let rows = List.map (measure ~instrs:!instrs ~repeat:(max 1 !repeat)) workloads in
  List.iter
    (fun r ->
      Printf.printf
        "%-14s %8d instrs %9d cycles  %9.0f instrs/s  %6.2f minor words/cycle\n"
        r.name r.instrs r.cycles r.instrs_per_sec r.minor_words_per_cycle)
    rows;
  let agg_ips, agg_words = aggregate rows in
  Printf.printf "%-14s %37s%9.0f instrs/s  %6.2f minor words/cycle\n" "aggregate"
    "" agg_ips agg_words;
  let regressions =
    match !compare_file with
    | Some file when Sys.file_exists file -> compare_against ~file rows
    | Some file ->
      Printf.printf "compare: %s missing, skipping comparison\n" file;
      0
    | None -> 0
  in
  let oc = open_out_bin !output in
  output_string oc (Obs_json.to_string (to_json ~instrs:!instrs rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !output;
  if !gate && regressions > 0 then exit 1
