(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) as text, and optionally times the hot simulator
   components with Bechamel.

   Usage:
     dune exec bench/main.exe                -- everything
     dune exec bench/main.exe fig7 fig8      -- selected figures
     dune exec bench/main.exe micro          -- Bechamel microbenchmarks
     dune exec bench/main.exe --eval N --train M fig9
     dune exec bench/main.exe --jobs 8 fig7  -- grid cells on 8 worker domains

   --jobs 0 (the default) uses one worker per recommended core; --jobs 1
   bypasses the pool and runs sequentially.  Figure text is byte-identical
   for every value.

   --supervised runs every figure under the resilience layer: a figure
   that crashes is logged and skipped (marker line + nonzero exit)
   instead of killing the whole sweep.
*)

let micro_benchmarks () =
  let open Bechamel in
  let trace =
    Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:20_000 "mcf")
  in
  let deps = Deps.compute trace in
  let scheduler_pick =
    Test.make ~name:"scheduler-select"
      (Staged.stage (fun () ->
           let sched = Scheduler.create ~slots:96 Scheduler.Crisp in
           for i = 0 to 63 do
             match Scheduler.allocate sched ~critical:(i land 7 = 0) with
             | Some slot -> Scheduler.mark_ready sched slot
             | None -> ()
           done;
           Scheduler.begin_cycle sched;
           let rec drain n = if n > 0 && Scheduler.select sched >= 0 then drain (n - 1) in
           drain 6))
  in
  let cache_access =
    let cache =
      Cache.create ~name:"bench"
        { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 }
    in
    let counter = ref 0 in
    Test.make ~name:"cache-access"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Cache.access cache ~addr:(!counter * 64 mod (1 lsl 20)))))
  in
  let tage_predict =
    let tage = Tage.create () in
    let pc = ref 0 in
    Test.make ~name:"tage-predict-update"
      (Staged.stage (fun () ->
           pc := (!pc + 13) land 1023;
           ignore (Tage.predict_and_update tage ~pc:!pc ~taken:(!pc land 3 <> 0))))
  in
  let slice_extract =
    Test.make ~name:"slice-extract"
      (Staged.stage (fun () ->
           ignore (Slicer.extract ~max_instances:4 trace deps ~root_pc:5)))
  in
  let simulate =
    let small = Workload.trace (Catalog.make ~input:Workload.Ref ~instrs:5_000 "mcf") in
    Test.make ~name:"cpu-simulate-5k"
      (Staged.stage (fun () -> ignore (Cpu_core.run Cpu_config.skylake small)))
  in
  let tests = [ scheduler_pick; cache_access; tage_predict; slice_extract; simulate ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  print_endline "\n== Microbenchmarks (Bechamel, monotonic clock, ns/run) ==";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
      in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ estimate ] -> Printf.printf "%-28s %12.1f ns\n" name estimate
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        analyzed)
    tests

let () =
  let args = Array.to_list Sys.argv in
  let jobs = ref 0 in
  let supervised = ref false in
  let rec parse sizes figures = function
    | [] -> (sizes, List.rev figures)
    | "--eval" :: n :: rest ->
      parse { sizes with Experiments.eval_instrs = int_of_string n } figures rest
    | "--train" :: n :: rest ->
      parse { sizes with Experiments.train_instrs = int_of_string n } figures rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse sizes figures rest
    | "--supervised" :: rest ->
      supervised := true;
      parse sizes figures rest
    | arg :: rest -> parse sizes (arg :: figures) rest
  in
  let sizes, figures =
    match args with
    | _ :: rest -> parse Experiments.default_sizes [] rest
    | [] -> (Experiments.default_sizes, [])
  in
  let jobs = if !jobs <= 0 then Domain.recommended_domain_count () else !jobs in
  let pool =
    if jobs <= 1 then Exec.Pool.sequential else Exec.Pool.create ~workers:jobs ()
  in
  Experiments.set_pool pool;
  at_exit (fun () -> Exec.Pool.shutdown pool);
  let run_one = function
    | "table1" -> Experiments.table1 ()
    | "motivating" -> ignore (Experiments.motivating ~sizes ())
    | "fig1" -> ignore (Experiments.fig1 ~sizes ())
    | "fig3" -> ignore (Experiments.fig3 ())
    | "fig4" -> ignore (Experiments.fig4 ~sizes ())
    | "fig7" -> ignore (Experiments.fig7 ~sizes ())
    | "fig8" -> ignore (Experiments.fig8 ~sizes ())
    | "fig9" -> ignore (Experiments.fig9 ~sizes ())
    | "fig10" -> ignore (Experiments.fig10 ~sizes ())
    | "fig11" -> ignore (Experiments.fig11 ~sizes ())
    | "fig12" -> ignore (Experiments.fig12 ~sizes ())
    | "static_crit" -> ignore (Experiments.static_crit ~sizes ())
    | "ablations" -> ignore (Experiments.ablations ~sizes ())
    | "division" -> ignore (Experiments.division ~sizes ())
    | "micro" -> micro_benchmarks ()
    | other ->
      Printf.eprintf "unknown figure %S\n" other;
      exit 2
  in
  let run_one name =
    if !supervised then
      ignore (Experiments.protected ~ident:name (fun () -> run_one name))
    else run_one name
  in
  (match figures with
  | [] ->
    Experiments.run_all ~sizes ();
    micro_benchmarks ()
  | figures -> List.iter run_one figures);
  (* Farm-load / cache-effectiveness counters on stderr, so figure text on
     stdout stays byte-identical across --jobs values. *)
  let m = Runner.cache_stats () in
  let ps = Exec.Pool.stats pool in
  Printf.eprintf
    "farm: memo hits %d  misses %d  dedups %d  evictions %d  entries %d; \
     pool workers %d  queued %d  running %d  stolen %d\n"
    m.Exec.Memo.hits m.Exec.Memo.misses m.Exec.Memo.dedups m.Exec.Memo.evictions
    m.Exec.Memo.entries ps.Exec.Pool.workers ps.Exec.Pool.queued
    ps.Exec.Pool.running ps.Exec.Pool.stolen;
  if !supervised then begin
    let _, _, degraded, quarantined, _ = Resil.Log.counts () in
    if Resil.Log.events () <> [] then Format.eprintf "%a@?" Resil.Log.pp_summary ();
    if degraded > 0 || quarantined > 0 then exit 1
  end
