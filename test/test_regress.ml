(* Golden-stats regression: every catalog workload's statistics and
   observability counters must match the committed snapshots in
   test/goldens/ (within the per-key tolerances of Golden_stats).

   On an intentional model change, regenerate with
     dune exec bench/regress.exe -- snapshot
   and commit the updated goldens alongside the change (EXPERIMENTS.md). *)

(* `dune runtest` runs with the sandboxed test directory as cwd (where the
   (deps (glob_files ...)) staged the goldens); `dune exec
   test/test_regress.exe` from the repo root sees the source tree instead. *)
let goldens_dir =
  match List.find_opt Sys.file_exists [ "goldens"; "test/goldens" ] with
  | Some d -> d
  | None -> "goldens"

let test_workload name () =
  match
    Golden_stats.check ~dir:goldens_dir ~sizes:Golden_stats.default_sizes name
  with
  | Ok () -> ()
  | Error report -> Alcotest.fail report

let test_catalog_covered () =
  (* Every golden on disk corresponds to a catalog workload and vice versa
     (plus the one cross-workload static-predictor golden), so a renamed
     workload cannot silently drop out of the regression. *)
  let on_disk =
    Sys.readdir goldens_dir |> Array.to_list
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".json" f)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "goldens match the catalog exactly"
    (List.sort compare (Golden_stats.static_name :: Catalog.names))
    on_disk

let test_detects_drift () =
  (* The harness itself must fail on untoleranced drift: checking a real
     workload against a perturbed golden must report mismatches. *)
  let name = "pointer_chase" in
  let sizes = Golden_stats.default_sizes in
  let meta, golden =
    Obs_golden.of_json_string
      (In_channel.with_open_bin
         (Golden_stats.path ~dir:goldens_dir name)
         In_channel.input_all)
  in
  ignore meta;
  let perturbed =
    List.map
      (fun (k, v) -> if k = "crisp.cycles" then (k, v +. 1.) else (k, v))
      golden
  in
  let fresh = Golden_stats.vector ~sizes name in
  (match
     Obs_golden.diff ~rtol_for:Golden_stats.default_rtol ~golden:perturbed fresh
   with
  | [] -> Alcotest.fail "a one-cycle perturbation must be reported as drift"
  | [ Obs_golden.Drift { key = "crisp.cycles"; _ } ] -> ()
  | ms ->
    Alcotest.failf "expected exactly the perturbed key to drift, got %d mismatches"
      (List.length ms));
  match Obs_golden.diff ~rtol_for:Golden_stats.default_rtol ~golden fresh with
  | [] -> ()
  | ms ->
    Alcotest.failf "unperturbed golden should match (%d mismatches)"
      (List.length ms)

let test_static_golden () =
  match
    Golden_stats.static_check ~dir:goldens_dir ~sizes:Golden_stats.default_sizes ()
  with
  | Ok () -> ()
  | Error report -> Alcotest.fail report

let () =
  Alcotest.run "regress"
    [ ( "harness",
        [ Alcotest.test_case "goldens cover the catalog" `Quick test_catalog_covered;
          Alcotest.test_case "detects drift" `Quick test_detects_drift ] );
      ( "goldens",
        List.map
          (fun name -> Alcotest.test_case name `Slow (test_workload name))
          Catalog.names
        @ [ Alcotest.test_case Golden_stats.static_name `Slow test_static_golden ] ) ]
