(* Tests for the observability layer: ring buffer, histograms, JSON,
   golden diff, the shared scheduler instrumentation hook, exporters, and
   the end-to-end trace self-consistency properties. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Ring buffer ---------------- *)

let test_ring_overflow () =
  let ring = Obs_ring.create ~capacity:4 in
  for i = 0 to 9 do
    Obs_ring.record ring ~cycle:i ~kind:1 ~a:(10 * i) ~b:i
  done;
  check int "length capped at capacity" 4 (Obs_ring.length ring);
  check int "all records counted" 10 (Obs_ring.recorded ring);
  check int "overwritten records counted as dropped" 6 (Obs_ring.dropped ring);
  let seen = ref [] in
  Obs_ring.iter (fun ~cycle ~kind:_ ~a:_ ~b:_ -> seen := cycle :: !seen) ring;
  check (Alcotest.list int) "retains the newest window oldest-first" [ 6; 7; 8; 9 ]
    (List.rev !seen)

let test_ring_binary_roundtrip () =
  let ring = Obs_ring.create ~capacity:8 in
  for i = 0 to 19 do
    Obs_ring.record ring ~cycle:(100 + i) ~kind:(i mod 14) ~a:i ~b:(i * i)
  done;
  let file = Filename.temp_file "crisp_obs" ".ring" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      Obs_ring.write_binary oc ring;
      close_out oc;
      let ic = open_in_bin file in
      let back = Obs_ring.read_binary ic in
      close_in ic;
      check int "length survives" (Obs_ring.length ring) (Obs_ring.length back);
      check int "dropped survives" (Obs_ring.dropped ring) (Obs_ring.dropped back);
      let dump r =
        let events = ref [] in
        Obs_ring.iter
          (fun ~cycle ~kind ~a ~b -> events := (cycle, kind, a, b) :: !events)
          r;
        List.rev !events
      in
      check bool "events survive byte-for-byte" true (dump ring = dump back))

(* ---------------- Histograms ---------------- *)

let test_hist_buckets () =
  let h = Obs_hist.create () in
  List.iter (Obs_hist.add h) [ 0; 1; 2; 3; 8; -5 ];
  check int "count" 6 (Obs_hist.count h);
  check int "sum (negatives clamp to 0)" 14 (Obs_hist.sum h);
  check int "max" 8 (Obs_hist.max_value h);
  check int "bucket of 0" 0 (Obs_hist.bucket_index 0);
  check int "bucket of 1" 1 (Obs_hist.bucket_index 1);
  check int "bucket of 3" 2 (Obs_hist.bucket_index 3);
  check int "bucket of 8" 4 (Obs_hist.bucket_index 8);
  check (Alcotest.list (Alcotest.pair int int)) "bucket contents"
    [ (0, 2); (1, 1); (2, 2); (8, 1) ]
    (Obs_hist.buckets h)

(* ---------------- JSON ---------------- *)

let test_json_roundtrip () =
  let doc =
    Obs_json.Obj
      [ ("name", Obs_json.Str "a\"b\\c\n");
        ("n", Obs_json.num_int 42);
        ("x", Obs_json.Num 0.1);
        ("flags", Obs_json.Arr [ Obs_json.Bool true; Obs_json.Null ]) ]
  in
  check bool "parse inverts print" true (Obs_json.parse (Obs_json.to_string doc) = doc);
  check bool "malformed input raises" true
    (match Obs_json.parse "{\"a\": }" with
    | _ -> false
    | exception Obs_json.Parse_error _ -> true);
  check bool "trailing garbage raises" true
    (match Obs_json.parse "1 2" with
    | _ -> false
    | exception Obs_json.Parse_error _ -> true)

(* ---------------- Golden vectors ---------------- *)

let test_golden_diff () =
  let golden = Obs_golden.normalise [ ("b", 2.); ("a", 1.) ] in
  check int "identical vectors: no mismatch" 0
    (List.length (Obs_golden.diff ~golden [ ("a", 1.); ("b", 2.) ]));
  (match Obs_golden.diff ~golden [ ("a", 1.); ("b", 2.5) ] with
  | [ Obs_golden.Drift { key = "b"; golden = 2.; actual = 2.5; _ } ] -> ()
  | other ->
    Alcotest.failf "expected one drift on b, got %d mismatches" (List.length other));
  (match Obs_golden.diff ~golden [ ("a", 1.) ] with
  | [ Obs_golden.Missing "b" ] -> ()
  | _ -> Alcotest.fail "expected Missing b");
  (match Obs_golden.diff ~golden [ ("a", 1.); ("b", 2.); ("c", 3.) ] with
  | [ Obs_golden.Extra "c" ] -> ()
  | _ -> Alcotest.fail "expected Extra c");
  let rtol_for key = if key = "b" then 0.5 else 0. in
  check int "tolerance absorbs small drift" 0
    (List.length (Obs_golden.diff ~rtol_for ~golden [ ("a", 1.); ("b", 2.5) ]));
  check bool "duplicate keys rejected" true
    (match Obs_golden.normalise [ ("a", 1.); ("a", 2.) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_golden_json_roundtrip () =
  let vector = Obs_golden.normalise [ ("obs.fetch", 123.); ("ooo.ipc", 1.375) ] in
  let meta = [ ("schema", "crisp-golden-1"); ("workload", "unit") ] in
  let meta', vector' =
    Obs_golden.of_json_string (Obs_golden.to_json_string ~meta vector)
  in
  check bool "meta round-trips" true (List.for_all (fun kv -> List.mem kv meta') meta);
  check bool "entries round-trip exactly" true (vector = vector')

(* ---------------- Shared scheduler hook ---------------- *)

let test_hook_fires_once_per_select () =
  let sched = Scheduler.create ~slots:8 Scheduler.Oldest_ready in
  let fired = ref [] in
  Scheduler.set_on_select sched
    (Some (fun ~slot ~prio_override -> fired := (slot, prio_override) :: !fired));
  let slots =
    List.init 3 (fun _ ->
        let s = Option.get (Scheduler.allocate sched ~critical:false) in
        Scheduler.mark_ready sched s;
        s)
  in
  Scheduler.begin_cycle sched;
  let picks = List.filter_map (fun _ -> let s = Scheduler.select sched in
                                if s >= 0 then Some s else None) slots in
  check int "select returned one pick per ready slot" 3 (List.length picks);
  check int "hook fired exactly once per pick" 3 (List.length !fired);
  check bool "hook saw the picked slots in order" true
    (List.rev_map fst !fired = picks);
  check bool "oldest-ready never reports a PRIO override" true
    (List.for_all (fun (_, o) -> not o) !fired);
  Scheduler.set_on_select sched None;
  check bool "no pick left" true (Scheduler.select sched < 0)

let test_hook_reports_prio_override () =
  let sched = Scheduler.create ~slots:8 Scheduler.Crisp in
  let older = Option.get (Scheduler.allocate sched ~critical:false) in
  let younger = Option.get (Scheduler.allocate sched ~critical:true) in
  Scheduler.mark_ready sched older;
  Scheduler.mark_ready sched younger;
  let fired = ref [] in
  Scheduler.set_on_select sched
    (Some (fun ~slot ~prio_override -> fired := (slot, prio_override) :: !fired));
  Scheduler.begin_cycle sched;
  check int "PRIO picks the younger critical instruction" younger
    (Scheduler.select sched);
  check int "and then the older one" older (Scheduler.select sched);
  match List.rev !fired with
  | [ (s1, o1); (s2, o2) ] ->
    check int "first hook slot" younger s1;
    check bool "critical-over-oldest pick is an override" true o1;
    check int "second hook slot" older s2;
    check bool "draining the remaining oldest is not an override" false o2
  | fired -> Alcotest.failf "expected 2 hook firings, got %d" (List.length fired)

(* ---------------- Zero-cost-when-off: bit-identical statistics -------- *)

let test_obs_off_stats_identical () =
  let w = Catalog.make ~instrs:8_000 "pointer_chase" in
  let trace = Workload.trace w in
  List.iter
    (fun (label, policy, criticality) ->
      let cfg = Cpu_config.with_policy policy Cpu_config.skylake in
      let base = Cpu_core.run ~criticality cfg trace in
      let traced_cfg = Cpu_config.with_obs true cfg in
      let tracer = Obs_tracer.create () in
      let traced = Cpu_core.run ~criticality ~tracer traced_cfg trace in
      check bool (label ^ ": obs on leaves stats bit-identical") true (base = traced);
      check int (label ^ ": tracer saw every retirement")
        base.Cpu_stats.retired (Obs_tracer.counter tracer "retire");
      (* Scoreboard and tracer share the single scheduler hook: both
         observers on at once must also leave statistics untouched. *)
      let both_cfg = Cpu_config.with_scoreboard true traced_cfg in
      let both_tracer = Obs_tracer.create () in
      let both = Cpu_core.run ~criticality ~tracer:both_tracer both_cfg trace in
      check bool (label ^ ": scoreboard + tracer on one hook, stats identical")
        true (base = both);
      check int
        (label ^ ": tracer behind the shared hook sees the same selections")
        (Obs_tracer.counter tracer "select")
        (Obs_tracer.counter both_tracer "select"))
    [ ("oldest_ready", Scheduler.Oldest_ready, Cpu_core.No_tags);
      ("crisp", Scheduler.Crisp, Cpu_core.Static_tags (fun pc -> pc mod 3 = 0));
      ("random", Scheduler.Random_ready, Cpu_core.No_tags) ]

(* ---------------- Trace self-consistency (property) ---------------- *)

(* Random little programs in the idiom of test_check: a loop of blocks
   mixing gathers, stores, arithmetic and data-dependent branches. *)
let random_trace seed =
  let rng = Prng.create (4_000 + seed) in
  let words = 512 in
  let base = 0x20000 in
  let mem = Hashtbl.create 256 in
  for i = 0 to words - 1 do
    Hashtbl.replace mem (base + (i * 8)) (Prng.int rng 1_000_000)
  done;
  let reg () = 1 + Prng.int rng 8 in
  let alu_kinds = [| Isa.Add; Isa.Sub; Isa.Xor; Isa.And; Isa.Or; Isa.Shr |] in
  let open Program in
  let block b =
    let body =
      List.concat
        (List.init
           (2 + Prng.int rng 4)
           (fun _ ->
             match Prng.int rng 6 with
             | 0 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm base);
                 Ld (reg (), 9, 0) ]
             | 1 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm base);
                 St (reg (), 9, 0) ]
             | 2 -> [ Mul (reg (), reg (), reg ()) ]
             | 3 -> [ Fdiv (reg (), reg (), reg ()) ]
             | 4 -> [ Fadd (reg (), reg (), reg ()) ]
             | _ ->
               [ Alu
                   ( alu_kinds.(Prng.int rng (Array.length alu_kinds)),
                     reg (), reg (),
                     if Prng.int rng 2 = 0 then Reg (reg ())
                     else Imm (Prng.int rng 64) ) ]))
    in
    let skip = Printf.sprintf "skip%d" b in
    body
    @ [ Br ((if Prng.int rng 2 = 0 then Isa.Lt else Isa.Ge), reg (),
            Imm (Prng.int rng 128), skip);
        Alu (Isa.Xor, reg (), reg (), Imm b);
        Label skip ]
  in
  let blocks = 2 + Prng.int rng 3 in
  let code =
    [ Label "loop" ]
    @ List.concat (List.init blocks block)
    @ [ Alu (Isa.Add, 10, 10, Imm 1); Br (Isa.Lt, 10, Imm 1_000_000, "loop"); Halt ]
  in
  let reg_init = List.init 10 (fun r -> (r + 1, Prng.int rng 1_000)) in
  Executor.run ~reg_init ~mem_init:mem ~max_instrs:5_000
    (assemble ~name:(Printf.sprintf "obs_random%d" seed) code)

let check_trace_consistency label (stats : Cpu_stats.t) tracer =
  let c = Obs_tracer.counter tracer in
  let ce name expected =
    if c name <> expected then
      QCheck.Test.fail_reportf "%s: counter %s = %d, expected %d" label name
        (c name) expected
  in
  (* The model executes no wrong path, so every fetched instruction flows
     through each stage exactly once. *)
  ce "fetch" stats.Cpu_stats.retired;
  ce "dispatch" stats.retired;
  ce "issue" stats.retired;
  ce "complete" stats.retired;
  ce "retire" stats.retired;
  ce "retire_critical" stats.critical_retired;
  ce "cycles_sampled" stats.cycles;
  ce "redirect_mispredict" stats.branch_mispredicts;
  ce "redirect_btb_miss" stats.btb_misses;
  ce "redirect_ras" stats.ras_mispredicts;
  ce "l1i_miss" stats.mem.Memory_system.l1i_misses;
  ce "prefetch" stats.mem.prefetches_issued;
  if c "l1d_miss_llc" + c "l1d_miss_mem" <> stats.mem.l1d_misses then
    QCheck.Test.fail_reportf "%s: l1d miss events %d+%d <> stats %d" label
      (c "l1d_miss_llc") (c "l1d_miss_mem") stats.mem.l1d_misses;
  if c "select" < c "issue" then
    QCheck.Test.fail_reportf "%s: %d selections < %d issues" label (c "select")
      (c "issue");
  (* Every event the tracer ever counted went through the ring. *)
  let ring_total =
    List.fold_left
      (fun acc (name, v) ->
        if name = "events_recorded" || name = "events_dropped"
           || name = "cycles_sampled" || name = "prio_override"
           || name = "retire_critical"
        then acc
        else acc + v)
      0 (Obs_tracer.counters tracer)
  in
  if ring_total <> c "events_recorded" then
    QCheck.Test.fail_reportf "%s: counters sum to %d events but ring recorded %d"
      label ring_total (c "events_recorded");
  (* Per-instruction stage stamps are monotone and complete. *)
  let retired_stamps = ref 0 in
  for dyn = 0 to Obs_tracer.num_dyns tracer - 1 do
    match Obs_tracer.stamp tracer dyn with
    | None -> ()
    | Some st ->
      if st.Obs_tracer.retire >= 0 then begin
        incr retired_stamps;
        if st.fetch < 0 || st.dispatch < 0 || st.issue < 0 || st.complete < 0 then
          QCheck.Test.fail_reportf "%s: dyn %d retired without passing every stage"
            label dyn;
        if
          not
            (st.fetch <= st.dispatch && st.dispatch <= st.issue
            && st.issue <= st.complete && st.complete <= st.retire)
        then
          QCheck.Test.fail_reportf
            "%s: dyn %d stage cycles not monotone (%d %d %d %d %d)" label dyn
            st.fetch st.dispatch st.issue st.complete st.retire
      end
  done;
  if !retired_stamps <> stats.retired then
    QCheck.Test.fail_reportf "%s: %d stamped retirements, stats say %d" label
      !retired_stamps stats.retired;
  true

let prop_trace_self_consistent =
  QCheck.Test.make
    ~name:"tracer events reconcile with Cpu_stats on random programs" ~count:10
    QCheck.small_int (fun seed ->
      let trace = random_trace seed in
      List.for_all
        (fun (label, policy, criticality) ->
          let cfg =
            Cpu_config.with_obs true
              (Cpu_config.with_policy policy Cpu_config.skylake)
          in
          let tracer = Obs_tracer.create () in
          let stats = Cpu_core.run ~criticality ~tracer cfg trace in
          check_trace_consistency (Printf.sprintf "seed %d %s" seed label) stats
            tracer)
        [ ("oldest_ready", Scheduler.Oldest_ready, Cpu_core.No_tags);
          ("crisp", Scheduler.Crisp,
           Cpu_core.Static_tags (fun pc -> pc mod 3 = 0)) ])

(* ---------------- Exporters ---------------- *)

let traced_pointer_chase =
  lazy
    (let w = Catalog.make ~instrs:6_000 "pointer_chase" in
     let trace = Workload.trace w in
     let cfg =
       Cpu_config.with_obs true
         (Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake)
     in
     let tracer = Obs_tracer.create () in
     let stats =
       Cpu_core.run ~criticality:(Cpu_core.Static_tags (fun pc -> pc mod 3 = 0))
         ~tracer cfg trace
     in
     (stats, tracer))

let test_jsonl_export_parses () =
  let _, tracer = Lazy.force traced_pointer_chase in
  let buf = Buffer.create 4096 in
  Obs_export.jsonl buf tracer;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check int "one line per retained ring event"
    (Obs_ring.length (Obs_tracer.ring tracer))
    (List.length lines);
  List.iter
    (fun line ->
      match Obs_json.parse line with
      | Obs_json.Obj fields ->
        List.iter
          (fun f ->
            if not (List.mem_assoc f fields) then
              Alcotest.failf "jsonl line missing %S: %s" f line)
          [ "c"; "k"; "a"; "b" ]
      | _ -> Alcotest.failf "jsonl line is not an object: %s" line)
    lines

let test_chrome_export_valid () =
  let stats, tracer = Lazy.force traced_pointer_chase in
  let buf = Buffer.create 65536 in
  Obs_export.chrome_trace buf tracer;
  match Obs_json.parse (Buffer.contents buf) with
  | Obs_json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Obs_json.Arr events) ->
      check bool "trace has events" true (events <> []);
      let durations =
        List.filter
          (fun e ->
            match Obs_json.member "ph" e with
            | Some (Obs_json.Str "X") -> true
            | _ -> false)
          events
      in
      check int "one duration event per retired instruction"
        stats.Cpu_stats.retired (List.length durations);
      List.iter
        (fun e ->
          let num f =
            match Obs_json.member f e with
            | Some v -> Obs_json.to_float v
            | None -> Alcotest.failf "X event missing %S" f
          in
          if num "dur" < 1. then Alcotest.fail "X event with dur < 1";
          if num "ts" < 0. then Alcotest.fail "X event with negative ts")
        durations
    | _ -> Alcotest.fail "traceEvents missing or not an array")
  | _ -> Alcotest.fail "chrome trace is not a JSON object"

let () =
  Alcotest.run "obs"
    [ ( "ring",
        [ Alcotest.test_case "overflow" `Quick test_ring_overflow;
          Alcotest.test_case "binary round-trip" `Quick test_ring_binary_roundtrip ] );
      ("hist", [ Alcotest.test_case "buckets" `Quick test_hist_buckets ]);
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "golden",
        [ Alcotest.test_case "diff" `Quick test_golden_diff;
          Alcotest.test_case "json round-trip" `Quick test_golden_json_roundtrip ] );
      ( "hook",
        [ Alcotest.test_case "fires once per select" `Quick
            test_hook_fires_once_per_select;
          Alcotest.test_case "reports PRIO overrides" `Quick
            test_hook_reports_prio_override ] );
      ( "pipeline",
        [ Alcotest.test_case "stats identical with obs off/on" `Slow
            test_obs_off_stats_identical;
          QCheck_alcotest.to_alcotest prop_trace_self_consistent ] );
      ( "export",
        [ Alcotest.test_case "jsonl parses" `Quick test_jsonl_export_parses;
          Alcotest.test_case "chrome trace valid" `Quick test_chrome_export_valid ] ) ]
