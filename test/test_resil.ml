(* Tests for the resilience layer: deterministic backoff, fault plans,
   supervised jobs with timeout/retry, the checksummed checkpoint
   journal, integrity-sealed memoisation in Runner, and the end-to-end
   property that a faulted figure grid is byte-identical across worker
   counts with every divergence reported. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let floats = Alcotest.float 1e-12

(* Every test leaves the global fault-injection and resilience state
   clean, whatever happens. *)
let isolated f () =
  Fun.protect f ~finally:(fun () ->
      Resil.Fault_plan.disarm ();
      Resil.Log.clear ();
      Experiments.set_resilience Resil.Supervise.default_policy;
      Experiments.set_pool Exec.Pool.sequential;
      Runner.clear_cache ())

(* ---------------- Clock / Backoff ---------------- *)

let test_clock_monotone () =
  let rec go n last =
    if n > 0 then begin
      let t = Resil.Clock.now () in
      check bool "non-decreasing" true (t >= last);
      go (n - 1) t
    end
  in
  go 1000 (Resil.Clock.now ())

let test_backoff_deterministic () =
  let p = Resil.Backoff.default in
  let d1 = Resil.Backoff.delay p ~seed:7 ~ident:"fig7/mcf/0" ~attempt:2 in
  let d2 = Resil.Backoff.delay p ~seed:7 ~ident:"fig7/mcf/0" ~attempt:2 in
  check floats "same inputs, same delay" d1 d2;
  let other = Resil.Backoff.delay p ~seed:8 ~ident:"fig7/mcf/0" ~attempt:2 in
  check bool "seed changes the jitter" true (Float.abs (d1 -. other) > 1e-9);
  let sched = Resil.Backoff.schedule p ~seed:7 ~ident:"x" ~attempts:12 in
  check int "schedule length" 12 (List.length sched);
  let bound = p.Resil.Backoff.max_delay *. (1. +. p.Resil.Backoff.jitter) in
  List.iter
    (fun d -> check bool "0 <= delay <= jittered cap" true (d >= 0. && d <= bound))
    sched;
  (* the nominal component grows until the cap *)
  check bool "later attempts back off more" true
    (List.nth sched 3 > List.nth sched 0)

let test_backoff_sleep () =
  (* A tiny schedule so the test stays fast: sleep must last (at least)
     the deterministic delay it is documented to equal. *)
  let p = { Resil.Backoff.base = 0.02; factor = 1.0; max_delay = 0.02; jitter = 0. } in
  let d = Resil.Backoff.delay p ~seed:3 ~ident:"sleepy" ~attempt:1 in
  check floats "jitter-free delay is the base" 0.02 d;
  let t0 = Unix.gettimeofday () in
  Resil.Backoff.sleep p ~seed:3 ~ident:"sleepy" ~attempt:1;
  let dt = Unix.gettimeofday () -. t0 in
  check bool "sleep lasts the scheduled delay" true (dt >= 0.015 && dt < 2.)

(* ---------------- Fault_plan ---------------- *)

let parse_ok spec =
  match Resil.Fault_plan.parse_spec spec with
  | Ok t -> t
  | Error msg -> Alcotest.failf "spec %S rejected: %s" spec msg

let test_parse_spec () =
  let open Resil.Fault_plan in
  (match parse_ok "runner.run:crash+1@mcf" with
  | { site = "runner.run"; selector = Substring "mcf"; count = From 1;
      action = Throw } -> ()
  | _ -> Alcotest.fail "crash+1@mcf misparsed");
  (match parse_ok "journal.write:corrupt#1" with
  | { site = "journal.write"; selector = Any; count = Nth 1; action = Corrupt }
    -> ()
  | _ -> Alcotest.fail "corrupt#1 misparsed");
  (* count and selector accepted in either order *)
  (match parse_ok "runner.run:stall=2@mcf#1" with
  | { site = "runner.run"; selector = Substring "mcf"; count = Nth 1;
      action = Stall s } ->
    check floats "stall seconds" 2.0 s
  | _ -> Alcotest.fail "stall=2@mcf#1 misparsed");
  (match parse_ok "runner.run:stall=2#1@mcf" with
  | { selector = Substring "mcf"; count = Nth 1; action = Stall _; _ } -> ()
  | _ -> Alcotest.fail "stall=2#1@mcf misparsed");
  (match parse_ok "pool.job:stall" with
  | { action = Stall s; _ } -> check floats "bare stall is 1s" 1.0 s
  | _ -> Alcotest.fail "bare stall misparsed");
  let rejected spec =
    match Resil.Fault_plan.parse_spec spec with
    | Ok _ -> Alcotest.failf "spec %S wrongly accepted" spec
    | Error _ -> ()
  in
  rejected "no-colon";
  rejected "site:frobnicate";
  rejected "site:crash#0";
  rejected "site:crash#x";
  rejected ":crash";
  rejected "site:stall=abc"

let test_fault_plan_firing () =
  let open Resil.Fault_plan in
  let plan =
    make
      [ { site = "runner.run"; selector = Substring "mcf"; count = Nth 2;
          action = Throw } ]
  in
  arm plan;
  (* first hit of the matching ident: armed but not yet the 2nd hit *)
  hit ~ident:"fig7/mcf/0" "runner.run";
  (* non-matching idents never trip it *)
  for _ = 1 to 5 do
    hit ~ident:"fig7/namd/0" "runner.run"
  done;
  (* other sites keep their own counters *)
  hit ~ident:"fig7/mcf/0" "pool.job";
  check bool "second hit of the armed ident throws" true
    (match hit ~ident:"fig7/mcf/0" "runner.run" with
    | () -> false
    | exception Injected "runner.run" -> true
    | exception _ -> false);
  check int "per-ident counter" 2 (hits ~ident:"fig7/mcf/0" "runner.run");
  check int "sibling ident unaffected" 5 (hits ~ident:"fig7/namd/0" "runner.run");
  (match fired () with
  | [ ("runner.run", "fig7/mcf/0", Throw) ] -> ()
  | l -> Alcotest.failf "fired log has %d entries" (List.length l));
  disarm ();
  (* disarmed sites are inert no-ops *)
  hit ~ident:"fig7/mcf/0" "runner.run"

let test_mangle_deterministic () =
  let open Resil.Fault_plan in
  arm
    (make
       [ { site = "journal.write"; selector = Any; count = From 1;
           action = Corrupt } ]);
  let payload = "some checkpoint payload bytes" in
  let a = mangle ~ident:"k" "journal.write" payload in
  let b = mangle ~ident:"k" "journal.write" payload in
  check bool "corruption changes the payload" true (a <> payload);
  check Alcotest.string "corruption is a pure function of the input" a b;
  check Alcotest.string "other sites pass through" payload
    (mangle ~ident:"k" "journal.read" payload);
  disarm ();
  check Alcotest.string "disarmed mangle is identity" payload
    (mangle ~ident:"k" "journal.write" payload)

(* The farm's wire sites are registered control sites, but seeded
   random plans must keep picking only compute-path sites so historical
   grid-chaos seeds keep their meaning. *)
let test_farm_sites () =
  let open Resil.Fault_plan in
  check bool "farm.send registered" true (List.mem "farm.send" standard_sites);
  check bool "farm.connect registered" true
    (List.mem "farm.connect" standard_sites);
  for seed = 0 to 19 do
    List.iter
      (fun tr ->
        if String.length tr.site >= 5 && String.sub tr.site 0 5 = "farm." then
          Alcotest.failf "random plan (seed %d) targets wire site %s" seed
            tr.site)
      (triggers (random ~seed ()))
  done;
  (* An armed farm-site trigger fires like any other control site. *)
  arm
    (make
       [ { site = "farm.connect"; selector = Any; count = Nth 1; action = Throw } ]);
  check bool "farm.connect trigger fires" true
    (match hit ~ident:"sock" "farm.connect" with
    | () -> false
    | exception Injected "farm.connect" -> true
    | exception _ -> false);
  disarm ()

(* ---------------- Supervise ---------------- *)

let seq_policy = Resil.Supervise.default_policy

let test_supervise_ok_and_crash () =
  let pool = Exec.Pool.sequential in
  (match Resil.Supervise.run pool seq_policy ~ident:"ok" (fun () -> 41 + 1) with
  | Ok v -> check int "value" 42 v
  | Error e -> Alcotest.failf "unexpected %s" (Resil.Supervise.error_to_string e));
  match
    Resil.Supervise.run pool seq_policy ~ident:"boom" (fun () -> failwith "boom")
  with
  | Error (Resil.Supervise.Crashed (Failure msg)) when msg = "boom" -> ()
  | Ok _ -> Alcotest.fail "crash not surfaced"
  | Error e -> Alcotest.failf "wrong taxonomy: %s" (Resil.Supervise.error_to_string e)

let test_supervise_retry_schedule () =
  let pool = Exec.Pool.sequential in
  let policy = { seq_policy with Resil.Supervise.retries = 3; seed = 11 } in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts <= 2 then failwith "transient" else 99
  in
  Resil.Log.clear ();
  (match Resil.Supervise.run pool policy ~ident:"flaky" flaky with
  | Ok v -> check int "recovers after transients" 99 v
  | Error e -> Alcotest.failf "unexpected %s" (Resil.Supervise.error_to_string e));
  check int "three attempts" 3 !attempts;
  let retries =
    List.filter_map
      (function
        | Resil.Log.Retry { attempt; delay; _ } -> Some (attempt, delay)
        | _ -> None)
      (Resil.Log.events ())
  in
  let expected k =
    Resil.Backoff.delay policy.Resil.Supervise.backoff ~seed:11 ~ident:"flaky"
      ~attempt:k
  in
  (match retries with
  | [ (1, d0); (2, d1) ] ->
    check floats "retry 1 sleeps the seeded backoff" (expected 0) d0;
    check floats "retry 2 sleeps the seeded backoff" (expected 1) d1
  | l -> Alcotest.failf "expected 2 retry events, got %d" (List.length l));
  (* exhausting the budget reports Gave_up with the last exception *)
  match
    Resil.Supervise.run pool
      { policy with Resil.Supervise.retries = 1 }
      ~ident:"hopeless"
      (fun () -> failwith "always")
  with
  | Error (Resil.Supervise.Gave_up (Failure msg)) when msg = "always" -> ()
  | Ok _ -> Alcotest.fail "hopeless job succeeded?"
  | Error e -> Alcotest.failf "wrong taxonomy: %s" (Resil.Supervise.error_to_string e)

let test_supervise_timeout_both_pools () =
  let policy =
    { seq_policy with Resil.Supervise.deadline = Some 0.02; retries = 5 }
  in
  let attempts = ref 0 in
  let slow () =
    incr attempts;
    Unix.sleepf 0.08;
    7
  in
  (* Sequential pool: the thunk runs inline, so the timeout must be
     classified post hoc from the recorded stamps. *)
  (match Resil.Supervise.run Exec.Pool.sequential policy ~ident:"slow" slow with
  | Error (Resil.Supervise.Timeout d) -> check floats "deadline reported" 0.02 d
  | Ok _ -> Alcotest.fail "sequential: timeout missed"
  | Error e -> Alcotest.failf "wrong taxonomy: %s" (Resil.Supervise.error_to_string e));
  check int "timeouts are not retried" 1 !attempts;
  (* Pooled: the watchdog abandons the attempt mid-flight. *)
  let pool = Exec.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      match Resil.Supervise.run pool policy ~ident:"slow2" slow with
      | Error (Resil.Supervise.Timeout _) -> ()
      | Ok _ -> Alcotest.fail "pooled: timeout missed"
      | Error e ->
        Alcotest.failf "wrong taxonomy: %s" (Resil.Supervise.error_to_string e))

let test_supervise_quarantine_not_retried () =
  let attempts = ref 0 in
  match
    Resil.Supervise.run Exec.Pool.sequential
      { seq_policy with Resil.Supervise.retries = 5 }
      ~ident:"q"
      (fun () ->
        incr attempts;
        raise (Resil.Supervise.Quarantined_failure "poisoned cache"))
  with
  | Error (Resil.Supervise.Quarantined "poisoned cache") ->
    check int "no retries burned on quarantine" 1 !attempts
  | Ok _ -> Alcotest.fail "quarantine swallowed"
  | Error e -> Alcotest.failf "wrong taxonomy: %s" (Resil.Supervise.error_to_string e)

(* ---------------- Journal ---------------- *)

let with_temp_journal f =
  let path = Filename.temp_file "crisp_test" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".bad"; path ^ ".tmp" ])
    (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal @@ fun path ->
  let j = Resil.Journal.load ~path ~signature:"sig-v1" in
  check int "starts empty" 0 (Resil.Journal.size j);
  Resil.Journal.record j ~key:"fig4/mcf/0" ~payload:"\x00binary\npayload\xff";
  Resil.Journal.record j ~key:"fig4/namd/0" ~payload:"second";
  Resil.Journal.record j ~key:"fig4/mcf/0" ~payload:"replaced";
  check int "replace keeps one entry per key" 2 (Resil.Journal.size j);
  (* a fresh load (a "new process") sees the validated payloads *)
  let j2 = Resil.Journal.load ~path ~signature:"sig-v1" in
  check (Alcotest.option Alcotest.string) "binary-safe payload"
    (Some "replaced")
    (Resil.Journal.find j2 "fig4/mcf/0");
  check (Alcotest.option Alcotest.string) "second entry" (Some "second")
    (Resil.Journal.find j2 "fig4/namd/0");
  check int "nothing quarantined" 0 (Resil.Journal.quarantined j2);
  (* keys are whitespace-sanitized, not trusted *)
  Resil.Journal.record j2 ~key:"has space" ~payload:"x";
  check (Alcotest.option Alcotest.string) "sanitized key" (Some "x")
    (Resil.Journal.find j2 "has_space")

let test_journal_signature_mismatch () =
  with_temp_journal @@ fun path ->
  let j = Resil.Journal.load ~path ~signature:"eval=100" in
  Resil.Journal.record j ~key:"k" ~payload:"v";
  Resil.Log.clear ();
  let stale = Resil.Journal.load ~path ~signature:"eval=200" in
  check int "stale journal yields nothing" 0 (Resil.Journal.size stale);
  check int "whole file quarantined" 1 (Resil.Journal.quarantined stale);
  check bool "original moved to .bad" true (Sys.file_exists (path ^ ".bad"));
  check bool "quarantine logged" true
    (List.exists
       (function Resil.Log.Quarantined _ -> true | _ -> false)
       (Resil.Log.events ()))

let test_journal_corrupt_entry_quarantined () =
  with_temp_journal @@ fun path ->
  let j = Resil.Journal.load ~path ~signature:"s" in
  Resil.Journal.record j ~key:"good" ~payload:"intact";
  Resil.Journal.record j ~key:"bad" ~payload:"to-be-damaged";
  (* flip one payload byte of the "bad" entry on disk *)
  let lines =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let damaged =
    List.map
      (fun line ->
        if String.length line > 4 && String.sub line 0 4 = "bad " then begin
          let b = Bytes.of_string line in
          let last = Bytes.length b - 1 in
          Bytes.set b last (if Bytes.get b last = '0' then '1' else '0');
          Bytes.to_string b
        end
        else line)
      lines
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) damaged;
  close_out oc;
  Resil.Log.clear ();
  let j2 = Resil.Journal.load ~path ~signature:"s" in
  check (Alcotest.option Alcotest.string) "intact entry survives"
    (Some "intact") (Resil.Journal.find j2 "good");
  check (Alcotest.option Alcotest.string) "damaged entry dropped, never served"
    None (Resil.Journal.find j2 "bad");
  check int "one quarantine" 1 (Resil.Journal.quarantined j2);
  check bool "damaged line preserved in .bad" true
    (Sys.file_exists (path ^ ".bad"))

let test_journal_write_corruption_detected_on_load () =
  with_temp_journal @@ fun path ->
  Resil.Fault_plan.arm
    (Resil.Fault_plan.make
       [ { Resil.Fault_plan.site = "journal.write";
           selector = Resil.Fault_plan.Any;
           count = Resil.Fault_plan.Nth 1;
           action = Resil.Fault_plan.Corrupt } ]);
  let j = Resil.Journal.load ~path ~signature:"s" in
  Resil.Journal.record j ~key:"c" ~payload:"true payload";
  (* the writer process still serves the truth... *)
  check (Alcotest.option Alcotest.string) "writer serves the true payload"
    (Some "true payload") (Resil.Journal.find j "c");
  Resil.Fault_plan.disarm ();
  (* ...and the corruption written to disk fails its checksum on load *)
  let j2 = Resil.Journal.load ~path ~signature:"s" in
  check (Alcotest.option Alcotest.string) "corrupt checkpoint never trusted"
    None (Resil.Journal.find j2 "c");
  check int "quarantined on load" 1 (Resil.Journal.quarantined j2)

(* Several named journals in one process (the farm daemon's layout):
   distinct files, no cross-talk, names sanitised to safe slugs. *)
let test_journal_named_in_dir () =
  let dir = Filename.temp_file "crisp_test" ".dir" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let cells = Resil.Journal.in_dir ~dir ~name:"cells" ~signature:"cells-v1" in
      let server = Resil.Journal.in_dir ~dir ~name:"server" ~signature:"server-v1" in
      Resil.Journal.record cells ~key:"cell/a" ~payload:"1.5";
      Resil.Journal.record server ~key:"requests_served" ~payload:"7";
      check bool "distinct files" true
        (Resil.Journal.path cells <> Resil.Journal.path server);
      check (Alcotest.option Alcotest.string) "no cross-talk" None
        (Resil.Journal.find cells "requests_served");
      (* fresh loads see their own journal only *)
      let cells2 = Resil.Journal.in_dir ~dir ~name:"cells" ~signature:"cells-v1" in
      let server2 = Resil.Journal.in_dir ~dir ~name:"server" ~signature:"server-v1" in
      check (Alcotest.option Alcotest.string) "cells survive" (Some "1.5")
        (Resil.Journal.find cells2 "cell/a");
      check (Alcotest.option Alcotest.string) "server state survives" (Some "7")
        (Resil.Journal.find server2 "requests_served");
      (* hostile names become filesystem-safe slugs inside dir *)
      let weird = Resil.Journal.in_dir ~dir ~name:"../esc ape" ~signature:"w" in
      check bool "sanitised path stays in dir" true
        (Filename.dirname (Resil.Journal.path weird) = dir);
      match Resil.Journal.in_dir ~dir ~name:"" ~signature:"w" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "empty journal name accepted")

(* Two instances accidentally opened on the same path append whole lines
   (no clobbering); a fresh load sees every entry, last line per key
   winning. *)
let test_journal_same_path_two_instances () =
  with_temp_journal @@ fun path ->
  let j1 = Resil.Journal.load ~path ~signature:"s" in
  let j2 = Resil.Journal.load ~path ~signature:"s" in
  Resil.Journal.record j1 ~key:"a" ~payload:"from-j1";
  Resil.Journal.record j2 ~key:"b" ~payload:"from-j2";
  Resil.Journal.record j1 ~key:"shared" ~payload:"old";
  Resil.Journal.record j2 ~key:"shared" ~payload:"new";
  let fresh = Resil.Journal.load ~path ~signature:"s" in
  check int "all keys survive interleaved writers" 3 (Resil.Journal.size fresh);
  check int "nothing quarantined" 0 (Resil.Journal.quarantined fresh);
  check (Alcotest.option Alcotest.string) "j1 entry kept" (Some "from-j1")
    (Resil.Journal.find fresh "a");
  check (Alcotest.option Alcotest.string) "j2 entry kept" (Some "from-j2")
    (Resil.Journal.find fresh "b");
  check (Alcotest.option Alcotest.string) "last line wins" (Some "new")
    (Resil.Journal.find fresh "shared")

(* ---------------- Runner memo integrity ---------------- *)

let test_runner_memo_corruption_recovers () =
  Runner.clear_cache ();
  let run () =
    Runner.evaluate ~eval_instrs:3_000 ~train_instrs:2_000 ~name:"pointer_chase"
      Runner.Ooo
  in
  let clean = run () in
  Runner.clear_cache ();
  Resil.Log.clear ();
  (* corrupt the sealed memo entry as it is stored; the next lookup must
     detect it, evict, recompute, and return the correct statistics *)
  Resil.Fault_plan.arm
    (Resil.Fault_plan.make
       [ { Resil.Fault_plan.site = "memo.store";
           selector = Resil.Fault_plan.Any;
           count = Resil.Fault_plan.Nth 1;
           action = Resil.Fault_plan.Corrupt } ]);
  let first = run () in
  let second = run () in
  Resil.Fault_plan.disarm ();
  check bool "first result correct" true (first.Runner.stats = clean.Runner.stats);
  check bool "recomputed result correct" true
    (second.Runner.stats = clean.Runner.stats);
  check bool "corruption was quarantined, not trusted" true
    (List.exists
       (function Resil.Log.Quarantined _ -> true | _ -> false)
       (Resil.Log.events ()))

(* ---------------- Determinism across worker counts ---------------- *)

(* A synthetic supervised grid under a seeded random fault plan: results
   (incl. the error taxonomy) and the retry schedule must be identical
   at 1, 2 and 8 workers, because fault counters are keyed per cell
   ident and backoff is a pure function of (seed, ident, attempt). *)
let run_synthetic_grid ~workers ~seed =
  let pool =
    if workers <= 1 then Exec.Pool.sequential else Exec.Pool.create ~workers ()
  in
  Fun.protect
    ~finally:(fun () ->
      Resil.Fault_plan.disarm ();
      if workers > 1 then Exec.Pool.shutdown pool)
    (fun () ->
      Resil.Log.clear ();
      Resil.Fault_plan.arm (Resil.Fault_plan.random ~seed ~stall:0.002 ());
      let policy =
        { Resil.Supervise.default_policy with Resil.Supervise.retries = 2; seed }
      in
      let idents =
        List.concat_map
          (fun i ->
            List.map (fun j -> Printf.sprintf "grid/app%d/%d" i j) [ 0; 1; 2 ])
          [ 0; 1; 2; 3 ]
      in
      let handles =
        List.map
          (fun ident ->
            ( ident,
              Resil.Supervise.spawn pool policy ~ident (fun () ->
                  Hashtbl.hash ident land 0xffff) ))
          idents
      in
      let results =
        List.map
          (fun (ident, h) ->
            let r =
              match Resil.Supervise.join h with
              | Ok v -> Printf.sprintf "ok:%d" v
              | Error e -> "error:" ^ Resil.Supervise.error_to_string e
            in
            (ident, r))
          handles
      in
      let retries =
        List.map
          (fun (id, evs) ->
            ( id,
              List.filter_map
                (function
                  | Resil.Log.Retry { attempt; delay; _ } -> Some (attempt, delay)
                  | _ -> None)
                evs ))
          (Resil.Log.by_ident ())
      in
      (results, retries))

let test_synthetic_grid_determinism () =
  let prop seed =
    let reference = run_synthetic_grid ~workers:1 ~seed in
    List.for_all
      (fun workers -> run_synthetic_grid ~workers ~seed = reference)
      [ 2; 8 ]
  in
  let t =
    QCheck.Test.make ~count:8
      ~name:"same seed+plan => same verdicts and retry schedule at 1/2/8 workers"
      QCheck.small_nat prop
  in
  QCheck_alcotest.to_alcotest t

(* ---------------- Figure-level determinism under faults ---------------- *)

let capture_stdout f =
  let file = Filename.temp_file "crisp_test" ".out" in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect f ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved);
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in_noerr ic;
  Sys.remove file;
  contents

let fig4_under_faults ~jobs =
  let pool =
    if jobs <= 1 then Exec.Pool.sequential else Exec.Pool.create ~workers:jobs ()
  in
  Experiments.set_pool pool;
  Fun.protect
    ~finally:(fun () ->
      Resil.Fault_plan.disarm ();
      Experiments.set_resilience Resil.Supervise.default_policy;
      Experiments.set_pool Exec.Pool.sequential;
      if jobs > 1 then Exec.Pool.shutdown pool;
      Runner.clear_cache ())
    (fun () ->
      Runner.clear_cache ();
      Resil.Log.clear ();
      Resil.Fault_plan.arm
        (Resil.Fault_plan.make
           [ parse_ok "runner.run:crash+1@mcf"; parse_ok "pool.job:crash#1@namd" ]);
      Experiments.set_resilience
        { Resil.Supervise.default_policy with Resil.Supervise.retries = 1; seed = 3 };
      let sizes = { Experiments.eval_instrs = 4_000; train_instrs = 3_000 } in
      let out = capture_stdout (fun () -> ignore (Experiments.fig4 ~sizes ())) in
      let degraded =
        List.filter_map
          (function
            | Resil.Log.Degraded { ident; error } -> Some (ident, error)
            | _ -> None)
          (Resil.Log.events ())
        |> List.sort compare
      in
      (out, degraded))

let test_fig4_identical_across_jobs_under_faults () =
  let ref_out, ref_degraded = fig4_under_faults ~jobs:1 in
  check bool "the mcf cell degraded" true
    (List.exists (fun (id, _) -> id = "fig4/mcf/0") ref_degraded);
  (* the namd cell's pool.job crash is retried once (Nth 1) and recovers *)
  check bool "the namd cell recovered by retry" true
    (not (List.exists (fun (id, _) -> id = "fig4/namd/0") ref_degraded));
  List.iter
    (fun jobs ->
      let out, degraded = fig4_under_faults ~jobs in
      check Alcotest.string
        (Printf.sprintf "figure text identical at %d jobs" jobs)
        ref_out out;
      check bool
        (Printf.sprintf "same degraded cells at %d jobs" jobs)
        true
        (degraded = ref_degraded))
    [ 2 ]

(* ---------------- Journal + grid: resume recomputes only missing ---------------- *)

let test_grid_resume_from_journal () =
  with_temp_journal @@ fun path ->
  let sizes = { Experiments.eval_instrs = 4_000; train_instrs = 3_000 } in
  Runner.clear_cache ();
  Resil.Log.clear ();
  let clean = capture_stdout (fun () -> ignore (Experiments.fig4 ~sizes ())) in
  (* First journaled run: mcf crashes (no retries), everything else is
     checkpointed. *)
  Runner.clear_cache ();
  Resil.Log.clear ();
  Resil.Fault_plan.arm
    (Resil.Fault_plan.make [ parse_ok "runner.run:crash#1@mcf" ]);
  Experiments.set_resilience
    ~journal:(Resil.Journal.load ~path ~signature:"fig4-test")
    Resil.Supervise.default_policy;
  let faulted = capture_stdout (fun () -> ignore (Experiments.fig4 ~sizes ())) in
  check bool "faulted output differs (mcf degraded)" true (faulted <> clean);
  (* Resume: the Nth=1 crash is consumed, so the one missing cell
     recomputes cleanly; everything else restores from the journal. *)
  Runner.clear_cache ();
  Resil.Log.clear ();
  Experiments.set_resilience
    ~journal:(Resil.Journal.load ~path ~signature:"fig4-test")
    Resil.Supervise.default_policy;
  let resumed = capture_stdout (fun () -> ignore (Experiments.fig4 ~sizes ())) in
  Resil.Fault_plan.disarm ();
  check Alcotest.string "resumed run matches the clean figure byte-for-byte"
    clean resumed;
  let _, _, degraded, _, restored = Resil.Log.counts () in
  check int "no degradation on resume" 0 degraded;
  check int "all but the crashed cell restored" 15 restored

let () =
  Alcotest.run "resil"
    [ ( "clock+backoff",
        [ Alcotest.test_case "clock-monotone" `Quick (isolated test_clock_monotone);
          Alcotest.test_case "backoff-deterministic" `Quick
            (isolated test_backoff_deterministic);
          Alcotest.test_case "backoff-sleep" `Quick (isolated test_backoff_sleep) ] );
      ( "fault_plan",
        [ Alcotest.test_case "parse-spec" `Quick (isolated test_parse_spec);
          Alcotest.test_case "firing" `Quick (isolated test_fault_plan_firing);
          Alcotest.test_case "mangle-deterministic" `Quick
            (isolated test_mangle_deterministic);
          Alcotest.test_case "farm-wire-sites" `Quick (isolated test_farm_sites) ] );
      ( "supervise",
        [ Alcotest.test_case "ok-and-crash" `Quick
            (isolated test_supervise_ok_and_crash);
          Alcotest.test_case "retry-schedule" `Quick
            (isolated test_supervise_retry_schedule);
          Alcotest.test_case "timeout-both-pools" `Slow
            (isolated test_supervise_timeout_both_pools);
          Alcotest.test_case "quarantine-not-retried" `Quick
            (isolated test_supervise_quarantine_not_retried) ] );
      ( "journal",
        [ Alcotest.test_case "roundtrip" `Quick (isolated test_journal_roundtrip);
          Alcotest.test_case "signature-mismatch" `Quick
            (isolated test_journal_signature_mismatch);
          Alcotest.test_case "corrupt-entry" `Quick
            (isolated test_journal_corrupt_entry_quarantined);
          Alcotest.test_case "write-corruption-detected" `Quick
            (isolated test_journal_write_corruption_detected_on_load);
          Alcotest.test_case "named-journals-in-dir" `Quick
            (isolated test_journal_named_in_dir);
          Alcotest.test_case "same-path-two-instances" `Quick
            (isolated test_journal_same_path_two_instances) ] );
      ( "runner",
        [ Alcotest.test_case "memo-corruption-recovers" `Slow
            (isolated test_runner_memo_corruption_recovers) ] );
      ( "determinism",
        [ test_synthetic_grid_determinism ();
          Alcotest.test_case "fig4-under-faults-1-vs-2-jobs" `Slow
            (isolated test_fig4_identical_across_jobs_under_faults) ] );
      ( "resume",
        [ Alcotest.test_case "grid-resume-from-journal" `Slow
            (isolated test_grid_resume_from_journal) ] ) ]
