(* Tests for the simulation farm: the length-prefixed frame layer (loud
   rejection of truncated/oversized/garbage input), qcheck roundtrips of
   the JSON wire protocol, and the end-to-end daemon property — two
   concurrent clients with overlapping grids get rows identical to the
   sequential runner while overlapping cells simulate exactly once, and
   a restarted daemon serves journalled cells without recomputing. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let tmpdir =
  let counter = ref 0 in
  fun () ->
    let rec go () =
      incr counter;
      (* Short paths: the socket lives here and sun_path is ~107 bytes. *)
      let p =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "cfarm%d.%d" (Unix.getpid ()) !counter)
      in
      match Unix.mkdir p 0o700 with
      | () -> p
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go ()
    in
    go ()

(* ---------------- Farm_frame ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = Farm_frame.encode payload in
      check int "frame size" (4 + String.length payload) (String.length wire);
      match Farm_frame.decode wire ~pos:0 with
      | Some (p, next) ->
        check string "payload survives" payload p;
        check int "cursor lands at end" (String.length wire) next
      | None -> Alcotest.fail "complete frame not decoded")
    [ ""; "x"; "{\"req\":\"ping\"}"; String.make 4096 'a' ]

let test_frame_incomplete_prefix () =
  let wire = Farm_frame.encode "hello world" in
  for cut = 0 to String.length wire - 1 do
    match Farm_frame.decode (String.sub wire 0 cut) ~pos:0 with
    | None -> ()
    | Some _ -> Alcotest.failf "decoded a %d-byte prefix of a %d-byte frame" cut
                  (String.length wire)
  done

let test_frame_oversized_rejected () =
  (match Farm_frame.encode (String.make (Farm_frame.max_frame_bytes + 1) 'x') with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted");
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 0x7fffffffl;
  (match Farm_frame.decode (Bytes.to_string huge) ~pos:0 with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "oversized declared length accepted");
  let negative = Bytes.create 4 in
  Bytes.set_int32_be negative 0 (-1l);
  match Farm_frame.decode (Bytes.to_string negative) ~pos:0 with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "negative declared length accepted"

(* Channel-level read: write raw bytes to a file, read them back as
   frames — exactly what a confused or dying peer looks like. *)
let read_frames_of_bytes bytes =
  let path = Filename.temp_file "cfarm_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Farm_frame.read ic with
            | Some p -> go (p :: acc)
            | None -> Ok (List.rev acc)
            | exception Farm_frame.Frame_error msg -> Error msg
          in
          go []))

let test_frame_read_streams () =
  (match read_frames_of_bytes (Farm_frame.encode "a" ^ Farm_frame.encode "bb") with
  | Ok [ "a"; "bb" ] -> ()
  | Ok other -> Alcotest.failf "wrong frames: %d" (List.length other)
  | Error msg -> Alcotest.failf "clean stream rejected: %s" msg);
  (match read_frames_of_bytes "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty stream is a clean EOF");
  (* Truncated mid-header and mid-payload both fail loudly. *)
  let wire = Farm_frame.encode "payload" in
  (match read_frames_of_bytes (String.sub wire 0 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated header accepted");
  (match read_frames_of_bytes (String.sub wire 0 (String.length wire - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload accepted");
  (* Garbage header bytes decode as an absurd length. *)
  match read_frames_of_bytes "GARBAGE-NOT-A-FRAME" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted as a frame"

(* ---------------- Farm_frame fd layer: deadlines, torn streams ---------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    (fun () -> f a b)
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Sever a two-frame stream at every byte boundary: the reader must
   deliver exactly the complete frames, then diagnose a clean EOF at a
   frame boundary or a torn frame anywhere else — and never hang. *)
let test_fd_truncate_every_boundary () =
  let f1 = Farm_frame.encode "hello" in
  let wire = f1 ^ Farm_frame.encode "world!!" in
  let boundary1 = String.length f1 in
  for cut = 0 to String.length wire do
    with_socketpair @@ fun a b ->
    write_all a (String.sub wire 0 cut);
    Unix.close a;
    let complete =
      if cut >= String.length wire then 2 else if cut >= boundary1 then 1 else 0
    in
    let at_boundary =
      cut = 0 || cut = boundary1 || cut = String.length wire
    in
    let rec drain n =
      match Farm_frame.read_fd ~idle_timeout:5. ~io_timeout:5. b with
      | `Frame _ -> drain (n + 1)
      | `Eof -> `Clean n
      | `Idle_timeout | `Timeout | `Abort -> `Hung
      | exception Farm_frame.Frame_error _ -> `Torn n
    in
    match drain 0 with
    | `Clean n ->
      if not (n = complete && at_boundary) then
        Alcotest.failf "cut %d: clean EOF with %d frame(s), expected %d at %s"
          cut n complete (if at_boundary then "a boundary" else "mid-frame")
    | `Torn n ->
      if not (n = complete && not at_boundary) then
        Alcotest.failf "cut %d: torn after %d frame(s)" cut n
    | `Hung -> Alcotest.failf "cut %d: reader hit a deadline instead of diagnosing" cut
  done

let test_fd_idle_timeout () =
  with_socketpair @@ fun _a b ->
  let t0 = Unix.gettimeofday () in
  match Farm_frame.read_fd ~idle_timeout:0.15 ~io_timeout:5. b with
  | `Idle_timeout ->
    check bool "reaped promptly" true (Unix.gettimeofday () -. t0 < 3.)
  | _ -> Alcotest.fail "expected Idle_timeout on a silent connection"

(* The slowloris signature: bytes keep arriving, so an idle deadline
   never fires, but the frame never completes — the io deadline must
   count from the frame's first byte and not reset per byte. *)
let test_fd_slowloris_timeout () =
  with_socketpair @@ fun a b ->
  let wire = Farm_frame.encode "a payload long enough to trickle" in
  let stop = Atomic.make false in
  let trickler =
    Thread.create
      (fun () ->
        String.iter
          (fun c ->
            if not (Atomic.get stop) then begin
              (try write_all a (String.make 1 c) with Unix.Unix_error _ -> ());
              Thread.delay 0.05
            end)
          wire)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let r = Farm_frame.read_fd ~idle_timeout:10. ~io_timeout:0.25 b in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Thread.join trickler;
  (match r with
  | `Timeout -> ()
  | _ -> Alcotest.fail "trickling one byte at a time must trip the io deadline");
  check bool "evicted around the io deadline, not the idle one" true
    (dt >= 0.2 && dt < 5.)

let test_fd_poll_abort () =
  with_socketpair @@ fun _a b ->
  let flag = Atomic.make false in
  let setter =
    Thread.create (fun () -> Thread.delay 0.1; Atomic.set flag true) ()
  in
  (match Farm_frame.read_fd ~idle_timeout:10. ~poll:(fun () -> Atomic.get flag) b with
  | `Abort -> ()
  | _ -> Alcotest.fail "expected Abort when the poll callback flips");
  Thread.join setter

(* A dead reader: the peer never drains its socket, so once the kernel
   buffers fill, a deadline-guarded write must give up loudly. *)
let test_fd_write_deadline_dead_reader () =
  with_socketpair @@ fun a _b ->
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 1 with Unix.Unix_error _ -> ());
  Unix.set_nonblock a;
  let payload = String.make 4096 'x' in
  let t0 = Unix.gettimeofday () in
  match
    for _ = 1 to 10_000 do
      Farm_frame.write_fd ~io_timeout:0.2 a payload
    done
  with
  | () -> Alcotest.fail "10k frames into a dead reader never tripped the deadline"
  | exception Farm_frame.Io_timeout _ ->
    check bool "dead reader detected promptly" true
      (Unix.gettimeofday () -. t0 < 10.)

let test_fd_roundtrip () =
  with_socketpair @@ fun a b ->
  List.iter
    (fun p ->
      Farm_frame.write_fd ~io_timeout:5. a p;
      match Farm_frame.read_fd ~idle_timeout:5. ~io_timeout:5. b with
      | `Frame got -> check string "fd roundtrip" p got
      | _ -> Alcotest.fail "expected a frame")
    [ ""; "x"; "{\"req\":\"ping\"}"; String.make 70_000 'q' ]

(* ---------------- Farm_protocol roundtrips ---------------- *)

(* Encoding is deterministic, so [encode (decode (encode m)) = encode m]
   is a full roundtrip property that sidesteps NaN <> NaN float
   comparison in message records. *)

let gen_name =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let gen_label =
  (* Printable text with the characters JSON must escape. *)
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range ' ' '~'; return '"'; return '\\' ])
      (int_range 0 16))

let gen_float =
  QCheck.Gen.(
    oneof
      [ float;
        oneofl [ 0.; -0.; 1e-300; 1.7976931348623157e308; 0.0423728813559322 ] ])

let gen_column =
  let open QCheck.Gen in
  let* label = gen_label in
  let* variant = gen_name in
  let* threshold = opt gen_float in
  let* window = opt (pair (int_range 1 512) (int_range 1 1024)) in
  return { Grid.label; variant; threshold; window }

(* "" (full fidelity, omitted from the wire) plus canonical sampled
   configs as {!Sample_config.to_string} prints them. *)
let gen_sample =
  QCheck.Gen.oneofl
    [ ""; "units=30,unit=1000,warmup=2000";
      "units=8,unit=500,warmup=1000,ci=0.01" ]

let gen_request =
  let open QCheck.Gen in
  oneof
    [ return Farm_protocol.Ping;
      return Farm_protocol.Stats;
      return Farm_protocol.Shutdown;
      (let* id = gen_name in
       let* tag = gen_name in
       let* metric =
         oneofl [ Grid.Gain; Grid.Slice_size; Grid.Static_count ]
       in
       let* eval_instrs = int_range 0 1_000_000 in
       let* train_instrs = int_range 0 1_000_000 in
       let* names = list_size (int_range 0 6) gen_name in
       let* columns = list_size (int_range 0 6) gen_column in
       let* sample = gen_sample in
       return
         (Farm_protocol.Run_grid
            { id; tag; metric; eval_instrs; train_instrs; names; columns;
              sample })) ]

let gen_memo_stats =
  let open QCheck.Gen in
  let* hits = small_nat and* misses = small_nat and* dedups = small_nat in
  let* evictions = small_nat and* entries = small_nat in
  return { Exec.Memo.hits; misses; dedups; evictions; entries }

let gen_pool_stats =
  let open QCheck.Gen in
  let* workers = int_range 1 64 and* queued = small_nat in
  let* running = small_nat and* stolen = small_nat in
  return { Exec.Pool.workers; queued; running; stolen }

let gen_farm_stats =
  let open QCheck.Gen in
  let* memo = gen_memo_stats and* pool = gen_pool_stats in
  let* journal_cells = small_nat and* requests_served = small_nat in
  let* sampled_cells = small_nat in
  return
    { Farm_protocol.memo; pool; journal_cells; requests_served; sampled_cells }

let gen_response =
  let open QCheck.Gen in
  oneof
    [ return Farm_protocol.Pong;
      return Farm_protocol.Shutting_down;
      return Farm_protocol.Draining;
      (let* retry_after_ms = small_nat in
       return (Farm_protocol.Overloaded { retry_after_ms }));
      (let* s = gen_farm_stats in
       return (Farm_protocol.Stats_reply s));
      (let* msg = gen_label in
       return (Farm_protocol.Error_reply msg));
      (let* req_id = gen_name in
       let* reason = gen_label in
       let* diags = list_size (int_range 0 4) gen_label in
       return (Farm_protocol.Invalid_request { req_id; reason; diags }));
      (let* cell_id = gen_name in
       let* row = small_nat and* col = small_nat in
       let* name = gen_name and* label = gen_label in
       let* source =
         oneofl
           [ Farm_protocol.Computed; Farm_protocol.Memo_hit;
             Farm_protocol.Journal_hit ]
       in
       let* outcome =
         oneof
           [ (let* v = gen_float in
              return (Ok v));
             (let* r = gen_label in
              return (Error r)) ]
       in
       return
         (Farm_protocol.Cell { cell_id; row; col; name; label; source; outcome }));
      (let* req_id = gen_name in
       let* cells = small_nat and* computed = small_nat in
       let* memo_hits = small_nat and* journal_hits = small_nat in
       let* degraded = small_nat and* farm = gen_farm_stats in
       let* sample = gen_sample in
       return
         (Farm_protocol.Summary
            { req_id; cells; computed; memo_hits; journal_hits; degraded;
              sample; farm }))
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request roundtrips through the wire" ~count:200
    (QCheck.make gen_request ~print:Farm_protocol.encode_request)
    (fun req ->
      let wire = Farm_protocol.encode_request req in
      match Farm_protocol.decode_request wire with
      | Error msg -> QCheck.Test.fail_reportf "decode rejected %s: %s" wire msg
      | Ok req' -> String.equal wire (Farm_protocol.encode_request req'))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response roundtrips through the wire" ~count:200
    (QCheck.make gen_response ~print:Farm_protocol.encode_response)
    (fun resp ->
      let wire = Farm_protocol.encode_response resp in
      match Farm_protocol.decode_response wire with
      | Error msg -> QCheck.Test.fail_reportf "decode rejected %s: %s" wire msg
      | Ok resp' -> String.equal wire (Farm_protocol.encode_response resp'))

(* Frames also survive the framing layer unchanged. *)
let prop_framed_roundtrip =
  QCheck.Test.make ~name:"framed message survives encode+decode" ~count:100
    (QCheck.make gen_request ~print:Farm_protocol.encode_request)
    (fun req ->
      let payload = Farm_protocol.encode_request req in
      match Farm_frame.decode (Farm_frame.encode payload) ~pos:0 with
      | Some (p, _) -> String.equal p payload
      | None -> false)

let test_decode_rejects_garbage () =
  let rejected what s decode =
    match decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted: %s" what s
  in
  List.iter
    (fun s ->
      rejected "request" s Farm_protocol.decode_request;
      rejected "response" s Farm_protocol.decode_response)
    [ ""; "{"; "null"; "42"; "\"ping\""; "{}"; "{\"req\":\"warp\"}";
      "{\"resp\":\"warp\"}"; "{\"req\":\"grid\",\"id\":\"x\"}" ];
  (* Structurally valid JSON with broken fields. *)
  rejected "float row index"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1.5,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"memo\",\"ok\":1}"
    Farm_protocol.decode_response;
  rejected "unknown source"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"psychic\",\"ok\":1}"
    Farm_protocol.decode_response;
  rejected "conflicting outcome"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"memo\",\"ok\":1,\"degraded\":\"r\"}"
    Farm_protocol.decode_response;
  rejected "rejection without a reason"
    "{\"resp\":\"invalid\",\"id\":\"r\",\"diags\":[]}"
    Farm_protocol.decode_response;
  rejected "rejection with non-string diags"
    "{\"resp\":\"invalid\",\"id\":\"r\",\"reason\":\"no\",\"diags\":[1]}"
    Farm_protocol.decode_response;
  rejected "overloaded with a negative retry hint"
    "{\"resp\":\"overloaded\",\"retry_after_ms\":-5}"
    Farm_protocol.decode_response;
  rejected "overloaded without a retry hint"
    "{\"resp\":\"overloaded\"}"
    Farm_protocol.decode_response;
  rejected "overloaded with a float retry hint"
    "{\"resp\":\"overloaded\",\"retry_after_ms\":1.5}"
    Farm_protocol.decode_response;
  rejected "bad window arity"
    "{\"req\":\"grid\",\"id\":\"i\",\"tag\":\"t\",\"metric\":\"gain\",\
     \"eval_instrs\":1,\"train_instrs\":1,\"names\":[],\
     \"columns\":[{\"label\":\"l\",\"variant\":\"crisp\",\"window\":[1]}]}"
    Farm_protocol.decode_request

(* Full-fidelity frames must be byte-identical to the pre-sampling
   protocol: the sample field only travels when non-empty, and a
   pre-sampling daemon's frames (no sample, no sampled_cells) still
   decode. *)
let test_sample_wire_compat () =
  let req sample =
    Farm_protocol.Run_grid
      { id = "i"; tag = "t"; metric = Grid.Gain; eval_instrs = 1;
        train_instrs = 1; names = [ "xz" ]; columns = []; sample }
  in
  let contains ~sub s =
    let n = String.length sub and len = String.length s in
    let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let full = Farm_protocol.encode_request (req "") in
  check bool "full-run request carries no sample key" false
    (contains ~sub:"sample" full);
  let sampled =
    Farm_protocol.encode_request (req "units=30,unit=1000,warmup=2000")
  in
  check bool "sampled request carries the config" true
    (contains ~sub:"units=30,unit=1000,warmup=2000" sampled);
  (match Farm_protocol.decode_request sampled with
  | Ok (Farm_protocol.Run_grid g) ->
    check string "config round-trips" "units=30,unit=1000,warmup=2000"
      g.Farm_protocol.sample
  | Ok _ | Error _ -> Alcotest.fail "sampled request did not decode");
  (* A pre-sampling peer's frames decode with the defaults. *)
  match
    Farm_protocol.decode_request
      "{\"req\":\"grid\",\"id\":\"i\",\"tag\":\"t\",\"metric\":\"gain\",\
       \"eval_instrs\":1,\"train_instrs\":1,\"names\":[],\"columns\":[]}"
  with
  | Ok (Farm_protocol.Run_grid g) ->
    check string "absent sample decodes as full fidelity" ""
      g.Farm_protocol.sample
  | Ok _ | Error _ -> Alcotest.fail "pre-sampling request did not decode"

(* ---------------- end-to-end daemon ---------------- *)

let small_eval = 4000
let small_train = 3000

let col ?threshold ?window label variant =
  { Grid.label; variant; threshold; window }

(* Two grids with different tags that overlap on the (pointer_chase, xz)
   x crisp cells: cell identity must be tag-independent. *)
let grid_a : Grid.spec =
  { tag = "farm-a"; title = "farm A"; with_mean = false; metric = Grid.Gain;
    columns = [ col "CRISP" "crisp"; col "IBDA-1K" "ibda-1k" ];
    names = [ "pointer_chase"; "xz" ] }

let grid_b : Grid.spec =
  { tag = "farm-b"; title = "farm B"; with_mean = false; metric = Grid.Gain;
    columns = [ col "CRISP" "crisp" ];
    names = [ "pointer_chase"; "xz"; "nab" ] }

let with_server ?journal_dir ?(limits = Farm_server.default_limits) ~workers f =
  let dir = tmpdir () in
  let socket = Filename.concat dir "s" in
  let pool =
    if workers <= 1 then Exec.Pool.sequential
    else Exec.Pool.create ~workers ()
  in
  let srv =
    Farm_server.create
      { Farm_server.socket; pool; policy = Resil.Supervise.default_policy;
        journal_dir; verbose = false; limits }
  in
  let th = Thread.create Farm_server.run srv in
  Fun.protect
    (fun () -> f ~socket ~srv)
    ~finally:(fun () ->
      Farm_server.stop srv;
      Thread.join th;
      if workers > 1 then Exec.Pool.shutdown pool)

let connect ?io_timeout socket =
  let rec go n =
    match Farm_client.connect ?io_timeout ~socket () with
    | c -> c
    | exception Farm_client.Disconnected _ when n > 0 ->
      Thread.delay 0.02;
      go (n - 1)
  in
  go 250

let run_one socket (spec : Grid.spec) =
  let c = connect socket in
  Fun.protect
    ~finally:(fun () -> Farm_client.close c)
    (fun () ->
      Farm_client.run_grid c ~spec ~eval_instrs:small_eval
        ~train_instrs:small_train ())

(* The sequential reference: what `experiments --jobs 1` computes for the
   same spec (Grid.cell_value is exactly its cell function). *)
let reference (spec : Grid.spec) =
  List.map
    (fun name ->
      ( name,
        List.map
          (Grid.cell_value ~eval_instrs:small_eval ~train_instrs:small_train
             ~name ~metric:spec.Grid.metric)
          spec.Grid.columns ))
    spec.Grid.names

let check_rows what expected (rows : (string * float list) list) =
  (* Exact float equality: the wire must not perturb a single bit. *)
  check bool what true (expected = rows)

let test_farm_matches_sequential_exactly_once () =
  Runner.clear_cache ();
  with_server ~workers:2 @@ fun ~socket ~srv ->
  let results = Array.make 2 None in
  let client i spec () = results.(i) <- Some (run_one socket spec) in
  let t1 = Thread.create (client 0 grid_a) () in
  let t2 = Thread.create (client 1 grid_b) () in
  Thread.join t1;
  Thread.join t2;
  let ra = Option.get results.(0) and rb = Option.get results.(1) in
  check int "grid A streamed all cells" 4 ra.Farm_client.summary.Farm_protocol.cells;
  check int "grid B streamed all cells" 3 rb.Farm_client.summary.Farm_protocol.cells;
  check int "nothing degraded" 0
    (ra.Farm_client.summary.Farm_protocol.degraded
    + rb.Farm_client.summary.Farm_protocol.degraded);
  (* Exactly-once across clients: 4 + 3 cells, 2 overlapping -> 5 unique
     simulations, 2 served as hits or in-flight dedups. *)
  let st = Farm_server.stats srv in
  check int "unique cells simulated exactly once" 5
    st.Farm_protocol.memo.Exec.Memo.misses;
  check int "overlapping cells shared, not recomputed" 2
    (st.Farm_protocol.memo.Exec.Memo.hits
    + st.Farm_protocol.memo.Exec.Memo.dedups);
  check int "per-request accounting agrees" 5
    (ra.Farm_client.summary.Farm_protocol.computed
    + rb.Farm_client.summary.Farm_protocol.computed);
  (* Identical to the sequential runner, recomputed from scratch. *)
  Runner.clear_cache ();
  check_rows "grid A rows identical to sequential runner" (reference grid_a)
    ra.Farm_client.rows;
  check_rows "grid B rows identical to sequential runner" (reference grid_b)
    rb.Farm_client.rows

let test_farm_restart_serves_from_journal () =
  Runner.clear_cache ();
  let jdir = tmpdir () in
  let first =
    with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv:_ ->
    run_one socket grid_b
  in
  check int "first run computes everything" 3
    first.Farm_client.summary.Farm_protocol.computed;
  (* Cold restart: fresh server state, cold runner memo.  The journal on
     disk is all that survives. *)
  Runner.clear_cache ();
  let misses_before = (Runner.cache_stats ()).Exec.Memo.misses in
  let second =
    with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv:_ ->
    run_one socket grid_b
  in
  check int "restart recomputes nothing" 0
    second.Farm_client.summary.Farm_protocol.computed;
  check int "every cell restored from the journal" 3
    second.Farm_client.summary.Farm_protocol.journal_hits;
  let misses_after = (Runner.cache_stats ()).Exec.Memo.misses in
  check int "no simulation ran after the restart" misses_before misses_after;
  check bool "journalled rows identical to computed rows" true
    (first.Farm_client.rows = second.Farm_client.rows)

(* A peer speaking garbage gets a loud error and a closed connection,
   and the daemon survives to serve the next client. *)
let test_daemon_rejects_garbage_loudly () =
  with_server ~workers:1 @@ fun ~socket ~srv:_ ->
  (* Wait until the daemon is accepting before talking raw bytes. *)
  Farm_client.close (connect socket);
  let talk bytes =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc bytes;
    flush oc;
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let rec drain acc =
      match Farm_frame.read ic with
      | Some p -> drain (p :: acc)
      | None -> List.rev acc
      | exception Farm_frame.Frame_error _ -> List.rev acc
      (* The daemon may close with our unread garbage still queued,
         which surfaces as a reset rather than a clean EOF. *)
      | exception Sys_error _ -> List.rev acc
    in
    let frames = drain [] in
    close_in_noerr ic;
    close_out_noerr oc;
    frames
  in
  (* Valid frame, garbage payload: one Error_reply, then EOF. *)
  (match talk (Farm_frame.encode "certainly not json") with
  | [ one ] -> (
    match Farm_protocol.decode_response one with
    | Ok (Farm_protocol.Error_reply _) -> ()
    | _ -> Alcotest.fail "expected an error reply")
  | frames -> Alcotest.failf "expected 1 reply frame, got %d" (List.length frames));
  (* Framing-level garbage: connection dies (optionally after an error
     frame); the daemon must not. *)
  ignore (talk "\xff\xff\xff\xffgarbage");
  let c = connect socket in
  Farm_client.ping c;
  Farm_client.close c

(* A request that fails admission — absurd budget or a malformed grid
   spec — gets a structured rejection before any cell is scheduled, and
   the connection survives to serve the next request. *)
let test_daemon_rejects_inadmissible_grids () =
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  with_server ~workers:1 @@ fun ~socket ~srv ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Farm_client.close c) @@ fun () ->
  let expect_rejection what ~spec ~eval_instrs ~needle =
    match
      Farm_client.run_grid c ~spec ~eval_instrs ~train_instrs:small_train ()
    with
    | _ -> Alcotest.failf "%s: inadmissible request was admitted" what
    | exception Farm_client.Farm_error msg ->
      if not (contains msg needle) then
        Alcotest.failf "%s: rejection %S does not mention %S" what msg needle
  in
  (* Budget sanity: a zero instruction budget can simulate nothing. *)
  expect_rejection "zero eval budget" ~spec:grid_a ~eval_instrs:0
    ~needle:"eval_instrs";
  (* Spec shape: an off-catalog workload fails Grid.validate. *)
  let bad_spec =
    { grid_a with Grid.names = [ "pointer_chase"; "no_such_kernel" ] }
  in
  expect_rejection "off-catalog workload" ~spec:bad_spec ~eval_instrs:small_eval
    ~needle:"malformed grid spec";
  (* Nothing was scheduled, and the same connection still serves. *)
  check int "no request reached the runner" 0
    (Farm_server.stats srv).Farm_protocol.requests_served;
  Farm_client.ping c

(* Sampled and full runs of the same grid must never share memo keys: a
   sampled run issued right after a full run recomputes every cell, the
   daemon counts it, and the summary echoes the canonical config — while
   a sampled rerun hits the sampled entries. *)
let test_daemon_sampled_cells_distinct () =
  Runner.clear_cache ();
  let sample =
    match Sample_config.of_string "units=6,unit=500,warmup=1000" with
    | Ok s -> s
    | Error msg -> Alcotest.failf "sample config rejected: %s" msg
  in
  with_server ~workers:1 @@ fun ~socket ~srv ->
  let run ?sample () =
    let c = connect socket in
    Fun.protect
      ~finally:(fun () -> Farm_client.close c)
      (fun () ->
        Farm_client.run_grid c ?sample ~spec:grid_b ~eval_instrs:small_eval
          ~train_instrs:small_train ())
  in
  let full = run () in
  check int "full run computes all cells" 3
    full.Farm_client.summary.Farm_protocol.computed;
  check string "full summary carries no sample config" ""
    full.Farm_client.summary.Farm_protocol.sample;
  check int "full run counts no sampled cells" 0
    (Farm_server.stats srv).Farm_protocol.sampled_cells;
  let sampled = run ~sample () in
  check int "sampled run shares nothing with the full cells" 3
    sampled.Farm_client.summary.Farm_protocol.computed;
  check string "summary echoes the canonical sample config"
    (Sample_config.to_string sample)
    sampled.Farm_client.summary.Farm_protocol.sample;
  check int "daemon counted the sampled cells" 3
    (Farm_server.stats srv).Farm_protocol.sampled_cells;
  (* A sampled rerun is served from the sampled memo entries. *)
  let again = run ~sample () in
  check int "sampled rerun recomputes nothing" 0
    again.Farm_client.summary.Farm_protocol.computed

(* ---------------- lifecycle: shedding, eviction, drain ---------------- *)

let test_server_sheds_over_cap () =
  with_server
    ~limits:{ Farm_server.default_limits with max_connections = 1 }
    ~workers:1
  @@ fun ~socket ~srv:_ ->
  let c1 = connect socket in
  Fun.protect ~finally:(fun () -> Farm_client.close c1) @@ fun () ->
  Farm_client.ping c1;
  (* c1's handler is live, so the next connection is over cap. *)
  let c2 = connect socket in
  Fun.protect ~finally:(fun () -> Farm_client.close c2) @@ fun () ->
  match Farm_client.ping c2 with
  | () -> Alcotest.fail "over-cap connection was served"
  | exception Farm_client.Overloaded ms ->
    check int "shed carries the configured retry hint" 250 ms

let test_server_recycles_request_budget () =
  with_server
    ~limits:{ Farm_server.default_limits with max_requests_per_conn = 2 }
    ~workers:1
  @@ fun ~socket ~srv:_ ->
  let c = connect socket in
  (Fun.protect ~finally:(fun () -> Farm_client.close c) @@ fun () ->
   Farm_client.ping c;
   Farm_client.ping c;
   match Farm_client.ping c with
   | () -> Alcotest.fail "third request exceeded the connection budget"
   | exception Farm_client.Overloaded 0 -> ()
   | exception Farm_client.Overloaded ms ->
     Alcotest.failf "recycle hint should be 0 (just reconnect), got %d" ms);
  (* Reconnecting gets a fresh budget. *)
  let c2 = connect socket in
  Farm_client.ping c2;
  Farm_client.close c2

(* The acceptance property: a slowloris writer trickling a frame one
   byte at a time is evicted within the io deadline, while a healthy
   client on the same daemon completes its grid undisturbed. *)
let test_server_evicts_slowloris_healthy_unblocked () =
  Runner.clear_cache ();
  with_server
    ~limits:{ Farm_server.default_limits with io_timeout = Some 0.4 }
    ~workers:2
  @@ fun ~socket ~srv:_ ->
  Farm_client.close (connect socket);
  let healthy = ref None in
  let healthy_th =
    Thread.create (fun () -> healthy := Some (run_one socket grid_b)) ()
  in
  let sl = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sl with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sl (Unix.ADDR_UNIX socket);
      (* Start a frame, then trickle: far slower than the 0.4s io
         deadline, far faster than the 600s idle reap. *)
      let t0 = Unix.gettimeofday () in
      write_all sl "\x00\x00";
      let rec trickle i =
        if i > 60 then None
        else
          match write_all sl "\x00" with
          | () ->
            Thread.delay 0.15;
            trickle (i + 1)
          | exception Unix.Unix_error _ -> Some (Unix.gettimeofday () -. t0)
      in
      match trickle 0 with
      | None -> Alcotest.fail "slowloris was never evicted"
      | Some dt ->
        check bool "evicted within the io deadline (plus slack)" true (dt < 5.));
  Thread.join healthy_th;
  match !healthy with
  | None -> Alcotest.fail "healthy client blocked behind the slowloris"
  | Some r ->
    check int "healthy grid complete" 3 r.Farm_client.summary.Farm_protocol.cells;
    Runner.clear_cache ();
    check_rows "healthy rows identical to sequential" (reference grid_b)
      r.Farm_client.rows

(* A dead reader floods requests and never drains a single response;
   the handler's deadline-guarded writes must evict it mid-stream, and
   the daemon keeps serving others. *)
let test_server_evicts_dead_reader () =
  with_server
    ~limits:
      { Farm_server.default_limits with io_timeout = Some 0.4; sndbuf = Some 1 }
    ~workers:1
  @@ fun ~socket ~srv:_ ->
  Farm_client.close (connect socket);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let ping = Farm_frame.encode (Farm_protocol.encode_request Farm_protocol.Ping) in
      let n_sent = ref 0 in
      (try
         for _ = 1 to 3000 do
           write_all fd ping;
           incr n_sent
         done
       with Unix.Unix_error _ -> ());
      (* Give the handler time to fill the send buffer and trip the
         write deadline. *)
      Thread.delay 1.2;
      (* The daemon still serves a healthy client meanwhile. *)
      let c = connect socket in
      Farm_client.ping c;
      Farm_client.close c;
      (* Drain what the dead reader left behind: the connection must be
         dead long before every ping was answered. *)
      let got = ref 0 in
      (try
         let rec drain () =
           match Farm_frame.read_fd ~idle_timeout:1. ~io_timeout:1. fd with
           | `Frame _ ->
             incr got;
             drain ()
           | _ -> ()
         in
         drain ()
       with Farm_frame.Frame_error _ | Unix.Unix_error _ -> ());
      if not (!got < !n_sent) then
        Alcotest.failf "dead reader was served all %d responses" !n_sent)

let test_server_drain_graceful () =
  Runner.clear_cache ();
  let jdir = tmpdir () in
  (with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv ->
   (* An idle connection parked between frames... *)
   let idle = connect socket in
   Farm_client.ping idle;
   (* ...and a grid in flight when the drain begins. *)
   let result = ref None in
   let inflight =
     Thread.create (fun () -> result := Some (run_one socket grid_b)) ()
   in
   Thread.delay 0.05;
   Farm_server.stop srv;
   Thread.join inflight;
   (match !result with
   | None -> Alcotest.fail "in-flight grid lost under drain"
   | Some r ->
     check int "in-flight grid finished streaming under drain" 3
       r.Farm_client.summary.Farm_protocol.cells;
     Runner.clear_cache ();
     check_rows "drained rows identical to sequential" (reference grid_b)
       r.Farm_client.rows);
   (* The idle connection learns about the drain within a poll tick or
      two, via a structured Draining frame (surfaced as Disconnected). *)
   let rec expect_draining n =
     if n = 0 then Alcotest.fail "idle connection never saw the drain"
     else
       match Farm_client.ping idle with
       | () ->
         Thread.delay 0.02;
         expect_draining (n - 1)
       | exception Farm_client.Disconnected _ -> ()
   in
   expect_draining 100;
   Farm_client.close idle);
  (* with_server has joined the run loop: the graceful exit must be on
     record for the next daemon (and the chaos harness) to see. *)
  let j =
    Resil.Journal.in_dir ~dir:jdir ~name:"server"
      ~signature:"crisp-farm server v1"
  in
  match Resil.Journal.find j "clean_shutdown" with
  | Some _ -> ()
  | None -> Alcotest.fail "graceful drain did not journal clean_shutdown"

(* An unparsable served-requests counter must be quarantined loudly,
   never silently trusted or crashed on. *)
let test_server_journal_corruption_quarantined () =
  let jdir = tmpdir () in
  let j =
    Resil.Journal.in_dir ~dir:jdir ~name:"server"
      ~signature:"crisp-farm server v1"
  in
  Resil.Journal.record j ~key:"requests_served" ~payload:"banana";
  Resil.Log.clear ();
  with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv ->
  Farm_client.close (connect socket);
  check int "corrupt counter quarantined to zero" 0
    (Farm_server.stats srv).Farm_protocol.requests_served;
  let quarantined =
    List.exists
      (function
        | Resil.Log.Quarantined { ident = "server/requests_served"; _ } -> true
        | _ -> false)
      (Resil.Log.events ())
  in
  check bool "quarantine recorded in the resilience log" true quarantined

(* ---------------- chaos proxy ---------------- *)

let test_proxy_spec_parsing () =
  let ok s =
    match Chaos_proxy.parse_spec s with
    | Ok tr -> Chaos_proxy.trigger_to_string tr
    | Error e -> Alcotest.failf "spec %S rejected: %s" s e
  in
  check string "default direction and count" "down:drop#1" (ok "drop");
  check string "explicit up" "up:corrupt-len#2" (ok "up:corrupt-len#2");
  check string "stall with duration" "down:stall=0.5#2" (ok "stall=0.5#2");
  check string "from-count" "down:delay=0.2+4" (ok "delay+4");
  List.iter
    (fun s ->
      match Chaos_proxy.parse_spec s with
      | Error _ -> ()
      | Ok tr ->
        Alcotest.failf "bad spec %S accepted as %s" s
          (Chaos_proxy.trigger_to_string tr))
    [ "warp"; "stall=x"; "down:drop#0"; "up:"; "delay=-1"; "truncate#" ]

let with_proxy ~plan ~upstream f =
  let dir = tmpdir () in
  let listen = Filename.concat dir "p" in
  let px = Chaos_proxy.start ~listen ~upstream ~plan in
  Fun.protect
    (fun () -> f ~proxy_socket:listen ~px)
    ~finally:(fun () -> Chaos_proxy.stop px)

let test_proxy_passthrough_byte_identical () =
  Runner.clear_cache ();
  with_server ~workers:2 @@ fun ~socket ~srv:_ ->
  with_proxy ~plan:[] ~upstream:socket @@ fun ~proxy_socket ~px ->
  let r = run_one proxy_socket grid_a in
  check int "all cells through the proxy" 4
    r.Farm_client.summary.Farm_protocol.cells;
  check bool "no faults fired on an empty plan" true (Chaos_proxy.fired px = []);
  check bool "frames actually flowed through the proxy" true
    (Chaos_proxy.frames px Chaos_proxy.Down > 0);
  Runner.clear_cache ();
  check_rows "proxied rows identical to sequential" (reference grid_a)
    r.Farm_client.rows

(* The reconnect-and-resume e2e: a mid-stream disconnect (the proxy
   drops the 3rd downstream frame) forces a retry; the converged rows
   are byte-identical and no cell simulates twice. *)
let test_proxy_drop_reconnect_exactly_once () =
  Runner.clear_cache ();
  with_server ~workers:2 @@ fun ~socket ~srv ->
  let plan =
    [ { Chaos_proxy.direction = Chaos_proxy.Down;
        count = Resil.Fault_plan.Nth 3;
        action = Chaos_proxy.Drop } ]
  in
  with_proxy ~plan ~upstream:socket @@ fun ~proxy_socket ~px ->
  let retry =
    { Farm_client.default_retry with attempts = 6; connect_timeout = 5. }
  in
  let r, attempts =
    Farm_client.run_grid_retrying ~socket:proxy_socket ~retry ~spec:grid_b
      ~eval_instrs:small_eval ~train_instrs:small_train ()
  in
  check bool "the drop actually fired" true (Chaos_proxy.fired px <> []);
  check bool "client had to reconnect" true (attempts >= 2);
  check int "every unique cell simulated exactly once across retries" 3
    (Farm_server.stats srv).Farm_protocol.memo.Exec.Memo.misses;
  check int "converged grid complete" 3 r.Farm_client.summary.Farm_protocol.cells;
  Runner.clear_cache ();
  check_rows "converged rows identical to sequential" (reference grid_b)
    r.Farm_client.rows

let () =
  Alcotest.run "farm"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incomplete prefix" `Quick test_frame_incomplete_prefix;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized_rejected;
          Alcotest.test_case "channel read" `Quick test_frame_read_streams ] );
      ( "fd",
        [ Alcotest.test_case "truncated at every byte boundary" `Quick
            test_fd_truncate_every_boundary;
          Alcotest.test_case "idle timeout reaps silence" `Quick
            test_fd_idle_timeout;
          Alcotest.test_case "slowloris trips the io deadline" `Quick
            test_fd_slowloris_timeout;
          Alcotest.test_case "poll aborts between frames" `Quick
            test_fd_poll_abort;
          Alcotest.test_case "write deadline evicts a dead reader" `Quick
            test_fd_write_deadline_dead_reader;
          Alcotest.test_case "roundtrip" `Quick test_fd_roundtrip ] );
      ( "protocol",
        [ QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_framed_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "sample wire compat" `Quick
            test_sample_wire_compat ] );
      ( "daemon",
        [ Alcotest.test_case "concurrent clients, exact dedup" `Quick
            test_farm_matches_sequential_exactly_once;
          Alcotest.test_case "restart serves from journal" `Quick
            test_farm_restart_serves_from_journal;
          Alcotest.test_case "garbage rejected loudly" `Quick
            test_daemon_rejects_garbage_loudly;
          Alcotest.test_case "inadmissible grids rejected" `Quick
            test_daemon_rejects_inadmissible_grids;
          Alcotest.test_case "sampled cells keyed apart from full" `Quick
            test_daemon_sampled_cells_distinct ] );
      ( "lifecycle",
        [ Alcotest.test_case "over-cap connections shed" `Quick
            test_server_sheds_over_cap;
          Alcotest.test_case "request budget recycles connections" `Quick
            test_server_recycles_request_budget;
          Alcotest.test_case "slowloris evicted, healthy client served" `Quick
            test_server_evicts_slowloris_healthy_unblocked;
          Alcotest.test_case "dead reader evicted mid-stream" `Quick
            test_server_evicts_dead_reader;
          Alcotest.test_case "graceful drain" `Quick test_server_drain_graceful;
          Alcotest.test_case "corrupt counter journal quarantined" `Quick
            test_server_journal_corruption_quarantined ] );
      ( "proxy",
        [ Alcotest.test_case "wire-fault specs parse" `Quick
            test_proxy_spec_parsing;
          Alcotest.test_case "empty plan is a transparent wire" `Quick
            test_proxy_passthrough_byte_identical;
          Alcotest.test_case "drop mid-stream, reconnect, exactly once" `Quick
            test_proxy_drop_reconnect_exactly_once ] ) ]
