(* Tests for the simulation farm: the length-prefixed frame layer (loud
   rejection of truncated/oversized/garbage input), qcheck roundtrips of
   the JSON wire protocol, and the end-to-end daemon property — two
   concurrent clients with overlapping grids get rows identical to the
   sequential runner while overlapping cells simulate exactly once, and
   a restarted daemon serves journalled cells without recomputing. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let tmpdir =
  let counter = ref 0 in
  fun () ->
    let rec go () =
      incr counter;
      (* Short paths: the socket lives here and sun_path is ~107 bytes. *)
      let p =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "cfarm%d.%d" (Unix.getpid ()) !counter)
      in
      match Unix.mkdir p 0o700 with
      | () -> p
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go ()
    in
    go ()

(* ---------------- Farm_frame ---------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let wire = Farm_frame.encode payload in
      check int "frame size" (4 + String.length payload) (String.length wire);
      match Farm_frame.decode wire ~pos:0 with
      | Some (p, next) ->
        check string "payload survives" payload p;
        check int "cursor lands at end" (String.length wire) next
      | None -> Alcotest.fail "complete frame not decoded")
    [ ""; "x"; "{\"req\":\"ping\"}"; String.make 4096 'a' ]

let test_frame_incomplete_prefix () =
  let wire = Farm_frame.encode "hello world" in
  for cut = 0 to String.length wire - 1 do
    match Farm_frame.decode (String.sub wire 0 cut) ~pos:0 with
    | None -> ()
    | Some _ -> Alcotest.failf "decoded a %d-byte prefix of a %d-byte frame" cut
                  (String.length wire)
  done

let test_frame_oversized_rejected () =
  (match Farm_frame.encode (String.make (Farm_frame.max_payload + 1) 'x') with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted");
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 0x7fffffffl;
  (match Farm_frame.decode (Bytes.to_string huge) ~pos:0 with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "oversized declared length accepted");
  let negative = Bytes.create 4 in
  Bytes.set_int32_be negative 0 (-1l);
  match Farm_frame.decode (Bytes.to_string negative) ~pos:0 with
  | exception Farm_frame.Frame_error _ -> ()
  | _ -> Alcotest.fail "negative declared length accepted"

(* Channel-level read: write raw bytes to a file, read them back as
   frames — exactly what a confused or dying peer looks like. *)
let read_frames_of_bytes bytes =
  let path = Filename.temp_file "cfarm_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Farm_frame.read ic with
            | Some p -> go (p :: acc)
            | None -> Ok (List.rev acc)
            | exception Farm_frame.Frame_error msg -> Error msg
          in
          go []))

let test_frame_read_streams () =
  (match read_frames_of_bytes (Farm_frame.encode "a" ^ Farm_frame.encode "bb") with
  | Ok [ "a"; "bb" ] -> ()
  | Ok other -> Alcotest.failf "wrong frames: %d" (List.length other)
  | Error msg -> Alcotest.failf "clean stream rejected: %s" msg);
  (match read_frames_of_bytes "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty stream is a clean EOF");
  (* Truncated mid-header and mid-payload both fail loudly. *)
  let wire = Farm_frame.encode "payload" in
  (match read_frames_of_bytes (String.sub wire 0 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated header accepted");
  (match read_frames_of_bytes (String.sub wire 0 (String.length wire - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload accepted");
  (* Garbage header bytes decode as an absurd length. *)
  match read_frames_of_bytes "GARBAGE-NOT-A-FRAME" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted as a frame"

(* ---------------- Farm_protocol roundtrips ---------------- *)

(* Encoding is deterministic, so [encode (decode (encode m)) = encode m]
   is a full roundtrip property that sidesteps NaN <> NaN float
   comparison in message records. *)

let gen_name =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let gen_label =
  (* Printable text with the characters JSON must escape. *)
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range ' ' '~'; return '"'; return '\\' ])
      (int_range 0 16))

let gen_float =
  QCheck.Gen.(
    oneof
      [ float;
        oneofl [ 0.; -0.; 1e-300; 1.7976931348623157e308; 0.0423728813559322 ] ])

let gen_column =
  let open QCheck.Gen in
  let* label = gen_label in
  let* variant = gen_name in
  let* threshold = opt gen_float in
  let* window = opt (pair (int_range 1 512) (int_range 1 1024)) in
  return { Grid.label; variant; threshold; window }

let gen_request =
  let open QCheck.Gen in
  oneof
    [ return Farm_protocol.Ping;
      return Farm_protocol.Stats;
      return Farm_protocol.Shutdown;
      (let* id = gen_name in
       let* tag = gen_name in
       let* metric =
         oneofl [ Grid.Gain; Grid.Slice_size; Grid.Static_count ]
       in
       let* eval_instrs = int_range 0 1_000_000 in
       let* train_instrs = int_range 0 1_000_000 in
       let* names = list_size (int_range 0 6) gen_name in
       let* columns = list_size (int_range 0 6) gen_column in
       return
         (Farm_protocol.Run_grid
            { id; tag; metric; eval_instrs; train_instrs; names; columns })) ]

let gen_memo_stats =
  let open QCheck.Gen in
  let* hits = small_nat and* misses = small_nat and* dedups = small_nat in
  let* evictions = small_nat and* entries = small_nat in
  return { Exec.Memo.hits; misses; dedups; evictions; entries }

let gen_pool_stats =
  let open QCheck.Gen in
  let* workers = int_range 1 64 and* queued = small_nat in
  let* running = small_nat and* stolen = small_nat in
  return { Exec.Pool.workers; queued; running; stolen }

let gen_farm_stats =
  let open QCheck.Gen in
  let* memo = gen_memo_stats and* pool = gen_pool_stats in
  let* journal_cells = small_nat and* requests_served = small_nat in
  return { Farm_protocol.memo; pool; journal_cells; requests_served }

let gen_response =
  let open QCheck.Gen in
  oneof
    [ return Farm_protocol.Pong;
      return Farm_protocol.Shutting_down;
      (let* s = gen_farm_stats in
       return (Farm_protocol.Stats_reply s));
      (let* msg = gen_label in
       return (Farm_protocol.Error_reply msg));
      (let* req_id = gen_name in
       let* reason = gen_label in
       let* diags = list_size (int_range 0 4) gen_label in
       return (Farm_protocol.Invalid_request { req_id; reason; diags }));
      (let* cell_id = gen_name in
       let* row = small_nat and* col = small_nat in
       let* name = gen_name and* label = gen_label in
       let* source =
         oneofl
           [ Farm_protocol.Computed; Farm_protocol.Memo_hit;
             Farm_protocol.Journal_hit ]
       in
       let* outcome =
         oneof
           [ (let* v = gen_float in
              return (Ok v));
             (let* r = gen_label in
              return (Error r)) ]
       in
       return
         (Farm_protocol.Cell { cell_id; row; col; name; label; source; outcome }));
      (let* req_id = gen_name in
       let* cells = small_nat and* computed = small_nat in
       let* memo_hits = small_nat and* journal_hits = small_nat in
       let* degraded = small_nat and* farm = gen_farm_stats in
       return
         (Farm_protocol.Summary
            { req_id; cells; computed; memo_hits; journal_hits; degraded; farm }))
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request roundtrips through the wire" ~count:200
    (QCheck.make gen_request ~print:Farm_protocol.encode_request)
    (fun req ->
      let wire = Farm_protocol.encode_request req in
      match Farm_protocol.decode_request wire with
      | Error msg -> QCheck.Test.fail_reportf "decode rejected %s: %s" wire msg
      | Ok req' -> String.equal wire (Farm_protocol.encode_request req'))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response roundtrips through the wire" ~count:200
    (QCheck.make gen_response ~print:Farm_protocol.encode_response)
    (fun resp ->
      let wire = Farm_protocol.encode_response resp in
      match Farm_protocol.decode_response wire with
      | Error msg -> QCheck.Test.fail_reportf "decode rejected %s: %s" wire msg
      | Ok resp' -> String.equal wire (Farm_protocol.encode_response resp'))

(* Frames also survive the framing layer unchanged. *)
let prop_framed_roundtrip =
  QCheck.Test.make ~name:"framed message survives encode+decode" ~count:100
    (QCheck.make gen_request ~print:Farm_protocol.encode_request)
    (fun req ->
      let payload = Farm_protocol.encode_request req in
      match Farm_frame.decode (Farm_frame.encode payload) ~pos:0 with
      | Some (p, _) -> String.equal p payload
      | None -> false)

let test_decode_rejects_garbage () =
  let rejected what s decode =
    match decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted: %s" what s
  in
  List.iter
    (fun s ->
      rejected "request" s Farm_protocol.decode_request;
      rejected "response" s Farm_protocol.decode_response)
    [ ""; "{"; "null"; "42"; "\"ping\""; "{}"; "{\"req\":\"warp\"}";
      "{\"resp\":\"warp\"}"; "{\"req\":\"grid\",\"id\":\"x\"}" ];
  (* Structurally valid JSON with broken fields. *)
  rejected "float row index"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1.5,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"memo\",\"ok\":1}"
    Farm_protocol.decode_response;
  rejected "unknown source"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"psychic\",\"ok\":1}"
    Farm_protocol.decode_response;
  rejected "conflicting outcome"
    "{\"resp\":\"cell\",\"cell\":\"k\",\"row\":1,\"col\":0,\"name\":\"n\",\
     \"label\":\"l\",\"source\":\"memo\",\"ok\":1,\"degraded\":\"r\"}"
    Farm_protocol.decode_response;
  rejected "rejection without a reason"
    "{\"resp\":\"invalid\",\"id\":\"r\",\"diags\":[]}"
    Farm_protocol.decode_response;
  rejected "rejection with non-string diags"
    "{\"resp\":\"invalid\",\"id\":\"r\",\"reason\":\"no\",\"diags\":[1]}"
    Farm_protocol.decode_response;
  rejected "bad window arity"
    "{\"req\":\"grid\",\"id\":\"i\",\"tag\":\"t\",\"metric\":\"gain\",\
     \"eval_instrs\":1,\"train_instrs\":1,\"names\":[],\
     \"columns\":[{\"label\":\"l\",\"variant\":\"crisp\",\"window\":[1]}]}"
    Farm_protocol.decode_request

(* ---------------- end-to-end daemon ---------------- *)

let small_eval = 4000
let small_train = 3000

let col ?threshold ?window label variant =
  { Grid.label; variant; threshold; window }

(* Two grids with different tags that overlap on the (pointer_chase, xz)
   x crisp cells: cell identity must be tag-independent. *)
let grid_a : Grid.spec =
  { tag = "farm-a"; title = "farm A"; with_mean = false; metric = Grid.Gain;
    columns = [ col "CRISP" "crisp"; col "IBDA-1K" "ibda-1k" ];
    names = [ "pointer_chase"; "xz" ] }

let grid_b : Grid.spec =
  { tag = "farm-b"; title = "farm B"; with_mean = false; metric = Grid.Gain;
    columns = [ col "CRISP" "crisp" ];
    names = [ "pointer_chase"; "xz"; "nab" ] }

let with_server ?journal_dir ~workers f =
  let dir = tmpdir () in
  let socket = Filename.concat dir "s" in
  let pool =
    if workers <= 1 then Exec.Pool.sequential
    else Exec.Pool.create ~workers ()
  in
  let srv =
    Farm_server.create
      { Farm_server.socket; pool; policy = Resil.Supervise.default_policy;
        journal_dir; verbose = false }
  in
  let th = Thread.create Farm_server.run srv in
  Fun.protect
    (fun () -> f ~socket ~srv)
    ~finally:(fun () ->
      Farm_server.stop srv;
      Thread.join th;
      if workers > 1 then Exec.Pool.shutdown pool)

let connect socket =
  let rec go n =
    match Farm_client.connect ~socket with
    | c -> c
    | exception Farm_client.Farm_error _ when n > 0 ->
      Thread.delay 0.02;
      go (n - 1)
  in
  go 250

let run_one socket (spec : Grid.spec) =
  let c = connect socket in
  Fun.protect
    ~finally:(fun () -> Farm_client.close c)
    (fun () ->
      Farm_client.run_grid c ~spec ~eval_instrs:small_eval
        ~train_instrs:small_train ())

(* The sequential reference: what `experiments --jobs 1` computes for the
   same spec (Grid.cell_value is exactly its cell function). *)
let reference (spec : Grid.spec) =
  List.map
    (fun name ->
      ( name,
        List.map
          (Grid.cell_value ~eval_instrs:small_eval ~train_instrs:small_train
             ~name ~metric:spec.Grid.metric)
          spec.Grid.columns ))
    spec.Grid.names

let check_rows what expected (rows : (string * float list) list) =
  (* Exact float equality: the wire must not perturb a single bit. *)
  check bool what true (expected = rows)

let test_farm_matches_sequential_exactly_once () =
  Runner.clear_cache ();
  with_server ~workers:2 @@ fun ~socket ~srv ->
  let results = Array.make 2 None in
  let client i spec () = results.(i) <- Some (run_one socket spec) in
  let t1 = Thread.create (client 0 grid_a) () in
  let t2 = Thread.create (client 1 grid_b) () in
  Thread.join t1;
  Thread.join t2;
  let ra = Option.get results.(0) and rb = Option.get results.(1) in
  check int "grid A streamed all cells" 4 ra.Farm_client.summary.Farm_protocol.cells;
  check int "grid B streamed all cells" 3 rb.Farm_client.summary.Farm_protocol.cells;
  check int "nothing degraded" 0
    (ra.Farm_client.summary.Farm_protocol.degraded
    + rb.Farm_client.summary.Farm_protocol.degraded);
  (* Exactly-once across clients: 4 + 3 cells, 2 overlapping -> 5 unique
     simulations, 2 served as hits or in-flight dedups. *)
  let st = Farm_server.stats srv in
  check int "unique cells simulated exactly once" 5
    st.Farm_protocol.memo.Exec.Memo.misses;
  check int "overlapping cells shared, not recomputed" 2
    (st.Farm_protocol.memo.Exec.Memo.hits
    + st.Farm_protocol.memo.Exec.Memo.dedups);
  check int "per-request accounting agrees" 5
    (ra.Farm_client.summary.Farm_protocol.computed
    + rb.Farm_client.summary.Farm_protocol.computed);
  (* Identical to the sequential runner, recomputed from scratch. *)
  Runner.clear_cache ();
  check_rows "grid A rows identical to sequential runner" (reference grid_a)
    ra.Farm_client.rows;
  check_rows "grid B rows identical to sequential runner" (reference grid_b)
    rb.Farm_client.rows

let test_farm_restart_serves_from_journal () =
  Runner.clear_cache ();
  let jdir = tmpdir () in
  let first =
    with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv:_ ->
    run_one socket grid_b
  in
  check int "first run computes everything" 3
    first.Farm_client.summary.Farm_protocol.computed;
  (* Cold restart: fresh server state, cold runner memo.  The journal on
     disk is all that survives. *)
  Runner.clear_cache ();
  let misses_before = (Runner.cache_stats ()).Exec.Memo.misses in
  let second =
    with_server ~journal_dir:jdir ~workers:1 @@ fun ~socket ~srv:_ ->
    run_one socket grid_b
  in
  check int "restart recomputes nothing" 0
    second.Farm_client.summary.Farm_protocol.computed;
  check int "every cell restored from the journal" 3
    second.Farm_client.summary.Farm_protocol.journal_hits;
  let misses_after = (Runner.cache_stats ()).Exec.Memo.misses in
  check int "no simulation ran after the restart" misses_before misses_after;
  check bool "journalled rows identical to computed rows" true
    (first.Farm_client.rows = second.Farm_client.rows)

(* A peer speaking garbage gets a loud error and a closed connection,
   and the daemon survives to serve the next client. *)
let test_daemon_rejects_garbage_loudly () =
  with_server ~workers:1 @@ fun ~socket ~srv:_ ->
  (* Wait until the daemon is accepting before talking raw bytes. *)
  Farm_client.close (connect socket);
  let talk bytes =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc bytes;
    flush oc;
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    let rec drain acc =
      match Farm_frame.read ic with
      | Some p -> drain (p :: acc)
      | None -> List.rev acc
      | exception Farm_frame.Frame_error _ -> List.rev acc
    in
    let frames = drain [] in
    close_in_noerr ic;
    close_out_noerr oc;
    frames
  in
  (* Valid frame, garbage payload: one Error_reply, then EOF. *)
  (match talk (Farm_frame.encode "certainly not json") with
  | [ one ] -> (
    match Farm_protocol.decode_response one with
    | Ok (Farm_protocol.Error_reply _) -> ()
    | _ -> Alcotest.fail "expected an error reply")
  | frames -> Alcotest.failf "expected 1 reply frame, got %d" (List.length frames));
  (* Framing-level garbage: connection dies (optionally after an error
     frame); the daemon must not. *)
  ignore (talk "\xff\xff\xff\xffgarbage");
  let c = connect socket in
  Farm_client.ping c;
  Farm_client.close c

(* A request that fails admission — absurd budget or a malformed grid
   spec — gets a structured rejection before any cell is scheduled, and
   the connection survives to serve the next request. *)
let test_daemon_rejects_inadmissible_grids () =
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  with_server ~workers:1 @@ fun ~socket ~srv ->
  let c = connect socket in
  Fun.protect ~finally:(fun () -> Farm_client.close c) @@ fun () ->
  let expect_rejection what ~spec ~eval_instrs ~needle =
    match
      Farm_client.run_grid c ~spec ~eval_instrs ~train_instrs:small_train ()
    with
    | _ -> Alcotest.failf "%s: inadmissible request was admitted" what
    | exception Farm_client.Farm_error msg ->
      if not (contains msg needle) then
        Alcotest.failf "%s: rejection %S does not mention %S" what msg needle
  in
  (* Budget sanity: a zero instruction budget can simulate nothing. *)
  expect_rejection "zero eval budget" ~spec:grid_a ~eval_instrs:0
    ~needle:"eval_instrs";
  (* Spec shape: an off-catalog workload fails Grid.validate. *)
  let bad_spec =
    { grid_a with Grid.names = [ "pointer_chase"; "no_such_kernel" ] }
  in
  expect_rejection "off-catalog workload" ~spec:bad_spec ~eval_instrs:small_eval
    ~needle:"malformed grid spec";
  (* Nothing was scheduled, and the same connection still serves. *)
  check int "no request reached the runner" 0
    (Farm_server.stats srv).Farm_protocol.requests_served;
  Farm_client.ping c

let () =
  Alcotest.run "farm"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incomplete prefix" `Quick test_frame_incomplete_prefix;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized_rejected;
          Alcotest.test_case "channel read" `Quick test_frame_read_streams ] );
      ( "protocol",
        [ QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_framed_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage ] );
      ( "daemon",
        [ Alcotest.test_case "concurrent clients, exact dedup" `Quick
            test_farm_matches_sequential_exactly_once;
          Alcotest.test_case "restart serves from journal" `Quick
            test_farm_restart_serves_from_journal;
          Alcotest.test_case "garbage rejected loudly" `Quick
            test_daemon_rejects_garbage_loudly;
          Alcotest.test_case "inadmissible grids rejected" `Quick
            test_daemon_rejects_inadmissible_grids ] ) ]
