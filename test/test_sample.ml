(* Tests for lib/sample — interval (SMARTS-style) sampling with
   confidence bounds, and checkpointed time-parallel simulation.

   The acceptance bar: on every catalog workload the sampled CPI must
   fall within its own declared 95% confidence interval of the full
   detailed run, and the chunk-parallel engine must stitch statistics
   that are byte-identical across pool sizes. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let cfg = Cpu_config.skylake

let trace_of ?(input = Workload.Ref) ~instrs name =
  let w = Catalog.make ~input ~instrs name in
  Workload.trace w

let layout_of trace =
  Layout.compute ~critical:(fun _ -> false) trace.Executor.prog

(* ---------------- Sample_config ---------------- *)

let test_config_roundtrip () =
  let s = Sample_config.default in
  (match Sample_config.of_string (Sample_config.to_string s) with
  | Ok s' -> check bool "default round-trips" true (s = s')
  | Error msg -> Alcotest.failf "default did not round-trip: %s" msg);
  match Sample_config.of_string "units=8,unit=500,warmup=1000,ci=0.01" with
  | Error msg -> Alcotest.failf "explicit config rejected: %s" msg
  | Ok s ->
    check int "units" 8 s.Sample_config.units;
    check int "unit" 500 s.Sample_config.unit_len;
    check int "warmup" 1000 s.Sample_config.warmup_len;
    check bool "ci" true (s.Sample_config.target_ci = Some 0.01);
    check bool "canonical form round-trips" true
      (Sample_config.of_string (Sample_config.to_string s) = Ok s)

let test_config_rejects_garbage () =
  List.iter
    (fun spec ->
      match Sample_config.of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid config %S" spec)
    [ "units=0"; "unit=-5"; "warmup=x"; "nonsense"; "units"; "ci=0";
      "units=1,units" ]

(* ---------------- the catalog-wide CI battery ---------------- *)

(* Every workload, sampled at the default config, must land within its
   own declared 95% CI of the full run's CPI.  Deterministic: unit
   placement is systematic, so this either always holds or never does. *)
let test_sampled_within_ci () =
  let instrs = 100_000 in
  let sample = Sample_config.default in
  let failures =
    List.filter_map
      (fun name ->
        let trace = trace_of ~instrs name in
        let layout = layout_of trace in
        let full = Cpu_core.run ~layout cfg trace in
        let full_cpi =
          float_of_int full.Cpu_stats.cycles
          /. float_of_int full.Cpu_stats.retired
        in
        let s = Sampler.run ~layout ~sample cfg trace in
        let err = Float.abs (s.Sampler.cpi_mean -. full_cpi) in
        if err > s.Sampler.cpi_ci95 +. 1e-9 then
          Some
            (Printf.sprintf "%s: sampled %.4f vs full %.4f (|err| %.4f > ci %.4f)"
               name s.Sampler.cpi_mean full_cpi err s.Sampler.cpi_ci95)
        else None)
      Catalog.names
  in
  if failures <> [] then
    Alcotest.failf "%d workload(s) outside their declared CI:\n  %s"
      (List.length failures)
      (String.concat "\n  " failures)

let test_sampler_deterministic () =
  let trace = trace_of ~instrs:60_000 "mcf" in
  let layout = layout_of trace in
  let sample = Sample_config.default in
  let a = Sampler.run ~layout ~sample cfg trace in
  let b = Sampler.run ~layout ~sample cfg trace in
  check bool "identical results on identical inputs" true (a = b);
  check int "total instrs is the trace length" 60_000 a.Sampler.total_instrs;
  check bool "measured a strict subset" true
    (a.Sampler.measured_instrs > 0
    && a.Sampler.measured_instrs < a.Sampler.total_instrs)

let test_target_ci_grows_units () =
  let trace = trace_of ~instrs:100_000 "gcc" in
  let layout = layout_of trace in
  let base = { Sample_config.default with Sample_config.units = 4 } in
  let loose = Sampler.run ~layout ~sample:base cfg trace in
  let tight =
    Sampler.run ~layout
      ~sample:{ base with Sample_config.target_ci = Some 0.005 }
      cfg trace
  in
  check bool
    (Printf.sprintf "target-CI run uses more units (%d vs %d)"
       tight.Sampler.config.Sample_config.units
       loose.Sampler.config.Sample_config.units)
    true
    (tight.Sampler.config.Sample_config.units
    > loose.Sampler.config.Sample_config.units)

(* ---------------- time-parallel chunking ---------------- *)

let test_chunked_deterministic_across_pools () =
  let trace = trace_of ~instrs:60_000 "mcf" in
  let layout = layout_of trace in
  let run pool = Chunked.run ~layout ~pool ~chunks:4 ~warmup:2_000 cfg trace in
  let seq = run Exec.Pool.sequential in
  let with_pool workers =
    let pool = Exec.Pool.create ~workers () in
    Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> run pool)
  in
  let p2 = with_pool 2 in
  let p8 = with_pool 8 in
  check bool "jobs 1 = jobs 2" true (seq = p2);
  check bool "jobs 1 = jobs 8" true (seq = p8);
  check int "chunks used" 4 seq.Chunked.chunks;
  check int "retired partitions the trace" 60_000
    seq.Chunked.stats.Cpu_stats.retired

let test_chunked_matches_full () =
  let trace = trace_of ~instrs:60_000 "mcf" in
  let layout = layout_of trace in
  let full = Cpu_core.run ~layout cfg trace in
  let r = Chunked.run ~layout ~chunks:4 ~warmup:5_000 cfg trace in
  check int "retired exactly the trace" full.Cpu_stats.retired
    r.Chunked.stats.Cpu_stats.retired;
  check int "per-chunk retired sums to the trace" full.Cpu_stats.retired
    (Array.fold_left
       (fun a (s : Cpu_stats.t) -> a + s.Cpu_stats.retired)
       0 r.Chunked.per_chunk);
  (* Cold-start warmup re-converges the pipeline, so the stitched cycle
     count tracks the monolithic run closely; 1% headroom covers the
     boundary effects warmup cannot erase. *)
  let rel =
    Float.abs
      (float_of_int r.Chunked.stats.Cpu_stats.cycles
      -. float_of_int full.Cpu_stats.cycles)
    /. float_of_int full.Cpu_stats.cycles
  in
  if rel > 0.01 then
    Alcotest.failf "stitched cycles %d vs full %d (%.2f%% off, budget 1%%)"
      r.Chunked.stats.Cpu_stats.cycles full.Cpu_stats.cycles (100. *. rel)

let test_chunked_journal_reuse () =
  let trace = trace_of ~instrs:40_000 "gcc" in
  let layout = layout_of trace in
  let path = Filename.temp_file "crisp_chunk" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".bad"; path ^ ".tmp" ])
    (fun () ->
      let signature = "test chunked gcc 40k" in
      let j1 = Resil.Journal.load ~path ~signature in
      let a = Chunked.run ~layout ~journal:j1 ~chunks:4 ~warmup:2_000 cfg trace in
      (* A fresh journal handle replays the recorded checkpoints. *)
      let j2 = Resil.Journal.load ~path ~signature in
      check bool "checkpoints recorded" true (Resil.Journal.size j2 > 0);
      let b = Chunked.run ~layout ~journal:j2 ~chunks:4 ~warmup:2_000 cfg trace in
      check bool "journalled rerun is identical" true (a = b))

(* ---------------- fast-forward vs detailed prefix ---------------- *)

(* Compact loop-bearing generator modeled on test_dataflow's: counted
   loop of random blocks mixing masked loads/stores into a small image,
   ALU/Mul/Div arithmetic and data-dependent forward branches. *)
let words = 128
let mem_base = 0x40000

let random_program seed =
  let rng = Prng.create (9_100 + seed) in
  let reg () = 1 + Prng.int rng 8 in
  let open Program in
  let block b =
    let body =
      List.concat
        (List.init
           (2 + Prng.int rng 3)
           (fun _ ->
             match Prng.int rng 6 with
             | 0 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm mem_base);
                 Ld (reg (), 9, 0) ]
             | 1 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm mem_base);
                 St (reg (), 9, 0) ]
             | 2 -> [ Mul (reg (), reg (), reg ()) ]
             | 3 -> [ Li (reg (), Prng.int rng 10_000 - 5_000) ]
             | _ ->
               [ Alu
                   ( (if Prng.int rng 2 = 0 then Isa.Add else Isa.Xor),
                     reg (), reg (),
                     if Prng.int rng 2 = 0 then Reg (reg ())
                     else Imm (Prng.int rng 64) ) ]))
    in
    let skip = Printf.sprintf "skip%d" b in
    body
    @ [ Br
          ( (match Prng.int rng 4 with
            | 0 -> Isa.Lt
            | 1 -> Isa.Ge
            | 2 -> Isa.Eq
            | _ -> Isa.Ne),
            reg (), Imm (Prng.int rng 128), skip );
        Alu (Isa.Xor, reg (), reg (), Imm (b + 1));
        Label skip ]
  in
  let blocks = 2 + Prng.int rng 3 in
  let code =
    [ Label "loop" ]
    @ List.concat (List.init blocks block)
    @ [ Alu (Isa.Add, 10, 10, Imm 1);
        Br (Isa.Lt, 10, Imm 1_000_000, "loop");
        Halt ]
  in
  let prog = assemble ~name:(Printf.sprintf "sm%d" seed) code in
  let reg_init = List.init 10 (fun r -> (r + 1, Prng.int rng 1_000)) in
  let mem_init = Hashtbl.create 256 in
  for i = 0 to words - 1 do
    Hashtbl.replace mem_init (mem_base + (i * 8)) (Prng.int rng 1_000_000)
  done;
  (prog, reg_init, mem_init)

(* Functional fast-forward must be architecturally exact: a mid-trace
   snapshot at boundary [b] equals (registers and memory image, both) the
   final state of a run truncated at [b]; the register half additionally
   matches the live on_step replay oracle; and the detailed core, fed
   the dyn-trace prefix, retires exactly [b] micro-ops.  Together these
   pin the sampler's fast-forward to the state a detailed simulation
   stopped at the same boundary would have. *)
let prop_fast_forward_matches_detailed_prefix =
  QCheck.Test.make
    ~name:"fast-forward snapshot = truncated run = replay oracle" ~count:20
    QCheck.small_int (fun seed ->
      let prog, reg_init, mem_init = random_program seed in
      let max_instrs = 3_000 in
      let full = Executor.run ~reg_init ~mem_init ~max_instrs prog in
      let n = Array.length full.Executor.dyns in
      if n < 20 then true
      else begin
        let b = 1 + ((seed * 7919) mod (n - 1)) in
        (* the Hashtbl is mutated by execution — fresh copy per run *)
        let mem () = Hashtbl.copy mem_init in
        let _, snaps =
          Executor.snapshots ~reg_init ~mem_init:(mem ()) ~boundaries:[ b ]
            ~max_instrs prog
        in
        let _, truncated =
          Executor.snapshots ~reg_init ~mem_init:(mem ()) ~boundaries:[ b ]
            ~max_instrs:b prog
        in
        let oracle_regs = ref [||] in
        let count = ref 0 in
        let on_step _pc regs =
          if !count = b then oracle_regs := Array.copy regs;
          incr count
        in
        ignore (Executor.run ~reg_init ~mem_init:(mem ()) ~on_step ~max_instrs prog);
        match (snaps, truncated) with
        | [ (b1, regs1, img1) ], [ (b2, regs2, img2) ] ->
          if b1 <> b || b2 <> b then
            QCheck.Test.fail_reportf "snapshot boundaries %d/%d, wanted %d" b1
              b2 b
          else if regs1 <> regs2 then
            QCheck.Test.fail_report "registers: mid-trace snapshot <> truncated run"
          else if img1 <> img2 then
            QCheck.Test.fail_report "memory image: mid-trace snapshot <> truncated run"
          else if !oracle_regs <> [||] && regs1 <> !oracle_regs then
            QCheck.Test.fail_report "registers: snapshot <> on_step replay oracle"
          else begin
            let prefix =
              { full with Executor.dyns = Array.sub full.Executor.dyns 0 b }
            in
            let layout = layout_of prefix in
            let stats = Cpu_core.run ~layout cfg prefix in
            if stats.Cpu_stats.retired <> b then
              QCheck.Test.fail_reportf
                "detailed prefix run retired %d, wanted exactly %d"
                stats.Cpu_stats.retired b
            else true
          end
        | _ ->
          QCheck.Test.fail_reportf "expected one snapshot per run, got %d/%d"
            (List.length snaps) (List.length truncated)
      end)

let () =
  Alcotest.run "sample"
    [ ( "config",
        [ Alcotest.test_case "round-trip" `Quick test_config_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_config_rejects_garbage
        ] );
      ( "sampler",
        [ Alcotest.test_case "catalog within declared CI" `Slow
            test_sampled_within_ci;
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "target CI grows units" `Quick
            test_target_ci_grows_units ] );
      ( "chunked",
        [ Alcotest.test_case "deterministic across pools" `Quick
            test_chunked_deterministic_across_pools;
          Alcotest.test_case "matches the monolithic run" `Quick
            test_chunked_matches_full;
          Alcotest.test_case "journal reuse" `Quick test_chunked_journal_reuse
        ] );
      ( "fast_forward",
        [ QCheck_alcotest.to_alcotest prop_fast_forward_matches_detailed_prefix
        ] ) ]
