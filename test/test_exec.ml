(* Tests for the parallel execution subsystem: the work-stealing queue,
   the domain pool, futures, the memo table's in-flight deduplication, and
   the determinism of the parallel experiment grids against the sequential
   path. *)

open Exec

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Ws_queue ---------------- *)

let test_ws_queue_fifo () =
  let q = Ws_queue.create ~capacity_exponent:4 () in
  for i = 1 to 10 do
    check bool "push accepted" true (Ws_queue.push q i)
  done;
  check int "size" 10 (Ws_queue.size q);
  for i = 1 to 10 do
    check (Alcotest.option int) "pop FIFO" (Some i) (Ws_queue.pop q)
  done;
  check (Alcotest.option int) "empty pop" None (Ws_queue.pop q)

let test_ws_queue_full () =
  let q = Ws_queue.create ~capacity_exponent:3 () in
  for _ = 1 to 8 do
    check bool "fills to capacity" true (Ws_queue.push q 0)
  done;
  check bool "rejects when full" false (Ws_queue.push q 0);
  ignore (Ws_queue.pop q);
  check bool "accepts after pop" true (Ws_queue.push q 0)

let test_ws_queue_steal_half () =
  let victim = Ws_queue.create () and thief = Ws_queue.create () in
  for i = 1 to 8 do
    ignore (Ws_queue.push victim i)
  done;
  let moved = Ws_queue.steal ~from:victim ~into:thief in
  check int "steals about half" 4 moved;
  check (Alcotest.option int) "oldest moved first" (Some 1) (Ws_queue.pop thief);
  check (Alcotest.option int) "victim keeps the rest" (Some 5) (Ws_queue.pop victim);
  let empty = Ws_queue.create () in
  check int "stealing from empty" 0 (Ws_queue.steal ~from:empty ~into:thief)

(* Concurrent exactly-once delivery: one owner pushes and pops, several
   thieves steal into their own queues and drain them; every element must
   be consumed by exactly one domain. *)
let test_ws_queue_concurrent_exactly_once () =
  let total = 20_000 and thieves = 3 in
  let victim = Ws_queue.create () in
  let seen = Array.make total (Atomic.make 0) in
  for i = 0 to total - 1 do
    seen.(i) <- Atomic.make 0
  done;
  let stop = Atomic.make false in
  let consume i = Atomic.incr seen.(i) in
  let thief_domains =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let mine = Ws_queue.create () in
            let rec loop () =
              let stolen = Ws_queue.steal ~from:victim ~into:mine in
              let rec drain () =
                match Ws_queue.pop mine with
                | Some i ->
                  consume i;
                  drain ()
                | None -> ()
              in
              drain ();
              if stolen > 0 || not (Atomic.get stop) then loop ()
            in
            loop ()))
  in
  (* Owner: interleave pushes with occasional pops. *)
  let pushed = ref 0 in
  while !pushed < total do
    if Ws_queue.push victim !pushed then incr pushed
    else
      match Ws_queue.pop victim with Some i -> consume i | None -> ()
  done;
  let rec drain_owner () =
    match Ws_queue.pop victim with
    | Some i ->
      consume i;
      drain_owner ()
    | None -> ()
  in
  drain_owner ();
  Atomic.set stop true;
  List.iter Domain.join thief_domains;
  let consumed_once = ref true in
  Array.iter (fun a -> if Atomic.get a <> 1 then consumed_once := false) seen;
  check bool "every element consumed exactly once" true !consumed_once

(* Steal-vs-pop on a prefilled queue: the owner drains from the head while
   thieves concurrently steal batches from the same end.  Whatever the
   interleaving, consumption must partition the elements — exactly once
   each, nothing lost, nothing duplicated. *)
let test_ws_queue_steal_vs_pop () =
  let total = 8192 and thieves = 4 in
  let victim = Ws_queue.create () in
  let seen = Array.init total (fun _ -> Atomic.make 0) in
  for i = 0 to total - 1 do
    assert (Ws_queue.push victim i)
  done;
  let go = Atomic.make false in
  let thief_domains =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            let mine = Ws_queue.create () in
            let consumed = ref 0 in
            let rec loop idle =
              let stolen = Ws_queue.steal ~from:victim ~into:mine in
              let rec drain () =
                match Ws_queue.pop mine with
                | Some i ->
                  Atomic.incr seen.(i);
                  incr consumed;
                  drain ()
                | None -> ()
              in
              drain ();
              (* A few empty rounds may be races with other thieves; only
                 give up after the victim has stayed empty a while. *)
              if stolen > 0 then loop 0 else if idle < 64 then loop (idle + 1)
            in
            loop 0;
            !consumed))
  in
  Atomic.set go true;
  let owner_consumed = ref 0 in
  let rec pop_all idle =
    match Ws_queue.pop victim with
    | Some i ->
      Atomic.incr seen.(i);
      incr owner_consumed;
      pop_all 0
    | None -> if idle < 64 then pop_all (idle + 1)
  in
  pop_all 0;
  let stolen_counts = List.map Domain.join thief_domains in
  let consumed_once = ref true in
  Array.iter (fun a -> if Atomic.get a <> 1 then consumed_once := false) seen;
  check bool "every element consumed exactly once" true !consumed_once;
  check int "consumption partitions the queue" total
    (List.fold_left ( + ) !owner_consumed stolen_counts)

(* ---------------- Future ---------------- *)

let test_future_basics () =
  let fut = Future.create () in
  check bool "pending" false (Future.is_resolved fut);
  Future.fulfill fut 41;
  check int "await" 41 (Future.await fut);
  check bool "double resolve rejected" true
    (match Future.fulfill fut 0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  let doubled = Future.map (fun x -> x * 2) (Future.of_value 21) in
  check int "map" 42 (Future.await doubled);
  let joined = Future.join_all [ Future.of_value 1; Future.of_value 2 ] in
  check bool "join_all" true (Future.await joined = [ 1; 2 ])

let test_future_failure () =
  let fut = Future.create () in
  Future.fail fut (Failure "inner") (Printexc.get_callstack 0);
  check bool "await re-raises" true
    (match Future.await fut with
    | _ -> false
    | exception Failure m -> m = "inner");
  let mapped = Future.map (fun x -> x + 1) fut in
  check bool "map propagates failure" true
    (match Future.await mapped with
    | _ -> false
    | exception Failure m -> m = "inner")

(* Set-vs-await race: many domains race to fulfill one future while many
   others are already blocked in [await].  Exactly one fulfill wins (the
   rest observe [Invalid_argument]), and every awaiter sees the winning
   value — write-once semantics under contention. *)
let test_future_set_vs_await_race () =
  let rounds = 200 and setters = 4 and awaiters = 4 in
  for _ = 1 to rounds do
    let fut = Future.create () in
    let go = Atomic.make false in
    let awaiter_domains =
      List.init awaiters (fun _ -> Domain.spawn (fun () -> Future.await fut))
    in
    let setter_domains =
      List.init setters (fun value ->
          Domain.spawn (fun () ->
              while not (Atomic.get go) do
                Domain.cpu_relax ()
              done;
              match Future.fulfill fut value with
              | () -> Some value
              | exception Invalid_argument _ -> None))
    in
    Atomic.set go true;
    let winners = List.filter_map Domain.join setter_domains in
    let observed = List.map Domain.join awaiter_domains in
    (match winners with
    | [ winner ] ->
      List.iter
        (fun v -> check int "awaiter sees the winning value" winner v)
        observed
    | ws -> Alcotest.failf "expected exactly one winning fulfill, got %d" (List.length ws));
    check bool "future resolved" true (Future.is_resolved fut)
  done

(* ---------------- Pool ---------------- *)

let test_pool_exactly_once_many_submitters () =
  let pool = Pool.create ~workers:4 () in
  let total = 4_000 and submitters = 4 in
  let runs = Array.init total (fun _ -> Atomic.make 0) in
  let chunk = total / submitters in
  let submitter s =
    Domain.spawn (fun () ->
        List.init chunk (fun k ->
            let i = (s * chunk) + k in
            Pool.submit pool (fun () ->
                Atomic.incr runs.(i);
                i)))
  in
  let futures =
    List.init submitters submitter |> List.concat_map Domain.join
  in
  let values = List.map (Pool.await pool) futures in
  Pool.shutdown pool;
  check int "all futures resolved" total (List.length values);
  let once = ref true in
  Array.iter (fun a -> if Atomic.get a <> 1 then once := false) runs;
  check bool "every job ran exactly once" true !once

let test_pool_exception_surfaces_at_await () =
  let pool = Pool.create ~workers:2 () in
  let bad = Pool.submit pool (fun () -> failwith "job blew up") in
  let good = Pool.submit pool (fun () -> 7) in
  check bool "exception re-raised at await" true
    (match Pool.await pool bad with
    | _ -> false
    | exception Failure m -> m = "job blew up");
  check int "other jobs unaffected" 7 (Pool.await pool good);
  Pool.shutdown pool

(* A worker that awaits sub-jobs it spawned itself must help execute them
   rather than block the (single) worker domain. *)
let test_pool_nested_await_single_worker () =
  let pool = Pool.create ~workers:1 () in
  let outer =
    Pool.submit pool (fun () ->
        let subs = List.init 32 (fun i -> Pool.submit pool (fun () -> i)) in
        List.fold_left (fun acc f -> acc + Pool.await pool f) 0 subs)
  in
  check int "nested fork/join on one worker" 496 (Pool.await pool outer);
  Pool.shutdown pool

let test_pool_sequential_escape_hatch () =
  let pool = Pool.sequential in
  let order = ref [] in
  let futs = List.init 5 (fun i -> Pool.submit pool (fun () -> order := i :: !order; i)) in
  check bool "runs inline at submission, in order" true (List.rev !order = [ 0; 1; 2; 3; 4 ]);
  check bool "values" true (List.map (Pool.await pool) futs = [ 0; 1; 2; 3; 4 ]);
  check int "parallelism" 1 (Pool.parallelism pool);
  Pool.shutdown pool

let test_pool_shutdown_rejects_submit () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  check bool "submit after shutdown raises" true
    (match Pool.submit pool (fun () -> 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Abort shutdown (~drain:false): queued jobs that never started must
   fail their futures with [Shut_down] so awaiters raise cleanly instead
   of deadlocking.  Both workers are parked on a gate while the jobs
   queue up, the aborting shutdown runs from another domain, and only
   then does the gate open. *)
let test_pool_abort_shutdown_fails_queued_jobs () =
  let pool = Pool.create ~workers:2 () in
  let gate = Atomic.make false in
  let started = Atomic.make 0 in
  let blockers =
    List.init 2 (fun _ ->
        Pool.submit pool (fun () ->
            Atomic.incr started;
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            0))
  in
  (* Both workers are provably inside a blocker before anything else is
     queued, so no queued job can start before the gate opens. *)
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  let queued = List.init 64 (fun i -> Pool.submit pool (fun () -> i)) in
  let stopper = Domain.spawn (fun () -> Pool.shutdown ~drain:false pool) in
  (* An abort-shutdown sets the abort flag before closing the injection
     queue, so once submission is refused the flag is visibly set; only
     then release the workers to drain (and discard) the queue. *)
  let rec await_close () =
    match Pool.submit pool (fun () -> -1) with
    | (_ : int Exec.Future.t) ->
      Domain.cpu_relax ();
      await_close ()
    | exception Invalid_argument _ -> ()
  in
  await_close ();
  Atomic.set gate true;
  let aborted = ref 0 and ran = ref 0 in
  List.iter
    (fun fut ->
      match Pool.await pool fut with
      | _ -> incr ran
      | exception Pool.Shut_down -> incr aborted)
    queued;
  Domain.join stopper;
  check int "every queued job resolved one way" 64 (!aborted + !ran);
  check bool "abort flag was set before the gate opened" true (!aborted = 64);
  check bool "started jobs still complete" true
    (List.for_all (fun f -> Pool.await pool f = 0) blockers);
  (* Shutdown stays idempotent after an abort. *)
  Pool.shutdown pool;
  Pool.shutdown ~drain:false pool

(* Several domains race to shut the same pool down while jobs are in
   flight: exactly one performs the join, the others wait for it, and
   every submitted job still resolves (drain semantics). *)
let test_pool_concurrent_shutdown () =
  for _ = 1 to 20 do
    let pool = Pool.create ~workers:2 () in
    let futs = List.init 200 (fun i -> Pool.submit pool (fun () -> i)) in
    let shutters =
      List.init 4 (fun _ -> Domain.spawn (fun () -> Pool.shutdown pool))
    in
    Pool.shutdown pool;
    List.iter Domain.join shutters;
    check bool "all jobs completed despite racing shutdowns" true
      (List.mapi (fun i f -> Pool.await pool f = i) futs |> List.for_all Fun.id)
  done

(* Shutdown-during-await stress: the awaiting domain must come back with
   either the value or [Shut_down] — never hang — whichever way the race
   between job execution and the aborting shutdown goes. *)
let test_pool_shutdown_during_await_stress () =
  for _ = 1 to 50 do
    let pool = Pool.create ~workers:2 () in
    let futs =
      List.init 32 (fun i ->
          Pool.submit pool (fun () ->
              if i land 3 = 0 then Domain.cpu_relax ();
              i))
    in
    let stopper = Domain.spawn (fun () -> Pool.shutdown ~drain:false pool) in
    List.iteri
      (fun i fut ->
        match Pool.await pool fut with
        | v -> check int "value intact when the job won the race" i v
        | exception Pool.Shut_down -> ())
      futs;
    Domain.join stopper
  done

let test_pool_map_list () =
  let pool = Pool.create ~workers:3 () in
  let squares = Pool.map_list pool (fun x -> x * x) (List.init 100 Fun.id) in
  Pool.shutdown pool;
  check bool "map_list keeps order" true
    (squares = List.init 100 (fun x -> x * x))

(* ---------------- Memo ---------------- *)

let test_memo_in_flight_dedup () =
  let pool = Pool.create ~workers:4 () in
  let memo = Exec.Memo.create () in
  let runs = Atomic.make 0 in
  let compute () =
    Atomic.incr runs;
    (* Long enough that all waiters pile onto the in-flight future. *)
    Unix.sleepf 0.05;
    1234
  in
  let futs =
    List.init 16 (fun _ ->
        Pool.submit pool (fun () -> Exec.Memo.find_or_run memo "baseline" compute))
  in
  let values = List.map (Pool.await pool) futs in
  Pool.shutdown pool;
  check bool "all waiters got the value" true (List.for_all (( = ) 1234) values);
  check int "computation ran exactly once" 1 (Atomic.get runs);
  check int "table holds one entry" 1 (Exec.Memo.length memo)

let test_memo_failure_not_poisoning () =
  let memo = Exec.Memo.create () in
  let attempts = Atomic.make 0 in
  let flaky () =
    if Atomic.fetch_and_add attempts 1 = 0 then failwith "transient" else 5
  in
  check bool "first run raises" true
    (match Exec.Memo.find_or_run memo "k" flaky with
    | _ -> false
    | exception Failure _ -> true);
  check int "retry recomputes and caches" 5 (Exec.Memo.find_or_run memo "k" flaky);
  check int "cached thereafter" 5 (Exec.Memo.find_or_run memo "k" flaky);
  check int "two attempts total" 2 (Atomic.get attempts);
  Exec.Memo.clear memo;
  check int "clear empties" 0 (Exec.Memo.length memo)

(* ---------------- Determinism of the experiment grids ---------------- *)

(* A fig7-shaped grid (apps x variants, sharing OOO baselines through the
   Runner memo) must produce identical statistics through pools of 1, 2
   and 8 workers as through the sequential path — i.e. neither Cpu_core
   nor Workload.trace hides shared mutable state that parallel execution
   could perturb. *)
let test_grid_determinism_across_worker_counts () =
  let sizes = { Experiments.eval_instrs = 8_000; train_instrs = 6_000 } in
  let names = [ "mcf"; "namd"; "fotonik" ] in
  let variants = [ Runner.Ooo; Runner.crisp_default; Runner.Ibda Ibda.ist_8k ] in
  let grid () =
    Experiments.current_pool () |> fun pool ->
    List.map
      (fun name ->
        Pool.map_list pool
          (fun v ->
            Runner.evaluate ~eval_instrs:sizes.Experiments.eval_instrs
              ~train_instrs:sizes.Experiments.train_instrs ~name v)
          variants)
      names
  in
  Runner.clear_cache ();
  let reference = grid () in
  let stats_of rows = List.map (List.map (fun o -> o.Runner.stats)) rows in
  List.iter
    (fun workers ->
      let pool = Pool.create ~workers () in
      Experiments.set_pool pool;
      Runner.clear_cache ();
      let parallel = grid () in
      Experiments.set_pool Pool.sequential;
      Pool.shutdown pool;
      check bool
        (Printf.sprintf "stats identical with %d workers" workers)
        true
        (stats_of parallel = stats_of reference))
    [ 1; 2; 8 ];
  Runner.clear_cache ()

let () =
  Alcotest.run "exec"
    [ ( "ws_queue",
        [ Alcotest.test_case "fifo" `Quick test_ws_queue_fifo;
          Alcotest.test_case "full" `Quick test_ws_queue_full;
          Alcotest.test_case "steal-half" `Quick test_ws_queue_steal_half;
          Alcotest.test_case "concurrent-exactly-once" `Slow
            test_ws_queue_concurrent_exactly_once;
          Alcotest.test_case "steal-vs-pop" `Slow test_ws_queue_steal_vs_pop ] );
      ( "future",
        [ Alcotest.test_case "basics" `Quick test_future_basics;
          Alcotest.test_case "failure" `Quick test_future_failure;
          Alcotest.test_case "set-vs-await-race" `Slow
            test_future_set_vs_await_race ] );
      ( "pool",
        [ Alcotest.test_case "exactly-once-many-submitters" `Slow
            test_pool_exactly_once_many_submitters;
          Alcotest.test_case "exception-at-await" `Quick
            test_pool_exception_surfaces_at_await;
          Alcotest.test_case "nested-await-one-worker" `Quick
            test_pool_nested_await_single_worker;
          Alcotest.test_case "sequential-escape-hatch" `Quick
            test_pool_sequential_escape_hatch;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects_submit;
          Alcotest.test_case "abort-shutdown-fails-queued" `Quick
            test_pool_abort_shutdown_fails_queued_jobs;
          Alcotest.test_case "concurrent-shutdown" `Slow
            test_pool_concurrent_shutdown;
          Alcotest.test_case "shutdown-during-await-stress" `Slow
            test_pool_shutdown_during_await_stress;
          Alcotest.test_case "map_list" `Quick test_pool_map_list ] );
      ( "memo",
        [ Alcotest.test_case "in-flight-dedup" `Slow test_memo_in_flight_dedup;
          Alcotest.test_case "failure-not-poisoning" `Quick
            test_memo_failure_not_poisoning ] );
      ( "determinism",
        [ Alcotest.test_case "grid-1-2-8-workers" `Slow
            test_grid_determinism_across_worker_counts ] ) ]
