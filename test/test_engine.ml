(* Tests for the allocation-free cycle engine's data structures — event
   wheel, intrusive wakeup lists, flat int table, bitset scan/argmin
   primitives, incremental TAGE folds — plus the engine-level GC budget
   and the issue-width knob. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---------------- Event wheel ---------------- *)

let test_wheel_basic () =
  let w = Event_wheel.create ~horizon:16 () in
  Event_wheel.add w ~now:0 ~cycle:3 42;
  Event_wheel.add w ~now:0 ~cycle:5 7;
  check int "pending" 2 (Event_wheel.pending w);
  check int "nothing due yet" (-1) (Event_wheel.pop w ~cycle:2);
  check int "due at 3" 42 (Event_wheel.pop w ~cycle:3);
  check int "slot drained" (-1) (Event_wheel.pop w ~cycle:3);
  check int "due at 5" 7 (Event_wheel.pop w ~cycle:5);
  check int "empty" 0 (Event_wheel.pending w)

let test_wheel_same_cycle_lifo () =
  let w = Event_wheel.create ~horizon:16 () in
  Event_wheel.add w ~now:0 ~cycle:4 1;
  Event_wheel.add w ~now:0 ~cycle:4 2;
  Event_wheel.add w ~now:0 ~cycle:4 3;
  (* Newest-first, matching the prepend-then-iterate Hashtbl calendar. *)
  check int "pop newest" 3 (Event_wheel.pop w ~cycle:4);
  check int "then middle" 2 (Event_wheel.pop w ~cycle:4);
  check int "then oldest" 1 (Event_wheel.pop w ~cycle:4);
  check int "drained" (-1) (Event_wheel.pop w ~cycle:4)

let test_wheel_wraparound () =
  let w = Event_wheel.create ~horizon:8 () in
  (* Drive the wheel through several laps; slots must be clean on reuse. *)
  for now = 0 to 40 do
    Event_wheel.add w ~now ~cycle:(now + 7) now;
    (* drain events due at [now + 1] before the next iteration adds *)
    let due = now + 1 - 7 in
    if due >= 0 then
      check int
        (Printf.sprintf "lap event at %d" (now + 1))
        due
        (Event_wheel.pop w ~cycle:(now + 1));
    check int "slot empty after drain" (-1) (Event_wheel.pop w ~cycle:(now + 1))
  done

let test_wheel_overflow () =
  let w = Event_wheel.create ~horizon:8 () in
  (* 100 cycles ahead: beyond the horizon, parked in the overflow bucket. *)
  Event_wheel.add w ~now:0 ~cycle:100 55;
  Event_wheel.add w ~now:0 ~cycle:101 66;
  check int "overflow holds both" 2 (Event_wheel.overflow_length w);
  for c = 1 to 99 do
    check int "nothing due in between" (-1) (Event_wheel.pop w ~cycle:c)
  done;
  check int "overflow delivered" 55 (Event_wheel.pop w ~cycle:100);
  check int "overflow entry gone" (-1) (Event_wheel.pop w ~cycle:100);
  check int "second overflow" 66 (Event_wheel.pop w ~cycle:101);
  check int "bucket empty" 0 (Event_wheel.overflow_length w)

let test_wheel_rejects_past () =
  let w = Event_wheel.create ~horizon:8 () in
  Alcotest.check_raises "past cycle rejected"
    (Invalid_argument "Event_wheel.add: cycle must be in the future") (fun () ->
      Event_wheel.add w ~now:5 ~cycle:5 1)

(* The checkpoint-restore scenario: the consumer's cycle counter jumps
   (a window restarts its clock, then schedules far past the pow2
   horizon), so an overflow entry's due cycle can be strictly below the
   cycle of the pop that should deliver it.  The stale-stamp bug left
   such entries stranded in the bucket forever. *)
let test_wheel_overdue_after_jump () =
  let w = Event_wheel.create ~horizon:8 () in
  (* Parked in the overflow bucket: 100 >> horizon. *)
  Event_wheel.add w ~now:0 ~cycle:100 9;
  check int "parked in overflow" 1 (Event_wheel.overflow_length w);
  (* The consumer's clock jumps straight past the due cycle. *)
  check int "overdue entry still delivered" 9 (Event_wheel.pop w ~cycle:250);
  check int "delivered once" (-1) (Event_wheel.pop w ~cycle:250);
  check int "bucket empty" 0 (Event_wheel.overflow_length w);
  check int "nothing pending" 0 (Event_wheel.pending w)

let test_wheel_clear () =
  let w = Event_wheel.create ~horizon:8 () in
  Event_wheel.add w ~now:0 ~cycle:3 1;
  Event_wheel.add w ~now:0 ~cycle:5 2;
  Event_wheel.add w ~now:0 ~cycle:100 3;
  check int "three pending" 3 (Event_wheel.pending w);
  Event_wheel.clear w;
  check int "cleared" 0 (Event_wheel.pending w);
  check int "overflow cleared" 0 (Event_wheel.overflow_length w);
  for c = 1 to 110 do
    check int "nothing ever delivered" (-1) (Event_wheel.pop w ~cycle:c)
  done;
  (* The wheel is reusable at a fresh time origin after clear — exactly
     what a restored checkpoint needs. *)
  Event_wheel.add w ~now:0 ~cycle:4 7;
  check int "usable after clear" 7 (Event_wheel.pop w ~cycle:4)

(* Property: against a (cycle -> payload list) Hashtbl calendar, over a
   random latency stream that regularly exceeds the horizon.  The
   per-cycle *population* must match exactly; the within-cycle order is
   additionally LIFO whenever every event of that cycle took the same
   path (all ring or all overflow), which the reference reproduces by
   prepending. *)
let prop_wheel_matches_hashtbl_calendar =
  QCheck.Test.make ~name:"event wheel = Hashtbl calendar" ~count:50
    QCheck.small_int (fun seed ->
      let horizon = 16 in
      let w = Event_wheel.create ~horizon () in
      let calendar : (int, int list) Hashtbl.t = Hashtbl.create 64 in
      let rng = Prng.create (seed + 17) in
      let ok = ref true in
      let payload = ref 0 in
      for now = 0 to 400 do
        (* 0-2 events per cycle, latencies 1..40 (horizon is 16, so a
           fair share land in the overflow bucket) *)
        for _ = 1 to Prng.int rng 3 do
          let latency = 1 + Prng.int rng 40 in
          incr payload;
          Event_wheel.add w ~now ~cycle:(now + latency) !payload;
          let prev =
            match Hashtbl.find_opt calendar (now + latency) with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace calendar (now + latency) (!payload :: prev)
        done;
        (* drain the next cycle on both sides *)
        let cycle = now + 1 in
        let expected = Option.value ~default:[] (Hashtbl.find_opt calendar cycle) in
        Hashtbl.remove calendar cycle;
        let got = ref [] in
        let rec drain () =
          let d = Event_wheel.pop w ~cycle in
          if d >= 0 then begin
            got := d :: !got;
            drain ()
          end
        in
        drain ();
        (* [got] is reversed pop order; equal-as-sets and equal lengths *)
        if List.sort compare !got <> List.sort compare expected then ok := false
      done;
      let still_due = Hashtbl.fold (fun _ l a -> List.length l + a) calendar 0 in
      if Event_wheel.pending w <> still_due then ok := false;
      !ok)

(* ---------------- Wakeup lists ---------------- *)

let test_wakeup_lifo () =
  let wk = Wakeup.create 8 in
  Wakeup.push wk ~producer:2 ~consumer:5 ~link:0;
  Wakeup.push wk ~producer:2 ~consumer:6 ~link:1;
  Wakeup.push wk ~producer:2 ~consumer:7 ~link:0;
  check bool "non-empty" false (Wakeup.is_empty wk 2);
  check int "newest first" 7 (Wakeup.pop wk 2);
  check int "then" 6 (Wakeup.pop wk 2);
  check int "then oldest" 5 (Wakeup.pop wk 2);
  check int "exhausted" (-1) (Wakeup.pop wk 2);
  check bool "empty again" true (Wakeup.is_empty wk 2)

let test_wakeup_multi_producer () =
  let wk = Wakeup.create 8 in
  (* One consumer waits on two producers through distinct links. *)
  Wakeup.push wk ~producer:0 ~consumer:4 ~link:0;
  Wakeup.push wk ~producer:1 ~consumer:4 ~link:1;
  check int "woken by producer 0" 4 (Wakeup.pop wk 0);
  check int "woken by producer 1" 4 (Wakeup.pop wk 1);
  check int "both lists empty" (-1) (Wakeup.pop wk 0)

let test_wakeup_reset () =
  let wk = Wakeup.create 4 in
  Wakeup.push wk ~producer:1 ~consumer:2 ~link:0;
  Wakeup.push wk ~producer:1 ~consumer:3 ~link:2;
  Wakeup.reset wk 1;
  check bool "reset empties" true (Wakeup.is_empty wk 1);
  check int "pop after reset" (-1) (Wakeup.pop wk 1)

(* ---------------- Int table ---------------- *)

let prop_int_table_matches_hashtbl =
  QCheck.Test.make ~name:"int table = Hashtbl reference" ~count:50
    QCheck.small_int (fun seed ->
      let t = Int_table.create 64 in
      let h : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let rng = Prng.create (seed + 3) in
      let ok = ref true in
      for _ = 1 to 2000 do
        let key = Prng.int rng 200 in
        match Prng.int rng 3 with
        | 0 ->
          let v = Prng.int rng 1000 in
          if Hashtbl.length h < 64 || Hashtbl.mem h key then begin
            Int_table.replace t key v;
            Hashtbl.replace h key v
          end
        | 1 ->
          Int_table.remove t key;
          Hashtbl.remove h key
        | _ ->
          let expected =
            match Hashtbl.find_opt h key with Some v -> v | None -> -1
          in
          if Int_table.find t key <> expected then ok := false
      done;
      if Int_table.length t <> Hashtbl.length h then ok := false;
      !ok)

(* ---------------- Bitset scan primitives ---------------- *)

let test_bitset_next_set () =
  let b = Bitset.create 130 in
  List.iter (Bitset.set b) [ 0; 62; 63; 64; 129 ];
  check int "from 0" 0 (Bitset.next_set b 0);
  check int "from 1" 62 (Bitset.next_set b 1);
  check int "word boundary 63" 63 (Bitset.next_set b 63);
  check int "word boundary 64" 64 (Bitset.next_set b 64);
  check int "last bit" 129 (Bitset.next_set b 65);
  check int "past the end" (-1) (Bitset.next_set b 130)

let test_bitset_nth_set () =
  let b = Bitset.create 130 in
  List.iter (Bitset.set b) [ 3; 62; 64; 100; 129 ];
  check int "0th" 3 (Bitset.nth_set b 0);
  check int "2nd crosses words" 64 (Bitset.nth_set b 2);
  check int "4th" 129 (Bitset.nth_set b 4);
  check int "out of range" (-1) (Bitset.nth_set b 5)

(* Reference for argmin: linear scan via next_set. *)
let argmin_reference b keys =
  let rec go s best =
    if s = -1 then best
    else
      go (Bitset.next_set b (s + 1))
        (if best = -1 || keys.(s) < keys.(best) then s else best)
  in
  go (Bitset.next_set b 0) (-1)

let prop_bitset_argmin_matches_scan =
  QCheck.Test.make ~name:"argmin = linear-scan reference" ~count:100
    QCheck.small_int (fun seed ->
      let n = 96 in
      let rng = Prng.create (seed + 11) in
      let b = Bitset.create n in
      let keys = Array.init n (fun _ -> Prng.int rng 1000) in
      for i = 0 to n - 1 do
        if Prng.int rng 3 = 0 then Bitset.set b i
      done;
      Bitset.argmin b keys = argmin_reference b keys)

(* ---------------- Incremental TAGE folds ---------------- *)

let test_tage_incremental_folds () =
  let t = Tage.create ~seed:0x7a9e () in
  let rng = Prng.create 0xbeef in
  for i = 0 to 2000 do
    let pc = Prng.int rng 512 in
    let taken = Prng.int rng 3 <> 0 in
    ignore (Tage.predict_and_update t ~pc ~taken);
    if i mod 100 = 0 then
      check bool
        (Printf.sprintf "fold registers = direct fold after %d updates" i)
        true (Tage.self_check t)
  done;
  check bool "fold registers sound at the end" true (Tage.self_check t)

(* ---------------- Engine-level: GC budget ---------------- *)

(* The tentpole invariant: the steady-state cycle loop does not allocate
   on the minor heap.  A single reintroduced closure or boxed temporary
   in the per-cycle path costs >= 2 words per cycle; the budget of 0.5
   leaves room only for one-time per-run setup. *)
let test_gc_budget () =
  let instrs = 50_000 in
  let w = Catalog.make ~input:Workload.Ref ~instrs "mcf" in
  let trace = Workload.trace w in
  let cfg = Cpu_config.skylake in
  let layout = Layout.compute ~critical:(fun _ -> false) trace.Executor.prog in
  (* warm run settles one-time lazy setup *)
  let stats = Cpu_core.run ~layout cfg trace in
  let m0 = Gc.minor_words () in
  let stats2 = Cpu_core.run ~layout cfg trace in
  let m1 = Gc.minor_words () in
  check int "deterministic rerun" stats.Cpu_stats.cycles stats2.Cpu_stats.cycles;
  let per_cycle = (m1 -. m0) /. float_of_int stats2.Cpu_stats.cycles in
  if per_cycle > 0.5 then
    Alcotest.failf
      "cycle loop allocates %.2f minor words per cycle (budget 0.5): the \
       allocation-free engine invariant is broken"
      per_cycle

(* ---------------- Engine-level: issue width ---------------- *)

let run_with cfg =
  let instrs = 30_000 in
  let w = Catalog.make ~input:Workload.Ref ~instrs "gcc" in
  let trace = Workload.trace w in
  let layout = Layout.compute ~critical:(fun _ -> false) trace.Executor.prog in
  Cpu_core.run ~layout cfg trace

let test_issue_width_default () =
  let base = run_with Cpu_config.skylake in
  let explicit =
    run_with
      (Cpu_config.with_issue_width Cpu_config.skylake.Cpu_config.fetch_width
         Cpu_config.skylake)
  in
  check int "default issue width = fetch width (cycles)" base.Cpu_stats.cycles
    explicit.Cpu_stats.cycles;
  check int "retired equal" base.Cpu_stats.retired explicit.Cpu_stats.retired

let test_issue_width_narrow () =
  let base = run_with Cpu_config.skylake in
  let narrow = run_with (Cpu_config.with_issue_width 1 Cpu_config.skylake) in
  check int "same instructions retired" base.Cpu_stats.retired
    narrow.Cpu_stats.retired;
  check bool
    (Printf.sprintf "single-issue is slower (%d vs %d cycles)"
       narrow.Cpu_stats.cycles base.Cpu_stats.cycles)
    true
    (narrow.Cpu_stats.cycles > base.Cpu_stats.cycles)

(* ---------------- Random-ready picker ---------------- *)

(* pick_random now stops at the winner via nth_set; the draw and the
   resulting pick sequence must stay what the full-iteration walk gave,
   i.e. the n-th ready slot in index order under the same seeded draws. *)
let test_pick_random_deterministic () =
  let mk () =
    let s = Scheduler.create ~seed:42 ~slots:16 Scheduler.Random_ready in
    for _ = 1 to 10 do
      ignore (Scheduler.allocate_slot s ~critical:false)
    done;
    for slot = 0 to 15 do
      if Scheduler.slot_occupied s slot then Scheduler.mark_ready s slot
    done;
    s
  in
  let a = mk () and b = mk () in
  Scheduler.begin_cycle a;
  Scheduler.begin_cycle b;
  for _ = 1 to 10 do
    check int "same seeded pick sequence" (Scheduler.select a) (Scheduler.select b)
  done;
  check int "exhausted candidates" (-1) (Scheduler.select a)

let () =
  Alcotest.run "engine"
    [ ( "event_wheel",
        [ Alcotest.test_case "basics" `Quick test_wheel_basic;
          Alcotest.test_case "same-cycle LIFO" `Quick test_wheel_same_cycle_lifo;
          Alcotest.test_case "wrap-around" `Quick test_wheel_wraparound;
          Alcotest.test_case "overflow bucket" `Quick test_wheel_overflow;
          Alcotest.test_case "rejects past cycles" `Quick test_wheel_rejects_past;
          Alcotest.test_case "overdue delivery after cycle jump" `Quick
            test_wheel_overdue_after_jump;
          Alcotest.test_case "clear for checkpoint restore" `Quick
            test_wheel_clear;
          QCheck_alcotest.to_alcotest prop_wheel_matches_hashtbl_calendar ] );
      ( "wakeup",
        [ Alcotest.test_case "LIFO pop" `Quick test_wakeup_lifo;
          Alcotest.test_case "multi-producer links" `Quick test_wakeup_multi_producer;
          Alcotest.test_case "reset" `Quick test_wakeup_reset ] );
      ("int_table", [ QCheck_alcotest.to_alcotest prop_int_table_matches_hashtbl ]);
      ( "bitset_scan",
        [ Alcotest.test_case "next_set" `Quick test_bitset_next_set;
          Alcotest.test_case "nth_set" `Quick test_bitset_nth_set;
          QCheck_alcotest.to_alcotest prop_bitset_argmin_matches_scan ] );
      ("tage", [ Alcotest.test_case "incremental folds" `Quick test_tage_incremental_folds ]);
      ("gc_budget", [ Alcotest.test_case "steady state allocation-free" `Quick test_gc_budget ]);
      ( "issue_width",
        [ Alcotest.test_case "default equals fetch width" `Quick test_issue_width_default;
          Alcotest.test_case "narrow issue is slower" `Quick test_issue_width_narrow;
          Alcotest.test_case "random picker deterministic" `Quick
            test_pick_random_deterministic ] ) ]
