(* Soundness properties for the crisp_check dataflow engine.

   The oracle is Trace.Executor itself: a range fact is sound iff no
   dynamic register value ever falls outside its interval, and a
   footprint interval is sound iff it contains every effective address
   the pc produces.  Programs are generated Call/Ret-free — the solver
   models a call's fall-through with the call-site fact (callee effects
   invisible), a documented context-insensitive approximation that the
   replay oracle would rightly flag. *)

module RangesSolver = Dataflow.Solver (Dataflow.Ranges)
module LiveSolver = Dataflow.Solver (Dataflow.Live)
module ReachSolver = Dataflow.Solver (Dataflow.Reaching)

(* ---------------- random Call/Ret-free programs ---------------- *)

let words = 256

let mem_base = 0x40000

(* Structured generator: a counted loop of random blocks — masked
   gathers/scatters into a small image, ALU/Mul/Div arithmetic and
   data-dependent forward branches — so the solver sees back edges,
   joins, refinement and memory ops on every run. *)
let random_program seed =
  let rng = Prng.create (7_000 + seed) in
  let reg () = 1 + Prng.int rng 8 in
  let alu_kinds =
    [| Isa.Add; Isa.Sub; Isa.Xor; Isa.And; Isa.Or; Isa.Shl; Isa.Shr; Isa.Cmp |]
  in
  let open Program in
  let block b =
    let body =
      List.concat
        (List.init
           (2 + Prng.int rng 4)
           (fun _ ->
             match Prng.int rng 7 with
             | 0 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm mem_base);
                 Ld (reg (), 9, 0) ]
             | 1 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm mem_base);
                 St (reg (), 9, 0) ]
             | 2 -> [ Mul (reg (), reg (), reg ()) ]
             | 3 -> [ Div (reg (), reg (), reg ()) ]
             | 4 -> [ Li (reg (), Prng.int rng 10_000 - 5_000) ]
             | _ ->
               [ Alu
                   ( alu_kinds.(Prng.int rng (Array.length alu_kinds)),
                     reg (), reg (),
                     if Prng.int rng 2 = 0 then Reg (reg ())
                     else Imm (Prng.int rng 64) ) ]))
    in
    let skip = Printf.sprintf "skip%d" b in
    body
    @ [ Br
          ( (match Prng.int rng 4 with
            | 0 -> Isa.Lt
            | 1 -> Isa.Ge
            | 2 -> Isa.Eq
            | _ -> Isa.Ne),
            reg (), Imm (Prng.int rng 128), skip );
        Alu (Isa.Xor, reg (), reg (), Imm (b + 1));
        Label skip ]
  in
  let blocks = 2 + Prng.int rng 3 in
  let code =
    [ Label "loop" ]
    @ List.concat (List.init blocks block)
    @ [ Alu (Isa.Add, 10, 10, Imm 1);
        Br (Isa.Lt, 10, Imm 1_000_000, "loop");
        Halt ]
  in
  let prog = assemble ~name:(Printf.sprintf "df%d" seed) code in
  let reg_init = List.init 10 (fun r -> (r + 1, Prng.int rng 1_000)) in
  let mem_init = Hashtbl.create 256 in
  for i = 0 to words - 1 do
    Hashtbl.replace mem_init (mem_base + (i * 8)) (Prng.int rng 1_000_000)
  done;
  (prog, reg_init, mem_init)

let solve_ranges prog reg_init =
  let cfg = Dataflow.Cfg.build prog.Program.code in
  let ranges =
    RangesSolver.solve cfg ~init:Dataflow.Ranges.Unreached
      ~entry:(Dataflow.Ranges.entry_of reg_init)
  in
  (cfg, ranges)

(* ---------------- property: range facts vs replay ---------------- *)

let prop_ranges_sound =
  QCheck.Test.make ~name:"no range fact is ever contradicted by replay" ~count:40
    QCheck.small_int (fun seed ->
      let prog, reg_init, mem_init = random_program seed in
      let _, ranges = solve_ranges prog reg_init in
      let failure = ref None in
      let note fmt = Printf.ksprintf (fun s -> failure := Some s) fmt in
      let on_step pc regs =
        if !failure = None then
          match ranges.Dataflow.before.(pc) with
          | Dataflow.Ranges.Unreached ->
            note "pc %d executed but its fact is Unreached" pc
          | Dataflow.Ranges.Env env ->
            Array.iteri
              (fun r i ->
                if not (Dataflow.Interval.mem regs.(r) i) then
                  note "pc %d: r%d = %d outside %s" pc r regs.(r)
                    (Format.asprintf "%a" Dataflow.Interval.pp i))
              env
      in
      ignore (Executor.run ~reg_init ~mem_init ~on_step ~max_instrs:4_000 prog);
      match !failure with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* ---------------- property: footprint intervals vs replay -------- *)

let prop_footprint_sound =
  QCheck.Test.make
    ~name:"every dynamic effective address lies in its footprint interval"
    ~count:40 QCheck.small_int (fun seed ->
      let prog, reg_init, mem_init = random_program seed in
      let cfg, ranges = solve_ranges prog reg_init in
      let fp = Dataflow.Footprint.compute cfg ~ranges in
      let trace = Executor.run ~reg_init ~mem_init ~max_instrs:4_000 prog in
      Array.for_all
        (fun (d : Executor.dyn) ->
          d.Executor.addr < 0
          ||
          match fp.(d.Executor.pc) with
          | Some i when Dataflow.Interval.mem d.Executor.addr i -> true
          | Some i ->
            QCheck.Test.fail_reportf "pc %d: addr %d outside footprint %s"
              d.Executor.pc d.Executor.addr
              (Format.asprintf "%a" Dataflow.Interval.pp i)
          | None ->
            QCheck.Test.fail_reportf "pc %d executed a memory op with no footprint"
              d.Executor.pc)
        trace.Executor.dyns)

(* ---------------- property: fixpoint termination ---------------- *)

(* Unstructured CFGs: raw decoded arrays whose branch/jump targets are
   arbitrary pcs, giving back edges the structured generator cannot
   produce (irreducible loops, branches into loop bodies).  The property
   is that every solve returns — widening must bound the interval
   lattice even here.  Register values are irrelevant; no replay. *)
let random_cfg seed =
  let rng = Prng.create (9_000 + seed) in
  let n = 8 + Prng.int rng 40 in
  let reg () = Prng.int rng 8 in
  let code =
    Array.init n (fun pc ->
        let d ?(dst = -1) ?(src1 = -1) ?(src2 = -1) ?(imm = 0) ?(target = -1) op =
          { Program.op; dst; src1; src2; imm; target }
        in
        if pc = n - 1 then d Isa.Halt
        else
          match Prng.int rng 8 with
          | 0 -> d ~dst:(reg ()) ~imm:(Prng.int rng 100) Isa.Li
          | 1 -> d ~dst:(reg ()) ~src1:(reg ()) ~src2:(reg ()) (Isa.Alu Isa.Add)
          | 2 -> d ~dst:(reg ()) ~src1:(reg ()) ~imm:(-1) ~src2:(-1) (Isa.Alu Isa.Sub)
          | 3 ->
            d ~src1:(reg ()) ~src2:(-1) ~imm:(Prng.int rng 64)
              ~target:(Prng.int rng n)
              (Isa.Branch (if Prng.int rng 2 = 0 then Isa.Lt else Isa.Ne))
          | 4 -> d ~target:(Prng.int rng n) Isa.Jump
          | 5 -> d ~dst:(reg ()) ~src1:(reg ()) ~imm:(Prng.int rng 512) Isa.Load
          | 6 -> d ~src1:(reg ()) ~src2:(reg ()) ~imm:(Prng.int rng 512) Isa.Store
          | _ -> d Isa.Nop)
  in
  code

let prop_fixpoint_terminates =
  QCheck.Test.make
    ~name:"the solver reaches a fixpoint on arbitrary CFGs with back edges"
    ~count:100 QCheck.small_int (fun seed ->
      let code = random_cfg seed in
      let cfg = Dataflow.Cfg.build code in
      let ranges =
        RangesSolver.solve cfg ~init:Dataflow.Ranges.Unreached
          ~entry:(Dataflow.Ranges.entry_of [])
      in
      let live =
        LiveSolver.solve ~direction:Dataflow.Backward cfg
          ~init:(Dataflow.Live.init ()) ~entry:(Dataflow.Live.init ())
      in
      let reach =
        ReachSolver.solve cfg ~init:(Dataflow.Reaching.init ())
          ~entry:(Dataflow.Reaching.entry ())
      in
      ranges.Dataflow.iterations > 0
      && live.Dataflow.iterations > 0
      && reach.Dataflow.iterations > 0)

(* ---------------- property: Static_crit determinism -------------- *)

let workload_of seed =
  let prog, reg_init, mem_init = random_program seed in
  { Workload.name = prog.Program.name;
    description = "random dataflow test program";
    program = prog;
    reg_init;
    mem_init;
    max_instrs = 4_000 }

let prop_static_crit_deterministic =
  QCheck.Test.make ~name:"Static_crit.analyze is deterministic" ~count:20
    QCheck.small_int (fun seed ->
      let w = workload_of seed in
      Static_crit.analyze w = Static_crit.analyze w)

(* ---------------- ground truth on catalog kernels ---------------- *)

let has_reason reason (st : Static_crit.t) =
  List.exists (fun c -> c.Static_crit.reason = reason) st.Static_crit.candidates

let test_static_crit_pointer_chase () =
  let st = Static_crit.analyze (Catalog.make ~instrs:8_000 "pointer_chase") in
  Alcotest.(check bool)
    "the pointer chase is predicted as a pointer chase" true
    (has_reason Static_crit.Pointer_chase st);
  List.iter
    (fun (c : Static_crit.candidate) ->
      Alcotest.(check bool)
        (Printf.sprintf "candidate %d has a non-empty slice" c.Static_crit.pc)
        true
        (c.Static_crit.slice <> [] && c.Static_crit.cost > 0))
    st.Static_crit.candidates

let test_static_crit_mcf () =
  let st = Static_crit.analyze (Catalog.make ~instrs:8_000 "mcf") in
  Alcotest.(check bool)
    "mcf: pointer chase found" true
    (has_reason Static_crit.Pointer_chase st);
  Alcotest.(check bool)
    "mcf: data-dependent branch found" true
    (has_reason Static_crit.Data_branch st)

let test_static_crit_xhpcg () =
  let st = Static_crit.analyze (Catalog.make ~instrs:8_000 "xhpcg") in
  Alcotest.(check bool)
    "xhpcg: indirect gather found" true
    (has_reason Static_crit.Indirect st)

let test_static_crit_streaming_quiet () =
  (* A regular streaming stencil gives the static predictor nothing:
     affine addresses are the stride prefetcher's job. *)
  let st = Static_crit.analyze (Catalog.make ~instrs:8_000 "fotonik") in
  Alcotest.(check int) "fotonik: no candidates" 0
    (List.length st.Static_crit.candidates)

(* Interval edge cases the random generator is unlikely to pin down. *)
let test_interval_ops () =
  let open Dataflow.Interval in
  let chk name v i = Alcotest.(check bool) name true (mem v i) in
  (* x land m is bounded by [0, m] for non-negative masks even when x
     is unknown: the payload scratch-buffer idiom. *)
  let masked = alu Isa.And top (const 0xF8) in
  chk "masked AND lower" 0 masked;
  chk "masked AND upper" 0xF8 masked;
  Alcotest.(check bool) "masked AND bounded" true (bounded masked);
  (* Division by an interval containing zero joins in the x/0 = 0
     executor semantics. *)
  chk "div by zero-containing interval keeps 0" 0 (div (const 100) (make (-1) 1));
  (* Singleton arithmetic is exact, including native wrap. *)
  (match is_const (add (const max_int) (const 1)) with
  | Some v -> Alcotest.(check bool) "singleton add wraps exactly" true (v = max_int + 1)
  | None -> Alcotest.fail "singleton add must stay constant");
  (* Non-singleton arithmetic that may wrap must go to top, never
     saturate. *)
  Alcotest.(check bool) "possibly-wrapping add is top" false
    (bounded (add (make 0 max_int) (make 0 max_int)))

let () =
  Alcotest.run "dataflow"
    [ ( "soundness",
        [ QCheck_alcotest.to_alcotest prop_ranges_sound;
          QCheck_alcotest.to_alcotest prop_footprint_sound ] );
      ("termination", [ QCheck_alcotest.to_alcotest prop_fixpoint_terminates ]);
      ( "static_crit",
        [ QCheck_alcotest.to_alcotest prop_static_crit_deterministic;
          Alcotest.test_case "pointer_chase ground truth" `Quick
            test_static_crit_pointer_chase;
          Alcotest.test_case "mcf ground truth" `Quick test_static_crit_mcf;
          Alcotest.test_case "xhpcg ground truth" `Quick test_static_crit_xhpcg;
          Alcotest.test_case "streaming kernel stays quiet" `Quick
            test_static_crit_streaming_quiet ] );
      ("intervals", [ Alcotest.test_case "edge cases" `Quick test_interval_ops ]) ]
