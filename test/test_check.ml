(* Tests for the crisp_check validation layer: the program lint, the
   independent slice/tag-budget verifier, and the pipeline scoreboard. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let has_rule rule diags = List.exists (fun d -> d.Lint.rule = rule) diags
let diag_strings diags = String.concat "; " (List.map (Format.asprintf "%a" Lint.pp_diag) diags)

(* ---------------- Lint: clean programs stay clean ---------------- *)

let clean_program () =
  let open Program in
  assemble ~name:"clean"
    [ Label "loop";
      Ld (2, 1, 0);
      Alu (Isa.Add, 3, 2, Imm 1);
      St (3, 1, 8);
      Alu (Isa.Add, 1, 1, Imm 16);
      Br (Isa.Lt, 1, Imm 0x10200, "loop");
      Halt ]

let test_lint_clean () =
  let mem = Hashtbl.create 64 in
  for i = 0 to 127 do
    Hashtbl.replace mem (0x10000 + (i * 8)) i
  done;
  let diags =
    match Lint.bounds_of_image mem with
    | Some bounds -> Lint.check_program ~initialised:[ 1 ] ~bounds (clean_program ())
    | None -> Alcotest.fail "image should have bounds"
  in
  check int (Printf.sprintf "no diagnostics (%s)" (diag_strings diags)) 0
    (List.length diags)

let test_lint_catalog_clean () =
  (* Every catalog workload lints down to exactly its pinned
     expected-findings ledger entry (empty for most).  Both directions
     are regressions: a new finding means a kernel or analysis bug, a
     pinned finding that stops firing means the analysis lost power. *)
  List.iter
    (fun name ->
      let w = Catalog.make ~instrs:1_000 name in
      let diags = Lint.check_workload w in
      let got = List.map (fun d -> (d.Lint.pc, d.Lint.rule)) diags in
      let expected =
        Option.value
          (List.assoc_opt name Check_runner.expected_findings)
          ~default:[]
      in
      check bool
        (Printf.sprintf "%s lints to its pinned findings (%s)" name
           (diag_strings diags))
        true
        (List.sort compare got = List.sort compare expected))
    Catalog.names

let test_lint_catalog_ledger_pinned () =
  (* The ledger itself is part of the contract: exactly these two
     findings, and the farm admission gate treats them as clean. *)
  check bool "ledger pins gcc pc 53 dataflow-unreachable and xhpcg pc 72 dead-store"
    true
    (Check_runner.expected_findings
    = [ ("gcc", [ (53, Lint.Dataflow_unreachable) ]);
        ("xhpcg", [ (72, Lint.Dead_store) ]) ]);
  List.iter
    (fun name ->
      check int
        (Printf.sprintf "%s passes the farm admission lint" name)
        0
        (List.length (Check_runner.lint_workload ~instrs:1_000 name)))
    [ "gcc"; "xhpcg"; "pointer_chase" ]

(* ---------------- Lint: every rule fires on a broken fixture -------- *)

(* Target fields outside the program cannot be produced by the assembler
   (labels always resolve); build the decoded form directly, as a
   hand-patched binary would look. *)
let raw code = { Program.name = "raw"; code = Array.of_list code; labels = [] }

let decoded ?(dst = -1) ?(src1 = -1) ?(src2 = -1) ?(imm = 0) ?(target = -1) op =
  { Program.op; dst; src1; src2; imm; target }

let test_lint_bad_target () =
  let prog =
    raw [ decoded ~target:7 Isa.Jump; decoded Isa.Halt ]
  in
  let diags = Lint.check_program prog in
  check bool "bad-target fires" true (has_rule Lint.Bad_target diags);
  check bool "bad-target is an error" true (Lint.errors diags <> [])

let test_lint_bad_register () =
  let prog = raw [ decoded ~dst:99 ~src1:0 ~src2:0 (Isa.Alu Isa.Add); decoded Isa.Halt ] in
  check bool "bad-register fires" true
    (has_rule Lint.Bad_register (Lint.check_program prog))

let test_lint_target_exits () =
  (* A label on the final instruction boundary: branching there ends
     execution.  Legal, but worth a warning. *)
  let open Program in
  let prog =
    assemble ~name:"exits" [ Br (Isa.Eq, 1, Imm 0, "out"); Nop; Label "out" ]
  in
  let diags = Lint.check_program ~initialised:[ 1 ] prog in
  check bool "target-exits fires" true (has_rule Lint.Target_exits diags);
  check bool "only a warning" true (Lint.errors diags = [])

let test_lint_undefined_use () =
  let open Program in
  (* r5 is read before anything defines it, and r5 also has a later
     producer — a plain undefined use, not a self-dependency. *)
  let prog =
    assemble ~name:"undef"
      [ Alu (Isa.Add, 2, 5, Imm 1); Li (5, 3); Alu (Isa.Add, 2, 5, Imm 1); Halt ]
  in
  let diags = Lint.check_program prog in
  check bool "undefined-use fires" true (has_rule Lint.Undefined_use diags);
  (* r2's unread writes are (correct) dead-store findings, so only the
     undefined-use rule must fall silent. *)
  check bool "declaring the register silences it" true
    (not (has_rule Lint.Undefined_use (Lint.check_program ~initialised:[ 5 ] prog)))

let test_lint_self_dependency () =
  let open Program in
  (* An undeclared counter: r7's only producer is the instruction reading
     it.  Must be an error until reg_init declares it. *)
  let prog =
    assemble ~name:"selfdep"
      [ Label "loop";
        Alu (Isa.Add, 7, 7, Imm 1);
        Br (Isa.Lt, 7, Imm 10, "loop");
        Halt ]
  in
  let diags = Lint.check_program prog in
  check bool "self-dependency fires" true (has_rule Lint.Self_dependency diags);
  check bool "it is an error" true (Lint.errors diags <> []);
  check bool "declaring the register silences it" true
    (Lint.check_program ~initialised:[ 7 ] prog = [])

let test_lint_unreachable () =
  let open Program in
  let prog =
    assemble ~name:"dead"
      [ Jmp "end"; Label "orphan"; Alu (Isa.Add, 1, 1, Imm 1); Ret; Label "end"; Halt ]
  in
  let diags = Lint.check_program ~initialised:[ 1 ] prog in
  check bool "unreachable fires" true (has_rule Lint.Unreachable diags)

let test_lint_addresses () =
  let open Program in
  let mem = Hashtbl.create 16 in
  for i = 0 to 63 do
    Hashtbl.replace mem (0x8000 + (i * 8)) i
  done;
  let bounds = Option.get (Lint.bounds_of_image mem) in
  let negative =
    assemble ~name:"neg" [ Li (1, 16); Ld (2, 1, -4096); Halt ]
  in
  let diags = Lint.check_program ~bounds negative in
  check bool "negative-address fires" true (has_rule Lint.Negative_address diags);
  check bool "negative address is an error" true (Lint.errors diags <> []);
  let oob = assemble ~name:"oob" [ Li (1, 0x100000); Ld (2, 1, 0); Halt ] in
  check bool "out-of-bounds load fires" true
    (has_rule Lint.Oob_address (Lint.check_program ~bounds oob));
  (* A store past the image is an output buffer, not a bug. *)
  let store = assemble ~name:"store" [ Li (1, 0x100000); Li (2, 7); St (2, 1, 0); Halt ] in
  check bool "store past the image is fine" true
    (not (has_rule Lint.Oob_address (Lint.check_program ~bounds store)))

let test_lint_degenerate_branch () =
  let open Program in
  let prog =
    assemble ~name:"degen"
      [ Li (1, 0); Br (Isa.Eq, 1, Imm 0, "next"); Label "next"; Halt ]
  in
  check bool "degenerate-branch fires" true
    (has_rule Lint.Degenerate_branch (Lint.check_program prog))

(* ---------------- Lint v2: dataflow-powered rules ---------------- *)

let test_lint_dead_store () =
  let open Program in
  (* r1's first value is overwritten before any read. *)
  let dead =
    assemble ~name:"dead-store"
      [ Li (1, 5); Li (1, 7); Alu (Isa.Add, 2, 1, Imm 0); Halt ]
  in
  let diags = Lint.check_program dead in
  check bool
    (Printf.sprintf "dead-store fires (%s)" (diag_strings diags))
    true (has_rule Lint.Dead_store diags);
  (* Loads and long-latency ops are exempt even when unread: payload
     kernels write unread temps on purpose, for port pressure. *)
  let exempt =
    assemble ~name:"exempt"
      [ Li (1, 0x8000); Ld (2, 1, 0); Fmul (3, 4, 4); Halt ]
  in
  check bool "unread load/fp results are not dead stores" true
    (not (has_rule Lint.Dead_store (Lint.check_program ~initialised:[ 4 ] exempt)))

let test_lint_dataflow_unreachable () =
  let open Program in
  (* r1 is the constant 0, so the Eq branch always takes and the
     fall-through instruction is dataflow-dead despite being
     CFG-reachable. *)
  let prog =
    assemble ~name:"df-dead"
      [ Li (1, 0);
        Br (Isa.Eq, 1, Imm 0, "end");
        Alu (Isa.Add, 1, 1, Imm 1);
        Label "end";
        Halt ]
  in
  let diags = Lint.check_program prog in
  check bool
    (Printf.sprintf "dataflow-unreachable fires (%s)" (diag_strings diags))
    true
    (List.exists
       (fun d -> d.Lint.rule = Lint.Dataflow_unreachable && d.Lint.pc = 2)
       diags)

let test_lint_invariant_address () =
  let open Program in
  (* The address r3 = r1 + 64 is recomputed every iteration from the
     loop-invariant r1 and feeds the load: hoistable. *)
  let prog =
    assemble ~name:"inv-addr"
      [ Label "loop";
        Alu (Isa.Add, 3, 1, Imm 64);
        Ld (4, 3, 0);
        Alu (Isa.Add, 5, 5, Reg 4);
        Alu (Isa.Add, 2, 2, Imm 1);
        Br (Isa.Lt, 2, Imm 100, "loop");
        Halt ]
  in
  let diags = Lint.check_program ~initialised:[ 1; 2; 5 ] prog in
  check bool
    (Printf.sprintf "loop-invariant-address fires (%s)" (diag_strings diags))
    true (has_rule Lint.Invariant_address diags);
  (* Re-basing the address on the loop counter makes it variant. *)
  let variant =
    assemble ~name:"var-addr"
      [ Label "loop";
        Alu (Isa.Add, 3, 2, Imm 64);
        Ld (4, 3, 0);
        Alu (Isa.Add, 5, 5, Reg 4);
        Alu (Isa.Add, 2, 2, Imm 8);
        Br (Isa.Lt, 2, Imm 800, "loop");
        Halt ]
  in
  check bool "loop-variant address is fine" true
    (not
       (has_rule Lint.Invariant_address
          (Lint.check_program ~initialised:[ 1; 2; 5 ] variant)))

let test_lint_oob_range () =
  let open Program in
  let mem = Hashtbl.create 16 in
  for i = 0 to 63 do
    Hashtbl.replace mem (0x8000 + (i * 8)) i
  done;
  let bounds = Option.get (Lint.bounds_of_image mem) in
  (* r1 is unknown at entry but masked into [0, 7] then rebased far past
     the image: the whole (non-singleton) range misses it. *)
  let prog =
    assemble ~name:"oob-range"
      [ Alu (Isa.And, 1, 1, Imm 7);
        Alu (Isa.Shl, 1, 1, Imm 3);
        Alu (Isa.Add, 1, 1, Imm 0x9000);
        Ld (2, 1, 0);
        Halt ]
  in
  let diags = Lint.check_program ~initialised:[ 1 ] ~bounds prog in
  check bool
    (Printf.sprintf "out-of-bounds-range fires (%s)" (diag_strings diags))
    true (has_rule Lint.Oob_range diags);
  (* The same shape rebased inside the image is clean. *)
  let inside =
    assemble ~name:"in-range"
      [ Alu (Isa.And, 1, 1, Imm 7);
        Alu (Isa.Shl, 1, 1, Imm 3);
        Alu (Isa.Add, 1, 1, Imm 0x8000);
        Ld (2, 1, 0);
        Halt ]
  in
  check bool "in-image range is clean" true
    (not (has_rule Lint.Oob_range (Lint.check_program ~initialised:[ 1 ] ~bounds inside)))

let test_lint_bad_register_short_circuits () =
  (* Register indexes past the file would crash the dataflow domains'
     unguarded array accesses; the lint must stop at the structural
     diagnostics instead. *)
  let prog =
    raw
      [ decoded ~dst:99 ~src1:99 ~src2:99 (Isa.Alu Isa.Add);
        decoded ~dst:1 ~src1:1 ~imm:0 Isa.Load;
        decoded Isa.Halt ]
  in
  let diags = Lint.check_program prog in
  check bool "bad-register fires" true (has_rule Lint.Bad_register diags);
  check bool "only structural rules run" true
    (List.for_all
       (fun d ->
         match d.Lint.rule with
         | Lint.Bad_register | Lint.Bad_target | Lint.Target_exits
         | Lint.Degenerate_branch -> true
         | _ -> false)
       diags)

(* ---------------- Slice verifier ---------------- *)

(* The spill-chase kernel from test_analysis: a pointer chase whose address
   chain passes through memory, so follow_memory matters. *)
let spill_chase_trace ?(nodes = 8_000) () =
  let rng = Prng.create 21 in
  let mem = Hashtbl.create 1024 in
  let order = Array.init nodes (fun i -> i) in
  Prng.shuffle rng order;
  for i = 0 to nodes - 1 do
    let addr = 0x400000 + (order.(i) * 128) in
    Hashtbl.replace mem addr (0x400000 + (order.((i + 1) mod nodes) * 128));
    Hashtbl.replace mem (addr + 64) (Prng.int rng 100)
  done;
  let open Program in
  let prog =
    assemble ~name:"spill_chase"
      [ Label "loop";
        Ld (1, 1, 0);
        St (1, 2, 0);
        Fmul (4, 5, 5);
        Ld (3, 2, 0);
        Ld (6, 3, 64);
        Alu (Isa.And, 7, 6, Imm 1);
        Br (Isa.Eq, 7, Imm 0, "skip");
        Fadd (5, 5, 6);
        Label "skip";
        Jmp "loop" ]
  in
  Executor.run ~reg_init:[ (1, 0x400000); (2, 1024); (5, 3) ] ~mem_init:mem
    ~max_instrs:12_000 prog

let test_slice_verifier_accepts () =
  let trace = spill_chase_trace () in
  let deps = Deps.compute trace in
  List.iter
    (fun follow_memory ->
      let slice = Slicer.extract ~follow_memory trace deps ~root_pc:4 in
      let violations = Slice_check.verify_slice ~follow_memory trace deps slice in
      check int
        (Printf.sprintf "clean extraction verifies (follow_memory=%b)" follow_memory)
        0 (List.length violations))
    [ true; false ]

let violations_to_string vs =
  String.concat "; " (List.map (Format.asprintf "%a" Slice_check.pp_violation) vs)

let test_slice_verifier_rejects_corruption () =
  let trace = spill_chase_trace () in
  let deps = Deps.compute trace in
  let slice = Slicer.extract trace deps ~root_pc:4 in
  (* Drop a genuine member (the value load depends on the reload at pc 3):
     the closure is no longer closed. *)
  let dropped_member =
    let pcs = Array.copy slice.Slicer.pcs in
    pcs.(3) <- false;
    { slice with
      Slicer.pcs;
      pc_list = List.filter (fun pc -> pc <> 3) slice.Slicer.pc_list;
      edges = List.filter (fun (p, c) -> p <> 3 && c <> 3) slice.Slicer.edges }
  in
  check bool "missing member detected" true
    (Slice_check.verify_slice trace deps dropped_member <> []);
  (* Add a spurious member no dependency justifies. *)
  let spurious_pc = 2 in
  assert (not slice.Slicer.pcs.(spurious_pc));
  let spurious =
    let pcs = Array.copy slice.Slicer.pcs in
    pcs.(spurious_pc) <- true;
    { slice with
      Slicer.pcs;
      pc_list = List.sort compare (spurious_pc :: slice.Slicer.pc_list) }
  in
  check bool "spurious member detected" true
    (Slice_check.verify_slice trace deps spurious <> []);
  (* An edge that matches no dependency in the trace. *)
  let member = List.hd slice.Slicer.pc_list in
  let fake_edge = { slice with Slicer.edges = (4, member) :: slice.Slicer.edges } in
  let edge_violations = Slice_check.verify_slice trace deps fake_edge in
  check bool
    (Printf.sprintf "fabricated edge detected (%s)" (violations_to_string edge_violations))
    true
    (List.exists
       (fun (v : Slice_check.violation) ->
         v.Slice_check.pc = 4
         || String.length v.Slice_check.reason > 0)
       edge_violations
    && edge_violations <> [])

(* Satellite property: Slicer.extract output always verifies, on random
   programs, with and without dependencies through memory. *)
let random_trace seed =
  let rng = Prng.create (1000 + seed) in
  let words = 512 in
  let base = 0x20000 in
  let mem = Hashtbl.create 256 in
  for i = 0 to words - 1 do
    Hashtbl.replace mem (base + (i * 8)) (Prng.int rng 1_000_000)
  done;
  let reg () = 1 + Prng.int rng 8 in
  let alu_kinds = [| Isa.Add; Isa.Sub; Isa.Xor; Isa.And; Isa.Or; Isa.Shr |] in
  let open Program in
  let block b =
    let body =
      List.concat
        (List.init
           (2 + Prng.int rng 4)
           (fun _ ->
             match Prng.int rng 5 with
             | 0 ->
               (* random gather: mask into the image, then load *)
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm base);
                 Ld (reg (), 9, 0) ]
             | 1 ->
               [ Alu (Isa.And, 9, reg (), Imm (words - 1));
                 Alu (Isa.Shl, 9, 9, Imm 3);
                 Alu (Isa.Add, 9, 9, Imm base);
                 St (reg (), 9, 0) ]
             | 2 -> [ Mul (reg (), reg (), reg ()) ]
             | 3 -> [ Fadd (reg (), reg (), reg ()) ]
             | _ ->
               [ Alu
                   ( alu_kinds.(Prng.int rng (Array.length alu_kinds)),
                     reg (), reg (),
                     if Prng.int rng 2 = 0 then Reg (reg ())
                     else Imm (Prng.int rng 64) ) ]))
    in
    let skip = Printf.sprintf "skip%d" b in
    body
    @ [ Br ((if Prng.int rng 2 = 0 then Isa.Lt else Isa.Ge), reg (), Imm (Prng.int rng 128), skip);
        Alu (Isa.Xor, reg (), reg (), Imm b);
        Label skip ]
  in
  let blocks = 2 + Prng.int rng 3 in
  let code =
    [ Label "loop" ]
    @ List.concat (List.init blocks block)
    @ [ Alu (Isa.Add, 10, 10, Imm 1); Br (Isa.Lt, 10, Imm 1_000_000, "loop"); Halt ]
  in
  let reg_init = List.init 10 (fun r -> (r + 1, Prng.int rng 1_000)) in
  Executor.run ~reg_init ~mem_init:mem ~max_instrs:6_000
    (assemble ~name:(Printf.sprintf "random%d" seed) code)

let prop_extract_always_verifies =
  QCheck.Test.make ~name:"Slicer.extract output always passes the closure check"
    ~count:12 QCheck.small_int (fun seed ->
      let trace = random_trace seed in
      let deps = Deps.compute trace in
      let root_pcs =
        let seen = Hashtbl.create 16 in
        Array.iter
          (fun (d : Executor.dyn) ->
            match d.Executor.op with
            | Isa.Load | Isa.Branch _ -> Hashtbl.replace seen d.Executor.pc ()
            | _ -> ())
          trace.Executor.dyns;
        Hashtbl.fold (fun pc () acc -> pc :: acc) seen []
      in
      List.for_all
        (fun root_pc ->
          List.for_all
            (fun follow_memory ->
              let slice = Slicer.extract ~follow_memory trace deps ~root_pc in
              match Slice_check.verify_slice ~follow_memory trace deps slice with
              | [] -> true
              | vs ->
                QCheck.Test.fail_reportf "root %d (follow_memory=%b): %s" root_pc
                  follow_memory (violations_to_string vs))
            [ true; false ])
        root_pcs)

(* ---------------- Tagging verifier ---------------- *)

let analysis_artifacts () =
  let trace = spill_chase_trace () in
  let deps = Deps.compute trace in
  let report = Profiler.profile trace in
  let classified = Classifier.classify report Classifier.default in
  let options = Tagger.default_options in
  let tagger = Tagger.build ~options trace deps report classified in
  (report, options, tagger)

let test_tagging_verifier_accepts () =
  let report, options, tagger = analysis_artifacts () in
  check bool "tagger produced slices" true (tagger.Tagger.slices <> []);
  let violations = Slice_check.verify_tagging ~options report tagger in
  check int
    (Printf.sprintf "tagging verifies (%s)" (violations_to_string violations))
    0 (List.length violations)

let test_tagging_verifier_rejects_corruption () =
  let report, options, tagger = analysis_artifacts () in
  (* Flip one tag: the budget replay and static count both disagree. *)
  let some_pc =
    match tagger.Tagger.slices with
    | s :: _ -> s.Tagger.root_pc
    | [] -> Alcotest.fail "expected at least one slice"
  in
  let critical = Array.copy tagger.Tagger.critical in
  critical.(some_pc) <- not critical.(some_pc);
  let corrupt = { tagger with Tagger.critical } in
  check bool "flipped tag detected" true
    (Slice_check.verify_tagging ~options report corrupt <> []);
  (* Lie about a drop decision. *)
  let flipped_drop =
    match tagger.Tagger.slices with
    | s :: rest -> { tagger with Tagger.slices = { s with Tagger.dropped = not s.Tagger.dropped } :: rest }
    | [] -> assert false
  in
  check bool "flipped drop flag detected" true
    (Slice_check.verify_tagging ~options report flipped_drop <> [])

(* ---------------- Pipeline scoreboard ---------------- *)

let test_scoreboard_stats_identical () =
  let w = Catalog.make ~instrs:8_000 "pointer_chase" in
  let trace = Workload.trace w in
  List.iter
    (fun (label, policy, criticality) ->
      let cfg = Cpu_config.with_policy policy Cpu_config.skylake in
      let off = Cpu_core.run ~criticality cfg trace in
      let on =
        Cpu_core.run ~criticality (Cpu_config.with_scoreboard true cfg) trace
      in
      check bool (label ^ ": no violation and identical stats") true (off = on))
    [ ("oldest_ready", Scheduler.Oldest_ready, Cpu_core.No_tags);
      ("crisp", Scheduler.Crisp, Cpu_core.Static_tags (fun pc -> pc mod 3 = 0));
      ("random", Scheduler.Random_ready, Cpu_core.No_tags) ]

let test_scoreboard_catches_prio_bypass () =
  (* Hand-build an RS state where an older ready-and-critical instruction
     exists, then claim a younger non-critical slot was selected: the CRISP
     PRIO discipline is violated and the scoreboard must object. *)
  let cfg = Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake in
  let sched = Scheduler.create ~slots:8 Scheduler.Crisp in
  let older = Option.get (Scheduler.allocate sched ~critical:true) in
  let younger = Option.get (Scheduler.allocate sched ~critical:false) in
  Scheduler.mark_ready sched older;
  Scheduler.mark_ready sched younger;
  Scheduler.begin_cycle sched;
  let sb = Scoreboard.create cfg in
  check bool "bypassing the critical pick raises Violation" true
    (match
       Scoreboard.check_select sb sched ~cycle:1 ~slot:younger ~ready:true
         ~deps_left:0
     with
    | () -> false
    | exception Scoreboard.Violation _ -> true);
  (* The legitimate selection passes. *)
  let picked = Scheduler.select sched in
  check int "scheduler itself picks the critical instruction" older picked;
  Scoreboard.check_select sb sched ~cycle:1 ~slot:picked ~ready:true ~deps_left:0;
  check bool "checks were counted" true (Scoreboard.checks_run sb > 0)

let test_scoreboard_catches_out_of_order_retire () =
  let sb = Scoreboard.create Cpu_config.skylake in
  Scoreboard.check_retire sb ~cycle:10 ~dyn:5 ~expected:5;
  check bool "out-of-order retirement raises Violation" true
    (match Scoreboard.check_retire sb ~cycle:11 ~dyn:7 ~expected:6 with
    | () -> false
    | exception Scoreboard.Violation _ -> true)

let test_scheduler_self_check_clean () =
  let sched = Scheduler.create ~slots:16 Scheduler.Oldest_ready in
  let slots =
    List.init 10 (fun i ->
        let s = Option.get (Scheduler.allocate sched ~critical:(i mod 2 = 0)) in
        Scheduler.mark_ready sched s;
        s)
  in
  check (Alcotest.option Alcotest.string) "sound state" None
    (Scheduler.self_check sched);
  List.iter (fun s -> Scheduler.issue sched s) slots;
  check (Alcotest.option Alcotest.string) "sound after drain" None
    (Scheduler.self_check sched)

(* ---------------- Check runner ---------------- *)

let test_check_runner_clean () =
  let r =
    Check_runner.check_workload ~instrs:8_000 ~train_instrs:6_000 ~scoreboard:true
      ~static:true "pointer_chase"
  in
  check bool
    (Format.asprintf "runner reports clean (%a)" Check_runner.pp_report r)
    true (Check_runner.ok r);
  check bool "slices were verified" true (r.Check_runner.roots > 0);
  check int "scoreboard comparisons ran" 2 (List.length r.Check_runner.scoreboard);
  match r.Check_runner.static with
  | None -> Alcotest.fail "static report requested but missing"
  | Some s ->
    check bool "static predictor deterministic" true s.Check_runner.deterministic;
    check bool "static predictor found the chase" true (s.Check_runner.candidates > 0)

let () =
  Alcotest.run "check"
    [ ( "lint",
        [ Alcotest.test_case "clean program" `Quick test_lint_clean;
          Alcotest.test_case "catalog matches the ledger" `Slow
            test_lint_catalog_clean;
          Alcotest.test_case "expected-findings ledger pinned" `Quick
            test_lint_catalog_ledger_pinned;
          Alcotest.test_case "bad target" `Quick test_lint_bad_target;
          Alcotest.test_case "bad register" `Quick test_lint_bad_register;
          Alcotest.test_case "target exits" `Quick test_lint_target_exits;
          Alcotest.test_case "undefined use" `Quick test_lint_undefined_use;
          Alcotest.test_case "self dependency" `Quick test_lint_self_dependency;
          Alcotest.test_case "unreachable" `Quick test_lint_unreachable;
          Alcotest.test_case "addresses" `Quick test_lint_addresses;
          Alcotest.test_case "degenerate branch" `Quick test_lint_degenerate_branch;
          Alcotest.test_case "dead store" `Quick test_lint_dead_store;
          Alcotest.test_case "dataflow unreachable" `Quick
            test_lint_dataflow_unreachable;
          Alcotest.test_case "loop-invariant address" `Quick
            test_lint_invariant_address;
          Alcotest.test_case "out-of-bounds range" `Quick test_lint_oob_range;
          Alcotest.test_case "bad register short-circuits dataflow" `Quick
            test_lint_bad_register_short_circuits ] );
      ( "slice_verifier",
        [ Alcotest.test_case "accepts clean slices" `Quick test_slice_verifier_accepts;
          Alcotest.test_case "rejects corruption" `Quick
            test_slice_verifier_rejects_corruption;
          QCheck_alcotest.to_alcotest prop_extract_always_verifies ] );
      ( "tagging_verifier",
        [ Alcotest.test_case "accepts clean tagging" `Quick test_tagging_verifier_accepts;
          Alcotest.test_case "rejects corruption" `Quick
            test_tagging_verifier_rejects_corruption ] );
      ( "scoreboard",
        [ Alcotest.test_case "stats identical on/off" `Slow
            test_scoreboard_stats_identical;
          Alcotest.test_case "catches PRIO bypass" `Quick
            test_scoreboard_catches_prio_bypass;
          Alcotest.test_case "catches out-of-order retire" `Quick
            test_scoreboard_catches_out_of_order_retire;
          Alcotest.test_case "scheduler self-check" `Quick
            test_scheduler_self_check_clean ] );
      ( "runner",
        [ Alcotest.test_case "pointer_chase end-to-end" `Slow test_check_runner_clean ] ) ]
