(* Counterexample probe: does Slice_check.verify_slice accept Slicer.extract
   output on a trace where different dynamic instances of the same static pc
   have different producers? *)
let nop : Program.decoded =
  { Program.op = Isa.Nop; dst = -1; src1 = -1; src2 = -1; imm = 0; target = -1 }

let prog : Program.t =
  { Program.name = "probe"; code = Array.make 5 nop; labels = [] }

let dyn pc : Executor.dyn =
  { Executor.pc; op = Isa.Nop; dst = -1; src1 = -1; src2 = -1; addr = -1;
    taken = false; next_pc = 0 }

(* dyn idx: 0:D(pc4) 1:B'(pc2,prod1=0) 2:C(pc3) 3:B(pc2,prod1=2)
   4:A(pc1,prod1=1) 5:R(pc0,prod1=4,prod2=3) *)
let trace : Executor.t =
  { Executor.prog; dyns = [| dyn 4; dyn 2; dyn 3; dyn 2; dyn 1; dyn 0 |];
    halted = true }

let deps : Deps.t =
  { Deps.prod1 = [| -1; 0; -1; 2; 1; 4 |];
    prod2 = [| -1; -1; -1; -1; -1; 3 |];
    prod_mem = [| -1; -1; -1; -1; -1; -1 |] }

let () =
  let slice = Slicer.extract trace deps ~root_pc:0 in
  Printf.printf "slice members: %s\n"
    (String.concat "," (List.map string_of_int slice.Slicer.pc_list));
  let violations = Slice_check.verify_slice trace deps slice in
  Printf.printf "violations: %d\n" (List.length violations);
  List.iter
    (fun v -> Format.printf "  %a@." Slice_check.pp_violation v)
    violations
