type vector = (string * float) list

let normalise entries =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg (Printf.sprintf "Obs_golden: duplicate key %S" a);
      check rest
    | _ -> ()
  in
  check sorted;
  sorted

let to_json_string ~meta entries =
  let entries = normalise entries in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s,\n"
           (Obs_json.to_string (Obs_json.Str k))
           (Obs_json.to_string (Obs_json.Str v))))
    meta;
  Buffer.add_string buf "  \"entries\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s: %s%s\n"
           (Obs_json.to_string (Obs_json.Str k))
           (Obs_json.to_string (Obs_json.Num v))
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let of_json_string src =
  match Obs_json.parse src with
  | Obs_json.Obj fields ->
    let meta =
      List.filter_map
        (fun (k, v) ->
          match v with
          | Obs_json.Str s -> Some (k, s)
          | _ -> None)
        fields
    in
    let entries =
      match List.assoc_opt "entries" fields with
      | Some (Obs_json.Obj kvs) ->
        List.map (fun (k, v) -> (k, Obs_json.to_float v)) kvs
      | _ -> failwith "Obs_golden.of_json_string: missing \"entries\" object"
    in
    (meta, normalise entries)
  | _ -> failwith "Obs_golden.of_json_string: top level is not an object"

type mismatch =
  | Missing of string
  | Extra of string
  | Drift of { key : string; golden : float; actual : float; rtol : float }

let pp_mismatch fmt = function
  | Missing key -> Format.fprintf fmt "%s: in the golden but not in this run" key
  | Extra key -> Format.fprintf fmt "%s: new key not present in the golden" key
  | Drift { key; golden; actual; rtol } ->
    Format.fprintf fmt "%s: golden %.17g, got %.17g (rtol %.1e)" key golden actual rtol

let within ~rtol golden actual =
  golden = actual
  || Float.abs (actual -. golden) <= rtol *. Float.max (Float.abs golden) (Float.abs actual)

let diff ?(rtol_for = fun _ -> 0.) ~golden actual =
  let golden = normalise golden and actual = normalise actual in
  let rec go g a acc =
    match (g, a) with
    | [], [] -> List.rev acc
    | (k, _) :: g, [] -> go g [] (Missing k :: acc)
    | [], (k, _) :: a -> go [] a (Extra k :: acc)
    | (gk, gv) :: g', (ak, av) :: a' ->
      if gk < ak then go g' a (Missing gk :: acc)
      else if ak < gk then go g a' (Extra ak :: acc)
      else begin
        let rtol = rtol_for gk in
        if within ~rtol gv av then go g' a' acc
        else go g' a' (Drift { key = gk; golden = gv; actual = av; rtol } :: acc)
      end
  in
  go golden actual []
