(** Ring-buffered binary event log.

    A bounded circular buffer of packed (cycle, kind, a, b) event records
    backed by one flat int array: recording is four stores and never
    allocates, so tracing long runs costs O(capacity) memory.  When the
    ring is full the oldest record is overwritten and counted in
    {!dropped} — the exporters always see the most recent window. *)

type t

val create : capacity:int -> t
(** Ring holding up to [capacity] events ([capacity >= 1]). *)

val capacity : t -> int

val record : t -> cycle:int -> kind:int -> a:int -> b:int -> unit

val length : t -> int
(** Events currently held (at most the capacity). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** [recorded - length]: events lost to overwriting. *)

val iter : (cycle:int -> kind:int -> a:int -> b:int -> unit) -> t -> unit
(** Visit the retained events oldest-first. *)

val write_binary : out_channel -> t -> unit
(** Serialise the retained window (magic, counts, then 4 big-endian
    32-bit words per event). *)

val read_binary : in_channel -> t
(** Inverse of {!write_binary}; raises [Failure] on a bad magic number.
    The reloaded ring reports the original [dropped] count. *)
