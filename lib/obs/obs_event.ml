let fetch = 0
let dispatch = 1
let select = 2
let issue = 3
let mshr_retry = 4
let complete = 5
let retire = 6
let redirect_mispredict = 7
let redirect_btb_miss = 8
let redirect_ras = 9
let l1d_miss_llc = 10
let l1d_miss_mem = 11
let l1i_miss = 12
let prefetch = 13

let names =
  [| "fetch"; "dispatch"; "select"; "issue"; "mshr_retry"; "complete"; "retire";
     "redirect_mispredict"; "redirect_btb_miss"; "redirect_ras"; "l1d_miss_llc";
     "l1d_miss_mem"; "l1i_miss"; "prefetch" |]

let name k =
  if k >= 0 && k < Array.length names then names.(k)
  else Printf.sprintf "unknown_%d" k
