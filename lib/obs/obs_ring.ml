type t = {
  buf : int array;  (* 4 words per event: cycle, kind, a, b *)
  cap : int;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable total : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Obs_ring.create: capacity must be positive";
  { buf = Array.make (capacity * 4) 0; cap = capacity; start = 0; len = 0; total = 0 }

let capacity t = t.cap

let record t ~cycle ~kind ~a ~b =
  let slot = (t.start + t.len) mod t.cap in
  let base = slot * 4 in
  t.buf.(base) <- cycle;
  t.buf.(base + 1) <- kind;
  t.buf.(base + 2) <- a;
  t.buf.(base + 3) <- b;
  if t.len < t.cap then t.len <- t.len + 1 else t.start <- (t.start + 1) mod t.cap;
  t.total <- t.total + 1

let length t = t.len

let recorded t = t.total

let dropped t = t.total - t.len

let iter f t =
  for i = 0 to t.len - 1 do
    let base = (t.start + i) mod t.cap * 4 in
    f ~cycle:t.buf.(base) ~kind:t.buf.(base + 1) ~a:t.buf.(base + 2) ~b:t.buf.(base + 3)
  done

let magic = 0x0b5e_0001

let write_binary oc t =
  output_binary_int oc magic;
  output_binary_int oc t.cap;
  output_binary_int oc t.len;
  output_binary_int oc (dropped t);
  iter
    (fun ~cycle ~kind ~a ~b ->
      output_binary_int oc cycle;
      output_binary_int oc kind;
      output_binary_int oc a;
      output_binary_int oc b)
    t

let read_binary ic =
  if input_binary_int ic <> magic then failwith "Obs_ring.read_binary: bad magic";
  let cap = input_binary_int ic in
  let len = input_binary_int ic in
  let dropped = input_binary_int ic in
  let t = create ~capacity:cap in
  for _ = 1 to len do
    let cycle = input_binary_int ic in
    let kind = input_binary_int ic in
    let a = input_binary_int ic in
    let b = input_binary_int ic in
    record t ~cycle ~kind ~a ~b
  done;
  t.total <- t.total + dropped;
  t
