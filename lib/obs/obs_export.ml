let jsonl buf tracer =
  Obs_ring.iter
    (fun ~cycle ~kind ~a ~b ->
      Buffer.add_string buf
        (Printf.sprintf "{\"c\":%d,\"k\":%s,\"a\":%d,\"b\":%d}\n" cycle
           (Obs_json.to_string (Obs_json.Str (Obs_event.name kind)))
           a b))
    (Obs_tracer.ring tracer)

(* Chrome's viewer draws one swim lane per (pid, tid); spreading
   instructions over a fixed pool of lanes keeps overlapping lifetimes
   visible without creating one row per instruction. *)
let instr_lanes = 24

(* Instant events sit on dedicated lanes above the instruction pool. *)
let event_lane kind = 100 + kind

let instant_kinds =
  [ Obs_event.redirect_mispredict; Obs_event.redirect_btb_miss; Obs_event.redirect_ras;
    Obs_event.l1d_miss_llc; Obs_event.l1d_miss_mem; Obs_event.l1i_miss;
    Obs_event.prefetch; Obs_event.select ]

let chrome_trace buf tracer =
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit json =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Obs_json.to_buffer buf json
  in
  let open Obs_json in
  for dyn = 0 to Obs_tracer.num_dyns tracer - 1 do
    match Obs_tracer.stamp tracer dyn with
    | Some s when s.Obs_tracer.retire >= 0 && s.Obs_tracer.dispatch >= 0 ->
      emit
        (Obj
           [ ("name", Str (Printf.sprintf "d%d pc=%d" dyn s.Obs_tracer.pc));
             ("cat", Str (if s.Obs_tracer.critical then "critical" else "instr"));
             ("ph", Str "X");
             ("ts", num_int s.Obs_tracer.dispatch);
             ("dur", num_int (max 1 (s.Obs_tracer.retire - s.Obs_tracer.dispatch)));
             ("pid", num_int 0);
             ("tid", num_int (dyn mod instr_lanes));
             ("args",
              Obj
                [ ("dyn", num_int dyn);
                  ("fetch", num_int s.Obs_tracer.fetch);
                  ("issue", num_int s.Obs_tracer.issue);
                  ("complete", num_int s.Obs_tracer.complete);
                  ("critical", Bool s.Obs_tracer.critical) ]) ])
    | Some _ | None -> ()
  done;
  Obs_ring.iter
    (fun ~cycle ~kind ~a ~b ->
      (* PRIO-override picks are the interesting subset of selections. *)
      let wanted =
        if kind = Obs_event.select then b = 1 else List.mem kind instant_kinds
      in
      if wanted then
        emit
          (Obj
             [ ("name",
                Str (if kind = Obs_event.select then "prio_override"
                     else Obs_event.name kind));
               ("cat", Str "event");
               ("ph", Str "i");
               ("s", Str "g");
               ("ts", num_int cycle);
               ("pid", num_int 0);
               ("tid", num_int (event_lane kind));
               ("args", Obj [ ("a", num_int a); ("b", num_int b) ]) ]))
    (Obs_tracer.ring tracer);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}"
