type stamp = {
  pc : int;
  fetch : int;
  dispatch : int;
  issue : int;
  complete : int;
  retire : int;
  critical : bool;
}

type t = {
  ring : Obs_ring.t;
  (* per-dyn stage timestamps, grown on demand; -1 = stage not reached *)
  mutable pc_of : int array;
  mutable fetch_c : int array;
  mutable dispatch_c : int array;
  mutable issue_c : int array;
  mutable complete_c : int array;
  mutable retire_c : int array;
  mutable crit : Bytes.t;
  mutable max_dyn : int;  (* highest dyn seen + 1 *)
  (* counters *)
  mutable fetches : int;
  mutable dispatches : int;
  mutable selects : int;
  mutable prio_overrides : int;
  mutable issues : int;
  mutable mshr_retries : int;
  mutable completes : int;
  mutable retires : int;
  mutable retires_critical : int;
  mutable redirects_mispredict : int;
  mutable redirects_btb : int;
  mutable redirects_ras : int;
  mutable l1d_llc : int;
  mutable l1d_mem : int;
  mutable l1i : int;
  mutable prefetches : int;
  mutable cycles_sampled : int;
  (* histograms *)
  hist_rob : Obs_hist.t;
  hist_rs : Obs_hist.t;
  hist_rs_wait : Obs_hist.t;
  hist_lat_critical : Obs_hist.t;
  hist_lat_noncritical : Obs_hist.t;
}

let initial_dyns = 4096

let create ?(ring_capacity = 65536) () =
  { ring = Obs_ring.create ~capacity:ring_capacity;
    pc_of = Array.make initial_dyns (-1);
    fetch_c = Array.make initial_dyns (-1);
    dispatch_c = Array.make initial_dyns (-1);
    issue_c = Array.make initial_dyns (-1);
    complete_c = Array.make initial_dyns (-1);
    retire_c = Array.make initial_dyns (-1);
    crit = Bytes.make initial_dyns '\000';
    max_dyn = 0;
    fetches = 0;
    dispatches = 0;
    selects = 0;
    prio_overrides = 0;
    issues = 0;
    mshr_retries = 0;
    completes = 0;
    retires = 0;
    retires_critical = 0;
    redirects_mispredict = 0;
    redirects_btb = 0;
    redirects_ras = 0;
    l1d_llc = 0;
    l1d_mem = 0;
    l1i = 0;
    prefetches = 0;
    cycles_sampled = 0;
    hist_rob = Obs_hist.create ();
    hist_rs = Obs_hist.create ();
    hist_rs_wait = Obs_hist.create ();
    hist_lat_critical = Obs_hist.create ();
    hist_lat_noncritical = Obs_hist.create () }

let grow_int old n =
  let fresh = Array.make n (-1) in
  Array.blit old 0 fresh 0 (Array.length old);
  fresh

let ensure t dyn =
  let cap = Array.length t.fetch_c in
  if dyn >= cap then begin
    let n = max (cap * 2) (dyn + 1) in
    t.pc_of <- grow_int t.pc_of n;
    t.fetch_c <- grow_int t.fetch_c n;
    t.dispatch_c <- grow_int t.dispatch_c n;
    t.issue_c <- grow_int t.issue_c n;
    t.complete_c <- grow_int t.complete_c n;
    t.retire_c <- grow_int t.retire_c n;
    let crit = Bytes.make n '\000' in
    Bytes.blit t.crit 0 crit 0 (Bytes.length t.crit);
    t.crit <- crit
  end;
  if dyn >= t.max_dyn then t.max_dyn <- dyn + 1

let record t ~cycle ~kind ~a ~b = Obs_ring.record t.ring ~cycle ~kind ~a ~b

let on_fetch t ~cycle ~dyn ~pc =
  ensure t dyn;
  t.pc_of.(dyn) <- pc;
  t.fetch_c.(dyn) <- cycle;
  t.fetches <- t.fetches + 1;
  record t ~cycle ~kind:Obs_event.fetch ~a:dyn ~b:pc

let on_dispatch t ~cycle ~dyn ~rob ~critical =
  ensure t dyn;
  t.dispatch_c.(dyn) <- cycle;
  if critical then Bytes.set t.crit dyn '\001';
  t.dispatches <- t.dispatches + 1;
  record t ~cycle ~kind:Obs_event.dispatch ~a:dyn ~b:rob

let on_select t ~cycle ~dyn ~prio_override =
  t.selects <- t.selects + 1;
  if prio_override then t.prio_overrides <- t.prio_overrides + 1;
  record t ~cycle ~kind:Obs_event.select ~a:dyn ~b:(if prio_override then 1 else 0)

let on_issue t ~cycle ~dyn ~critical =
  ensure t dyn;
  t.issue_c.(dyn) <- cycle;
  t.issues <- t.issues + 1;
  if t.dispatch_c.(dyn) >= 0 then
    Obs_hist.add t.hist_rs_wait (cycle - t.dispatch_c.(dyn));
  record t ~cycle ~kind:Obs_event.issue ~a:dyn ~b:(if critical then 1 else 0)

let on_mshr_retry t ~cycle ~dyn =
  t.mshr_retries <- t.mshr_retries + 1;
  record t ~cycle ~kind:Obs_event.mshr_retry ~a:dyn ~b:0

let on_complete t ~cycle ~dyn =
  ensure t dyn;
  t.complete_c.(dyn) <- cycle;
  t.completes <- t.completes + 1;
  record t ~cycle ~kind:Obs_event.complete ~a:dyn ~b:0

let on_retire t ~cycle ~dyn ~critical =
  ensure t dyn;
  t.retire_c.(dyn) <- cycle;
  t.retires <- t.retires + 1;
  if critical then t.retires_critical <- t.retires_critical + 1;
  if t.issue_c.(dyn) >= 0 then begin
    let lat = cycle - t.issue_c.(dyn) in
    Obs_hist.add (if critical then t.hist_lat_critical else t.hist_lat_noncritical) lat
  end;
  record t ~cycle ~kind:Obs_event.retire ~a:dyn ~b:(if critical then 1 else 0)

let on_redirect t ~cycle ~dyn ~kind =
  let code =
    match kind with
    | `Mispredict ->
      t.redirects_mispredict <- t.redirects_mispredict + 1;
      Obs_event.redirect_mispredict
    | `Btb_miss ->
      t.redirects_btb <- t.redirects_btb + 1;
      Obs_event.redirect_btb_miss
    | `Ras_mispredict ->
      t.redirects_ras <- t.redirects_ras + 1;
      Obs_event.redirect_ras
  in
  record t ~cycle ~kind:code ~a:dyn ~b:0

let on_l1d_miss t ~cycle ~addr ~level =
  let code =
    match level with
    | `Llc ->
      t.l1d_llc <- t.l1d_llc + 1;
      Obs_event.l1d_miss_llc
    | `Mem ->
      t.l1d_mem <- t.l1d_mem + 1;
      Obs_event.l1d_miss_mem
  in
  record t ~cycle ~kind:code ~a:addr ~b:0

let on_l1i_miss t ~cycle ~addr ~level =
  t.l1i <- t.l1i + 1;
  record t ~cycle ~kind:Obs_event.l1i_miss ~a:addr
    ~b:(match level with `Llc -> 0 | `Mem -> 1)

let on_prefetch t ~cycle ~addr =
  t.prefetches <- t.prefetches + 1;
  record t ~cycle ~kind:Obs_event.prefetch ~a:addr ~b:0

let on_cycle t ~rob_occupancy ~rs_occupancy =
  t.cycles_sampled <- t.cycles_sampled + 1;
  Obs_hist.add t.hist_rob rob_occupancy;
  Obs_hist.add t.hist_rs rs_occupancy

let ring t = t.ring

let counters t =
  [ ("complete", t.completes);
    ("cycles_sampled", t.cycles_sampled);
    ("dispatch", t.dispatches);
    ("events_dropped", Obs_ring.dropped t.ring);
    ("events_recorded", Obs_ring.recorded t.ring);
    ("fetch", t.fetches);
    ("issue", t.issues);
    ("l1d_miss_llc", t.l1d_llc);
    ("l1d_miss_mem", t.l1d_mem);
    ("l1i_miss", t.l1i);
    ("mshr_retry", t.mshr_retries);
    ("prefetch", t.prefetches);
    ("prio_override", t.prio_overrides);
    ("redirect_btb_miss", t.redirects_btb);
    ("redirect_mispredict", t.redirects_mispredict);
    ("redirect_ras", t.redirects_ras);
    ("retire", t.retires);
    ("retire_critical", t.retires_critical);
    ("select", t.selects) ]

let counter t name =
  match List.assoc_opt name (counters t) with
  | Some v -> v
  | None -> 0

let histograms t =
  [ ("issue_to_retire_critical", t.hist_lat_critical);
    ("issue_to_retire_noncritical", t.hist_lat_noncritical);
    ("rob_occupancy", t.hist_rob);
    ("rs_occupancy", t.hist_rs);
    ("rs_wait", t.hist_rs_wait) ]

let num_dyns t = t.max_dyn

let stamp t dyn =
  if dyn < 0 || dyn >= t.max_dyn || t.fetch_c.(dyn) < 0 then None
  else
    Some
      { pc = t.pc_of.(dyn);
        fetch = t.fetch_c.(dyn);
        dispatch = t.dispatch_c.(dyn);
        issue = t.issue_c.(dyn);
        complete = t.complete_c.(dyn);
        retire = t.retire_c.(dyn);
        critical = Bytes.get t.crit dyn <> '\000' }
