let num_buckets = 48

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_v : int;
}

let create () = { counts = Array.make num_buckets 0; total = 0; sum = 0; max_v = 0 }

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 1 in
    let bound = ref 2 in
    (* value in [2^(i-1), 2^i) lands in bucket i *)
    while v >= !bound && !i < num_buckets - 1 do
      incr i;
      bound := !bound * 2
    done;
    !i
  end

let add t v =
  let v = max 0 v in
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v

let count t = t.total

let sum t = t.sum

let max_value t = t.max_v

let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

let lower_bound i = if i = 0 then 0 else 1 lsl (i - 1)

let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (lower_bound i, t.counts.(i)) :: !acc
  done;
  !acc
