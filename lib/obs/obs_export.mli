(** Exporters for the tracer: JSONL event log and Chrome trace JSON.

    The Chrome trace loads directly into chrome://tracing / Perfetto:
    every retired instruction becomes a complete ("X") duration event
    spanning dispatch to retire (args carry the full per-stage
    timestamps), and the retained ring window contributes instant ("i")
    events for frontend redirects, cache misses, prefetches and
    PRIO-override picks.  One simulated cycle maps to one microsecond of
    trace time. *)

val jsonl : Buffer.t -> Obs_tracer.t -> unit
(** One compact JSON object per retained ring event, oldest first:
    [{"c":cycle,"k":"kind","a":...,"b":...}]. *)

val chrome_trace : Buffer.t -> Obs_tracer.t -> unit
(** A complete Chrome trace object: [{"traceEvents":[...], ...}]. *)
