(** Minimal JSON tree, printer and parser.

    The observability layer exports Chrome traces, JSONL event logs and
    golden-stat snapshots, and the regression harness must read the
    snapshots back; no JSON library is available in the toolchain, so
    this implements the needed subset (the full value grammar; string
    escapes limited to the sequences we emit plus [\uXXXX] passthrough). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_int : int -> t

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering.  Numbers that are integral print
    without a fractional part; others print with enough digits to
    round-trip through {!parse} exactly. *)

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing fields or non-objects. *)

val to_float : t -> float
(** The number in a [Num]; raises [Invalid_argument] otherwise. *)
