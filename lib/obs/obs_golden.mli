(** Golden-stat vectors: named numeric snapshots with a toleranced diff.

    A vector is a sorted (name, value) list — simulator statistics,
    tracer counters and histogram moments flattened into one flat
    namespace.  Snapshots serialise to a stable JSON file; {!diff}
    compares a fresh vector against a committed golden under a per-key
    relative tolerance, so intentional recalibrations are explicit
    (regenerate the golden) while silent drift fails CI. *)

type vector = (string * float) list

val normalise : vector -> vector
(** Sort by key; raises [Invalid_argument] on duplicate keys. *)

val to_json_string : meta:(string * string) list -> vector -> string
(** Pretty-stable serialisation ([meta] string fields, then the entries
    object with sorted keys, one per line). *)

val of_json_string : string -> (string * string) list * vector
(** Raises {!Obs_json.Parse_error} or [Failure] on malformed input. *)

type mismatch =
  | Missing of string  (** key in the golden, absent from the fresh run *)
  | Extra of string  (** key in the fresh run, absent from the golden *)
  | Drift of { key : string; golden : float; actual : float; rtol : float }

val pp_mismatch : Format.formatter -> mismatch -> unit

val diff : ?rtol_for:(string -> float) -> golden:vector -> vector -> mismatch list
(** [diff ~golden actual]: key-wise comparison.  A key drifts when
    [|actual - golden| > rtol * max |golden| |actual|]; with the default
    [rtol_for] (constant 0) any difference is a drift. *)
