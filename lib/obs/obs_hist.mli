(** Power-of-two-bucketed histogram for non-negative integer samples
    (occupancies, wait cycles, latencies).

    Bucket 0 holds the value 0; bucket [i > 0] holds values in
    [\[2^(i-1), 2^i)].  Recording is a handful of integer ops with no
    allocation, so per-cycle sampling stays cheap. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample; negative samples are clamped to 0. *)

val count : t -> int
val sum : t -> int
val max_value : t -> int
(** Largest sample seen; 0 when empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val buckets : t -> (int * int) list
(** [(bucket_lower_bound, samples)] for every non-empty bucket, in
    increasing bound order. *)

val bucket_index : int -> int
(** The bucket a value falls into (exposed for tests). *)
