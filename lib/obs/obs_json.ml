type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_int n = Num (float_of_int n)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = {
  src : string;
  mutable pos : int;
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> fail "at %d: expected %c, got %c" c.pos ch got
  | None -> fail "at %d: expected %c, got end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at %d: expected %s" c.pos word

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then fail "truncated \\u escape";
        let code = int_of_string ("0x" ^ String.sub c.src (c.pos + 1) 4) in
        (* Only BMP codepoints we ourselves emit (control chars): keep the
           low byte, which is exact for them. *)
        Buffer.add_char buf (Char.chr (code land 0xff));
        c.pos <- c.pos + 4
      | Some ch -> fail "at %d: bad escape \\%c" c.pos ch
      | None -> fail "truncated escape");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek c with
    | Some ch -> numeric ch
    | None -> false
  do
    advance c
  done;
  let span = String.sub c.src start (c.pos - start) in
  match float_of_string_opt span with
  | Some v -> Num v
  | None -> fail "at %d: bad number %S" start span

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail "at %d: expected , or ] in array" c.pos
      in
      Arr (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec fields acc =
        let f = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (f :: acc)
        | Some '}' ->
          advance c;
          List.rev (f :: acc)
        | _ -> fail "at %d: expected , or } in object" c.pos
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let parse src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail "at %d: trailing garbage" c.pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num v -> v
  | _ -> invalid_arg "Obs_json.to_float: not a number"
