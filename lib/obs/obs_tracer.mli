(** Structured pipeline tracer: the object the cycle model emits into.

    One tracer accompanies one simulation run.  It maintains three views
    of the same event stream:

    - a bounded {!Obs_ring} binary log of every event (most recent
      window; see {!ring});
    - monotonic per-stage counters, exported as a sorted name/value
      vector by {!counters} — the unit of the golden-stats regression
      harness;
    - per-instruction stage timestamps (fetch/dispatch/issue/complete/
      retire) plus derived histograms: ROB and RS occupancy sampled each
      cycle, RS residency (dispatch to issue) and issue-to-retire
      latency split by criticality tag.

    Emission is unconditional given a tracer; the zero-cost-when-off
    guarantee lives in the caller ({!Cpu_core} holds a [t option] and
    skips every call when observability is disabled). *)

type t

val create : ?ring_capacity:int -> unit -> t
(** Default ring capacity: 65536 events. *)

(** {2 Emission — instruction lifecycle} *)

val on_fetch : t -> cycle:int -> dyn:int -> pc:int -> unit

val on_dispatch : t -> cycle:int -> dyn:int -> rob:int -> critical:bool -> unit

val on_select : t -> cycle:int -> dyn:int -> prio_override:bool -> unit
(** A scheduler selection.  [prio_override] marks picks where the CRISP
    PRIO vector changed the outcome: the pick differs from what the
    plain oldest-ready age-matrix reduction would have chosen. *)

val on_issue : t -> cycle:int -> dyn:int -> critical:bool -> unit

val on_mshr_retry : t -> cycle:int -> dyn:int -> unit

val on_complete : t -> cycle:int -> dyn:int -> unit

val on_retire : t -> cycle:int -> dyn:int -> critical:bool -> unit

(** {2 Emission — frontend and memory} *)

val on_redirect :
  t -> cycle:int -> dyn:int -> kind:[ `Mispredict | `Btb_miss | `Ras_mispredict ] -> unit

val on_l1d_miss : t -> cycle:int -> addr:int -> level:[ `Llc | `Mem ] -> unit

val on_l1i_miss : t -> cycle:int -> addr:int -> level:[ `Llc | `Mem ] -> unit

val on_prefetch : t -> cycle:int -> addr:int -> unit

val on_cycle : t -> rob_occupancy:int -> rs_occupancy:int -> unit
(** Per-cycle occupancy sample; call exactly once per simulated cycle. *)

(** {2 Queries} *)

val ring : t -> Obs_ring.t

val counters : t -> (string * int) list
(** All counters, sorted by name.  Includes ["events_recorded"] and
    ["events_dropped"] for the ring. *)

val counter : t -> string -> int
(** A single counter by name; 0 for unknown names. *)

val histograms : t -> (string * Obs_hist.t) list
(** All histograms, sorted by name. *)

(** Per-instruction stage timestamps; [-1] marks a stage not reached. *)
type stamp = {
  pc : int;
  fetch : int;
  dispatch : int;
  issue : int;
  complete : int;
  retire : int;
  critical : bool;
}

val num_dyns : t -> int
(** Upper bound (exclusive) of dynamic indices seen. *)

val stamp : t -> int -> stamp option
(** [None] for indices never fetched. *)
