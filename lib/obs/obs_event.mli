(** Event vocabulary of the pipeline tracer.

    Every event is four machine words — (cycle, kind, a, b) — so the ring
    buffer stores them without allocation.  The meaning of [a]/[b] depends
    on the kind:

    - instruction-lifecycle kinds ([fetch] .. [retire]): [a] is the
      dynamic trace index; [b] is the pc for [fetch], the ROB index for
      [dispatch], the prio-override flag for [select], the criticality
      flag for [issue]/[retire], and unused for the rest;
    - frontend redirects: [a] is the dynamic index of the faulting
      transfer, [b] unused;
    - memory kinds: [a] is the byte address, [b] unused ([l1i_miss] sets
      [b] to 1 when the fill comes from DRAM, 0 from the LLC). *)

val fetch : int
val dispatch : int
val select : int
val issue : int
val mshr_retry : int
val complete : int
val retire : int
val redirect_mispredict : int
val redirect_btb_miss : int
val redirect_ras : int
val l1d_miss_llc : int
val l1d_miss_mem : int
val l1i_miss : int
val prefetch : int

val name : int -> string
(** Stable snake_case name of a kind code; ["unknown_<k>"] for codes
    outside the vocabulary. *)
