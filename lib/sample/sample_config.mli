(** Configuration of SMARTS-style interval sampling.

    A sampled run divides the trace into [units] equal strides and
    detail-simulates one sampling unit per stride: [warmup_len]
    instructions of detailed warmup (absorbing the cold-start bias left
    by functional fast-forward) followed by [unit_len] measured
    instructions.  Everything between units is fast-forwarded
    functionally with microarchitectural warming. *)

type t = {
  unit_len : int;  (** measured instructions per sampling unit *)
  warmup_len : int;  (** detailed warmup instructions before each unit *)
  units : int;  (** sampling units (equal strides across the trace) *)
  target_ci : float option;
      (** when set, double [units] (bounded) until the 95% confidence
          interval is at most this fraction of the CPI estimate *)
}

val default : t
(** 30 units of 1k measured instructions behind 2k detailed warmup. *)

val validate : t -> (unit, string) result

val to_string : t -> string
(** Canonical [key=value] comma list, e.g. ["units=30,unit=1000,warmup=2000"].
    Stable: used verbatim in farm cell keys and memo identities, so equal
    configs always serialise identically. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format; unspecified fields take their
    {!default} values.  Validation errors are returned, not raised — this
    is the farm admission gate's parser. *)
