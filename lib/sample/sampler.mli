(** Statistical (interval) sampling of a detailed simulation.

    The trace is split into [units] equal strides; each stride's tail is
    detail-simulated (warmup + measured window, see {!Sample_config.t})
    and everything else is fast-forwarded functionally while warming the
    caches, prefetchers and branch predictors through
    {!Cpu_core.warm_touch}.  CPI is reported as the mean over per-unit
    CPIs with a 95% confidence interval, the SMARTS estimator. *)

type result = {
  config : Sample_config.t;
      (** the requested config with [units] replaced by the count
          actually simulated (after clamping and target-CI doubling) *)
  cpi_mean : float;
  cpi_ci95 : float;  (** half-width of the 95% confidence interval *)
  unit_cpis : float array;
  stats : Cpu_stats.t;
      (** stitched statistics over the measured windows only *)
  measured_instrs : int;
  total_instrs : int;
}

val resolve_layout :
  ?criticality:Cpu_core.criticality -> ?layout:Layout.t -> Executor.t -> Layout.t
(** The layout a plain [Cpu_core.run] with the same arguments would use:
    explicit when given, otherwise computed from the static criticality
    tags.  Shared with {!Chunked} so fast-forward warming fetches the
    same instruction addresses as the detail windows. *)

val run :
  ?criticality:Cpu_core.criticality ->
  ?layout:Layout.t ->
  sample:Sample_config.t ->
  Cpu_config.t ->
  Executor.t ->
  result
(** Deterministic: unit placement is systematic (no random offsets), so
    identical inputs give identical results.  With [target_ci] set the
    whole pass restarts with doubled [units] (at most four times, and
    never beyond what the trace can hold) until the relative CI
    converges.
    @raise Invalid_argument if [sample] fails {!Sample_config.validate}. *)
