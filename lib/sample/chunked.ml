(* Time-parallel simulation: split one long trace into K contiguous
   chunks at checkpointed boundaries and detail-simulate the chunks
   concurrently.  A sequential warming pass (functional fast-forward)
   captures a microarchitectural checkpoint just before each boundary;
   each chunk restores its own deep copy, runs a detailed cold-start
   warmup up to its boundary, then measures exactly its [b_k, b_k+1)
   instruction range.  Stitching sums per-chunk statistics in chunk
   index order, so the result is independent of how many workers ran
   the chunks or in what order they finished. *)

type result = {
  chunks : int;
  warmup : int;
  stats : Cpu_stats.t;
  per_chunk : Cpu_stats.t array;
}

let chunk_key ~chunk ~start = Printf.sprintf "chunk/%d/%d" chunk start

let run ?criticality ?layout ?(pool = Exec.Pool.sequential) ?journal ~chunks ~warmup
    cfg (trace : Executor.t) =
  if chunks <= 0 then invalid_arg "Chunked.run: chunks must be positive";
  if warmup < 0 then invalid_arg "Chunked.run: warmup must be non-negative";
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let chunks = max 1 (min chunks (max 1 n)) in
  let layout = Sampler.resolve_layout ?criticality ?layout trace in
  let boundary k = k * n / chunks in
  (* Chunk [k]'s detailed warmup covers [start_k, b_k); the checkpoint is
     captured at [start_k] by the sequential warming pass. *)
  let starts = Array.init chunks (fun k -> if k = 0 then 0 else max 0 (boundary k - warmup)) in
  let blobs = Array.make chunks "" in
  let journal_find key =
    match journal with Some j -> Resil.Journal.find j key | None -> None
  in
  let journal_record key payload =
    match journal with Some j -> Resil.Journal.record j ~key ~payload | None -> ()
  in
  (* Warming pass: sequential by nature (chunk k's checkpoint depends on
     everything before it), but skipped per-checkpoint when the journal
     already holds the blob — a rerun with a warm journal does no
     fast-forward at all. *)
  let last = ref None in
  let live = ref None in
  for k = 1 to chunks - 1 do
    let key = chunk_key ~chunk:k ~start:starts.(k) in
    match journal_find key with
    | Some blob ->
      blobs.(k) <- blob;
      last := Some blob;
      live := None
    | None ->
      let w =
        match !live with
        | Some w -> w
        | None ->
          let w =
            match !last with
            | Some blob -> Cpu_core.warm_restore blob
            | None -> Cpu_core.warm_create cfg
          in
          live := Some w;
          w
      in
      while Cpu_core.warm_pos w < starts.(k) do
        Cpu_core.warm_touch w layout dyns.(Cpu_core.warm_pos w)
      done;
      let blob = Cpu_core.warm_checkpoint w in
      journal_record key blob;
      blobs.(k) <- blob;
      last := Some blob
  done;
  let futures =
    Array.init chunks (fun k ->
        Exec.Pool.submit pool (fun () ->
            if boundary (k + 1) = boundary k then Cpu_stats.zero
            else begin
              (* Each chunk restores a private deep copy, so concurrent
                 chunks never share mutable state. *)
              let warm = if k = 0 then None else Some (Cpu_core.warm_restore blobs.(k)) in
              let start = starts.(k) in
              Cpu_core.run_window ?criticality ~layout ?warm ~start
                ~warmup:(boundary k - start)
                ~measure:(boundary (k + 1) - boundary k)
                cfg trace
            end))
  in
  let per_chunk = Array.map (Exec.Pool.await pool) futures in
  let stats = Array.fold_left Cpu_stats.add Cpu_stats.zero per_chunk in
  { chunks; warmup; stats; per_chunk }
