(** Time-parallel simulation: checkpointed chunk parallelism.

    One long trace is split into [chunks] contiguous instruction ranges.
    A sequential functional-warming pass captures a microarchitectural
    checkpoint ({!Cpu_core.warm_checkpoint}) just before each chunk
    boundary; every chunk then restores a private copy, runs [warmup]
    instructions of detailed cold-start warmup and measures exactly its
    own range, all concurrently on an [Exec.Pool].  Per-chunk statistics
    are stitched by summation in chunk index order. *)

type result = {
  chunks : int;  (** chunk count actually used (clamped to the trace) *)
  warmup : int;
  stats : Cpu_stats.t;
      (** stitched statistics; [retired] always sums to the full trace
          length — measured ranges partition the trace exactly *)
  per_chunk : Cpu_stats.t array;
}

val chunk_key : chunk:int -> start:int -> string
(** Journal key under which chunk [chunk]'s checkpoint (captured at
    dynamic index [start]) is recorded. *)

val run :
  ?criticality:Cpu_core.criticality ->
  ?layout:Layout.t ->
  ?pool:Exec.Pool.t ->
  ?journal:Resil.Journal.t ->
  chunks:int ->
  warmup:int ->
  Cpu_config.t ->
  Executor.t ->
  result
(** Deterministic in the pool: chunk results depend only on the trace,
    the config and the (deterministic) checkpoints, and stitch-up order
    is by chunk index — so [--jobs 1], [2] and [8] produce identical
    stitched statistics.  With [journal] supplied, checkpoints are
    recorded under {!chunk_key} and reused on replay (the caller's
    journal signature must pin down the config and trace identity).
    @raise Invalid_argument if [chunks <= 0] or [warmup < 0]. *)
