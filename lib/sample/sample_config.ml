type t = {
  unit_len : int;
  warmup_len : int;
  units : int;
  target_ci : float option;
}

let default = { unit_len = 1_000; warmup_len = 2_000; units = 30; target_ci = None }

let validate t =
  if t.unit_len <= 0 then Error "sample unit length must be positive"
  else if t.warmup_len < 0 then Error "sample warmup length must be non-negative"
  else if t.units <= 0 then Error "sample unit count must be positive"
  else
    match t.target_ci with
    | Some ci when not (ci > 0. && ci < 1.) ->
      Error "sample target CI must be a relative width in (0, 1)"
    | _ -> Ok ()

let to_string t =
  let base =
    Printf.sprintf "units=%d,unit=%d,warmup=%d" t.units t.unit_len t.warmup_len
  in
  match t.target_ci with
  | None -> base
  | Some ci -> Printf.sprintf "%s,ci=%.12g" base ci

let of_string s =
  let s = String.trim s in
  if s = "" then Error "empty sample config"
  else begin
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok t -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "sample config field %S is not key=value" field)
        | Some i -> (
          let key = String.sub field 0 i in
          let value = String.sub field (i + 1) (String.length field - i - 1) in
          let int_of () =
            match int_of_string_opt value with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "sample config %s=%S is not an integer" key value)
          in
          match key with
          | "units" -> Result.map (fun v -> { t with units = v }) (int_of ())
          | "unit" -> Result.map (fun v -> { t with unit_len = v }) (int_of ())
          | "warmup" -> Result.map (fun v -> { t with warmup_len = v }) (int_of ())
          | "ci" -> (
            match float_of_string_opt value with
            | Some v -> Ok { t with target_ci = Some v }
            | None -> Error (Printf.sprintf "sample config ci=%S is not a number" value))
          | _ -> Error (Printf.sprintf "unknown sample config key %S" key)))
    in
    let fields = String.split_on_char ',' s in
    match List.fold_left parse_field (Ok default) fields with
    | Error _ as e -> e
    | Ok t -> (
      match validate t with
      | Ok () -> Ok t
      | Error _ as e -> e)
  end
