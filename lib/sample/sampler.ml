(* Statistical (interval) sampling: functional fast-forward with
   microarchitectural warming between systematically-placed detail
   windows.  The CPI estimate is the mean over per-unit CPIs with a 95%
   confidence interval from the unit-to-unit variance, as in SMARTS. *)

type result = {
  config : Sample_config.t;
  cpi_mean : float;
  cpi_ci95 : float;
  unit_cpis : float array;
  stats : Cpu_stats.t;
  measured_instrs : int;
  total_instrs : int;
}

let static_critical_of = function
  | Some (Cpu_core.Static_tags f) -> f
  | _ -> fun _ -> false

let resolve_layout ?criticality ?layout (trace : Executor.t) =
  match layout with
  | Some l -> l
  | None -> Layout.compute ~critical:(static_critical_of criticality) trace.Executor.prog

(* One systematic pass with a fixed unit count.  Unit [k] measures the
   [unit_len] instructions at the start of stride [k], with detailed
   warmup drawn from the tail of the previous stride; unit 0 therefore
   starts truly cold, exactly like the full run — measuring at stride
   starts keeps every instruction (including the cold prologue, which
   end-of-stride placement would systematically exclude) in the sampled
   population.  The warm state (caches, predictors, prefetcher training)
   is threaded through fast-forward and detail windows alike. *)
let run_units ?criticality ~layout ~(sample : Sample_config.t) ~units cfg
    (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let span = sample.unit_len + sample.warmup_len in
  let units = max 1 (min units (max 1 (n / span))) in
  let stride = n / units in
  let warm = Cpu_core.warm_create cfg in
  let unit_cpis = Array.make units 0. in
  let stats = ref Cpu_stats.zero in
  for k = 0 to units - 1 do
    let boundary = k * stride in
    let m = max (boundary - sample.warmup_len) (Cpu_core.warm_pos warm) in
    while Cpu_core.warm_pos warm < m do
      Cpu_core.warm_touch warm layout dyns.(Cpu_core.warm_pos warm)
    done;
    let st =
      Cpu_core.run_window ?criticality ~layout ~warm ~start:m ~warmup:(boundary - m)
        ~measure:sample.unit_len cfg trace
    in
    unit_cpis.(k) <-
      (if st.Cpu_stats.retired = 0 then 0.
       else float_of_int st.Cpu_stats.cycles /. float_of_int st.Cpu_stats.retired);
    stats := Cpu_stats.add !stats st
  done;
  (units, unit_cpis, !stats)

let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let ci95 xs m =
  let u = Array.length xs in
  if u < 2 then 0.
  else begin
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    let variance = ss /. float_of_int (u - 1) in
    1.96 *. sqrt (variance /. float_of_int u)
  end

let run ?criticality ?layout ~(sample : Sample_config.t) cfg (trace : Executor.t) =
  (match Sample_config.validate sample with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sampler.run: " ^ msg));
  let layout = resolve_layout ?criticality ?layout trace in
  let total_instrs = Array.length trace.Executor.dyns in
  let rec go units attempts =
    let used, unit_cpis, stats =
      run_units ?criticality ~layout ~sample ~units cfg trace
    in
    let m = mean unit_cpis in
    let ci = ci95 unit_cpis m in
    let converged =
      match sample.target_ci with
      | None -> true
      | Some rel -> m <= 0. || ci /. m <= rel
    in
    (* [used < units] means the trace cannot hold more units; doubling
       again would be a no-op.  Four doublings bound the retry cost. *)
    if converged || attempts >= 4 || used < units then
      { config = { sample with units = used };
        cpi_mean = m;
        cpi_ci95 = ci;
        unit_cpis;
        stats;
        measured_instrs = stats.Cpu_stats.retired;
        total_instrs }
    else go (units * 2) (attempts + 1)
  in
  go sample.units 0
