let candidate_offsets =
  let smooth n =
    let rec strip n p = if n mod p = 0 then strip (n / p) p else n in
    strip (strip (strip n 2) 3) 5 = 1
  in
  List.filter smooth (List.init 256 (fun i -> i + 1))

type t = {
  offsets : int array;
  scores : int array;
  rr : int array;  (* recent-requests table: stores line numbers, -1 empty *)
  rr_mask : int;
  score_max : int;
  round_max : int;
  bad_score : int;
  mutable next_candidate : int;  (* index into offsets, round-robin *)
  mutable round : int;
  mutable active_offset : int;  (* 0 = disabled *)
  mutable issued : int;
}

let create ?(rr_entries = 256) ?(score_max = 31) ?(round_max = 100) ?(bad_score = 1) () =
  if rr_entries land (rr_entries - 1) <> 0 then
    invalid_arg "Bop.create: rr_entries not a power of two";
  { offsets = Array.of_list candidate_offsets;
    scores = Array.make (List.length candidate_offsets) 0;
    rr = Array.make rr_entries (-1);
    rr_mask = rr_entries - 1;
    score_max;
    round_max;
    bad_score;
    next_candidate = 0;
    round = 0;
    active_offset = 1;
    issued = 0 }

let rr_index t line = (line lxor (line lsr 8)) land t.rr_mask

let record_fill t ~line = t.rr.(rr_index t line) <- line

let rr_contains t line = t.rr.(rr_index t line) = line

let end_learning_phase t =
  let best = ref 0 in
  Array.iteri (fun i s -> if s > t.scores.(!best) then best := i) t.scores;
  t.active_offset <-
    (if t.scores.(!best) <= t.bad_score then 0 else t.offsets.(!best));
  Array.fill t.scores 0 (Array.length t.scores) 0;
  t.round <- 0;
  t.next_candidate <- 0

let train t ~line =
  let i = t.next_candidate in
  if rr_contains t (line - t.offsets.(i)) then begin
    t.scores.(i) <- t.scores.(i) + 1;
    if t.scores.(i) >= t.score_max then end_learning_phase t
  end;
  t.next_candidate <- t.next_candidate + 1;
  if t.next_candidate >= Array.length t.offsets then begin
    t.next_candidate <- 0;
    t.round <- t.round + 1;
    if t.round >= t.round_max then end_learning_phase t
  end

let query_line t ~line =
  if t.active_offset = 0 then -1
  else begin
    t.issued <- t.issued + 1;
    line + t.active_offset
  end

let query t ~line =
  match query_line t ~line with -1 -> None | l -> Some l

let best_offset t = if t.active_offset = 0 then None else Some t.active_offset

let issued t = t.issued
