(** Stream prefetcher: detects monotonically ascending or descending cache
    line sequences and runs a configurable number of lines ahead.  Paired
    with BOP as the baseline data prefetcher in the paper's evaluation
    (Section 5.1: "BOP and Stream"). *)

type t

val create : ?streams:int -> ?degree:int -> ?min_confidence:int -> unit -> t
(** [streams] concurrent trackers (default 16), [degree] lines prefetched
    ahead per confident access (default 4), [min_confidence] consecutive
    in-order accesses required before prefetching (default 2). *)

val access : t -> line:int -> int list
(** Observe a demand access to [line]; returns line numbers to prefetch. *)

val access_into : t -> line:int -> into:int array -> int
(** Same as {!access} but writes the prefetch lines into the caller's
    scratch buffer (which must hold at least {!degree} entries) and
    returns the count — the allocation-free variant the memory system
    uses. *)

val degree : t -> int
(** Lines prefetched ahead per confident access. *)

val issued : t -> int
