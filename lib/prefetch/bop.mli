(** Best-Offset Prefetcher (Michaud, HPCA 2016), the data prefetcher enabled
    for all experiments in the paper (Table 1).

    BOP learns the single line offset [d] that best predicts future misses:
    on each training access to line [x] it checks whether [x - d_i] was
    recently requested (recent-requests table) and scores candidate offsets
    round-robin.  When a learning round ends, the best-scoring offset
    becomes the active prefetch offset; prefetching is disabled if even the
    best offset scores poorly.  BOP covers strides and periodic patterns but
    not pointer chases — exactly the gap CRISP targets. *)

type t

val create :
  ?rr_entries:int ->
  ?score_max:int ->
  ?round_max:int ->
  ?bad_score:int ->
  unit ->
  t
(** Defaults: 256-entry recent-requests table, [score_max] 31, [round_max]
    100 rounds, [bad_score] 1. *)

val candidate_offsets : int list
(** The classic BOP offset list: integers in [1, 256] whose prime factors
    are all in {2, 3, 5}. *)

val train : t -> line:int -> unit
(** Train on an L1 miss (or first hit on a prefetched line) to [line]. *)

val record_fill : t -> line:int -> unit
(** Record a completed fill in the recent-requests table. *)

val query : t -> line:int -> int option
(** Line to prefetch for a demand access to [line], if prefetching is
    currently enabled: [Some (line + best_offset)]. *)

val query_line : t -> line:int -> int
(** Same as {!query} but returns [-1] when prefetching is disabled — the
    unboxed variant the memory system's miss path uses.  Same [issued]
    accounting. *)

val best_offset : t -> int option
(** Currently selected offset, [None] while disabled. *)

val issued : t -> int
