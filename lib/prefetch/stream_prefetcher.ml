type stream = {
  mutable last_line : int;
  mutable direction : int;  (* +1 / -1 / 0 unknown *)
  mutable confidence : int;
  mutable lru : int;
}

type t = {
  streams : stream array;
  degree : int;
  min_confidence : int;
  mutable clock : int;
  mutable issued : int;
}

let create ?(streams = 16) ?(degree = 4) ?(min_confidence = 2) () =
  { streams =
      Array.init streams (fun _ ->
          { last_line = min_int; direction = 0; confidence = 0; lru = 0 });
    degree;
    min_confidence;
    clock = 0;
    issued = 0 }

let degree t = t.degree

let rec find_match streams line i =
  if i = Array.length streams then -1
  else
    let delta = line - streams.(i).last_line in
    if delta <> 0 && abs delta <= 2 then i else find_match streams line (i + 1)

let rec lru_stream streams best i =
  if i = Array.length streams then best
  else
    lru_stream streams (if streams.(i).lru < streams.(best).lru then i else best) (i + 1)

(* Core access path: writes prefetch candidates into [into] (which must
   have room for [degree] lines) and returns how many were produced. *)
let access_into t ~line ~into =
  t.clock <- t.clock + 1;
  let m = find_match t.streams line 0 in
  if m >= 0 then begin
    let s = t.streams.(m) in
    let dir = if line - s.last_line > 0 then 1 else -1 in
    if s.direction = dir then s.confidence <- s.confidence + 1
    else begin
      s.direction <- dir;
      s.confidence <- 1
    end;
    s.last_line <- line;
    s.lru <- t.clock;
    if s.confidence >= t.min_confidence then begin
      for k = 0 to t.degree - 1 do
        into.(k) <- line + (dir * (k + 1))
      done;
      t.issued <- t.issued + t.degree;
      t.degree
    end
    else 0
  end
  else begin
    (* Allocate the LRU tracker for a potential new stream. *)
    let v = t.streams.(lru_stream t.streams 0 1) in
    v.last_line <- line;
    v.direction <- 0;
    v.confidence <- 0;
    v.lru <- t.clock;
    0
  end

let access t ~line =
  let into = Array.make t.degree 0 in
  let n = access_into t ~line ~into in
  List.init n (fun k -> into.(k))

let issued t = t.issued
