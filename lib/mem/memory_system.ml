type params = {
  l1i : Cache.params;
  l1d : Cache.params;
  llc : Cache.params;
  l1i_latency : int;
  l1d_latency : int;
  llc_latency : int;
  dram : Dram.params;
  mshrs : int;
  enable_bop : bool;
  enable_stream : bool;
}

let line_bytes = 64

let skylake =
  { l1i = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes };
    l1d = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes };
    llc = { Cache.size_bytes = 1024 * 1024; assoc = 20; line_bytes };
    l1i_latency = 3;
    l1d_latency = 4;
    llc_latency = 36;
    dram = Dram.ddr4_2400;
    mshrs = 16;
    enable_bop = true;
    enable_stream = true }

type level =
  | L1
  | Llc
  | Mem

type t = {
  p : params;
  l1i : Cache.t;
  l1d : Cache.t;
  llc : Cache.t;
  dram : Dram.t;
  bop : Bop.t;
  stream : Stream_prefetcher.t;
  outstanding_d : (int, int * level) Hashtbl.t;  (* line -> ready cycle, level *)
  outstanding_i : (int, int) Hashtbl.t;
  mutable prefetches_issued : int;
  mutable tracer : Obs_tracer.t option;  (* observability sink, write-only *)
}

let create p =
  { p;
    l1i = Cache.create ~name:"L1I" p.l1i;
    l1d = Cache.create ~name:"L1D" p.l1d;
    llc = Cache.create ~name:"LLC" p.llc;
    dram = Dram.create p.dram;
    bop = Bop.create ();
    stream = Stream_prefetcher.create ();
    outstanding_d = Hashtbl.create 64;
    outstanding_i = Hashtbl.create 64;
    prefetches_issued = 0;
    tracer = None }

let params t = t.p

let set_tracer t tracer = t.tracer <- tracer

let line_of addr = addr / line_bytes

(* Count in-flight demand fills, discarding completed entries as we go. *)
let purge_and_count table ready_of cycle =
  let stale = ref [] in
  let live = ref 0 in
  Hashtbl.iter
    (fun line entry ->
      if ready_of entry > cycle then incr live else stale := line :: !stale)
    table;
  List.iter (Hashtbl.remove table) !stale;
  !live

let outstanding_misses t ~cycle =
  purge_and_count t.outstanding_d (fun (ready, _) -> ready) cycle

(* Issue a prefetch fill for [line]: install in LLC (and L1D) and charge
   DRAM bandwidth when the line was not on chip. *)
let prefetch_line t ~cycle line =
  let addr = line * line_bytes in
  if not (Cache.probe t.l1d ~addr) then begin
    t.prefetches_issued <- t.prefetches_issued + 1;
    (match t.tracer with
    | Some tr -> Obs_tracer.on_prefetch tr ~cycle ~addr
    | None -> ());
    if not (Cache.probe t.llc ~addr) then begin
      ignore (Dram.request t.dram ~cycle ~addr);
      Cache.fill_prefetch t.llc ~addr
    end;
    Cache.fill_prefetch t.l1d ~addr;
    Bop.record_fill t.bop ~line
  end

(* Train the data prefetchers on an L1D miss (or the first demand hit on a
   prefetched line) and issue whatever they request. *)
let train_data_prefetchers t ~cycle ~addr =
  let line = line_of addr in
  if t.p.enable_bop then begin
    Bop.train t.bop ~line;
    match Bop.query t.bop ~line with
    | Some target -> prefetch_line t ~cycle target
    | None -> ()
  end;
  if t.p.enable_stream then
    List.iter (prefetch_line t ~cycle) (Stream_prefetcher.access t.stream ~line)

let load t ~cycle ~addr =
  let line = line_of addr in
  match Hashtbl.find_opt t.outstanding_d line with
  | Some (ready, level) when ready > cycle ->
    (* Merge with the in-flight fill for this line. *)
    `Done (ready, level)
  | _ ->
    if Cache.probe t.l1d ~addr then begin
      (match Cache.access_info t.l1d ~addr with
      | `Hit_prefetched -> train_data_prefetchers t ~cycle ~addr
      | `Hit | `Miss -> ());
      `Done (cycle + t.p.l1d_latency, L1)
    end
    else if purge_and_count t.outstanding_d (fun (ready, _) -> ready) cycle
            >= t.p.mshrs
    then `Mshr_full
    else begin
      ignore (Cache.access_info t.l1d ~addr);
      train_data_prefetchers t ~cycle ~addr;
      let ready, level =
        match Cache.access_info t.llc ~addr with
        | `Hit | `Hit_prefetched -> (cycle + t.p.llc_latency, Llc)
        | `Miss ->
          (Dram.request t.dram ~cycle:(cycle + t.p.llc_latency) ~addr, Mem)
      in
      (match t.tracer with
      | Some tr ->
        Obs_tracer.on_l1d_miss tr ~cycle ~addr
          ~level:(match level with Mem -> `Mem | Llc | L1 -> `Llc)
      | None -> ());
      Hashtbl.replace t.outstanding_d line (ready, level);
      Bop.record_fill t.bop ~line;
      `Done (ready, level)
    end

let store_commit t ~cycle ~addr =
  (* Write-allocate; the store buffer hides the fill latency. *)
  if not (Cache.probe t.l1d ~addr) then begin
    let llc = Cache.access_info t.llc ~addr in
    match t.tracer with
    | Some tr ->
      Obs_tracer.on_l1d_miss tr ~cycle ~addr
        ~level:(match llc with `Hit | `Hit_prefetched -> `Llc | `Miss -> `Mem)
    | None -> ()
  end;
  ignore (Cache.access_info t.l1d ~addr)

let fetch t ~cycle ~addr =
  let line = line_of addr in
  match Hashtbl.find_opt t.outstanding_i line with
  | Some ready when ready > cycle -> (ready, Mem)
  | _ ->
    if Cache.probe t.l1i ~addr then begin
      ignore (Cache.access_info t.l1i ~addr);
      (cycle + t.p.l1i_latency, L1)
    end
    else begin
      ignore (Cache.access_info t.l1i ~addr);
      let ready, level =
        match Cache.access_info t.llc ~addr with
        | `Hit | `Hit_prefetched -> (cycle + t.p.llc_latency, Llc)
        | `Miss ->
          (Dram.request t.dram ~cycle:(cycle + t.p.llc_latency) ~addr, Mem)
      in
      (match t.tracer with
      | Some tr ->
        Obs_tracer.on_l1i_miss tr ~cycle ~addr
          ~level:(match level with Mem -> `Mem | Llc | L1 -> `Llc)
      | None -> ());
      Hashtbl.replace t.outstanding_i line ready;
      (ready, level)
    end

let probe_inst t ~addr = Cache.probe t.l1i ~addr

let prefetch_inst t ~cycle ~addr =
  if not (Cache.probe t.l1i ~addr) then begin
    t.prefetches_issued <- t.prefetches_issued + 1;
    (match t.tracer with
    | Some tr -> Obs_tracer.on_prefetch tr ~cycle ~addr
    | None -> ());
    if not (Cache.probe t.llc ~addr) then begin
      ignore (Dram.request t.dram ~cycle ~addr);
      Cache.fill_prefetch t.llc ~addr
    end;
    Cache.fill_prefetch t.l1i ~addr
  end

let load_functional t ~addr =
  match Cache.access_info t.l1d ~addr with
  | `Hit -> L1
  | `Hit_prefetched ->
    train_data_prefetchers t ~cycle:0 ~addr;
    L1
  | `Miss ->
    train_data_prefetchers t ~cycle:0 ~addr;
    (match Cache.access_info t.llc ~addr with
    | `Hit | `Hit_prefetched -> Llc
    | `Miss ->
      Bop.record_fill t.bop ~line:(line_of addr);
      Mem)

let fetch_functional t ~addr =
  match Cache.access_info t.l1i ~addr with
  | `Hit | `Hit_prefetched -> L1
  | `Miss -> (
    match Cache.access_info t.llc ~addr with
    | `Hit | `Hit_prefetched -> Llc
    | `Miss -> Mem)

type stats = {
  l1d_hits : int;
  l1d_misses : int;
  llc_hits : int;
  llc_misses : int;
  l1i_hits : int;
  l1i_misses : int;
  dram_requests : int;
  dram_row_hits : int;
  prefetches_issued : int;
  prefetch_hits_l1d : int;
  prefetch_hits_llc : int;
}

let stats t =
  { l1d_hits = Cache.hits t.l1d;
    l1d_misses = Cache.misses t.l1d;
    llc_hits = Cache.hits t.llc;
    llc_misses = Cache.misses t.llc;
    l1i_hits = Cache.hits t.l1i;
    l1i_misses = Cache.misses t.l1i;
    dram_requests = Dram.requests t.dram;
    dram_row_hits = Dram.row_hits t.dram;
    prefetches_issued = t.prefetches_issued;
    prefetch_hits_l1d = Cache.prefetch_hits t.l1d;
    prefetch_hits_llc = Cache.prefetch_hits t.llc }
