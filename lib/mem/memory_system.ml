type params = {
  l1i : Cache.params;
  l1d : Cache.params;
  llc : Cache.params;
  l1i_latency : int;
  l1d_latency : int;
  llc_latency : int;
  dram : Dram.params;
  mshrs : int;
  enable_bop : bool;
  enable_stream : bool;
}

let line_bytes = 64

let skylake =
  { l1i = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes };
    l1d = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes };
    llc = { Cache.size_bytes = 1024 * 1024; assoc = 20; line_bytes };
    l1i_latency = 3;
    l1d_latency = 4;
    llc_latency = 36;
    dram = Dram.ddr4_2400;
    mshrs = 16;
    enable_bop = true;
    enable_stream = true }

type level =
  | L1
  | Llc
  | Mem

(* Serving level as a small int, for the unboxed [load_raw]/[fetch_raw]
   interface: a timing result is packed as [(ready lsl 2) lor code]. *)
let code_l1 = 1
let code_llc = 2
let code_mem = 3

let level_of_code = function
  | 1 -> L1
  | 2 -> Llc
  | 3 -> Mem
  | c -> invalid_arg (Printf.sprintf "Memory_system.level_of_code: %d" c)

let inst_mshrs = 16

type t = {
  p : params;
  l1i : Cache.t;
  l1d : Cache.t;
  llc : Cache.t;
  dram : Dram.t;
  bop : Bop.t;
  stream : Stream_prefetcher.t;
  (* Flat MSHR file for demand-load misses, replacing the
     [line -> (ready, level)] Hashtbl.  A slot is live iff its ready
     cycle is still in the future; freeing is implicit, so there is no
     per-cycle purge and occupancy is an O(mshrs) scan. *)
  d_line : int array;
  d_ready : int array;
  d_level : int array;
  (* Instruction-fetch misses, same layout.  The old Hashtbl was never
     purged and grew with every line ever missed; the frontend keeps only
     a handful of fetches in flight, so a small fixed file suffices. *)
  i_line : int array;
  i_ready : int array;
  stream_buf : int array;  (* scratch for Stream_prefetcher.access_into *)
  mutable prefetches_issued : int;
  mutable tracer : Obs_tracer.t option;  (* observability sink, write-only *)
}

let create p =
  let stream = Stream_prefetcher.create () in
  { p;
    l1i = Cache.create ~name:"L1I" p.l1i;
    l1d = Cache.create ~name:"L1D" p.l1d;
    llc = Cache.create ~name:"LLC" p.llc;
    dram = Dram.create p.dram;
    bop = Bop.create ();
    stream;
    d_line = Array.make p.mshrs (-1);
    d_ready = Array.make p.mshrs 0;
    d_level = Array.make p.mshrs 0;
    i_line = Array.make inst_mshrs (-1);
    i_ready = Array.make inst_mshrs 0;
    stream_buf = Array.make (Stream_prefetcher.degree stream) 0;
    prefetches_issued = 0;
    tracer = None }

let params t = t.p

let set_tracer t tracer = t.tracer <- tracer

let line_of addr = addr / line_bytes

(* MSHR-file scans.  At most one slot is ever live for a given line:
   inserts only happen after the merge scan found none. *)
let rec d_find_live t ~cycle ~line i =
  if i = Array.length t.d_ready then -1
  else if t.d_ready.(i) > cycle && t.d_line.(i) = line then i
  else d_find_live t ~cycle ~line (i + 1)

let rec d_first_free t ~cycle i =
  if i = Array.length t.d_ready then -1
  else if t.d_ready.(i) <= cycle then i
  else d_first_free t ~cycle (i + 1)

let rec d_live_count t ~cycle i acc =
  if i = Array.length t.d_ready then acc
  else d_live_count t ~cycle (i + 1) (if t.d_ready.(i) > cycle then acc + 1 else acc)

let outstanding_misses t ~cycle = d_live_count t ~cycle 0 0

(* Issue a prefetch fill for [line]: install in LLC (and L1D) and charge
   DRAM bandwidth when the line was not on chip. *)
let prefetch_line t ~cycle line =
  let addr = line * line_bytes in
  if not (Cache.probe t.l1d ~addr) then begin
    t.prefetches_issued <- t.prefetches_issued + 1;
    (match t.tracer with
    | Some tr -> Obs_tracer.on_prefetch tr ~cycle ~addr
    | None -> ());
    if not (Cache.probe t.llc ~addr) then begin
      ignore (Dram.request t.dram ~cycle ~addr);
      Cache.fill_prefetch t.llc ~addr
    end;
    Cache.fill_prefetch t.l1d ~addr;
    Bop.record_fill t.bop ~line
  end

(* Train the data prefetchers on an L1D miss (or the first demand hit on a
   prefetched line) and issue whatever they request. *)
let train_data_prefetchers t ~cycle ~addr =
  let line = line_of addr in
  if t.p.enable_bop then begin
    Bop.train t.bop ~line;
    let target = Bop.query_line t.bop ~line in
    if target >= 0 then prefetch_line t ~cycle target
  end;
  if t.p.enable_stream then begin
    let n = Stream_prefetcher.access_into t.stream ~line ~into:t.stream_buf in
    for k = 0 to n - 1 do
      prefetch_line t ~cycle t.stream_buf.(k)
    done
  end

let load_raw t ~cycle ~addr =
  let line = line_of addr in
  let merge = d_find_live t ~cycle ~line 0 in
  if merge >= 0 then
    (* Merge with the in-flight fill for this line. *)
    (t.d_ready.(merge) lsl 2) lor t.d_level.(merge)
  else if Cache.probe t.l1d ~addr then begin
    (match Cache.access_info t.l1d ~addr with
    | `Hit_prefetched -> train_data_prefetchers t ~cycle ~addr
    | `Hit | `Miss -> ());
    ((cycle + t.p.l1d_latency) lsl 2) lor code_l1
  end
  else begin
    let slot = d_first_free t ~cycle 0 in
    if slot < 0 then -1 (* MSHRs full: retry next cycle *)
    else begin
      ignore (Cache.access_info t.l1d ~addr);
      train_data_prefetchers t ~cycle ~addr;
      let hit_llc =
        match Cache.access_info t.llc ~addr with
        | `Hit | `Hit_prefetched -> true
        | `Miss -> false
      in
      let ready =
        if hit_llc then cycle + t.p.llc_latency
        else Dram.request t.dram ~cycle:(cycle + t.p.llc_latency) ~addr
      in
      let code = if hit_llc then code_llc else code_mem in
      (match t.tracer with
      | Some tr ->
        Obs_tracer.on_l1d_miss tr ~cycle ~addr
          ~level:(if hit_llc then `Llc else `Mem)
      | None -> ());
      t.d_line.(slot) <- line;
      t.d_ready.(slot) <- ready;
      t.d_level.(slot) <- code;
      Bop.record_fill t.bop ~line;
      (ready lsl 2) lor code
    end
  end

let load t ~cycle ~addr =
  match load_raw t ~cycle ~addr with
  | -1 -> `Mshr_full
  | packed -> `Done (packed lsr 2, level_of_code (packed land 3))

let store_commit t ~cycle ~addr =
  (* Write-allocate; the store buffer hides the fill latency. *)
  if not (Cache.probe t.l1d ~addr) then begin
    let llc = Cache.access_info t.llc ~addr in
    match t.tracer with
    | Some tr ->
      Obs_tracer.on_l1d_miss tr ~cycle ~addr
        ~level:(match llc with `Hit | `Hit_prefetched -> `Llc | `Miss -> `Mem)
    | None -> ()
  end;
  ignore (Cache.access_info t.l1d ~addr)

let rec i_find_live t ~cycle ~line i =
  if i = Array.length t.i_ready then -1
  else if t.i_ready.(i) > cycle && t.i_line.(i) = line then i
  else i_find_live t ~cycle ~line (i + 1)

(* Claim a slot for a new fetch miss: first implicitly-free one, or — if
   the frontend somehow has more misses in flight than slots — the one
   closest to completion (whose merge window we then lose, nothing else). *)
let rec i_claim t ~cycle i best =
  if i = Array.length t.i_ready then best
  else if t.i_ready.(i) <= cycle then i
  else i_claim t ~cycle (i + 1) (if t.i_ready.(i) < t.i_ready.(best) then i else best)

let fetch_raw t ~cycle ~addr =
  let line = line_of addr in
  let merge = i_find_live t ~cycle ~line 0 in
  if merge >= 0 then (t.i_ready.(merge) lsl 2) lor code_mem
  else if Cache.probe t.l1i ~addr then begin
    ignore (Cache.access_info t.l1i ~addr);
    ((cycle + t.p.l1i_latency) lsl 2) lor code_l1
  end
  else begin
    ignore (Cache.access_info t.l1i ~addr);
    let hit_llc =
      match Cache.access_info t.llc ~addr with
      | `Hit | `Hit_prefetched -> true
      | `Miss -> false
    in
    let ready =
      if hit_llc then cycle + t.p.llc_latency
      else Dram.request t.dram ~cycle:(cycle + t.p.llc_latency) ~addr
    in
    (match t.tracer with
    | Some tr ->
      Obs_tracer.on_l1i_miss tr ~cycle ~addr ~level:(if hit_llc then `Llc else `Mem)
    | None -> ());
    let slot = i_claim t ~cycle 0 0 in
    t.i_line.(slot) <- line;
    t.i_ready.(slot) <- ready;
    (ready lsl 2) lor (if hit_llc then code_llc else code_mem)
  end

let fetch t ~cycle ~addr =
  let packed = fetch_raw t ~cycle ~addr in
  (packed lsr 2, level_of_code (packed land 3))

let probe_inst t ~addr = Cache.probe t.l1i ~addr

let prefetch_inst t ~cycle ~addr =
  if not (Cache.probe t.l1i ~addr) then begin
    t.prefetches_issued <- t.prefetches_issued + 1;
    (match t.tracer with
    | Some tr -> Obs_tracer.on_prefetch tr ~cycle ~addr
    | None -> ());
    if not (Cache.probe t.llc ~addr) then begin
      ignore (Dram.request t.dram ~cycle ~addr);
      Cache.fill_prefetch t.llc ~addr
    end;
    Cache.fill_prefetch t.l1i ~addr
  end

let load_functional t ~addr =
  match Cache.access_info t.l1d ~addr with
  | `Hit -> L1
  | `Hit_prefetched ->
    train_data_prefetchers t ~cycle:0 ~addr;
    L1
  | `Miss ->
    train_data_prefetchers t ~cycle:0 ~addr;
    (match Cache.access_info t.llc ~addr with
    | `Hit | `Hit_prefetched -> Llc
    | `Miss ->
      Bop.record_fill t.bop ~line:(line_of addr);
      Mem)

let fetch_functional t ~addr =
  match Cache.access_info t.l1i ~addr with
  | `Hit | `Hit_prefetched -> L1
  | `Miss -> (
    match Cache.access_info t.llc ~addr with
    | `Hit | `Hit_prefetched -> Llc
    | `Miss -> Mem)

(* ------------------------------------------------------------------ *)
(* Warming touch mode: the fast-forward path of sampled simulation.
   Each touch updates cache contents, replacement state and prefetcher
   training exactly like the functional interface — and nothing else: no
   MSHR occupancy, no DRAM timing, no tracer events.  Prefetch fills
   issued during warming charge [Dram.request] at cycle 0, which only
   perturbs stamps that [quiesce] clears before the next detail window. *)

let warm_load t ~addr = ignore (load_functional t ~addr)

let warm_store t ~addr =
  (* Write-allocate, as at retirement; no tracer, no timing. *)
  if not (Cache.probe t.l1d ~addr) then ignore (Cache.access_info t.llc ~addr);
  ignore (Cache.access_info t.l1d ~addr)

let warm_fetch t ~addr = ignore (fetch_functional t ~addr)

(* Absolute-cycle state: MSHR ready stamps (a slot is live iff its ready
   cycle is in the future) and the DRAM bank/bus stamps.  Everything else
   in the hierarchy is content- or LRU-state, valid under any time base. *)
let quiesce t =
  Array.fill t.d_line 0 (Array.length t.d_line) (-1);
  Array.fill t.d_ready 0 (Array.length t.d_ready) 0;
  Array.fill t.i_line 0 (Array.length t.i_line) (-1);
  Array.fill t.i_ready 0 (Array.length t.i_ready) 0;
  Dram.quiesce t.dram

let checkpoint_magic = "crisp-msys1:"

let checkpoint t =
  (* The tracer is the one non-data field; a checkpoint never carries
     it.  Every other component is plain mutable records and arrays, so
     the structural marshal is a faithful deep snapshot. *)
  checkpoint_magic ^ Marshal.to_string { t with tracer = None } []

let restore blob =
  let n = String.length checkpoint_magic in
  if String.length blob < n || String.sub blob 0 n <> checkpoint_magic then
    invalid_arg "Memory_system.restore: not a memory-system checkpoint";
  (Marshal.from_string blob n : t)

type stats = {
  l1d_hits : int;
  l1d_misses : int;
  llc_hits : int;
  llc_misses : int;
  l1i_hits : int;
  l1i_misses : int;
  dram_requests : int;
  dram_row_hits : int;
  prefetches_issued : int;
  prefetch_hits_l1d : int;
  prefetch_hits_llc : int;
}

let diff_stats ~(after : stats) ~(before : stats) =
  { l1d_hits = after.l1d_hits - before.l1d_hits;
    l1d_misses = after.l1d_misses - before.l1d_misses;
    llc_hits = after.llc_hits - before.llc_hits;
    llc_misses = after.llc_misses - before.llc_misses;
    l1i_hits = after.l1i_hits - before.l1i_hits;
    l1i_misses = after.l1i_misses - before.l1i_misses;
    dram_requests = after.dram_requests - before.dram_requests;
    dram_row_hits = after.dram_row_hits - before.dram_row_hits;
    prefetches_issued = after.prefetches_issued - before.prefetches_issued;
    prefetch_hits_l1d = after.prefetch_hits_l1d - before.prefetch_hits_l1d;
    prefetch_hits_llc = after.prefetch_hits_llc - before.prefetch_hits_llc }

let add_stats a b =
  { l1d_hits = a.l1d_hits + b.l1d_hits;
    l1d_misses = a.l1d_misses + b.l1d_misses;
    llc_hits = a.llc_hits + b.llc_hits;
    llc_misses = a.llc_misses + b.llc_misses;
    l1i_hits = a.l1i_hits + b.l1i_hits;
    l1i_misses = a.l1i_misses + b.l1i_misses;
    dram_requests = a.dram_requests + b.dram_requests;
    dram_row_hits = a.dram_row_hits + b.dram_row_hits;
    prefetches_issued = a.prefetches_issued + b.prefetches_issued;
    prefetch_hits_l1d = a.prefetch_hits_l1d + b.prefetch_hits_l1d;
    prefetch_hits_llc = a.prefetch_hits_llc + b.prefetch_hits_llc }

let stats t =
  { l1d_hits = Cache.hits t.l1d;
    l1d_misses = Cache.misses t.l1d;
    llc_hits = Cache.hits t.llc;
    llc_misses = Cache.misses t.llc;
    l1i_hits = Cache.hits t.l1i;
    l1i_misses = Cache.misses t.l1i;
    dram_requests = Dram.requests t.dram;
    dram_row_hits = Dram.row_hits t.dram;
    prefetches_issued = t.prefetches_issued;
    prefetch_hits_l1d = Cache.prefetch_hits t.l1d;
    prefetch_hits_llc = Cache.prefetch_hits t.llc }
