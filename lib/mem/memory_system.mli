(** The full memory hierarchy of the simulated machine: split L1 caches, a
    shared LLC slice, DDR4 main memory, and the BOP + stream data
    prefetchers of Table 1.

    Two usage modes share one state type:
    - {e timing} ([load], [fetch], [store_commit]) returns completion
      cycles, models MSHR capacity, miss merging and DRAM contention — used
      by the cycle-level core;
    - {e functional} ([load_functional], [fetch_functional]) updates cache
      and prefetcher state without time — used by the software profiler,
      which plays the role of the paper's PMU/PEBS measurements. *)

type params = {
  l1i : Cache.params;
  l1d : Cache.params;
  llc : Cache.params;
  l1i_latency : int;
  l1d_latency : int;
  llc_latency : int;
  dram : Dram.params;
  mshrs : int;  (** max outstanding demand misses *)
  enable_bop : bool;
  enable_stream : bool;
}

val skylake : params
(** Table 1: 32 KiB 8-way L1s (3/4-cycle), 1 MiB 20-way LLC slice
    (36-cycle), DDR4-2400, 16 MSHRs, BOP + stream enabled. *)

type t

val create : params -> t

val params : t -> params

val set_tracer : t -> Obs_tracer.t option -> unit
(** Attach (or detach) an observability tracer.  With a tracer installed
    the timing interface emits [l1d_miss]/[l1i_miss]/[prefetch] events at
    exactly the points where the corresponding {!stats} counters
    increment; the tracer is a write-only sink, so timing and statistics
    are unaffected.  The functional interface never emits (the profiler
    replays accesses out of pipeline time). *)

(** Which level served an access. *)
type level =
  | L1
  | Llc
  | Mem

(** {1 Timing interface} *)

val load : t -> cycle:int -> addr:int -> [ `Done of int * level | `Mshr_full ]
(** Demand load issued at [cycle]; returns the data-ready cycle and serving
    level.  Misses to the same line merge onto the outstanding fill.
    [`Mshr_full] means the load must retry next cycle. *)

(** {2 Unboxed timing interface}

    The cycle loop's variants of {!load} and {!fetch}: a result is packed
    as [(ready lsl 2) lor code] with the level codes below, and [-1]
    stands for [`Mshr_full], so the per-access hot path allocates
    nothing.  Identical timing, statistics and tracer behaviour. *)

val code_l1 : int
val code_llc : int
val code_mem : int

val level_of_code : int -> level

val load_raw : t -> cycle:int -> addr:int -> int
(** Packed {!load}; [-1] when the MSHRs are full. *)

val fetch_raw : t -> cycle:int -> addr:int -> int
(** Packed {!fetch}; never [-1] (instruction fetches do not run out of
    miss slots). *)

val store_commit : t -> cycle:int -> addr:int -> unit
(** Retirement-time store: write-allocate into L1D.  Store misses are
    absorbed by the store buffer and do not stall the pipeline. *)

val fetch : t -> cycle:int -> addr:int -> int * level
(** Instruction fetch through the L1I and LLC. *)

val prefetch_inst : t -> cycle:int -> addr:int -> unit
(** FDIP: fill the L1I line containing [addr] ahead of fetch. *)

val probe_inst : t -> addr:int -> bool
(** Whether the L1I already holds the line containing [addr] (no state
    change); used by FDIP to filter redundant prefetches. *)

val outstanding_misses : t -> cycle:int -> int
(** Demand misses currently in flight (an MLP observation point). *)

(** {1 Functional interface} *)

val load_functional : t -> addr:int -> level
val fetch_functional : t -> addr:int -> level

(** {1 Warming interface}

    The fast-forward touch mode of sampled simulation: each touch updates
    cache contents, replacement state and prefetcher training exactly as
    the functional interface would — and nothing else.  No MSHR
    occupancy, no DRAM contention, no tracer events, no return value: the
    caller is skipping time, not modelling it. *)

val warm_load : t -> addr:int -> unit
val warm_store : t -> addr:int -> unit
val warm_fetch : t -> addr:int -> unit

val quiesce : t -> unit
(** Clear every absolute-cycle stamp: demand and instruction MSHR files
    (all slots become implicitly free) and the DRAM bank/bus busy times.
    Cache contents, LRU state, prefetcher training and statistics are
    untouched.  A detail window whose cycle counter restarts at zero must
    quiesce first, or stamps from the previous window's time base read as
    in-flight misses and queueing delay. *)

(** {1 Checkpointing} *)

val checkpoint : t -> string
(** Serialise the complete hierarchy state — caches, prefetchers, DRAM,
    MSHR files, statistics — as an opaque blob (the tracer attachment is
    not captured).  The blob is self-contained: restoring it yields an
    independent deep copy, so one captured state can seed several
    concurrent chunk simulations. *)

val restore : string -> t
(** Rebuild a hierarchy from a {!checkpoint} blob (no tracer attached).
    @raise Invalid_argument if the blob is not a memory-system
    checkpoint. *)

(** {1 Statistics} *)

type stats = {
  l1d_hits : int;
  l1d_misses : int;
  llc_hits : int;
  llc_misses : int;
  l1i_hits : int;
  l1i_misses : int;
  dram_requests : int;
  dram_row_hits : int;
  prefetches_issued : int;
  prefetch_hits_l1d : int;  (** demand hits on prefetched L1D lines *)
  prefetch_hits_llc : int;
}

val stats : t -> stats

val diff_stats : after:stats -> before:stats -> stats
(** Field-wise [after - before]: the activity of a window bracketed by
    two {!stats} snapshots (the counters are cumulative). *)

val add_stats : stats -> stats -> stats
(** Field-wise sum: stitching per-chunk statistics back together. *)
