type params = {
  banks : int;
  row_bytes : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  t_burst : int;
  seed : int;
}

let ddr4_2400 =
  { banks = 16; row_bytes = 8192; t_cas = 42; t_rcd = 42; t_rp = 42; t_burst = 10;
    seed = 0x9d2c }

type bank = {
  mutable open_row : int;  (* -1 = precharged *)
  mutable busy_until : int;
}

type t = {
  params : params;
  row_shift : int;  (* log2 row_bytes, or -1 when not a power of two *)
  bank_state : bank array;
  mutable bus_busy_until : int;
  mutable requests : int;
  mutable row_hits : int;
  mutable row_conflicts : int;
}

let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1)

let create params =
  { params;
    row_shift =
      (if params.row_bytes land (params.row_bytes - 1) = 0 then
         log2 params.row_bytes 0
       else -1);
    bank_state = Array.init params.banks (fun _ -> { open_row = -1; busy_until = 0 });
    bus_busy_until = 0;
    requests = 0;
    row_hits = 0;
    row_conflicts = 0 }

let request t ~cycle ~addr =
  (* Spread consecutive rows over banks so streaming uses bank parallelism,
     with a seed-dependent hash to avoid pathological aliasing. *)
  (* Addresses are non-negative, so the shift is the division. *)
  let row =
    if t.row_shift >= 0 then addr lsr t.row_shift else addr / t.params.row_bytes
  in
  let hashed = row lxor (row lsr 7) lxor t.params.seed in
  let bank = t.bank_state.(hashed land (t.params.banks - 1)) in
  t.requests <- t.requests + 1;
  let start = if cycle > bank.busy_until then cycle else bank.busy_until in
  let access_latency =
    if bank.open_row = row then begin
      t.row_hits <- t.row_hits + 1;
      t.params.t_cas
    end
    else if bank.open_row = -1 then t.params.t_rcd + t.params.t_cas
    else begin
      t.row_conflicts <- t.row_conflicts + 1;
      t.params.t_rp + t.params.t_rcd + t.params.t_cas
    end
  in
  bank.open_row <- row;
  let data_ready = start + access_latency in
  let data_start =
    if data_ready > t.bus_busy_until then data_ready else t.bus_busy_until
  in
  let completion = data_start + t.params.t_burst in
  t.bus_busy_until <- data_start + t.params.t_burst;
  bank.busy_until <- data_ready;
  completion

let quiesce t =
  Array.iter (fun bank -> bank.busy_until <- 0) t.bank_state;
  t.bus_busy_until <- 0

let requests t = t.requests
let row_hits t = t.row_hits
let row_conflicts t = t.row_conflicts

let typical_miss_latency params = params.t_rcd + params.t_cas + params.t_burst
