(** DDR4-like main-memory model in the spirit of Ramulator (Table 1:
    DDR4-2400, one channel).

    The model tracks per-bank open rows and busy times plus a shared data
    bus, so it reproduces the phenomena that matter for criticality
    scheduling: row-buffer locality, bank-level parallelism (MLP) and
    bandwidth saturation under bursts.  All times are in CPU cycles. *)

type t

type params = {
  banks : int;  (** power of two *)
  row_bytes : int;  (** row-buffer size, power of two *)
  t_cas : int;  (** column access, CPU cycles *)
  t_rcd : int;  (** activate-to-column *)
  t_rp : int;  (** precharge *)
  t_burst : int;  (** data-bus occupancy per transfer *)
  seed : int;  (** bank-hash randomisation *)
}

val ddr4_2400 : params
(** DDR4-2400 CL17 behind a 3 GHz core: 42-cycle CAS/RCD/RP, 10-cycle
    burst, 16 banks, 8 KiB rows. *)

val create : params -> t

val request : t -> cycle:int -> addr:int -> int
(** [request t ~cycle ~addr] enqueues a line fill and returns its completion
    cycle.  Requests are served in arrival order per bank (FR-FCFS degrades
    to FCFS under in-order issue per bank), with row-hit/row-miss/row-
    conflict timing and data-bus serialisation. *)

val quiesce : t -> unit
(** Zero every absolute-cycle stamp (per-bank [busy_until] and the shared
    bus) while keeping open rows and statistics.  Called between detail
    windows of a sampled run, whose cycle counters restart at zero: a
    stale stamp from a previous window's time base would otherwise read
    as queueing delay.  Row-buffer locality deliberately survives — open
    rows are cache-like state, not time-like state. *)

val requests : t -> int
val row_hits : t -> int
val row_conflicts : t -> int

val typical_miss_latency : params -> int
(** Unloaded activate+read+burst latency, used by the software stack as the
    AMAT surrogate when weighting load-slice DAG edges (paper Section 3.5). *)
