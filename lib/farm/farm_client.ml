module P = Farm_protocol

type t = {
  fd : Unix.file_descr;
  io_timeout : float option;
  mutable req_counter : int;
}

exception Farm_error of string
exception Disconnected of string
exception Overloaded of int

let fail fmt = Printf.ksprintf (fun s -> raise (Farm_error s)) fmt
let lost fmt = Printf.ksprintf (fun s -> raise (Disconnected s)) fmt

let connect ?(connect_timeout = 10.) ?io_timeout ~socket () =
  Resil.Fault_plan.hit ~ident:socket "farm.connect";
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  let give_up fmt =
    Printf.ksprintf
      (fun s ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise (Disconnected s))
      fmt
  in
  let unreachable e =
    give_up "cannot reach daemon at %s: %s (is crisp_simd running?)" socket
      (Unix.error_message e)
  in
  Unix.set_nonblock fd;
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error ((EINPROGRESS | EAGAIN | EWOULDBLOCK), _, _) -> (
    (* Non-blocking connect in flight (or the listen backlog is full):
       wait for writability under the connect deadline, then read the
       verdict from SO_ERROR. *)
    match Unix.select [] [ fd ] [] connect_timeout with
    | _, _ :: _, _ -> (
      match Unix.getsockopt_error fd with
      | None -> ()
      | Some e -> unreachable e)
    | _ ->
      give_up "timed out connecting to %s after %gs" socket connect_timeout)
  | exception Unix.Unix_error (e, _, _) -> unreachable e);
  { fd; io_timeout; req_counter = 0 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* A failed send usually means the daemon hung up on purpose — and its
   terminating verdict (Overloaded shed, Draining) may already sit in
   our receive buffer, written just before the close that broke our
   write.  Prefer that verdict over a bare EPIPE: it carries the backoff
   hint and keeps the shed path deterministic for clients that lose the
   write/close race. *)
let send_failed t cause =
  (match
     Farm_frame.read_fd ~idle_timeout:0.25 ~io_timeout:0.25 t.fd
   with
  | `Frame payload -> (
    match P.decode_response payload with
    | Ok (P.Overloaded { retry_after_ms }) -> raise (Overloaded retry_after_ms)
    | Ok P.Draining -> lost "daemon is draining; reconnect later"
    | Ok _ | Error _ -> ())
  | `Eof | `Idle_timeout | `Timeout | `Abort -> ()
  | exception Farm_frame.Frame_error _ -> ()
  | exception Unix.Unix_error _ -> ());
  lost "connection lost while sending: %s" cause

let send t req =
  try Farm_frame.write_fd ?io_timeout:t.io_timeout t.fd (P.encode_request req)
  with
  | Farm_frame.Io_timeout msg -> lost "send timed out: %s" msg
  | Unix.Unix_error (e, _, _) -> send_failed t (Unix.error_message e)
  | Sys_error msg -> send_failed t msg

(* Waiting for the daemon's *next* frame is unbounded — cells take as
   long as they take to simulate — but once a frame has started it must
   complete within the io deadline: a mid-frame stall is a sick
   transport, not a slow simulation. *)
let recv t =
  match Farm_frame.read_fd ?io_timeout:t.io_timeout t.fd with
  | `Eof -> lost "daemon closed the connection mid-conversation"
  | `Timeout ->
    lost "response frame stalled past the %gs I/O deadline"
      (Option.value t.io_timeout ~default:0.)
  | `Idle_timeout | `Abort -> assert false (* no idle deadline, no poll *)
  | `Frame payload -> (
    match P.decode_response payload with
    | Ok (P.Overloaded { retry_after_ms }) ->
      (* Connection-terminating shed frame; surface the backoff hint. *)
      raise (Overloaded retry_after_ms)
    | Ok P.Draining -> lost "daemon is draining; reconnect later"
    | Ok resp -> resp
    | Error msg -> fail "undecodable response: %s" msg)
  | exception Farm_frame.Frame_error msg ->
    (* Torn or corrupt framing is transport damage, not a protocol
       disagreement — retryable like any disconnect. *)
    lost "framing error: %s" msg
  | exception Unix.Unix_error (e, _, _) ->
    lost "connection lost: %s" (Unix.error_message e)

let describe = function
  | P.Pong -> "pong"
  | P.Stats_reply _ -> "stats"
  | P.Shutting_down -> "shutting-down"
  | P.Cell _ -> "cell"
  | P.Summary _ -> "summary"
  | P.Invalid_request { reason; _ } -> Printf.sprintf "invalid-request (%s)" reason
  | P.Overloaded { retry_after_ms } ->
    Printf.sprintf "overloaded (retry after %dms)" retry_after_ms
  | P.Draining -> "draining"
  | P.Error_reply msg -> Printf.sprintf "error (%s)" msg

let ping t =
  send t P.Ping;
  match recv t with
  | P.Pong -> ()
  | r -> fail "expected pong, got %s" (describe r)

let stats t =
  send t P.Stats;
  match recv t with
  | P.Stats_reply s -> s
  | r -> fail "expected stats, got %s" (describe r)

let shutdown_daemon t =
  send t P.Shutdown;
  match recv t with
  | P.Shutting_down -> ()
  | r -> fail "expected shutting-down, got %s" (describe r)

type grid_result = {
  rows : (string * float list) list;
  degraded : (string * string) list;
  summary : P.summary;
}

let contains ~sub s =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let run_grid t ?id ?sample ~(spec : Grid.spec) ~eval_instrs ~train_instrs () =
  t.req_counter <- t.req_counter + 1;
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "%s-%d-%d" spec.tag (Unix.getpid ()) t.req_counter
  in
  let sample =
    match sample with None -> "" | Some s -> Sample_config.to_string s
  in
  send t
    (P.Run_grid
       { id;
         tag = spec.tag;
         metric = spec.metric;
         eval_instrs;
         train_instrs;
         names = spec.names;
         columns = spec.columns;
         sample });
  let nrows = List.length spec.names and ncols = List.length spec.columns in
  let matrix = Array.make_matrix nrows ncols Float.nan in
  let filled = Array.make_matrix nrows ncols false in
  let degraded = ref [] in
  let rec stream () =
    match recv t with
    | P.Cell c ->
      if c.row < 0 || c.row >= nrows || c.col < 0 || c.col >= ncols then
        fail "cell frame (%d,%d) outside the %dx%d grid" c.row c.col nrows ncols;
      (match c.outcome with
      | Ok v -> matrix.(c.row).(c.col) <- v
      | Error reason ->
        (* Same marker the local runner uses, so rendering matches. *)
        matrix.(c.row).(c.col) <- Float.nan;
        degraded := (c.name ^ "/" ^ c.label, reason) :: !degraded);
      filled.(c.row).(c.col) <- true;
      stream ()
    | P.Summary s ->
      if s.req_id <> id then
        fail "summary echoes request %S, expected %S" s.req_id id;
      Array.iteri
        (fun r row ->
          Array.iteri
            (fun c ok ->
              if not ok then fail "daemon never sent cell (%d,%d)" r c)
            row)
        filled;
      s
    | P.Invalid_request { req_id; reason; diags } ->
      if req_id <> id then
        fail "rejection echoes request %S, expected %S" req_id id;
      fail "daemon rejected the request: %s%s" reason
        (if diags = [] then ""
         else "\n  " ^ String.concat "\n  " diags)
    | P.Error_reply msg when contains ~sub:"framing error" msg ->
      (* The daemon received garbage: the wire mangled our bytes on the
         way up.  Transport damage, so retryable. *)
      lost "daemon reported transport corruption: %s" msg
    | P.Error_reply msg -> fail "daemon: %s" msg
    | r -> fail "expected cell or summary, got %s" (describe r)
  in
  let summary = stream () in
  { rows = List.mapi (fun r name -> (name, Array.to_list matrix.(r))) spec.names;
    degraded = List.rev !degraded;
    summary }

(* ----- reconnect-and-resume ----- *)

type retry = {
  attempts : int;
  backoff : Resil.Backoff.params;
  seed : int;
  connect_timeout : float;
  io_timeout : float option;
}

let default_retry =
  { attempts = 5;
    backoff = Resil.Backoff.default;
    seed = 0;
    connect_timeout = 10.;
    io_timeout = None }

let cause_of = function
  | Disconnected msg -> msg
  | Overloaded ms -> Printf.sprintf "daemon overloaded (retry after %dms)" ms
  | Resil.Fault_plan.Injected site -> "injected fault at " ^ site
  | e -> Printexc.to_string e

let run_grid_retrying ~socket ?(retry = default_retry) ?id ?sample
    ~(spec : Grid.spec) ~eval_instrs ~train_instrs () =
  (* One id for every attempt: the daemon memoizes and journals cells by
     canonical key, so a re-sent request streams already-finished cells
     from the memo — retry-to-convergence is exactly-once by
     construction, and the stable id keeps the summaries attributable. *)
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "%s-%d-r" spec.tag (Unix.getpid ())
  in
  let rec attempt k =
    let outcome =
      match
        connect ~connect_timeout:retry.connect_timeout
          ?io_timeout:retry.io_timeout ~socket ()
      with
      | exception (Disconnected _ as e) -> Error (e, None)
      | exception (Resil.Fault_plan.Injected _ as e) -> Error (e, None)
      | t ->
        Fun.protect
          ~finally:(fun () -> close t)
          (fun () ->
            match run_grid t ~id ?sample ~spec ~eval_instrs ~train_instrs () with
            | r -> Ok r
            | exception (Disconnected _ as e) -> Error (e, None)
            | exception (Overloaded ms as e) -> Error (e, Some ms))
    in
    match outcome with
    | Ok r -> (r, k + 1)
    | Error (e, hint) ->
      if k + 1 >= retry.attempts then
        fail "grid %s (%s) failed after %d attempt(s): %s" spec.tag id (k + 1)
          (cause_of e)
      else begin
        let nominal =
          Resil.Backoff.delay retry.backoff ~seed:retry.seed ~ident:id
            ~attempt:k
        in
        (* Respect the server's shed hint when it outlasts our own
           schedule. *)
        let delay =
          match hint with
          | Some ms -> Float.max nominal (float_of_int ms /. 1000.)
          | None -> nominal
        in
        Resil.Log.record
          (Resil.Log.Retry
             { ident = id; attempt = k + 1; delay; cause = cause_of e });
        if delay > 0. then Unix.sleepf delay;
        attempt (k + 1)
      end
  in
  attempt 0
