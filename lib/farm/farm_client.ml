module P = Farm_protocol

type t = {
  ic : in_channel;
  oc : out_channel;
  mutable req_counter : int;
}

exception Farm_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Farm_error s)) fmt

let connect ~socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot reach daemon at %s: %s (is crisp_simd running?)" socket
       (Unix.error_message e));
  { ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    req_counter = 0 }

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic

let send t req =
  try Farm_frame.write t.oc (P.encode_request req)
  with Sys_error msg -> fail "connection lost while sending: %s" msg

let recv t =
  match Farm_frame.read t.ic with
  | None -> fail "daemon closed the connection mid-conversation"
  | Some payload -> (
    match P.decode_response payload with
    | Ok resp -> resp
    | Error msg -> fail "undecodable response: %s" msg)
  | exception Farm_frame.Frame_error msg -> fail "framing error: %s" msg
  | exception Sys_error msg -> fail "connection lost: %s" msg

let describe = function
  | P.Pong -> "pong"
  | P.Stats_reply _ -> "stats"
  | P.Shutting_down -> "shutting-down"
  | P.Cell _ -> "cell"
  | P.Summary _ -> "summary"
  | P.Invalid_request { reason; _ } -> Printf.sprintf "invalid-request (%s)" reason
  | P.Error_reply msg -> Printf.sprintf "error (%s)" msg

let ping t =
  send t P.Ping;
  match recv t with
  | P.Pong -> ()
  | r -> fail "expected pong, got %s" (describe r)

let stats t =
  send t P.Stats;
  match recv t with
  | P.Stats_reply s -> s
  | r -> fail "expected stats, got %s" (describe r)

let shutdown_daemon t =
  send t P.Shutdown;
  match recv t with
  | P.Shutting_down -> ()
  | r -> fail "expected shutting-down, got %s" (describe r)

type grid_result = {
  rows : (string * float list) list;
  degraded : (string * string) list;
  summary : P.summary;
}

let run_grid t ?id ~(spec : Grid.spec) ~eval_instrs ~train_instrs () =
  t.req_counter <- t.req_counter + 1;
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "%s-%d-%d" spec.tag (Unix.getpid ()) t.req_counter
  in
  send t
    (P.Run_grid
       { id;
         tag = spec.tag;
         metric = spec.metric;
         eval_instrs;
         train_instrs;
         names = spec.names;
         columns = spec.columns });
  let nrows = List.length spec.names and ncols = List.length spec.columns in
  let matrix = Array.make_matrix nrows ncols Float.nan in
  let filled = Array.make_matrix nrows ncols false in
  let degraded = ref [] in
  let rec stream () =
    match recv t with
    | P.Cell c ->
      if c.row < 0 || c.row >= nrows || c.col < 0 || c.col >= ncols then
        fail "cell frame (%d,%d) outside the %dx%d grid" c.row c.col nrows ncols;
      (match c.outcome with
      | Ok v -> matrix.(c.row).(c.col) <- v
      | Error reason ->
        (* Same marker the local runner uses, so rendering matches. *)
        matrix.(c.row).(c.col) <- Float.nan;
        degraded := (c.name ^ "/" ^ c.label, reason) :: !degraded);
      filled.(c.row).(c.col) <- true;
      stream ()
    | P.Summary s ->
      if s.req_id <> id then
        fail "summary echoes request %S, expected %S" s.req_id id;
      Array.iteri
        (fun r row ->
          Array.iteri
            (fun c ok ->
              if not ok then fail "daemon never sent cell (%d,%d)" r c)
            row)
        filled;
      s
    | P.Invalid_request { req_id; reason; diags } ->
      if req_id <> id then
        fail "rejection echoes request %S, expected %S" req_id id;
      fail "daemon rejected the request: %s%s" reason
        (if diags = [] then ""
         else "\n  " ^ String.concat "\n  " diags)
    | P.Error_reply msg -> fail "daemon: %s" msg
    | r -> fail "expected cell or summary, got %s" (describe r)
  in
  let summary = stream () in
  { rows = List.mapi (fun r name -> (name, Array.to_list matrix.(r))) spec.names;
    degraded = List.rev !degraded;
    summary }
