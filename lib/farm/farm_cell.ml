type t = {
  mutex : Mutex.t;
  settled : Condition.t;
  mutable result : (float, string) result option;
  mutable driving : bool;
  join : unit -> (float, string) result;
}

let of_result r =
  { mutex = Mutex.create ();
    settled = Condition.create ();
    result = Some r;
    driving = false;
    join = (fun () -> r) }

let spawn pool policy ~ident ~on_success ~on_failure thunk =
  let handle = Resil.Supervise.spawn pool policy ~ident thunk in
  let join () =
    match Resil.Supervise.join handle with
    | Ok v ->
      on_success v;
      Ok v
    | Error e ->
      let reason = Resil.Supervise.error_to_string e in
      on_failure reason;
      Error reason
  in
  { mutex = Mutex.create ();
    settled = Condition.create ();
    result = None;
    driving = false;
    join }

let await t =
  Mutex.lock t.mutex;
  let rec wait () =
    match t.result with
    | Some r ->
      Mutex.unlock t.mutex;
      r
    | None ->
      if t.driving then begin
        Condition.wait t.settled t.mutex;
        wait ()
      end
      else begin
        t.driving <- true;
        Mutex.unlock t.mutex;
        (* Supervise.join polls with short sleeps, so driving it from a
           system thread never starves the worker domains.  It never
           raises; every failure folds into the result. *)
        let r = t.join () in
        Mutex.lock t.mutex;
        t.result <- Some r;
        Condition.broadcast t.settled;
        Mutex.unlock t.mutex;
        r
      end
  in
  wait ()
