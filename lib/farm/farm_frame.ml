exception Frame_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt
let max_payload = 1 lsl 20

let check_len n =
  if n < 0 || n > max_payload then
    fail "declared payload length %d outside [0, %d]" n max_payload

let encode payload =
  let n = String.length payload in
  check_len n;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let decode buf ~pos =
  let avail = String.length buf - pos in
  if avail < 4 then None
  else begin
    let n = Int32.to_int (String.get_int32_be buf pos) in
    check_len n;
    if avail < 4 + n then None else Some (String.sub buf (pos + 4) n, pos + 4 + n)
  end

let write oc payload =
  output_string oc (encode payload);
  flush oc

let read ic =
  (* A clean EOF is only clean on the first header byte; running dry
     anywhere later means the peer died mid-frame. *)
  match input_char ic with
  | exception End_of_file -> None
  | c0 ->
    let header = Bytes.create 4 in
    Bytes.set header 0 c0;
    (try really_input ic header 1 3
     with End_of_file -> fail "stream truncated inside frame header");
    let n = Int32.to_int (Bytes.get_int32_be header 0) in
    check_len n;
    (try Some (really_input_string ic n)
     with End_of_file ->
       fail "stream truncated inside %d-byte payload" n)
