exception Frame_error of string
exception Io_timeout of string

let fail fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt
let max_frame_bytes = 1 lsl 20

let check_len n =
  if n < 0 || n > max_frame_bytes then
    fail "declared payload length %d outside [0, %d]" n max_frame_bytes

let encode payload =
  let n = String.length payload in
  check_len n;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let decode buf ~pos =
  let avail = String.length buf - pos in
  if avail < 4 then None
  else begin
    let n = Int32.to_int (String.get_int32_be buf pos) in
    check_len n;
    if avail < 4 + n then None else Some (String.sub buf (pos + 4) n, pos + 4 + n)
  end

let write oc payload =
  (* [encode] validates the length, so an oversize frame is rejected
     loudly before a single byte reaches the wire. *)
  output_string oc (encode payload);
  flush oc

let read ic =
  (* A clean EOF is only clean on the first header byte; running dry
     anywhere later means the peer died mid-frame. *)
  match input_char ic with
  | exception End_of_file -> None
  | c0 ->
    let header = Bytes.create 4 in
    Bytes.set header 0 c0;
    (try really_input ic header 1 3
     with End_of_file -> fail "stream truncated inside frame header");
    let n = Int32.to_int (Bytes.get_int32_be header 0) in
    check_len n;
    (try Some (really_input_string ic n)
     with End_of_file ->
       fail "stream truncated inside %d-byte payload" n)

(* ----- deadline-guarded file-descriptor I/O ----- *)

(* Select slices are capped so [poll] (the server's drain flag) is
   observed promptly even on an otherwise silent connection. *)
let poll_tick = 0.05

type read_result =
  [ `Frame of string | `Eof | `Idle_timeout | `Timeout | `Abort ]

(* Wait for [fd] to become ready in [mode] before the absolute [deadline]
   (None = forever), checking [poll] between slices. *)
let wait_fd fd mode ~deadline ~poll =
  let rec go () =
    if poll () then `Abort
    else begin
      let slice =
        match deadline with
        | None -> poll_tick
        | Some d -> Float.min poll_tick (d -. Unix.gettimeofday ())
      in
      if slice <= 0. then `Expired
      else
        let reads, writes =
          match mode with `Read -> ([ fd ], []) | `Write -> ([], [ fd ])
        in
        match Unix.select reads writes [] slice with
        | [], [], _ -> go ()
        | _ -> `Ready
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
    end
  in
  go ()

let no_poll () = false

(* Read exactly [len] bytes into [b] at [off].  [total] counts frame
   bytes already consumed before this call: a peer vanishing at frame
   byte 0 is a clean [`Eof]; anywhere later it is a torn frame. *)
let rec fill fd b off len ~deadline ~poll ~expired ~total =
  if len = 0 then `Done
  else
    match wait_fd fd `Read ~deadline ~poll with
    | `Abort -> `Abort
    | `Expired -> expired
    | `Ready -> (
      match Unix.read fd b off len with
      | 0 ->
        if total + off = 0 then `Eof
        else fail "stream truncated inside frame (%d bytes short)" len
      | n -> fill fd b (off + n) (len - n) ~deadline ~poll ~expired ~total
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        fill fd b off len ~deadline ~poll ~expired ~total
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
        if total + off = 0 then `Eof
        else fail "connection reset inside frame (%d bytes short)" len)

let abs_deadline = Option.map (fun s -> Unix.gettimeofday () +. s)

let read_fd ?idle_timeout ?io_timeout ?(poll = no_poll) fd : read_result =
  let header = Bytes.create 4 in
  (* The frame's first byte is awaited under the idle deadline with the
     caller's poll active; once a frame has started, the rest of it —
     header remainder plus payload — must arrive before one io deadline,
     and the frame is read to completion or evicted, never abandoned
     half-consumed. *)
  match
    fill fd header 0 1 ~deadline:(abs_deadline idle_timeout) ~poll
      ~expired:`Idle_timeout ~total:0
  with
  | `Abort -> `Abort
  | `Idle_timeout -> `Idle_timeout
  | `Eof -> `Eof
  | `Timeout -> assert false (* [expired] is [`Idle_timeout] here *)
  | `Done -> (
    let deadline = abs_deadline io_timeout in
    match
      fill fd header 1 3 ~deadline ~poll:no_poll ~expired:`Timeout ~total:1
    with
    | `Abort | `Eof | `Idle_timeout -> assert false
    | `Timeout -> `Timeout
    | `Done -> (
      let n = Int32.to_int (Bytes.get_int32_be header 0) in
      check_len n;
      let payload = Bytes.create n in
      match
        fill fd payload 0 n ~deadline ~poll:no_poll ~expired:`Timeout ~total:4
      with
      | `Abort | `Eof | `Idle_timeout -> assert false
      | `Timeout -> `Timeout
      | `Done -> `Frame (Bytes.unsafe_to_string payload)))

let write_raw_fd ?io_timeout fd buf =
  let b = Bytes.unsafe_of_string buf in
  let len = Bytes.length b in
  let deadline = abs_deadline io_timeout in
  let rec go off =
    if off < len then
      match wait_fd fd `Write ~deadline ~poll:no_poll with
      | `Abort -> assert false (* no poll installed *)
      | `Expired ->
        raise
          (Io_timeout
             (Printf.sprintf
                "peer did not drain %d of %d frame bytes before the write \
                 deadline"
                (len - off) len))
      | `Ready -> (
        match Unix.write fd b off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          go off)
  in
  go 0

let write_fd ?io_timeout fd payload =
  (* [encode] validates the length first: an oversize outgoing frame is
     a loud [Frame_error] before any bytes are written. *)
  write_raw_fd ?io_timeout fd (encode payload)
