type direction = Up | Down

type action =
  | Delay of float
  | Stall of float
  | Truncate
  | Corrupt_len
  | Drop

type trigger = {
  direction : direction;
  count : Resil.Fault_plan.count;
  action : action;
}

type plan = trigger list

let direction_to_string = function Up -> "up" | Down -> "down"

let action_to_string = function
  | Delay s -> Printf.sprintf "delay=%g" s
  | Stall s -> Printf.sprintf "stall=%g" s
  | Truncate -> "truncate"
  | Corrupt_len -> "corrupt-len"
  | Drop -> "drop"

let trigger_to_string tr =
  Printf.sprintf "%s:%s%s"
    (direction_to_string tr.direction)
    (action_to_string tr.action)
    (match tr.count with
    | Resil.Fault_plan.Nth n -> Printf.sprintf "#%d" n
    | Resil.Fault_plan.From n -> Printf.sprintf "+%d" n)

(* ---- CLI trigger specs: [up:|down:]ACTION[#N|+N] ---- *)

let parse_spec spec =
  let ( let* ) = Result.bind in
  let after s j = String.sub s (j + 1) (String.length s - j - 1) in
  let direction, rest =
    match String.index_opt spec ':' with
    | Some i when String.sub spec 0 i = "up" -> (Up, after spec i)
    | Some i when String.sub spec 0 i = "down" -> (Down, after spec i)
    | _ -> (Down, spec)
  in
  let* rest, count =
    let int_of s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (Printf.sprintf "bad count %S in wire-fault spec %S" s spec)
    in
    match (String.rindex_opt rest '#', String.rindex_opt rest '+') with
    | Some j, _ ->
      let* n = int_of (after rest j) in
      Ok (String.sub rest 0 j, Resil.Fault_plan.Nth n)
    | None, Some j ->
      let* n = int_of (after rest j) in
      Ok (String.sub rest 0 j, Resil.Fault_plan.From n)
    | None, None -> Ok (rest, Resil.Fault_plan.Nth 1)
  in
  let* action =
    let secs_of what s =
      match float_of_string_opt s with
      | Some v when v >= 0. -> Ok v
      | _ ->
        Error (Printf.sprintf "bad %s duration in wire-fault spec %S" what spec)
    in
    match String.index_opt rest '=' with
    | Some j when String.sub rest 0 j = "delay" ->
      Result.map (fun s -> Delay s) (secs_of "delay" (after rest j))
    | Some j when String.sub rest 0 j = "stall" ->
      Result.map (fun s -> Stall s) (secs_of "stall" (after rest j))
    | Some _ ->
      Error (Printf.sprintf "unknown action in wire-fault spec %S" spec)
    | None -> (
      match rest with
      | "delay" -> Ok (Delay 0.2)
      | "stall" -> Ok (Stall 0.2)
      | "truncate" -> Ok Truncate
      | "corrupt-len" -> Ok Corrupt_len
      | "drop" -> Ok Drop
      | other ->
        Error
          (Printf.sprintf
             "unknown wire fault %S in spec %S (expected delay[=SECS], \
              stall[=SECS], truncate, corrupt-len or drop)"
             other spec))
  in
  Ok { direction; count; action }

(* A deterministic pseudo-random plan: one or two downstream triggers,
   each firing exactly once ([Nth]), so a retrying client always
   converges — the fault supply is finite by construction. *)
let random ~seed =
  let st = Random.State.make [| 0xc4a05; seed |] in
  let n = 1 + Random.State.int st 2 in
  List.init n (fun _ ->
      let action =
        match Random.State.int st 5 with
        | 0 -> Delay 0.05
        | 1 -> Stall 0.2
        | 2 -> Truncate
        | 3 -> Corrupt_len
        | _ -> Drop
      in
      { direction = Down;
        count = Resil.Fault_plan.Nth (1 + Random.State.int st 6);
        action })

(* ---- the proxy ---- *)

(* One client<->server connection pair.  Both pump threads share it;
   [sever] shuts both sockets down (waking any pump blocked in
   read/write), and the last pump to exit closes the descriptors. *)
type pair = {
  client_fd : Unix.file_descr;
  server_fd : Unix.file_descr;
  severed : bool Atomic.t;
  live : int Atomic.t;
}

type t = {
  listen : string;
  upstream : string;
  plan : plan;
  stop_flag : bool Atomic.t;
  listen_fd : Unix.file_descr Atomic.t;
  (* Per-direction frame counters, global and monotonic across every
     connection the proxy ever carries: "the 3rd downstream frame" means
     the same frame no matter how many times the client reconnected
     before it, which is what makes Nth-counted faults deterministic
     under retries. *)
  up_frames : int Atomic.t;
  down_frames : int Atomic.t;
  fired_rev : (direction * int * action) list ref;
  pairs : (int, pair) Hashtbl.t;
  pumps : (int, Thread.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable acceptor : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let fired t = locked t (fun () -> List.rev !(t.fired_rev))
let frames t = function
  | Up -> Atomic.get t.up_frames
  | Down -> Atomic.get t.down_frames

let sever pair =
  if not (Atomic.exchange pair.severed true) then begin
    (try Unix.shutdown pair.client_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.shutdown pair.server_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end

let release pair =
  sever pair;
  if Atomic.fetch_and_add pair.live (-1) = 1 then begin
    (try Unix.close pair.client_fd with Unix.Unix_error _ -> ());
    try Unix.close pair.server_fd with Unix.Unix_error _ -> ()
  end

(* The first trigger matching this direction and (1-based) global frame
   number wins. *)
let fault_for t direction n =
  List.find_map
    (fun tr ->
      if tr.direction <> direction then None
      else
        match tr.count with
        | Resil.Fault_plan.Nth k when n = k -> Some tr.action
        | Resil.Fault_plan.From k when n >= k -> Some tr.action
        | Resil.Fault_plan.Nth _ | Resil.Fault_plan.From _ -> None)
    t.plan

(* Flip the top byte of the 4-byte big-endian length prefix: the
   declared length rockets past [Farm_frame.max_frame_bytes], so the
   peer's decoder raises [Frame_error] — deterministic damage with a
   deterministic diagnosis. *)
let corrupt_length raw =
  let b = Bytes.of_string raw in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x7f));
  Bytes.unsafe_to_string b

let pump t pair direction ~src ~dst =
  let counter = match direction with Up -> t.up_frames | Down -> t.down_frames in
  let note n action =
    locked t (fun () -> t.fired_rev := (direction, n, action) :: !(t.fired_rev))
  in
  let rec loop () =
    match
      Farm_frame.read_fd ~poll:(fun () -> Atomic.get t.stop_flag) src
    with
    | `Eof | `Abort | `Idle_timeout | `Timeout -> ()
    | `Frame payload -> (
      let n = Atomic.fetch_and_add counter 1 + 1 in
      match fault_for t direction n with
      | None ->
        Farm_frame.write_fd dst payload;
        loop ()
      | Some action -> (
        note n action;
        match action with
        | Delay s ->
          (* Transparent slowdown: the frame still arrives intact. *)
          Unix.sleepf s;
          Farm_frame.write_fd dst payload;
          loop ()
        | Stall s ->
          (* Hold the frame, then die — the peer sees a silent gap
             followed by a disconnect, like a wedged server rebooting. *)
          Unix.sleepf s
        | Drop -> ()
        | Truncate ->
          (* Half a frame, then death: the reader must diagnose a torn
             frame, never hang or deliver garbage. *)
          let raw = Farm_frame.encode payload in
          Farm_frame.write_raw_fd dst
            (String.sub raw 0 (Int.max 1 (String.length raw / 2)))
        | Corrupt_len ->
          Farm_frame.write_raw_fd dst (corrupt_length (Farm_frame.encode payload))
        ))
  in
  (try loop () with
  | Farm_frame.Frame_error _ | Farm_frame.Io_timeout _ -> ()
  | Unix.Unix_error _ | Sys_error _ -> ());
  release pair

let connect_upstream t =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX t.upstream) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let pump_counter = ref 0

let spawn_pump t pair direction ~src ~dst =
  locked t (fun () ->
      let id = !pump_counter in
      incr pump_counter;
      let th =
        Thread.create
          (fun () ->
            Fun.protect
              (fun () -> pump t pair direction ~src ~dst)
              ~finally:(fun () ->
                locked t (fun () -> Hashtbl.remove t.pumps id)))
          ()
      in
      Hashtbl.replace t.pumps id th)

let handle t client_fd =
  match connect_upstream t with
  | None ->
    (* No daemon behind us: the client sees an immediate EOF, which is
       exactly what a crashed server looks like. *)
    (try Unix.close client_fd with Unix.Unix_error _ -> ())
  | Some server_fd ->
    let pair =
      { client_fd; server_fd; severed = Atomic.make false; live = Atomic.make 2 }
    in
    locked t (fun () ->
        let id = !pump_counter in
        incr pump_counter;
        Hashtbl.replace t.pairs id pair);
    spawn_pump t pair Up ~src:client_fd ~dst:server_fd;
    spawn_pump t pair Down ~src:server_fd ~dst:client_fd

let accept_loop t fd =
  let rec go () =
    if not (Atomic.get t.stop_flag) then
      match Unix.accept ~cloexec:true fd with
      | client, _ ->
        if Atomic.get t.stop_flag then
          (try Unix.close client with Unix.Unix_error _ -> ())
        else handle t client;
        go ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> go ()
      | exception Unix.Unix_error _ when Atomic.get t.stop_flag -> ()
  in
  go ()

let start ~listen ~upstream ~plan =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  if Sys.file_exists listen then Unix.unlink listen;
  Unix.bind fd (Unix.ADDR_UNIX listen);
  Unix.listen fd 16;
  let t =
    { listen;
      upstream;
      plan;
      stop_flag = Atomic.make false;
      listen_fd = Atomic.make fd;
      up_frames = Atomic.make 0;
      down_frames = Atomic.make 0;
      fired_rev = ref [];
      pairs = Hashtbl.create 8;
      pumps = Hashtbl.create 16;
      mutex = Mutex.create ();
      acceptor = None }
  in
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t fd) ());
  t

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    let fd = Atomic.get t.listen_fd in
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (* Wake pumps blocked on a read or write so they observe the flag. *)
    locked t (fun () -> Hashtbl.iter (fun _ p -> sever p) t.pairs);
    (match t.acceptor with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ());
    let rec drain () =
      match
        locked t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.pumps [])
      with
      | [] -> ()
      | ths ->
        List.iter (fun th -> try Thread.join th with _ -> ()) ths;
        drain ()
    in
    drain ();
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.listen with Unix.Unix_error _ | Sys_error _ -> ()
  end
