(** Length-prefixed framing for the simulation-farm wire protocol.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes (JSON text at the layer above).  The framing layer enforces a
    hard payload cap and fails {e loudly} on anything malformed — a
    truncated stream, an oversized or negative declared length — instead
    of resynchronising: a framing error means the peer is confused and
    the connection must die.

    Two I/O surfaces share the same frame layout:
    - buffered channels ({!read}/{!write}) for trusted in-process use;
    - raw file descriptors ({!read_fd}/{!write_fd}) with {e per-frame
      deadlines} — the hostile-traffic surface the daemon serves.  A
      slowloris peer trickling one byte per second, or a dead reader
      that never drains its socket, trips the deadline instead of
      pinning a handler thread forever. *)

exception Frame_error of string

exception Io_timeout of string
(** A deadline-guarded write could not hand its bytes to the peer in
    time ({!write_fd}/{!write_raw_fd} only — reads report timeouts as
    {!read_result} variants). *)

val max_frame_bytes : int
(** Hard cap on a single payload (1 MiB) — the one constant both the
    encoder and the decoder enforce, on both the client and the server
    side of the wire.  Declared lengths above it (or below zero) raise
    {!Frame_error} — a four-byte header can otherwise ask the reader to
    allocate gigabytes — and oversize {e outgoing} payloads are rejected
    just as loudly before a single byte is written. *)

val encode : string -> string
(** The on-wire bytes of one frame.
    @raise Frame_error if the payload exceeds {!max_frame_bytes}. *)

val decode : string -> pos:int -> (string * int) option
(** [decode buf ~pos] parses one frame starting at [pos]: [Some (payload,
    next_pos)], or [None] if the buffer holds only an incomplete prefix
    (read more and retry).
    @raise Frame_error on an oversized or negative declared length. *)

val write : out_channel -> string -> unit
(** {!encode} + [output_string] + [flush].  @raise Frame_error on an
    oversize payload, before any bytes are written. *)

val read : in_channel -> string option
(** Read exactly one frame; [None] on a clean EOF {e at a frame
    boundary}.
    @raise Frame_error on EOF mid-frame (truncated) or a bad length. *)

(** {2 Deadline-guarded descriptor I/O}

    These work on blocking or non-blocking descriptors (EAGAIN is
    folded into the select loop) and poll in short slices, so an
    installed [poll] callback is observed within ~50ms even while a
    connection is silent. *)

type read_result =
  [ `Frame of string  (** one complete frame *)
  | `Eof  (** the peer closed cleanly at a frame boundary *)
  | `Idle_timeout  (** no frame {e started} within [idle_timeout] *)
  | `Timeout
    (** a frame started but did not {e complete} within [io_timeout] —
        the slowloris signature *)
  | `Abort  (** [poll] returned [true] while waiting between frames *) ]

val read_fd :
  ?idle_timeout:float ->
  ?io_timeout:float ->
  ?poll:(unit -> bool) ->
  Unix.file_descr ->
  read_result
(** Read exactly one frame from [fd].  [idle_timeout] bounds the wait
    for the frame's {e first} byte; from that byte on, the whole frame
    (header and payload) must arrive within [io_timeout] — per-byte
    trickling does not reset the clock.  [poll] is consulted only while
    no frame is in progress (between frames a connection can be
    reaped/drained; mid-frame it is read to completion or timed out).
    Omitted deadlines wait forever.
    @raise Frame_error on a torn frame, a reset mid-frame or a bad
    declared length. *)

val write_fd : ?io_timeout:float -> Unix.file_descr -> string -> unit
(** Write one frame.  The whole frame must be accepted by the kernel
    within [io_timeout] (omitted = wait forever) — a peer that stops
    draining its socket trips {!Io_timeout} instead of blocking the
    writer indefinitely.
    @raise Frame_error on an oversize payload (before any bytes are
    written).
    @raise Io_timeout when the deadline expires mid-frame. *)

val write_raw_fd : ?io_timeout:float -> Unix.file_descr -> string -> unit
(** {!write_fd} without the framing: write the given bytes verbatim
    under the same deadline discipline.  This is the chaos proxy's
    escape hatch for emitting deliberately damaged frames (truncated
    payloads, corrupt length prefixes); servers and clients should use
    {!write_fd}. *)
