(** Length-prefixed framing for the simulation-farm wire protocol.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes (JSON text at the layer above).  The framing layer enforces a
    hard payload cap and fails {e loudly} on anything malformed — a
    truncated stream, an oversized or negative declared length — instead
    of resynchronising: a framing error means the peer is confused and
    the connection must die. *)

exception Frame_error of string

val max_payload : int
(** Hard cap on a single payload (1 MiB).  Declared lengths above it (or
    below zero) raise {!Frame_error} — a four-byte header can otherwise
    ask the reader to allocate gigabytes. *)

val encode : string -> string
(** The on-wire bytes of one frame.
    @raise Frame_error if the payload exceeds {!max_payload}. *)

val decode : string -> pos:int -> (string * int) option
(** [decode buf ~pos] parses one frame starting at [pos]: [Some (payload,
    next_pos)], or [None] if the buffer holds only an incomplete prefix
    (read more and retry).
    @raise Frame_error on an oversized or negative declared length. *)

val write : out_channel -> string -> unit
(** {!encode} + [output_string] + [flush]. *)

val read : in_channel -> string option
(** Read exactly one frame; [None] on a clean EOF {e at a frame
    boundary}.
    @raise Frame_error on EOF mid-frame (truncated) or a bad length. *)
