(** Client side of the simulation farm: connect to a [crisp_simd]
    daemon, submit grid requests, and reassemble the streamed cell
    frames into exactly the rows {!Experiments} would have produced
    locally — same {!Grid} spec, same floats (round-trip-precise on the
    wire), same [Float.nan] marker for degraded cells — so
    [Grid.render] prints a byte-identical figure.

    Failures split into two worlds:
    - {!Disconnected} / {!Overloaded} are {e transport} troubles —
      refused or timed-out connects, mid-stream disconnects, torn or
      corrupt frames, daemon sheds and drains.  All retryable: the
      daemon memoizes and journals cells by canonical key, so
      re-sending the same request after a reconnect streams
      already-finished cells from the memo and only computes what the
      lost connection interrupted.  {!run_grid_retrying} automates
      exactly that with {!Resil.Backoff}.
    - {!Farm_error} is a {e protocol} disagreement — undecodable or
      out-of-range frames, a daemon rejection, a wrong request id.
      Retrying cannot help; something is miswired. *)

type t

exception Farm_error of string
(** A protocol-level failure retrying cannot fix: an undecodable or
    unexpected response, a cell outside the grid, a summary for the
    wrong request, a structured admission rejection.  Never used for
    degraded cells — those are data. *)

exception Disconnected of string
(** The transport failed: connect refused or timed out, the daemon
    vanished mid-conversation, a frame was torn or corrupt, or the
    daemon announced it is draining.  Retryable by reconnecting. *)

exception Overloaded of int
(** The daemon shed this connection or request; the payload is its
    [retry_after_ms] backoff hint (0 = just reconnect).  Retryable. *)

val connect :
  ?connect_timeout:float -> ?io_timeout:float -> socket:string -> unit -> t
(** Open a connection.  [connect_timeout] (default 10s) bounds the
    non-blocking connect; [io_timeout] is remembered and applied to
    every frame sent or received on this connection — it bounds a
    frame's {e transfer}, never how long the daemon takes to produce
    the next one.
    @raise Disconnected when the daemon is not reachable in time. *)

val close : t -> unit

val ping : t -> unit
val stats : t -> Farm_protocol.farm_stats

val shutdown_daemon : t -> unit
(** Ask the daemon to exit cleanly (it finishes in-flight grids). *)

type grid_result = {
  rows : (string * float list) list;
      (** per-workload values in spec order; degraded cells are
          [Float.nan], exactly as the local runner reports them *)
  degraded : (string * string) list;  (** (["name/label"], reason) *)
  summary : Farm_protocol.summary;
}

val run_grid :
  t -> ?id:string -> ?sample:Sample_config.t -> spec:Grid.spec ->
  eval_instrs:int -> train_instrs:int -> unit -> grid_result
(** Submit the grid and block until its summary frame arrives.  With
    [sample] set, the daemon runs Gain cells as sampled (interval-CPI)
    simulations; sampled cells live under their own memo and journal
    keys, so mixed sampled/full traffic never collides.
    @raise Farm_error if a frame is out of range, any cell never
    arrives, the summary echoes a different request id, or the daemon
    rejects the request at admission (budget sanity, grid-spec shape,
    or the crisp-check lint) — the rejection's reason and per-finding
    diagnostics are folded into the exception message.
    @raise Disconnected if the stream dies mid-conversation.
    @raise Overloaded if the daemon sheds the request. *)

(** Retry policy for {!run_grid_retrying}. *)
type retry = {
  attempts : int;  (** total attempts, including the first *)
  backoff : Resil.Backoff.params;  (** deterministic seeded schedule *)
  seed : int;
  connect_timeout : float;
  io_timeout : float option;  (** per-frame deadline on each attempt *)
}

val default_retry : retry
(** 5 attempts, {!Resil.Backoff.default}, seed 0, 10s connect timeout,
    no per-frame deadline. *)

val run_grid_retrying :
  socket:string -> ?retry:retry -> ?id:string -> ?sample:Sample_config.t ->
  spec:Grid.spec -> eval_instrs:int -> train_instrs:int -> unit ->
  grid_result * int
(** Open a fresh connection per attempt and re-submit the {e same}
    request (same id) until it completes, sleeping the deterministic
    {!Resil.Backoff} schedule — or the server's [retry_after_ms] hint
    when that is longer — between attempts and recording each retry in
    {!Resil.Log}.  Because the daemon dedups cells by canonical key,
    the retries cost only the cells the lost connection interrupted;
    converged output is byte-identical to an undisturbed run.  Returns
    the result and the number of attempts used.
    @raise Farm_error on a protocol failure (immediately — retrying
    cannot fix it) or once every attempt has failed on transport. *)
