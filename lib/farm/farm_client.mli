(** Client side of the simulation farm: connect to a [crisp_simd]
    daemon, submit grid requests, and reassemble the streamed cell
    frames into exactly the rows {!Experiments} would have produced
    locally — same {!Grid} spec, same floats (round-trip-precise on the
    wire), same [Float.nan] marker for degraded cells — so
    [Grid.render] prints a byte-identical figure. *)

type t

exception Farm_error of string
(** Anything that breaks the conversation: connection refused, framing
    errors, a daemon [Error_reply], an unexpected or incomplete
    response.  Never used for degraded cells — those are data. *)

val connect : socket:string -> t
(** @raise Farm_error when the daemon is not reachable. *)

val close : t -> unit

val ping : t -> unit
val stats : t -> Farm_protocol.farm_stats

val shutdown_daemon : t -> unit
(** Ask the daemon to exit cleanly (it finishes in-flight grids). *)

type grid_result = {
  rows : (string * float list) list;
      (** per-workload values in spec order; degraded cells are
          [Float.nan], exactly as the local runner reports them *)
  degraded : (string * string) list;  (** (["name/label"], reason) *)
  summary : Farm_protocol.summary;
}

val run_grid :
  t -> ?id:string -> spec:Grid.spec -> eval_instrs:int -> train_instrs:int ->
  unit -> grid_result
(** Submit the grid and block until its summary frame arrives.
    @raise Farm_error if the stream ends early, a frame is out of
    range, any cell never arrives, the summary echoes a different
    request id, or the daemon rejects the request at admission
    (budget sanity, grid-spec shape, or the crisp-check lint) — the
    rejection's reason and per-finding diagnostics are folded into
    the exception message. *)
