module J = Obs_json

type grid_req = {
  id : string;
  tag : string;
  metric : Grid.metric;
  eval_instrs : int;
  train_instrs : int;
  names : string list;
  columns : Grid.column list;
  sample : string;
      (* canonical Sample_config string, "" = full-fidelity; omitted from
         the wire when empty so full-run frames are byte-identical to the
         pre-sampling protocol *)
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Run_grid of grid_req

type source =
  | Computed
  | Memo_hit
  | Journal_hit

type cell = {
  cell_id : string;
  row : int;
  col : int;
  name : string;
  label : string;
  source : source;
  outcome : (float, string) result;
}

type farm_stats = {
  memo : Exec.Memo.stats;
  pool : Exec.Pool.stats;
  journal_cells : int;
  requests_served : int;
  sampled_cells : int;  (* lifetime count of cells served from sampled runs *)
}

type summary = {
  req_id : string;
  cells : int;
  computed : int;
  memo_hits : int;
  journal_hits : int;
  degraded : int;
  sample : string;  (* the request's sample config, "" = full-fidelity *)
  farm : farm_stats;
}

type response =
  | Pong
  | Stats_reply of farm_stats
  | Shutting_down
  | Cell of cell
  | Summary of summary
  | Invalid_request of {
      req_id : string;
      reason : string;
      diags : string list;
    }
  | Overloaded of { retry_after_ms : int }
  | Draining
  | Error_reply of string

let source_to_string = function
  | Computed -> "computed"
  | Memo_hit -> "memo"
  | Journal_hit -> "journal"

let source_of_string = function
  | "computed" -> Some Computed
  | "memo" -> Some Memo_hit
  | "journal" -> Some Journal_hit
  | _ -> None

(* ----- encoding helpers ----- *)

(* Obs_json prints non-finite numbers as invalid JSON, so they travel as
   hex-float strings ("%h" round-trips every float bit-for-bit through
   float_of_string, including nan and infinity). *)
let json_of_float v =
  if Float.is_finite v then J.Num v else J.Str (Printf.sprintf "%h" v)

let json_of_column (c : Grid.column) =
  let base = [ ("label", J.Str c.label); ("variant", J.Str c.variant) ] in
  let base =
    match c.threshold with
    | None -> base
    | Some t -> base @ [ ("threshold", json_of_float t) ]
  in
  let base =
    match c.window with
    | None -> base
    | Some (rs, rob) -> base @ [ ("window", J.Arr [ J.num_int rs; J.num_int rob ]) ]
  in
  J.Obj base

let json_of_memo_stats (s : Exec.Memo.stats) =
  J.Obj
    [ ("hits", J.num_int s.hits);
      ("misses", J.num_int s.misses);
      ("dedups", J.num_int s.dedups);
      ("evictions", J.num_int s.evictions);
      ("entries", J.num_int s.entries) ]

let json_of_pool_stats (s : Exec.Pool.stats) =
  J.Obj
    [ ("workers", J.num_int s.workers);
      ("queued", J.num_int s.queued);
      ("running", J.num_int s.running);
      ("stolen", J.num_int s.stolen) ]

let json_of_farm_stats s =
  J.Obj
    [ ("memo", json_of_memo_stats s.memo);
      ("pool", json_of_pool_stats s.pool);
      ("journal_cells", J.num_int s.journal_cells);
      ("requests_served", J.num_int s.requests_served);
      ("sampled_cells", J.num_int s.sampled_cells) ]

(* A sample string travels only when non-empty, keeping full-fidelity
   frames byte-identical to the pre-sampling protocol (and old-daemon
   replies decodable). *)
let sample_field sample rest = if sample = "" then rest else ("sample", J.Str sample) :: rest

let encode_request req =
  let obj =
    match req with
    | Ping -> [ ("req", J.Str "ping") ]
    | Stats -> [ ("req", J.Str "stats") ]
    | Shutdown -> [ ("req", J.Str "shutdown") ]
    | Run_grid g ->
      [ ("req", J.Str "grid");
        ("id", J.Str g.id);
        ("tag", J.Str g.tag);
        ("metric", J.Str (Grid.metric_to_string g.metric));
        ("eval_instrs", J.num_int g.eval_instrs);
        ("train_instrs", J.num_int g.train_instrs);
        ("names", J.Arr (List.map (fun n -> J.Str n) g.names));
        ("columns", J.Arr (List.map json_of_column g.columns)) ]
      @ sample_field g.sample []
  in
  J.to_string (J.Obj obj)

let encode_response resp =
  let obj =
    match resp with
    | Pong -> [ ("resp", J.Str "pong") ]
    | Stats_reply s -> [ ("resp", J.Str "stats"); ("stats", json_of_farm_stats s) ]
    | Shutting_down -> [ ("resp", J.Str "shutting-down") ]
    | Cell c ->
      let outcome =
        match c.outcome with
        | Ok v -> ("ok", json_of_float v)
        | Error reason -> ("degraded", J.Str reason)
      in
      [ ("resp", J.Str "cell");
        ("cell", J.Str c.cell_id);
        ("row", J.num_int c.row);
        ("col", J.num_int c.col);
        ("name", J.Str c.name);
        ("label", J.Str c.label);
        ("source", J.Str (source_to_string c.source));
        outcome ]
    | Summary s ->
      [ ("resp", J.Str "summary");
        ("id", J.Str s.req_id);
        ("cells", J.num_int s.cells);
        ("computed", J.num_int s.computed);
        ("memo_hits", J.num_int s.memo_hits);
        ("journal_hits", J.num_int s.journal_hits);
        ("degraded", J.num_int s.degraded) ]
      @ sample_field s.sample [ ("stats", json_of_farm_stats s.farm) ]
    | Invalid_request { req_id; reason; diags } ->
      [ ("resp", J.Str "invalid");
        ("id", J.Str req_id);
        ("reason", J.Str reason);
        ("diags", J.Arr (List.map (fun d -> J.Str d) diags)) ]
    | Overloaded { retry_after_ms } ->
      [ ("resp", J.Str "overloaded"); ("retry_after_ms", J.num_int retry_after_ms) ]
    | Draining -> [ ("resp", J.Str "draining") ]
    | Error_reply msg -> [ ("resp", J.Str "error"); ("message", J.Str msg) ]
  in
  J.to_string (J.Obj obj)

(* ----- decoding helpers ----- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> bad "missing field %S" name

let opt_field name j = J.member name j

let str ~what = function
  | J.Str s -> s
  | _ -> bad "field %S must be a string" what

let int ~what = function
  | J.Num v when Float.is_integer v && Float.abs v <= 1e15 -> int_of_float v
  | _ -> bad "field %S must be an integer" what

let flt ~what = function
  | J.Num v -> v
  | J.Str s -> (
    match float_of_string_opt s with
    | Some v -> v
    | None -> bad "field %S holds an unparsable float %S" what s)
  | _ -> bad "field %S must be a number" what

let arr ~what = function
  | J.Arr xs -> xs
  | _ -> bad "field %S must be an array" what

let column_of_json j =
  let label = str ~what:"label" (field "label" j) in
  let variant = str ~what:"variant" (field "variant" j) in
  let threshold = Option.map (flt ~what:"threshold") (opt_field "threshold" j) in
  let window =
    match opt_field "window" j with
    | None -> None
    | Some w -> (
      match arr ~what:"window" w with
      | [ rs; rob ] -> Some (int ~what:"window.rs" rs, int ~what:"window.rob" rob)
      | _ -> bad "field \"window\" must be a [rs, rob] pair")
  in
  { Grid.label; variant; threshold; window }

let memo_stats_of_json j : Exec.Memo.stats =
  { hits = int ~what:"memo.hits" (field "hits" j);
    misses = int ~what:"memo.misses" (field "misses" j);
    dedups = int ~what:"memo.dedups" (field "dedups" j);
    evictions = int ~what:"memo.evictions" (field "evictions" j);
    entries = int ~what:"memo.entries" (field "entries" j) }

let pool_stats_of_json j : Exec.Pool.stats =
  { workers = int ~what:"pool.workers" (field "workers" j);
    queued = int ~what:"pool.queued" (field "queued" j);
    running = int ~what:"pool.running" (field "running" j);
    stolen = int ~what:"pool.stolen" (field "stolen" j) }

let farm_stats_of_json j =
  { memo = memo_stats_of_json (field "memo" j);
    pool = pool_stats_of_json (field "pool" j);
    journal_cells = int ~what:"journal_cells" (field "journal_cells" j);
    requests_served = int ~what:"requests_served" (field "requests_served" j);
    sampled_cells =
      (match opt_field "sampled_cells" j with
      | Some v -> int ~what:"sampled_cells" v
      | None -> 0) }

let sample_of_json j =
  match opt_field "sample" j with
  | Some v -> str ~what:"sample" v
  | None -> ""

let parse ~what payload k =
  match J.parse payload with
  | j -> ( try Ok (k j) with Bad msg -> Error (what ^ ": " ^ msg))
  | exception J.Parse_error msg -> Error (what ^ ": malformed JSON: " ^ msg)

let decode_request payload =
  parse ~what:"request" payload (fun j ->
      match str ~what:"req" (field "req" j) with
      | "ping" -> Ping
      | "stats" -> Stats
      | "shutdown" -> Shutdown
      | "grid" ->
        let metric_name = str ~what:"metric" (field "metric" j) in
        let metric =
          match Grid.metric_of_string metric_name with
          | Ok m -> m
          | Error msg -> bad "%s" msg
        in
        Run_grid
          { id = str ~what:"id" (field "id" j);
            tag = str ~what:"tag" (field "tag" j);
            metric;
            eval_instrs = int ~what:"eval_instrs" (field "eval_instrs" j);
            train_instrs = int ~what:"train_instrs" (field "train_instrs" j);
            names =
              List.map (str ~what:"names[]") (arr ~what:"names" (field "names" j));
            columns =
              List.map column_of_json (arr ~what:"columns" (field "columns" j));
            sample = sample_of_json j }
      | other -> bad "unknown request kind %S" other)

let decode_response payload =
  parse ~what:"response" payload (fun j ->
      match str ~what:"resp" (field "resp" j) with
      | "pong" -> Pong
      | "stats" -> Stats_reply (farm_stats_of_json (field "stats" j))
      | "shutting-down" -> Shutting_down
      | "cell" ->
        let source_name = str ~what:"source" (field "source" j) in
        let source =
          match source_of_string source_name with
          | Some s -> s
          | None -> bad "unknown cell source %S" source_name
        in
        let outcome =
          match (opt_field "ok" j, opt_field "degraded" j) with
          | Some v, None -> Ok (flt ~what:"ok" v)
          | None, Some r -> Error (str ~what:"degraded" r)
          | _ -> bad "cell frame must carry exactly one of \"ok\"/\"degraded\""
        in
        Cell
          { cell_id = str ~what:"cell" (field "cell" j);
            row = int ~what:"row" (field "row" j);
            col = int ~what:"col" (field "col" j);
            name = str ~what:"name" (field "name" j);
            label = str ~what:"label" (field "label" j);
            source;
            outcome }
      | "summary" ->
        Summary
          { req_id = str ~what:"id" (field "id" j);
            cells = int ~what:"cells" (field "cells" j);
            computed = int ~what:"computed" (field "computed" j);
            memo_hits = int ~what:"memo_hits" (field "memo_hits" j);
            journal_hits = int ~what:"journal_hits" (field "journal_hits" j);
            degraded = int ~what:"degraded" (field "degraded" j);
            sample = sample_of_json j;
            farm = farm_stats_of_json (field "stats" j) }
      | "invalid" ->
        Invalid_request
          { req_id = str ~what:"id" (field "id" j);
            reason = str ~what:"reason" (field "reason" j);
            diags =
              List.map (str ~what:"diags[]") (arr ~what:"diags" (field "diags" j)) }
      | "overloaded" ->
        let ms = int ~what:"retry_after_ms" (field "retry_after_ms" j) in
        if ms < 0 then bad "field \"retry_after_ms\" must be non-negative";
        Overloaded { retry_after_ms = ms }
      | "draining" -> Draining
      | "error" -> Error_reply (str ~what:"message" (field "message" j))
      | other -> bad "unknown response kind %S" other)
