(** A multi-consumer handle on one farm cell.

    {!Resil.Supervise.join} is single-consumer — it drives retries by
    mutating the handle — but the farm memoises cells across client
    connections, so several client threads can hold the same cell at
    once.  This wrapper elects exactly one awaiting thread to drive the
    supervised join; everyone else blocks on a condition variable and
    receives the identical settled result. *)

type t

val of_result : (float, string) result -> t
(** An already-settled cell (a journal hit). *)

val spawn :
  Exec.Pool.t ->
  Resil.Supervise.policy ->
  ident:string ->
  on_success:(float -> unit) ->
  on_failure:(string -> unit) ->
  (unit -> float) ->
  t
(** Submit the cell's thunk under supervision.  When the join settles,
    the {e driving} thread runs [on_success v] (checkpoint the value)
    or [on_failure reason] (evict/log) exactly once, before any waiter
    observes the result. *)

val await : t -> (float, string) result
(** Block until the cell settles; safe from any number of threads, all
    of which see the same result.  [Error] carries the
    {!Resil.Supervise.error_to_string} rendering of the failure. *)
