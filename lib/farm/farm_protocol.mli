(** Wire protocol of the simulation farm.

    One frame ({!Farm_frame}) carries one JSON-encoded message.  A client
    connection is synchronous: it sends one {!request} and reads
    responses until the terminating frame for that request ([Pong],
    [Stats_reply], [Shutting_down], [Summary], [Invalid_request],
    [Overloaded], [Draining] or [Error_reply]); a
    [Run_grid] request streams one [Cell] frame per grid cell in
    row-major order — flushed as rows settle, while later cells are
    still simulating — before its [Summary].

    The payload grammar is the {!Obs_json} subset.  Floats ride as JSON
    numbers printed with round-trip precision; non-finite values (a
    degraded cell's [nan] never travels — it is an [Error _] outcome —
    but thresholds are caller data) are encoded as hex-float strings so
    the wire never carries invalid JSON.

    Decoders are total: any malformed, truncated-at-the-JSON-level or
    semantically invalid payload yields [Error msg], never a partially
    populated message. *)

type grid_req = {
  id : string;  (** client-chosen request id, echoed in the summary *)
  tag : string;  (** grid name, e.g. ["fig7"]; need not be in {!Grid.catalog} *)
  metric : Grid.metric;
  eval_instrs : int;
  train_instrs : int;
  names : string list;  (** row order of the reply *)
  columns : Grid.column list;  (** column order of the reply *)
  sample : string;
      (** canonical {!Sample_config.to_string} form to run the grid's
          Gain cells sampled, or [""] for full fidelity.  Validated by
          the admission gate; omitted from the wire when empty, so
          full-run requests are byte-identical to the pre-sampling
          protocol. *)
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Run_grid of grid_req

(** How the daemon obtained a cell value — the exactly-once accounting
    clients assert on. *)
type source =
  | Computed  (** simulated by this request *)
  | Memo_hit  (** deduplicated against a live or completed in-process cell *)
  | Journal_hit  (** restored from the on-disk cell journal *)

type cell = {
  cell_id : string;  (** canonical cell key (grid-tag independent) *)
  row : int;  (** index into {!grid_req.names} *)
  col : int;  (** index into {!grid_req.columns} *)
  name : string;
  label : string;
  source : source;
  outcome : (float, string) result;  (** value, or degradation reason *)
}

type farm_stats = {
  memo : Exec.Memo.stats;  (** the farm's cell memo, not the runner's *)
  pool : Exec.Pool.stats;
  journal_cells : int;  (** validated entries in the cell journal *)
  requests_served : int;  (** grid requests completed since daemon start *)
  sampled_cells : int;
      (** cells served from sampled (interval-CPI) runs since daemon
          start; decodes as [0] from pre-sampling daemons *)
}

type summary = {
  req_id : string;  (** echo of {!grid_req.id} *)
  cells : int;
  computed : int;
  memo_hits : int;
  journal_hits : int;
  degraded : int;
  sample : string;  (** echo of {!grid_req.sample}; [""] = full fidelity *)
  farm : farm_stats;
}

type response =
  | Pong
  | Stats_reply of farm_stats
  | Shutting_down
  | Cell of cell
  | Summary of summary
  | Invalid_request of {
      req_id : string;  (** echo of {!grid_req.id} *)
      reason : string;  (** one-line category, e.g. lint failure *)
      diags : string list;  (** rendered per-finding detail, possibly empty *)
    }
      (** Structured rejection of a {!Run_grid} request that failed the
          daemon's admission checks (budget sanity, {!Grid.validate},
          per-workload crisp-check lint) {e before} any cell was
          scheduled.  Terminates the request like [Summary] does. *)
  | Overloaded of { retry_after_ms : int }
      (** The daemon shed this connection or request: the connection cap
          is full, the pool's queue is too deep, or this connection
          exhausted its request budget.  A {e connection-terminating}
          frame — the server closes the socket right after sending it.
          [retry_after_ms] is the server's backoff hint; [0] means
          "reconnect immediately" (budget recycling, not overload). *)
  | Draining
      (** The daemon is draining (SIGTERM / client-requested shutdown):
          it will finish streaming in-flight grids but accepts no new
          requests.  Connection-terminating, like [Overloaded]. *)
  | Error_reply of string

val source_to_string : source -> string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
