(** A deterministic wire-level chaos proxy for the simulation farm.

    The proxy sits between a {!Farm_client} and a [crisp_simd] daemon
    on a second Unix-domain socket, parses the framed stream in both
    directions, and injects faults at exact frame boundaries according
    to a {!plan} — the wire counterpart of {!Resil.Fault_plan}'s
    compute-path injection.  Because triggers count {e global,
    monotonic} per-direction frame numbers (a client that reconnects
    does not reset the count), a seeded plan fires the same faults at
    the same frames on every run, which is what lets the farm chaos
    self-check assert byte-identical convergence. *)

(** [Up] is client→server traffic; [Down] (the default in specs and
    random plans) is server→client. *)
type direction = Up | Down

type action =
  | Delay of float
      (** hold the frame for that many seconds, then forward it intact
          — a transparent slowdown *)
  | Stall of float
      (** hold the frame for that many seconds, then sever the
          connection — a wedged peer that eventually dies *)
  | Truncate
      (** forward a strict prefix of the encoded frame, then sever —
          the reader must raise [Frame_error], never hang *)
  | Corrupt_len
      (** forward the frame with its length prefix's top byte flipped
          (declared length blows the {!Farm_frame.max_frame_bytes}
          cap), then sever *)
  | Drop  (** sever the connection at this frame boundary *)

type trigger = {
  direction : direction;
  count : Resil.Fault_plan.count;
      (** which global frame number(s) on that direction fire it *)
  action : action;
}

type plan = trigger list

val parse_spec : string -> (trigger, string) result
(** Parse a CLI wire-fault spec: [[up:|down:]ACTION[#N|+N]] where
    ACTION is [delay[=SECS]], [stall[=SECS]], [truncate],
    [corrupt-len] or [drop]; [#N] fires on exactly the Nth frame of
    that direction and [+N] from the Nth frame onward.  Defaults:
    direction [down], count [#1].  Examples: ["down:drop#3"],
    ["up:corrupt-len"], ["stall=0.5#2"]. *)

val random : seed:int -> plan
(** A deterministic pseudo-random plan: one or two downstream triggers,
    every one [Nth]-counted so the fault supply is finite and a
    retrying client always converges. *)

val trigger_to_string : trigger -> string
val direction_to_string : direction -> string
val action_to_string : action -> string

type t

val start : listen:string -> upstream:string -> plan:plan -> t
(** Bind [listen] (unlinking a stale socket file) and start proxying
    every connection to [upstream].  Each accepted connection gets a
    fresh upstream connection and two pump threads; if [upstream] is
    not reachable the client is closed immediately — indistinguishable
    from a crashed daemon, which is the point. *)

val stop : t -> unit
(** Stop accepting, sever every live connection, join all pump
    threads, close and unlink the listening socket.  Idempotent. *)

val fired : t -> (direction * int * action) list
(** Every fault fired so far, in firing order, with the global frame
    number that triggered it. *)

val frames : t -> direction -> int
(** Global frames forwarded-or-faulted on that direction so far. *)
