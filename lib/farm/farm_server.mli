(** The simulation-farm daemon core: accepts clients on a Unix-domain
    socket, decomposes their grid requests into canonical cells, dedups
    identical cells across {e all} connected clients through one
    {!Exec.Memo}, shards the work over an {!Exec.Pool}, runs every cell
    under {!Resil.Supervise}, and checkpoints completed cells in a
    {!Resil.Journal} so a SIGKILL'd daemon resumes warm.

    Cell identity is the canonical key built from (workload, metric,
    variant, threshold, window, instruction budgets) — deliberately {e
    not} the grid tag, so fig7's CRISP column and fig8's combined
    column, or the same grid requested by two clients, are the same
    cell and simulate once.

    Each client connection is handled on its own system thread; the
    worker domains of the shared pool do the actual simulation.  A
    degraded cell (timeout, crash, quarantine) is reported to the
    requesting clients, evicted from the memo so a later request
    retries it, and never journalled.

    {2 Hostile-traffic lifecycle}

    The network edge assumes nothing about its clients.  Every
    connection lives under {!limits}:
    - reads and writes carry per-frame deadlines ({!Farm_frame.read_fd}
      / {!Farm_frame.write_fd}), so a slowloris writer trickling one
      byte per second or a dead reader that never drains its socket is
      evicted within [io_timeout] instead of pinning a handler thread;
    - a connection silent for [idle_timeout] is reaped;
    - over-cap connections ([max_connections]), over-deep pool queues
      ([max_queued]) and exhausted per-connection request budgets
      ([max_requests_per_conn]) all shed with a structured
      {!Farm_protocol.response.Overloaded} terminating frame;
    - {!stop} (SIGTERM) drains gracefully: the accept loop closes,
      in-flight grids finish streaming, idle connections get a
      {!Farm_protocol.response.Draining} frame within ~50ms, the server
      journal records a ["clean_shutdown"] marker, and {!run} returns
      so the process can exit 0. *)

(** Overload and lifecycle policy for the daemon's network edge. *)
type limits = {
  max_connections : int;
      (** concurrent handler threads; excess connections are shed with
          [Overloaded] at accept time *)
  max_requests_per_conn : int;
      (** requests served before a connection is recycled with
          [Overloaded {retry_after_ms = 0}] *)
  max_queued : int option;
      (** shed new grid requests while the pool queue is deeper than
          this; [None] admits regardless of queue depth *)
  io_timeout : float option;
      (** per-frame read/write deadline, seconds; the slowloris and
          dead-reader eviction knob.  [None] waits forever *)
  idle_timeout : float option;
      (** reap a connection with no request in flight for this long *)
  sndbuf : int option;
      (** [SO_SNDBUF] for accepted sockets — bounds per-connection
          kernel memory and makes dead-reader eviction prompt *)
  retry_after_ms : int;
      (** backoff hint carried by [Overloaded] shed frames *)
}

val default_limits : limits
(** 64 connections, 10k requests/connection, unbounded queue, 30s I/O
    deadline, 600s idle reap, kernel-default [SO_SNDBUF], 250ms retry
    hint. *)

type config = {
  socket : string;  (** Unix-domain socket path (note the ~107-byte limit) *)
  pool : Exec.Pool.t;
  policy : Resil.Supervise.policy;
  journal_dir : string option;
      (** holds the ["cells"] checkpoint journal and the ["server"]
          state journal; [None] disables persistence *)
  verbose : bool;  (** per-event logging on stderr *)
  limits : limits;
}

type t

val create : config -> t
(** Build the farm state: open (and validate) the journals, restore the
    served-request counter (an unparsable counter payload is quarantined
    with a stderr warning, never silently zeroed).  Does not touch the
    socket yet. *)

val stats : t -> Farm_protocol.farm_stats

val run : t -> unit
(** Bind the socket (unlinking a stale file), ignore [SIGPIPE], and
    accept clients until {!stop}; then join every client thread, remove
    the socket and journal the clean shutdown.  Blocks the calling
    thread for the daemon's lifetime. *)

val stop : t -> unit
(** Request a graceful drain: flips the stop flag and shuts down the
    listening socket so the accept loop unblocks.  Safe to call from a
    signal handler or any thread; idempotent; free of the publish race
    with {!run} (the flag and the listening fd are published in
    opposite orders, so one side always observes the other).  In-flight
    grid requests finish streaming, idle connections receive a
    [Draining] frame, then {!run} returns. *)
