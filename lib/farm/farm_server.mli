(** The simulation-farm daemon core: accepts clients on a Unix-domain
    socket, decomposes their grid requests into canonical cells, dedups
    identical cells across {e all} connected clients through one
    {!Exec.Memo}, shards the work over an {!Exec.Pool}, runs every cell
    under {!Resil.Supervise}, and checkpoints completed cells in a
    {!Resil.Journal} so a SIGKILL'd daemon resumes warm.

    Cell identity is the canonical key built from (workload, metric,
    variant, threshold, window, instruction budgets) — deliberately {e
    not} the grid tag, so fig7's CRISP column and fig8's combined
    column, or the same grid requested by two clients, are the same
    cell and simulate once.

    Each client connection is handled on its own system thread; the
    worker domains of the shared pool do the actual simulation.  A
    degraded cell (timeout, crash, quarantine) is reported to the
    requesting clients, evicted from the memo so a later request
    retries it, and never journalled. *)

type config = {
  socket : string;  (** Unix-domain socket path (note the ~107-byte limit) *)
  pool : Exec.Pool.t;
  policy : Resil.Supervise.policy;
  journal_dir : string option;
      (** holds the ["cells"] checkpoint journal and the ["server"]
          state journal; [None] disables persistence *)
  verbose : bool;  (** per-event logging on stderr *)
}

type t

val create : config -> t
(** Build the farm state: open (and validate) the journals, restore the
    served-request counter.  Does not touch the socket yet. *)

val stats : t -> Farm_protocol.farm_stats

val run : t -> unit
(** Bind the socket (unlinking a stale file), ignore [SIGPIPE], and
    accept clients until {!stop}; then join every client thread and
    remove the socket.  Blocks the calling thread for the daemon's
    lifetime. *)

val stop : t -> unit
(** Request shutdown: flips the stop flag and closes the listening
    socket so the accept loop unblocks.  Safe to call from a signal
    handler or any thread; idempotent.  In-flight grid requests finish
    streaming before {!run} returns. *)
