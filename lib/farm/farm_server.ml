module P = Farm_protocol

type limits = {
  max_connections : int;
  max_requests_per_conn : int;
  max_queued : int option;
  io_timeout : float option;
  idle_timeout : float option;
  sndbuf : int option;
  retry_after_ms : int;
}

let default_limits =
  { max_connections = 64;
    max_requests_per_conn = 10_000;
    max_queued = None;
    io_timeout = Some 30.;
    idle_timeout = Some 600.;
    sndbuf = None;
    retry_after_ms = 250 }

type config = {
  socket : string;
  pool : Exec.Pool.t;
  policy : Resil.Supervise.policy;
  journal_dir : string option;
  verbose : bool;
  limits : limits;
}

type t = {
  cfg : config;
  cells : (string, Farm_cell.t) Exec.Memo.t;
  cells_journal : Resil.Journal.t option;
  server_journal : Resil.Journal.t option;
  (* Journal's file appends are serialised process-wide, but its
     in-memory table is not; client threads share these journals. *)
  journal_mutex : Mutex.t;
  (* Admission-lint verdicts per workload name.  Catalog programs are
     immutable for the life of the daemon, so a verdict never expires;
     the mutex covers concurrent client threads. *)
  lint_cache : (string, string list) Hashtbl.t;
  lint_mutex : Mutex.t;
  requests_served : int Atomic.t;
  sampled_cells : int Atomic.t;
  conns : int Atomic.t;
  stop_flag : bool Atomic.t;
  (* Atomic, not mutable: {!stop} reads it from arbitrary threads (and
     signal handlers) while {!run} publishes it.  stop flips [stop_flag]
     first and reads the fd second; run stores the fd first and re-checks
     the flag second — under either interleaving the listening socket is
     shut down and never leaked. *)
  listen_fd : Unix.file_descr option Atomic.t;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "crisp_simd: %s\n%!" s)
    fmt

(* The cell-journal signature pins only the payload format: cell keys
   already carry the instruction budgets, so one journal serves requests
   of any size. *)
let cells_signature = "crisp-farm cells v1 payload=hexfloat"
let server_signature = "crisp-farm server v1"

let create cfg =
  let cells_journal, server_journal =
    match cfg.journal_dir with
    | None -> (None, None)
    | Some dir ->
      ( Some (Resil.Journal.in_dir ~dir ~name:"cells" ~signature:cells_signature),
        Some (Resil.Journal.in_dir ~dir ~name:"server" ~signature:server_signature)
      )
  in
  let served =
    match server_journal with
    | None -> 0
    | Some j -> (
      match Resil.Journal.find j "requests_served" with
      | Some payload -> (
        match int_of_string_opt payload with
        | Some n -> n
        | None ->
          (* A validated journal line whose payload is not an integer
             means a foreign or corrupt writer.  Quarantine loudly and
             start the counter from zero rather than trust it. *)
          Printf.eprintf
            "crisp_simd: warning: server journal requests_served payload %S \
             is not an integer; quarantining the entry\n\
             %!"
            payload;
          Resil.Log.record
            (Resil.Log.Quarantined
               { ident = "server/requests_served";
                 reason =
                   Printf.sprintf "journalled payload %S is not an integer"
                     payload });
          0)
      | None -> 0)
  in
  { cfg;
    cells = Exec.Memo.create ~size_hint:256 ();
    cells_journal;
    server_journal;
    journal_mutex = Mutex.create ();
    lint_cache = Hashtbl.create 32;
    lint_mutex = Mutex.create ();
    requests_served = Atomic.make served;
    sampled_cells = Atomic.make 0;
    conns = Atomic.make 0;
    stop_flag = Atomic.make false;
    listen_fd = Atomic.make None }

let with_journals t f =
  Mutex.lock t.journal_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.journal_mutex) f

let stats t =
  { P.memo = Exec.Memo.stats t.cells;
    pool = Exec.Pool.stats t.cfg.pool;
    journal_cells =
      (match t.cells_journal with
      | Some j -> with_journals t (fun () -> Resil.Journal.size j)
      | None -> 0);
    requests_served = Atomic.get t.requests_served;
    sampled_cells = Atomic.get t.sampled_cells }

(* ----- cells ----- *)

(* "%h" round-trips every float bit-for-bit through float_of_string. *)
let payload_of_value v = Printf.sprintf "%h" v
let value_of_payload s = float_of_string_opt s

let cell_key ?sample ~eval_instrs ~train_instrs ~metric ~name (c : Grid.column) =
  Printf.sprintf "cell/%s/%s/%s/%s/%s/e%d/t%d%s" name
    (Grid.metric_to_string metric)
    c.variant
    (match c.threshold with
    | None -> "tdef"
    | Some th -> Printf.sprintf "t%h" th)
    (match c.window with
    | None -> "wdef"
    | Some (rs, rob) -> Printf.sprintf "w%dx%d" rs rob)
    eval_instrs train_instrs
    (* Full-run keys stay byte-identical to the pre-sampling daemon, so
       existing cell journals keep validating; sampled keys carry the
       canonical config so sampled and full cells can never share a
       memo entry or journal line. *)
    (match sample with
    | None -> ""
    | Some s -> "/sampled/" ^ Sample_config.to_string s)

let journal_restore t key =
  match t.cells_journal with
  | None -> None
  | Some j -> (
    match with_journals t (fun () -> Resil.Journal.find j key) with
    | None -> None
    | Some payload -> (
      match value_of_payload payload with
      | Some v -> Some v
      | None ->
        (* Validated line, unparsable payload: a foreign writer.  Drop
           it and recompute rather than trust it. *)
        Resil.Log.record
          (Resil.Log.Quarantined
             { ident = key; reason = "journalled cell payload is not a float" });
        None))

let journal_checkpoint t key v =
  match t.cells_journal with
  | None -> ()
  | Some j -> (
    try with_journals t (fun () ->
        Resil.Journal.record j ~key ~payload:(payload_of_value v))
    with exn ->
      (* An injected or real write failure loses the checkpoint, never
         the result. *)
      Resil.Log.record
        (Resil.Log.Quarantined
           { ident = key;
             reason = "cell checkpoint failed: " ^ Printexc.to_string exn }))

(* Acquire one cell: journal hit, live/completed memo entry, or a fresh
   supervised spawn.  [find_or_run]'s thunk runs at most once per key at
   a time, so [fresh] tells us whether *we* created the handle. *)
let acquire t ?sample ~metric ~eval_instrs ~train_instrs ~name column =
  let key = cell_key ?sample ~eval_instrs ~train_instrs ~metric ~name column in
  let fresh = ref None in
  let handle =
    Exec.Memo.find_or_run t.cells key (fun () ->
        match journal_restore t key with
        | Some v ->
          fresh := Some P.Journal_hit;
          Resil.Log.record (Resil.Log.Restored { ident = key });
          log t "journal hit %s" key;
          Farm_cell.of_result (Ok v)
        | None ->
          fresh := Some P.Computed;
          log t "spawn %s" key;
          Farm_cell.spawn t.cfg.pool t.cfg.policy ~ident:key
            ~on_success:(fun v -> journal_checkpoint t key v)
            ~on_failure:(fun reason ->
              (* Evict so a later request retries; never journalled. *)
              Exec.Memo.remove t.cells key;
              Resil.Log.record (Resil.Log.Degraded { ident = key; error = reason });
              log t "degraded %s: %s" key reason)
            (fun () ->
              Grid.cell_value ?sample ~eval_instrs ~train_instrs ~name ~metric
                column))
  in
  let source = match !fresh with Some s -> s | None -> P.Memo_hit in
  if sample <> None then Atomic.incr t.sampled_cells;
  (key, source, handle)

(* ----- grid requests ----- *)

let spec_of_req (g : P.grid_req) : Grid.spec =
  { tag = g.tag;
    title = g.tag;
    with_mean = false;
    metric = g.metric;
    columns = g.columns;
    names = g.names }

(* Spawn the long-pole applications first so the slowest rows overlap
   with everything else (same ordering as Experiments.submit_cells). *)
let long_poles = [ "mcf"; "xhpcg"; "omnetpp"; "moses" ]

let row_order names =
  let indexed = List.mapi (fun i n -> (i, n)) names in
  let heavy, light =
    List.partition (fun (_, n) -> List.mem n long_poles) indexed
  in
  List.map fst (heavy @ light)

(* ----- request admission ----- *)

(* Enough for any committed figure at golden or paper sizes, small
   enough that a corrupt budget cannot wedge the pool for hours. *)
let max_cell_instrs = 10_000_000

(* Rendered unexpected-lint findings for one catalog workload, cached
   for the daemon's lifetime (the catalog programs cannot change under
   a running daemon).  The lint itself runs outside the mutex would be
   nicer, but it is a few milliseconds once per workload ever. *)
let lint_findings t name =
  Mutex.lock t.lint_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lint_mutex)
    (fun () ->
      match Hashtbl.find_opt t.lint_cache name with
      | Some diags -> diags
      | None ->
        let diags =
          List.map
            (fun d -> Format.asprintf "%s: %a" name Lint.pp_diag d)
            (Check_runner.lint_workload name)
        in
        Hashtbl.replace t.lint_cache name diags;
        diags)

(* Validate a grid request before any cell is scheduled: budget sanity,
   grid-spec shape, then the crisp-check admission lint over every
   requested workload.  [Error (reason, diags)] becomes a structured
   [Invalid_request] frame. *)
let admit t (g : P.grid_req) =
  let bad_budget what v =
    Printf.sprintf "%s must be within [1, %d], got %d" what max_cell_instrs v
  in
  if g.eval_instrs < 1 || g.eval_instrs > max_cell_instrs then
    Error (bad_budget "eval_instrs" g.eval_instrs, [])
  else if g.train_instrs < 1 || g.train_instrs > max_cell_instrs then
    Error (bad_budget "train_instrs" g.train_instrs, [])
  else
    match
      if g.sample = "" then Ok None
      else Result.map Option.some (Sample_config.of_string g.sample)
    with
    | Error msg -> Error ("malformed sample config: " ^ msg, [])
    | Ok sample -> (
      match Grid.validate (spec_of_req g) with
      | Error msg -> Error ("malformed grid spec: " ^ msg, [])
      | Ok () -> (
        (* validate already pinned every name to the catalog *)
        let failing =
          List.filter_map
            (fun name ->
              match lint_findings t name with [] -> None | ds -> Some (name, ds))
            (List.sort_uniq compare g.names)
        in
        match failing with
        | [] -> Ok sample
        | _ ->
          Error
            ( Printf.sprintf "%d workload(s) fail the crisp-check lint"
                (List.length failing),
              List.concat_map snd failing )))

(* Pool-pressure admission: refuse new grids while the shared queue is
   deeper than the configured cap, so a flood of concurrent grids sheds
   load instead of growing the queue without bound. *)
let queue_overloaded t =
  match t.cfg.limits.max_queued with
  | None -> false
  | Some cap -> (Exec.Pool.stats t.cfg.pool).queued > cap

let serve_grid t ~send (g : P.grid_req) =
  match admit t g with
  | Error (reason, diags) ->
    log t "rejecting grid %s (%s): %s" g.tag g.id reason;
    send (P.Invalid_request { req_id = g.id; reason; diags })
  | Ok sample ->
    if sample <> None then log t "grid %s (%s) runs sampled: %s" g.tag g.id g.sample;
    let names = Array.of_list g.names in
    let columns = Array.of_list g.columns in
    let nrows = Array.length names and ncols = Array.length columns in
    let acquired = Array.make_matrix nrows ncols None in
    List.iter
      (fun r ->
        Array.iteri
          (fun c column ->
            acquired.(r).(c) <-
              Some
                (acquire t ?sample ~metric:g.metric ~eval_instrs:g.eval_instrs
                   ~train_instrs:g.train_instrs ~name:names.(r) column))
          columns)
      (row_order g.names);
    let computed = ref 0 and memo_hits = ref 0 and journal_hits = ref 0 in
    let degraded = ref 0 in
    for r = 0 to nrows - 1 do
      for c = 0 to ncols - 1 do
        let key, source, handle = Option.get acquired.(r).(c) in
        (match source with
        | P.Computed -> incr computed
        | P.Memo_hit -> incr memo_hits
        | P.Journal_hit -> incr journal_hits);
        let outcome = Farm_cell.await handle in
        if Result.is_error outcome then incr degraded;
        send
          (P.Cell
             { cell_id = key;
               row = r;
               col = c;
               name = names.(r);
               label = columns.(c).Grid.label;
               source;
               outcome })
      done
    done;
    let served = Atomic.fetch_and_add t.requests_served 1 + 1 in
    (match t.server_journal with
    | None -> ()
    | Some j -> (
      try
        with_journals t (fun () ->
            Resil.Journal.record j ~key:"requests_served"
              ~payload:(string_of_int served);
            Resil.Journal.record j ~key:("last_request/" ^ g.tag) ~payload:g.id)
      with _ -> ()));
    log t "grid %s (%s) done: %d cells, %d computed, %d memo, %d journal, %d degraded"
      g.tag g.id (nrows * ncols) !computed !memo_hits !journal_hits !degraded;
    send
      (P.Summary
         { req_id = g.id;
           cells = nrows * ncols;
           computed = !computed;
           memo_hits = !memo_hits;
           journal_hits = !journal_hits;
           degraded = !degraded;
           sample = g.sample;
           farm = stats t })

(* ----- connections ----- *)

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    match Atomic.get t.listen_fd with
    | Some fd ->
      (* shutdown(2), not close(2): closing a listening socket does not
         wake a thread blocked in accept(2) on Linux, but shutting it
         down makes the accept fail immediately (EINVAL).  The fd itself
         is closed by {!run}'s cleanup once the loop exits. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()

(* One client connection, under the full lifecycle discipline:
   - every read carries the idle deadline (reap silent connections) and
     the io deadline (evict a slowloris trickling a frame byte by byte);
   - every write carries the io deadline (evict a dead reader whose
     socket buffer is full);
   - the drain flag is polled between frames, so an idle connection
     learns about a drain within ~50ms via a [Draining] frame;
   - a finite request budget recycles long-lived connections. *)
let handle_client t fd =
  let limits = t.cfg.limits in
  (match limits.sndbuf with
  | None -> ()
  | Some n -> (
    try Unix.setsockopt_int fd Unix.SO_SNDBUF n with Unix.Unix_error _ -> ()));
  Unix.set_nonblock fd;
  let send resp =
    Resil.Fault_plan.hit "farm.send";
    Farm_frame.write_fd ?io_timeout:limits.io_timeout fd (P.encode_response resp)
  in
  let draining () = Atomic.get t.stop_flag in
  let requests = ref 0 in
  let rec loop () =
    if !requests >= limits.max_requests_per_conn then begin
      (* Budget exhausted: recycle the connection.  retry_after 0 tells
         a well-behaved client to simply reconnect. *)
      log t "recycling connection after %d requests" !requests;
      send (P.Overloaded { retry_after_ms = 0 })
    end
    else
      match
        Farm_frame.read_fd ?idle_timeout:limits.idle_timeout
          ?io_timeout:limits.io_timeout ~poll:draining fd
      with
      | `Eof -> ()
      | `Abort ->
        (* The daemon started draining while this connection sat between
           frames; say so and hang up. *)
        send P.Draining
      | `Idle_timeout -> log t "reaping idle connection"
      | `Timeout ->
        (* A frame started but never completed — the slowloris
           signature.  Evict without a goodbye: the peer is hostile or
           wedged, and a reply would just block on it. *)
        log t "evicting slow client: frame did not complete within %gs"
          (Option.value limits.io_timeout ~default:0.)
      | `Frame payload -> begin
        incr requests;
        match P.decode_request payload with
        | Error msg ->
          (* A client that speaks garbage gets one loud error and the
             door: resynchronising a confused peer helps nobody. *)
          log t "rejecting request: %s" msg;
          send (P.Error_reply msg)
        | Ok P.Ping ->
          send P.Pong;
          loop ()
        | Ok P.Stats ->
          send (P.Stats_reply (stats t));
          loop ()
        | Ok P.Shutdown ->
          log t "shutdown requested by client";
          send P.Shutting_down;
          stop t
        | Ok (P.Run_grid g) ->
          if queue_overloaded t then begin
            log t "shedding grid %s (%s): pool queue over cap" g.tag g.id;
            send (P.Overloaded { retry_after_ms = limits.retry_after_ms })
          end
          else begin
            serve_grid t ~send g;
            (* An in-flight grid finishes streaming even under drain;
               only then does the connection learn the daemon is gone. *)
            if draining () then send P.Draining else loop ()
          end
      end
  in
  (try loop () with
  | Farm_frame.Frame_error msg ->
    log t "client framing error: %s" msg;
    (try send (P.Error_reply ("framing error: " ^ msg))
     with Farm_frame.Io_timeout _ | Farm_frame.Frame_error _ | Unix.Unix_error _
     -> ())
  | Farm_frame.Io_timeout msg -> log t "evicting dead reader: %s" msg
  | Resil.Fault_plan.Injected site -> log t "injected fault at %s" site
  | Sys_error _ | Unix.Unix_error _ -> (* peer vanished mid-write *) ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Over-cap connections get a structured [Overloaded] frame (best
   effort, under a short deadline so a hostile non-reader cannot stall
   the accept loop) and are closed without ever getting a handler
   thread. *)
let shed t client =
  log t "shedding connection: %d handler(s) at cap %d" (Atomic.get t.conns)
    t.cfg.limits.max_connections;
  (try
     Unix.set_nonblock client;
     Farm_frame.write_fd ~io_timeout:1.0 client
       (P.encode_response
          (P.Overloaded { retry_after_ms = t.cfg.limits.retry_after_ms }))
   with Farm_frame.Io_timeout _ | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let run t =
  (* A dying client must surface as EPIPE on our write, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  if Sys.file_exists t.cfg.socket then Unix.unlink t.cfg.socket;
  Unix.bind fd (Unix.ADDR_UNIX t.cfg.socket);
  Unix.listen fd 64;
  Atomic.set t.listen_fd (Some fd);
  (* {!stop} may have raced the publication above: it flips the flag
     before reading the fd, and we publish the fd before re-reading the
     flag, so at least one side observes the other. *)
  if Atomic.get t.stop_flag then
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  log t "listening on %s (%d workers, %d connections max)" t.cfg.socket
    (Exec.Pool.parallelism t.cfg.pool)
    t.cfg.limits.max_connections;
  (* Live handler threads, keyed by a private connection id.  Handlers
     remove themselves on exit (insertion holds the mutex, so a handler
     cannot race its own registration), keeping the table bounded by the
     connection cap instead of growing for the daemon's lifetime. *)
  let clients : (int, Thread.t) Hashtbl.t =
    Hashtbl.create t.cfg.limits.max_connections
  in
  let clients_mutex = Mutex.create () in
  let with_clients f =
    Mutex.lock clients_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock clients_mutex) f
  in
  let conn_counter = ref 0 in
  let spawn client =
    Atomic.incr t.conns;
    with_clients (fun () ->
        let id = !conn_counter in
        incr conn_counter;
        let th =
          Thread.create
            (fun () ->
              Fun.protect
                (fun () -> handle_client t client)
                ~finally:(fun () ->
                  Atomic.decr t.conns;
                  with_clients (fun () -> Hashtbl.remove clients id)))
            ()
        in
        Hashtbl.replace clients id th)
  in
  (* Join every live handler; a handler that removes itself mid-snapshot
     has already finished its work, so the loop converges. *)
  let rec drain_clients () =
    match
      with_clients (fun () ->
          Hashtbl.fold (fun _ th acc -> th :: acc) clients [])
    with
    | [] -> ()
    | ths ->
      List.iter (fun th -> try Thread.join th with _ -> ()) ths;
      drain_clients ()
  in
  let rec accept_loop () =
    if not (Atomic.get t.stop_flag) then
      match Unix.accept ~cloexec:true fd with
      | client, _ ->
        if Atomic.get t.stop_flag then
          (try Unix.close client with Unix.Unix_error _ -> ())
        else if Atomic.get t.conns >= t.cfg.limits.max_connections then
          shed t client
        else spawn client;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stop_flag ->
        (* {!stop} closed the socket under us to unblock this accept. *)
        ()
  in
  Fun.protect accept_loop ~finally:(fun () ->
      stop t;
      drain_clients ();
      Atomic.set t.listen_fd None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ());
      (* Mark the drain complete so a restarted daemon (and the chaos
         harness) can tell a graceful exit from a SIGKILL. *)
      (match t.server_journal with
      | None -> ()
      | Some j -> (
        try
          with_journals t (fun () ->
              Resil.Journal.record j ~key:"clean_shutdown"
                ~payload:(string_of_int (Atomic.get t.requests_served)))
        with _ -> ()));
      log t "stopped after %d requests" (Atomic.get t.requests_served))
