module P = Farm_protocol

type config = {
  socket : string;
  pool : Exec.Pool.t;
  policy : Resil.Supervise.policy;
  journal_dir : string option;
  verbose : bool;
}

type t = {
  cfg : config;
  cells : (string, Farm_cell.t) Exec.Memo.t;
  cells_journal : Resil.Journal.t option;
  server_journal : Resil.Journal.t option;
  (* Journal's file appends are serialised process-wide, but its
     in-memory table is not; client threads share these journals. *)
  journal_mutex : Mutex.t;
  (* Admission-lint verdicts per workload name.  Catalog programs are
     immutable for the life of the daemon, so a verdict never expires;
     the mutex covers concurrent client threads. *)
  lint_cache : (string, string list) Hashtbl.t;
  lint_mutex : Mutex.t;
  requests_served : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "crisp_simd: %s\n%!" s)
    fmt

(* The cell-journal signature pins only the payload format: cell keys
   already carry the instruction budgets, so one journal serves requests
   of any size. *)
let cells_signature = "crisp-farm cells v1 payload=hexfloat"
let server_signature = "crisp-farm server v1"

let create cfg =
  let cells_journal, server_journal =
    match cfg.journal_dir with
    | None -> (None, None)
    | Some dir ->
      ( Some (Resil.Journal.in_dir ~dir ~name:"cells" ~signature:cells_signature),
        Some (Resil.Journal.in_dir ~dir ~name:"server" ~signature:server_signature)
      )
  in
  let served =
    match server_journal with
    | None -> 0
    | Some j -> (
      match Resil.Journal.find j "requests_served" with
      | Some payload -> Option.value (int_of_string_opt payload) ~default:0
      | None -> 0)
  in
  { cfg;
    cells = Exec.Memo.create ~size_hint:256 ();
    cells_journal;
    server_journal;
    journal_mutex = Mutex.create ();
    lint_cache = Hashtbl.create 32;
    lint_mutex = Mutex.create ();
    requests_served = Atomic.make served;
    stop_flag = Atomic.make false;
    listen_fd = None }

let with_journals t f =
  Mutex.lock t.journal_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.journal_mutex) f

let stats t =
  { P.memo = Exec.Memo.stats t.cells;
    pool = Exec.Pool.stats t.cfg.pool;
    journal_cells =
      (match t.cells_journal with
      | Some j -> with_journals t (fun () -> Resil.Journal.size j)
      | None -> 0);
    requests_served = Atomic.get t.requests_served }

(* ----- cells ----- *)

(* "%h" round-trips every float bit-for-bit through float_of_string. *)
let payload_of_value v = Printf.sprintf "%h" v
let value_of_payload s = float_of_string_opt s

let cell_key ~eval_instrs ~train_instrs ~metric ~name (c : Grid.column) =
  Printf.sprintf "cell/%s/%s/%s/%s/%s/e%d/t%d" name
    (Grid.metric_to_string metric)
    c.variant
    (match c.threshold with
    | None -> "tdef"
    | Some th -> Printf.sprintf "t%h" th)
    (match c.window with
    | None -> "wdef"
    | Some (rs, rob) -> Printf.sprintf "w%dx%d" rs rob)
    eval_instrs train_instrs

let journal_restore t key =
  match t.cells_journal with
  | None -> None
  | Some j -> (
    match with_journals t (fun () -> Resil.Journal.find j key) with
    | None -> None
    | Some payload -> (
      match value_of_payload payload with
      | Some v -> Some v
      | None ->
        (* Validated line, unparsable payload: a foreign writer.  Drop
           it and recompute rather than trust it. *)
        Resil.Log.record
          (Resil.Log.Quarantined
             { ident = key; reason = "journalled cell payload is not a float" });
        None))

let journal_checkpoint t key v =
  match t.cells_journal with
  | None -> ()
  | Some j -> (
    try with_journals t (fun () ->
        Resil.Journal.record j ~key ~payload:(payload_of_value v))
    with exn ->
      (* An injected or real write failure loses the checkpoint, never
         the result. *)
      Resil.Log.record
        (Resil.Log.Quarantined
           { ident = key;
             reason = "cell checkpoint failed: " ^ Printexc.to_string exn }))

(* Acquire one cell: journal hit, live/completed memo entry, or a fresh
   supervised spawn.  [find_or_run]'s thunk runs at most once per key at
   a time, so [fresh] tells us whether *we* created the handle. *)
let acquire t ~metric ~eval_instrs ~train_instrs ~name column =
  let key = cell_key ~eval_instrs ~train_instrs ~metric ~name column in
  let fresh = ref None in
  let handle =
    Exec.Memo.find_or_run t.cells key (fun () ->
        match journal_restore t key with
        | Some v ->
          fresh := Some P.Journal_hit;
          Resil.Log.record (Resil.Log.Restored { ident = key });
          log t "journal hit %s" key;
          Farm_cell.of_result (Ok v)
        | None ->
          fresh := Some P.Computed;
          log t "spawn %s" key;
          Farm_cell.spawn t.cfg.pool t.cfg.policy ~ident:key
            ~on_success:(fun v -> journal_checkpoint t key v)
            ~on_failure:(fun reason ->
              (* Evict so a later request retries; never journalled. *)
              Exec.Memo.remove t.cells key;
              Resil.Log.record (Resil.Log.Degraded { ident = key; error = reason });
              log t "degraded %s: %s" key reason)
            (fun () ->
              Grid.cell_value ~eval_instrs ~train_instrs ~name ~metric column))
  in
  let source = match !fresh with Some s -> s | None -> P.Memo_hit in
  (key, source, handle)

(* ----- grid requests ----- *)

let spec_of_req (g : P.grid_req) : Grid.spec =
  { tag = g.tag;
    title = g.tag;
    with_mean = false;
    metric = g.metric;
    columns = g.columns;
    names = g.names }

(* Spawn the long-pole applications first so the slowest rows overlap
   with everything else (same ordering as Experiments.submit_cells). *)
let long_poles = [ "mcf"; "xhpcg"; "omnetpp"; "moses" ]

let row_order names =
  let indexed = List.mapi (fun i n -> (i, n)) names in
  let heavy, light =
    List.partition (fun (_, n) -> List.mem n long_poles) indexed
  in
  List.map fst (heavy @ light)

(* ----- request admission ----- *)

(* Enough for any committed figure at golden or paper sizes, small
   enough that a corrupt budget cannot wedge the pool for hours. *)
let max_cell_instrs = 10_000_000

(* Rendered unexpected-lint findings for one catalog workload, cached
   for the daemon's lifetime (the catalog programs cannot change under
   a running daemon).  The lint itself runs outside the mutex would be
   nicer, but it is a few milliseconds once per workload ever. *)
let lint_findings t name =
  Mutex.lock t.lint_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lint_mutex)
    (fun () ->
      match Hashtbl.find_opt t.lint_cache name with
      | Some diags -> diags
      | None ->
        let diags =
          List.map
            (fun d -> Format.asprintf "%s: %a" name Lint.pp_diag d)
            (Check_runner.lint_workload name)
        in
        Hashtbl.replace t.lint_cache name diags;
        diags)

(* Validate a grid request before any cell is scheduled: budget sanity,
   grid-spec shape, then the crisp-check admission lint over every
   requested workload.  [Error (reason, diags)] becomes a structured
   [Invalid_request] frame. *)
let admit t (g : P.grid_req) =
  let bad_budget what v =
    Printf.sprintf "%s must be within [1, %d], got %d" what max_cell_instrs v
  in
  if g.eval_instrs < 1 || g.eval_instrs > max_cell_instrs then
    Error (bad_budget "eval_instrs" g.eval_instrs, [])
  else if g.train_instrs < 1 || g.train_instrs > max_cell_instrs then
    Error (bad_budget "train_instrs" g.train_instrs, [])
  else
    match Grid.validate (spec_of_req g) with
    | Error msg -> Error ("malformed grid spec: " ^ msg, [])
    | Ok () -> (
      (* validate already pinned every name to the catalog *)
      let failing =
        List.filter_map
          (fun name ->
            match lint_findings t name with [] -> None | ds -> Some (name, ds))
          (List.sort_uniq compare g.names)
      in
      match failing with
      | [] -> Ok ()
      | _ ->
        Error
          ( Printf.sprintf "%d workload(s) fail the crisp-check lint"
              (List.length failing),
            List.concat_map snd failing ))

let serve_grid t ~send (g : P.grid_req) =
  match admit t g with
  | Error (reason, diags) ->
    log t "rejecting grid %s (%s): %s" g.tag g.id reason;
    send (P.Invalid_request { req_id = g.id; reason; diags })
  | Ok () ->
    let names = Array.of_list g.names in
    let columns = Array.of_list g.columns in
    let nrows = Array.length names and ncols = Array.length columns in
    let acquired = Array.make_matrix nrows ncols None in
    List.iter
      (fun r ->
        Array.iteri
          (fun c column ->
            acquired.(r).(c) <-
              Some
                (acquire t ~metric:g.metric ~eval_instrs:g.eval_instrs
                   ~train_instrs:g.train_instrs ~name:names.(r) column))
          columns)
      (row_order g.names);
    let computed = ref 0 and memo_hits = ref 0 and journal_hits = ref 0 in
    let degraded = ref 0 in
    for r = 0 to nrows - 1 do
      for c = 0 to ncols - 1 do
        let key, source, handle = Option.get acquired.(r).(c) in
        (match source with
        | P.Computed -> incr computed
        | P.Memo_hit -> incr memo_hits
        | P.Journal_hit -> incr journal_hits);
        let outcome = Farm_cell.await handle in
        if Result.is_error outcome then incr degraded;
        send
          (P.Cell
             { cell_id = key;
               row = r;
               col = c;
               name = names.(r);
               label = columns.(c).Grid.label;
               source;
               outcome })
      done
    done;
    let served = Atomic.fetch_and_add t.requests_served 1 + 1 in
    (match t.server_journal with
    | None -> ()
    | Some j -> (
      try
        with_journals t (fun () ->
            Resil.Journal.record j ~key:"requests_served"
              ~payload:(string_of_int served);
            Resil.Journal.record j ~key:("last_request/" ^ g.tag) ~payload:g.id)
      with _ -> ()));
    log t "grid %s (%s) done: %d cells, %d computed, %d memo, %d journal, %d degraded"
      g.tag g.id (nrows * ncols) !computed !memo_hits !journal_hits !degraded;
    send
      (P.Summary
         { req_id = g.id;
           cells = nrows * ncols;
           computed = !computed;
           memo_hits = !memo_hits;
           journal_hits = !journal_hits;
           degraded = !degraded;
           farm = stats t })

(* ----- connections ----- *)

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    match t.listen_fd with
    | Some fd ->
      (* shutdown(2), not close(2): closing a listening socket does not
         wake a thread blocked in accept(2) on Linux, but shutting it
         down makes the accept fail immediately (EINVAL).  The fd itself
         is closed by {!run}'s cleanup once the loop exits. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ()

let handle_client t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send resp = Farm_frame.write oc (P.encode_response resp) in
  let rec loop () =
    match Farm_frame.read ic with
    | None -> ()
    | Some payload -> (
      match P.decode_request payload with
      | Error msg ->
        (* A client that speaks garbage gets one loud error and the
           door: resynchronising a confused peer helps nobody. *)
        log t "rejecting request: %s" msg;
        send (P.Error_reply msg)
      | Ok P.Ping ->
        send P.Pong;
        loop ()
      | Ok P.Stats ->
        send (P.Stats_reply (stats t));
        loop ()
      | Ok P.Shutdown ->
        log t "shutdown requested by client";
        send P.Shutting_down;
        stop t
      | Ok (P.Run_grid g) ->
        serve_grid t ~send g;
        loop ())
  in
  (try loop () with
  | Farm_frame.Frame_error msg ->
    log t "client framing error: %s" msg;
    (try send (P.Error_reply ("framing error: " ^ msg)) with _ -> ())
  | Sys_error _ | Unix.Unix_error _ -> (* peer vanished mid-write *) ());
  close_out_noerr oc;
  close_in_noerr ic

let run t =
  (* A dying client must surface as EPIPE on our write, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  if Sys.file_exists t.cfg.socket then Unix.unlink t.cfg.socket;
  Unix.bind fd (Unix.ADDR_UNIX t.cfg.socket);
  Unix.listen fd 16;
  t.listen_fd <- Some fd;
  log t "listening on %s (%d workers)" t.cfg.socket
    (Exec.Pool.parallelism t.cfg.pool);
  let clients = ref [] in
  let rec accept_loop () =
    if not (Atomic.get t.stop_flag) then
      match Unix.accept ~cloexec:true fd with
      | client, _ ->
        clients := Thread.create (handle_client t) client :: !clients;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stop_flag ->
        (* {!stop} closed the socket under us to unblock this accept. *)
        ()
  in
  Fun.protect accept_loop ~finally:(fun () ->
      stop t;
      List.iter Thread.join !clients;
      t.listen_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ());
      log t "stopped after %d requests" (Atomic.get t.requests_served))
