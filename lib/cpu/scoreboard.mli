(** Debug-mode pipeline scoreboard: an independent oracle asserting
    per-cycle microarchitectural invariants of {!Cpu_core} and
    {!Scheduler}.

    The scoreboard is purely observational — it reads ROB/RS/age-matrix
    state and never mutates it or draws from any PRNG — so a run with the
    scoreboard enabled produces {e bit-identical} statistics to the same
    run with it disabled; it only differs by raising {!Violation} the
    moment an invariant breaks instead of silently corrupting results.

    Checked invariants:
    - ROB entries retire strictly in trace order;
    - no instruction is selected for issue before all of its source
      operands are ready ([deps_left = 0], BID bit set);
    - selection discipline per policy: the oldest-ready pick never bypasses
      an older ready instruction, and CRISP's PRIO pick never bypasses an
      older {e ready-and-critical} instruction (nor selects a non-critical
      instruction while a critical one is ready);
    - RS occupancy conservation: the scheduler's occupied-slot count always
      equals the number of ROB entries still resident in the RS;
    - age-matrix soundness: irreflexive, antisymmetric, total over occupied
      slots ({!Age_matrix.self_check}).

    Enable via {!Cpu_config.with_scoreboard}. *)

exception Violation of string
(** Raised on the first broken invariant, with cycle and slot context. *)

type t

val create : Cpu_config.t -> t

val check_select :
  t -> Scheduler.t -> cycle:int -> slot:int -> ready:bool -> deps_left:int -> unit
(** Validate one scheduler selection, immediately after {!Scheduler.select}
    returned [slot] (so [slot]'s selected bit is already set). *)

val check_retire : t -> cycle:int -> dyn:int -> expected:int -> unit
(** The ROB head retiring holds dynamic index [dyn]; in-order retirement
    demands [dyn = expected] (the count of instructions retired so far). *)

val check_cycle : t -> Scheduler.t -> cycle:int -> rs_resident:int -> unit
(** End-of-cycle conservation checks.  [rs_resident] is the number of ROB
    entries currently holding an RS slot.  The O(slots²) age-matrix
    self-check is throttled to every 64th cycle. *)

val checks_run : t -> int
(** Total individual invariant checks performed (for reporting). *)
