(* Open-addressing int -> int hash table with linear probing, replacing
   the store-queue [(int, int) Hashtbl.t] of the cycle loop.  Keys and
   values are non-negative ints; -1 marks an empty bucket.  Capacity is a
   power of two sized for the maximum live population, so inserts after
   [create] never allocate; deletion uses backward-shift so there are no
   tombstones and probe chains stay short. *)

type t = {
  mask : int;
  keys : int array;
  vals : int array;
  mutable count : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create capacity =
  let size = pow2_at_least (max 8 (2 * capacity)) 8 in
  { mask = size - 1;
    keys = Array.make size (-1);
    vals = Array.make size 0;
    count = 0 }

let length t = t.count

(* Fibonacci-style multiplicative hash; the constant fits a 63-bit int. *)
let hash t key = ((key * 0x2545F4914F6CDD1) lsr 17) land t.mask

let rec probe t key i =
  let k = t.keys.(i) in
  if k = key || k = -1 then i else probe t key ((i + 1) land t.mask)

let find t key =
  if key < 0 then invalid_arg "Int_table.find: negative key";
  let i = probe t key (hash t key) in
  if t.keys.(i) = key then t.vals.(i) else -1

let mem t key = find t key >= 0

let replace t key value =
  if key < 0 || value < 0 then invalid_arg "Int_table.replace: negative key or value";
  let i = probe t key (hash t key) in
  if t.keys.(i) = -1 then begin
    if t.count >= t.mask then failwith "Int_table.replace: table full";
    t.keys.(i) <- key;
    t.count <- t.count + 1
  end;
  t.vals.(i) <- value

(* Backward-shift deletion: walk the probe chain after the freed bucket,
   moving back any entry whose home slot lies at or before the hole. *)
let rec backshift t hole j =
  let k = t.keys.(j) in
  if k = -1 then t.keys.(hole) <- -1
  else
    let home = hash t k in
    (* distance from home to j wraps; the entry may move into [hole] iff
       hole sits between home and j on the probe path *)
    if (j - home) land t.mask >= (j - hole) land t.mask then begin
      t.keys.(hole) <- k;
      t.vals.(hole) <- t.vals.(j);
      backshift t j ((j + 1) land t.mask)
    end
    else backshift t hole ((j + 1) land t.mask)

let remove t key =
  if key < 0 then invalid_arg "Int_table.remove: negative key";
  let i = probe t key (hash t key) in
  if t.keys.(i) = key then begin
    t.count <- t.count - 1;
    backshift t i ((i + 1) land t.mask)
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.count <- 0
