(** Allocation-free int -> int hash table (open addressing, linear
    probing, backward-shift deletion).  Keys and values must be
    non-negative.  Sized at creation for a maximum live population;
    operations after [create] never allocate. *)

type t

val create : int -> t
(** Table that holds at least [capacity] live entries without rehashing
    (internally sized to a power of two with slack for short probes). *)

val find : t -> int -> int
(** Value bound to the key, or [-1] when absent. *)

val mem : t -> int -> bool

val replace : t -> int -> int -> unit
(** Insert or overwrite.  Raises [Failure] if the fixed capacity is
    exhausted — the caller bounds the live population (e.g. by store-queue
    occupancy), so this indicates a logic error, not load. *)

val remove : t -> int -> unit
(** Remove the binding if present. *)

val length : t -> int

val clear : t -> unit
