type stall_breakdown = {
  dram_load : int;
  llc_load : int;
  other_load : int;
  long_op : int;
  other : int;
}

type t = {
  cycles : int;
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  branch_mispredicts : int;
  btb_misses : int;
  ras_mispredicts : int;
  head_stalls : stall_breakdown;
  mlp_sum : float;
  mlp_cycles : int;
  critical_retired : int;
  mem : Memory_system.stats;
  upc_timeline : int array option;
}

let add a b =
  { cycles = a.cycles + b.cycles;
    retired = a.retired + b.retired;
    loads = a.loads + b.loads;
    stores = a.stores + b.stores;
    branches = a.branches + b.branches;
    branch_mispredicts = a.branch_mispredicts + b.branch_mispredicts;
    btb_misses = a.btb_misses + b.btb_misses;
    ras_mispredicts = a.ras_mispredicts + b.ras_mispredicts;
    head_stalls =
      { dram_load = a.head_stalls.dram_load + b.head_stalls.dram_load;
        llc_load = a.head_stalls.llc_load + b.head_stalls.llc_load;
        other_load = a.head_stalls.other_load + b.head_stalls.other_load;
        long_op = a.head_stalls.long_op + b.head_stalls.long_op;
        other = a.head_stalls.other + b.head_stalls.other };
    mlp_sum = a.mlp_sum +. b.mlp_sum;
    mlp_cycles = a.mlp_cycles + b.mlp_cycles;
    critical_retired = a.critical_retired + b.critical_retired;
    mem = Memory_system.add_stats a.mem b.mem;
    upc_timeline = None }

let zero =
  { cycles = 0;
    retired = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    branch_mispredicts = 0;
    btb_misses = 0;
    ras_mispredicts = 0;
    head_stalls = { dram_load = 0; llc_load = 0; other_load = 0; long_op = 0; other = 0 };
    mlp_sum = 0.;
    mlp_cycles = 0;
    critical_retired = 0;
    mem =
      { Memory_system.l1d_hits = 0;
        l1d_misses = 0;
        llc_hits = 0;
        llc_misses = 0;
        l1i_hits = 0;
        l1i_misses = 0;
        dram_requests = 0;
        dram_row_hits = 0;
        prefetches_issued = 0;
        prefetch_hits_l1d = 0;
        prefetch_hits_llc = 0 };
    upc_timeline = None }

let ipc t = if t.cycles = 0 then 0. else float_of_int t.retired /. float_of_int t.cycles

let upc = ipc

let per_ki value t =
  if t.retired = 0 then 0. else 1000. *. float_of_int value /. float_of_int t.retired

let mpki_llc t = per_ki t.mem.Memory_system.llc_misses t

let mpki_l1i t = per_ki t.mem.Memory_system.l1i_misses t

let mispredicts_per_ki t = per_ki t.branch_mispredicts t

let avg_mlp t = if t.mlp_cycles = 0 then 0. else t.mlp_sum /. float_of_int t.mlp_cycles

let smoothed_upc t ~window =
  match t.upc_timeline with
  | None -> invalid_arg "Cpu_stats.smoothed_upc: timeline not recorded"
  | Some timeline ->
    if window <= 0 then invalid_arg "Cpu_stats.smoothed_upc: window must be positive";
    let n = Array.length timeline in
    let points = (n + window - 1) / window in
    Array.init points (fun i ->
        let lo = i * window in
        let hi = min n (lo + window) in
        let sum = ref 0 in
        for c = lo to hi - 1 do
          sum := !sum + timeline.(c)
        done;
        (lo, float_of_int !sum /. float_of_int (hi - lo)))

let pp_summary fmt t =
  Format.fprintf fmt "cycles %d  retired %d  IPC %.3f@." t.cycles t.retired (ipc t);
  Format.fprintf fmt "LLC MPKI %.2f  L1I MPKI %.2f  br-mpki %.2f  avg MLP %.2f@."
    (mpki_llc t) (mpki_l1i t) (mispredicts_per_ki t) (avg_mlp t);
  Format.fprintf fmt
    "head stalls: dram %d  llc %d  load %d  long-op %d  other %d@."
    t.head_stalls.dram_load t.head_stalls.llc_load t.head_stalls.other_load
    t.head_stalls.long_op t.head_stalls.other
