(** Core configuration (Table 1 of the paper) and the RS/ROB variants used
    by the sensitivity study of Section 5.4. *)

type t = {
  fetch_width : int;  (** frontend width (6) *)
  issue_width : int;
      (** scheduler selection budget per cycle (6); historically tied to
          [fetch_width], now independent for width-sensitivity studies *)
  retire_width : int;  (** retirement width (6) *)
  rob_size : int;  (** 224 *)
  rs_size : int;  (** unified reservation station, 96 *)
  lq_size : int;  (** load buffer, 64 *)
  sq_size : int;  (** store buffer, 128 *)
  alu_ports : int;  (** 4 *)
  load_ports : int;  (** 2 *)
  store_ports : int;  (** 1 *)
  frontend_depth : int;  (** fetch-to-dispatch latency in cycles *)
  redirect_penalty : int;  (** mispredict resolve-to-fetch penalty *)
  btb_miss_penalty : int;  (** bubble for a taken branch missing the BTB *)
  btb_entries : int;  (** 8192 *)
  ras_depth : int;
  ftq_entries : int;  (** FDIP run-ahead depth in fetch blocks (128) *)
  fdip : bool;  (** FDIP instruction prefetcher enabled *)
  policy : Scheduler.policy;
  mem : Memory_system.params;
  seed : int;  (** RAND scheduler slot-allocation seed *)
  record_upc : bool;  (** record the per-cycle retirement timeline *)
  max_cycles : int option;  (** safety valve; [None] = 400 * trace length *)
  scoreboard : bool;
      (** run the debug-mode pipeline scoreboard ({!Scoreboard}): per-cycle
          invariant checks on ROB/RS/age-matrix state.  Off by default; the
          oracle is read-only, so statistics are identical either way. *)
  obs : bool;
      (** enable the observability layer: {!Cpu_core.run} emits pipeline
          events and per-stage counters into an [Obs_tracer.t].  Off by
          default; the tracer is write-only from the pipeline's point of
          view, so statistics are bit-identical either way. *)
}

val skylake : t
(** The baseline configuration of Table 1 with the oldest-ready scheduler. *)

val with_policy : Scheduler.policy -> t -> t

val with_issue_width : int -> t -> t

val with_scoreboard : bool -> t -> t

val with_obs : bool -> t -> t

val with_window : rs:int -> rob:int -> t -> t
(** Scale the out-of-order window for the Section 5.4 study.  The load and
    store queues scale proportionally with the ROB. *)

val pp : Format.formatter -> t -> unit
(** Print the configuration as the rows of Table 1. *)
