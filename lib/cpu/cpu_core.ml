type criticality =
  | No_tags
  | Static_tags of (int -> bool)
  | Dynamic_tags of (int -> bool)

(* Reorder-buffer entry states. *)
let st_empty = 0
let st_waiting = 1
let st_ready = 2
let st_issued = 3
let st_done = 4

type rob_entry = {
  mutable dyn : int;  (* dynamic trace index, -1 when empty *)
  mutable state : int;
  mutable deps_left : int;
  mutable dependents : int list;  (* rob indices woken at completion *)
  mutable completion : int;
  mutable critical : bool;
  mutable rs_slot : int;
  mutable forward : bool;  (* load forwarded from an in-flight store *)
  mutable level : Memory_system.level option;  (* serving level, loads *)
}

let line_bytes = 64

type state = {
  cfg : Cpu_config.t;
  dyns : Executor.dyn array;
  layout : Layout.t;
  critical_of : int -> bool;  (* by dynamic index *)
  mem : Memory_system.t;
  tage : Tage.t;
  btb : Btb.t;
  ras : Ras.t;
  sched : Scheduler.t;
  rob : rob_entry array;
  mutable rob_head : int;
  mutable rob_count : int;
  rename : int array;  (* architectural reg -> rob index of producer, -1 *)
  rs_owner : int array;  (* rs slot -> rob index *)
  store_map : (int, int) Hashtbl.t;  (* address -> rob index of youngest in-flight store *)
  mutable lq_count : int;
  mutable sq_count : int;
  calendar : (int, int list) Hashtbl.t;  (* cycle -> rob indices completing *)
  mutable mshr_retry : int list;  (* rob indices to re-ready next cycle *)
  fq : (int * int) Queue.t;  (* (dyn index, dispatch-ready cycle) *)
  fq_cap : int;
  mutable fetch_idx : int;
  mutable fetch_blocked_until : int;
  mutable waiting_dyn : int;  (* mispredicted branch dyn stalling fetch, -1 *)
  mutable current_line : int;
  mutable fdip_idx : int;
  mutable cycle : int;
  mutable retired : int;
  (* statistics *)
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable btb_misses : int;
  mutable ras_mispredicts : int;
  mutable stall_dram : int;
  mutable stall_llc : int;
  mutable stall_other_load : int;
  mutable stall_long_op : int;
  mutable stall_other : int;
  mutable mlp_sum : float;
  mutable mlp_cycles : int;
  mutable critical_retired : int;
  upc_timeline : int Vec.t option;
  sb : Scoreboard.t option;  (* debug-mode invariant oracle, read-only *)
  obs : Obs_tracer.t option;  (* observability tracer, write-only sink *)
}

let fresh_entry () =
  { dyn = -1; state = st_empty; deps_left = 0; dependents = []; completion = 0;
    critical = false; rs_slot = -1; forward = false; level = None }

let rob_full s = s.rob_count >= s.cfg.Cpu_config.rob_size

let rob_tail s = (s.rob_head + s.rob_count) mod s.cfg.Cpu_config.rob_size

let schedule_completion s rob_idx cycle =
  let existing = Option.value ~default:[] (Hashtbl.find_opt s.calendar cycle) in
  Hashtbl.replace s.calendar cycle (rob_idx :: existing)

(* ------------------------------------------------------------------ *)
(* Completion: wake dependents, release branch-stalled fetch.          *)
(* ------------------------------------------------------------------ *)

let process_completions s =
  match Hashtbl.find_opt s.calendar s.cycle with
  | None -> ()
  | Some completing ->
    Hashtbl.remove s.calendar s.cycle;
    List.iter
      (fun rob_idx ->
        let e = s.rob.(rob_idx) in
        e.state <- st_done;
        (match s.obs with
        | Some tr -> Obs_tracer.on_complete tr ~cycle:s.cycle ~dyn:e.dyn
        | None -> ());
        List.iter
          (fun dep_idx ->
            let dep = s.rob.(dep_idx) in
            dep.deps_left <- dep.deps_left - 1;
            if dep.deps_left = 0 && dep.state = st_waiting then begin
              dep.state <- st_ready;
              Scheduler.mark_ready s.sched dep.rs_slot
            end)
          e.dependents;
        e.dependents <- [];
        if e.dyn = s.waiting_dyn then begin
          (* The mispredicted branch resolved: redirect the frontend. *)
          s.waiting_dyn <- -1;
          s.fetch_blocked_until <-
            max s.fetch_blocked_until (s.cycle + s.cfg.Cpu_config.redirect_penalty)
        end)
      completing

let process_mshr_retries s =
  List.iter
    (fun rob_idx ->
      let e = s.rob.(rob_idx) in
      if e.state = st_ready then Scheduler.mark_ready s.sched e.rs_slot)
    s.mshr_retry;
  s.mshr_retry <- []

(* ------------------------------------------------------------------ *)
(* Retirement (in order).                                              *)
(* ------------------------------------------------------------------ *)

let attribute_head_stall s (e : rob_entry) =
  let d = s.dyns.(e.dyn) in
  match d.Executor.op with
  | Isa.Load -> begin
    match e.level with
    | Some Memory_system.Mem -> s.stall_dram <- s.stall_dram + 1
    | Some Memory_system.Llc -> s.stall_llc <- s.stall_llc + 1
    | Some Memory_system.L1 | None -> s.stall_other_load <- s.stall_other_load + 1
  end
  | Isa.Div | Isa.Fp_div -> s.stall_long_op <- s.stall_long_op + 1
  | _ -> s.stall_other <- s.stall_other + 1

let retire s =
  let retired_now = ref 0 in
  let continue_ = ref true in
  while !continue_ && !retired_now < s.cfg.Cpu_config.retire_width && s.rob_count > 0 do
    let e = s.rob.(s.rob_head) in
    if e.state <> st_done then begin
      if !retired_now = 0 then attribute_head_stall s e;
      continue_ := false
    end
    else begin
      (match s.sb with
      | Some sb -> Scoreboard.check_retire sb ~cycle:s.cycle ~dyn:e.dyn ~expected:s.retired
      | None -> ());
      (match s.obs with
      | Some tr ->
        Obs_tracer.on_retire tr ~cycle:s.cycle ~dyn:e.dyn ~critical:e.critical
      | None -> ());
      let d = s.dyns.(e.dyn) in
      (match d.Executor.op with
      | Isa.Store ->
        Memory_system.store_commit s.mem ~cycle:s.cycle ~addr:d.Executor.addr;
        (match Hashtbl.find_opt s.store_map d.Executor.addr with
        | Some owner when owner = s.rob_head -> Hashtbl.remove s.store_map d.Executor.addr
        | Some _ | None -> ());
        s.sq_count <- s.sq_count - 1
      | Isa.Load -> s.lq_count <- s.lq_count - 1
      | _ -> ());
      if e.critical then s.critical_retired <- s.critical_retired + 1;
      if d.Executor.dst >= 0 && s.rename.(d.Executor.dst) = s.rob_head then
        s.rename.(d.Executor.dst) <- -1;
      e.state <- st_empty;
      e.dyn <- -1;
      s.rob_head <- (s.rob_head + 1) mod s.cfg.Cpu_config.rob_size;
      s.rob_count <- s.rob_count - 1;
      s.retired <- s.retired + 1;
      incr retired_now
    end
  done;
  match s.upc_timeline with
  | Some timeline -> Vec.push timeline !retired_now
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Issue and execute.                                                  *)
(* ------------------------------------------------------------------ *)

let execute s rob_idx =
  let e = s.rob.(rob_idx) in
  let d = s.dyns.(e.dyn) in
  let mem_params = Memory_system.params s.mem in
  match d.Executor.op with
  | Isa.Load ->
    if e.forward then begin
      (* Store-to-load forwarding costs an L1-hit-like latency. *)
      e.level <- Some Memory_system.L1;
      `Issued (s.cycle + mem_params.Memory_system.l1d_latency)
    end
    else begin
      match Memory_system.load s.mem ~cycle:s.cycle ~addr:d.Executor.addr with
      | `Done (ready, level) ->
        e.level <- Some level;
        `Issued (max ready (s.cycle + 1))
      | `Mshr_full -> `Retry
    end
  | Isa.Prefetch ->
    (* Software prefetch: starts the fill, completes immediately. *)
    (match Memory_system.load s.mem ~cycle:s.cycle ~addr:d.Executor.addr with
    | `Done _ | `Mshr_full -> ());
    `Issued (s.cycle + 1)
  | op -> `Issued (s.cycle + Isa.exec_latency op)

(* Select-then-arbitrate: up to issue-width selections per cycle in policy
   order; a selected instruction issues only if a port of its class is
   still free, otherwise the selection slot is wasted and the instruction
   stays ready.  This is where selection order matters: under the baseline
   policy a burst of older ready instructions starves younger critical
   ones, which is precisely what CRISP's PRIO vector repairs. *)
let issue s =
  Scheduler.begin_cycle s.sched;
  let alu = ref s.cfg.Cpu_config.alu_ports in
  let ld = ref s.cfg.Cpu_config.load_ports in
  let st = ref s.cfg.Cpu_config.store_ports in
  let picks = ref 0 in
  let continue_ = ref true in
  while !continue_ && !picks < s.cfg.Cpu_config.fetch_width do
    let slot = Scheduler.select s.sched in
    if slot < 0 then continue_ := false
    else begin
      incr picks;
      (* Selection-time introspection (scoreboard checks, tracer events)
         already ran inside [Scheduler.select] via the shared hook. *)
      let rob_idx = s.rs_owner.(slot) in
      let e = s.rob.(rob_idx) in
      let d = s.dyns.(e.dyn) in
      let port =
        match Isa.fu_of_op d.Executor.op with
        | Isa.Fu_alu -> alu
        | Isa.Fu_load -> ld
        | Isa.Fu_store -> st
      in
      if !port > 0 then begin
        match execute s rob_idx with
        | `Issued completion ->
          decr port;
          Scheduler.issue s.sched slot;
          (match s.obs with
          | Some tr ->
            Obs_tracer.on_issue tr ~cycle:s.cycle ~dyn:e.dyn ~critical:e.critical
          | None -> ());
          e.rs_slot <- -1;
          e.state <- st_issued;
          e.completion <- completion;
          schedule_completion s rob_idx completion
        | `Retry ->
          (* MSHRs full: the port is consumed by the replay; drop readiness
             and retry next cycle. *)
          decr port;
          Scheduler.unready s.sched slot;
          (match s.obs with
          | Some tr -> Obs_tracer.on_mshr_retry tr ~cycle:s.cycle ~dyn:e.dyn
          | None -> ());
          s.mshr_retry <- rob_idx :: s.mshr_retry
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Dispatch: rename, allocate ROB/RS/LQ/SQ, build dependency edges.    *)
(* ------------------------------------------------------------------ *)

let add_dep s consumer_idx producer_idx =
  let producer = s.rob.(producer_idx) in
  if producer.state < st_done then begin
    let consumer = s.rob.(consumer_idx) in
    producer.dependents <- consumer_idx :: producer.dependents;
    consumer.deps_left <- consumer.deps_left + 1
  end

let dispatch_one s dyn_idx =
  let d = s.dyns.(dyn_idx) in
  let op = d.Executor.op in
  let is_load = op = Isa.Load in
  let is_store = op = Isa.Store in
  if rob_full s then `Stall
  else if is_load && s.lq_count >= s.cfg.Cpu_config.lq_size then `Stall
  else if is_store && s.sq_count >= s.cfg.Cpu_config.sq_size then `Stall
  else begin
    let critical = s.critical_of dyn_idx in
    match Scheduler.allocate s.sched ~critical with
    | None -> `Stall
    | Some slot ->
      let rob_idx = rob_tail s in
      s.rob_count <- s.rob_count + 1;
      let e = s.rob.(rob_idx) in
      e.dyn <- dyn_idx;
      e.state <- st_waiting;
      e.deps_left <- 0;
      e.dependents <- [];
      e.critical <- critical;
      e.rs_slot <- slot;
      e.forward <- false;
      e.level <- None;
      s.rs_owner.(slot) <- rob_idx;
      (* Register dependencies through the rename table. *)
      if d.Executor.src1 >= 0 then begin
        let p = s.rename.(d.Executor.src1) in
        if p >= 0 then add_dep s rob_idx p
      end;
      if d.Executor.src2 >= 0 && d.Executor.src2 <> d.Executor.src1 then begin
        let p = s.rename.(d.Executor.src2) in
        if p >= 0 then add_dep s rob_idx p
      end;
      (* Memory dependency: a load after an in-flight store to the same
         address waits for the store and then forwards. *)
      if is_load then begin
        s.lq_count <- s.lq_count + 1;
        match Hashtbl.find_opt s.store_map d.Executor.addr with
        | Some store_idx ->
          e.forward <- true;
          add_dep s rob_idx store_idx
        | None -> ()
      end;
      if is_store then begin
        s.sq_count <- s.sq_count + 1;
        Hashtbl.replace s.store_map d.Executor.addr rob_idx
      end;
      if d.Executor.dst >= 0 then s.rename.(d.Executor.dst) <- rob_idx;
      if e.deps_left = 0 then begin
        e.state <- st_ready;
        Scheduler.mark_ready s.sched slot
      end;
      (match s.obs with
      | Some tr ->
        Obs_tracer.on_dispatch tr ~cycle:s.cycle ~dyn:dyn_idx ~rob:rob_idx ~critical
      | None -> ());
      `Dispatched
  end

let dispatch s =
  let dispatched = ref 0 in
  let continue_ = ref true in
  while !continue_ && !dispatched < s.cfg.Cpu_config.fetch_width
        && not (Queue.is_empty s.fq) do
    let dyn_idx, ready_cycle = Queue.peek s.fq in
    if ready_cycle > s.cycle then continue_ := false
    else
      match dispatch_one s dyn_idx with
      | `Stall -> continue_ := false
      | `Dispatched ->
        ignore (Queue.pop s.fq);
        incr dispatched
  done

(* ------------------------------------------------------------------ *)
(* Fetch: follow the trace, model icache, predictors and redirects.    *)
(* ------------------------------------------------------------------ *)

(* Handle the control-flow consequences of fetching [d].  Returns [`Continue]
   to keep fetching this cycle, [`End_group] after a taken transfer,
   [`Blocked] when fetch must stop until a resolution or bubble ends. *)
let obs_redirect s dyn_idx kind =
  match s.obs with
  | Some tr -> Obs_tracer.on_redirect tr ~cycle:s.cycle ~dyn:dyn_idx ~kind
  | None -> ()

let fetch_control s dyn_idx (d : Executor.dyn) =
  match d.Executor.op with
  | Isa.Branch _ ->
    s.branches <- s.branches + 1;
    let predicted = Tage.predict_and_update s.tage ~pc:d.Executor.pc ~taken:d.Executor.taken in
    if predicted <> d.Executor.taken then begin
      s.branch_mispredicts <- s.branch_mispredicts + 1;
      obs_redirect s dyn_idx `Mispredict;
      s.waiting_dyn <- dyn_idx;
      `Blocked
    end
    else if d.Executor.taken then begin
      (* Correctly predicted taken: the target must come from the BTB. *)
      let target_ok =
        match Btb.lookup s.btb ~pc:d.Executor.pc with
        | Some target -> target = d.Executor.next_pc
        | None -> false
      in
      Btb.update s.btb ~pc:d.Executor.pc ~target:d.Executor.next_pc;
      if target_ok then `End_group
      else begin
        s.btb_misses <- s.btb_misses + 1;
        obs_redirect s dyn_idx `Btb_miss;
        s.fetch_blocked_until <- s.cycle + s.cfg.Cpu_config.btb_miss_penalty;
        `Blocked
      end
    end
    else `Continue
  | Isa.Jump -> `End_group
  | Isa.Call ->
    Ras.push s.ras (d.Executor.pc + 1);
    `End_group
  | Isa.Ret -> begin
    match Ras.pop s.ras with
    | Some target when target = d.Executor.next_pc -> `End_group
    | Some _ | None ->
      s.ras_mispredicts <- s.ras_mispredicts + 1;
      obs_redirect s dyn_idx `Ras_mispredict;
      s.waiting_dyn <- dyn_idx;
      `Blocked
  end
  | _ -> `Continue

let fetch s =
  let n = Array.length s.dyns in
  if s.cycle >= s.fetch_blocked_until && s.waiting_dyn < 0 then begin
    let fetched = ref 0 in
    let continue_ = ref true in
    while !continue_ && !fetched < s.cfg.Cpu_config.fetch_width && s.fetch_idx < n
          && Queue.length s.fq < s.fq_cap do
      let dyn_idx = s.fetch_idx in
      let d = s.dyns.(dyn_idx) in
      let addr = Layout.addr_of s.layout d.Executor.pc in
      let line = addr / line_bytes in
      if line <> s.current_line then begin
        let ready, _level = Memory_system.fetch s.mem ~cycle:s.cycle ~addr in
        let mem_params = Memory_system.params s.mem in
        if ready > s.cycle + mem_params.Memory_system.l1i_latency then begin
          (* Instruction cache miss: fetch resumes when the line arrives. *)
          s.fetch_blocked_until <- ready;
          continue_ := false
        end
        else s.current_line <- line
      end;
      if !continue_ then begin
        Queue.push (dyn_idx, s.cycle + s.cfg.Cpu_config.frontend_depth) s.fq;
        (match s.obs with
        | Some tr ->
          Obs_tracer.on_fetch tr ~cycle:s.cycle ~dyn:dyn_idx ~pc:d.Executor.pc
        | None -> ());
        s.fetch_idx <- s.fetch_idx + 1;
        incr fetched;
        match fetch_control s dyn_idx d with
        | `Continue -> ()
        | `End_group | `Blocked -> continue_ := false
      end
    done
  end

(* FDIP: run ahead of fetch along the fetch target queue and prefetch
   instruction lines.  Cannot run past an unresolved misprediction. *)
let fdip s =
  if s.cfg.Cpu_config.fdip then begin
    let n = Array.length s.dyns in
    let limit_dyn =
      if s.waiting_dyn >= 0 then s.waiting_dyn + 1
      else min n (s.fetch_idx + s.cfg.Cpu_config.ftq_entries)
    in
    if s.fdip_idx < s.fetch_idx then s.fdip_idx <- s.fetch_idx;
    let budget = ref 2 in
    let scanned = ref 0 in
    while !budget > 0 && !scanned < 64 && s.fdip_idx < limit_dyn do
      let d = s.dyns.(s.fdip_idx) in
      let addr = Layout.addr_of s.layout d.Executor.pc in
      if addr / line_bytes <> s.current_line
         && not (Memory_system.probe_inst s.mem ~addr)
      then begin
        Memory_system.prefetch_inst s.mem ~cycle:s.cycle ~addr;
        decr budget
      end;
      s.fdip_idx <- s.fdip_idx + 1;
      incr scanned
    done
  end

(* ------------------------------------------------------------------ *)
(* Top level.                                                          *)
(* ------------------------------------------------------------------ *)

let run ?(criticality = No_tags) ?layout ?tracer cfg (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let static_critical =
    match criticality with
    | Static_tags f -> f
    | No_tags | Dynamic_tags _ -> fun _ -> false
  in
  let layout =
    match layout with
    | Some l -> l
    | None -> Layout.compute ~critical:static_critical trace.Executor.prog
  in
  let critical_of =
    match criticality with
    | No_tags -> fun _ -> false
    | Static_tags f -> fun dyn_idx -> f dyns.(dyn_idx).Executor.pc
    | Dynamic_tags f -> f
  in
  let s =
    { cfg;
      dyns;
      layout;
      critical_of;
      mem = Memory_system.create cfg.Cpu_config.mem;
      tage = Tage.create ();
      btb = Btb.create ~entries:cfg.Cpu_config.btb_entries ();
      ras = Ras.create ~depth:cfg.Cpu_config.ras_depth ();
      sched =
        Scheduler.create ~seed:cfg.Cpu_config.seed ~slots:cfg.Cpu_config.rs_size
          cfg.Cpu_config.policy;
      rob = Array.init cfg.Cpu_config.rob_size (fun _ -> fresh_entry ());
      rob_head = 0;
      rob_count = 0;
      rename = Array.make Isa.num_regs (-1);
      rs_owner = Array.make cfg.Cpu_config.rs_size (-1);
      store_map = Hashtbl.create 256;
      lq_count = 0;
      sq_count = 0;
      calendar = Hashtbl.create 1024;
      mshr_retry = [];
      fq = Queue.create ();
      fq_cap = max 32 (cfg.Cpu_config.fetch_width * (cfg.Cpu_config.frontend_depth + 3));
      fetch_idx = 0;
      fetch_blocked_until = 0;
      waiting_dyn = -1;
      current_line = -1;
      fdip_idx = 0;
      cycle = 0;
      retired = 0;
      branches = 0;
      branch_mispredicts = 0;
      btb_misses = 0;
      ras_mispredicts = 0;
      stall_dram = 0;
      stall_llc = 0;
      stall_other_load = 0;
      stall_long_op = 0;
      stall_other = 0;
      mlp_sum = 0.;
      mlp_cycles = 0;
      critical_retired = 0;
      upc_timeline =
        (if cfg.Cpu_config.record_upc then Some (Vec.create ~dummy:0 ()) else None);
      sb = (if cfg.Cpu_config.scoreboard then Some (Scoreboard.create cfg) else None);
      obs =
        (if cfg.Cpu_config.obs then
           Some (match tracer with Some t -> t | None -> Obs_tracer.create ())
         else None) }
  in
  (* Both observers share the scheduler's single instrumentation hook
     (selection is the only pipeline event born inside [Scheduler]). *)
  (match s.sb, s.obs with
  | None, None -> ()
  | sb, obs ->
    Scheduler.set_on_select s.sched
      (Some
         (fun ~slot ~prio_override ->
           let e = s.rob.(s.rs_owner.(slot)) in
           (match sb with
           | Some sb ->
             Scoreboard.check_select sb s.sched ~cycle:s.cycle ~slot
               ~ready:(e.state = st_ready) ~deps_left:e.deps_left
           | None -> ());
           match obs with
           | Some tr ->
             Obs_tracer.on_select tr ~cycle:s.cycle ~dyn:e.dyn ~prio_override
           | None -> ())));
  (match s.obs with
  | Some tr -> Memory_system.set_tracer s.mem (Some tr)
  | None -> ());
  let max_cycles =
    match cfg.Cpu_config.max_cycles with
    | Some m -> m
    | None -> (400 * n) + 100_000
  in
  while s.retired < n do
    if s.cycle > max_cycles then
      failwith
        (Printf.sprintf
           "Cpu_core.run: no forward progress (cycle %d, retired %d/%d) — model bug"
           s.cycle s.retired n);
    process_completions s;
    process_mshr_retries s;
    retire s;
    issue s;
    dispatch s;
    fetch s;
    fdip s;
    let outstanding = Memory_system.outstanding_misses s.mem ~cycle:s.cycle in
    if outstanding > 0 then begin
      s.mlp_sum <- s.mlp_sum +. float_of_int outstanding;
      s.mlp_cycles <- s.mlp_cycles + 1
    end;
    (match s.obs with
    | Some tr ->
      Obs_tracer.on_cycle tr ~rob_occupancy:s.rob_count
        ~rs_occupancy:(Scheduler.occupancy s.sched)
    | None -> ());
    (match s.sb with
    | Some sb ->
      (* Entries in [st_waiting] or [st_ready] are exactly those resident
         in a reservation-station slot. *)
      let resident = ref 0 in
      Array.iter
        (fun e -> if e.state = st_waiting || e.state = st_ready then incr resident)
        s.rob;
      Scoreboard.check_cycle sb s.sched ~cycle:s.cycle ~rs_resident:!resident
    | None -> ());
    s.cycle <- s.cycle + 1
  done;
  let loads = ref 0 and stores = ref 0 in
  Array.iter
    (fun (d : Executor.dyn) ->
      match d.Executor.op with
      | Isa.Load -> incr loads
      | Isa.Store -> incr stores
      | _ -> ())
    dyns;
  { Cpu_stats.cycles = s.cycle;
    retired = s.retired;
    loads = !loads;
    stores = !stores;
    branches = s.branches;
    branch_mispredicts = s.branch_mispredicts;
    btb_misses = s.btb_misses;
    ras_mispredicts = s.ras_mispredicts;
    head_stalls =
      { Cpu_stats.dram_load = s.stall_dram;
        llc_load = s.stall_llc;
        other_load = s.stall_other_load;
        long_op = s.stall_long_op;
        other = s.stall_other };
    mlp_sum = s.mlp_sum;
    mlp_cycles = s.mlp_cycles;
    critical_retired = s.critical_retired;
    mem = Memory_system.stats s.mem;
    upc_timeline = Option.map Vec.to_array s.upc_timeline }
