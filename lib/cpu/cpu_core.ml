type criticality =
  | No_tags
  | Static_tags of (int -> bool)
  | Dynamic_tags of (int -> bool)

(* Reorder-buffer entry states. *)
let st_empty = 0
let st_waiting = 1
let st_ready = 2
let st_issued = 3
let st_done = 4

let line_bytes = 64

(* The wheel horizon must cover the common-case longest completion
   latency (an unloaded DRAM round-trip is ~130 cycles); queue-delayed
   fills beyond it spill into the wheel's overflow bucket. *)
let wheel_horizon = 1024

(* The ROB is a struct-of-arrays: the per-entry record of the previous
   engine forced a pointer deref per field touch and a [dependents] list
   cons per dependency edge.  Entry [i]'s fields live at index [i] of
   each array; wakeup edges live in the intrusive [wakeup] lists. *)
type state = {
  cfg : Cpu_config.t;
  dyns : Executor.dyn array;
  layout : Layout.t;
  critical_of : int -> bool;  (* by dynamic index *)
  mem : Memory_system.t;
  tage : Tage.t;
  btb : Btb.t;
  ras : Ras.t;
  sched : Scheduler.t;
  rob_dyn : int array;  (* dynamic trace index, -1 when empty *)
  rob_state : int array;
  rob_deps_left : int array;
  rob_critical : bool array;
  rob_rs_slot : int array;
  rob_forward : bool array;  (* load forwarded from an in-flight store *)
  rob_level : int array;  (* Memory_system level code, 0 = unknown *)
  wakeup : Wakeup.t;  (* rob index -> rob indices woken at completion *)
  mutable rob_head : int;
  mutable rob_count : int;
  rename : int array;  (* architectural reg -> rob index of producer, -1 *)
  rs_owner : int array;  (* rs slot -> rob index *)
  store_map : Int_table.t;  (* address -> rob index of youngest in-flight store *)
  mutable lq_count : int;
  mutable sq_count : int;
  wheel : Event_wheel.t;  (* completion calendar *)
  mshr_retry : int array;  (* rob indices to re-ready next cycle *)
  mutable mshr_retry_len : int;
  fq_dyn : int array;  (* fetch queue ring: dyn index / dispatch-ready cycle *)
  fq_ready : int array;
  fq_cap : int;
  mutable fq_head : int;
  mutable fq_len : int;
  l1d_latency : int;  (* hoisted from Memory_system.params *)
  l1i_latency : int;
  mutable fetch_idx : int;
  mutable fetch_blocked_until : int;
  mutable waiting_dyn : int;  (* mispredicted branch dyn stalling fetch, -1 *)
  mutable current_line : int;
  mutable fdip_idx : int;
  mutable cycle : int;
  mutable retired : int;
  mutable retire_stop : int;  (* retirement ceiling: exact window boundaries *)
  (* statistics *)
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable btb_misses : int;
  mutable ras_mispredicts : int;
  mutable stall_dram : int;
  mutable stall_llc : int;
  mutable stall_other_load : int;
  mutable stall_long_op : int;
  mutable stall_other : int;
  mutable mlp_sum_units : int;  (* per-cycle MLP observations, summed as an int *)
  mutable mlp_cycles : int;
  mutable critical_retired : int;
  upc_timeline : int Vec.t option;
  sb : Scoreboard.t option;  (* debug-mode invariant oracle, read-only *)
  obs : Obs_tracer.t option;  (* observability tracer, write-only sink *)
}

let rob_full s = s.rob_count >= s.cfg.Cpu_config.rob_size

let rob_tail s = (s.rob_head + s.rob_count) mod s.cfg.Cpu_config.rob_size

(* ------------------------------------------------------------------ *)
(* Completion: wake dependents, release branch-stalled fetch.          *)
(* ------------------------------------------------------------------ *)

let rec wake_dependents s producer =
  let dep = Wakeup.pop s.wakeup producer in
  if dep >= 0 then begin
    s.rob_deps_left.(dep) <- s.rob_deps_left.(dep) - 1;
    if s.rob_deps_left.(dep) = 0 && s.rob_state.(dep) = st_waiting then begin
      s.rob_state.(dep) <- st_ready;
      Scheduler.mark_ready s.sched s.rob_rs_slot.(dep)
    end;
    wake_dependents s producer
  end

let rec process_completions s =
  let rob_idx = Event_wheel.pop s.wheel ~cycle:s.cycle in
  if rob_idx >= 0 then begin
    s.rob_state.(rob_idx) <- st_done;
    (match s.obs with
    | Some tr -> Obs_tracer.on_complete tr ~cycle:s.cycle ~dyn:s.rob_dyn.(rob_idx)
    | None -> ());
    wake_dependents s rob_idx;
    if s.rob_dyn.(rob_idx) = s.waiting_dyn then begin
      (* The mispredicted branch resolved: redirect the frontend. *)
      s.waiting_dyn <- -1;
      let until = s.cycle + s.cfg.Cpu_config.redirect_penalty in
      if until > s.fetch_blocked_until then s.fetch_blocked_until <- until
    end;
    process_completions s
  end

let process_mshr_retries s =
  for i = 0 to s.mshr_retry_len - 1 do
    let rob_idx = s.mshr_retry.(i) in
    if s.rob_state.(rob_idx) = st_ready then
      Scheduler.mark_ready s.sched s.rob_rs_slot.(rob_idx)
  done;
  s.mshr_retry_len <- 0

(* ------------------------------------------------------------------ *)
(* Retirement (in order).                                              *)
(* ------------------------------------------------------------------ *)

let attribute_head_stall s head =
  match s.dyns.(s.rob_dyn.(head)).Executor.op with
  | Isa.Load ->
    let lvl = s.rob_level.(head) in
    if lvl = Memory_system.code_mem then s.stall_dram <- s.stall_dram + 1
    else if lvl = Memory_system.code_llc then s.stall_llc <- s.stall_llc + 1
    else s.stall_other_load <- s.stall_other_load + 1
  | Isa.Div | Isa.Fp_div -> s.stall_long_op <- s.stall_long_op + 1
  | _ -> s.stall_other <- s.stall_other + 1

let rec retire_loop s retired_now =
  if retired_now >= s.cfg.Cpu_config.retire_width || s.rob_count = 0
     || s.retired >= s.retire_stop
  then retired_now
  else begin
    let head = s.rob_head in
    if s.rob_state.(head) <> st_done then begin
      if retired_now = 0 then attribute_head_stall s head;
      retired_now
    end
    else begin
      (match s.sb with
      | Some sb ->
        Scoreboard.check_retire sb ~cycle:s.cycle ~dyn:s.rob_dyn.(head)
          ~expected:s.retired
      | None -> ());
      (match s.obs with
      | Some tr ->
        Obs_tracer.on_retire tr ~cycle:s.cycle ~dyn:s.rob_dyn.(head)
          ~critical:s.rob_critical.(head)
      | None -> ());
      let d = s.dyns.(s.rob_dyn.(head)) in
      (match d.Executor.op with
      | Isa.Store ->
        Memory_system.store_commit s.mem ~cycle:s.cycle ~addr:d.Executor.addr;
        if Int_table.find s.store_map d.Executor.addr = head then
          Int_table.remove s.store_map d.Executor.addr;
        s.sq_count <- s.sq_count - 1
      | Isa.Load -> s.lq_count <- s.lq_count - 1
      | _ -> ());
      if s.rob_critical.(head) then s.critical_retired <- s.critical_retired + 1;
      if d.Executor.dst >= 0 && s.rename.(d.Executor.dst) = head then
        s.rename.(d.Executor.dst) <- -1;
      s.rob_state.(head) <- st_empty;
      s.rob_dyn.(head) <- -1;
      s.rob_head <- (head + 1) mod s.cfg.Cpu_config.rob_size;
      s.rob_count <- s.rob_count - 1;
      s.retired <- s.retired + 1;
      retire_loop s (retired_now + 1)
    end
  end

let retire s =
  let retired_now = retire_loop s 0 in
  match s.upc_timeline with
  | Some timeline -> Vec.push timeline retired_now
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Issue and execute.                                                  *)
(* ------------------------------------------------------------------ *)

(* Completion cycle, or -1 when the load must retry (MSHRs full). *)
let execute s rob_idx =
  let d = s.dyns.(s.rob_dyn.(rob_idx)) in
  match d.Executor.op with
  | Isa.Load ->
    if s.rob_forward.(rob_idx) then begin
      (* Store-to-load forwarding costs an L1-hit-like latency. *)
      s.rob_level.(rob_idx) <- Memory_system.code_l1;
      s.cycle + s.l1d_latency
    end
    else begin
      let packed = Memory_system.load_raw s.mem ~cycle:s.cycle ~addr:d.Executor.addr in
      if packed < 0 then -1
      else begin
        s.rob_level.(rob_idx) <- packed land 3;
        let ready = packed lsr 2 in
        if ready > s.cycle + 1 then ready else s.cycle + 1
      end
    end
  | Isa.Prefetch ->
    (* Software prefetch: starts the fill, completes immediately. *)
    ignore (Memory_system.load_raw s.mem ~cycle:s.cycle ~addr:d.Executor.addr);
    s.cycle + 1
  | op -> s.cycle + Isa.exec_latency op

(* Select-then-arbitrate: up to issue-width selections per cycle in policy
   order; a selected instruction issues only if a port of its class is
   still free, otherwise the selection slot is wasted and the instruction
   stays ready.  This is where selection order matters: under the baseline
   policy a burst of older ready instructions starves younger critical
   ones, which is precisely what CRISP's PRIO vector repairs. *)
let rec issue_loop s picks alu ld st =
  if picks < s.cfg.Cpu_config.issue_width then begin
    let slot = Scheduler.select s.sched in
    if slot >= 0 then begin
      (* Selection-time introspection (scoreboard checks, tracer events)
         already ran inside [Scheduler.select] via the shared hook. *)
      let rob_idx = s.rs_owner.(slot) in
      let fu = Isa.fu_of_op s.dyns.(s.rob_dyn.(rob_idx)).Executor.op in
      let avail =
        match fu with Isa.Fu_alu -> alu | Isa.Fu_load -> ld | Isa.Fu_store -> st
      in
      if avail > 0 then begin
        let completion = execute s rob_idx in
        if completion >= 0 then begin
          Scheduler.issue s.sched slot;
          (match s.obs with
          | Some tr ->
            Obs_tracer.on_issue tr ~cycle:s.cycle ~dyn:s.rob_dyn.(rob_idx)
              ~critical:s.rob_critical.(rob_idx)
          | None -> ());
          s.rob_rs_slot.(rob_idx) <- -1;
          s.rob_state.(rob_idx) <- st_issued;
          Event_wheel.add s.wheel ~now:s.cycle ~cycle:completion rob_idx
        end
        else begin
          (* MSHRs full: the port is consumed by the replay; drop readiness
             and retry next cycle. *)
          Scheduler.unready s.sched slot;
          (match s.obs with
          | Some tr ->
            Obs_tracer.on_mshr_retry tr ~cycle:s.cycle ~dyn:s.rob_dyn.(rob_idx)
          | None -> ());
          s.mshr_retry.(s.mshr_retry_len) <- rob_idx;
          s.mshr_retry_len <- s.mshr_retry_len + 1
        end;
        match fu with
        | Isa.Fu_alu -> issue_loop s (picks + 1) (alu - 1) ld st
        | Isa.Fu_load -> issue_loop s (picks + 1) alu (ld - 1) st
        | Isa.Fu_store -> issue_loop s (picks + 1) alu ld (st - 1)
      end
      else
        (* No free port of this class: the selection slot is wasted. *)
        issue_loop s (picks + 1) alu ld st
    end
  end

let issue s =
  Scheduler.begin_cycle s.sched;
  issue_loop s 0 s.cfg.Cpu_config.alu_ports s.cfg.Cpu_config.load_ports
    s.cfg.Cpu_config.store_ports

(* ------------------------------------------------------------------ *)
(* Dispatch: rename, allocate ROB/RS/LQ/SQ, build dependency edges.    *)
(* ------------------------------------------------------------------ *)

let add_dep s consumer producer =
  if s.rob_state.(producer) < st_done then begin
    (* The consumer's edge id is its producer-operand ordinal (0..2):
       src1, src2 and store-forward each claim a distinct link. *)
    Wakeup.push s.wakeup ~producer ~consumer ~link:s.rob_deps_left.(consumer);
    s.rob_deps_left.(consumer) <- s.rob_deps_left.(consumer) + 1
  end

let dispatch_one s dyn_idx =
  let d = s.dyns.(dyn_idx) in
  let op = d.Executor.op in
  let is_load = op = Isa.Load in
  let is_store = op = Isa.Store in
  if rob_full s then false
  else if is_load && s.lq_count >= s.cfg.Cpu_config.lq_size then false
  else if is_store && s.sq_count >= s.cfg.Cpu_config.sq_size then false
  else begin
    let critical = s.critical_of dyn_idx in
    let slot = Scheduler.allocate_slot s.sched ~critical in
    if slot < 0 then false
    else begin
      let rob_idx = rob_tail s in
      s.rob_count <- s.rob_count + 1;
      s.rob_dyn.(rob_idx) <- dyn_idx;
      s.rob_state.(rob_idx) <- st_waiting;
      s.rob_deps_left.(rob_idx) <- 0;
      Wakeup.reset s.wakeup rob_idx;
      s.rob_critical.(rob_idx) <- critical;
      s.rob_rs_slot.(rob_idx) <- slot;
      s.rob_forward.(rob_idx) <- false;
      s.rob_level.(rob_idx) <- 0;
      s.rs_owner.(slot) <- rob_idx;
      (* Register dependencies through the rename table. *)
      if d.Executor.src1 >= 0 then begin
        let p = s.rename.(d.Executor.src1) in
        if p >= 0 then add_dep s rob_idx p
      end;
      if d.Executor.src2 >= 0 && d.Executor.src2 <> d.Executor.src1 then begin
        let p = s.rename.(d.Executor.src2) in
        if p >= 0 then add_dep s rob_idx p
      end;
      (* Memory dependency: a load after an in-flight store to the same
         address waits for the store and then forwards. *)
      if is_load then begin
        s.lq_count <- s.lq_count + 1;
        let store_idx = Int_table.find s.store_map d.Executor.addr in
        if store_idx >= 0 then begin
          s.rob_forward.(rob_idx) <- true;
          add_dep s rob_idx store_idx
        end
      end;
      if is_store then begin
        s.sq_count <- s.sq_count + 1;
        Int_table.replace s.store_map d.Executor.addr rob_idx
      end;
      if d.Executor.dst >= 0 then s.rename.(d.Executor.dst) <- rob_idx;
      if s.rob_deps_left.(rob_idx) = 0 then begin
        s.rob_state.(rob_idx) <- st_ready;
        Scheduler.mark_ready s.sched slot
      end;
      (match s.obs with
      | Some tr ->
        Obs_tracer.on_dispatch tr ~cycle:s.cycle ~dyn:dyn_idx ~rob:rob_idx ~critical
      | None -> ());
      true
    end
  end

let rec dispatch_loop s dispatched =
  if dispatched < s.cfg.Cpu_config.fetch_width && s.fq_len > 0
     && s.fq_ready.(s.fq_head) <= s.cycle
     && dispatch_one s s.fq_dyn.(s.fq_head)
  then begin
    s.fq_head <- (s.fq_head + 1) mod s.fq_cap;
    s.fq_len <- s.fq_len - 1;
    dispatch_loop s (dispatched + 1)
  end

let dispatch s = dispatch_loop s 0

(* ------------------------------------------------------------------ *)
(* Fetch: follow the trace, model icache, predictors and redirects.    *)
(* ------------------------------------------------------------------ *)

(* Handle the control-flow consequences of fetching [d].  Returns [`Continue]
   to keep fetching this cycle, [`End_group] after a taken transfer,
   [`Blocked] when fetch must stop until a resolution or bubble ends. *)
let obs_redirect s dyn_idx kind =
  match s.obs with
  | Some tr -> Obs_tracer.on_redirect tr ~cycle:s.cycle ~dyn:dyn_idx ~kind
  | None -> ()

let fetch_control s dyn_idx (d : Executor.dyn) =
  match d.Executor.op with
  | Isa.Branch _ ->
    s.branches <- s.branches + 1;
    let predicted = Tage.predict_and_update s.tage ~pc:d.Executor.pc ~taken:d.Executor.taken in
    if predicted <> d.Executor.taken then begin
      s.branch_mispredicts <- s.branch_mispredicts + 1;
      obs_redirect s dyn_idx `Mispredict;
      s.waiting_dyn <- dyn_idx;
      `Blocked
    end
    else if d.Executor.taken then begin
      (* Correctly predicted taken: the target must come from the BTB. *)
      let target_ok = Btb.find_target s.btb ~pc:d.Executor.pc = d.Executor.next_pc in
      Btb.update s.btb ~pc:d.Executor.pc ~target:d.Executor.next_pc;
      if target_ok then `End_group
      else begin
        s.btb_misses <- s.btb_misses + 1;
        obs_redirect s dyn_idx `Btb_miss;
        s.fetch_blocked_until <- s.cycle + s.cfg.Cpu_config.btb_miss_penalty;
        `Blocked
      end
    end
    else `Continue
  | Isa.Jump -> `End_group
  | Isa.Call ->
    Ras.push s.ras (d.Executor.pc + 1);
    `End_group
  | Isa.Ret ->
    if Ras.pop_value s.ras = d.Executor.next_pc then `End_group
    else begin
      s.ras_mispredicts <- s.ras_mispredicts + 1;
      obs_redirect s dyn_idx `Ras_mispredict;
      s.waiting_dyn <- dyn_idx;
      `Blocked
    end
  | _ -> `Continue

let rec fetch_loop s n fetched =
  if fetched < s.cfg.Cpu_config.fetch_width && s.fetch_idx < n
     && s.fq_len < s.fq_cap
  then begin
    let dyn_idx = s.fetch_idx in
    let d = s.dyns.(dyn_idx) in
    let addr = Layout.addr_of s.layout d.Executor.pc in
    let line = addr / line_bytes in
    if line <> s.current_line then begin
      let ready = Memory_system.fetch_raw s.mem ~cycle:s.cycle ~addr lsr 2 in
      if ready > s.cycle + s.l1i_latency then
        (* Instruction cache miss: fetch resumes when the line arrives. *)
        s.fetch_blocked_until <- ready
      else begin
        s.current_line <- line;
        fetch_one s n fetched dyn_idx d
      end
    end
    else fetch_one s n fetched dyn_idx d
  end

and fetch_one s n fetched dyn_idx d =
  let tail = (s.fq_head + s.fq_len) mod s.fq_cap in
  s.fq_dyn.(tail) <- dyn_idx;
  s.fq_ready.(tail) <- s.cycle + s.cfg.Cpu_config.frontend_depth;
  s.fq_len <- s.fq_len + 1;
  (match s.obs with
  | Some tr -> Obs_tracer.on_fetch tr ~cycle:s.cycle ~dyn:dyn_idx ~pc:d.Executor.pc
  | None -> ());
  s.fetch_idx <- s.fetch_idx + 1;
  match fetch_control s dyn_idx d with
  | `Continue -> fetch_loop s n (fetched + 1)
  | `End_group | `Blocked -> ()

let fetch s =
  if s.cycle >= s.fetch_blocked_until && s.waiting_dyn < 0 then
    fetch_loop s (Array.length s.dyns) 0

(* FDIP: run ahead of fetch along the fetch target queue and prefetch
   instruction lines.  Cannot run past an unresolved misprediction. *)
let rec fdip_loop s limit budget scanned =
  if budget > 0 && scanned < 64 && s.fdip_idx < limit then begin
    let d = s.dyns.(s.fdip_idx) in
    let addr = Layout.addr_of s.layout d.Executor.pc in
    let budget =
      if addr / line_bytes <> s.current_line
         && not (Memory_system.probe_inst s.mem ~addr)
      then begin
        Memory_system.prefetch_inst s.mem ~cycle:s.cycle ~addr;
        budget - 1
      end
      else budget
    in
    s.fdip_idx <- s.fdip_idx + 1;
    fdip_loop s limit budget (scanned + 1)
  end

let fdip s =
  if s.cfg.Cpu_config.fdip then begin
    let n = Array.length s.dyns in
    let limit_dyn =
      if s.waiting_dyn >= 0 then s.waiting_dyn + 1
      else
        let ftq_end = s.fetch_idx + s.cfg.Cpu_config.ftq_entries in
        if ftq_end < n then ftq_end else n
    in
    if s.fdip_idx < s.fetch_idx then s.fdip_idx <- s.fetch_idx;
    fdip_loop s limit_dyn 2 0
  end

(* ------------------------------------------------------------------ *)
(* Top level.                                                          *)
(* ------------------------------------------------------------------ *)

(* Entries in [st_waiting] or [st_ready] are exactly those resident in a
   reservation-station slot. *)
let rec count_rs_resident s i acc =
  if i < 0 then acc
  else
    let st = s.rob_state.(i) in
    count_rs_resident s (i - 1)
      (if st = st_waiting || st = st_ready then acc + 1 else acc)

(* Microarchitectural warming state carried through functional
   fast-forward: the memory hierarchy plus the frontend predictors, and
   the trace position they have been warmed up to.  [run_window] can
   adopt these components directly, so a detail window opened after
   fast-forward starts from warmed state instead of cold tables. *)
type warm = {
  wmem : Memory_system.t;
  wbranch : Branch_warm.t;
  mutable wpos : int;  (* next dyn index to warm *)
  mutable wline : int;  (* current icache line, -1 = none *)
}

let make_state ?(criticality = No_tags) ?layout ?tracer ?warm ~start cfg
    (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let static_critical =
    match criticality with
    | Static_tags f -> f
    | No_tags | Dynamic_tags _ -> fun _ -> false
  in
  let layout =
    match layout with
    | Some l -> l
    | None -> Layout.compute ~critical:static_critical trace.Executor.prog
  in
  let critical_of =
    match criticality with
    | No_tags -> fun _ -> false
    | Static_tags f -> fun dyn_idx -> f dyns.(dyn_idx).Executor.pc
    | Dynamic_tags f -> f
  in
  let rob_size = cfg.Cpu_config.rob_size in
  let fq_cap = max 32 (cfg.Cpu_config.fetch_width * (cfg.Cpu_config.frontend_depth + 3)) in
  let mem, tage, btb, ras =
    match warm with
    | Some w -> (w.wmem, w.wbranch.Branch_warm.tage, w.wbranch.Branch_warm.btb,
                 w.wbranch.Branch_warm.ras)
    | None ->
      ( Memory_system.create cfg.Cpu_config.mem,
        Tage.create (),
        Btb.create ~entries:cfg.Cpu_config.btb_entries (),
        Ras.create ~depth:cfg.Cpu_config.ras_depth () )
  in
  let mem_params = Memory_system.params mem in
  let s =
    { cfg;
      dyns;
      layout;
      critical_of;
      mem;
      tage;
      btb;
      ras;
      sched =
        Scheduler.create ~seed:cfg.Cpu_config.seed ~slots:cfg.Cpu_config.rs_size
          cfg.Cpu_config.policy;
      rob_dyn = Array.make rob_size (-1);
      rob_state = Array.make rob_size st_empty;
      rob_deps_left = Array.make rob_size 0;
      rob_critical = Array.make rob_size false;
      rob_rs_slot = Array.make rob_size (-1);
      rob_forward = Array.make rob_size false;
      rob_level = Array.make rob_size 0;
      wakeup = Wakeup.create rob_size;
      rob_head = 0;
      rob_count = 0;
      rename = Array.make Isa.num_regs (-1);
      rs_owner = Array.make cfg.Cpu_config.rs_size (-1);
      store_map = Int_table.create cfg.Cpu_config.sq_size;
      lq_count = 0;
      sq_count = 0;
      wheel = Event_wheel.create ~horizon:wheel_horizon ();
      mshr_retry = Array.make cfg.Cpu_config.rs_size 0;
      mshr_retry_len = 0;
      fq_dyn = Array.make fq_cap 0;
      fq_ready = Array.make fq_cap 0;
      fq_cap;
      fq_head = 0;
      fq_len = 0;
      l1d_latency = mem_params.Memory_system.l1d_latency;
      l1i_latency = mem_params.Memory_system.l1i_latency;
      fetch_idx = start;
      fetch_blocked_until = 0;
      waiting_dyn = -1;
      current_line = -1;
      fdip_idx = start;
      cycle = 0;
      retired = 0;
      retire_stop = max_int;
      branches = 0;
      branch_mispredicts = 0;
      btb_misses = 0;
      ras_mispredicts = 0;
      stall_dram = 0;
      stall_llc = 0;
      stall_other_load = 0;
      stall_long_op = 0;
      stall_other = 0;
      mlp_sum_units = 0;
      mlp_cycles = 0;
      critical_retired = 0;
      upc_timeline =
        (if cfg.Cpu_config.record_upc then Some (Vec.create ~dummy:0 ()) else None);
      sb = (if cfg.Cpu_config.scoreboard then Some (Scoreboard.create cfg) else None);
      obs =
        (if cfg.Cpu_config.obs then
           Some (match tracer with Some t -> t | None -> Obs_tracer.create ())
         else None) }
  in
  (* Both observers share the scheduler's single instrumentation hook
     (selection is the only pipeline event born inside [Scheduler]). *)
  (match s.sb, s.obs with
  | None, None -> ()
  | sb, obs ->
    Scheduler.set_on_select s.sched
      (Some
         (fun ~slot ~prio_override ->
           let rob_idx = s.rs_owner.(slot) in
           (match sb with
           | Some sb ->
             Scoreboard.check_select sb s.sched ~cycle:s.cycle ~slot
               ~ready:(s.rob_state.(rob_idx) = st_ready)
               ~deps_left:s.rob_deps_left.(rob_idx)
           | None -> ());
           match obs with
           | Some tr ->
             Obs_tracer.on_select tr ~cycle:s.cycle ~dyn:s.rob_dyn.(rob_idx)
               ~prio_override
           | None -> ())));
  (match s.obs with
  | Some tr -> Memory_system.set_tracer s.mem (Some tr)
  | None -> ());
  s

(* Advance the pipeline until [target] instructions (counted from state
   creation) have retired. *)
let run_cycles s ~target ~max_cycles =
  while s.retired < target do
    if s.cycle > max_cycles then
      failwith
        (Printf.sprintf
           "Cpu_core.run: no forward progress (cycle %d, retired %d/%d) — model bug"
           s.cycle s.retired target);
    process_completions s;
    process_mshr_retries s;
    retire s;
    issue s;
    dispatch s;
    fetch s;
    fdip s;
    let outstanding = Memory_system.outstanding_misses s.mem ~cycle:s.cycle in
    if outstanding > 0 then begin
      s.mlp_sum_units <- s.mlp_sum_units + outstanding;
      s.mlp_cycles <- s.mlp_cycles + 1
    end;
    (match s.obs with
    | Some tr ->
      Obs_tracer.on_cycle tr ~rob_occupancy:s.rob_count
        ~rs_occupancy:(Scheduler.occupancy s.sched)
    | None -> ());
    (match s.sb with
    | Some sb ->
      Scoreboard.check_cycle sb s.sched ~cycle:s.cycle
        ~rs_resident:(count_rs_resident s (s.cfg.Cpu_config.rob_size - 1) 0)
    | None -> ());
    s.cycle <- s.cycle + 1
  done

(* Loads/stores in the dynamic index range [lo, hi). *)
let rec count_ops dyns lo hi loads stores =
  if lo = hi then (loads, stores)
  else
    match dyns.(lo).Executor.op with
    | Isa.Load -> count_ops dyns (lo + 1) hi (loads + 1) stores
    | Isa.Store -> count_ops dyns (lo + 1) hi loads (stores + 1)
    | _ -> count_ops dyns (lo + 1) hi loads stores

let run ?criticality ?layout ?tracer cfg (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  let s = make_state ?criticality ?layout ?tracer ~start:0 cfg trace in
  let max_cycles =
    match cfg.Cpu_config.max_cycles with
    | Some m -> m
    | None -> (400 * n) + 100_000
  in
  run_cycles s ~target:n ~max_cycles;
  let loads, stores = count_ops dyns 0 n 0 0 in
  { Cpu_stats.cycles = s.cycle;
    retired = s.retired;
    loads;
    stores;
    branches = s.branches;
    branch_mispredicts = s.branch_mispredicts;
    btb_misses = s.btb_misses;
    ras_mispredicts = s.ras_mispredicts;
    head_stalls =
      { Cpu_stats.dram_load = s.stall_dram;
        llc_load = s.stall_llc;
        other_load = s.stall_other_load;
        long_op = s.stall_long_op;
        other = s.stall_other };
    (* Each per-cycle observation is an integer, so the int sum converts
       exactly: bit-identical to the old float accumulation. *)
    mlp_sum = float_of_int s.mlp_sum_units;
    mlp_cycles = s.mlp_cycles;
    critical_retired = s.critical_retired;
    mem = Memory_system.stats s.mem;
    upc_timeline = Option.map Vec.to_array s.upc_timeline }

(* ------------------------------------------------------------------ *)
(* Warming (functional fast-forward) and windowed detail simulation.   *)
(* ------------------------------------------------------------------ *)

let warm_create cfg =
  { wmem = Memory_system.create cfg.Cpu_config.mem;
    wbranch =
      Branch_warm.create ~btb_entries:cfg.Cpu_config.btb_entries
        ~ras_depth:cfg.Cpu_config.ras_depth;
    wpos = 0;
    wline = -1 }

let warm_pos w = w.wpos

let warm_touch w layout (d : Executor.dyn) =
  (* Mirror the detail fetch stage's icache behaviour: one fetch per
     distinct consecutive line, not one per micro-op. *)
  let addr = Layout.addr_of layout d.Executor.pc in
  let line = addr / line_bytes in
  if line <> w.wline then begin
    Memory_system.warm_fetch w.wmem ~addr;
    w.wline <- line
  end;
  Branch_warm.touch w.wbranch d;
  (match d.Executor.op with
  | Isa.Load | Isa.Prefetch -> Memory_system.warm_load w.wmem ~addr:d.Executor.addr
  | Isa.Store -> Memory_system.warm_store w.wmem ~addr:d.Executor.addr
  | _ -> ());
  w.wpos <- w.wpos + 1

let warm_checkpoint_magic = "crisp-warm1:"

let warm_checkpoint w =
  warm_checkpoint_magic
  ^ Marshal.to_string
      ( w.wpos,
        w.wline,
        Memory_system.checkpoint w.wmem,
        Branch_warm.checkpoint w.wbranch )
      []

let warm_restore blob =
  let n = String.length warm_checkpoint_magic in
  if String.length blob < n || String.sub blob 0 n <> warm_checkpoint_magic then
    invalid_arg "Cpu_core.warm_restore: not a warm-state checkpoint";
  let wpos, wline, mem_blob, branch_blob =
    (Marshal.from_string blob n : int * int * string * string)
  in
  { wmem = Memory_system.restore mem_blob;
    wbranch = Branch_warm.restore branch_blob;
    wpos;
    wline }

(* Cumulative counter snapshot, for expressing a window as a delta. *)
type counters = {
  c_cycle : int;
  c_branches : int;
  c_branch_mispredicts : int;
  c_btb_misses : int;
  c_ras_mispredicts : int;
  c_stall_dram : int;
  c_stall_llc : int;
  c_stall_other_load : int;
  c_stall_long_op : int;
  c_stall_other : int;
  c_mlp_sum_units : int;
  c_mlp_cycles : int;
  c_critical_retired : int;
  c_mem : Memory_system.stats;
}

let snap_counters s =
  { c_cycle = s.cycle;
    c_branches = s.branches;
    c_branch_mispredicts = s.branch_mispredicts;
    c_btb_misses = s.btb_misses;
    c_ras_mispredicts = s.ras_mispredicts;
    c_stall_dram = s.stall_dram;
    c_stall_llc = s.stall_llc;
    c_stall_other_load = s.stall_other_load;
    c_stall_long_op = s.stall_long_op;
    c_stall_other = s.stall_other;
    c_mlp_sum_units = s.mlp_sum_units;
    c_mlp_cycles = s.mlp_cycles;
    c_critical_retired = s.critical_retired;
    c_mem = Memory_system.stats s.mem }

let run_window ?criticality ?layout ?warm ~start ~warmup ~measure cfg
    (trace : Executor.t) =
  let dyns = trace.Executor.dyns in
  let n = Array.length dyns in
  if start < 0 || start > n then invalid_arg "Cpu_core.run_window: start out of range";
  if warmup < 0 || measure <= 0 then
    invalid_arg "Cpu_core.run_window: warmup must be >= 0 and measure > 0";
  let avail = n - start in
  let warmup = if warmup < avail then warmup else avail in
  let target =
    let t = warmup + measure in
    if t < avail && t >= 0 (* t < 0 on overflow *) then t else avail
  in
  let s = make_state ?criticality ?layout ?warm ~start cfg trace in
  (* The window's cycle counter starts at zero; state adopted from a warm
     carrier (or a restored checkpoint) may hold stamps from a previous
     window's time base, which must not read as in-flight work here. *)
  (match warm with Some _ -> Memory_system.quiesce s.mem | None -> ());
  let max_cycles =
    match cfg.Cpu_config.max_cycles with
    | Some m -> m
    | None -> (400 * target) + 100_000
  in
  (* Retirement is width-granular; the retire ceiling makes both window
     boundaries exact, so chunked runs partition the trace with no
     overlap and stitched counts sum to the full-run counts. *)
  s.retire_stop <- warmup;
  run_cycles s ~target:warmup ~max_cycles;
  let warmed = s.retired in
  let before = snap_counters s in
  s.retire_stop <- target;
  run_cycles s ~target ~max_cycles;
  (match warm with
  | Some w ->
    w.wpos <- start + s.retired;
    w.wline <- -1
  | None -> ());
  let measured = s.retired - warmed in
  let loads, stores = count_ops dyns (start + warmed) (start + s.retired) 0 0 in
  { Cpu_stats.cycles = s.cycle - before.c_cycle;
    retired = measured;
    loads;
    stores;
    branches = s.branches - before.c_branches;
    branch_mispredicts = s.branch_mispredicts - before.c_branch_mispredicts;
    btb_misses = s.btb_misses - before.c_btb_misses;
    ras_mispredicts = s.ras_mispredicts - before.c_ras_mispredicts;
    head_stalls =
      { Cpu_stats.dram_load = s.stall_dram - before.c_stall_dram;
        llc_load = s.stall_llc - before.c_stall_llc;
        other_load = s.stall_other_load - before.c_stall_other_load;
        long_op = s.stall_long_op - before.c_stall_long_op;
        other = s.stall_other - before.c_stall_other };
    mlp_sum = float_of_int (s.mlp_sum_units - before.c_mlp_sum_units);
    mlp_cycles = s.mlp_cycles - before.c_mlp_cycles;
    critical_retired = s.critical_retired - before.c_critical_retired;
    mem = Memory_system.diff_stats ~after:(Memory_system.stats s.mem) ~before:before.c_mem;
    upc_timeline = Option.map Vec.to_array s.upc_timeline }
