(* Intrusive wakeup lists: who to wake when a ROB entry completes.

   Replaces the per-entry [dependents : int list].  Each ROB slot owns a
   list head; list cells live in a flat [next] array, one cell per
   (consumer, link) edge where [link] indexes the consumer's producer
   operands (src1, src2, store-to-load forward — at most
   [links_per_node]).  A consumer can therefore sit on up to three
   producers' lists at once without any cell ever being allocated. *)

let links_per_node = 3

type t = {
  head : int array;  (* per producer slot: first edge id, -1 = empty *)
  next : int array;  (* per edge id: next edge id on the same list *)
}

let create n =
  { head = Array.make n (-1); next = Array.make (n * links_per_node) (-1) }

let capacity t = Array.length t.head

let push t ~producer ~consumer ~link =
  if link < 0 || link >= links_per_node then invalid_arg "Wakeup.push: bad link";
  let edge = (consumer * links_per_node) + link in
  t.next.(edge) <- t.head.(producer);
  t.head.(producer) <- edge

let pop t producer =
  let edge = t.head.(producer) in
  if edge = -1 then -1
  else begin
    t.head.(producer) <- t.next.(edge);
    t.next.(edge) <- -1;
    edge / links_per_node
  end

let reset t producer = t.head.(producer) <- -1

let is_empty t producer = t.head.(producer) = -1
