type t = {
  n : int;
  masks : Bitset.t array;  (* masks.(s): bits of slots strictly older than s *)
  occ : Bitset.t;
}

let create n = { n; masks = Array.init n (fun _ -> Bitset.create n); occ = Bitset.create n }

let slots t = t.n

let occupied t s = Bitset.mem t.occ s

let insert t s =
  if occupied t s then invalid_arg "Age_matrix.insert: slot already occupied";
  (* Everything currently occupied is older than the newcomer. *)
  Bitset.copy_into ~src:t.occ ~dst:t.masks.(s);
  Bitset.set t.occ s

let remove t s =
  if not (occupied t s) then invalid_arg "Age_matrix.remove: slot not occupied";
  Bitset.clear t.occ s;
  (* Clear the freed slot from every age mask so a future occupant of this
     slot is seen as younger (the hardware clears the column in parallel). *)
  Bitset.clear_bit_everywhere t.masks s

let pick_oldest t candidates =
  let winner = ref (-1) in
  Bitset.iter_set
    (fun s ->
      if !winner = -1 && Bitset.inter_empty t.masks.(s) candidates then winner := s)
    candidates;
  !winner

let older t a b = Bitset.mem t.masks.(b) a

let self_check t =
  let fail = ref None in
  let report fmt = Format.kasprintf (fun s -> if !fail = None then fail := Some s) fmt in
  for a = 0 to t.n - 1 do
    if occupied t a then begin
      if Bitset.mem t.masks.(a) a then report "slot %d is older than itself" a;
      Bitset.iter_set
        (fun o ->
          if not (occupied t o) then
            report "age mask of slot %d names unoccupied slot %d" a o)
        t.masks.(a);
      for b = a + 1 to t.n - 1 do
        if occupied t b then begin
          let ab = older t a b and ba = older t b a in
          if ab && ba then report "age order between slots %d and %d is symmetric" a b;
          if (not ab) && not ba then
            report "occupied slots %d and %d have no age order" a b
        end
      done
    end
  done;
  !fail
