(* Age order of a RAND instruction queue.

   The hardware (paper Section 4.2) keeps one age-mask row per slot and
   picks the oldest candidate with an AND + reduction-NOR per row.  A
   software row-of-bitmasks transcription of that makes [remove] clear a
   column across every row — O(slots) per issued instruction — and
   [pick_oldest] intersect a mask per candidate.  The order the matrix
   encodes is just insertion order, so we store it directly: a
   monotonically increasing insertion stamp per occupied slot.  The
   oldest candidate is the stamp argmin (same winner as the hardware
   reduction, stamps are unique), [insert]/[remove] are O(1), and the
   63-bit stamp counter cannot wrap in any realistic run. *)

type t = {
  n : int;
  stamp : int array;  (* insertion stamp; meaningful while occupied *)
  occ : Bitset.t;
  mutable clock : int;
}

let create n = { n; stamp = Array.make n 0; occ = Bitset.create n; clock = 0 }

let slots t = t.n

let occupied t s = Bitset.mem t.occ s

let insert t s =
  if occupied t s then invalid_arg "Age_matrix.insert: slot already occupied";
  t.clock <- t.clock + 1;
  t.stamp.(s) <- t.clock;
  Bitset.set t.occ s

let remove t s =
  if not (occupied t s) then invalid_arg "Age_matrix.remove: slot not occupied";
  Bitset.clear t.occ s

(* Stamp argmin over the candidate bits; stamps are unique, so the
   winner does not depend on tie-breaking. *)
let pick_oldest t candidates = Bitset.argmin candidates t.stamp

let older t a b = t.stamp.(a) < t.stamp.(b)

let self_check t =
  let fail = ref None in
  let report fmt = Format.kasprintf (fun s -> if !fail = None then fail := Some s) fmt in
  for a = 0 to t.n - 1 do
    if occupied t a then begin
      if t.stamp.(a) <= 0 || t.stamp.(a) > t.clock then
        report "slot %d has stamp %d outside (0, clock=%d]" a t.stamp.(a) t.clock;
      if older t a a then report "slot %d is older than itself" a;
      for b = a + 1 to t.n - 1 do
        if occupied t b then begin
          let ab = older t a b and ba = older t b a in
          if ab && ba then report "age order between slots %d and %d is symmetric" a b;
          if (not ab) && not ba then
            report "occupied slots %d and %d have no age order" a b
        end
      done
    end
  done;
  !fail
