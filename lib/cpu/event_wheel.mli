(** Fixed-horizon event wheel: the cycle loop's completion calendar.

    Pre-allocated ring of int vectors indexed by [cycle mod horizon], with
    a small overflow bucket for events scheduled further out than the
    horizon (unbounded DRAM queueing delays).  Steady state performs no
    minor-heap allocation.

    Consumer contract: {!pop} must be drained to exhaustion on every cycle,
    in nondecreasing cycle order — that is what guarantees a ring slot is
    empty again before the wheel wraps back onto it. *)

type t

val create : ?slot_capacity:int -> horizon:int -> unit -> t
(** [horizon] must be a positive power of two, at least the common-case
    maximum event latency (events beyond it still work, via the overflow
    bucket, just more slowly). *)

val add : t -> now:int -> cycle:int -> int -> unit
(** Schedule payload [data >= 0] for [cycle > now]. *)

val pop : t -> cycle:int -> int
(** Next payload due at [cycle], or [-1] when none remain.  Events of one
    cycle are delivered newest-first (LIFO), matching the
    prepend-then-iterate order of the Hashtbl calendar it replaces.
    Overflow-bucket entries whose due cycle has already passed are also
    delivered (late) rather than stranded: a consumer that honours the
    drain-every-cycle contract never observes the difference, but one
    whose cycle counter jumps — e.g. resuming from a restored checkpoint —
    must not leave [pending] events unreachable. *)

val clear : t -> unit
(** Drop all scheduled events (ring slots and overflow bucket), keeping
    the allocated slot capacity.  Used when a checkpoint restore rebuilds
    the completion calendar at a new time origin. *)

val pending : t -> int
(** Events scheduled and not yet popped. *)

val horizon : t -> int

val overflow_length : t -> int
(** Events currently parked in the overflow bucket (diagnostics). *)
