type t = {
  fetch_width : int;
  issue_width : int;
  retire_width : int;
  rob_size : int;
  rs_size : int;
  lq_size : int;
  sq_size : int;
  alu_ports : int;
  load_ports : int;
  store_ports : int;
  frontend_depth : int;
  redirect_penalty : int;
  btb_miss_penalty : int;
  btb_entries : int;
  ras_depth : int;
  ftq_entries : int;
  fdip : bool;
  policy : Scheduler.policy;
  mem : Memory_system.params;
  seed : int;
  record_upc : bool;
  max_cycles : int option;
  scoreboard : bool;
  obs : bool;
}

let skylake =
  { fetch_width = 6;
    issue_width = 6;
    retire_width = 6;
    rob_size = 224;
    rs_size = 96;
    lq_size = 64;
    sq_size = 128;
    alu_ports = 4;
    load_ports = 2;
    store_ports = 1;
    frontend_depth = 5;
    redirect_penalty = 12;
    btb_miss_penalty = 2;
    btb_entries = 8192;
    ras_depth = 32;
    ftq_entries = 128;
    fdip = true;
    policy = Scheduler.Oldest_ready;
    mem = Memory_system.skylake;
    seed = 0x51ab;
    record_upc = false;
    max_cycles = None;
    scoreboard = false;
    obs = false }

let with_policy policy t = { t with policy }

let with_issue_width issue_width t = { t with issue_width }

let with_scoreboard scoreboard t = { t with scoreboard }

let with_obs obs t = { t with obs }

let with_window ~rs ~rob t =
  { t with
    rs_size = rs;
    rob_size = rob;
    lq_size = max 16 (t.lq_size * rob / t.rob_size);
    sq_size = max 16 (t.sq_size * rob / t.rob_size) }

let policy_name = function
  | Scheduler.Oldest_ready -> "6-oldest-ready-instructions-first"
  | Scheduler.Crisp -> "CRISP (critical-first age matrix)"
  | Scheduler.Random_ready -> "random-ready"

let pp fmt t =
  let row name value = Format.fprintf fmt "  %-30s %s@." name value in
  Format.fprintf fmt "Simulated system:@.";
  row "Frontend width and retirement" (Printf.sprintf "%d-way" t.fetch_width);
  row "Issue (selection) width" (Printf.sprintf "%d per cycle" t.issue_width);
  row "Functional units"
    (Printf.sprintf "%d ALU, %d Load, %d Store" t.alu_ports t.load_ports t.store_ports);
  row "Branch predictor" "TAGE";
  row "Branch target buffer (BTB)" (Printf.sprintf "%d entries" t.btb_entries);
  row "ROB" (Printf.sprintf "%d entries" t.rob_size);
  row "Reservation station" (Printf.sprintf "%d entries (unified)" t.rs_size);
  row "Scheduler" (policy_name t.policy);
  row "Data prefetcher"
    (match (t.mem.Memory_system.enable_bop, t.mem.Memory_system.enable_stream) with
    | true, true -> "BOP and Stream"
    | true, false -> "BOP"
    | false, true -> "Stream"
    | false, false -> "none");
  row "Instruction prefetcher"
    (if t.fdip then Printf.sprintf "FDIP, %d FTQ entries" t.ftq_entries else "none");
  row "Load buffer" (Printf.sprintf "%d entries" t.lq_size);
  row "Store buffer" (Printf.sprintf "%d entries" t.sq_size);
  let c (p : Cache.params) =
    Printf.sprintf "%d KiB, %d-way" (p.Cache.size_bytes / 1024) p.Cache.assoc
  in
  row "L1 instruction cache" (c t.mem.Memory_system.l1i);
  row "L1 data cache" (c t.mem.Memory_system.l1d);
  row "LLC unified cache" (c t.mem.Memory_system.llc);
  row "L1 D-cache latency"
    (Printf.sprintf "%d cycles" t.mem.Memory_system.l1d_latency);
  row "L1 I-cache latency"
    (Printf.sprintf "%d cycles" t.mem.Memory_system.l1i_latency);
  row "L3 cache latency" (Printf.sprintf "%d cycles" t.mem.Memory_system.llc_latency);
  row "Memory" "DDR4-2400 (1 channel)"
