exception Violation of string

type t = {
  policy : Scheduler.policy;
  mutable checks : int;
}

let create (cfg : Cpu_config.t) = { policy = cfg.Cpu_config.policy; checks = 0 }

let fail fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

let checks_run t = t.checks

(* Candidates of the selection that just returned [slot]: ready slots not
   yet selected this cycle, plus [slot] itself (its selected bit was set by
   the scheduler before we ran). *)
let iter_candidates sched ~slot f =
  for s = 0 to Scheduler.slots sched - 1 do
    if
      Scheduler.slot_occupied sched s
      && Scheduler.slot_ready sched s
      && ((not (Scheduler.slot_selected sched s)) || s = slot)
    then f s
  done

let check_select t sched ~cycle ~slot ~ready ~deps_left =
  t.checks <- t.checks + 1;
  if not ready then
    fail "cycle %d: slot %d selected while its ROB entry is not ready" cycle slot;
  if deps_left <> 0 then
    fail "cycle %d: slot %d selected with %d unresolved source operands" cycle slot
      deps_left;
  if not (Scheduler.slot_ready sched slot) then
    fail "cycle %d: slot %d selected without its BID bit" cycle slot;
  match t.policy with
  | Scheduler.Random_ready -> ()
  | Scheduler.Oldest_ready ->
    iter_candidates sched ~slot (fun c ->
        if c <> slot && Scheduler.slot_older sched c slot then
          fail "cycle %d: oldest-ready pick %d bypassed older ready slot %d" cycle slot
            c)
  | Scheduler.Crisp ->
    let critical = Scheduler.slot_critical sched slot in
    iter_candidates sched ~slot (fun c ->
        if c <> slot then begin
          if Scheduler.slot_critical sched c then begin
            if not critical then
              fail
                "cycle %d: non-critical pick %d bypassed ready critical slot %d \
                 (PRIO violated)"
                cycle slot c;
            if Scheduler.slot_older sched c slot then
              fail "cycle %d: critical pick %d bypassed older ready critical slot %d"
                cycle slot c
          end
          else if (not critical) && Scheduler.slot_older sched c slot then
            fail "cycle %d: fallback pick %d bypassed older ready slot %d" cycle slot c
        end)

let check_retire t ~cycle ~dyn ~expected =
  t.checks <- t.checks + 1;
  if dyn <> expected then
    fail "cycle %d: out-of-order retirement — ROB head holds dyn %d, expected %d"
      cycle dyn expected

let check_cycle t sched ~cycle ~rs_resident =
  t.checks <- t.checks + 1;
  let occupancy = Scheduler.occupancy sched in
  if occupancy <> rs_resident then
    fail
      "cycle %d: RS occupancy not conserved — scheduler holds %d slots, ROB has %d \
       resident entries"
      cycle occupancy rs_resident;
  if cycle land 63 = 0 then begin
    t.checks <- t.checks + 1;
    match Scheduler.self_check sched with
    | Some msg -> fail "cycle %d: %s" cycle msg
    | None -> ()
  end
