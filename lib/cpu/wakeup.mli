(** Intrusive wakeup lists over ROB slots.

    Flat head/next int arrays replacing the [dependents : int list] field:
    each (consumer, producer-operand) edge has a dedicated pre-allocated
    cell, so threading and popping consumers never touches the heap.
    Popping yields consumers newest-first (LIFO), the order of the
    cons-then-iterate lists it replaces. *)

type t

val links_per_node : int
(** Producer operands a consumer can wait on at once (src1, src2,
    store-to-load forward). *)

val create : int -> t
(** Lists over [n] slots; all initially empty. *)

val capacity : t -> int

val push : t -> producer:int -> consumer:int -> link:int -> unit
(** Thread [consumer] onto [producer]'s list via the consumer's operand
    [link] (0 <= link < links_per_node).  A given (consumer, link) pair
    must be on at most one list at a time — the caller guarantees this by
    using a distinct link per producer operand. *)

val pop : t -> int -> int
(** Detach and return the most recently pushed consumer of the producer,
    or [-1] when the list is empty. *)

val reset : t -> int -> unit
(** Empty the producer's list without walking it (slot reuse on flush). *)

val is_empty : t -> int -> bool
