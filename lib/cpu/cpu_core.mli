(** Cycle-level out-of-order core.

    The model covers the mechanisms CRISP interacts with (paper Sections 2
    and 4): a decoupled frontend with TAGE + BTB + RAS and FDIP running
    ahead along the FTQ; register renaming into a circular ROB; a unified
    reservation station with RAND slot allocation and an age-matrix picker;
    per-class functional-unit ports; load/store queues with store-to-load
    forwarding; the full cache/DRAM hierarchy with BOP + stream
    prefetchers; and in-order retirement with ROB-head stall accounting.

    It is trace-driven: the dynamic instruction stream is the correct path,
    and a branch misprediction is modelled as the frontend producing
    nothing from the fetch of the mispredicted branch until it executes
    plus a redirect penalty.  Wrong-path execution is therefore not
    simulated; this is the standard trace-driven simplification and it is
    conservative for CRISP (wrong-path slices could also warm the cache). *)

(** How micro-ops acquire the CRISP criticality tag. *)
type criticality =
  | No_tags  (** plain OOO baseline *)
  | Static_tags of (int -> bool)
      (** per static pc — CRISP's binary-rewriting prefix *)
  | Dynamic_tags of (int -> bool)
      (** per dynamic instruction index — hardware schemes like IBDA whose
          tags depend on the state of on-chip tables at fetch time *)

val run :
  ?criticality:criticality -> ?layout:Layout.t -> ?tracer:Obs_tracer.t ->
  Cpu_config.t -> Executor.t -> Cpu_stats.t
(** Simulate the whole trace and return aggregate statistics.  [layout]
    defaults to the byte layout induced by the criticality tags (critical
    instructions carry a one-byte prefix, which grows the fetch footprint —
    Section 5.7).

    When [Cpu_config.obs] is set the run emits pipeline events into
    [tracer] (a fresh tracer is created when none is supplied); with it
    unset [tracer] is ignored and no observability work happens.  The
    tracer is a write-only sink, so the returned statistics are identical
    either way.

    @raise Failure if the pipeline fails to make progress within the
    configured cycle budget (indicates a model bug, not a workload
    property). *)

(** {1 Sampled and time-parallel simulation}

    Primitives for the SMARTS-style sampling engines in [lib/sample]:
    functional fast-forward carries microarchitectural state between
    detail windows, and checkpoints let one long trace be split into
    chunks simulated concurrently. *)

type warm
(** Microarchitectural state carried through functional fast-forward: a
    memory hierarchy in warming mode plus the TAGE/BTB/RAS predictors,
    and the trace position they have been warmed up to.  Not
    thread-safe; each concurrent chunk restores its own copy. *)

val warm_create : Cpu_config.t -> warm

val warm_pos : warm -> int
(** The next dynamic instruction index to be warmed (advanced by both
    {!warm_touch} and {!run_window}). *)

val warm_touch : warm -> Layout.t -> Executor.dyn -> unit
(** Fast-forward over one dynamic micro-op: touch the instruction cache
    for its fetch line, replay it into the branch predictors, and warm
    the data hierarchy for its memory access — with no timing model.
    Must be called in trace order. *)

val warm_checkpoint : warm -> string
(** Serialise the warm state as an opaque blob.  Restoring yields an
    independent deep copy, so one checkpoint can seed several concurrent
    chunk simulations. *)

val warm_restore : string -> warm
(** @raise Invalid_argument if the blob is not a warm-state
    checkpoint. *)

val run_window :
  ?criticality:criticality ->
  ?layout:Layout.t ->
  ?warm:warm ->
  start:int ->
  warmup:int ->
  measure:int ->
  Cpu_config.t ->
  Executor.t ->
  Cpu_stats.t
(** Detail-simulate one sampling unit: start fetching at dynamic index
    [start], retire [warmup] instructions to absorb the cold-start bias,
    then measure the next [measure] instructions (both clamped to the
    end of the trace).  A retirement ceiling makes both boundaries
    exact — a [chunks]-way split of a trace measures each instruction
    exactly once — and the returned statistics cover exactly the
    measured window: [retired] is the measured count, [cycles] the
    measured-window cycles.

    With [warm] supplied the window adopts its memory hierarchy and
    predictors in place (quiescing stale absolute-cycle stamps first,
    since the window's cycle counter restarts at zero) and advances
    [warm_pos] past the instructions it retired; without it the window
    starts cold.  [loads]/[stores] count the measured dynamic range, and
    [mem] is the delta of hierarchy counters over the measured window.

    @raise Invalid_argument if [start] is out of range, [warmup < 0] or
    [measure <= 0]. *)
