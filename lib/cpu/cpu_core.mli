(** Cycle-level out-of-order core.

    The model covers the mechanisms CRISP interacts with (paper Sections 2
    and 4): a decoupled frontend with TAGE + BTB + RAS and FDIP running
    ahead along the FTQ; register renaming into a circular ROB; a unified
    reservation station with RAND slot allocation and an age-matrix picker;
    per-class functional-unit ports; load/store queues with store-to-load
    forwarding; the full cache/DRAM hierarchy with BOP + stream
    prefetchers; and in-order retirement with ROB-head stall accounting.

    It is trace-driven: the dynamic instruction stream is the correct path,
    and a branch misprediction is modelled as the frontend producing
    nothing from the fetch of the mispredicted branch until it executes
    plus a redirect penalty.  Wrong-path execution is therefore not
    simulated; this is the standard trace-driven simplification and it is
    conservative for CRISP (wrong-path slices could also warm the cache). *)

(** How micro-ops acquire the CRISP criticality tag. *)
type criticality =
  | No_tags  (** plain OOO baseline *)
  | Static_tags of (int -> bool)
      (** per static pc — CRISP's binary-rewriting prefix *)
  | Dynamic_tags of (int -> bool)
      (** per dynamic instruction index — hardware schemes like IBDA whose
          tags depend on the state of on-chip tables at fetch time *)

val run :
  ?criticality:criticality -> ?layout:Layout.t -> ?tracer:Obs_tracer.t ->
  Cpu_config.t -> Executor.t -> Cpu_stats.t
(** Simulate the whole trace and return aggregate statistics.  [layout]
    defaults to the byte layout induced by the criticality tags (critical
    instructions carry a one-byte prefix, which grows the fetch footprint —
    Section 5.7).

    When [Cpu_config.obs] is set the run emits pipeline events into
    [tracer] (a fresh tracer is created when none is supplied); with it
    unset [tracer] is ignored and no observability work happens.  The
    tracer is a write-only sink, so the returned statistics are identical
    either way.

    @raise Failure if the pipeline fails to make progress within the
    configured cycle budget (indicates a model bug, not a workload
    property). *)
