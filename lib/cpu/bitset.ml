let bits_per_word = 63

type t = {
  bits : int;
  words : int array;
}

let create bits = { bits; words = Array.make ((bits + bits_per_word - 1) / bits_per_word) 0 }

let width t = t.bits

let check t i = if i < 0 || i >= t.bits then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_width a b = if a.bits <> b.bits then invalid_arg "Bitset: width mismatch"

let copy_into ~src ~dst =
  same_width src dst;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let inter_into ~a ~b ~dst =
  same_width a b;
  same_width a dst;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land b.words.(i)
  done

let diff_into ~a ~b ~dst =
  same_width a b;
  same_width a dst;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land lnot b.words.(i)
  done

(* The scan helpers below live at top level and thread every piece of
   state through their arguments: without flambda, a local [let rec]
   that captures its environment allocates a closure block on the minor
   heap at every call of the enclosing function, and these run in the
   per-cycle select/wakeup path. *)

let rec inter_empty_from aw bw n i =
  i = n || (aw.(i) land bw.(i) = 0 && inter_empty_from aw bw n (i + 1))

let inter_empty a b =
  same_width a b;
  inter_empty_from a.words b.words (Array.length a.words) 0

(* Number of trailing zeros of a single-bit word, by binary search
   (straight-line: a [ref] here would be a 2-word allocation per call). *)
let bit_index bit =
  let s5 = if bit land 0x7FFFFFFF = 0 then 31 else 0 in
  let b = bit lsr s5 in
  let s4 = if b land 0xFFFF = 0 then 16 else 0 in
  let b = b lsr s4 in
  let s3 = if b land 0xFF = 0 then 8 else 0 in
  let b = b lsr s3 in
  let s2 = if b land 0xF = 0 then 4 else 0 in
  let b = b lsr s2 in
  let s1 = if b land 0x3 = 0 then 2 else 0 in
  let b = b lsr s1 in
  s5 + s4 + s3 + s2 + s1 + (if b land 0x1 = 0 then 1 else 0)

let iter_set f t =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let bit = !w land - !w in
      f ((wi * bits_per_word) + bit_index bit);
      w := !w land lnot bit
    done
  done

(* Kernighan popcount on one word; the 64-bit SWAR constants don't fit
   OCaml's 63-bit immediates, and the word population is small here. *)
let rec popcount w acc = if w = 0 then acc else popcount (w land (w - 1)) (acc + 1)

let rec count_words words wi acc =
  if wi < 0 then acc else count_words words (wi - 1) (popcount words.(wi) acc)

let count t = count_words t.words (Array.length t.words - 1) 0

let rec first_set_word words nwords wi =
  if wi >= nwords then -1
  else if words.(wi) = 0 then first_set_word words nwords (wi + 1)
  else
    let w = words.(wi) in
    (wi * bits_per_word) + bit_index (w land -w)

let next_set t i =
  (* First set bit at index >= i, or -1.  [i] may equal [width]. *)
  if i >= t.bits then -1
  else begin
    check t i;
    let wi = i / bits_per_word in
    let w = t.words.(wi) land (lnot 0 lsl (i mod bits_per_word)) in
    if w <> 0 then (wi * bits_per_word) + bit_index (w land -w)
    else first_set_word t.words (Array.length t.words) (wi + 1)
  end

let rec nth_bit wi w n =
  let low = w land -w in
  if n = 0 then (wi * bits_per_word) + bit_index low
  else nth_bit wi (w land lnot low) (n - 1)

let rec nth_word words nwords wi n =
  if wi >= nwords then -1
  else
    let c = popcount words.(wi) 0 in
    if n < c then nth_bit wi words.(wi) n else nth_word words nwords (wi + 1) (n - c)

(* Index of the [n]-th (0-based) set bit in increasing order, or -1. *)
let nth_set t n = if n < 0 then -1 else nth_word t.words (Array.length t.words) 0 n

(* Argmin over set bits keyed by an external array: the select path's
   inner loop.  Scanning the words directly (one Kernighan step per set
   bit) replaces a [next_set] call per candidate — each of which redid
   the bounds check, word split, and trailing-zero search from scratch.
   Ties keep the earlier index, matching a left-to-right linear scan. *)
let rec argmin_in_word keys w base best =
  if w = 0 then best
  else
    let bit = w land -w in
    let i = base + bit_index bit in
    argmin_in_word keys
      (w land (w - 1))
      base
      (if best = -1 || keys.(i) < keys.(best) then i else best)

let rec argmin_words keys words nwords wi best =
  if wi = nwords then best
  else
    argmin_words keys words nwords (wi + 1)
      (argmin_in_word keys words.(wi) (wi * bits_per_word) best)

let argmin t keys = argmin_words keys t.words (Array.length t.words) 0 (-1)

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let clear_bit_everywhere sets i =
  (* Plain loop: an [Array.iter] closure here would allocate once per
     issued instruction (this clears the age-matrix column). *)
  let wi = i / bits_per_word in
  let mask = lnot (1 lsl (i mod bits_per_word)) in
  for k = 0 to Array.length sets - 1 do
    let w = sets.(k).words in
    w.(wi) <- w.(wi) land mask
  done
