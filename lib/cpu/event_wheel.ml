(* Calendar queue for completion events, replacing the
   [(int, int list) Hashtbl.t] calendar of the cycle loop.

   A ring of pre-allocated int vectors indexed by [cycle land (horizon-1)].
   The consumer drains every cycle in nondecreasing order, so a slot is
   always empty again by the time the wheel wraps back onto it — any event
   scheduled less than [horizon] cycles ahead goes straight into its slot.
   Events further out than the horizon (pathological DRAM queueing delays:
   [Dram.busy_until] accumulates without bound) land in a small overflow
   bucket scanned only on cycles where it is non-empty.

   Steady state allocates nothing: slot vectors grow by doubling on the
   rare capacity hit and are then reused forever. *)

type t = {
  horizon : int;           (* power of two *)
  mask : int;
  slot_data : int array array;  (* per-slot event payloads, newest last *)
  slot_len : int array;
  mutable ov_cycle : int array;  (* overflow bucket, parallel arrays *)
  mutable ov_data : int array;
  mutable ov_len : int;
  mutable pending : int;
}

let default_slot_capacity = 8

let create ?(slot_capacity = default_slot_capacity) ~horizon () =
  if horizon <= 0 || horizon land (horizon - 1) <> 0 then
    invalid_arg "Event_wheel.create: horizon must be a positive power of two";
  { horizon;
    mask = horizon - 1;
    slot_data = Array.init horizon (fun _ -> Array.make slot_capacity 0);
    slot_len = Array.make horizon 0;
    ov_cycle = Array.make 16 0;
    ov_data = Array.make 16 0;
    ov_len = 0;
    pending = 0 }

let horizon t = t.horizon

let pending t = t.pending

let overflow_length t = t.ov_len

let grow a = Array.append a (Array.make (Array.length a) 0)

let add t ~now ~cycle data =
  if data < 0 then invalid_arg "Event_wheel.add: data must be non-negative";
  if cycle <= now then invalid_arg "Event_wheel.add: cycle must be in the future";
  if cycle - now < t.horizon then begin
    let s = cycle land t.mask in
    let len = t.slot_len.(s) in
    if len = Array.length t.slot_data.(s) then
      t.slot_data.(s) <- grow t.slot_data.(s);
    t.slot_data.(s).(len) <- data;
    t.slot_len.(s) <- len + 1
  end
  else begin
    if t.ov_len = Array.length t.ov_cycle then begin
      t.ov_cycle <- grow t.ov_cycle;
      t.ov_data <- grow t.ov_data
    end;
    t.ov_cycle.(t.ov_len) <- cycle;
    t.ov_data.(t.ov_len) <- data;
    t.ov_len <- t.ov_len + 1
  end;
  t.pending <- t.pending + 1

(* Overflow scan: return the payload of the last bucket entry due at or
   before [cycle], compacting order-preservingly, or -1.  The bucket is
   nearly always empty; entries due this cycle are rarer still.

   Due means [<= cycle], not [= cycle]: under the drain-every-cycle
   contract the two are equivalent (an entry is popped on the cycle it
   falls due), but a consumer whose cycle counter {e jumps} — a restored
   checkpoint rebasing time, a window that fast-forwards past a quiet
   region — would strand an exact-match entry forever: its due cycle is
   skipped, [pending] never reaches zero, and the core's forward-progress
   guard trips.  Overdue entries are instead delivered at the first pop
   that reaches them. *)
let rec pop_overflow t ~cycle i =
  if i < 0 then -1
  else if t.ov_cycle.(i) <= cycle then begin
    let data = t.ov_data.(i) in
    (* shift the tail down one to keep insertion order *)
    let tail = t.ov_len - i - 1 in
    if tail > 0 then begin
      Array.blit t.ov_cycle (i + 1) t.ov_cycle i tail;
      Array.blit t.ov_data (i + 1) t.ov_data i tail
    end;
    t.ov_len <- t.ov_len - 1;
    data
  end
  else pop_overflow t ~cycle (i - 1)

let pop t ~cycle =
  let s = cycle land t.mask in
  let len = t.slot_len.(s) in
  if len > 0 then begin
    t.slot_len.(s) <- len - 1;
    t.pending <- t.pending - 1;
    t.slot_data.(s).(len - 1)
  end
  else if t.ov_len > 0 then begin
    let data = pop_overflow t ~cycle (t.ov_len - 1) in
    if data >= 0 then t.pending <- t.pending - 1;
    data
  end
  else -1

(* Drop every scheduled event.  A checkpoint restore rebuilds the
   calendar from scratch at a new time origin; clearing (rather than
   recreating) keeps the grown slot vectors, so a restored run stays
   allocation-free.  Ring slots hold no cycle stamps — only the overflow
   bucket does — so after [clear] the wheel is indistinguishable from a
   fresh one at any [now]. *)
let clear t =
  Array.fill t.slot_len 0 t.horizon 0;
  t.ov_len <- 0;
  t.pending <- 0
