(** Age-matrix order tracking for a RAND instruction queue (paper Section
    4.2, after Sassone et al. and the AMD Bulldozer / IBM POWER8 designs).

    Instructions are inserted into arbitrary (random) queue slots; the
    hardware keeps an age mask per occupied slot (set bits identify
    strictly older occupants) and picks the oldest member of any
    candidate set — the BID vector of ready instructions, or CRISP's
    PRIO vector of ready-and-critical instructions — with an AND +
    reduction-NOR per slot.  This module encodes the same total order as
    a monotonic insertion stamp per slot, so the oldest candidate is the
    stamp argmin: the identical winner, without the O(slots) column
    clear per issue the mask transcription would need. *)

type t

val create : int -> t
(** A matrix for a queue with the given number of slots. *)

val slots : t -> int

val insert : t -> int -> unit
(** Occupy a currently-free slot as the youngest instruction. *)

val remove : t -> int -> unit
(** Free a slot (instruction issued); it leaves the age order. *)

val occupied : t -> int -> bool

val pick_oldest : t -> Bitset.t -> int
(** [pick_oldest t candidates] returns the slot of the oldest occupant among
    the candidate set, or [-1] if the set is empty.  All candidates must be
    occupied slots. *)

val older : t -> int -> int -> bool
(** [older t a b] is [true] when occupied slot [a] is strictly older than
    occupied slot [b] (i.e. [a]'s bit is set in [b]'s age mask). *)

val self_check : t -> string option
(** Structural invariants of the age order, used by the debug scoreboard:
    irreflexive (no slot is older than itself), antisymmetric and total
    over occupied pairs (of two distinct occupied slots exactly one is
    older), and every occupied slot carries a valid stamp.  Returns a
    description of the first violated invariant, [None] when sound. *)
