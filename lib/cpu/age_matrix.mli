(** Age-matrix order tracking for a RAND instruction queue (paper Section
    4.2, after Sassone et al. and the AMD Bulldozer / IBM POWER8 designs).

    Instructions are inserted into arbitrary (random) queue slots; each
    occupied slot keeps an age mask whose set bits identify strictly older
    occupants.  Picking the oldest member of any candidate set (the BID
    vector of ready instructions, or CRISP's PRIO vector of ready-and-
    critical instructions) reduces to finding the candidate whose age mask
    intersected with the candidate set is empty — the hardware's AND +
    reduction-NOR per slot. *)

type t

val create : int -> t
(** A matrix for a queue with the given number of slots. *)

val slots : t -> int

val insert : t -> int -> unit
(** Occupy a currently-free slot as the youngest instruction. *)

val remove : t -> int -> unit
(** Free a slot (instruction issued); clears its bit from every remaining
    age mask. *)

val occupied : t -> int -> bool

val pick_oldest : t -> Bitset.t -> int
(** [pick_oldest t candidates] returns the slot of the oldest occupant among
    the candidate set, or [-1] if the set is empty.  All candidates must be
    occupied slots. *)

val older : t -> int -> int -> bool
(** [older t a b] is [true] when occupied slot [a] is strictly older than
    occupied slot [b] (i.e. [a]'s bit is set in [b]'s age mask). *)

val self_check : t -> string option
(** Structural invariants of the matrix, used by the debug scoreboard:
    age masks are irreflexive (no slot is older than itself), antisymmetric
    and total over occupied pairs (of two distinct occupied slots exactly
    one is older), and masks never name unoccupied slots.  Returns a
    description of the first violated invariant, [None] when sound. *)
