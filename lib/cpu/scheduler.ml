type policy =
  | Oldest_ready
  | Crisp
  | Random_ready

type t = {
  policy : policy;
  matrix : Age_matrix.t;
  ready : Bitset.t;  (* BID vector *)
  critical : Bitset.t;  (* criticality tags of occupied slots *)
  selected : Bitset.t;  (* slots already selected this cycle *)
  scratch : Bitset.t;
  scratch2 : Bitset.t;
  free : int array;  (* free-slot stack, randomised for RAND allocation *)
  mutable free_count : int;
  rng : Prng.t;
  (* The single instrumentation point of the scheduler: fired once per
     successful selection, after the selected bit is set.  Both the debug
     scoreboard and the observability tracer attach through this hook, so
     adding an observer never adds a second introspection call site. *)
  mutable on_select : (slot:int -> prio_override:bool -> unit) option;
}

let create ?(seed = 0x5c3d) ~slots policy =
  { policy;
    matrix = Age_matrix.create slots;
    ready = Bitset.create slots;
    critical = Bitset.create slots;
    selected = Bitset.create slots;
    scratch = Bitset.create slots;
    scratch2 = Bitset.create slots;
    free = Array.init slots (fun i -> i);
    free_count = slots;
    rng = Prng.create seed;
    on_select = None }

let set_on_select t hook = t.on_select <- hook

let policy t = t.policy

let free_slots t = t.free_count

let occupancy t = Age_matrix.slots t.matrix - t.free_count

let allocate_slot t ~critical =
  if t.free_count = 0 then -1
  else begin
    (* RAND allocation: newly fetched instructions land in random slots. *)
    let pick = Prng.int t.rng t.free_count in
    let slot = t.free.(pick) in
    t.free.(pick) <- t.free.(t.free_count - 1);
    t.free_count <- t.free_count - 1;
    Age_matrix.insert t.matrix slot;
    if critical then Bitset.set t.critical slot;
    slot
  end

let allocate t ~critical =
  match allocate_slot t ~critical with -1 -> None | slot -> Some slot

let mark_ready t slot = Bitset.set t.ready slot

let begin_cycle t = Bitset.clear_all t.selected

(* ready AND NOT selected, computed into [scratch]. *)
let candidates t =
  Bitset.diff_into ~a:t.ready ~b:t.selected ~dst:t.scratch;
  t.scratch

let pick_random t cand =
  let n = Bitset.count cand in
  if n = 0 then -1
  else
    (* The n-th set bit in index order is exactly the slot the old
       full-iteration walk landed on; nth_set stops at the winner. *)
    Bitset.nth_set cand (Prng.int t.rng n)

(* Tail of [select]: record and announce a successful pick.  Split out so
   each policy arm can call it directly instead of building an
   intermediate (slot, prio_override) tuple on the minor heap. *)
let finish t slot prio_override =
  if slot >= 0 then begin
    Bitset.set t.selected slot;
    match t.on_select with
    | Some hook -> hook ~slot ~prio_override
    | None -> ()
  end;
  slot

let select t =
  let cand = candidates t in
  match t.policy with
  | Oldest_ready -> finish t (Age_matrix.pick_oldest t.matrix cand) false
  | Random_ready -> finish t (pick_random t cand) false
  | Crisp ->
    (* PRIO = ready AND critical AND not selected; fall back to the plain
       oldest-ready pick when no prioritised candidate remains. *)
    Bitset.inter_into ~a:cand ~b:t.critical ~dst:t.scratch2;
    let prio_pick = Age_matrix.pick_oldest t.matrix t.scratch2 in
    if prio_pick >= 0 then begin
      (* The override comparison is only of interest to observers; skip
         the extra (read-only) age-matrix reduction when none listens. *)
      let overrode =
        Option.is_some t.on_select
        && Age_matrix.pick_oldest t.matrix cand <> prio_pick
      in
      finish t prio_pick overrode
    end
    else finish t (Age_matrix.pick_oldest t.matrix cand) false

let issue t slot =
  Age_matrix.remove t.matrix slot;
  Bitset.clear t.ready slot;
  Bitset.clear t.critical slot;
  t.free.(t.free_count) <- slot;
  t.free_count <- t.free_count + 1

let unready t slot = Bitset.clear t.ready slot

(* ---- scoreboard introspection (read-only) ---- *)

let slots t = Age_matrix.slots t.matrix

let slot_occupied t slot = Age_matrix.occupied t.matrix slot

let slot_ready t slot = Bitset.mem t.ready slot

let slot_critical t slot = Bitset.mem t.critical slot

let slot_selected t slot = Bitset.mem t.selected slot

let slot_older t a b = Age_matrix.older t.matrix a b

let self_check t =
  match Age_matrix.self_check t.matrix with
  | Some _ as v -> v
  | None ->
    let fail = ref None in
    let report fmt =
      Format.kasprintf (fun s -> if !fail = None then fail := Some s) fmt
    in
    for s = 0 to slots t - 1 do
      if not (slot_occupied t s) then begin
        if slot_ready t s then report "BID bit set on unoccupied slot %d" s;
        if slot_critical t s then report "PRIO bit set on unoccupied slot %d" s
      end
    done;
    !fail
