(** Aggregate results of one timing simulation. *)

(** Attribution of cycles in which the ROB head could not retire (the
    paper's "cycles that instructions reside at the head of the ROB without
    retiring", Section 5.2). *)
type stall_breakdown = {
  dram_load : int;  (** head is a load served by DRAM *)
  llc_load : int;  (** head is a load served by the LLC *)
  other_load : int;
  long_op : int;  (** divide and other multi-cycle arithmetic *)
  other : int;
}

type t = {
  cycles : int;
  retired : int;
  loads : int;
  stores : int;
  branches : int;  (** dynamic conditional branches *)
  branch_mispredicts : int;
  btb_misses : int;
  ras_mispredicts : int;
  head_stalls : stall_breakdown;
  mlp_sum : float;  (** summed outstanding demand misses over miss cycles *)
  mlp_cycles : int;  (** cycles with at least one outstanding demand miss *)
  critical_retired : int;  (** retired micro-ops carrying the critical tag *)
  mem : Memory_system.stats;
  upc_timeline : int array option;  (** per-cycle retirement counts *)
}

val add : t -> t -> t
(** Field-wise sum — the stitch-up of per-window or per-chunk statistics
    from sampled / time-parallel simulation.  [upc_timeline] does not
    stitch (windows have disjoint time bases) and is dropped. *)

val zero : t
(** Identity for {!add}. *)

val ipc : t -> float
val upc : t -> float
(** Identical to {!ipc} in this model (one micro-op per instruction); kept
    separate to mirror the paper's UPC plots. *)

val mpki_llc : t -> float
(** Demand LLC misses per kilo-instruction. *)

val mpki_l1i : t -> float
val mispredicts_per_ki : t -> float

val avg_mlp : t -> float
(** Mean outstanding demand misses over cycles with at least one miss. *)

val smoothed_upc : t -> window:int -> (int * float) array
(** Windowed UPC series from the recorded timeline (for Figure 1).
    @raise Invalid_argument if the timeline was not recorded. *)

val pp_summary : Format.formatter -> t -> unit
