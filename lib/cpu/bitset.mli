(** Fixed-width bitsets over instruction-queue slots, the building block of
    the age-matrix scheduler (paper Section 4.2: age masks, BID and PRIO
    vectors are all N-bit vectors combined with single-logic-level bitwise
    operations). *)

type t

val create : int -> t
(** All-zero bitset of the given width. *)

val width : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val copy_into : src:t -> dst:t -> unit
val inter_into : a:t -> b:t -> dst:t -> unit
(** [dst := a AND b]; all three must share a width. *)

val diff_into : a:t -> b:t -> dst:t -> unit
(** [dst := a AND NOT b]. *)

val inter_empty : t -> t -> bool
(** Whether [a AND b] = 0 — the reduction-NOR of the hardware picker. *)

val iter_set : (int -> unit) -> t -> unit
(** Apply to every set bit, in increasing index order. *)

val count : t -> int

val next_set : t -> int -> int
(** First set index [>= i], or [-1] when none.  Allocation-free scan
    primitive for the hot pickers; [i] may equal [width t]. *)

val nth_set : t -> int -> int
(** Index of the [n]-th (0-based) set bit in increasing order, or [-1]
    when fewer than [n+1] bits are set. *)

val argmin : t -> int array -> int
(** [argmin t keys] is the set index minimising [keys.(i)], or [-1] when
    the set is empty; ties keep the lowest index.  Word-wise scan — the
    allocation-free inner loop of the oldest-first picker. *)

val clear_all : t -> unit

val clear_bit_everywhere : t array -> int -> unit
(** Clear bit [i] in every bitset of the array — the hardware's column-wise
    clear when an instruction-queue slot is freed.  All sets must share a
    width that covers [i]. *)
