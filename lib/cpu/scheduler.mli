(** Reservation-station scheduler.

    Models a unified RS with RAND slot allocation and an age-matrix picker,
    operating select-then-arbitrate: each cycle the picker makes up to
    [select_width] {e selections} from the ready (BID) vector; a selected
    instruction issues if a port of its class is still free this cycle,
    otherwise the selection slot is wasted — the classic inefficiency of
    unified matrix schedulers that makes the selection {e order} matter.

    Policies (paper Table 1 and Section 4.2):

    - [Oldest_ready]: selections in pure age order — the baseline
      6-oldest-ready-instructions-first scheduler;
    - [Crisp]: the PRIO vector — ready-and-critical instructions are
      selected (oldest first) before any non-critical ready instruction,
      with a multiplexer falling back to the plain oldest pick (Figure 6);
    - [Random_ready]: uniformly random selections (an ablation floor). *)

type policy =
  | Oldest_ready
  | Crisp
  | Random_ready

type t

val create : ?seed:int -> slots:int -> policy -> t

val policy : t -> policy

val free_slots : t -> int

val allocate : t -> critical:bool -> int option
(** Claim a random free slot for a newly dispatched instruction; [None]
    when the RS is full.  The instruction starts not-ready. *)

val allocate_slot : t -> critical:bool -> int
(** Same as {!allocate} but returns [-1] instead of [None] when the RS is
    full — the allocation-free variant the cycle loop uses. *)

val mark_ready : t -> int -> unit
(** Source operands became available: raise the slot's BID (and, when the
    instruction is critical, PRIO) bit. *)

val begin_cycle : t -> unit
(** Reset the per-cycle selection mask. *)

val select : t -> int
(** Next selection of the current cycle, in policy order, among ready
    instructions not yet selected this cycle; [-1] when none remain.  The
    returned slot is marked selected.  The caller arbitrates ports and
    calls {!issue} (instruction leaves the RS) or nothing (wasted slot;
    the instruction stays ready for later cycles). *)

val issue : t -> int -> unit
(** Release the slot: the instruction left the RS for execution. *)

val unready : t -> int -> unit
(** Drop the slot back to not-ready (e.g. an MSHR-full load that must
    retry); it keeps its age and RS slot. *)

val occupancy : t -> int

val set_on_select : t -> (slot:int -> prio_override:bool -> unit) option -> unit
(** Install (or clear) the scheduler's single instrumentation hook.  It
    fires once per successful {!select}, after the slot's selected bit is
    set and before [select] returns; [prio_override] is [true] when the
    CRISP PRIO vector changed the pick relative to the plain oldest-ready
    reduction.  The pipeline scoreboard and the observability tracer both
    observe selections through this one hook — there is deliberately no
    second introspection call site.  The hook must not mutate the
    scheduler; with no hook installed, [select] does no extra work. *)

(** {2 Scoreboard introspection}

    Read-only views of the BID/PRIO/age state for the debug-mode pipeline
    scoreboard ({!Scoreboard}).  None of these mutate the scheduler or
    advance its PRNG, so enabling the scoreboard cannot perturb timing. *)

val slots : t -> int

val slot_occupied : t -> int -> bool

val slot_ready : t -> int -> bool
(** The slot's BID bit. *)

val slot_critical : t -> int -> bool
(** The slot's PRIO (criticality) bit. *)

val slot_selected : t -> int -> bool
(** Whether the slot was already selected this cycle. *)

val slot_older : t -> int -> int -> bool
(** [slot_older t a b]: occupied slot [a] is strictly older than occupied
    slot [b] in the age matrix. *)

val self_check : t -> string option
(** Structural invariants: age-matrix soundness ({!Age_matrix.self_check})
    plus BID/PRIO bits only ever set on occupied slots.  Returns the first
    violation, [None] when sound. *)
