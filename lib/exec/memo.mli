(** Thread-safe memo table with in-flight deduplication.

    When several domains concurrently request the same key — e.g. every
    figure cell of one application asking for the same OOO baseline — the
    first caller computes it inline and the others block on a shared
    future, so the computation runs exactly once.

    A computation that raises resolves its waiters with the same exception
    and is forgotten (a later request will retry), so a transient failure
    does not poison the table. *)

type ('k, 'v) t

val create : ?size_hint:int -> unit -> ('k, 'v) t

val find_or_run : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Return the cached value for the key, await the in-flight computation
    for it, or compute it on the calling domain and publish the result. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Completed entries only; never blocks on an in-flight computation. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Evict a completed entry (e.g. one whose integrity check failed) so
    the next request recomputes it.  An in-flight entry is left alone:
    its computation will still publish to current waiters. *)

val clear : ('k, 'v) t -> unit
(** Drop completed entries.  In-flight computations are left to finish and
    publish; they were keyed before the clear and will be recomputed on
    the next request only if they raise. *)

val length : ('k, 'v) t -> int
(** Completed entries. *)

type stats = {
  hits : int;  (** requests served from a completed entry *)
  misses : int;  (** requests that ran the computation themselves *)
  dedups : int;  (** requests that awaited another caller's in-flight run *)
  evictions : int;  (** completed entries dropped by {!remove} / {!clear} *)
  entries : int;  (** completed entries currently held *)
}

val stats : ('k, 'v) t -> stats
(** Lifetime counters plus the current size — the cache-effectiveness
    numbers the simulation farm reports in its summary frames.  Every
    {!find_or_run} call increments exactly one of [hits], [misses] or
    [dedups], so [hits + dedups] is the work avoided and [misses] the
    number of times the computation actually ran. *)
