(** Fixed pool of OCaml 5 domains with per-worker work-stealing deques and
    a shared injection queue.

    Jobs submitted from outside the pool enter the injection queue; jobs
    submitted by a worker (nested submission) go to that worker's own
    deque and overflow to the injection queue when full.  Idle workers
    first drain their own deque, then steal batches from siblings, then
    take from the injection queue, and finally park on a condition
    variable.

    {!await} is help-first: a worker awaiting a future executes queued
    jobs while it waits, so nested fork/join job graphs cannot deadlock
    the pool even with a single worker. *)

type t

exception Shut_down
(** Raised by {!await} (via the job's future) when the pool was shut down
    with [~drain:false] before the job ever started running. *)

val sequential : t
(** The [--jobs 1] escape hatch: no domains, no queues — {!submit} runs
    the thunk inline on the calling domain and returns a resolved future,
    giving exactly the sequential execution order. *)

val create : ?workers:int -> unit -> t
(** Spawn [workers] worker domains (default
    [Domain.recommended_domain_count ()]).  [workers <= 0] returns
    {!sequential}. *)

val parallelism : t -> int
(** Number of worker domains; 1 for {!sequential}. *)

type stats = {
  workers : int;  (** worker domains ({!parallelism}) *)
  queued : int;  (** jobs enqueued (deques + injection) but not yet started *)
  running : int;  (** jobs currently executing a thunk *)
  stolen : int;  (** cumulative jobs migrated between worker deques *)
}

val stats : t -> stats
(** A racy (unfenced) snapshot of farm load: [queued]/[running] are
    instantaneous gauges, [stolen] a lifetime counter.  {!sequential}
    reports all-zero gauges. *)

val submit : t -> (unit -> 'a) -> 'a Future.t
(** Schedule a job.  An exception raised by the thunk resolves the future
    with the failure and re-raises at {!await}.
    @raise Invalid_argument after {!shutdown}. *)

val await : t -> 'a Future.t -> 'a
(** Like {!Future.await}, but when called from a worker domain it runs
    queued jobs while waiting instead of blocking the domain. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one job per element and await them all; results keep the input
    order.  On {!sequential} this is exactly [List.map]. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop and join every worker domain.  With [~drain:true] (the default)
    queued jobs run to completion first; with [~drain:false] jobs that
    have not started are discarded and their futures fail with
    {!Shut_down}, so an {!await} on a never-started job raises cleanly
    instead of deadlocking.  Idempotent, and safe to call from several
    domains at once: exactly one caller performs the join, the others
    block until it completes.  Submitting after shutdown raises
    [Invalid_argument]. *)
