type 'a t = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create () =
  { queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false }

let push t v =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    Queue.push v t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    true
  end

let pop_opt t =
  Mutex.lock t.mutex;
  let v = Queue.take_opt t.queue in
  Mutex.unlock t.mutex;
  v

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

let park t ~should_wake =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && (not t.closed) && not (should_wake ()) do
    Condition.wait t.nonempty t.mutex
  done;
  Mutex.unlock t.mutex

let wake_all t =
  Mutex.lock t.mutex;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
