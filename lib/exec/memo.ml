type 'v entry =
  | Ready of 'v
  | In_flight of 'v Future.t

type stats = {
  hits : int;
  misses : int;
  dedups : int;
  evictions : int;
  entries : int;
}

type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, 'v entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable dedups : int;
  mutable evictions : int;
}

let create ?(size_hint = 64) () =
  { mutex = Mutex.create ();
    table = Hashtbl.create size_hint;
    hits = 0;
    misses = 0;
    dedups = 0;
    evictions = 0 }

let find_or_run t key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some (Ready v) ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    v
  | Some (In_flight fut) ->
    t.dedups <- t.dedups + 1;
    Mutex.unlock t.mutex;
    Future.await fut
  | None -> (
    t.misses <- t.misses + 1;
    let fut = Future.create () in
    Hashtbl.replace t.table key (In_flight fut);
    Mutex.unlock t.mutex;
    match f () with
    | v ->
      Mutex.lock t.mutex;
      Hashtbl.replace t.table key (Ready v);
      Mutex.unlock t.mutex;
      Future.fulfill fut v;
      v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock t.mutex;
      Hashtbl.remove t.table key;
      Mutex.unlock t.mutex;
      Future.fail fut exn bt;
      Printexc.raise_with_backtrace exn bt)

let find_opt t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready v) -> Some v
    | Some (In_flight _) | None -> None
  in
  Mutex.unlock t.mutex;
  r

let remove t key =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.table key with
  | Some (Ready _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1
  | Some (In_flight _) | None -> ());
  Mutex.unlock t.mutex

let clear t =
  Mutex.lock t.mutex;
  let dropped =
    Hashtbl.fold
      (fun _ e acc -> match e with Ready _ -> acc + 1 | In_flight _ -> acc)
      t.table 0
  in
  t.evictions <- t.evictions + dropped;
  (* Keep in-flight entries: their computations will still publish, and
     dropping them would let a concurrent duplicate start. *)
  let in_flight =
    Hashtbl.fold
      (fun k e acc -> match e with In_flight _ -> (k, e) :: acc | Ready _ -> acc)
      t.table []
  in
  Hashtbl.reset t.table;
  List.iter (fun (k, e) -> Hashtbl.replace t.table k e) in_flight;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ e acc -> match e with Ready _ -> acc + 1 | In_flight _ -> acc)
      t.table 0
  in
  Mutex.unlock t.mutex;
  n

let stats t =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold
      (fun _ e acc -> match e with Ready _ -> acc + 1 | In_flight _ -> acc)
      t.table 0
  in
  let s =
    { hits = t.hits;
      misses = t.misses;
      dedups = t.dedups;
      evictions = t.evictions;
      entries }
  in
  Mutex.unlock t.mutex;
  s
