type 'a resolution = ('a, exn * Printexc.raw_backtrace) result

type 'a state =
  | Pending of ('a resolution -> unit) list  (* callbacks, reverse order *)
  | Resolved of 'a resolution

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

let create () =
  { mutex = Mutex.create (); cond = Condition.create (); state = Pending [] }

let of_value v =
  { mutex = Mutex.create (); cond = Condition.create (); state = Resolved (Ok v) }

let resolve t resolution =
  Mutex.lock t.mutex;
  match t.state with
  | Resolved _ ->
    Mutex.unlock t.mutex;
    invalid_arg "Future: already resolved"
  | Pending callbacks ->
    t.state <- Resolved resolution;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    List.iter (fun cb -> cb resolution) (List.rev callbacks)

let fulfill t v = resolve t (Ok v)

let fail t exn bt = resolve t (Error (exn, bt))

let await t =
  Mutex.lock t.mutex;
  let rec wait () =
    match t.state with
    | Resolved r ->
      Mutex.unlock t.mutex;
      (match r with
      | Ok v -> v
      | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt)
    | Pending _ ->
      Condition.wait t.cond t.mutex;
      wait ()
  in
  wait ()

let poll t =
  Mutex.lock t.mutex;
  let r =
    match t.state with
    | Pending _ -> None
    | Resolved (Ok v) -> Some (Ok v)
    | Resolved (Error (exn, _)) -> Some (Error exn)
  in
  Mutex.unlock t.mutex;
  r

let is_resolved t =
  Mutex.lock t.mutex;
  let r = match t.state with Resolved _ -> true | Pending _ -> false in
  Mutex.unlock t.mutex;
  r

let on_resolve t cb =
  Mutex.lock t.mutex;
  match t.state with
  | Pending callbacks ->
    t.state <- Pending (cb :: callbacks);
    Mutex.unlock t.mutex
  | Resolved r ->
    Mutex.unlock t.mutex;
    cb r

let map f t =
  let derived = create () in
  on_resolve t (function
    | Error (exn, bt) -> fail derived exn bt
    | Ok v -> (
      match f v with
      | w -> fulfill derived w
      | exception exn -> fail derived exn (Printexc.get_raw_backtrace ())));
  derived

let join_all futures =
  let n = List.length futures in
  let joined = create () in
  if n = 0 then fulfill joined []
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let failed = Atomic.make false in
    List.iteri
      (fun i fut ->
        on_resolve fut (function
          | Error (exn, bt) ->
            (* First failure wins; later resolutions are dropped. *)
            if not (Atomic.exchange failed true) then fail joined exn bt
          | Ok v ->
            results.(i) <- Some v;
            if Atomic.fetch_and_add remaining (-1) = 1 && not (Atomic.get failed)
            then
              fulfill joined
                (Array.to_list results
                |> List.map (function Some v -> v | None -> assert false))))
      futures
  end;
  joined

let await_all futures = List.map await futures
