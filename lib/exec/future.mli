(** Lightweight write-once futures for the domain pool.

    A future is resolved exactly once, either with a value ({!fulfill}) or
    with an exception and its backtrace ({!fail}).  {!await} blocks the
    calling domain on a condition variable until resolution and re-raises a
    failure with its original backtrace, so exceptions thrown inside a
    worker domain surface at the await site rather than being swallowed.

    Inside a pool worker prefer {!Pool.await}, which runs queued jobs while
    waiting instead of blocking the domain. *)

type 'a t

val create : unit -> 'a t
(** A fresh pending future. *)

val of_value : 'a -> 'a t
(** An already-fulfilled future (used by the sequential escape hatch). *)

val fulfill : 'a t -> 'a -> unit
(** Resolve with a value.  @raise Invalid_argument if already resolved. *)

val fail : 'a t -> exn -> Printexc.raw_backtrace -> unit
(** Resolve with an exception.  @raise Invalid_argument if already
    resolved. *)

val await : 'a t -> 'a
(** Block until resolved; return the value or re-raise the failure. *)

val poll : 'a t -> ('a, exn) result option
(** [None] while pending; never blocks. *)

val is_resolved : 'a t -> bool

val on_resolve : 'a t -> (('a, exn * Printexc.raw_backtrace) result -> unit) -> unit
(** Run a callback once resolved (immediately if already resolved).  The
    callback runs on the resolving domain and must not block. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Derived future; [f] runs on the resolving domain when the source
    resolves.  An exception raised by [f] fails the derived future. *)

val join_all : 'a t list -> 'a list t
(** Future of all values, in the order of the input list.  Fails as soon as
    any component fails (with the first failure to arrive). *)

val await_all : 'a t list -> 'a list
(** [await] every future in order and collect the values. *)
