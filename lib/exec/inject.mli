(** Shared injection queue: the path by which jobs submitted from outside
    the pool (or overflowing a full worker deque) reach the workers.
    A plain [Queue.t] under a mutex, with a condition variable that doubles
    as the pool's idle-worker parking lot. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> bool
(** Enqueue and wake one parked worker.  [false] if the queue was already
    closed (the element is dropped). *)

val pop_opt : 'a t -> 'a option
(** Non-blocking dequeue. *)

val close : 'a t -> unit
(** Reject further pushes and wake every parked worker. *)

val is_closed : 'a t -> bool

val park : 'a t -> should_wake:(unit -> bool) -> unit
(** Block the calling worker on the condition variable until [should_wake
    ()] becomes true, an element is pushed, or the queue is closed.
    [should_wake] is evaluated under the queue mutex, closing the lost
    wake-up window between a worker's last empty scan and its sleep. *)

val wake_all : 'a t -> unit
(** Wake every parked worker (used when local work is produced). *)
