(** Per-worker work-stealing queue (single producer, multiple consumers).

    Adapted from the SPMC ring used by ebsl-style schedulers: the owning
    worker enqueues at the tail and dequeues from the head; thief workers
    also consume from the head, claiming a batch of up to half the visible
    elements with one CAS and moving it into their own queue.  Consumption
    order is FIFO, which keeps grid jobs flowing roughly in submission
    order (long-pole jobs submitted first stay first).

    Only the owner may call {!push} and {!pop}; any domain may call
    {!steal} with itself as the destination owner. *)

type 'a t

val create : ?capacity_exponent:int -> unit -> 'a t
(** Ring of [2^capacity_exponent] slots (default [2^13]). *)

val push : 'a t -> 'a -> bool
(** Owner-only.  [false] when the ring is full (caller should overflow to
    the shared injection queue). *)

val pop : 'a t -> 'a option
(** Owner-only dequeue from the head. *)

val steal : from:'a t -> into:'a t -> int
(** Claim up to half of [from]'s elements and push them into [into]
    (whose owner must be the calling domain).  Returns the number moved,
    0 when [from] was empty or the claim raced with another consumer. *)

val size : 'a t -> int
(** Indicative size (racy; an instantaneous lower-bound estimate). *)
