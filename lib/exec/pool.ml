type job = unit -> unit

exception Shut_down

type pooled = {
  deques : job Ws_queue.t array;
  ids : Domain.id option Atomic.t array;  (* worker i's domain id, set at startup *)
  inject : job Inject.t;
  pending : int Atomic.t;  (* jobs enqueued anywhere but not yet started *)
  running : int Atomic.t;  (* jobs currently executing a thunk *)
  stolen : int Atomic.t;  (* cumulative jobs migrated between worker deques *)
  aborted : bool Atomic.t;  (* shutdown ~drain:false: queued jobs are discarded *)
  shut : int Atomic.t;  (* 0 running, 1 closing (one caller joins), 2 closed *)
  mutable domains : unit Domain.t array;
}

type t =
  | Sequential
  | Pooled of pooled

let sequential = Sequential

let worker_index p =
  let self = Domain.self () in
  let n = Array.length p.ids in
  let rec scan i =
    if i >= n then None
    else
      match Atomic.get p.ids.(i) with
      | Some id when id = self -> Some i
      | _ -> scan (i + 1)
  in
  scan 0

(* Acquire one runnable job: own deque, then steal a batch from a sibling,
   then the injection queue.  Decrements [pending] exactly when a job is
   handed out. *)
let find_job p i =
  let acquired job =
    Atomic.decr p.pending;
    Some job
  in
  match Ws_queue.pop p.deques.(i) with
  | Some job -> acquired job
  | None ->
    let n = Array.length p.deques in
    let rec try_steal off =
      if off >= n then None
      else
        let victim = (i + off) mod n in
        let took = Ws_queue.steal ~from:p.deques.(victim) ~into:p.deques.(i) in
        if took > 0 then begin
          ignore (Atomic.fetch_and_add p.stolen took);
          Ws_queue.pop p.deques.(i)
        end
        else try_steal (off + 1)
    in
    (match try_steal 1 with
    | Some job -> acquired job
    | None -> (
      match Inject.pop_opt p.inject with
      | Some job -> acquired job
      | None -> None))

let spin_budget = 256

(* Jobs never raise (submit's wrapper folds exceptions into the future),
   but guard the counter anyway so a bug there cannot wedge [running]. *)
let run_job p job =
  Atomic.incr p.running;
  Fun.protect job ~finally:(fun () -> Atomic.decr p.running)

let worker_loop p i =
  Atomic.set p.ids.(i) (Some (Domain.self ()));
  let rec loop spins =
    match find_job p i with
    | Some job ->
      run_job p job;
      loop 0
    | None ->
      if Inject.is_closed p.inject && Atomic.get p.pending = 0 then ()
      else if spins < spin_budget then begin
        Domain.cpu_relax ();
        loop (spins + 1)
      end
      else begin
        Inject.park p.inject ~should_wake:(fun () -> Atomic.get p.pending > 0);
        loop 0
      end
  in
  loop 0

let create ?(workers = Domain.recommended_domain_count ()) () =
  if workers <= 0 then Sequential
  else begin
    let p =
      { deques = Array.init workers (fun _ -> Ws_queue.create ());
        ids = Array.init workers (fun _ -> Atomic.make None);
        inject = Inject.create ();
        pending = Atomic.make 0;
        running = Atomic.make 0;
        stolen = Atomic.make 0;
        aborted = Atomic.make false;
        shut = Atomic.make 0;
        domains = [||] }
    in
    p.domains <- Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop p i));
    Pooled p
  end

let parallelism = function
  | Sequential -> 1
  | Pooled p -> Array.length p.deques

type stats = {
  workers : int;
  queued : int;
  running : int;
  stolen : int;
}

let stats = function
  | Sequential -> { workers = 1; queued = 0; running = 0; stolen = 0 }
  | Pooled p ->
    (* [pending] counts enqueued-but-not-started, read racily: a snapshot,
       not a fence.  [stolen] is cumulative and monotonic. *)
    { workers = Array.length p.deques;
      queued = max 0 (Atomic.get p.pending);
      running = Atomic.get p.running;
      stolen = Atomic.get p.stolen }

let enqueue p job =
  (* [pending] rises before the job is visible so that scanning workers
     never conclude the pool is idle while an enqueue is in flight. *)
  Atomic.incr p.pending;
  let queued =
    match worker_index p with
    | Some i when Ws_queue.push p.deques.(i) job ->
      (* Local push bypasses the injection queue; parked siblings must
         still learn there is something to steal. *)
      Inject.wake_all p.inject;
      true
    | _ -> Inject.push p.inject job
  in
  if not queued then begin
    Atomic.decr p.pending;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end

let submit t f =
  match t with
  | Sequential -> (
    match f () with
    | v -> Future.of_value v
    | exception exn ->
      let fut = Future.create () in
      Future.fail fut exn (Printexc.get_raw_backtrace ());
      fut)
  | Pooled p ->
    let fut = Future.create () in
    let job () =
      (* An aborted pool still drains its queues, but each queued job
         resolves its future with Shut_down instead of running the
         thunk, so every awaiter gets a clean raise, never a deadlock. *)
      if Atomic.get p.aborted then
        Future.fail fut Shut_down (Printexc.get_callstack 0)
      else
        match f () with
        | v -> Future.fulfill fut v
        | exception exn -> Future.fail fut exn (Printexc.get_raw_backtrace ())
    in
    enqueue p job;
    fut

let await t fut =
  match t with
  | Sequential -> Future.await fut
  | Pooled p -> (
    match worker_index p with
    | None -> Future.await fut
    | Some i ->
      (* Help-first: run queued jobs while the future is pending, so a
         worker awaiting its own sub-jobs makes progress instead of
         deadlocking the pool. *)
      Future.on_resolve fut (fun _ -> Inject.wake_all p.inject);
      let rec help spins =
        if Future.is_resolved fut then Future.await fut
        else
          match find_job p i with
          | Some job ->
            run_job p job;
            help 0
          | None ->
            if spins < spin_budget then begin
              Domain.cpu_relax ();
              help (spins + 1)
            end
            else begin
              Inject.park p.inject ~should_wake:(fun () ->
                  Future.is_resolved fut || Atomic.get p.pending > 0);
              help 0
            end
      in
      help 0)

let map_list t f xs =
  match t with
  | Sequential -> List.map f xs
  | Pooled _ ->
    let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
    List.map (await t) futures

let shutdown ?(drain = true) t =
  match t with
  | Sequential -> ()
  | Pooled p ->
    if not drain then begin
      Atomic.set p.aborted true;
      (* Parked workers must re-check: their queued jobs now short-circuit. *)
      Inject.wake_all p.inject
    end;
    (* Exactly one caller closes and joins; concurrent or repeated calls
       wait for it to finish, so shutdown is idempotent and never joins
       a domain twice. *)
    if Atomic.compare_and_set p.shut 0 1 then begin
      Inject.close p.inject;
      Array.iter Domain.join p.domains;
      Atomic.set p.shut 2
    end
    else
      while Atomic.get p.shut < 2 do
        Domain.cpu_relax ()
      done
