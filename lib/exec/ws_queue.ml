(* SPMC ring buffer.  Invariants:
   - [tail] is written only by the owner; a cell is published (set to
     [Some v]) before [tail] is advanced past it, so any consumer that
     observes [index < tail] can read the value.
   - consumers (owner pop and thieves) claim indices by CAS on [head];
     winning the CAS gives exclusive ownership of the claimed range.
   - a consumer clears its cell to [None] after reading; [push] spins
     briefly if the wrapped-around cell has been claimed but not yet
     cleared (a short window). *)

type 'a t = {
  head : int Atomic.t;
  tail : int Atomic.t;  (* owner-only writes *)
  mask : int;
  cells : 'a option Atomic.t array;
}

let create ?(capacity_exponent = 13) () =
  let size = 1 lsl capacity_exponent in
  { head = Atomic.make 0;
    tail = Atomic.make 0;
    mask = size - 1;
    cells = Array.init size (fun _ -> Atomic.make None) }

let size t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    let cell = t.cells.(tail land t.mask) in
    while Option.is_some (Atomic.get cell) do
      Domain.cpu_relax ()
    done;
    Atomic.set cell (Some v);
    Atomic.set t.tail (tail + 1);
    true
  end

(* After winning the CAS on [head] the value is guaranteed published
   (the claimer observed [index < tail]); the spin is defensive. *)
let take_cell t index =
  let cell = t.cells.(index land t.mask) in
  let rec take () =
    match Atomic.get cell with
    | Some v ->
      Atomic.set cell None;
      v
    | None ->
      Domain.cpu_relax ();
      take ()
  in
  take ()

let rec pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else if Atomic.compare_and_set t.head head (head + 1) then
    Some (take_cell t head)
  else pop t

let steal ~from ~into =
  let head = Atomic.get from.head in
  let tail = Atomic.get from.tail in
  let available = tail - head in
  if available <= 0 then 0
  else begin
    (* Steal even when a single element is visible, hence the +1. *)
    let free_into = into.mask + 1 - size into in
    let want = min ((available + 1) / 2) free_into in
    if want <= 0 then 0
    else if not (Atomic.compare_and_set from.head head (head + want)) then 0
    else begin
      for i = 0 to want - 1 do
        let v = take_cell from (head + i) in
        (* [into] is owned by the caller and had room when measured; if a
           concurrent owner push filled it meanwhile, spin until pops make
           room (cannot deadlock: the owner is this domain). *)
        while not (push into v) do
          Domain.cpu_relax ()
        done
      done;
      want
    end
  end
