(** Monotonicised wall clock for watchdog deadlines.

    [Unix.gettimeofday] can step backwards (NTP adjustments); a deadline
    computed against a clock that moves backwards can fire spuriously or
    never.  {!now} publishes the wall clock through a compare-and-set
    high-water mark shared by all domains, so successive reads — from any
    domain — never decrease. *)

val now : unit -> float
(** Seconds since the epoch, guaranteed non-decreasing across all domains
    of this process. *)
