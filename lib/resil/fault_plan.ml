type action = Throw | Stall of float | Corrupt

type selector =
  | Any
  | Substring of string
  | Bucket of { modulus : int; residue : int }

type count = Nth of int | From of int

type trigger = {
  site : string;
  selector : selector;
  count : count;
  action : action;
}

type t = { triggers : trigger list }

exception Injected of string

let none = { triggers = [] }
let make triggers = { triggers }
let triggers t = t.triggers

(* The compute-path sites drive {!random} (grid chaos plans must keep
   their seeded meaning across releases); the farm wire sites are armed
   explicitly or by the farm chaos harness's own plans. *)
let compute_sites =
  [ "pool.job"; "runner.run"; "memo.lookup"; "memo.store"; "journal.read";
    "journal.write" ]

let farm_sites = [ "farm.send"; "farm.connect" ]
let standard_sites = compute_sites @ farm_sites

let action_to_string = function
  | Throw -> "crash"
  | Stall s -> Printf.sprintf "stall=%.3g" s
  | Corrupt -> "corrupt"

let random ~seed ?(stall = 0.5) () =
  let st = Random.State.make [| 0xfa17; seed |] in
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let n = 1 + Random.State.int st 3 in
  let triggers =
    List.init n (fun _ ->
        let site = pick compute_sites in
        let action =
          match Random.State.int st 4 with
          | 0 -> Stall stall
          | 1 -> Corrupt
          | _ -> Throw
        in
        let modulus = 2 + Random.State.int st 3 in
        let selector = Bucket { modulus; residue = Random.State.int st modulus } in
        let count =
          if Random.State.bool st then Nth (1 + Random.State.int st 2) else From 1
        in
        { site; selector; count; action })
  in
  { triggers }

(* ---- CLI trigger specs: SITE:ACTION[@SUBSTRING][#N|+N] ---- *)

let parse_spec spec =
  let ( let* ) = Result.bind in
  let int_of s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (Printf.sprintf "bad count %S in fault spec %S" s spec)
  in
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "fault spec %S: expected SITE:ACTION..." spec)
  | Some i ->
    let site = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    let after s j = String.sub s (j + 1) (String.length s - j - 1) in
    (* [@SUBSTR] and [#N|+N] may appear in either order; the substring
       runs from '@' to the next count marker or the end. *)
    let rest, selector =
      match String.index_opt rest '@' with
      | None -> (rest, Any)
      | Some j ->
        let tail = after rest j in
        let stop =
          match (String.index_opt tail '#', String.index_opt tail '+') with
          | Some a, Some b -> Some (min a b)
          | (Some _ as s), None | None, (Some _ as s) -> s
          | None, None -> None
        in
        (match stop with
        | None -> (String.sub rest 0 j, Substring tail)
        | Some k ->
          ( String.sub rest 0 j ^ String.sub tail k (String.length tail - k),
            Substring (String.sub tail 0 k) ))
    in
    let* rest, count =
      match (String.rindex_opt rest '#', String.rindex_opt rest '+') with
      | Some j, _ ->
        let* n = int_of (after rest j) in
        Ok (String.sub rest 0 j, Nth n)
      | None, Some j ->
        let* n = int_of (after rest j) in
        Ok (String.sub rest 0 j, From n)
      | None, None -> Ok (rest, From 1)
    in
    let* action =
      match String.index_opt rest '=' with
      | Some j when String.sub rest 0 j = "stall" -> (
        match float_of_string_opt (after rest j) with
        | Some s when s >= 0. -> Ok (Stall s)
        | _ -> Error (Printf.sprintf "bad stall duration in fault spec %S" spec))
      | Some _ -> Error (Printf.sprintf "unknown action in fault spec %S" spec)
      | None -> (
        match rest with
        | "crash" -> Ok Throw
        | "corrupt" -> Ok Corrupt
        | "stall" -> Ok (Stall 1.0)
        | other ->
          Error
            (Printf.sprintf
               "unknown action %S in fault spec %S (expected crash, corrupt or \
                stall=SECS)"
               other spec))
    in
    if site = "" then Error (Printf.sprintf "empty site in fault spec %S" spec)
    else Ok { site; selector; count; action }

(* ---- armed state ---- *)

let armed_plan : t option Atomic.t = Atomic.make None

let mutex = Mutex.create ()
let counters : (string * string, int) Hashtbl.t = Hashtbl.create 64
let fired_rev : (string * string * action) list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock mutex)

let arm plan =
  locked (fun () ->
      Hashtbl.reset counters;
      fired_rev := []);
  Atomic.set armed_plan (Some plan)

let disarm () = Atomic.set armed_plan None
let armed () = Atomic.get armed_plan <> None

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else
    let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
    scan 0

let selector_matches sel ident =
  match sel with
  | Any -> true
  | Substring sub -> contains ~sub ident
  | Bucket { modulus; residue } -> Hashtbl.hash ident mod modulus = residue

let bump site ident =
  locked (fun () ->
      let key = (site, ident) in
      let n = 1 + (try Hashtbl.find counters key with Not_found -> 0) in
      Hashtbl.replace counters key n;
      n)

let hits ?(ident = "") site =
  locked (fun () -> try Hashtbl.find counters (site, ident) with Not_found -> 0)

let triggered plan site ident n =
  List.find_map
    (fun tr ->
      if tr.site = site && selector_matches tr.selector ident then
        match tr.count with
        | Nth k when n = k -> Some tr.action
        | From k when n >= k -> Some tr.action
        | Nth _ | From _ -> None
      else None)
    plan.triggers

let note site ident action =
  locked (fun () -> fired_rev := (site, ident, action) :: !fired_rev);
  Log.record (Log.Fault_fired { site; ident; action = action_to_string action })

let fired () = locked (fun () -> List.rev !fired_rev)

(* Deterministic byte flipping: every 5th byte XORed, so short payloads
   (digests) and long ones (marshalled cells) are both visibly damaged
   and the damage is a pure function of the input. *)
let corrupt_bytes s =
  String.mapi
    (fun i c -> if i mod 5 = 0 then Char.chr (Char.code c lxor 0x2a) else c)
    s

let fire site ident action =
  note site ident action;
  match action with
  | Throw -> raise (Injected site)
  | Stall s -> Unix.sleepf s
  | Corrupt -> ()

let hit ?(ident = "") site =
  match Atomic.get armed_plan with
  | None -> ()
  | Some plan -> (
    let n = bump site ident in
    match triggered plan site ident n with
    | None | Some Corrupt -> ()
    | Some (Throw | Stall _) as a -> fire site ident (Option.get a))

let mangle ?(ident = "") site payload =
  match Atomic.get armed_plan with
  | None -> payload
  | Some plan -> (
    let n = bump site ident in
    match triggered plan site ident n with
    | None -> payload
    | Some Corrupt ->
      note site ident Corrupt;
      corrupt_bytes payload
    | Some ((Throw | Stall _) as a) ->
      fire site ident a;
      payload)
