(** Deterministic, seeded fault injection.

    A {e fault plan} is a set of triggers, each arming one registered
    {e site} — a named point in the pipeline that calls {!hit} (control
    sites) or {!mangle} (data sites) every time execution passes it.
    Sites key their hit counters by [(site, ident)], where [ident]
    identifies the logical unit of work (a grid cell, a memo key); this
    is what makes injection deterministic under a work-stealing pool:
    the Nth hit of a given cell is the same event no matter which domain
    runs the cell or in what global order, so the same seed and plan
    produce the same faults at [--jobs 1], [2] or [8].

    Registered sites (see DESIGN.md "Resilience"):
    - ["pool.job"]       supervised-job thunk entry (hit)
    - ["runner.run"]     Runner.evaluate cache-miss computation (hit)
    - ["memo.lookup"]    Runner memo probe (hit)
    - ["memo.store"]     Runner memo fingerprint store (mangle)
    - ["journal.read"]   journal entry payload on load (mangle)
    - ["journal.write"]  journal entry payload on record (mangle)
    - ["farm.send"]      farm server response send (hit)
    - ["farm.connect"]   farm client connection attempt (hit)

    When no plan is armed every site is a single atomic load — the layer
    costs nothing in production runs. *)

type action =
  | Throw  (** raise {!Injected} at the site *)
  | Stall of float  (** sleep that many seconds at the site *)
  | Corrupt  (** flip bytes of the payload (data sites only; a no-op at
                 control sites) *)

type selector =
  | Any
  | Substring of string  (** fires only for idents containing the string *)
  | Bucket of { modulus : int; residue : int }
      (** fires only for idents whose hash bucket matches — a way for
          seeded random plans to pick a deterministic subset of cells
          without knowing their names *)

type count =
  | Nth of int  (** fire on exactly the nth hit (1-based) of that ident *)
  | From of int  (** fire on the nth hit and every one after *)

type trigger = {
  site : string;
  selector : selector;
  count : count;
  action : action;
}

type t

exception Injected of string
(** Raised by a [Throw] trigger; the payload is the site name. *)

val none : t
val make : trigger list -> t
val triggers : t -> trigger list

val standard_sites : string list

val random : seed:int -> ?stall:float -> unit -> t
(** A deterministic pseudo-random plan over the compute-path sites
    (the farm wire sites are excluded so seeded grid-chaos plans keep
    their historical meaning): one to three triggers with bucket
    selectors, derived entirely from [seed].  [stall] (default 0.5s)
    is the duration used for [Stall] actions. *)

val parse_spec : string -> (trigger, string) result
(** Parse a CLI trigger spec:
    [SITE:ACTION[@SUBSTRING][#N|+N]] where ACTION is [crash], [corrupt]
    or [stall=SECS]; [@S] selects idents containing [S]; [#N] fires on
    exactly the Nth hit and [+N] from the Nth hit onward (default [+1]).
    Examples: ["runner.run:crash+1@mcf"], ["journal.write:corrupt#1"],
    ["runner.run:stall=3@mcf#1"]. *)

val arm : t -> unit
(** Install the plan and reset all hit counters and the fired log. *)

val disarm : unit -> unit
(** Remove the plan.  Counters and the fired log are kept for
    inspection until the next {!arm}. *)

val armed : unit -> bool

val hit : ?ident:string -> string -> unit
(** Count a pass through a control site; raise or stall if a trigger
    matches.  [Corrupt] triggers are ignored at control sites. *)

val mangle : ?ident:string -> string -> string -> string
(** [mangle ~ident site payload] counts a pass through a data site and
    returns [payload], byte-flipped if a [Corrupt] trigger matches
    (deterministically — same input, same corruption).  [Throw]/[Stall]
    triggers behave as at control sites. *)

val hits : ?ident:string -> string -> int
(** Hit counter for [(site, ident)] since the last {!arm}. *)

val fired : unit -> (string * string * action) list
(** [(site, ident, action)] for every trigger firing since the last
    {!arm}, in firing order. *)

val action_to_string : action -> string
