(** Process-wide log of resilience events.

    Supervisors, the journal and the fault-injection layer all append
    here; the CLI reads it back to print the end-of-run failure summary
    and to decide the exit code, and the determinism tests compare
    per-job projections of it across worker counts.  Thread-safe; events
    for one [ident] are recorded in that job's own (sequential) order,
    so the per-ident projection is deterministic even though the global
    interleaving across worker domains is not. *)

type event =
  | Fault_fired of { site : string; ident : string; action : string }
      (** the armed fault plan fired at a registered site *)
  | Retry of { ident : string; attempt : int; delay : float; cause : string }
      (** a supervised job is about to be resubmitted ([attempt] is the
          1-based retry number, [delay] the backoff sleep before it) *)
  | Degraded of { ident : string; error : string }
      (** a grid cell or figure gave up and was replaced by an error
          marker *)
  | Quarantined of { ident : string; reason : string }
      (** a journal entry or memo entry failed validation and was
          discarded (and recomputed) rather than trusted *)
  | Restored of { ident : string }
      (** a grid cell was served from the on-disk journal *)

val record : event -> unit

val events : unit -> event list
(** In record order. *)

val clear : unit -> unit

val by_ident : unit -> (string * event list) list
(** Events grouped by ident, groups sorted by ident, events within a
    group in record order — a canonical form independent of worker
    interleaving. *)

val counts : unit -> int * int * int * int * int
(** [(faults, retries, degraded, quarantined, restored)]. *)

val pp_event : Format.formatter -> event -> unit

val pp_summary : Format.formatter -> unit -> unit
(** One-line counters followed by every degradation and quarantine. *)
