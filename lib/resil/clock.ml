let high_water = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec publish () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else publish ()
  in
  publish ()
