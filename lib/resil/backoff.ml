type params = {
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
}

let default = { base = 0.05; factor = 2.0; max_delay = 1.0; jitter = 0.25 }

let delay params ~seed ~ident ~attempt =
  let nominal =
    Float.min (params.base *. (params.factor ** float_of_int attempt)) params.max_delay
  in
  let st = Random.State.make [| 0x6ba0; seed; Hashtbl.hash ident; attempt |] in
  let u = Random.State.float st 1.0 in
  Float.max 0. (nominal *. (1. +. (params.jitter *. (u -. 0.5))))

let schedule params ~seed ~ident ~attempts =
  List.init attempts (fun attempt -> delay params ~seed ~ident ~attempt)

let sleep params ~seed ~ident ~attempt =
  let d = delay params ~seed ~ident ~attempt in
  if d > 0. then Unix.sleepf d
