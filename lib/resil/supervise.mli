(** Supervised jobs: {!Exec.Pool.submit} wrapped with a wall-clock
    deadline, bounded retries with deterministic backoff, and an error
    taxonomy, so one failing grid cell degrades to an [Error] instead of
    killing the whole suite.

    {2 Deadlines}

    The deadline is measured from the moment the job's thunk {e starts}
    on a worker (queue time does not count) using the monotonicised
    {!Clock}.  OCaml domains cannot be killed, so a timed-out job is
    {e abandoned}: the supervisor returns [Error (Timeout _)] and the
    thunk's eventual result is discarded.  On the sequential pool the
    thunk runs inline at {!spawn}, so a stalled job cannot be abandoned
    mid-flight; it is instead classified as a timeout {e post hoc} from
    its recorded start/finish stamps.  Both paths yield the same
    [Timeout] result for the same fault plan, which keeps figure output
    identical across [--jobs] values.

    {2 Retries}

    Crashes are retried up to [retries] times, sleeping the
    {!Backoff} schedule (seeded, per-ident — reproducible) between
    attempts.  Timeouts are not retried: a deadline is a budget, not a
    transient.  {!Quarantined_failure} is reported as [Quarantined]
    without retry — the raiser already retried internally. *)

type error =
  | Timeout of float  (** exceeded the deadline (seconds) *)
  | Crashed of exn  (** raised, and no retry budget was configured *)
  | Quarantined of string  (** corrupt state was detected and could not be
                               repaired by recomputation *)
  | Gave_up of exn  (** still raising after exhausting the retry budget;
                        the payload is the last exception *)

exception Quarantined_failure of string
(** Raise this from inside a supervised job to report [Quarantined]
    rather than [Crashed]/[Gave_up]. *)

val error_to_string : error -> string

type policy = {
  deadline : float option;  (** seconds of running time per attempt *)
  retries : int;  (** additional attempts after the first crash *)
  backoff : Backoff.params;
  seed : int;  (** backoff jitter seed *)
  poll_interval : float;  (** watchdog polling period, seconds *)
}

val default_policy : policy
(** No deadline, no retries, {!Backoff.default}, seed 0, 2ms polls. *)

type 'a handle

val spawn : Exec.Pool.t -> policy -> ident:string -> (unit -> 'a) -> 'a handle
(** Submit the first attempt.  [ident] names the job in logs, backoff
    seeding and fault injection (site ["pool.job"] fires at thunk
    entry). *)

val join : 'a handle -> ('a, error) result
(** Wait for the outcome, enforcing the deadline and driving retries.
    Never raises; every failure mode is folded into [error].  Call from
    a non-worker domain (the figure-rendering domain). *)

val run : Exec.Pool.t -> policy -> ident:string -> (unit -> 'a) -> ('a, error) result
(** [join (spawn ...)]. *)
