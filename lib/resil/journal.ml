let version = 2

type entry = {
  payload : string;  (* the validated truth, served by [find] *)
  stored : string;  (* what goes to disk: payload after the journal.write
                       mangle point — normally identical *)
}

type t = {
  path : string;
  signature : string;
  sig_digest : string;
  mutex : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable quarantined : int;
}

let path t = t.path
let signature t = t.signature

let bad_path path = path ^ ".bad"

let header_line sig_digest = Printf.sprintf "crisp-journal %d %s" version sig_digest

(* Entry digests cover the signature digest as well as the payload, so a
   line appended under one run signature can never be trusted by a journal
   opened under another — even if several journals interleave lines in one
   file, each load validates only its own. *)
let entry_digest sig_digest payload = Digest.to_hex (Digest.string (sig_digest ^ payload))

(* One process-wide lock for the exists-check + append pairs, so several
   live journals on one path (the daemon's server-state journal next to a
   grid journal, or an operator mistake) serialise their writes instead of
   interleaving bytes mid-line. *)
let io_mutex = Mutex.create ()

(* Append whole lines with a single write(2) on an O_APPEND descriptor:
   concurrent appenders (and a SIGKILL) can only ever leave a torn *tail*,
   which the checksum quarantine catches on the next load. *)
let append_text path text =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string text in
      let n = Bytes.length b in
      let rec go off =
        if off < n then go (off + Unix.write fd b off (n - off))
      in
      go 0)

let sanitize_key key =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' || c = '\r' then '_' else c) key

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let rec fill i =
      if i >= n then Some (Bytes.to_string b)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
          Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
          fill (i + 2)
        | _ -> None
    in
    fill 0

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.mutex)

let quarantine_lines t lines reason_key reason =
  (try
     let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (bad_path t.path) in
     List.iter (fun l -> output_string oc (l ^ "\n")) lines;
     close_out_noerr oc
   with Sys_error _ -> ());
  t.quarantined <- t.quarantined + 1;
  Log.record (Log.Quarantined { ident = reason_key; reason })

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load_entry t line =
  match String.split_on_char ' ' line with
  | [ key; digest_hex; payload_hex ] -> (
    match hex_decode payload_hex with
    | None ->
      quarantine_lines t [ line ] key "journal entry payload is not hex; quarantined"
    | Some raw ->
      let payload = Fault_plan.mangle ~ident:key "journal.read" raw in
      if entry_digest t.sig_digest payload = digest_hex then
        Hashtbl.replace t.entries key { payload; stored = payload }
      else
        quarantine_lines t [ line ] key
          "journal entry failed its checksum; quarantined and recomputed")
  | _ ->
    if String.trim line <> "" then
      quarantine_lines t [ line ] "journal" "unparsable journal line; quarantined"

let load ~path ~signature =
  let sig_digest = Digest.to_hex (Digest.string signature) in
  let t =
    { path;
      signature;
      sig_digest;
      mutex = Mutex.create ();
      entries = Hashtbl.create 64;
      quarantined = 0 }
  in
  (if Sys.file_exists path then
     match read_lines path with
     | exception Sys_error reason ->
       Log.record (Log.Quarantined { ident = path; reason = "journal unreadable: " ^ reason });
       t.quarantined <- t.quarantined + 1
     | [] ->
       (try Sys.rename path (bad_path path) with Sys_error _ -> ());
       t.quarantined <- t.quarantined + 1;
       Log.record (Log.Quarantined { ident = path; reason = "empty journal file; moved to .bad" })
     | header :: rest ->
       if header <> header_line sig_digest then begin
         (try Sys.rename path (bad_path path) with Sys_error _ -> ());
         t.quarantined <- t.quarantined + 1;
         Log.record
           (Log.Quarantined
              { ident = path;
                reason =
                  "journal header mismatch (stale run signature or corrupt file); \
                   moved to .bad" })
       end
       else List.iter (load_entry t) rest);
  (* Eagerly materialise the header so every later [record] is a pure
     append: a file that is missing here either never existed or was just
     quarantined to .bad. *)
  Mutex.lock io_mutex;
  (try
     if not (Sys.file_exists path) then
       append_text path (header_line sig_digest ^ "\n")
   with e ->
     Mutex.unlock io_mutex;
     raise e);
  Mutex.unlock io_mutex;
  t

let record t ~key ~payload =
  let key = sanitize_key key in
  locked t (fun () ->
      (* The digest is taken on the true payload *before* the write-site
         mangle point, so an injected corruption is detectable on load. *)
      let stored = Fault_plan.mangle ~ident:key "journal.write" payload in
      Hashtbl.replace t.entries key { payload; stored };
      let line =
        Printf.sprintf "%s %s %s\n" key
          (entry_digest t.sig_digest payload)
          (hex_encode stored)
      in
      Mutex.lock io_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock io_mutex)
        (fun () ->
          (* Re-seed the header if the file vanished since load (e.g. a
             sibling journal with a different signature quarantined it):
             an appended entry under a missing or foreign header would be
             unusable at best. *)
          if not (Sys.file_exists t.path) then
            append_text t.path (header_line t.sig_digest ^ "\n");
          append_text t.path line))

let find t key =
  let key = sanitize_key key in
  locked t (fun () ->
      Option.map (fun e -> e.payload) (Hashtbl.find_opt t.entries key))

let size t = locked t (fun () -> Hashtbl.length t.entries)
let quarantined t = t.quarantined

(* ---- named journals ---- *)

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let in_dir ~dir ~name ~signature =
  if name = "" then invalid_arg "Resil.Journal.in_dir: empty journal name";
  let slug = sanitize_name name in
  mkdir_p dir;
  load ~path:(Filename.concat dir (slug ^ ".journal")) ~signature
