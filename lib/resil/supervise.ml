type error =
  | Timeout of float
  | Crashed of exn
  | Quarantined of string
  | Gave_up of exn

exception Quarantined_failure of string

let error_to_string = function
  | Timeout d -> Printf.sprintf "timeout: exceeded the %.3gs deadline" d
  | Crashed exn -> "crashed: " ^ Printexc.to_string exn
  | Quarantined reason -> "quarantined: " ^ reason
  | Gave_up exn -> "gave up after retries; last error: " ^ Printexc.to_string exn

type policy = {
  deadline : float option;
  retries : int;
  backoff : Backoff.params;
  seed : int;
  poll_interval : float;
}

let default_policy =
  { deadline = None;
    retries = 0;
    backoff = Backoff.default;
    seed = 0;
    poll_interval = 0.002 }

type 'a attempt = {
  fut : 'a Exec.Future.t;
  started : float option Atomic.t;
  finished : float option Atomic.t;
}

type 'a handle = {
  pool : Exec.Pool.t;
  policy : policy;
  ident : string;
  thunk : unit -> 'a;
  mutable attempt_no : int;  (* 0 = first attempt *)
  mutable current : ('a attempt, error) result;
}

let start pool ident thunk =
  let started = Atomic.make None and finished = Atomic.make None in
  match
    Exec.Pool.submit pool (fun () ->
        Atomic.set started (Some (Clock.now ()));
        Fault_plan.hit ~ident "pool.job";
        let v = thunk () in
        Atomic.set finished (Some (Clock.now ()));
        v)
  with
  | fut -> Ok { fut; started; finished }
  | exception exn -> Error (Crashed exn)

let spawn pool policy ~ident thunk =
  { pool; policy; ident; thunk; attempt_no = 0; current = start pool ident thunk }

(* Watch one attempt to completion or deadline.  The deadline clock runs
   from thunk entry, so jobs parked behind a busy pool are not charged
   their queueing delay. *)
let watch policy attempt =
  let deadline_hit t0 = function
    | Some d when Clock.now () -. t0 > d -> Some (Timeout d)
    | Some _ | None -> None
  in
  let rec poll () =
    match Exec.Future.poll attempt.fut with
    | Some (Ok v) -> (
      (* Post-hoc classification: on the sequential pool (or when the
         job finished between polls) a stalled attempt still counts as
         timed out, keeping the verdict identical across --jobs. *)
      match (policy.deadline, Atomic.get attempt.started, Atomic.get attempt.finished)
      with
      | Some d, Some t0, Some t1 when t1 -. t0 > d -> Error (Timeout d)
      | _ -> Ok v)
    | Some (Error (Quarantined_failure reason)) -> Error (Quarantined reason)
    | Some (Error exn) -> Error (Crashed exn)
    | None -> (
      match Atomic.get attempt.started with
      | Some t0 -> (
        match deadline_hit t0 policy.deadline with
        | Some e -> Error e  (* abandon: the worker keeps the thunk, we move on *)
        | None ->
          Unix.sleepf policy.poll_interval;
          poll ())
      | None ->
        Unix.sleepf policy.poll_interval;
        poll ())
  in
  poll ()

let join h =
  let policy = h.policy in
  let rec drive () =
    match h.current with
    | Error e -> Error e
    | Ok attempt -> (
      match watch policy attempt with
      | Ok v -> Ok v
      | Error (Timeout _ as e) -> Error e
      | Error (Quarantined _ as e) -> Error e
      | Error (Gave_up _ as e) -> Error e
      | Error (Crashed exn) ->
        if h.attempt_no >= policy.retries then
          if policy.retries = 0 then Error (Crashed exn) else Error (Gave_up exn)
        else begin
          let delay =
            Backoff.delay policy.backoff ~seed:policy.seed ~ident:h.ident
              ~attempt:h.attempt_no
          in
          Log.record
            (Log.Retry
               { ident = h.ident;
                 attempt = h.attempt_no + 1;
                 delay;
                 cause = Printexc.to_string exn });
          Unix.sleepf delay;
          h.attempt_no <- h.attempt_no + 1;
          h.current <- start h.pool h.ident h.thunk;
          drive ()
        end)
  in
  drive ()

let run pool policy ~ident thunk = join (spawn pool policy ~ident thunk)
