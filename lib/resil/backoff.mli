(** Deterministic exponential backoff with seeded jitter.

    The delay before retry attempt [k] is
    [min (base * factor^k) max_delay], scaled by a jitter factor drawn
    from a PRNG seeded by [(seed, ident, k)] — a pure function of its
    inputs.  Two runs with the same seed therefore sleep the exact same
    schedule for the same job, no matter how many worker domains are
    racing, which is what makes fault-injection runs reproducible. *)

type params = {
  base : float;  (** first delay, seconds *)
  factor : float;  (** exponential growth per attempt *)
  max_delay : float;  (** cap on the nominal delay *)
  jitter : float;  (** fraction of the nominal delay spread by the PRNG *)
}

val default : params
(** [{ base = 0.05; factor = 2.0; max_delay = 1.0; jitter = 0.25 }] *)

val delay : params -> seed:int -> ident:string -> attempt:int -> float
(** Delay in seconds before retry [attempt] (0-based) of the job
    identified by [ident].  Pure and deterministic; always [>= 0]. *)

val schedule : params -> seed:int -> ident:string -> attempts:int -> float list
(** The first [attempts] delays, i.e. [delay ~attempt:0 .. attempts-1]. *)

val sleep : params -> seed:int -> ident:string -> attempt:int -> unit
(** Sleep exactly [delay ~attempt] seconds — the convenience retry
    loops reach for when they have no server-supplied hint to fold in. *)
