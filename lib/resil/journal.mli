(** Versioned, checksummed on-disk journal of completed grid cells —
    the checkpoint behind [crisp_sim experiments --resume].

    {2 Format}

    A text file: a header line [crisp-journal VERSION SIG] (where SIG is
    the digest of the caller's signature string — format version, grid
    sizes, anything that must match for old entries to be reusable),
    then one line per entry: [KEY DIGEST HEX-PAYLOAD], where DIGEST is
    the MD5 of the {e payload} (not of the hex encoding).

    {2 Trust policy}

    Nothing read from disk is trusted:
    - a header mismatch (foreign file, older version, different sizes)
      quarantines the {e whole file} to [PATH.bad] and starts empty;
    - an entry that fails to parse, to hex-decode, or whose digest does
      not match its payload is appended to [PATH.bad] and dropped — the
      cell is simply recomputed;
    - every quarantine is recorded in {!Log} so the run reports it.

    {2 Atomicity}

    {!record} rewrites the whole file through a [PATH.tmp] +
    [rename(2)] pair, so a SIGKILL at any instant leaves either the old
    complete journal or the new complete journal, never a torn one.  A
    leftover [.tmp] from a kill is ignored and overwritten.

    Fault-injection sites: ["journal.write"] mangles the payload bytes
    written for an entry (the digest is computed on the true payload
    first, so corruption is {e detectable} on the next load);
    ["journal.read"] mangles payload bytes as they are read.  Both are
    inert when no plan is armed. *)

type t

val load : path:string -> signature:string -> t
(** Open (or create the in-memory image of) the journal at [path].  A
    missing file is an empty journal; an unreadable, stale or corrupt
    one is quarantined as described above. *)

val path : t -> string
val signature : t -> string

val find : t -> string -> string option
(** The validated payload recorded for a key, if any. *)

val record : t -> key:string -> payload:string -> unit
(** Insert (or replace) an entry and atomically rewrite the file.
    Whitespace in [key] is replaced by ['_'].
    @raise Fault_plan.Injected when an armed [Throw] trigger fires at
    the ["journal.write"] site (callers treat a failed checkpoint as a
    quarantine, not a fatal error). *)

val size : t -> int
(** Validated entries currently held. *)

val quarantined : t -> int
(** Entries (or whole files) quarantined while loading this journal. *)
