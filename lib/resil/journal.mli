(** Versioned, checksummed on-disk journal of completed grid cells —
    the checkpoint behind [crisp_sim experiments --resume].

    {2 Format}

    A text file: a header line [crisp-journal VERSION SIG] (where SIG is
    the digest of the caller's signature string — format version, grid
    sizes, anything that must match for old entries to be reusable),
    then one line per entry: [KEY DIGEST HEX-PAYLOAD], where DIGEST is
    the MD5 of [SIG ^ payload] (not of the hex encoding), so an entry is
    only ever valid under the signature it was recorded for.  Re-recording
    a key appends a new line; the {e last} valid line for a key wins on
    load.

    {2 Trust policy}

    Nothing read from disk is trusted:
    - a header mismatch (foreign file, older version, different sizes)
      quarantines the {e whole file} to [PATH.bad] and starts empty;
    - an entry that fails to parse, to hex-decode, or whose digest does
      not match its payload-under-this-signature is appended to
      [PATH.bad] and dropped — the cell is simply recomputed;
    - every quarantine is recorded in {!Log} so the run reports it.

    {2 Atomicity and concurrency}

    {!load} materialises the header; {!record} appends one entry line
    with a single [write(2)] on an [O_APPEND] descriptor.  A SIGKILL at
    any instant can only leave a torn {e tail} line, which the checksum
    quarantine drops on the next load (one cell recomputed, the rest
    kept).  Appends are serialised process-wide, so several named
    journals can live in one process — the farm daemon's server-state
    journal next to per-grid cell journals — and even two journals
    accidentally opened on the {e same} path interleave whole lines
    rather than clobbering each other's entries (each load then trusts
    only the lines recorded under its own signature).

    Fault-injection sites: ["journal.write"] mangles the payload bytes
    written for an entry (the digest is computed on the true payload
    first, so corruption is {e detectable} on the next load);
    ["journal.read"] mangles payload bytes as they are read.  Both are
    inert when no plan is armed. *)

type t

val load : path:string -> signature:string -> t
(** Open (or create the in-memory image of) the journal at [path].  A
    missing file is an empty journal; an unreadable, stale or corrupt
    one is quarantined as described above. *)

val in_dir : dir:string -> name:string -> signature:string -> t
(** [in_dir ~dir ~name ~signature] opens the named journal
    [DIR/NAME.journal] (creating [DIR] as needed; [name] is sanitised to
    a filesystem-safe slug).  This is how a process holds several
    journals side by side — e.g. the [crisp_simd] daemon's ["server"]
    state journal next to its ["cells"] checkpoint journal.
    @raise Invalid_argument on an empty [name]. *)

val path : t -> string
val signature : t -> string

val find : t -> string -> string option
(** The validated payload recorded for a key, if any. *)

val record : t -> key:string -> payload:string -> unit
(** Insert (or replace) an entry and append it to the file in one write.
    Whitespace in [key] is replaced by ['_'].
    @raise Fault_plan.Injected when an armed [Throw] trigger fires at
    the ["journal.write"] site (callers treat a failed checkpoint as a
    quarantine, not a fatal error). *)

val size : t -> int
(** Validated entries currently held. *)

val quarantined : t -> int
(** Entries (or whole files) quarantined while loading this journal. *)
