type event =
  | Fault_fired of { site : string; ident : string; action : string }
  | Retry of { ident : string; attempt : int; delay : float; cause : string }
  | Degraded of { ident : string; error : string }
  | Quarantined of { ident : string; reason : string }
  | Restored of { ident : string }

let mutex = Mutex.create ()
let events_rev : event list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect f ~finally:(fun () -> Mutex.unlock mutex)

let record ev = locked (fun () -> events_rev := ev :: !events_rev)
let events () = locked (fun () -> List.rev !events_rev)
let clear () = locked (fun () -> events_rev := [])

let ident_of = function
  | Fault_fired { ident; _ }
  | Retry { ident; _ }
  | Degraded { ident; _ }
  | Quarantined { ident; _ }
  | Restored { ident } -> ident

let by_ident () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let id = ident_of ev in
      Hashtbl.replace tbl id (ev :: (try Hashtbl.find tbl id with Not_found -> [])))
    (events ());
  Hashtbl.fold (fun id evs acc -> (id, List.rev evs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counts () =
  List.fold_left
    (fun (f, r, d, q, s) -> function
      | Fault_fired _ -> (f + 1, r, d, q, s)
      | Retry _ -> (f, r + 1, d, q, s)
      | Degraded _ -> (f, r, d + 1, q, s)
      | Quarantined _ -> (f, r, d, q + 1, s)
      | Restored _ -> (f, r, d, q, s + 1))
    (0, 0, 0, 0, 0) (events ())

let pp_event ppf = function
  | Fault_fired { site; ident; action } ->
    Format.fprintf ppf "fault %s at %s (%s)" action site ident
  | Retry { ident; attempt; delay; cause } ->
    Format.fprintf ppf "retry #%d of %s after %.3fs (%s)" attempt ident delay cause
  | Degraded { ident; error } -> Format.fprintf ppf "DEGRADED %s: %s" ident error
  | Quarantined { ident; reason } ->
    Format.fprintf ppf "quarantined %s: %s" ident reason
  | Restored { ident } -> Format.fprintf ppf "restored %s from journal" ident

let pp_summary ppf () =
  let faults, retries, degraded, quarantined, restored = counts () in
  Format.fprintf ppf
    "resilience: %d fault(s) fired, %d retry(ies), %d cell(s) restored from \
     journal, %d quarantined, %d degraded@."
    faults retries restored quarantined degraded;
  List.iter
    (fun ev ->
      match ev with
      | Degraded _ | Quarantined _ -> Format.fprintf ppf "  %a@." pp_event ev
      | Fault_fired _ | Retry _ | Restored _ -> ())
    (events ())
