(** Experiment runner: builds workloads, runs the FDO flow on the train
    input, evaluates on the ref input, and memoises results so figures
    sharing a baseline simulate it once.

    The memo table is an {!Exec.Memo}: it is safe to call {!evaluate} from
    several domains at once (the parallel experiment suite does), and
    concurrent requests for the same (name, sizes, config, variant) cell
    deduplicate in flight — the simulation runs exactly once and every
    caller receives the same outcome. *)

(** What runs on the core.

    {b Plain-data invariant}: every payload reachable from a [variant]
    (and from the [Cpu_config.t] passed to {!evaluate}) must be plain
    structural data — records, tuples, lists, scalars.  No closures,
    objects, or custom blocks: the memo key is a [Marshal]-based digest of
    the whole tuple, and {!evaluate} raises a descriptive
    [Invalid_argument] if a payload cannot be marshalled. *)
type variant =
  | Ooo  (** untagged baseline *)
  | Crisp of Classifier.thresholds * Tagger.options
      (** full software flow; scheduler uses the CRISP policy *)
  | Ibda of Ibda.config
      (** hardware-only baseline: online IBDA tags, CRISP scheduler *)

val crisp_default : variant

type outcome = {
  stats : Cpu_stats.t;
  artifacts : Fdo.artifacts option;  (** CRISP variants only *)
}

val evaluate :
  ?cfg:Cpu_config.t ->
  ?eval_instrs:int ->
  ?train_instrs:int ->
  name:string ->
  variant ->
  outcome
(** [evaluate ~name variant] returns the evaluation-run statistics for the
    named workload.  Results are cached on (name, sizes, config, variant).
    The CRISP variants profile on the [Train] input and evaluate on [Ref]
    (Section 5.1); IBDA learns online during the evaluation run itself.

    Fault-injection sites (inert unless a {!Resil.Fault_plan} is armed):
    ["runner.run"] at cache-miss computation, ["memo.store"] /
    ["memo.lookup"] around the integrity-sealed memo entry.  A cached
    entry whose integrity check fails is evicted, logged as quarantined
    and recomputed (bounded); if recomputation keeps failing the call
    raises {!Resil.Supervise.Quarantined_failure} — a corrupt result is
    never returned. *)

type sampled = {
  sampled_result : Sampler.result;
  sampled_artifacts : Fdo.artifacts option;  (** CRISP variants only *)
}

val evaluate_sampled :
  ?cfg:Cpu_config.t ->
  ?eval_instrs:int ->
  ?train_instrs:int ->
  sample:Sample_config.t ->
  name:string ->
  variant ->
  sampled
(** {!evaluate} with the timing run replaced by statistical sampling
    ({!Sampler.run}): CPI and CRISP headline statistics come from the
    measured windows, as a mean with a 95% confidence interval.  The
    CRISP profiling/FDO pass and IBDA's online learning stay
    full-fidelity — only timing simulation is sampled.

    Sampled outcomes are memoised in a dedicated table whose keys embed
    the canonical sample-config string, so a sampled cell can never be
    served from (or pollute) a full-fidelity cell with the same
    coordinates. *)

val traced :
  ?cfg:Cpu_config.t ->
  ?eval_instrs:int ->
  ?train_instrs:int ->
  ?tracer:Obs_tracer.t ->
  name:string ->
  variant ->
  outcome * Obs_tracer.t
(** Like {!evaluate} but with the observability layer enabled: the
    evaluation run emits pipeline events into the returned tracer (a
    fresh one unless [tracer] is supplied).  Never memoised — tracers are
    not plain data — and statistics are identical to the untraced run on
    the same inputs. *)

val speedup_over_ooo :
  ?cfg:Cpu_config.t -> ?eval_instrs:int -> ?train_instrs:int -> name:string ->
  variant -> float
(** IPC of the variant over the OOO baseline IPC, as a ratio (1.0 = equal). *)

val clear_cache : unit -> unit
(** Drop completed memo entries (in-flight simulations still publish). *)

val cache_stats : unit -> Exec.Memo.stats
(** Lifetime hit/miss/dedup counters of the simulation memo — how often a
    requested (name, sizes, config, variant) cell was served without
    rerunning the simulator. *)
