let label_width rows =
  List.fold_left (fun w (label, _) -> max w (String.length label)) 10 rows

let print_header ~title ~header ~width =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-*s" width "";
  List.iter (fun h -> Printf.printf " %12s" h) header;
  print_newline ()

(* A NaN cell is a degraded cell (its job timed out, crashed or was
   quarantined): render an explicit marker instead of "nan" so figures
   from a faulted run are readable, and keep it out of aggregates. *)

let print_table ~title ~header rows =
  let width = label_width rows in
  print_header ~title ~header ~width;
  List.iter
    (fun (label, values) ->
      Printf.printf "%-*s" width label;
      List.iter
        (fun v ->
          if Float.is_nan v then Printf.printf " %12s" "--"
          else Printf.printf " %12.2f" v)
        values;
      print_newline ())
    rows

let print_percent_table ~title ~header rows =
  let width = label_width rows in
  print_header ~title ~header ~width;
  List.iter
    (fun (label, values) ->
      Printf.printf "%-*s" width label;
      List.iter
        (fun v ->
          if Float.is_nan v then Printf.printf " %12s" "--"
          else Printf.printf " %+11.1f%%" (100. *. v))
        values;
      print_newline ())
    rows

let print_bars ~title rows =
  Printf.printf "\n== %s ==\n" title;
  let width = label_width rows in
  let maximum =
    List.fold_left
      (fun m (_, v) -> if Float.is_nan v then m else Float.max m v)
      0. rows
  in
  List.iter
    (fun (label, v) ->
      if Float.is_nan v then Printf.printf "%-*s %10s |\n" width label "--"
      else
        let bar_len =
          if maximum <= 0. then 0 else int_of_float (40. *. v /. maximum)
        in
        Printf.printf "%-*s %10.2f |%s\n" width label v
          (String.make (max 0 bar_len) '#'))
    rows

let print_series ~title series =
  Printf.printf "\n== %s ==\n" title;
  if Array.length series = 0 then print_endline "(empty series)"
  else begin
    let ys = Array.map snd series in
    let lo = Array.fold_left Float.min ys.(0) ys in
    let hi = Array.fold_left Float.max ys.(0) ys in
    let glyphs = [| '_'; '.'; '-'; '='; '*'; '#' |] in
    let glyph y =
      if hi <= lo then glyphs.(0)
      else
        let level = int_of_float ((y -. lo) /. (hi -. lo) *. 5.99) in
        glyphs.(max 0 (min 5 level))
    in
    Printf.printf "min %.2f  max %.2f  (%d points)\n" lo hi (Array.length series);
    Array.iter (fun (_, y) -> print_char (glyph y)) series;
    print_newline ()
  end

let geomean values =
  match values with
  | [] -> 1.0
  | _ ->
    let log_sum = List.fold_left (fun acc v -> acc +. log (Float.max v 1e-9)) 0. values in
    exp (log_sum /. float_of_int (List.length values))

let mean values =
  match values with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
