(** Figure grids as plain data.

    A grid is the (application x column) cell matrix behind a figure:
    every cell is a pure, memoised simulation result keyed by a workload
    name, a scheduler-variant column and the instruction budgets.  The
    specs here are the {e single} source of truth shared by three
    consumers that must agree byte-for-byte:

    - {!Experiments} runs them through the supervised job graph and
      renders them ({!render});
    - the simulation-farm daemon ([crisp_simd]) decomposes wire requests
      into the same cells, dedups them across clients and journals them;
    - [crisp_sim client] rebuilds the rows from streamed cell frames and
      renders them with the same {!render}.

    Everything in a {!spec} is wire-encodable scalar data (no closures,
    no configs), so a grid request can travel over the farm protocol and
    still name exactly the same memo keys on the far side. *)

type metric =
  | Gain  (** IPC of the column's variant over the OOO baseline, minus 1 *)
  | Slice_size  (** average dynamic load-slice length (Figure 4) *)
  | Static_count  (** tagged static instructions (Figure 11) *)

type column = {
  label : string;  (** printed column header *)
  variant : string;
      (** scheduler variant by name: ["ooo"], ["crisp"], ["crisp-load"],
          ["crisp-branch"], ["ibda-1k"], ["ibda-8k"], ["ibda-64k"] or
          ["ibda-inf"] *)
  threshold : float option;
      (** miss-contribution threshold override; ["crisp"] only *)
  window : (int * int) option;  (** (rs, rob) override of the skylake window *)
}

type spec = {
  tag : string;  (** grid name: ["fig7"] etc; also the cell-ident prefix *)
  title : string;
  with_mean : bool;  (** append an arithmetic-mean row when rendering *)
  metric : metric;
  columns : column list;
  names : string list;  (** workload names, in figure (catalog) order *)
}

val fig4 : spec
val fig7 : spec
val fig8 : spec
val fig9 : spec
val fig10 : spec
val fig11 : spec

val catalog : spec list
(** The farm-servable grids, in figure order. *)

val find : string -> spec option
(** Look a grid up by {!spec.tag}. *)

val metric_to_string : metric -> string
val metric_of_string : string -> (metric, string) result

val variant_of_column : column -> (Runner.variant, string) result
(** Resolve a column to the runner variant it names; [Error] explains an
    unknown variant name or a threshold on a non-CRISP column. *)

val validate : spec -> (unit, string) result
(** Everything {!cell_value} would reject, checked up front: unknown
    workload names, unresolvable columns, empty rows or columns — the
    daemon runs this on every request before spawning work. *)

val cell_value :
  ?sample:Sample_config.t ->
  eval_instrs:int -> train_instrs:int -> name:string -> metric:metric ->
  column -> float
(** Compute one cell (memoised through {!Runner.evaluate}).  With
    [sample] set, Gain cells use sampled timing runs
    ({!Runner.evaluate_sampled}, separate memo identity); artifact
    metrics come from the full-fidelity FDO pass either way.
    @raise Invalid_argument on a column {!validate} would reject. *)

val full_rows :
  spec -> (string * float list) list -> (string * float list) list
(** The rows as figures report them: unchanged, plus the mean row when
    [with_mean] is set. *)

val render : spec -> (string * float list) list -> unit
(** Print the figure text for the grid's rows (without the mean row —
    {!render} appends it itself).  Degraded cells are [Float.nan],
    rendered as [--] by {!Report}. *)
