type metric =
  | Gain
  | Slice_size
  | Static_count

type column = {
  label : string;
  variant : string;
  threshold : float option;
  window : (int * int) option;
}

type spec = {
  tag : string;
  title : string;
  with_mean : bool;
  metric : metric;
  columns : column list;
  names : string list;
}

let apps = Catalog.spec_names @ Catalog.datacenter_names

let col ?threshold ?window label variant = { label; variant; threshold; window }

let fig4 =
  { tag = "fig4";
    title = "Figure 4: average load slice size (dynamic micro-ops)";
    with_mean = false;
    metric = Slice_size;
    columns = [ col "crisp" "crisp" ];
    names = apps }

let fig7 =
  { tag = "fig7";
    title = "Figure 7: IPC improvement over OOO (CRISP vs IBDA)";
    with_mean = true;
    metric = Gain;
    columns =
      [ col "CRISP" "crisp";
        col "IBDA-1K" "ibda-1k";
        col "IBDA-8K" "ibda-8k";
        col "IBDA-64K" "ibda-64k";
        col "IBDA-inf" "ibda-inf" ];
    names = apps }

let fig8 =
  { tag = "fig8";
    title = "Figure 8: load slices, branch slices, and their combination";
    with_mean = false;
    metric = Gain;
    columns =
      [ col "load" "crisp-load"; col "branch" "crisp-branch"; col "combined" "crisp" ];
    names = apps }

let fig9 =
  { tag = "fig9";
    title = "Figure 9: CRISP gain vs reservation-station / ROB size";
    with_mean = false;
    metric = Gain;
    columns =
      List.map
        (fun (rs, rob) ->
          col ~window:(rs, rob) (Printf.sprintf "%d/%d" rs rob) "crisp")
        [ (64, 180); (96, 224); (144, 336); (192, 448) ];
    names = apps }

let fig10 =
  { tag = "fig10";
    title = "Figure 10: sensitivity to the miss-contribution threshold T";
    with_mean = false;
    metric = Gain;
    columns =
      [ col ~threshold:0.05 "T=5%" "crisp";
        col ~threshold:0.01 "T=1%" "crisp";
        col ~threshold:0.002 "T=0.2%" "crisp" ];
    names = apps }

let fig11 =
  { tag = "fig11";
    title = "Figure 11: total static critical instructions";
    with_mean = false;
    metric = Static_count;
    columns = [ col "crisp" "crisp" ];
    names = apps }

let catalog = [ fig4; fig7; fig8; fig9; fig10; fig11 ]

let find tag = List.find_opt (fun s -> s.tag = tag) catalog

let metric_to_string = function
  | Gain -> "gain"
  | Slice_size -> "slice-size"
  | Static_count -> "static-count"

let metric_of_string = function
  | "gain" -> Ok Gain
  | "slice-size" -> Ok Slice_size
  | "static-count" -> Ok Static_count
  | other -> Error (Printf.sprintf "unknown metric %S" other)

let variant_of_column c =
  match (c.variant, c.threshold) with
  | "ooo", None -> Ok Runner.Ooo
  | "crisp", None -> Ok Runner.crisp_default
  | "crisp", Some t ->
    Ok
      (Runner.Crisp
         (Classifier.with_miss_contribution t Classifier.default, Tagger.default_options))
  | "crisp-load", None -> Ok (Runner.Crisp (Classifier.default, Tagger.load_slices_only))
  | "crisp-branch", None ->
    Ok (Runner.Crisp (Classifier.default, Tagger.branch_slices_only))
  | "ibda-1k", None -> Ok (Runner.Ibda Ibda.ist_1k)
  | "ibda-8k", None -> Ok (Runner.Ibda Ibda.ist_8k)
  | "ibda-64k", None -> Ok (Runner.Ibda Ibda.ist_64k)
  | "ibda-inf", None -> Ok (Runner.Ibda Ibda.ist_infinite)
  | ("ooo" | "crisp-load" | "crisp-branch" | "ibda-1k" | "ibda-8k" | "ibda-64k"
    | "ibda-inf"), Some _ ->
    Error (Printf.sprintf "variant %S does not take a threshold" c.variant)
  | other, _ -> Error (Printf.sprintf "unknown variant %S" other)

let needs_artifacts = function
  | Slice_size | Static_count -> true
  | Gain -> false

let validate spec =
  let ( let* ) r f = Result.bind r f in
  let* () = if spec.names = [] then Error "grid has no workloads" else Ok () in
  let* () = if spec.columns = [] then Error "grid has no columns" else Ok () in
  let* () =
    match List.find_opt (fun n -> not (List.mem n Catalog.names)) spec.names with
    | Some n -> Error (Printf.sprintf "unknown workload %S" n)
    | None -> Ok ()
  in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* v = variant_of_column c in
      match v with
      | Runner.Crisp _ -> Ok ()
      | Runner.Ooo | Runner.Ibda _ ->
        if needs_artifacts spec.metric then
          Error
            (Printf.sprintf "metric %s needs a CRISP column, got %S"
               (metric_to_string spec.metric) c.variant)
        else Ok ())
    (Ok ()) spec.columns

let config_of_window = function
  | None -> Cpu_config.skylake
  | Some (rs, rob) -> Cpu_config.with_window ~rs ~rob Cpu_config.skylake

let ipc_of (outcome : Runner.outcome) = Cpu_stats.ipc outcome.Runner.stats

(* Sampled evaluation keeps its own memo identity in [Runner], so a
   sampled Gain cell never reuses (or pollutes) a full-fidelity cell. *)
let evaluate_ipc ?sample ~cfg ~eval_instrs ~train_instrs ~name variant =
  match sample with
  | None ->
    ipc_of (Runner.evaluate ~cfg ~eval_instrs ~train_instrs ~name variant)
  | Some sample ->
    let s = Runner.evaluate_sampled ~cfg ~eval_instrs ~train_instrs ~sample ~name variant in
    Cpu_stats.ipc s.Runner.sampled_result.Sampler.stats

let cell_value ?sample ~eval_instrs ~train_instrs ~name ~metric column =
  let cfg = config_of_window column.window in
  let variant =
    match variant_of_column column with
    | Ok v -> v
    | Error msg -> invalid_arg ("Grid.cell_value: " ^ msg)
  in
  match metric with
  | Gain ->
    let base = evaluate_ipc ?sample ~cfg ~eval_instrs ~train_instrs ~name Runner.Ooo in
    let v = evaluate_ipc ?sample ~cfg ~eval_instrs ~train_instrs ~name variant in
    (v /. base) -. 1.
  | Slice_size | Static_count -> (
    (* Artifact metrics come from the FDO pass, which sampling leaves at
       full fidelity; under sampling the (cheap, sampled) evaluation
       still avoids the full timing run. *)
    let artifacts =
      match sample with
      | None ->
        (Runner.evaluate ~cfg ~eval_instrs ~train_instrs ~name variant).Runner.artifacts
      | Some sample ->
        (Runner.evaluate_sampled ~cfg ~eval_instrs ~train_instrs ~sample ~name variant)
          .Runner.sampled_artifacts
    in
    match artifacts with
    | None ->
      invalid_arg
        (Printf.sprintf "Grid.cell_value: metric %s needs a CRISP column"
           (metric_to_string metric))
    | Some artifacts -> (
      match metric with
      | Slice_size -> Tagger.avg_load_slice_size artifacts.Fdo.tagging
      | Static_count -> float_of_int artifacts.Fdo.tagging.Tagger.static_count
      | Gain -> assert false))

let full_rows spec rows =
  if not spec.with_mean then rows
  else
    let means =
      List.init (List.length spec.columns) (fun i ->
          Report.mean (List.map (fun (_, vs) -> List.nth vs i) rows))
    in
    rows @ [ ("mean", means) ]

let render spec rows =
  let rows = full_rows spec rows in
  match spec.metric with
  | Gain ->
    Report.print_percent_table ~title:spec.title
      ~header:(List.map (fun c -> c.label) spec.columns)
      rows
  | Slice_size | Static_count ->
    Report.print_bars ~title:spec.title
      (List.map
         (fun (name, vs) ->
           match vs with [ v ] -> (name, v) | _ -> (name, Float.nan))
         rows)
