type variant =
  | Ooo
  | Crisp of Classifier.thresholds * Tagger.options
  | Ibda of Ibda.config

let crisp_default = Crisp (Classifier.default, Tagger.default_options)

type outcome = {
  stats : Cpu_stats.t;
  artifacts : Fdo.artifacts option;
}

(* Cached outcomes carry an integrity seal: when a fault plan is armed,
   [repr] holds the marshalled outcome as it passed the "memo.store"
   data site and [fingerprint] the digest of the bytes *before* that
   point, so an injected corruption is detected at lookup instead of
   leaking a silently-wrong figure.  When no plan is armed both fields
   are empty and the seal costs nothing. *)
type 'a sealed = {
  outcome : 'a;
  repr : string;
  fingerprint : string;
}

(* Sampled outcomes live in their own table: a sampled cell must never
   share a memo identity with a full-fidelity cell. *)
type sampled = {
  sampled_result : Sampler.result;
  sampled_artifacts : Fdo.artifacts option;
}

let cache : (string, outcome sealed) Exec.Memo.t = Exec.Memo.create ~size_hint:64 ()

let sampled_cache : (string, sampled sealed) Exec.Memo.t =
  Exec.Memo.create ~size_hint:64 ()

let clear_cache () =
  Exec.Memo.clear cache;
  Exec.Memo.clear sampled_cache

let cache_stats () = Exec.Memo.stats cache

let seal ~ident outcome =
  if not (Resil.Fault_plan.armed ()) then { outcome; repr = ""; fingerprint = "" }
  else
    let repr = Marshal.to_string outcome [ Marshal.Closures ] in
    let fingerprint = Digest.to_hex (Digest.string repr) in
    let repr = Resil.Fault_plan.mangle ~ident "memo.store" repr in
    { outcome; repr; fingerprint }

let unseal ~ident sealed =
  if sealed.fingerprint = "" then Some sealed.outcome
  else
    let repr = Resil.Fault_plan.mangle ~ident "memo.lookup" sealed.repr in
    if Digest.to_hex (Digest.string repr) = sealed.fingerprint then
      Some sealed.outcome
    else None

let cache_key ~cfg ~eval_instrs ~train_instrs ~name variant =
  (* Every component must be plain data (no closures, no custom blocks) so
     that the structural digest is a sound key; see the invariant in
     runner.mli.  Marshal rejects functional values — turn that into a
     loud, actionable error instead of a cryptic [Invalid_argument]. *)
  match Marshal.to_string (cfg, eval_instrs, train_instrs, name, variant) [] with
  | repr -> Digest.string repr
  | exception Invalid_argument _ ->
    invalid_arg
      (Printf.sprintf
         "Runner.cache_key: variant for workload %S contains a closure or \
          other unmarshalable value; Runner.variant payloads must be plain \
          data (records of scalars/lists) so results can be memoised and \
          shared across domains"
         name)

let run_variant ?tracer ~cfg ~eval_instrs ~train_instrs ~name variant =
  let eval_workload = Catalog.make ~input:Workload.Ref ~instrs:eval_instrs name in
  let eval_trace = Workload.trace eval_workload in
  match variant with
  | Ooo ->
    let cfg = Cpu_config.with_policy Scheduler.Oldest_ready cfg in
    { stats = Cpu_core.run ?tracer cfg eval_trace; artifacts = None }
  | Crisp (thresholds, options) ->
    let train_workload = Catalog.make ~input:Workload.Train ~instrs:train_instrs name in
    let artifacts =
      Fdo.analyze ~thresholds ~options ~mem_params:cfg.Cpu_config.mem train_workload
    in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let stats =
      Cpu_core.run ~criticality:(Fdo.criticality artifacts) ?tracer cfg eval_trace
    in
    { stats; artifacts = Some artifacts }
  | Ibda ibda_cfg ->
    (* IBDA is hardware: it learns online while the evaluated input runs. *)
    let result = Ibda.analyze ~mem_params:cfg.Cpu_config.mem ibda_cfg eval_trace in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let stats =
      Cpu_core.run ~criticality:(Cpu_core.Dynamic_tags (Ibda.is_critical result))
        ?tracer cfg eval_trace
    in
    { stats; artifacts = None }

let memoised ~cache ~key ~ident compute =
  let rec attempt budget =
    let sealed = Exec.Memo.find_or_run cache key compute in
    match unseal ~ident sealed with
    | Some outcome -> outcome
    | None ->
      Exec.Memo.remove cache key;
      Resil.Log.record
        (Resil.Log.Quarantined
           { ident;
             reason =
               "memoised outcome failed its integrity check; evicted and \
                recomputed" });
      if budget <= 0 then
        raise
          (Resil.Supervise.Quarantined_failure
             (Printf.sprintf
                "memo entry %s kept failing its integrity check after recomputation"
                ident))
      else attempt (budget - 1)
  in
  attempt 2

let evaluate ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ~name variant =
  let key = cache_key ~cfg ~eval_instrs ~train_instrs ~name variant in
  (* The injection ident is per cache entry (name for substring
     selectors, key prefix for uniqueness), so Nth-hit triggers count
     each entry independently — deterministic under work stealing. *)
  let ident = Printf.sprintf "%s/%s" name (String.sub (Digest.to_hex key) 0 8) in
  let compute () =
    Resil.Fault_plan.hit ~ident "runner.run";
    seal ~ident (run_variant ~cfg ~eval_instrs ~train_instrs ~name variant)
  in
  memoised ~cache ~key ~ident compute

(* ------------------------------------------------------------------ *)
(* Sampled evaluation.                                                 *)
(* ------------------------------------------------------------------ *)

let sampled_cache_key ~cfg ~eval_instrs ~train_instrs ~sample ~name variant =
  (* The literal "sampled" tag plus the canonical sample-config string
     guarantee these digests can never collide with full-run keys, even
     for identical (cfg, instrs, variant) coordinates. *)
  match
    Marshal.to_string
      (cfg, eval_instrs, train_instrs, name, variant, "sampled",
       Sample_config.to_string sample)
      []
  with
  | repr -> Digest.string repr
  | exception Invalid_argument _ ->
    invalid_arg
      (Printf.sprintf
         "Runner.sampled_cache_key: variant for workload %S contains a closure \
          or other unmarshalable value"
         name)

let run_variant_sampled ~cfg ~eval_instrs ~train_instrs ~sample ~name variant =
  let eval_workload = Catalog.make ~input:Workload.Ref ~instrs:eval_instrs name in
  let eval_trace = Workload.trace eval_workload in
  match variant with
  | Ooo ->
    let cfg = Cpu_config.with_policy Scheduler.Oldest_ready cfg in
    { sampled_result = Sampler.run ~sample cfg eval_trace; sampled_artifacts = None }
  | Crisp (thresholds, options) ->
    (* Profiling/FDO stays full-fidelity — it is the paper's offline
       software pass, cheap relative to timing simulation; only the
       timing run is sampled. *)
    let train_workload = Catalog.make ~input:Workload.Train ~instrs:train_instrs name in
    let artifacts =
      Fdo.analyze ~thresholds ~options ~mem_params:cfg.Cpu_config.mem train_workload
    in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let sampled_result =
      Sampler.run ~criticality:(Fdo.criticality artifacts) ~sample cfg eval_trace
    in
    { sampled_result; sampled_artifacts = Some artifacts }
  | Ibda ibda_cfg ->
    let result = Ibda.analyze ~mem_params:cfg.Cpu_config.mem ibda_cfg eval_trace in
    let cfg = Cpu_config.with_policy Scheduler.Crisp cfg in
    let sampled_result =
      Sampler.run
        ~criticality:(Cpu_core.Dynamic_tags (Ibda.is_critical result))
        ~sample cfg eval_trace
    in
    { sampled_result; sampled_artifacts = None }

let evaluate_sampled ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ~sample ~name variant =
  let key = sampled_cache_key ~cfg ~eval_instrs ~train_instrs ~sample ~name variant in
  let ident =
    Printf.sprintf "%s/sampled/%s" name (String.sub (Digest.to_hex key) 0 8)
  in
  let compute () =
    Resil.Fault_plan.hit ~ident "runner.run";
    seal ~ident
      (run_variant_sampled ~cfg ~eval_instrs ~train_instrs ~sample ~name variant)
  in
  memoised ~cache:sampled_cache ~key ~ident compute

let traced ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ?tracer ~name variant =
  (* Tracers hold closures and grow-on-write buffers, so a traced run is
     never memoised: the cache key must stay plain data, and a cached
     outcome could not replay its event stream anyway. *)
  let cfg = Cpu_config.with_obs true cfg in
  let tracer =
    match tracer with Some t -> t | None -> Obs_tracer.create ()
  in
  let outcome = run_variant ~tracer ~cfg ~eval_instrs ~train_instrs ~name variant in
  (outcome, tracer)

let speedup_over_ooo ?(cfg = Cpu_config.skylake) ?(eval_instrs = 200_000)
    ?(train_instrs = 150_000) ~name variant =
  let base = evaluate ~cfg ~eval_instrs ~train_instrs ~name Ooo in
  let v = evaluate ~cfg ~eval_instrs ~train_instrs ~name variant in
  Cpu_stats.ipc v.stats /. Cpu_stats.ipc base.stats
