(** One function per table and figure of the paper's evaluation (Section 5),
    plus the Section 3.1 motivating measurement and the ablations DESIGN.md
    calls out.  Each function runs the required simulations (memoised
    through {!Runner}), prints the figure as text, and returns the raw data
    for tests and downstream tooling.

    [eval_instrs]/[train_instrs] default to 100_000/80_000 so the full
    suite regenerates in minutes; pass larger values for tighter
    measurements. *)

type sizes = {
  eval_instrs : int;
  train_instrs : int;
}

val default_sizes : sizes

val set_pool : Exec.Pool.t -> unit
(** Install the execution pool for the figure grids (job-graph mode):
    every (application x column) cell of a table or figure is submitted
    as one job, long-pole applications first, and the figure renders on
    the calling domain when all cells have resolved.  The default is
    {!Exec.Pool.sequential}, which runs cells inline in submission order
    — the pure-sequential escape hatch behind [--jobs 1].  Cells are
    memoised pure computations, so the rendered figures are byte-identical
    for any pool. *)

val current_pool : unit -> Exec.Pool.t

type resilience = {
  policy : Resil.Supervise.policy;
  journal : Resil.Journal.t option;
}

val set_resilience : ?journal:Resil.Journal.t -> Resil.Supervise.policy -> unit
(** Install the supervision policy (deadline / retries / backoff seed)
    applied to every grid cell, and optionally a checkpoint journal.
    With a journal, each completed cell is recorded (atomically) under
    its stable ident ["TAG/APP/COL"], cells with a valid checkpoint are
    restored instead of recomputed (logged as [Restored]), and a killed
    run resumed against the same journal recomputes only the missing
    cells.  The default is {!Resil.Supervise.default_policy} and no
    journal.

    A cell whose job times out, exhausts its retries or is quarantined
    resolves to the figure's degraded marker (NaN — rendered as ["--"]
    by {!Report}) and is recorded in {!Resil.Log}; callers decide the
    exit code from {!Resil.Log.counts}. *)

val current_resilience : unit -> resilience

val set_sample : Sample_config.t option -> unit
(** Install (or clear) the sampling config for the figure grids: with a
    config installed, Gain cells evaluate through
    {!Runner.evaluate_sampled} — sampled timing simulation with interval
    CPI — instead of full-fidelity runs.  Sampled cells keep their own
    memo identity, and callers journalling a sampled run must fold the
    config into the journal signature (the CLI does) so sampled and full
    checkpoints never mix. *)

val current_sample : unit -> Sample_config.t option

val protected : ident:string -> (unit -> 'a) -> 'a option
(** Run a whole figure, catching any exception into a [Degraded] log
    entry and an explicit marker line instead of propagating — the
    wrapper {!run_all} uses around every step. *)

val apps : string list
(** The 16 applications of Figures 4 and 7-12 (SPEC proxies, Xhpcg,
    TailBench proxies); the pointer-chase microbenchmark appears only in
    Figure 1 and the Section 3.1 experiment, as in the paper. *)

val table1 : unit -> unit
(** Print Table 1 (the simulated system). *)

val fig1 : ?sizes:sizes -> unit -> (int * float) array * (int * float) array
(** UPC timelines (windowed) of the pointer-chase microbenchmark under OOO
    and CRISP — Figure 1.  Returns (ooo, crisp) series. *)

val motivating : ?sizes:sizes -> unit -> float * float
(** Section 3.1: IPC of the pointer-chase kernel without and with the
    manual software prefetch (both on the baseline scheduler). *)

val fig3 : unit -> int list
(** Walk the load-slice extraction of Figure 3 on the microbenchmark's
    delinquent load and print the annotated program; returns the slice
    pcs. *)

val fig4 : ?sizes:sizes -> unit -> (string * float) list
(** Average dynamic load-slice size per application — Figure 4. *)

val fig7 : ?sizes:sizes -> unit -> (string * float list) list
(** IPC improvement over OOO for CRISP and IBDA with 1K/8K/64K/unbounded
    ISTs — Figure 7.  Each row is [app, [crisp; ibda1k; ibda8k; ibda64k;
    ibdaInf]] as speedup-minus-one fractions; a final "mean" row holds
    arithmetic means. *)

val fig8 : ?sizes:sizes -> unit -> (string * float list) list
(** Load slices only / branch slices only / combined — Figure 8. *)

val fig9 : ?sizes:sizes -> unit -> (string * float list) list
(** CRISP gain at RS/ROB = 64/180, 96/224, 144/336 and 192/448 —
    Figure 9. *)

val fig10 : ?sizes:sizes -> unit -> (string * float list) list
(** CRISP gain with miss-contribution thresholds T = 5%, 1%, 0.2% —
    Figure 10. *)

val fig11 : ?sizes:sizes -> unit -> (string * float) list
(** Total static critical instructions per application — Figure 11. *)

val fig12 : ?sizes:sizes -> unit -> (string * float list) list
(** Static and dynamic code-footprint overhead of the criticality prefix,
    and the L1I MPKI delta — Figure 12 (plus the Section 5.7 icache
    observation).  Row values: [static_overhead; dynamic_overhead;
    icache_mpki_delta], all fractions. *)

val static_crit : ?sizes:sizes -> unit -> (string * float list) list
(** The crisp-check v2 head-to-head: the no-profile {!Static_crit}
    predictor scored against the profiled CRISP tagger on every catalog
    workload.  Row values: [predicted_pcs; tagged_pcs; overlap_pcs;
    precision; recall; jaccard; load_roots; load_roots_hit] (counts as
    floats; see {!Static_crit.comparison}).  Tracked as its own golden
    ([test/goldens/static_crit.json]). *)

val ablations : ?sizes:sizes -> unit -> (string * float list) list
(** Design-choice ablations on a representative subset: full CRISP vs no
    critical-path filter, no memory dependencies, no ratio guardrail, and a
    random-ready scheduler. *)

val division : ?sizes:sizes -> unit -> float * float
(** The Section 6.1 extension: prioritise long-latency division and its
    slices on a division-chained kernel.  Returns (OOO IPC, CRISP IPC). *)

val run_all : ?sizes:sizes -> unit -> unit
(** Regenerate every table and figure in order, plus the Section 6.1
    division extension. *)
