type sizes = {
  eval_instrs : int;
  train_instrs : int;
}

let default_sizes = { eval_instrs = 20_000; train_instrs = 15_000 }

let f = float_of_int

let stats_entries prefix (st : Cpu_stats.t) =
  let k name v = (prefix ^ "." ^ name, v) in
  let h = st.Cpu_stats.head_stalls in
  let m = st.Cpu_stats.mem in
  [ k "cycles" (f st.Cpu_stats.cycles);
    k "retired" (f st.retired);
    k "ipc" (Cpu_stats.ipc st);
    k "loads" (f st.loads);
    k "stores" (f st.stores);
    k "branches" (f st.branches);
    k "branch_mispredicts" (f st.branch_mispredicts);
    k "btb_misses" (f st.btb_misses);
    k "ras_mispredicts" (f st.ras_mispredicts);
    k "head_stalls.dram_load" (f h.Cpu_stats.dram_load);
    k "head_stalls.llc_load" (f h.llc_load);
    k "head_stalls.other_load" (f h.other_load);
    k "head_stalls.long_op" (f h.long_op);
    k "head_stalls.other" (f h.other);
    k "mlp_sum" st.mlp_sum;
    k "mlp_cycles" (f st.mlp_cycles);
    k "critical_retired" (f st.critical_retired);
    k "mem.l1d_hits" (f m.Memory_system.l1d_hits);
    k "mem.l1d_misses" (f m.l1d_misses);
    k "mem.llc_hits" (f m.llc_hits);
    k "mem.llc_misses" (f m.llc_misses);
    k "mem.l1i_hits" (f m.l1i_hits);
    k "mem.l1i_misses" (f m.l1i_misses);
    k "mem.dram_requests" (f m.dram_requests);
    k "mem.dram_row_hits" (f m.dram_row_hits);
    k "mem.prefetches_issued" (f m.prefetches_issued);
    k "mem.prefetch_hits_l1d" (f m.prefetch_hits_l1d);
    k "mem.prefetch_hits_llc" (f m.prefetch_hits_llc) ]

let tag_entries (outcome : Runner.outcome) =
  match outcome.Runner.artifacts with
  | None -> []
  | Some a ->
    let t = a.Fdo.tagging in
    [ ("crisp.tag.static_count", f t.Tagger.static_count);
      ("crisp.tag.dynamic_ratio", t.Tagger.dynamic_ratio) ]

let obs_entries tracer =
  let counters =
    List.map (fun (k, v) -> ("obs." ^ k, f v)) (Obs_tracer.counters tracer)
  in
  let hists =
    List.concat_map
      (fun (k, h) ->
        [ ("obs.hist." ^ k ^ ".count", f (Obs_hist.count h));
          ("obs.hist." ^ k ^ ".sum", f (Obs_hist.sum h));
          ("obs.hist." ^ k ^ ".max", f (Obs_hist.max_value h)) ])
      (Obs_tracer.histograms tracer)
  in
  counters @ hists

let vector ?(cfg = Cpu_config.skylake) ~sizes name =
  let { eval_instrs; train_instrs } = sizes in
  let ooo = Runner.evaluate ~cfg ~eval_instrs ~train_instrs ~name Runner.Ooo in
  let crisp, tracer =
    Runner.traced ~cfg ~eval_instrs ~train_instrs ~name Runner.crisp_default
  in
  Obs_golden.normalise
    (stats_entries "ooo" ooo.Runner.stats
    @ stats_entries "crisp" crisp.Runner.stats
    @ tag_entries crisp
    @ obs_entries tracer)

let default_rtol key =
  let suffixed s = Filename.check_suffix key s in
  if suffixed ".ipc" || suffixed ".mlp_sum" || suffixed ".dynamic_ratio" then 1e-6
  else 0.

let path ~dir name = Filename.concat dir (name ^ ".json")

let meta ~sizes name =
  [ ("schema", "crisp-golden-1");
    ("workload", name);
    ("eval_instrs", string_of_int sizes.eval_instrs);
    ("train_instrs", string_of_int sizes.train_instrs) ]

let write ?cfg ~dir ~sizes name =
  let json =
    Obs_golden.to_json_string ~meta:(meta ~sizes name) (vector ?cfg ~sizes name)
  in
  let oc = open_out_bin (path ~dir name) in
  output_string oc json;
  close_out oc

(* ------------------------------------------------------------------ *)
(* The static-predictor golden: one cross-workload vector scoring the
   profile-free Static_crit pass against the profiled tagger.  Counts
   are exact; the derived ratios get the same tiny tolerance as other
   float keys so a JSON round-trip can never register as drift. *)

let static_name = "static_crit"

let static_vector ?(cfg = Cpu_config.skylake) ~sizes () =
  let { eval_instrs; train_instrs } = sizes in
  Obs_golden.normalise
    (List.concat_map
       (fun name ->
         let wl = Catalog.make ~input:Workload.Ref ~instrs:eval_instrs name in
         let prediction = Static_crit.analyze wl in
         let outcome =
           Runner.evaluate ~cfg ~eval_instrs ~train_instrs ~name
             Runner.crisp_default
         in
         let tagging =
           match outcome.Runner.artifacts with
           | Some a -> a.Fdo.tagging
           | None -> assert false
         in
         let c = Static_crit.compare_tagging prediction tagging in
         let k key v = (name ^ "." ^ key, v) in
         [ k "candidates" (f (List.length prediction.Static_crit.candidates));
           k "predicted" (f c.Static_crit.predicted_pcs);
           k "tagged" (f c.Static_crit.tagged_pcs);
           k "overlap" (f c.Static_crit.overlap_pcs);
           k "precision" c.Static_crit.precision;
           k "recall" c.Static_crit.recall;
           k "jaccard" c.Static_crit.jaccard;
           k "load_roots" (f c.Static_crit.load_roots);
           k "load_roots_hit" (f c.Static_crit.load_roots_hit) ])
       Catalog.names)

let static_rtol key =
  let suffixed s = Filename.check_suffix key s in
  if suffixed ".precision" || suffixed ".recall" || suffixed ".jaccard" then 1e-6
  else 0.

let static_meta ~sizes =
  [ ("schema", "crisp-static-crit-1");
    ("eval_instrs", string_of_int sizes.eval_instrs);
    ("train_instrs", string_of_int sizes.train_instrs) ]

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Shared diff driver: [fresh] is only forced once the golden parses
   and its metadata matches, so a stale file reports the cheap problem
   without paying for a simulation. *)
let check_file ~file ~meta ~rtol_for fresh =
  if not (Sys.file_exists file) then
    Error
      (Printf.sprintf
         "%s: golden missing — regenerate with `dune exec bench/regress.exe -- \
          snapshot` and commit the result"
         file)
  else
    match Obs_golden.of_json_string (read_file file) with
    | exception e ->
      Error (Printf.sprintf "%s: unreadable golden: %s" file (Printexc.to_string e))
    | golden_meta, golden -> (
      let meta_problems =
        List.filter_map
          (fun (k, v) ->
            match List.assoc_opt k golden_meta with
            | Some v' when v' = v -> None
            | Some v' ->
              Some (Printf.sprintf "meta %s: golden has %s, this run uses %s" k v' v)
            | None -> Some (Printf.sprintf "meta %s missing from golden" k))
          meta
      in
      if meta_problems <> [] then
        Error
          (Printf.sprintf "%s:\n  %s" file (String.concat "\n  " meta_problems))
      else
        match Obs_golden.diff ~rtol_for ~golden (fresh ()) with
        | [] -> Ok ()
        | mismatches ->
          let buf = Buffer.create 256 in
          let fmt = Format.formatter_of_buffer buf in
          Format.fprintf fmt "%s: %d mismatch(es)" file (List.length mismatches);
          List.iter
            (fun m -> Format.fprintf fmt "@\n  %a" Obs_golden.pp_mismatch m)
            mismatches;
          Format.pp_print_flush fmt ();
          Error (Buffer.contents buf))

let check ?cfg ~dir ~sizes name =
  check_file ~file:(path ~dir name) ~meta:(meta ~sizes name)
    ~rtol_for:default_rtol (fun () -> vector ?cfg ~sizes name)

let static_write ?cfg ~dir ~sizes () =
  let json =
    Obs_golden.to_json_string ~meta:(static_meta ~sizes)
      (static_vector ?cfg ~sizes ())
  in
  let oc = open_out_bin (path ~dir static_name) in
  output_string oc json;
  close_out oc

let static_check ?cfg ~dir ~sizes () =
  check_file ~file:(path ~dir static_name) ~meta:(static_meta ~sizes)
    ~rtol_for:static_rtol (fun () -> static_vector ?cfg ~sizes ())
