(** The repo's golden-stats regression harness: per-workload snapshots of
    simulator statistics and observability counters, committed as JSON and
    diffed with tolerances.

    A snapshot covers one workload at fixed trace sizes: the OOO baseline
    statistics ([ooo.*]), the default CRISP flow statistics and tagging
    summary ([crisp.*]), and the tracer counters and histogram moments of
    the CRISP evaluation run ([obs.*]).  Every run of the simulator is
    deterministic, so any untoleranced difference against the committed
    golden is a behaviour change — either a bug or an intentional model
    recalibration, in which case the goldens are regenerated and reviewed
    as part of the same change (see EXPERIMENTS.md). *)

(** Trace sizes of a snapshot; kept small so the full 17-workload sweep
    stays a sub-minute CI job. *)
type sizes = {
  eval_instrs : int;
  train_instrs : int;
}

val default_sizes : sizes
(** 20k eval / 15k train instructions. *)

val vector : ?cfg:Cpu_config.t -> sizes:sizes -> string -> Obs_golden.vector
(** [vector ~sizes name] simulates the named workload (OOO baseline plus a
    traced default-CRISP run) and flattens the results into one sorted
    golden vector. *)

val default_rtol : string -> float
(** The per-key tolerance used by {!check}: a small relative tolerance for
    derived floating-point keys (IPC, tag ratio, MLP sum), exact match for
    every integer counter. *)

val path : dir:string -> string -> string
(** [path ~dir name] is the golden file for a workload: [dir/name.json]. *)

val write : ?cfg:Cpu_config.t -> dir:string -> sizes:sizes -> string -> unit
(** Simulate and (re)write the committed golden for one workload. *)

val check :
  ?cfg:Cpu_config.t -> dir:string -> sizes:sizes -> string -> (unit, string) result
(** Simulate one workload and diff against its committed golden.  [Error]
    carries a human-readable report: a missing or unreadable golden file,
    metadata that does not match the requested sizes, or the list of
    drifted/missing/extra keys. *)

(** {2 Static-predictor golden}

    One cross-workload vector — [dir/static_crit.json] — scoring the
    profile-free {!Static_crit} predictor against the profiled tagger on
    every catalog workload: per workload the candidate count, the
    {!Static_crit.comparison} counts (exact) and its precision / recall /
    Jaccard ratios (toleranced like other derived floats). *)

val static_name : string
(** ["static_crit"]: the golden's basename, deliberately outside the
    workload namespace. *)

val static_vector : ?cfg:Cpu_config.t -> sizes:sizes -> unit -> Obs_golden.vector

val static_write : ?cfg:Cpu_config.t -> dir:string -> sizes:sizes -> unit -> unit

val static_check :
  ?cfg:Cpu_config.t -> dir:string -> sizes:sizes -> unit -> (unit, string) result
