type sizes = {
  eval_instrs : int;
  train_instrs : int;
}

let default_sizes = { eval_instrs = 100_000; train_instrs = 80_000 }

let apps = Catalog.spec_names @ Catalog.datacenter_names

(* ------------------------------------------------------------------ *)
(* Job-graph mode: every (app x column) cell of a figure grid becomes a
   job on the installed pool; rendering happens on the calling domain
   once all cells have resolved.  The default pool is sequential, which
   runs each cell inline at submission — the exact serial path. *)

let pool = ref Exec.Pool.sequential

let set_pool p = pool := p

let current_pool () = !pool

(* ------------------------------------------------------------------ *)
(* Resilience context: every grid cell runs as a supervised job under
   the installed policy, and — when a journal is installed — completed
   cells are checkpointed so a killed run can resume recomputing only
   the missing ones. *)

type resilience = {
  policy : Resil.Supervise.policy;
  journal : Resil.Journal.t option;
}

let resilience = ref { policy = Resil.Supervise.default_policy; journal = None }

let set_resilience ?journal policy = resilience := { policy; journal }

let current_resilience () = !resilience

(* ------------------------------------------------------------------ *)
(* Sampling context: when installed, grid Gain cells run sampled timing
   simulations instead of full-fidelity ones.  A global mirroring
   [set_pool]: the figure entry points stay zero-argument, and the
   journal signature already distinguishes sampled runs (the CLI folds
   the sample string into it). *)

let sample = ref None

let set_sample s = sample := s

let current_sample () = !sample

let cell_ident ~tag name j = Printf.sprintf "%s/%s/%d" tag name j

(* Serve a cell from the journal if a valid checkpoint exists.  The
   journal layer has already digest-checked the payload; a checkpoint
   that fails to unmarshal (version skew the signature failed to
   capture) is quarantined, not trusted. *)
let restore_cell ident =
  match (!resilience).journal with
  | None -> None
  | Some j -> (
    match Resil.Journal.find j ident with
    | None -> None
    | Some payload -> (
      match Marshal.from_string payload 0 with
      | v ->
        Resil.Log.record (Resil.Log.Restored { ident });
        Some v
      | exception _ ->
        Resil.Log.record
          (Resil.Log.Quarantined
             { ident; reason = "journal payload would not unmarshal; recomputing" });
        None))

(* A failed checkpoint write degrades the *checkpoint*, never the cell:
   the computed value is still used, it just will not survive a kill. *)
let checkpoint_cell ident v =
  match (!resilience).journal with
  | None -> ()
  | Some j -> (
    try Resil.Journal.record j ~key:ident ~payload:(Marshal.to_string v [])
    with Resil.Fault_plan.Injected site ->
      Resil.Log.record
        (Resil.Log.Quarantined
           { ident;
             reason =
               Printf.sprintf "checkpoint write failed (injected fault at %s); \
                               cell kept in memory only" site }))

(* The pointer-chasing giants dominate the wall clock of every grid.  In
   a nod to the paper's own topic, schedule the critical (long-pole)
   jobs first so they never straggle behind a queue of cheap cells. *)
let long_poles = [ "mcf"; "xhpcg"; "omnetpp"; "moses" ]

let weight name = if List.mem name long_poles then 1 else 0

(* [submit_cells ~tag ~degraded ~names ~cols ~cell] fans the full grid
   out to the pool as supervised jobs, heaviest rows first, and
   reassembles rows in catalog order.  Cells are pure (memoised through
   Runner), so execution order cannot change the values.  A cell with a
   valid checkpoint is restored instead of recomputed; a cell whose job
   times out, crashes through its retry budget or is quarantined
   resolves to [degraded] (rendered as an error marker by Report) and is
   recorded in the resilience log so the CLI can summarise and exit
   nonzero. *)
let submit_cells ~tag ~degraded ~names ~cols ~cell =
  let p = !pool in
  let policy = (!resilience).policy in
  let indexed = List.mapi (fun i name -> (i, name)) names in
  let by_weight =
    List.stable_sort (fun (_, a) (_, b) -> compare (weight b) (weight a)) indexed
  in
  (* On the sequential pool the thunk runs inline at spawn, so join (and
     the checkpoint write) right away: a kill mid-grid then salvages
     every completed cell instead of losing them all to the deferred
     join loop.  On a real pool joining here would serialise the grid. *)
  let eager = Exec.Pool.parallelism p <= 1 in
  let settle ident handle =
    match Resil.Supervise.join handle with
    | Ok v ->
      checkpoint_cell ident v;
      Ok v
    | Error e -> Error e
  in
  let slots = Hashtbl.create (List.length names * List.length cols) in
  List.iter
    (fun (i, name) ->
      List.iteri
        (fun j col ->
          let ident = cell_ident ~tag name j in
          let slot =
            match restore_cell ident with
            | Some v -> Either.Left (Ok v)
            | None ->
              let handle =
                Resil.Supervise.spawn p policy ~ident (fun () -> cell name col)
              in
              if eager then Either.Left (settle ident handle)
              else Either.Right handle
          in
          Hashtbl.replace slots (i, j) slot)
        cols)
    by_weight;
  List.map
    (fun (i, name) ->
      ( name,
        List.mapi
          (fun j _ ->
            let ident = cell_ident ~tag name j in
            let outcome =
              match Hashtbl.find slots (i, j) with
              | Either.Left r -> r
              | Either.Right handle -> settle ident handle
            in
            match outcome with
            | Ok v -> v
            | Error e ->
              Resil.Log.record
                (Resil.Log.Degraded
                   { ident; error = Resil.Supervise.error_to_string e });
              degraded)
          cols ))
    indexed

let ipc_of (outcome : Runner.outcome) = Cpu_stats.ipc outcome.Runner.stats

let gain ~sizes ~cfg ~name variant =
  let base =
    Runner.evaluate ~cfg ~eval_instrs:sizes.eval_instrs
      ~train_instrs:sizes.train_instrs ~name Runner.Ooo
  in
  let v =
    Runner.evaluate ~cfg ~eval_instrs:sizes.eval_instrs
      ~train_instrs:sizes.train_instrs ~name variant
  in
  (ipc_of v /. ipc_of base) -. 1.

let crisp_artifacts ~sizes ~name =
  let outcome =
    Runner.evaluate ~eval_instrs:sizes.eval_instrs ~train_instrs:sizes.train_instrs
      ~name Runner.crisp_default
  in
  match outcome.Runner.artifacts with
  | Some artifacts -> artifacts
  | None -> assert false

(* ------------------------------------------------------------------ *)

let table1 () =
  print_endline "\n== Table 1: simulated system ==";
  Format.printf "%a@." Cpu_config.pp Cpu_config.skylake

let upc_series cfg ~criticality trace =
  let cfg = { cfg with Cpu_config.record_upc = true } in
  let stats = Cpu_core.run ~criticality cfg trace in
  Cpu_stats.smoothed_upc stats ~window:25

let fig1 ?(sizes = default_sizes) () =
  let train =
    Catalog.pointer_chase ~input:Workload.Train ~instrs:sizes.train_instrs ()
  in
  let artifacts = Fdo.analyze train in
  let eval_workload =
    Catalog.pointer_chase ~input:Workload.Ref ~instrs:(min sizes.eval_instrs 40_000) ()
  in
  let trace = Workload.trace eval_workload in
  let ooo =
    upc_series
      (Cpu_config.with_policy Scheduler.Oldest_ready Cpu_config.skylake)
      ~criticality:Cpu_core.No_tags trace
  in
  let crisp =
    upc_series
      (Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake)
      ~criticality:(Fdo.criticality artifacts) trace
  in
  Report.print_series ~title:"Figure 1: UPC timeline, OOO baseline" ooo;
  Report.print_series ~title:"Figure 1: UPC timeline, CRISP" crisp;
  let avg series =
    Report.mean (Array.to_list (Array.map snd series))
  in
  Printf.printf "average UPC: OOO %.3f  CRISP %.3f  (+%.1f%%)\n" (avg ooo) (avg crisp)
    (100. *. ((avg crisp /. avg ooo) -. 1.));
  (ooo, crisp)

let motivating ?(sizes = default_sizes) () =
  let run ~with_prefetch =
    let w =
      Catalog.pointer_chase ~input:Workload.Ref ~instrs:sizes.eval_instrs
        ~with_prefetch ()
    in
    Cpu_stats.ipc
      (Cpu_core.run
         (Cpu_config.with_policy Scheduler.Oldest_ready Cpu_config.skylake)
         (Workload.trace w))
  in
  let plain = run ~with_prefetch:false in
  let prefetched = run ~with_prefetch:true in
  Printf.printf
    "\n== Section 3.1: manual prefetch on the pointer-chase kernel ==\n\
     IPC without prefetch %.2f, with __builtin_prefetch %.2f (paper: 1.89 -> 2.71)\n"
    plain prefetched;
  (plain, prefetched)

let fig3 () =
  let w = Catalog.pointer_chase ~input:Workload.Train ~instrs:30_000 () in
  let trace = Workload.trace w in
  let report = Profiler.profile trace in
  let classification = Classifier.classify report Classifier.default in
  let root_pc =
    match classification.Classifier.delinquent_loads with
    | (pc, _) :: _ -> pc
    | [] -> failwith "fig3: no delinquent load found"
  in
  let deps = Deps.compute trace in
  let slice = Slicer.extract trace deps ~root_pc in
  print_endline "\n== Figure 3: load-slice extraction on the microbenchmark ==";
  Array.iteri
    (fun pc decoded ->
      let marker =
        if pc = root_pc then "R>" else if slice.Slicer.pcs.(pc) then " *" else "  "
      in
      Format.printf "%s %4d: %a@." marker pc Program.pp_decoded decoded)
    trace.Executor.prog.Program.code;
  Printf.printf "slice: %d static instructions, %.1f dynamic average\n"
    (Slicer.size slice) slice.Slicer.avg_dynamic_length;
  slice.Slicer.pc_list

(* The grid figures (4, 7-11) are driven entirely by the shared
   {!Grid} specs, so the daemon-served and locally-run paths compute
   identical cells and render identical text. *)
let run_grid ~sizes (spec : Grid.spec) =
  let rows =
    submit_cells ~tag:spec.Grid.tag ~degraded:Float.nan ~names:spec.Grid.names
      ~cols:spec.Grid.columns
      ~cell:(fun name column ->
        Grid.cell_value ?sample:!sample ~eval_instrs:sizes.eval_instrs
          ~train_instrs:sizes.train_instrs ~name ~metric:spec.Grid.metric column)
  in
  Grid.render spec rows;
  Grid.full_rows spec rows

let single_column = function
  | name, [ v ] -> (name, v)
  | _ -> assert false

let fig4 ?(sizes = default_sizes) () =
  List.map single_column (run_grid ~sizes Grid.fig4)

let fig7 ?(sizes = default_sizes) () = run_grid ~sizes Grid.fig7

let fig8 ?(sizes = default_sizes) () = run_grid ~sizes Grid.fig8

let fig9 ?(sizes = default_sizes) () = run_grid ~sizes Grid.fig9

let fig10 ?(sizes = default_sizes) () = run_grid ~sizes Grid.fig10

let fig11 ?(sizes = default_sizes) () =
  List.map single_column (run_grid ~sizes Grid.fig11)

let fig12 ?(sizes = default_sizes) () =
  let rows =
    submit_cells ~tag:"fig12" ~degraded:[ Float.nan; Float.nan; Float.nan ]
      ~names:apps ~cols:[ () ] ~cell:(fun name () ->
        let artifacts = crisp_artifacts ~sizes ~name in
        let critical = Tagger.is_critical artifacts.Fdo.tagging in
        let eval_workload =
          Catalog.make ~input:Workload.Ref ~instrs:sizes.eval_instrs name
        in
        let trace = Workload.trace eval_workload in
        let none _ = false in
        let static_base = Layout.static_bytes trace.Executor.prog ~critical:none in
        let static_tagged = Layout.static_bytes trace.Executor.prog ~critical in
        let dyn_base = Layout.dynamic_bytes trace ~critical:none in
        let dyn_tagged = Layout.dynamic_bytes trace ~critical in
        let ooo =
          Runner.evaluate ~eval_instrs:sizes.eval_instrs
            ~train_instrs:sizes.train_instrs ~name Runner.Ooo
        in
        let crisp =
          Runner.evaluate ~eval_instrs:sizes.eval_instrs
            ~train_instrs:sizes.train_instrs ~name Runner.crisp_default
        in
        let mpki_base = Cpu_stats.mpki_l1i ooo.Runner.stats in
        let mpki_tagged = Cpu_stats.mpki_l1i crisp.Runner.stats in
        let mpki_delta =
          if mpki_base < 0.01 then 0. else (mpki_tagged -. mpki_base) /. mpki_base
        in
        [ (float_of_int static_tagged /. float_of_int static_base) -. 1.;
          (float_of_int dyn_tagged /. float_of_int dyn_base) -. 1.;
          mpki_delta ])
    |> List.map (function name, [ v ] -> (name, v) | _ -> assert false)
  in
  Report.print_percent_table
    ~title:"Figure 12: code-footprint overhead of the criticality prefix"
    ~header:[ "static"; "dynamic"; "L1I MPKI" ] rows;
  rows

(* The crisp-check v2 comparison: run the profile-free static predictor
   and the full profiled FDO flow on every workload, and score the
   overlap.  Counts travel as floats so the rows fit the shared grid
   plumbing (and the golden vector); they are exact small integers. *)
let static_crit ?(sizes = default_sizes) () =
  let degraded = List.init 8 (fun _ -> Float.nan) in
  let rows =
    submit_cells ~tag:"static_crit" ~degraded ~names:Catalog.names ~cols:[ () ]
      ~cell:(fun name () ->
        let wl = Catalog.make ~input:Workload.Ref ~instrs:sizes.eval_instrs name in
        let prediction = Static_crit.analyze wl in
        let tagging = (crisp_artifacts ~sizes ~name).Fdo.tagging in
        let c = Static_crit.compare_tagging prediction tagging in
        [ float_of_int c.Static_crit.predicted_pcs;
          float_of_int c.Static_crit.tagged_pcs;
          float_of_int c.Static_crit.overlap_pcs;
          c.Static_crit.precision;
          c.Static_crit.recall;
          c.Static_crit.jaccard;
          float_of_int c.Static_crit.load_roots;
          float_of_int c.Static_crit.load_roots_hit ])
    |> List.map (function name, [ v ] -> (name, v) | _ -> assert false)
  in
  Report.print_table
    ~title:"Static criticality predictor vs profiled CRISP tagger"
    ~header:
      [ "pred"; "tagged"; "overlap"; "prec"; "recall"; "jacc"; "ld-root"; "hit" ]
    rows;
  rows

let ablations ?(sizes = default_sizes) () =
  let subset = [ "namd"; "moses"; "pointer_chase"; "deepsjeng"; "mcf" ] in
  let cfg = Cpu_config.skylake in
  let no_filter = { Tagger.default_options with Tagger.critical_path_filter = false } in
  let no_memory = { Tagger.default_options with Tagger.follow_memory = false } in
  let no_guardrail = { Tagger.default_options with Tagger.ratio_max = 1.0 } in
  let crisp options = Runner.Crisp (Classifier.default, options) in
  let cols =
    [ crisp Tagger.default_options;
      crisp no_filter;
      crisp no_memory;
      crisp no_guardrail;
      (* The random-pick scheduler is compared against the oldest-ready
         baseline with no tags on either side. *)
      Runner.Ooo ]
  in
  let random_col = List.length cols - 1 in
  let rows =
    submit_cells ~tag:"ablations" ~degraded:Float.nan ~names:subset
      ~cols:(List.mapi (fun j v -> (j, v)) cols)
      ~cell:(fun name (j, v) ->
        if j = random_col then begin
          let base =
            Runner.evaluate ~cfg ~eval_instrs:sizes.eval_instrs
              ~train_instrs:sizes.train_instrs ~name Runner.Ooo
          in
          let rnd =
            Runner.evaluate
              ~cfg:(Cpu_config.with_policy Scheduler.Random_ready cfg)
              ~eval_instrs:sizes.eval_instrs ~train_instrs:sizes.train_instrs ~name
              Runner.Ooo
          in
          (ipc_of rnd /. ipc_of base) -. 1.
        end
        else gain ~sizes ~cfg ~name v)
  in
  Report.print_percent_table
    ~title:"Ablations: CRISP design choices (gain over OOO)"
    ~header:[ "full"; "no-cpf"; "no-mem"; "no-cap"; "random" ]
    rows;
  rows

(* Section 6.1: a kernel whose critical path is a serial division chain,
   each division waking a burst of dependent scoring work.  With
   [use_long_op_slices] the divisions are tagged and jump the burst. *)
let division ?(sizes = default_sizes) () =
  let build ~input ~instrs =
    let mb = Mem_builder.create () in
    let table = Mem_builder.int_array mb (Array.init 512 (fun i -> i + 1)) in
    let buf, buf_init = Kernel_util.scratch_buffer mb in
    let d = 1 and k = 2 and t = 3 and x = 4 and tb = 5 in
    let open Program in
    let code =
      [ Label "loop";
        Alu (Isa.And, t, d, Imm 511);
        Alu (Isa.Shl, t, t, Imm 3);
        Alu (Isa.Add, t, t, Reg tb);
        Ld (x, t, 0);  (* cache-resident divisor pick *)
        Div (d, d, k) ]  (* the critical long-latency chain *)
      @ Kernel_util.payload ~tag:"div-scoring" ~dep:d ~buf ~loads:6 ~fp_ops:24
          ~stores:10 ()
      @ [ Alu (Isa.Add, d, d, Reg x);
          Jmp "loop" ]
    in
    ignore input;
    { Workload.name = "divchain";
      description = "serial division chain with dependent scoring bursts";
      program = assemble ~name:"divchain" code;
      reg_init = [ (d, 987_654_321); (k, 1); (tb, table); buf_init ];
      mem_init = Mem_builder.table mb;
      max_instrs = instrs }
  in
  let train = build ~input:Workload.Train ~instrs:sizes.train_instrs in
  let thresholds =
    { Classifier.default with
      Classifier.long_op_exec_share_min = 0.015;
      miss_contribution_min = 1.1 (* ignore loads: isolate the extension *) }
  in
  let options =
    { Tagger.default_options with
      Tagger.use_long_op_slices = true;
      use_load_slices = false;
      use_branch_slices = false }
  in
  let artifacts = Fdo.analyze ~thresholds ~options train in
  let trace =
    Workload.trace (build ~input:Workload.Ref ~instrs:sizes.eval_instrs)
  in
  let ooo =
    Cpu_core.run
      (Cpu_config.with_policy Scheduler.Oldest_ready Cpu_config.skylake)
      trace
  in
  let crisp =
    Cpu_core.run
      ~criticality:(Fdo.criticality artifacts)
      (Cpu_config.with_policy Scheduler.Crisp Cpu_config.skylake)
      trace
  in
  let o = Cpu_stats.ipc ooo and c = Cpu_stats.ipc crisp in
  Printf.printf
    "\n== Section 6.1 extension: division criticality ==\n\
     division-chain kernel: OOO IPC %.3f, CRISP+long-op slices IPC %.3f (%+.1f%%)\n"
    o c
    (100. *. ((c /. o) -. 1.));
  (o, c)

(* Run one figure, degrading instead of propagating: a crash inside a
   non-grid figure (or a grid figure's rendering) is logged and replaced
   by an explicit marker line, so the rest of the suite still runs and
   the CLI can exit with a failure summary. *)
let protected ~ident f =
  match f () with
  | v -> Some v
  | exception exn ->
    Resil.Log.record
      (Resil.Log.Degraded { ident; error = Printexc.to_string exn });
    Printf.printf "\n== %s: DEGRADED (%s) ==\n" ident (Printexc.to_string exn);
    None

let run_all ?(sizes = default_sizes) () =
  let step ident f = ignore (protected ~ident f) in
  step "table1" (fun () -> table1 ());
  step "motivating" (fun () -> ignore (motivating ~sizes ()));
  step "fig1" (fun () -> ignore (fig1 ~sizes ()));
  step "fig3" (fun () -> ignore (fig3 ()));
  step "fig4" (fun () -> ignore (fig4 ~sizes ()));
  step "fig7" (fun () -> ignore (fig7 ~sizes ()));
  step "fig8" (fun () -> ignore (fig8 ~sizes ()));
  step "fig9" (fun () -> ignore (fig9 ~sizes ()));
  step "fig10" (fun () -> ignore (fig10 ~sizes ()));
  step "fig11" (fun () -> ignore (fig11 ~sizes ()));
  step "fig12" (fun () -> ignore (fig12 ~sizes ()));
  step "static_crit" (fun () -> ignore (static_crit ~sizes ()));
  step "ablations" (fun () -> ignore (ablations ~sizes ()));
  step "division" (fun () -> ignore (division ~sizes ()))
